// Verification: exhaustive model checking through the public API. The
// checker explores every interleaving of the dining algorithm on a
// small conflict graph — message deliveries, hunger onsets, eating
// exits, and crash faults — and either verifies every safety invariant
// plus the possibility of progress, or prints a counterexample trace.
//
// The run contrasts three algorithms under a one-crash adversary:
// Algorithm 1 (verified wait-free), classic Chandy–Misra (wedges), and
// the Choy–Singh doorway (wedges).
package main

import (
	"fmt"
	"os"

	"repro/dining"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "verification:", err)
		os.Exit(1)
	}
}

func check(name string, variant dining.Variant, crashes int) error {
	rep, err := dining.Verify(dining.Path(2), dining.VerifyOptions{
		Variant:    variant,
		MaxCrashes: crashes,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-22s crashes≤%d  %6d states  %7d transitions  closed=%v\n",
		name, crashes, rep.States, rep.Transitions, rep.Closed)
	if rep.Counterexample == nil {
		fmt.Printf("  ✓ every safety invariant holds in every reachable state\n")
		fmt.Printf("  ✓ every live hungry process can always still reach eating\n")
	} else {
		fmt.Printf("  ✗ %s\n", rep.Counterexample.Property)
		fmt.Printf("    counterexample:")
		for _, mv := range rep.Counterexample.Trace {
			fmt.Printf(" %s;", mv)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func run() error {
	fmt.Println("exhaustive verification on path(2), every interleaving explored:")
	fmt.Println()
	if err := check("algorithm-1 (paper)", dining.Paper, 1); err != nil {
		return err
	}
	if err := check("chandy-misra (classic)", dining.Hygienic, 1); err != nil {
		return err
	}
	if err := check("choy-singh (original)", dining.ChoySingh, 1); err != nil {
		return err
	}
	fmt.Println("shape check: only the ◇P₁-guided algorithm survives a crash adversary;")
	fmt.Println("both detector-free baselines wedge, each with a concrete trace.")
	return nil
}
