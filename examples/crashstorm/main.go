// Crashstorm: wait-freedom under arbitrarily many crash faults
// (Theorem 2). Half of a 4×4 grid crashes in waves while the rest keeps
// getting scheduled; the same storm under the detector-free Choy–Singh
// doorway freezes the survivors' neighborhoods. The example prints the
// two runs side by side.
package main

import (
	"fmt"
	"os"

	"repro/dining"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashstorm:", err)
		os.Exit(1)
	}
}

func storm(variant dining.Variant) (dining.Report, error) {
	sys, err := dining.NewSimulation(dining.Config{
		Topology: dining.Grid(4, 4),
		Seed:     7,
		Variant:  variant,
	})
	if err != nil {
		return dining.Report{}, err
	}
	// Crash eight processes (a checkerboard) in waves.
	victims := []int{0, 2, 5, 7, 8, 10, 13, 15}
	for i, v := range victims {
		sys.CrashAt(dining.Ticks(1000+400*i), v)
	}
	return sys.Run(40000), nil
}

func run() error {
	fmt.Println("4x4 grid, 8 crashes between t=1000 and t=3800, horizon 40k ticks")
	fmt.Println()
	for _, arm := range []struct {
		name    string
		variant dining.Variant
	}{
		{"algorithm-1 (◇P₁, wait-free)", dining.Paper},
		{"choy-singh  (no detector)   ", dining.ChoySingh},
	} {
		rep, err := storm(arm.variant)
		if err != nil {
			return err
		}
		if rep.InvariantViolation != nil {
			return rep.InvariantViolation
		}
		fmt.Printf("%s\n", arm.name)
		fmt.Printf("  live sessions completed: %d\n", rep.SessionsCompleted)
		fmt.Printf("  starving live processes: %v\n", rep.StarvingProcesses)
		fmt.Printf("  exclusion violations:    %d\n", rep.ExclusionViolations)
		fmt.Println()
	}
	fmt.Println("shape check: the wait-free daemon reports no starving processes at any")
	fmt.Println("crash count, while the detector-free baseline strands the crash sites'")
	fmt.Println("neighbors in permanent hunger.")
	return nil
}
