// Quickstart: the smallest possible use of the public API. Ten
// philosophers on a ring, saturated hunger, one crash mid-run — and the
// paper's guarantees read straight off the report: zero starvation,
// the ≤2 overtake bound, and ≤4 messages per edge.
package main

import (
	"fmt"
	"os"

	"repro/dining"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := dining.NewSimulation(dining.Config{
		Topology: dining.Ring(10),
		Seed:     1,
	})
	if err != nil {
		return err
	}

	// Process 4 crashes at virtual time 500; ◇P₁ detects it and the
	// daemon routes around it — nobody starves.
	sys.CrashAt(500, 4)

	report := sys.Run(20000)
	fmt.Println("ring(10), crash of process 4 at t=500, 20k ticks:")
	fmt.Println(" ", report)
	fmt.Println()
	fmt.Println("per-process completed hungry sessions:")
	for i, n := range report.PerProcessSessions {
		marker := ""
		if i == 4 {
			marker = "  (crashed at t=500)"
		}
		fmt.Printf("  process %2d: %5d%s\n", i, n, marker)
	}
	if report.InvariantViolation != nil {
		return report.InvariantViolation
	}
	if len(report.StarvingProcesses) > 0 {
		return fmt.Errorf("starving processes: %v", report.StarvingProcesses)
	}
	fmt.Println("\nwait-freedom held: every live process kept eating.")
	return nil
}
