// Fairness: watching the eventual 2-bounded waiting guarantee
// (Theorem 3) engage, and what breaks without the paper's modified
// doorway. An adversarial star runs under three algorithms: the paper's
// Algorithm 1, the original doorway (no replied flag), and doorway-free
// static-priority forks.
package main

import (
	"fmt"
	"os"

	"repro/dining"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fairness:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("star(5): the hub competes with four leaves; one leaf's link to the")
	fmt.Println("hub is slow, so the hub spends a long time collecting doorway acks")
	fmt.Println("while the other leaves cycle fast — maximum overtaking pressure.")
	fmt.Println()
	// The facade's spiky delays emulate the slow link statistically; the
	// harness version (internal/harness E3/A1) scripts it exactly.
	delays := dining.SpikyDelays(2, 300, 0.10)

	fmt.Printf("%-28s %-24s %-18s\n", "algorithm", "max consecutive overtakes", "hub sessions")
	for _, arm := range []struct {
		name    string
		variant dining.Variant
	}{
		{"algorithm-1 (paper)", dining.Paper},
		{"original doorway (ablation)", dining.NoRepliedFlag},
		{"static forks (no doorway)", dining.StaticForks},
	} {
		sys, err := dining.NewSimulation(dining.Config{
			Topology: dining.Star(5),
			Seed:     11,
			Variant:  arm.variant,
			Detector: ptr(dining.NoDetector()), // crash-free: isolate fairness
			Delays:   &delays,
		})
		if err != nil {
			return err
		}
		rep := sys.Run(30000)
		if rep.InvariantViolation != nil {
			return rep.InvariantViolation
		}
		fmt.Printf("%-28s %-24d %-18d\n", arm.name, rep.MaxConsecutiveOvertakes,
			rep.PerProcessSessions[0])
	}
	fmt.Println()
	fmt.Println("shape check: Algorithm 1 stays within the paper's bound of 2; the")
	fmt.Println("ablations overtake the hub far beyond any constant.")
	return nil
}

func ptr[T any](v T) *T { return &v }
