// Stabilization: the paper's motivating application driven through the
// public Daemon API. A toy self-stabilizing protocol — distributed
// (Δ+1)-coloring — runs as the daemon's Step callback. Transient faults
// scramble it mid-run; a crash removes a process; the wait-free daemon
// keeps scheduling everyone else, so the protocol converges anyway.
package main

import (
	"fmt"
	"os"

	"repro/dining"
)

// colorState is the user-level stabilizing protocol: each process owns
// a color; a scheduled process recolors itself away from its ring
// neighbors. (The dining daemon guarantees neighbors are not scheduled
// simultaneously, which makes the read-recolor step atomic enough.)
type colorState struct {
	n      int
	colors []int
}

func (c *colorState) neighbors(i int) (int, int) {
	return (i + c.n - 1) % c.n, (i + 1) % c.n
}

func (c *colorState) step(i int) {
	l, r := c.neighbors(i)
	if c.colors[i] != c.colors[l] && c.colors[i] != c.colors[r] {
		return // already stable
	}
	for col := 0; ; col++ {
		if col != c.colors[l] && col != c.colors[r] {
			c.colors[i] = col
			return
		}
	}
}

func (c *colorState) conflicts(skip func(int) bool) int {
	bad := 0
	for i := 0; i < c.n; i++ {
		r := (i + 1) % c.n
		if skip(i) && skip(r) {
			continue
		}
		if c.colors[i] == c.colors[r] {
			bad++
		}
	}
	return bad
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stabilization:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 12
	state := &colorState{n: n, colors: make([]int, n)} // monochrome: all in conflict
	crashed := map[int]bool{}

	d, err := dining.NewDaemon(dining.DaemonConfig{
		Topology: dining.Ring(n),
		Seed:     3,
		Detector: ptr(dining.PerfectDetector(10)),
		Step:     state.step,
	})
	if err != nil {
		return err
	}

	probe := func(label string, t dining.Ticks) {
		d.At(t, func() {
			fmt.Printf("t=%-6d %-28s conflicts=%d colors=%v\n",
				t, label, state.conflicts(func(i int) bool { return crashed[i] }), state.colors)
		})
	}

	probe("start (monochrome)", 1)
	probe("after initial convergence", 3000)

	// Transient fault burst: scramble five processes.
	d.At(5000, func() {
		for _, i := range []int{1, 4, 6, 9, 10} {
			state.colors[i] = state.colors[(i+1)%n] // force conflicts
		}
	})
	probe("after transient burst", 5001)
	probe("after re-convergence", 9000)

	// Crash process 7, then force a conflict right next to it.
	d.CrashAt(10000, 7)
	d.At(10000, func() { crashed[7] = true })
	d.At(12000, func() { state.colors[8] = state.colors[7] })
	probe("conflict injected beside crash", 12001)
	probe("repaired by wait-free daemon", 16000)

	rep := d.Run(20000)
	if rep.InvariantViolation != nil {
		return rep.InvariantViolation
	}
	final := state.conflicts(func(i int) bool { return crashed[i] })
	fmt.Printf("\nfinal: conflicts=%d, scheduling violations=%d, steps per process=%v\n",
		final, rep.ExclusionViolations, d.Steps())
	if final != 0 {
		return fmt.Errorf("protocol failed to stabilize: %d conflicts", final)
	}
	fmt.Println("stabilization succeeded despite transient faults and a crash.")
	return nil
}

func ptr[T any](v T) *T { return &v }
