// Package repro's root benchmarks regenerate every experiment in
// DESIGN.md (E1–E11, A1–A3) as testing.B targets, plus
// micro-benchmarks of the core state machine, the simulation kernel,
// and the sweep worker pool. The benchmark bodies live in
// internal/bench, shared with cmd/bench (which emits machine-readable
// BENCH_sweep.json from the same registry); each function here is a
// thin wrapper so `go test -bench=. -benchmem` keeps its historical
// target names.
package main

import (
	"testing"

	"repro/internal/bench"
)

func BenchmarkE1SafetyMistakes(b *testing.B)      { bench.E1SafetyMistakes(b) }
func BenchmarkE2WaitFreedom(b *testing.B)         { bench.E2WaitFreedom(b) }
func BenchmarkE3BoundedWaiting(b *testing.B)      { bench.E3BoundedWaiting(b) }
func BenchmarkE3ForksBaseline(b *testing.B)       { bench.E3ForksBaseline(b) }
func BenchmarkE4ChannelBound(b *testing.B)        { bench.E4ChannelBound(b) }
func BenchmarkE5Quiescence(b *testing.B)          { bench.E5Quiescence(b) }
func BenchmarkE6SpaceBound(b *testing.B)          { bench.E6SpaceBound(b) }
func BenchmarkE7Stabilization(b *testing.B)       { bench.E7Stabilization(b) }
func BenchmarkE8ScalabilityRing64(b *testing.B)   { bench.E8ScalabilityRing64(b) }
func BenchmarkE8ScalabilityClique12(b *testing.B) { bench.E8ScalabilityClique12(b) }
func BenchmarkE9ModelCheck(b *testing.B)          { bench.E9ModelCheck(b) }
func BenchmarkE11LossyLinks(b *testing.B)         { bench.E11LossyLinks(b) }
func BenchmarkA1RepliedAblation(b *testing.B)     { bench.A1RepliedAblation(b) }
func BenchmarkA2DetectorSweep(b *testing.B)       { bench.A2DetectorSweep(b) }
func BenchmarkA3KBound(b *testing.B)              { bench.A3KBound(b) }
func BenchmarkSweepE8Workers1(b *testing.B)       { bench.SweepE8Workers1(b) }
func BenchmarkSweepE8WorkersMax(b *testing.B)     { bench.SweepE8WorkersMax(b) }
func BenchmarkCoreDinerCycle(b *testing.B)        { bench.CoreDinerCycle(b) }
func BenchmarkKernelThroughput(b *testing.B)      { bench.KernelThroughput(b) }
func BenchmarkNetworkSendDeliver(b *testing.B)    { bench.NetworkSendDeliver(b) }
func BenchmarkGreedyColoring(b *testing.B)        { bench.GreedyColoring(b) }

// Remote (transport) family — emitted by cmd/bench -family remote into
// BENCH_remote.json.
func BenchmarkWireEncodeData(b *testing.B)       { bench.WireEncodeData(b) }
func BenchmarkWireDecodeData(b *testing.B)       { bench.WireDecodeData(b) }
func BenchmarkWireDecoderStream(b *testing.B)    { bench.WireDecoderStream(b) }
func BenchmarkWireReadFrameLegacy(b *testing.B)  { bench.WireReadFrameLegacy(b) }
func BenchmarkLinkLoopbackPerFrame(b *testing.B) { bench.LinkLoopbackPerFrame(b) }
func BenchmarkLinkLoopbackBatched(b *testing.B)  { bench.LinkLoopbackBatched(b) }
func BenchmarkLinkLatencyP99Netsim(b *testing.B) { bench.LinkLatencyP99Netsim(b) }

// TestBenchRegistryCoversWrappers pins the registry to this file: every
// registered case must have a same-named Benchmark wrapper above, and
// vice versa (names are checked by count — the compiler enforces the
// rest, since each wrapper calls its case by identifier).
func TestBenchRegistryCoversWrappers(t *testing.T) {
	if n := len(bench.Cases()); n != 28 {
		t.Fatalf("registry has %d cases; update the wrappers in bench_test.go and this count", n)
	}
	seen := map[string]bool{}
	for _, c := range bench.Cases() {
		if seen[c.Name] {
			t.Fatalf("duplicate case %q", c.Name)
		}
		seen[c.Name] = true
		if c.Fn == nil {
			t.Fatalf("case %q has nil Fn", c.Name)
		}
	}
	if _, ok := bench.Lookup("KernelThroughput"); !ok {
		t.Fatal("Lookup failed for a registered case")
	}
	if _, ok := bench.Lookup("NoSuchCase"); ok {
		t.Fatal("Lookup invented a case")
	}
}
