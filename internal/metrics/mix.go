package metrics

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// MixMonitor counts dining traffic by message kind. Section 7's
// accounting says a hungry session costs at most one ping+ack exchange
// and one request+fork exchange per neighbor, so per-session kind
// counts should approach 2δ̄ pings/acks and 2δ̄ requests/forks on
// saturated workloads (δ̄ = average conflict degree), with thinking-time
// skipping some exchanges.
type MixMonitor struct {
	counts map[core.MsgKind]uint64
	other  uint64
}

// NewMixMonitor creates an empty monitor.
func NewMixMonitor() *MixMonitor {
	return &MixMonitor{counts: make(map[core.MsgKind]uint64)}
}

// OnSend implements the sim.Observer send hook.
func (m *MixMonitor) OnSend(_ sim.Time, _, _ int, payload any) {
	if msg, ok := payload.(core.Message); ok {
		m.counts[msg.Kind]++
		return
	}
	m.other++
}

// Count returns how many messages of kind k were sent.
func (m *MixMonitor) Count(k core.MsgKind) uint64 { return m.counts[k] }

// Total returns all dining messages counted.
func (m *MixMonitor) Total() uint64 {
	var t uint64
	for _, c := range m.counts {
		t += c
	}
	return t
}

// Other returns non-dining payloads seen (0 on a dining-only network).
func (m *MixMonitor) Other() uint64 { return m.other }

// PerSession returns the kind count divided by completed sessions
// (×100, integer arithmetic).
func (m *MixMonitor) PerSessionX100(k core.MsgKind, sessions int) uint64 {
	if sessions <= 0 {
		return 0
	}
	return m.counts[k] * 100 / uint64(sessions)
}
