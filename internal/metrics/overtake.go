package metrics

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// OvertakeWindow records one completed bounded-waiting window: victim
// was continuously hungry from HungryAt until ClosedAt (when it ate,
// crashed, or the run ended), during which Overtaker began eating Count
// times.
type OvertakeWindow struct {
	Overtaker int
	Victim    int
	HungryAt  sim.Time
	ClosedAt  sim.Time
	Count     int
	Closed    bool // false if the window was still open at Finish time
}

// OvertakeMonitor measures k-bounded waiting (the paper's Section 2
// fairness definition): how many consecutive times a process goes to
// eat while some live neighbor remains continuously hungry. Theorem 3
// guarantees that every run has a suffix in which no window's count
// exceeds 2.
type OvertakeMonitor struct {
	g        *graph.Graph
	hungryAt []sim.Time
	hungry   []bool
	crashed  []bool
	count    [][]int // count[i][j]: eats by i during j's current hungry session
	windows  []OvertakeWindow
}

// NewOvertakeMonitor creates a monitor over conflict graph g.
func NewOvertakeMonitor(g *graph.Graph) *OvertakeMonitor {
	n := g.N()
	m := &OvertakeMonitor{
		g:        g,
		hungryAt: make([]sim.Time, n),
		hungry:   make([]bool, n),
		crashed:  make([]bool, n),
		count:    make([][]int, n),
	}
	for i := range m.count {
		m.count[i] = make([]int, n)
	}
	return m
}

// OnTransition feeds a dining transition to the monitor.
func (m *OvertakeMonitor) OnTransition(at sim.Time, id int, _, to core.State) {
	switch to {
	case core.Hungry:
		m.hungry[id] = true
		m.hungryAt[id] = at
		for _, j := range m.g.Neighbors(id) {
			m.count[j][id] = 0
		}
	case core.Eating:
		// id's own hungry window closes.
		if m.hungry[id] {
			m.closeWindows(at, id)
		}
		// id overtakes every still-hungry live neighbor.
		for _, j := range m.g.Neighbors(id) {
			if m.hungry[j] && !m.crashed[j] {
				m.count[id][j]++
			}
		}
	case core.Thinking:
		// Eating→Thinking: the session's windows were already closed on
		// entry to Eating; nothing to account.
	}
}

// closeWindows finalizes the windows of victim id against each
// neighbor.
func (m *OvertakeMonitor) closeWindows(at sim.Time, id int) {
	m.hungry[id] = false
	for _, j := range m.g.Neighbors(id) {
		m.windows = append(m.windows, OvertakeWindow{
			Overtaker: j,
			Victim:    id,
			HungryAt:  m.hungryAt[id],
			ClosedAt:  at,
			Count:     m.count[j][id],
			Closed:    true,
		})
		m.count[j][id] = 0
	}
}

// OnCrash feeds a crash to the monitor: a crashed victim's windows
// close (bounded waiting protects live hungry processes only), and a
// crashed overtaker stops accumulating.
func (m *OvertakeMonitor) OnCrash(at sim.Time, id int) {
	m.crashed[id] = true
	if m.hungry[id] {
		m.closeWindows(at, id)
	}
}

// OnRestart feeds a crash-recovery: the process is live again with
// fresh dining state, so it is once more protected by bounded waiting
// (its next hungry session opens a window) and accountable as an
// overtaker — with a clean slate, since pre-crash eats belong to a
// different incarnation.
func (m *OvertakeMonitor) OnRestart(_ sim.Time, id int) {
	m.crashed[id] = false
	m.hungry[id] = false
	for _, j := range m.g.Neighbors(id) {
		m.count[id][j] = 0
	}
}

// Finish closes all still-open windows at time end. Call once when the
// run is over, before reading results.
func (m *OvertakeMonitor) Finish(end sim.Time) {
	for id := 0; id < m.g.N(); id++ {
		if m.hungry[id] {
			m.hungry[id] = false
			for _, j := range m.g.Neighbors(id) {
				m.windows = append(m.windows, OvertakeWindow{
					Overtaker: j,
					Victim:    id,
					HungryAt:  m.hungryAt[id],
					ClosedAt:  end,
					Count:     m.count[j][id],
					Closed:    false,
				})
				m.count[j][id] = 0
			}
		}
	}
}

// Windows returns every recorded window.
func (m *OvertakeMonitor) Windows() []OvertakeWindow {
	out := make([]OvertakeWindow, len(m.windows))
	copy(out, m.windows)
	return out
}

// MaxCount returns the largest overtake count across all windows.
func (m *OvertakeMonitor) MaxCount() int {
	best := 0
	for _, w := range m.windows {
		if w.Count > best {
			best = w.Count
		}
	}
	return best
}

// MaxCountFrom returns the largest overtake count among windows whose
// hungry session started at or after t. Theorem 3's bound of 2 applies
// to the suffix of sessions starting after both ◇P₁ convergence and the
// drain of pre-convergence hungry sessions.
func (m *OvertakeMonitor) MaxCountFrom(t sim.Time) int {
	best := 0
	for _, w := range m.windows {
		if w.HungryAt >= t && w.Count > best {
			best = w.Count
		}
	}
	return best
}

// LastExcessWindow returns the start time of the latest window (by
// hungry start) whose count exceeds k, and whether one exists — i.e.
// when the run last violated k-bounded waiting.
func (m *OvertakeMonitor) LastExcessWindow(k int) (sim.Time, bool) {
	var last sim.Time
	found := false
	for _, w := range m.windows {
		if w.Count > k && (!found || w.HungryAt > last) {
			last = w.HungryAt
			found = true
		}
	}
	return last, found
}
