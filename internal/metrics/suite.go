package metrics

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Suite bundles every monitor and fans events out to all of them. It
// plugs directly into runner.Config (OnTransition, OnCrash) and
// sim.Network (Observer).
type Suite struct {
	Exclusion   *ExclusionMonitor
	Overtake    *OvertakeMonitor
	Progress    *ProgressMonitor
	Occupancy   *OccupancyMonitor
	Quiescence  *QuiescenceMonitor
	Mix         *MixMonitor
	Reliability *ReliabilityMonitor
}

// NewSuite creates monitors for conflict graph g.
func NewSuite(g *graph.Graph) *Suite {
	return &Suite{
		Exclusion:   NewExclusionMonitor(g),
		Overtake:    NewOvertakeMonitor(g),
		Progress:    NewProgressMonitor(g.N()),
		Occupancy:   NewOccupancyMonitor(g.N()),
		Quiescence:  NewQuiescenceMonitor(),
		Mix:         NewMixMonitor(),
		Reliability: NewReliabilityMonitor(),
	}
}

// OnTransition fans a dining transition out to every monitor.
func (s *Suite) OnTransition(at sim.Time, id int, from, to core.State) {
	s.Exclusion.OnTransition(at, id, from, to)
	s.Overtake.OnTransition(at, id, from, to)
	s.Progress.OnTransition(at, id, from, to)
}

// OnCrash fans a crash event out to every monitor.
func (s *Suite) OnCrash(at sim.Time, id int) {
	s.Exclusion.OnCrash(at, id)
	s.Overtake.OnCrash(at, id)
	s.Progress.OnCrash(at, id)
	s.Quiescence.OnCrash(at, id)
	s.Reliability.OnCrash(at, id)
}

// Observer returns the network observer feeding the channel monitors.
func (s *Suite) Observer() sim.Observer {
	return sim.Observer{
		OnSend: func(at sim.Time, from, to int, payload any) {
			s.Occupancy.OnSend(at, from, to, payload)
			s.Quiescence.OnSend(at, from, to, payload)
			s.Mix.OnSend(at, from, to, payload)
		},
		OnDeliver: s.Occupancy.OnDeliver,
		OnDrop:    s.Occupancy.OnDrop,
		OnLose: func(at sim.Time, from, to int, payload any) {
			s.Occupancy.OnLose(at, from, to, payload)
			s.Reliability.OnLose(at, from, to, payload)
		},
	}
}

// Finish finalizes open measurement windows at the end of a run.
func (s *Suite) Finish(end sim.Time) {
	s.Overtake.Finish(end)
}
