// Package metrics turns the paper's theorems into observables: an
// exclusion monitor for ◇WX (Theorem 1), an overtake monitor for
// eventual k-bounded waiting (Theorem 3), a latency/session monitor for
// wait-freedom (Theorem 2), an edge-occupancy monitor for the ≤4
// in-transit bound (Section 7), and a quiescence monitor for crashed
// neighbors (Section 7).
//
// Monitors are pure observers: they subscribe to runner transition
// callbacks and network observer events and never influence the run.
package metrics

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Violation is one scheduling mistake: two live neighbors eating
// simultaneously.
type Violation struct {
	At   sim.Time
	A, B int
}

// ExclusionMonitor detects simultaneous eating by live neighbors. The
// paper's ◇WX guarantee is that each run has only finitely many such
// violations, all before an (unknown) convergence time.
type ExclusionMonitor struct {
	g       *graph.Graph
	eating  []bool
	crashed []bool
	viol    []Violation
}

// NewExclusionMonitor creates a monitor over conflict graph g.
func NewExclusionMonitor(g *graph.Graph) *ExclusionMonitor {
	return &ExclusionMonitor{
		g:       g,
		eating:  make([]bool, g.N()),
		crashed: make([]bool, g.N()),
	}
}

// OnTransition feeds a dining transition to the monitor.
func (m *ExclusionMonitor) OnTransition(at sim.Time, id int, _, to core.State) {
	switch to {
	case core.Eating:
		m.eating[id] = true
		for _, j := range m.g.Neighbors(id) {
			if m.eating[j] && !m.crashed[j] && !m.crashed[id] {
				m.viol = append(m.viol, Violation{At: at, A: id, B: j})
			}
		}
	case core.Thinking, core.Hungry:
		m.eating[id] = false
	}
}

// OnCrash feeds a crash to the monitor. A crashed process that was
// eating holds its critical section forever but is no longer live, so
// later eats by neighbors do not count as violations (the paper's ◇WX
// concerns live neighbors only).
func (m *ExclusionMonitor) OnCrash(_ sim.Time, id int) { m.crashed[id] = true }

// OnRestart feeds a crash-recovery to the monitor: the process is live
// again with fresh dining state (thinking, not eating), so its eats
// count toward ◇WX once more.
func (m *ExclusionMonitor) OnRestart(_ sim.Time, id int) {
	m.crashed[id] = false
	m.eating[id] = false
}

// Violations returns every recorded mistake in time order.
func (m *ExclusionMonitor) Violations() []Violation {
	out := make([]Violation, len(m.viol))
	copy(out, m.viol)
	return out
}

// Count returns the total number of violations.
func (m *ExclusionMonitor) Count() int { return len(m.viol) }

// CountAfter returns the number of violations at or after t — the
// figure that must be zero once the failure detector has converged.
func (m *ExclusionMonitor) CountAfter(t sim.Time) int {
	n := 0
	for _, v := range m.viol {
		if v.At >= t {
			n++
		}
	}
	return n
}

// LastViolation returns the time of the final mistake and whether any
// occurred.
func (m *ExclusionMonitor) LastViolation() (sim.Time, bool) {
	if len(m.viol) == 0 {
		return 0, false
	}
	return m.viol[len(m.viol)-1].At, true
}
