package metrics

import (
	"repro/internal/graph"
)

// Reset support. A sweep runs thousands of short simulations back to
// back; constructing a fresh Suite per run makes the monitors' backing
// slices and maps the dominant allocation. Each monitor therefore
// knows how to return to its initial state while keeping its capacity,
// and Suite.Reset rewinds the whole bundle for the next run. Reset
// must leave a monitor observably identical to a newly constructed one
// — the sweep determinism-equivalence test runs the same specs through
// fresh and recycled suites and requires byte-identical results.

// resize returns s with exactly n zeroed elements, reusing the backing
// array when it is large enough.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Reset rewinds the monitor for a new run over conflict graph g.
func (m *ExclusionMonitor) Reset(g *graph.Graph) {
	m.g = g
	m.eating = resize(m.eating, g.N())
	m.crashed = resize(m.crashed, g.N())
	m.viol = m.viol[:0]
}

// Reset rewinds the monitor for a new run over conflict graph g.
func (m *OvertakeMonitor) Reset(g *graph.Graph) {
	n := g.N()
	m.g = g
	m.hungryAt = resize(m.hungryAt, n)
	m.hungry = resize(m.hungry, n)
	m.crashed = resize(m.crashed, n)
	if cap(m.count) < n {
		m.count = make([][]int, n)
	} else {
		m.count = m.count[:n]
	}
	for i := range m.count {
		m.count[i] = resize(m.count[i], n)
	}
	m.windows = m.windows[:0]
}

// Reset rewinds the monitor for a new run over n processes.
func (m *ProgressMonitor) Reset(n int) {
	m.n = n
	m.hungryAt = resize(m.hungryAt, n)
	m.hungry = resize(m.hungry, n)
	m.crashed = resize(m.crashed, n)
	m.perProc = resize(m.perProc, n)
	m.latencies = m.latencies[:0]
}

// Reset rewinds the monitor for a new run over n processes.
func (m *OccupancyMonitor) Reset(n int) {
	m.n = n
	clear(m.inTransit)
	clear(m.highWater)
}

// Reset rewinds the monitor for a new run.
func (m *QuiescenceMonitor) Reset() {
	clear(m.crashedAt)
	clear(m.sendsAfter)
	clear(m.lastSendTo)
	m.totalCrashed = 0
}

// Reset rewinds the monitor for a new run.
func (m *MixMonitor) Reset() {
	clear(m.counts)
	m.other = 0
}

// Reset rewinds the monitor for a new run.
func (m *ReliabilityMonitor) Reset() {
	m.lost = 0
	m.retransmits = 0
	m.dupSuppressed = 0
	clear(m.crashedAt)
	m.retxToCrashed = 0
	m.lastRetxToCrash = 0
	m.haveRetxToCrash = false
}

// Reset rewinds every monitor for a new run over conflict graph g,
// keeping allocated capacity. A Suite reset this way is observably
// identical to NewSuite(g).
func (s *Suite) Reset(g *graph.Graph) {
	s.Exclusion.Reset(g)
	s.Overtake.Reset(g)
	s.Progress.Reset(g.N())
	s.Occupancy.Reset(g.N())
	s.Quiescence.Reset()
	s.Mix.Reset()
	s.Reliability.Reset()
}
