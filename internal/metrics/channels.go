package metrics

import (
	"repro/internal/sim"
)

// OccupancyMonitor measures joint per-edge channel occupancy: the
// number of dining messages simultaneously in transit on an undirected
// edge (both directions combined). The paper's Section 7 bounds this by
// four: one ping/ack initiated by each endpoint plus the unique fork
// and the unique token.
type OccupancyMonitor struct {
	n         int
	inTransit map[[2]int]int
	highWater map[[2]int]int
}

// NewOccupancyMonitor creates a monitor for n processes.
func NewOccupancyMonitor(n int) *OccupancyMonitor {
	return &OccupancyMonitor{
		n:         n,
		inTransit: make(map[[2]int]int),
		highWater: make(map[[2]int]int),
	}
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// OnSend implements the sim.Observer send hook.
func (m *OccupancyMonitor) OnSend(_ sim.Time, from, to int, _ any) {
	k := edgeKey(from, to)
	m.inTransit[k]++
	if m.inTransit[k] > m.highWater[k] {
		m.highWater[k] = m.inTransit[k]
	}
}

// OnDeliver implements the sim.Observer deliver hook.
func (m *OccupancyMonitor) OnDeliver(_ sim.Time, from, to int, _ any) {
	m.inTransit[edgeKey(from, to)]--
}

// OnDrop implements the sim.Observer drop hook (deliveries to crashed
// processes still vacate the channel).
func (m *OccupancyMonitor) OnDrop(at sim.Time, from, to int, payload any) {
	m.OnDeliver(at, from, to, payload)
}

// OnLose implements the sim.Observer lose hook (messages destroyed by
// injected channel faults also vacate the channel).
func (m *OccupancyMonitor) OnLose(at sim.Time, from, to int, payload any) {
	m.OnDeliver(at, from, to, payload)
}

// EdgeHighWater returns the maximum joint occupancy ever seen on edge
// {a, b}.
func (m *OccupancyMonitor) EdgeHighWater(a, b int) int {
	return m.highWater[edgeKey(a, b)]
}

// MaxHighWater returns the maximum joint occupancy over all edges — the
// figure the paper bounds by 4.
func (m *OccupancyMonitor) MaxHighWater() int {
	best := 0
	for _, hw := range m.highWater {
		if hw > best {
			best = hw
		}
	}
	return best
}

// Observer returns a sim.Observer wired to this monitor, for installing
// on the dining network.
func (m *OccupancyMonitor) Observer() sim.Observer {
	return sim.Observer{OnSend: m.OnSend, OnDeliver: m.OnDeliver, OnDrop: m.OnDrop, OnLose: m.OnLose}
}

// QuiescenceMonitor tracks dining messages addressed to crashed
// processes. The paper's Section 7 argues correct processes eventually
// stop communicating with crashed neighbors: after a crash, each live
// neighbor sends at most one more ping and one more token/fork-request
// (which are never answered), and then the edge falls silent.
type QuiescenceMonitor struct {
	crashedAt    map[int]sim.Time
	sendsAfter   map[int]int // sends to j after j crashed
	lastSendTo   map[int]sim.Time
	totalCrashed int
}

// NewQuiescenceMonitor creates an empty monitor.
func NewQuiescenceMonitor() *QuiescenceMonitor {
	return &QuiescenceMonitor{
		crashedAt:  make(map[int]sim.Time),
		sendsAfter: make(map[int]int),
		lastSendTo: make(map[int]sim.Time),
	}
}

// OnCrash records a crash.
func (m *QuiescenceMonitor) OnCrash(at sim.Time, id int) {
	if _, dup := m.crashedAt[id]; !dup {
		m.crashedAt[id] = at
		m.totalCrashed++
	}
}

// OnSend implements the sim.Observer send hook: it counts messages
// addressed to already-crashed destinations.
func (m *QuiescenceMonitor) OnSend(at sim.Time, _ int, to int, _ any) {
	if _, crashed := m.crashedAt[to]; crashed {
		m.sendsAfter[to]++
		if at > m.lastSendTo[to] {
			m.lastSendTo[to] = at
		}
	}
}

// SendsAfterCrash returns how many messages were sent to id after its
// crash.
func (m *QuiescenceMonitor) SendsAfterCrash(id int) int { return m.sendsAfter[id] }

// TotalSendsAfterCrash sums sends-after-crash over all crashed
// processes.
func (m *QuiescenceMonitor) TotalSendsAfterCrash() int {
	total := 0
	for _, c := range m.sendsAfter {
		total += c
	}
	return total
}

// LastSendToCrashed returns the latest time any message was sent to a
// crashed process, and whether any was.
func (m *QuiescenceMonitor) LastSendToCrashed() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, t := range m.lastSendTo {
		if !found || t > best {
			best = t
			found = true
		}
	}
	return best, found
}

// QuiescentBy reports whether no message was sent to any crashed
// process at or after t.
func (m *QuiescenceMonitor) QuiescentBy(t sim.Time) bool {
	for _, last := range m.lastSendTo {
		if last >= t {
			return false
		}
	}
	return true
}
