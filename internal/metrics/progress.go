package metrics

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// SessionStats summarizes hungry-session latency for wait-freedom
// measurements (Theorem 2).
type SessionStats struct {
	Completed  int
	MaxLatency sim.Time
	MeanX100   sim.Time // mean latency ×100 (integer arithmetic only)
	P99        sim.Time
}

// ProgressMonitor tracks hungry-session latency per process and detects
// starvation: live processes whose hungry session never completed.
type ProgressMonitor struct {
	n         int
	hungryAt  []sim.Time
	hungry    []bool
	crashed   []bool
	latencies []sim.Time
	perProc   []int // completed sessions per process
}

// NewProgressMonitor creates a monitor for n processes.
func NewProgressMonitor(n int) *ProgressMonitor {
	return &ProgressMonitor{
		n:        n,
		hungryAt: make([]sim.Time, n),
		hungry:   make([]bool, n),
		crashed:  make([]bool, n),
		perProc:  make([]int, n),
	}
}

// OnTransition feeds a dining transition to the monitor.
func (m *ProgressMonitor) OnTransition(at sim.Time, id int, _, to core.State) {
	switch to {
	case core.Hungry:
		m.hungry[id] = true
		m.hungryAt[id] = at
	case core.Eating:
		if m.hungry[id] {
			m.latencies = append(m.latencies, at-m.hungryAt[id])
			m.perProc[id]++
			m.hungry[id] = false
		}
	case core.Thinking:
		// The latency sample was taken on entry to Eating; leaving the
		// critical section needs no accounting.
	}
}

// OnCrash feeds a crash to the monitor.
func (m *ProgressMonitor) OnCrash(_ sim.Time, id int) {
	m.crashed[id] = true
	m.hungry[id] = false
}

// OnRestart feeds a crash-recovery: the process rejoins live with
// fresh dining state, so it counts toward starvation checks again (its
// next hungry session opens on the first Hungry transition).
func (m *ProgressMonitor) OnRestart(_ sim.Time, id int) {
	m.crashed[id] = false
	m.hungry[id] = false
}

// Starving returns the live processes that are still hungry at time
// end, with how long they have been waiting. After a generous horizon,
// a wait-free algorithm leaves this empty (up to sessions that began
// near the end; callers pass a horizon that excludes those).
func (m *ProgressMonitor) Starving(end sim.Time, olderThan sim.Time) []int {
	var out []int
	for i := 0; i < m.n; i++ {
		if m.hungry[i] && !m.crashed[i] && end-m.hungryAt[i] >= olderThan {
			out = append(out, i)
		}
	}
	return out
}

// HungrySince returns when live process i's open hungry session began;
// ok is false if i is not currently hungry (or crashed).
func (m *ProgressMonitor) HungrySince(i int) (sim.Time, bool) {
	if i < 0 || i >= m.n || !m.hungry[i] || m.crashed[i] {
		return 0, false
	}
	return m.hungryAt[i], true
}

// CompletedSessions returns per-process completed hungry sessions.
func (m *ProgressMonitor) CompletedSessions() []int {
	out := make([]int, m.n)
	copy(out, m.perProc)
	return out
}

// Stats aggregates latencies of completed sessions. It sorts the
// sample buffer in place (the samples' arrival order is never read
// back), so calling it costs no allocation even on long runs.
func (m *ProgressMonitor) Stats() SessionStats {
	s := SessionStats{Completed: len(m.latencies)}
	if s.Completed == 0 {
		return s
	}
	sorted := m.latencies
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var sum sim.Time
	for _, l := range sorted {
		sum += l
	}
	s.MaxLatency = sorted[len(sorted)-1]
	s.MeanX100 = sum * 100 / sim.Time(len(sorted))
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	s.P99 = sorted[idx]
	return s
}
