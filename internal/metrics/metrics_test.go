package metrics

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

func TestExclusionMonitorDetectsOverlap(t *testing.T) {
	g := graph.Path(3)
	m := NewExclusionMonitor(g)
	m.OnTransition(10, 0, core.Hungry, core.Eating)
	m.OnTransition(12, 1, core.Hungry, core.Eating) // neighbor overlap!
	m.OnTransition(14, 2, core.Hungry, core.Eating) // 2 not neighbor of 0; neighbor of 1 → violation
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	v := m.Violations()
	if v[0].At != 12 || v[1].At != 14 {
		t.Fatalf("violations = %+v", v)
	}
	if m.CountAfter(13) != 1 {
		t.Fatalf("CountAfter(13) = %d, want 1", m.CountAfter(13))
	}
	if last, ok := m.LastViolation(); !ok || last != 14 {
		t.Fatalf("LastViolation = %d,%v", last, ok)
	}
}

func TestExclusionMonitorNonNeighborsOK(t *testing.T) {
	g := graph.Path(3)
	m := NewExclusionMonitor(g)
	m.OnTransition(1, 0, core.Hungry, core.Eating)
	m.OnTransition(2, 2, core.Hungry, core.Eating) // 0 and 2 are not adjacent
	if m.Count() != 0 {
		t.Fatalf("Count = %d, want 0 for non-neighbors", m.Count())
	}
}

func TestExclusionMonitorSequentialOK(t *testing.T) {
	g := graph.Path(2)
	m := NewExclusionMonitor(g)
	m.OnTransition(1, 0, core.Hungry, core.Eating)
	m.OnTransition(5, 0, core.Eating, core.Thinking)
	m.OnTransition(6, 1, core.Hungry, core.Eating)
	if m.Count() != 0 {
		t.Fatalf("Count = %d, want 0 for sequential eats", m.Count())
	}
}

func TestExclusionMonitorCrashedNeighborNotLive(t *testing.T) {
	g := graph.Path(2)
	m := NewExclusionMonitor(g)
	m.OnTransition(1, 0, core.Hungry, core.Eating)
	m.OnCrash(2, 0) // 0 crashes while eating
	m.OnTransition(3, 1, core.Hungry, core.Eating)
	if m.Count() != 0 {
		t.Fatalf("Count = %d; eating beside a crashed eater is not a ◇WX violation", m.Count())
	}
}

func TestOvertakeMonitorCounts(t *testing.T) {
	g := graph.Path(2)
	m := NewOvertakeMonitor(g)
	m.OnTransition(0, 1, core.Thinking, core.Hungry) // victim 1 hungry
	for i := 0; i < 3; i++ {
		m.OnTransition(sim.Time(10+i*10), 0, core.Hungry, core.Eating)
		m.OnTransition(sim.Time(15+i*10), 0, core.Eating, core.Thinking)
	}
	m.OnTransition(40, 1, core.Hungry, core.Eating) // victim finally eats
	if m.MaxCount() != 3 {
		t.Fatalf("MaxCount = %d, want 3", m.MaxCount())
	}
	ws := m.Windows()
	if len(ws) != 1 {
		t.Fatalf("windows = %+v, want 1", ws)
	}
	w := ws[0]
	if w.Overtaker != 0 || w.Victim != 1 || w.Count != 3 || !w.Closed {
		t.Fatalf("window = %+v", w)
	}
	if at, ok := m.LastExcessWindow(2); !ok || at != 0 {
		t.Fatalf("LastExcessWindow(2) = %d,%v, want 0,true", at, ok)
	}
	if _, ok := m.LastExcessWindow(3); ok {
		t.Fatal("no window exceeds 3")
	}
}

func TestOvertakeMonitorResetOnNewSession(t *testing.T) {
	g := graph.Path(2)
	m := NewOvertakeMonitor(g)
	m.OnTransition(0, 1, core.Thinking, core.Hungry)
	m.OnTransition(5, 0, core.Hungry, core.Eating)
	m.OnTransition(8, 1, core.Hungry, core.Eating) // window closes with count 1
	m.OnTransition(9, 1, core.Eating, core.Thinking)
	m.OnTransition(10, 1, core.Thinking, core.Hungry) // new session
	m.OnTransition(11, 0, core.Hungry, core.Eating)
	m.OnTransition(12, 1, core.Hungry, core.Eating)
	m.Finish(20)
	if m.MaxCount() != 1 {
		t.Fatalf("MaxCount = %d, want 1 (sessions measured independently)", m.MaxCount())
	}
	if m.MaxCountFrom(10) != 1 {
		t.Fatalf("MaxCountFrom(10) = %d, want 1", m.MaxCountFrom(10))
	}
	if m.MaxCountFrom(15) != 0 {
		t.Fatalf("MaxCountFrom(15) = %d, want 0", m.MaxCountFrom(15))
	}
}

func TestOvertakeMonitorCrashClosesWindow(t *testing.T) {
	g := graph.Path(2)
	m := NewOvertakeMonitor(g)
	m.OnTransition(0, 1, core.Thinking, core.Hungry)
	m.OnTransition(5, 0, core.Hungry, core.Eating)
	m.OnCrash(7, 1) // hungry victim crashes: window closes
	m.OnTransition(8, 0, core.Eating, core.Thinking)
	m.OnTransition(9, 0, core.Thinking, core.Hungry)
	m.OnTransition(10, 0, core.Hungry, core.Eating) // no live hungry neighbor
	m.Finish(20)
	var victim1 []OvertakeWindow
	for _, w := range m.Windows() {
		if w.Victim == 1 {
			victim1 = append(victim1, w)
		}
	}
	if len(victim1) != 1 || victim1[0].Count != 1 || victim1[0].ClosedAt != 7 {
		t.Fatalf("victim-1 windows = %+v", victim1)
	}
	if m.MaxCount() != 1 {
		t.Fatalf("MaxCount = %d, want 1", m.MaxCount())
	}
}

func TestOvertakeMonitorFinishMarksOpenWindows(t *testing.T) {
	g := graph.Path(2)
	m := NewOvertakeMonitor(g)
	m.OnTransition(3, 1, core.Thinking, core.Hungry)
	m.OnTransition(5, 0, core.Hungry, core.Eating)
	m.Finish(100)
	ws := m.Windows()
	if len(ws) != 1 || ws[0].Closed || ws[0].ClosedAt != 100 || ws[0].Count != 1 {
		t.Fatalf("windows = %+v", ws)
	}
}

func TestProgressMonitorLatency(t *testing.T) {
	m := NewProgressMonitor(2)
	m.OnTransition(10, 0, core.Thinking, core.Hungry)
	m.OnTransition(25, 0, core.Hungry, core.Eating)
	m.OnTransition(30, 1, core.Thinking, core.Hungry)
	s := m.Stats()
	if s.Completed != 1 || s.MaxLatency != 15 {
		t.Fatalf("stats = %+v", s)
	}
	if got := m.CompletedSessions(); got[0] != 1 || got[1] != 0 {
		t.Fatalf("CompletedSessions = %v", got)
	}
	if starving := m.Starving(100, 50); len(starving) != 1 || starving[0] != 1 {
		t.Fatalf("Starving = %v, want [1]", starving)
	}
	if starving := m.Starving(100, 80); len(starving) != 0 {
		t.Fatalf("Starving with high threshold = %v, want empty", starving)
	}
	if since, ok := m.HungrySince(1); !ok || since != 30 {
		t.Fatalf("HungrySince(1) = %d,%v", since, ok)
	}
	if _, ok := m.HungrySince(0); ok {
		t.Fatal("process 0 is eating, not hungry")
	}
}

func TestProgressMonitorCrashedNotStarving(t *testing.T) {
	m := NewProgressMonitor(1)
	m.OnTransition(0, 0, core.Thinking, core.Hungry)
	m.OnCrash(5, 0)
	if starving := m.Starving(1000, 1); len(starving) != 0 {
		t.Fatalf("crashed process counted as starving: %v", starving)
	}
}

func TestProgressStatsEmpty(t *testing.T) {
	m := NewProgressMonitor(1)
	s := m.Stats()
	if s.Completed != 0 || s.MaxLatency != 0 || s.P99 != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestOccupancyMonitor(t *testing.T) {
	m := NewOccupancyMonitor(3)
	m.OnSend(1, 0, 1, nil)
	m.OnSend(2, 1, 0, nil) // same undirected edge
	m.OnSend(3, 1, 2, nil) // different edge
	if m.EdgeHighWater(0, 1) != 2 {
		t.Fatalf("edge {0,1} high water = %d, want 2", m.EdgeHighWater(0, 1))
	}
	if m.EdgeHighWater(1, 0) != 2 {
		t.Fatal("edge key must be undirected")
	}
	m.OnDeliver(4, 0, 1, nil)
	m.OnDrop(5, 1, 0, nil)
	m.OnSend(6, 0, 1, nil)
	if m.EdgeHighWater(0, 1) != 2 {
		t.Fatalf("high water should remain 2, got %d", m.EdgeHighWater(0, 1))
	}
	if m.MaxHighWater() != 2 {
		t.Fatalf("MaxHighWater = %d, want 2", m.MaxHighWater())
	}
	obs := m.Observer()
	if obs.OnSend == nil || obs.OnDeliver == nil || obs.OnDrop == nil {
		t.Fatal("Observer must wire all hooks")
	}
}

func TestQuiescenceMonitor(t *testing.T) {
	m := NewQuiescenceMonitor()
	m.OnSend(1, 0, 1, nil) // before crash: not counted
	m.OnCrash(5, 1)
	m.OnCrash(6, 1) // duplicate ignored
	m.OnSend(7, 0, 1, nil)
	m.OnSend(9, 2, 1, nil)
	if m.SendsAfterCrash(1) != 2 {
		t.Fatalf("SendsAfterCrash = %d, want 2", m.SendsAfterCrash(1))
	}
	if m.TotalSendsAfterCrash() != 2 {
		t.Fatalf("TotalSendsAfterCrash = %d, want 2", m.TotalSendsAfterCrash())
	}
	if last, ok := m.LastSendToCrashed(); !ok || last != 9 {
		t.Fatalf("LastSendToCrashed = %d,%v", last, ok)
	}
	if m.QuiescentBy(9) {
		t.Fatal("send at 9 means not quiescent by 9")
	}
	if !m.QuiescentBy(10) {
		t.Fatal("no sends at/after 10: quiescent")
	}
}

func TestMixMonitor(t *testing.T) {
	m := NewMixMonitor()
	m.OnSend(1, 0, 1, core.Message{Kind: core.Ping})
	m.OnSend(2, 1, 0, core.Message{Kind: core.Ack})
	m.OnSend(3, 0, 1, core.Message{Kind: core.Ping})
	m.OnSend(4, 0, 1, core.Message{Kind: core.Fork})
	m.OnSend(5, 0, 1, "not-a-dining-message")
	if m.Count(core.Ping) != 2 || m.Count(core.Ack) != 1 || m.Count(core.Fork) != 1 {
		t.Fatalf("counts: ping=%d ack=%d fork=%d", m.Count(core.Ping), m.Count(core.Ack), m.Count(core.Fork))
	}
	if m.Total() != 4 || m.Other() != 1 {
		t.Fatalf("total=%d other=%d", m.Total(), m.Other())
	}
	if m.PerSessionX100(core.Ping, 4) != 50 {
		t.Fatalf("PerSessionX100 = %d, want 50", m.PerSessionX100(core.Ping, 4))
	}
	if m.PerSessionX100(core.Ping, 0) != 0 {
		t.Fatal("zero sessions must not divide")
	}
}

func TestSuiteFansOut(t *testing.T) {
	g := graph.Path(2)
	s := NewSuite(g)
	s.OnTransition(1, 0, core.Thinking, core.Hungry)
	s.OnTransition(2, 0, core.Hungry, core.Eating)
	s.OnTransition(3, 1, core.Thinking, core.Hungry)
	s.OnTransition(4, 1, core.Hungry, core.Eating) // violation + overtake windows
	s.OnCrash(5, 0)
	obs := s.Observer()
	obs.OnSend(6, 1, 0, nil)
	obs.OnDeliver(7, 1, 0, nil)
	s.Finish(10)
	if s.Exclusion.Count() != 1 {
		t.Fatalf("suite exclusion count = %d, want 1", s.Exclusion.Count())
	}
	if s.Progress.Stats().Completed != 2 {
		t.Fatalf("suite progress completed = %d, want 2", s.Progress.Stats().Completed)
	}
	if s.Quiescence.SendsAfterCrash(0) != 1 {
		t.Fatal("suite quiescence did not see the send")
	}
	if s.Occupancy.EdgeHighWater(0, 1) != 1 {
		t.Fatal("suite occupancy did not see the send")
	}
}
