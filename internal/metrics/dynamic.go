package metrics

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Dynamic monitors: the churn-tolerant counterparts of
// ExclusionMonitor and ProgressMonitor. The static monitors are
// indexed by a fixed conflict graph frozen at construction; the
// dining-as-a-service layer adds and removes processes and edges at
// runtime, and its correctness bar is stated against the *committed*
// graph at each instant — an added edge constrains exclusion only from
// its commit, a deleted edge until its commit. These monitors therefore
// carry the membership as mutable state, mutated by the same committed
// changes that mutate the diners.
//
// Determinism contract: adjacency is kept as sorted slices, never
// iterated from a map, so violation order is a pure function of the
// call sequence (the churn soak byte-compares rendered traces).

// DynamicExclusionMonitor detects simultaneous eating by live
// neighbors over a mutable conflict graph.
type DynamicExclusionMonitor struct {
	adj     map[int][]int // sorted neighbor lists of the committed graph
	eating  map[int]bool
	crashed map[int]bool
	viol    []Violation
}

// NewDynamicExclusionMonitor creates an empty monitor; membership
// arrives via AddProc/AddEdge.
func NewDynamicExclusionMonitor() *DynamicExclusionMonitor {
	return &DynamicExclusionMonitor{
		adj:     make(map[int][]int),
		eating:  make(map[int]bool),
		crashed: make(map[int]bool),
	}
}

// AddProc registers process id with no edges. Re-adding is a no-op.
func (m *DynamicExclusionMonitor) AddProc(id int) {
	if _, ok := m.adj[id]; !ok {
		m.adj[id] = nil
	}
}

// RemoveProc deregisters the process and severs all its edges.
func (m *DynamicExclusionMonitor) RemoveProc(id int) {
	for _, j := range m.adj[id] {
		m.adj[j] = removeSortedInt(m.adj[j], id)
	}
	delete(m.adj, id)
	delete(m.eating, id)
	delete(m.crashed, id)
}

// AddEdge commits the conflict edge {a, b}; both endpoints must be
// registered. From this instant simultaneous eating by a and b counts.
func (m *DynamicExclusionMonitor) AddEdge(a, b int) {
	m.AddProc(a)
	m.AddProc(b)
	m.adj[a] = insertSortedInt(m.adj[a], b)
	m.adj[b] = insertSortedInt(m.adj[b], a)
}

// RemoveEdge removes the conflict edge {a, b}; from this instant a and
// b may eat together legally.
func (m *DynamicExclusionMonitor) RemoveEdge(a, b int) {
	m.adj[a] = removeSortedInt(m.adj[a], b)
	m.adj[b] = removeSortedInt(m.adj[b], a)
}

// OnTransition feeds a dining transition to the monitor.
func (m *DynamicExclusionMonitor) OnTransition(at sim.Time, id int, _, to core.State) {
	switch to {
	case core.Eating:
		m.eating[id] = true
		for _, j := range m.adj[id] {
			if m.eating[j] && !m.crashed[j] && !m.crashed[id] {
				m.viol = append(m.viol, Violation{At: at, A: id, B: j})
			}
		}
	case core.Thinking, core.Hungry:
		m.eating[id] = false
	}
}

// OnCrash marks the process down; its held critical section no longer
// counts against live neighbors.
func (m *DynamicExclusionMonitor) OnCrash(_ sim.Time, id int) { m.crashed[id] = true }

// OnRestart marks the process live again with fresh dining state.
func (m *DynamicExclusionMonitor) OnRestart(_ sim.Time, id int) {
	m.crashed[id] = false
	m.eating[id] = false
}

// Violations returns every recorded mistake in time order.
func (m *DynamicExclusionMonitor) Violations() []Violation {
	out := make([]Violation, len(m.viol))
	copy(out, m.viol)
	return out
}

// Count returns the total number of violations.
func (m *DynamicExclusionMonitor) Count() int { return len(m.viol) }

// DynamicProgressMonitor tracks hungry-session latency and starvation
// over a mutable process set.
type DynamicProgressMonitor struct {
	hungryAt  map[int]sim.Time
	hungry    map[int]bool
	crashed   map[int]bool
	perProc   map[int]int
	latencies []sim.Time
}

// NewDynamicProgressMonitor creates an empty monitor.
func NewDynamicProgressMonitor() *DynamicProgressMonitor {
	return &DynamicProgressMonitor{
		hungryAt: make(map[int]sim.Time),
		hungry:   make(map[int]bool),
		crashed:  make(map[int]bool),
		perProc:  make(map[int]int),
	}
}

// AddProc registers a process. Re-adding is a no-op (state kept).
func (m *DynamicProgressMonitor) AddProc(id int) {
	if _, ok := m.perProc[id]; !ok {
		m.perProc[id] = 0
	}
}

// RemoveProc deregisters a process; its open session (if any) is
// discarded, not counted as starvation.
func (m *DynamicProgressMonitor) RemoveProc(id int) {
	delete(m.hungryAt, id)
	delete(m.hungry, id)
	delete(m.crashed, id)
	delete(m.perProc, id)
}

// OnTransition feeds a dining transition to the monitor.
func (m *DynamicProgressMonitor) OnTransition(at sim.Time, id int, _, to core.State) {
	switch to {
	case core.Hungry:
		m.hungry[id] = true
		m.hungryAt[id] = at
	case core.Eating:
		if m.hungry[id] {
			m.latencies = append(m.latencies, at-m.hungryAt[id])
			m.perProc[id]++
			m.hungry[id] = false
		}
	case core.Thinking:
		// An abort (drain recall) closes the session without a latency
		// sample: the service re-opens it after the commit.
		m.hungry[id] = false
	}
}

// OnCrash feeds a crash to the monitor.
func (m *DynamicProgressMonitor) OnCrash(_ sim.Time, id int) {
	m.crashed[id] = true
	m.hungry[id] = false
}

// OnRestart feeds a crash-recovery to the monitor.
func (m *DynamicProgressMonitor) OnRestart(_ sim.Time, id int) {
	m.crashed[id] = false
	m.hungry[id] = false
}

// Starving returns the registered live processes still hungry at end
// whose session is at least olderThan old, in ascending ID order.
func (m *DynamicProgressMonitor) Starving(end sim.Time, olderThan sim.Time) []int {
	var out []int
	for id, h := range m.hungry {
		if h && !m.crashed[id] && end-m.hungryAt[id] >= olderThan {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Completed returns the total completed hungry sessions.
func (m *DynamicProgressMonitor) Completed() int { return len(m.latencies) }

// CompletedOf returns completed sessions for one process.
func (m *DynamicProgressMonitor) CompletedOf(id int) int { return m.perProc[id] }

// Stats aggregates latencies of completed sessions (sorts the sample
// buffer in place, like ProgressMonitor.Stats).
func (m *DynamicProgressMonitor) Stats() SessionStats {
	s := SessionStats{Completed: len(m.latencies)}
	if s.Completed == 0 {
		return s
	}
	sorted := m.latencies
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var sum sim.Time
	for _, l := range sorted {
		sum += l
	}
	s.MaxLatency = sorted[len(sorted)-1]
	s.MeanX100 = sum * 100 / sim.Time(len(sorted))
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	s.P99 = sorted[idx]
	return s
}

func insertSortedInt(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSortedInt(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		s = append(s[:i], s[i+1:]...)
	}
	return s
}
