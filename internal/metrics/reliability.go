package metrics

import (
	"repro/internal/rlink"
	"repro/internal/sim"
)

// ReliabilityMonitor measures the cost of masking channel faults: how
// many messages the faulty network destroyed, how many frames the
// reliable-link sublayer resent, and how many duplicates it discarded.
// It also tracks retransmissions addressed to crashed processes, the
// quantity the quiescence argument requires to stay finite.
type ReliabilityMonitor struct {
	lost          uint64
	retransmits   uint64
	dupSuppressed uint64

	crashedAt       map[int]sim.Time
	retxToCrashed   uint64
	lastRetxToCrash sim.Time
	haveRetxToCrash bool
}

// NewReliabilityMonitor creates an empty monitor.
func NewReliabilityMonitor() *ReliabilityMonitor {
	return &ReliabilityMonitor{crashedAt: make(map[int]sim.Time)}
}

// OnLose implements the sim.Observer lose hook.
func (m *ReliabilityMonitor) OnLose(_ sim.Time, _, _ int, _ any) { m.lost++ }

// OnCrash records a crash so later retransmits to the process count as
// addressed-to-crashed.
func (m *ReliabilityMonitor) OnCrash(at sim.Time, id int) {
	if _, dup := m.crashedAt[id]; !dup {
		m.crashedAt[id] = at
	}
}

// RlinkObserver returns an rlink.Observer wired to this monitor.
func (m *ReliabilityMonitor) RlinkObserver() rlink.Observer {
	return rlink.Observer{
		OnRetransmit: func(at sim.Time, _, to int, _ uint64, _ any) {
			m.retransmits++
			if _, crashed := m.crashedAt[to]; crashed {
				m.retxToCrashed++
				if !m.haveRetxToCrash || at > m.lastRetxToCrash {
					m.lastRetxToCrash = at
					m.haveRetxToCrash = true
				}
			}
		},
		OnDupSuppressed: func(_ sim.Time, _, _ int, _ uint64) {
			m.dupSuppressed++
		},
	}
}

// MessagesLost returns how many wire messages injected faults
// destroyed.
func (m *ReliabilityMonitor) MessagesLost() uint64 { return m.lost }

// Retransmits returns how many frames the link layer resent.
func (m *ReliabilityMonitor) Retransmits() uint64 { return m.retransmits }

// DupSuppressed returns how many duplicate frames receivers discarded.
func (m *ReliabilityMonitor) DupSuppressed() uint64 { return m.dupSuppressed }

// RetransmitsToCrashed returns how many resent frames were addressed to
// an already-crashed process.
func (m *ReliabilityMonitor) RetransmitsToCrashed() uint64 { return m.retxToCrashed }

// LastRetransmitToCrashed returns when the final retransmit to a
// crashed process happened, and whether any did.
func (m *ReliabilityMonitor) LastRetransmitToCrashed() (sim.Time, bool) {
	return m.lastRetxToCrash, m.haveRetxToCrash
}
