package metrics

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// feedScript drives one fixed synthetic history through a Suite: a
// path graph where sessions complete, a neighbor overtakes, two
// neighbors eat simultaneously (a violation), a process crashes and
// still receives traffic, channels lose and duplicate messages, and
// the rlink layer retransmits. Every monitor accumulates something.
func feedScript(s *Suite) {
	obs := s.Observer()
	rl := s.Reliability.RlinkObserver()
	msg := func(k core.MsgKind, from, to int) core.Message {
		return core.Message{Kind: k, From: from, To: to}
	}

	// Session 1: process 0 eats while 1 waits hungry (overtake on 1).
	s.OnTransition(5, 0, core.Thinking, core.Hungry)
	s.OnTransition(6, 1, core.Thinking, core.Hungry)
	obs.OnSend(6, 0, 1, msg(core.Ping, 0, 1))
	obs.OnSend(6, 1, 0, msg(core.Ack, 1, 0))
	obs.OnDeliver(7, 0, 1, msg(core.Ping, 0, 1))
	obs.OnDeliver(7, 1, 0, msg(core.Ack, 1, 0))
	s.OnTransition(8, 0, core.Hungry, core.Eating)
	s.OnTransition(10, 0, core.Eating, core.Thinking)

	// Process 0 again overtakes still-hungry 1, then 1 finally eats.
	s.OnTransition(11, 0, core.Thinking, core.Hungry)
	s.OnTransition(12, 0, core.Hungry, core.Eating)
	s.OnTransition(14, 0, core.Eating, core.Thinking)
	s.OnTransition(15, 1, core.Hungry, core.Eating)

	// Violation: 2 starts eating while its neighbor 1 still eats.
	s.OnTransition(16, 2, core.Thinking, core.Hungry)
	obs.OnSend(16, 2, 1, msg(core.Request, 2, 1))
	obs.OnSend(17, 1, 2, msg(core.Fork, 1, 2))
	s.OnTransition(18, 2, core.Hungry, core.Eating)
	s.OnTransition(19, 1, core.Eating, core.Thinking)
	s.OnTransition(20, 2, core.Eating, core.Thinking)

	// Channel faults: one message lost on the wire, one dropped at a
	// partition, one non-dining payload.
	obs.OnSend(22, 0, 1, msg(core.Ping, 0, 1))
	obs.OnLose(23, 0, 1, msg(core.Ping, 0, 1))
	obs.OnSend(22, 1, 2, "heartbeat")
	obs.OnDrop(24, 1, 2, "heartbeat")

	// Crash of 2; traffic addressed to it afterward, then retransmits.
	s.OnCrash(30, 2)
	obs.OnSend(31, 1, 2, msg(core.Ping, 1, 2))
	obs.OnDeliver(32, 1, 2, msg(core.Ping, 1, 2))
	rl.OnRetransmit(33, 1, 2, 7, msg(core.Ping, 1, 2))
	rl.OnRetransmit(35, 0, 1, 3, msg(core.Request, 0, 1))
	rl.OnDupSuppressed(36, 1, 0, 3)

	// Process 1 goes hungry again and never eats: starving at the end.
	s.OnTransition(40, 1, core.Thinking, core.Hungry)

	s.Finish(100)
}

// snapshot renders every observable of every monitor as one canonical
// string.
func snapshot(s *Suite) string {
	var b strings.Builder
	fmt.Fprintf(&b, "exclusion: count=%d after15=%d\n", s.Exclusion.Count(), s.Exclusion.CountAfter(15))
	if last, ok := s.Exclusion.LastViolation(); ok {
		fmt.Fprintf(&b, "exclusion: last=%d\n", last)
	}
	for _, v := range s.Exclusion.Violations() {
		fmt.Fprintf(&b, "exclusion: violation=%+v\n", v)
	}
	fmt.Fprintf(&b, "overtake: max=%d from13=%d windows=%d\n",
		s.Overtake.MaxCount(), s.Overtake.MaxCountFrom(13), len(s.Overtake.Windows()))
	fmt.Fprintf(&b, "progress: stats=%+v completed=%v starving=%v\n",
		s.Progress.Stats(), s.Progress.CompletedSessions(), s.Progress.Starving(100, 20))
	if since, ok := s.Progress.HungrySince(1); ok {
		fmt.Fprintf(&b, "progress: hungry1since=%d\n", since)
	}
	fmt.Fprintf(&b, "occupancy: max=%d edge01=%d edge12=%d\n",
		s.Occupancy.MaxHighWater(), s.Occupancy.EdgeHighWater(0, 1), s.Occupancy.EdgeHighWater(1, 2))
	fmt.Fprintf(&b, "quiescence: total=%d to2=%d quiescentBy50=%v\n",
		s.Quiescence.TotalSendsAfterCrash(), s.Quiescence.SendsAfterCrash(2), s.Quiescence.QuiescentBy(50))
	if last, ok := s.Quiescence.LastSendToCrashed(); ok {
		fmt.Fprintf(&b, "quiescence: last=%d\n", last)
	}
	fmt.Fprintf(&b, "mix: ping=%d ack=%d request=%d fork=%d total=%d other=%d perSessionPingX100=%d\n",
		s.Mix.Count(core.Ping), s.Mix.Count(core.Ack), s.Mix.Count(core.Request), s.Mix.Count(core.Fork),
		s.Mix.Total(), s.Mix.Other(), s.Mix.PerSessionX100(core.Ping, s.Progress.Stats().Completed))
	fmt.Fprintf(&b, "reliability: lost=%d retx=%d retxCrashed=%d dedup=%d\n",
		s.Reliability.MessagesLost(), s.Reliability.Retransmits(),
		s.Reliability.RetransmitsToCrashed(), s.Reliability.DupSuppressed())
	if last, ok := s.Reliability.LastRetransmitToCrashed(); ok {
		fmt.Fprintf(&b, "reliability: lastRetxCrashed=%d\n", last)
	}
	return b.String()
}

// TestSuiteGolden locks the whole-suite accounting of the scripted
// history against a golden file.
func TestSuiteGolden(t *testing.T) {
	s := NewSuite(graph.Path(3))
	feedScript(s)
	got := snapshot(s)

	path := filepath.Join("testdata", "suite_script.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/metrics -run TestSuiteGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Fatalf("suite accounting drifted from golden:\n--- got\n%s--- want\n%s", got, want)
	}
}

// TestSuiteResetEquivalence is the contract behind Executor reuse: a
// Suite polluted by one history and then Reset must be observably
// identical to a brand-new Suite — same snapshot after the same feed,
// even when the graph changes shape and size across the reset.
func TestSuiteResetEquivalence(t *testing.T) {
	fresh := NewSuite(graph.Path(3))
	feedScript(fresh)

	reused := NewSuite(graph.Ring(8))
	feedScript(reused) // pollute every monitor on the other graph
	for i := 0; i < 8; i++ {
		reused.OnTransition(sim.Time(i), i, core.Thinking, core.Hungry)
		reused.OnCrash(sim.Time(50+i), i)
	}
	reused.Reset(graph.Path(3))
	feedScript(reused)

	if got, want := snapshot(reused), snapshot(fresh); got != want {
		t.Fatalf("reset suite diverged from fresh suite:\n--- reset\n%s--- fresh\n%s", got, want)
	}

	// Resetting to the same state twice must also be stable.
	reused.Reset(graph.Path(3))
	feedScript(reused)
	if got, want := snapshot(reused), snapshot(fresh); got != want {
		t.Fatalf("second reset diverged:\n--- reset\n%s--- fresh\n%s", got, want)
	}
}
