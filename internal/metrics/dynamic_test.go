package metrics

import (
	"testing"

	"repro/internal/core"
)

func TestDynamicExclusionEdgeChurn(t *testing.T) {
	m := NewDynamicExclusionMonitor()
	m.AddProc(0)
	m.AddProc(1)

	// No edge yet: simultaneous eating is legal.
	m.OnTransition(10, 0, core.Hungry, core.Eating)
	m.OnTransition(11, 1, core.Hungry, core.Eating)
	if m.Count() != 0 {
		t.Fatalf("violations before edge commit: %d", m.Count())
	}

	// Edge commits while both still eat; the next Eating entry by
	// either counts.
	m.AddEdge(0, 1)
	m.OnTransition(12, 0, core.Eating, core.Thinking)
	m.OnTransition(13, 0, core.Hungry, core.Eating)
	if m.Count() != 1 {
		t.Fatalf("violations after edge commit: %d, want 1", m.Count())
	}
	v := m.Violations()[0]
	if v.At != 13 || v.A != 0 || v.B != 1 {
		t.Fatalf("violation = %+v", v)
	}

	// Edge removal makes it legal again.
	m.RemoveEdge(0, 1)
	m.OnTransition(14, 0, core.Eating, core.Thinking)
	m.OnTransition(15, 0, core.Hungry, core.Eating)
	if m.Count() != 1 {
		t.Fatalf("violations after edge removal: %d, want 1", m.Count())
	}
}

func TestDynamicExclusionProcChurn(t *testing.T) {
	m := NewDynamicExclusionMonitor()
	m.AddEdge(0, 1) // registers both
	m.OnTransition(1, 0, core.Hungry, core.Eating)
	m.RemoveProc(1)
	// 1 is gone; a fresh process reusing ID 1 starts unconnected.
	m.AddProc(1)
	m.OnTransition(2, 1, core.Hungry, core.Eating)
	if m.Count() != 0 {
		t.Fatalf("violations across ID reuse: %d", m.Count())
	}
	// Crash semantics carry over from the static monitor.
	m.AddEdge(0, 1)
	m.OnCrash(3, 0)
	m.OnTransition(4, 1, core.Hungry, core.Eating)
	m.OnTransition(4, 1, core.Eating, core.Thinking)
	m.OnTransition(5, 1, core.Hungry, core.Eating)
	if m.Count() != 0 {
		t.Fatalf("violations against crashed neighbor: %d", m.Count())
	}
	m.OnRestart(6, 0)
	m.OnTransition(7, 0, core.Hungry, core.Eating)
	if m.Count() != 1 {
		t.Fatalf("violations after restart: %d, want 1", m.Count())
	}
}

func TestDynamicProgressChurn(t *testing.T) {
	m := NewDynamicProgressMonitor()
	m.AddProc(3)
	m.OnTransition(100, 3, core.Thinking, core.Hungry)
	if got := m.Starving(200, 50); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Starving = %v, want [3]", got)
	}
	// An abort closes the open session without a latency sample.
	m.OnTransition(150, 3, core.Hungry, core.Thinking)
	if got := m.Starving(200, 0); len(got) != 0 {
		t.Fatalf("Starving after abort = %v", got)
	}
	if m.Completed() != 0 {
		t.Fatalf("Completed = %d, want 0", m.Completed())
	}
	// A full session records latency.
	m.OnTransition(200, 3, core.Thinking, core.Hungry)
	m.OnTransition(260, 3, core.Hungry, core.Eating)
	if m.Completed() != 1 || m.CompletedOf(3) != 1 {
		t.Fatalf("Completed = %d/%d, want 1/1", m.Completed(), m.CompletedOf(3))
	}
	if s := m.Stats(); s.MaxLatency != 60 {
		t.Fatalf("MaxLatency = %d, want 60", s.MaxLatency)
	}
	// Deregistration discards the open session.
	m.OnTransition(300, 3, core.Thinking, core.Hungry)
	m.RemoveProc(3)
	if got := m.Starving(1000, 0); len(got) != 0 {
		t.Fatalf("Starving after RemoveProc = %v", got)
	}
}
