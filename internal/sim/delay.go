package sim

import "math/rand"

// DelayModel determines per-message network latency. Implementations
// must be deterministic given the rng stream.
type DelayModel interface {
	// Delay returns the latency of a message sent at time now from
	// process from to process to.
	Delay(now Time, from, to int, rng *rand.Rand) Time
}

// FixedDelay delivers every message after exactly D ticks.
type FixedDelay struct{ D Time }

// Delay implements DelayModel.
func (f FixedDelay) Delay(Time, int, int, *rand.Rand) Time { return max(f.D, 0) }

// UniformDelay draws latency uniformly from [Min, Max].
type UniformDelay struct{ Min, Max Time }

// Delay implements DelayModel.
func (u UniformDelay) Delay(_ Time, _, _ int, rng *rand.Rand) Time {
	lo, hi := u.Min, u.Max
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return lo + Time(rng.Int63n(int64(hi-lo)+1))
}

// GSTDelay models partial synchrony in the Dwork–Lynch–Stockmeyer
// style: before the global stabilization time GST, latency follows Pre
// (typically long and erratic); from GST on, it follows Post (bounded).
// A message sent before GST but still governed by Pre may arrive after
// GST, matching the standard model where only *eventual* bounds hold.
type GSTDelay struct {
	GST  Time
	Pre  DelayModel
	Post DelayModel
}

// Delay implements DelayModel.
func (g GSTDelay) Delay(now Time, from, to int, rng *rand.Rand) Time {
	if now < g.GST {
		return g.Pre.Delay(now, from, to, rng)
	}
	return g.Post.Delay(now, from, to, rng)
}

// SpikeDelay is an adversarial pre-GST model: latency is usually Base
// but with probability SpikeP jumps into [Base, Base+Spike]. It
// stresses failure-detector timeouts to force false positives.
type SpikeDelay struct {
	Base   Time
	Spike  Time
	SpikeP float64
}

// Delay implements DelayModel.
func (s SpikeDelay) Delay(_ Time, _, _ int, rng *rand.Rand) Time {
	d := s.Base
	if d < 0 {
		d = 0
	}
	if s.Spike > 0 && rng.Float64() < s.SpikeP {
		d += Time(rng.Int63n(int64(s.Spike) + 1))
	}
	return d
}

// DelayFunc adapts a function to the DelayModel interface.
type DelayFunc func(now Time, from, to int, rng *rand.Rand) Time

// Delay implements DelayModel.
func (f DelayFunc) Delay(now Time, from, to int, rng *rand.Rand) Time {
	return f(now, from, to, rng)
}

var (
	_ DelayModel = FixedDelay{}
	_ DelayModel = UniformDelay{}
	_ DelayModel = GSTDelay{}
	_ DelayModel = SpikeDelay{}
	_ DelayModel = DelayFunc(nil)
)
