package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestAtOrdersByTime(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if k.Now() != 100 {
		t.Fatalf("Now() = %d, want 100 after Run(100)", k.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of order: %v", order)
		}
	}
}

func TestPastEventsRunNow(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.At(50, func() {
		k.At(10, func() { fired = true }) // in the past; must run at 50
	})
	k.Run(50)
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if k.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", k.Now())
	}
}

func TestAfterNegative(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.After(-7, func() { fired = true })
	k.Step()
	if !fired || k.Now() != 0 {
		t.Fatalf("After(-7) fired=%v now=%d, want true/0", fired, k.Now())
	}
}

func TestStepEmpty(t *testing.T) {
	k := NewKernel(1)
	if k.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(10, func() { fired++ })
	k.At(20, func() { fired++ })
	k.Run(15)
	if fired != 1 {
		t.Fatalf("fired = %d events by t=15, want 1", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	k.Run(25)
	if fired != 2 {
		t.Fatalf("fired = %d events by t=25, want 2", fired)
	}
}

func TestRunUntilQuiet(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 5 {
			k.After(1, chain)
		}
	}
	k.After(1, chain)
	if !k.RunUntilQuiet(100) {
		t.Fatal("queue should have drained")
	}
	if n != 5 {
		t.Fatalf("chain ran %d times, want 5", n)
	}
}

func TestRunUntilQuietBudget(t *testing.T) {
	k := NewKernel(1)
	var forever func()
	forever = func() { k.After(1, forever) }
	k.After(1, forever)
	if k.RunUntilQuiet(50) {
		t.Fatal("infinite chain should exhaust the budget, not drain")
	}
	if k.Steps() != 50 {
		t.Fatalf("Steps() = %d, want 50", k.Steps())
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Ticker(10, func() bool { return ticks >= 3 }, func() { ticks++ })
	k.Run(1000)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3 (stopped by predicate)", ticks)
	}
	if k.Pending() != 0 {
		t.Fatalf("stopped ticker left %d pending events", k.Pending())
	}
}

func TestTickerZeroPeriod(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Ticker(0, func() bool { return ticks >= 4 }, func() { ticks++ })
	k.Run(10)
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4 (period clamped to 1)", ticks)
	}
}

func TestTieBreakModes(t *testing.T) {
	order := func(mode TieBreak) []int {
		k := NewKernel(3)
		k.SetTieBreak(mode)
		var got []int
		for i := 0; i < 6; i++ {
			i := i
			k.At(10, func() { got = append(got, i) })
		}
		k.Run(10)
		return got
	}
	fifo := order(FIFO)
	for i, v := range fifo {
		if v != i {
			t.Fatalf("FIFO order = %v", fifo)
		}
	}
	lifo := order(LIFO)
	for i, v := range lifo {
		if v != 5-i {
			t.Fatalf("LIFO order = %v", lifo)
		}
	}
	r1, r2 := order(Random), order(Random)
	if len(r1) != 6 || len(r2) != 6 {
		t.Fatal("random mode lost events")
	}
	same := true
	for i := range r1 {
		if r1[i] != r2[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("Random tie-break must be deterministic per seed")
	}
	// And with overwhelming probability not FIFO order for 6 events.
	isFIFO := true
	for i, v := range r1 {
		if v != i {
			isFIFO = false
		}
	}
	if isFIFO {
		t.Log("random permutation happened to be identity (unlikely but legal)")
	}
}

func TestFIFOHoldsUnderAdversarialTieBreak(t *testing.T) {
	// Same-tick sends on one channel must still deliver in order even
	// under LIFO/Random simultaneity.
	for _, mode := range []TieBreak{LIFO, Random} {
		k := NewKernel(9)
		k.SetTieBreak(mode)
		net := NewNetwork(k, 2, FixedDelay{D: 5})
		var got []int
		if err := net.Register(1, func(_ int, payload any) {
			got = append(got, payload.(int))
		}); err != nil {
			t.Fatal(err)
		}
		for m := 0; m < 10; m++ {
			if err := net.Send(0, 1, m); err != nil {
				t.Fatal(err)
			}
		}
		k.Run(1000)
		if len(got) != 10 {
			t.Fatalf("mode %d: delivered %d", mode, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("mode %d: FIFO violated: %v", mode, got)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := NewKernel(99)
		var samples []int64
		k.Ticker(3, func() bool { return len(samples) >= 20 }, func() {
			samples = append(samples, k.Rand().Int63n(1000))
		})
		k.Run(100)
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: however events are scheduled, execution is in nondecreasing
// time order.
func TestQuickMonotoneClock(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel(5)
		var times []Time
		for _, r := range raw {
			k.At(Time(r%500), func() { times = append(times, k.Now()) })
		}
		k.Run(1000)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
