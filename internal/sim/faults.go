package sim

// Channel-fault injection. The paper's channel model (Section 2)
// assumes reliable FIFO links; a FaultPlan makes that assumption an
// injectable adversary instead: per ordered edge, messages can be
// dropped with a probability, duplicated, lost in scheduled burst
// windows, or cut entirely by timed bipartitions. All randomness is
// drawn from the kernel's seeded RNG, so faulted runs stay a pure
// function of configuration and seed. Setting HealAt makes every fault
// cease at a known time — the GST-style eventual reliability that the
// rlink sublayer's guarantees (and the paper's eventual properties)
// are stated against.

// Burst is a scheduled loss window: while Start <= now < End, every
// message is additionally dropped with probability DropP.
type Burst struct {
	Start, End Time
	DropP      float64
}

// Partition cuts the network into Side and its complement during
// [Start, End): every message crossing the cut is lost. The partition
// heals at End (or at the plan's HealAt, whichever comes first).
type Partition struct {
	Start, End Time
	Side       []int
}

// EdgeFaults overrides the plan-wide probabilities for one ordered
// edge.
type EdgeFaults struct {
	DropP, DupP float64
}

// FaultPlan describes channel unreliability for a Network. The zero
// value injects nothing. Faults are applied per message at send time,
// deterministically from the kernel RNG; a dropped message still
// occupies its FIFO slot until its scheduled arrival time (it is lost
// "on the wire", not at the sender).
type FaultPlan struct {
	// DropP is the per-message loss probability on every edge.
	DropP float64
	// DupP is the per-message duplication probability: the duplicate is
	// a second, independently delayed copy on the same FIFO channel.
	DupP float64
	// Bursts are scheduled high-loss windows, additive to DropP.
	Bursts []Burst
	// Partitions are timed bipartitions.
	Partitions []Partition
	// Edges overrides DropP/DupP per ordered edge {from, to}.
	Edges map[[2]int]EdgeFaults
	// HealAt, when positive, is the time from which every fault ceases
	// — channels are perfectly reliable at and after HealAt. Zero means
	// the faults last forever.
	HealAt Time
}

// compiledFaults is a FaultPlan with partition sides compiled to sets,
// attached to a Network by SetFaults.
type compiledFaults struct {
	plan  FaultPlan
	sides []map[int]bool // parallel to plan.Partitions
}

func compileFaults(p *FaultPlan) *compiledFaults {
	if p == nil {
		return nil
	}
	c := &compiledFaults{plan: *p, sides: make([]map[int]bool, len(p.Partitions))}
	for i, part := range p.Partitions {
		side := make(map[int]bool, len(part.Side))
		for _, v := range part.Side {
			side[v] = true
		}
		c.sides[i] = side
	}
	return c
}

// healed reports whether all faults have ceased at time now.
func (c *compiledFaults) healed(now Time) bool {
	return c.plan.HealAt > 0 && now >= c.plan.HealAt
}

// partitioned reports whether the ordered edge crosses an active cut.
func (c *compiledFaults) partitioned(now Time, from, to int) bool {
	for i, p := range c.plan.Partitions {
		if now < p.Start || now >= p.End {
			continue
		}
		if c.sides[i][from] != c.sides[i][to] {
			return true
		}
	}
	return false
}

// dropP returns the effective loss probability for a message on the
// ordered edge at time now.
func (c *compiledFaults) dropP(now Time, from, to int) float64 {
	p := c.plan.DropP
	if ef, ok := c.plan.Edges[[2]int{from, to}]; ok {
		p = ef.DropP
	}
	for _, b := range c.plan.Bursts {
		if now >= b.Start && now < b.End && b.DropP > p {
			p = b.DropP
		}
	}
	return p
}

// dupP returns the effective duplication probability for the ordered
// edge.
func (c *compiledFaults) dupP(_ Time, from, to int) float64 {
	if ef, ok := c.plan.Edges[[2]int{from, to}]; ok {
		return ef.DupP
	}
	return c.plan.DupP
}
