package sim

import (
	"errors"
	"fmt"
)

// Handler receives a delivered message at a process.
type Handler func(from int, payload any)

// ErrProcRange reports an out-of-range process ID.
var ErrProcRange = errors.New("sim: process out of range")

// PairStats are per-ordered-pair channel statistics.
type PairStats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64 // delivered to a crashed destination (discarded)
	Lost       uint64 // destroyed by an injected channel fault
	Duplicated uint64 // extra copies created by an injected channel fault
	InTransit  int
	HighWater  int // max simultaneous in-transit messages ever
}

// Observer receives network-level events; any field may be nil. Used by
// the metrics layer to measure channel occupancy and quiescence without
// coupling the network to specific monitors.
type Observer struct {
	OnSend    func(at Time, from, to int, payload any)
	OnDeliver func(at Time, from, to int, payload any)
	OnDrop    func(at Time, from, to int, payload any)
	// OnLose fires when an injected channel fault destroys a message at
	// its scheduled arrival time.
	OnLose func(at Time, from, to int, payload any)
}

// MultiObserver fans network events out to several observers in order.
func MultiObserver(list ...Observer) Observer {
	return Observer{
		OnSend: func(at Time, from, to int, payload any) {
			for _, o := range list {
				if o.OnSend != nil {
					o.OnSend(at, from, to, payload)
				}
			}
		},
		OnDeliver: func(at Time, from, to int, payload any) {
			for _, o := range list {
				if o.OnDeliver != nil {
					o.OnDeliver(at, from, to, payload)
				}
			}
		},
		OnDrop: func(at Time, from, to int, payload any) {
			for _, o := range list {
				if o.OnDrop != nil {
					o.OnDrop(at, from, to, payload)
				}
			}
		},
		OnLose: func(at Time, from, to int, payload any) {
			for _, o := range list {
				if o.OnLose != nil {
					o.OnLose(at, from, to, payload)
				}
			}
		},
	}
}

// Network is a set of reliable FIFO point-to-point channels between n
// processes, simulated on a Kernel. Message latency is drawn from a
// DelayModel; FIFO order is enforced per ordered pair by never
// scheduling a delivery before the previous one from the same sender.
//
// Crash faults follow the paper's model: a crashed process ceases
// execution without warning and never recovers. The network drops
// deliveries to crashed processes (they would never process them) and
// refuses sends from crashed processes (they no longer take steps).
type Network struct {
	k        *Kernel
	delay    DelayModel
	n        int
	handlers []Handler
	crashed  []bool
	crashAt  []Time
	pairs    []pairState // one preallocated state per ordered pair
	obs      Observer
	faults   *compiledFaults
	// freeDeliv recycles in-flight delivery records. Ownership rule: a
	// record belongs to the wire from enqueue until runDelivery fires;
	// runDelivery copies its fields out and returns it to the pool
	// before invoking the handler, so handlers may send (and reuse it)
	// but must never retain a *delivery.
	freeDeliv []*delivery
}

// pairState is the per-ordered-pair channel state, kept in one slice so
// a sweep constructing many networks allocates (and walks) one n²-sized
// block instead of three.
type pairState struct {
	stats     PairStats
	lastDeliv Time // latest scheduled delivery time
	sentOn    bool // any message ever sent
}

// delivery is one wire copy scheduled for arrival, pooled to keep the
// per-message path allocation-free.
type delivery struct {
	net      *Network
	from, to int
	payload  any
	lost     bool
}

// runDelivery is the kernel callback for every scheduled arrival. It is
// a package-level function so AtCall schedules it without a closure.
func runDelivery(a any) {
	d := a.(*delivery)
	net, from, to, payload, lost := d.net, d.from, d.to, d.payload, d.lost
	d.net = nil
	d.payload = nil
	net.freeDeliv = append(net.freeDeliv, d)
	net.deliver(from, to, payload, lost)
}

// NewNetwork creates a network of n processes over kernel k with the
// given delay model.
func NewNetwork(k *Kernel, n int, delay DelayModel) *Network {
	if delay == nil {
		delay = FixedDelay{D: 1}
	}
	return &Network{
		k:        k,
		delay:    delay,
		n:        n,
		handlers: make([]Handler, n),
		crashed:  make([]bool, n),
		crashAt:  make([]Time, n),
		pairs:    make([]pairState, n*n),
	}
}

// N returns the number of processes.
func (net *Network) N() int { return net.n }

// Kernel returns the kernel this network schedules on.
func (net *Network) Kernel() *Kernel { return net.k }

// SetObserver installs the network observer. Pass the zero Observer to
// clear it.
func (net *Network) SetObserver(o Observer) { net.obs = o }

// SetFaults attaches a channel-fault plan. Pass nil to restore reliable
// channels. With a nil plan the network draws no fault randomness, so
// fault-free runs are bit-identical to runs on a network that never had
// a plan.
func (net *Network) SetFaults(plan *FaultPlan) { net.faults = compileFaults(plan) }

// Register installs the message handler for process i. It must be
// called before any message to i is delivered.
func (net *Network) Register(i int, h Handler) error {
	if i < 0 || i >= net.n {
		return fmt.Errorf("%w: %d", ErrProcRange, i)
	}
	net.handlers[i] = h
	return nil
}

func (net *Network) pair(from, to int) int { return from*net.n + to }

// Send enqueues a message from one process to another. Sends from
// crashed processes are ignored (a crashed process takes no steps);
// sends to crashed processes still occupy the channel and are dropped
// at delivery time, preserving the paper's accounting where messages to
// crashed neighbors are sent but never answered.
func (net *Network) Send(from, to int, payload any) error {
	if from < 0 || from >= net.n || to < 0 || to >= net.n {
		return fmt.Errorf("%w: send %d -> %d", ErrProcRange, from, to)
	}
	if net.crashed[from] {
		return nil
	}
	now := net.k.Now()
	// Fault decisions are made at send time, from the kernel RNG, so a
	// faulted run stays a pure function of configuration and seed. A
	// lost message still travels (and occupies its FIFO slot) until its
	// arrival time, where it vanishes instead of being delivered.
	lost, dup := false, false
	if f := net.faults; f != nil && !f.healed(now) {
		switch {
		case f.partitioned(now, from, to):
			lost = true
		default:
			if p := f.dropP(now, from, to); p > 0 && net.k.Rand().Float64() < p {
				lost = true
			}
			if p := f.dupP(now, from, to); p > 0 && net.k.Rand().Float64() < p {
				dup = true
			}
		}
	}
	net.enqueue(from, to, payload, lost, false)
	if dup {
		// The duplicate is an independent copy on the same channel: its
		// own delay, its own FIFO slot, and it may itself be lost.
		dupLost := false
		if f := net.faults; f != nil && !f.healed(now) {
			if p := f.dropP(now, from, to); p > 0 && net.k.Rand().Float64() < p {
				dupLost = true
			}
		}
		net.enqueue(from, to, payload, dupLost, true)
	}
	return nil
}

// enqueue schedules one wire copy of a message, preserving per-channel
// FIFO order.
func (net *Network) enqueue(from, to int, payload any, lost, dup bool) {
	now := net.k.Now()
	d := net.delay.Delay(now, from, to, net.k.Rand())
	if d < 0 {
		d = 0
	}
	at := now + d
	ps := &net.pairs[net.pair(from, to)]
	// FIFO: deliver strictly after every earlier message on the same
	// channel. Strict (not just non-decreasing) so that per-channel
	// order is independent of the kernel's simultaneity tie-breaking.
	if ps.sentOn && at <= ps.lastDeliv {
		at = ps.lastDeliv + 1
	}
	ps.sentOn = true
	ps.lastDeliv = at
	st := &ps.stats
	st.Sent++
	if dup {
		st.Duplicated++
	}
	st.InTransit++
	if st.InTransit > st.HighWater {
		st.HighWater = st.InTransit
	}
	if net.obs.OnSend != nil {
		net.obs.OnSend(now, from, to, payload)
	}
	var dv *delivery
	if n := len(net.freeDeliv); n > 0 {
		dv = net.freeDeliv[n-1]
		net.freeDeliv[n-1] = nil
		net.freeDeliv = net.freeDeliv[:n-1]
	} else {
		dv = new(delivery)
	}
	dv.net = net
	dv.from, dv.to = from, to
	dv.payload = payload
	dv.lost = lost
	net.k.AtCall(at, runDelivery, dv)
}

func (net *Network) deliver(from, to int, payload any, lost bool) {
	st := &net.pairs[net.pair(from, to)].stats
	st.InTransit--
	if lost {
		st.Lost++
		if net.obs.OnLose != nil {
			net.obs.OnLose(net.k.Now(), from, to, payload)
		}
		return
	}
	if net.crashed[to] {
		st.Dropped++
		if net.obs.OnDrop != nil {
			net.obs.OnDrop(net.k.Now(), from, to, payload)
		}
		return
	}
	st.Delivered++
	if net.obs.OnDeliver != nil {
		net.obs.OnDeliver(net.k.Now(), from, to, payload)
	}
	if h := net.handlers[to]; h != nil {
		h(from, payload)
	}
}

// Crash marks process i as crashed as of the current virtual time.
// Crashing an already-crashed process is a no-op.
func (net *Network) Crash(i int) error {
	if i < 0 || i >= net.n {
		return fmt.Errorf("%w: crash %d", ErrProcRange, i)
	}
	if !net.crashed[i] {
		net.crashed[i] = true
		net.crashAt[i] = net.k.Now()
	}
	return nil
}

// Crashed reports whether process i has crashed. Out-of-range IDs
// report false.
func (net *Network) Crashed(i int) bool {
	return i >= 0 && i < net.n && net.crashed[i]
}

// CrashTime returns when i crashed; the second result is false if i is
// live.
func (net *Network) CrashTime(i int) (Time, bool) {
	if !net.Crashed(i) {
		return 0, false
	}
	return net.crashAt[i], true
}

// LiveCount returns the number of processes that have not crashed.
func (net *Network) LiveCount() int {
	live := 0
	for _, c := range net.crashed {
		if !c {
			live++
		}
	}
	return live
}

// Stats returns a copy of the channel statistics for the ordered pair
// (from, to).
func (net *Network) Stats(from, to int) PairStats {
	if from < 0 || from >= net.n || to < 0 || to >= net.n {
		return PairStats{}
	}
	return net.pairs[net.pair(from, to)].stats
}

// EdgeHighWater returns the maximum number of simultaneously in-transit
// messages ever observed on the undirected edge {u, v} — the sum of the
// two directed high-water marks is an upper bound on simultaneous
// occupancy, so we track the combined occupancy exactly via TotalsFor.
// For the paper's Section 7 bound the relevant figure is the combined
// directed occupancy; see OccupancyMonitor in the metrics package for
// the exact joint measurement.
func (net *Network) EdgeHighWater(u, v int) int {
	return net.Stats(u, v).HighWater + net.Stats(v, u).HighWater
}

// TotalSent returns the total number of messages sent on the network.
func (net *Network) TotalSent() uint64 {
	var total uint64
	for i := range net.pairs {
		total += net.pairs[i].stats.Sent
	}
	return total
}

// TotalInTransit returns the number of messages currently in flight.
func (net *Network) TotalInTransit() int {
	total := 0
	for i := range net.pairs {
		total += net.pairs[i].stats.InTransit
	}
	return total
}

// TotalLost returns how many messages injected channel faults
// destroyed.
func (net *Network) TotalLost() uint64 {
	var total uint64
	for i := range net.pairs {
		total += net.pairs[i].stats.Lost
	}
	return total
}

// TotalDuplicated returns how many duplicate wire copies injected
// channel faults created.
func (net *Network) TotalDuplicated() uint64 {
	var total uint64
	for i := range net.pairs {
		total += net.pairs[i].stats.Duplicated
	}
	return total
}
