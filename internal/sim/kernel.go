// Package sim provides a deterministic discrete-event simulation kernel
// for asynchronous message-passing systems: a virtual clock, an event
// heap, seeded randomness, reliable FIFO point-to-point channels with
// configurable delay distributions (including partial synchrony with a
// global stabilization time), and crash injection.
//
// All nondeterminism flows through a single seeded *rand.Rand and all
// simultaneity is broken by event sequence numbers, so a run is a pure
// function of its configuration and seed. That determinism is what
// makes the paper's liveness and fairness claims testable: the same
// adversarial schedule can be replayed against the algorithm and each
// baseline.
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is virtual time in abstract ticks.
type Time int64

// event is a scheduled callback: either a plain closure (fn) or a
// pre-bound call (fn1 applied to arg), which lets hot paths schedule
// work without allocating a closure per event.
type event struct {
	at  Time
	pri uint64 // simultaneity order, derived from the tie-break mode
	seq uint64 // insertion order, the final tie-break
	fn  func()
	fn1 func(any)
	arg any
}

// eventHeap is a min-heap ordered by (at, pri, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// TieBreak selects how the kernel orders simultaneous events. FIFO is
// the default; LIFO and Random are adversarial schedulers that widen
// the interleaving space property tests explore. All three are
// deterministic given the seed.
type TieBreak int

// Tie-breaking modes.
const (
	// FIFO runs simultaneous events in scheduling order.
	FIFO TieBreak = iota
	// LIFO runs simultaneous events in reverse scheduling order.
	LIFO
	// Random permutes simultaneous events pseudo-randomly (seeded).
	Random
)

// Kernel is the simulation executive. It is not safe for concurrent
// use; every callback it runs executes on the caller's goroutine.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	steps  uint64
	tie    TieBreak
	// free recycles executed events. Ownership rule: an event belongs to
	// the heap from At/AtCall until Step pops it; Step moves it to the
	// free list *before* running its callback, so the callback (and
	// anything it schedules) may reuse the object, but no one may retain
	// a *event across Step.
	free []*event
}

// NewKernel returns a kernel with its virtual clock at 0 and all
// randomness derived from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// SetTieBreak selects the ordering of simultaneous events. Call before
// scheduling work; switching modes mid-run is allowed but makes runs
// harder to reason about.
func (k *Kernel) SetTieBreak(t TieBreak) { k.tie = t }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's random source. All simulation components
// must draw randomness from here to preserve determinism.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at virtual time t. Times in the past run at
// the current time (never before already-executed events).
func (k *Kernel) At(t Time, fn func()) {
	e := k.newEvent(t)
	e.fn = fn
	heap.Push(&k.events, e)
}

// AtCall schedules fn(arg) at virtual time t. It is equivalent to
// At(t, func() { fn(arg) }) but allocates nothing when fn is a
// package-level function and arg is an already-boxed value, which makes
// it the right call for per-message scheduling on hot paths.
func (k *Kernel) AtCall(t Time, fn func(any), arg any) {
	e := k.newEvent(t)
	e.fn1 = fn
	e.arg = arg
	heap.Push(&k.events, e)
}

// newEvent takes an event from the free list (or allocates one), stamps
// it with the scheduling time and tie-break priority, and returns it
// with both callback slots empty.
func (k *Kernel) newEvent(t Time) *event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	var pri uint64
	switch k.tie {
	case LIFO:
		pri = ^k.seq
	case Random:
		pri = k.rng.Uint64()
	default:
		pri = k.seq
	}
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = new(event)
	}
	e.at = t
	e.pri = pri
	e.seq = k.seq
	return e
}

// After schedules fn to run d ticks from now.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// Step executes the next event, advancing the clock. It reports whether
// an event was available.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.at
	k.steps++
	fn, fn1, arg := e.fn, e.fn1, e.arg
	e.fn, e.fn1, e.arg = nil, nil, nil
	k.free = append(k.free, e)
	if fn1 != nil {
		fn1(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty or the next event is
// after deadline. The clock finishes at deadline (or at the last event,
// whichever is later) so periodic processes observe a consistent end
// time.
func (k *Kernel) Run(deadline Time) {
	for len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunUntilQuiet executes events until the queue empties or maxSteps
// events have run. It reports whether the queue emptied.
func (k *Kernel) RunUntilQuiet(maxSteps uint64) bool {
	for i := uint64(0); i < maxSteps; i++ {
		if !k.Step() {
			return true
		}
	}
	return len(k.events) == 0
}

// Ticker invokes fn every period ticks, starting at now+period, until
// stop returns true (checked before each invocation) or the simulation
// stops scheduling. It returns immediately; the callbacks are events.
func (k *Kernel) Ticker(period Time, stop func() bool, fn func()) {
	if period <= 0 {
		period = 1
	}
	var tick func()
	tick = func() {
		if stop != nil && stop() {
			return
		}
		fn()
		k.After(period, tick)
	}
	k.After(period, tick)
}
