package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSendDeliver(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, 2, FixedDelay{D: 5})
	var got []string
	if err := net.Register(1, func(from int, payload any) {
		got = append(got, payload.(string))
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "hello"); err != nil {
		t.Fatal(err)
	}
	k.Run(4)
	if len(got) != 0 {
		t.Fatal("message delivered before its delay elapsed")
	}
	k.Run(5)
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got = %v, want [hello]", got)
	}
}

func TestFIFOUnderReorderingDelays(t *testing.T) {
	// Adversarial delays that would reorder messages without the FIFO
	// clamp: later sends get shorter delays.
	k := NewKernel(1)
	delays := []Time{100, 50, 10, 1}
	i := 0
	net := NewNetwork(k, 2, delayFromList(delays, &i))
	var got []int
	if err := net.Register(1, func(from int, payload any) {
		got = append(got, payload.(int))
	}); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		if err := net.Send(0, 1, m); err != nil {
			t.Fatal(err)
		}
	}
	k.Run(1000)
	for idx, v := range got {
		if v != idx {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d messages, want 4", len(got))
	}
}

func TestFIFOPerPairIndependent(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, 3, FixedDelay{D: 1})
	var got []int
	for _, p := range []int{0, 1} {
		p := p
		if err := net.Register(p, func(from int, payload any) {
			got = append(got, payload.(int))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Two independent channels may interleave arbitrarily; each must be
	// internally ordered.
	if err := net.Send(2, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(2, 1, 20); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(2, 0, 11); err != nil {
		t.Fatal(err)
	}
	k.Run(100)
	var ch0 []int
	for _, v := range got {
		if v/10 == 1 {
			ch0 = append(ch0, v)
		}
	}
	if len(ch0) != 2 || ch0[0] != 10 || ch0[1] != 11 {
		t.Fatalf("channel 2->0 order = %v, want [10 11]", ch0)
	}
}

func TestCrashDropsDeliveries(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, 2, FixedDelay{D: 10})
	delivered := 0
	if err := net.Register(1, func(int, any) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := net.Crash(1); err != nil {
		t.Fatal(err)
	}
	k.Run(100)
	if delivered != 0 {
		t.Fatal("message delivered to crashed process")
	}
	st := net.Stats(0, 1)
	if st.Dropped != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 1 dropped 0 delivered", st)
	}
}

func TestCrashSilencesSender(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, 2, FixedDelay{D: 1})
	delivered := 0
	if err := net.Register(1, func(int, any) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	if err := net.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	k.Run(100)
	if delivered != 0 {
		t.Fatal("crashed process should not send")
	}
	if net.Stats(0, 1).Sent != 0 {
		t.Fatal("send from crashed process should not count")
	}
}

func TestMessagesSentBeforeCrashStillDelivered(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, 2, FixedDelay{D: 10})
	delivered := 0
	if err := net.Register(1, func(int, any) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	k.Run(5)
	if err := net.Crash(0); err != nil {
		t.Fatal(err)
	}
	k.Run(100)
	if delivered != 1 {
		t.Fatal("message sent before sender crash must still be delivered")
	}
}

func TestCrashBookkeeping(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, 3, nil)
	if net.LiveCount() != 3 {
		t.Fatalf("LiveCount = %d, want 3", net.LiveCount())
	}
	k.At(42, func() {
		if err := net.Crash(1); err != nil {
			t.Error(err)
		}
	})
	k.Run(50)
	if !net.Crashed(1) || net.Crashed(0) {
		t.Fatal("crash flags wrong")
	}
	if ct, ok := net.CrashTime(1); !ok || ct != 42 {
		t.Fatalf("CrashTime(1) = %d,%v, want 42,true", ct, ok)
	}
	if _, ok := net.CrashTime(0); ok {
		t.Fatal("live process should have no crash time")
	}
	if net.LiveCount() != 2 {
		t.Fatalf("LiveCount = %d, want 2", net.LiveCount())
	}
	// double crash is a no-op and keeps the original time
	if err := net.Crash(1); err != nil {
		t.Fatal(err)
	}
	if ct, _ := net.CrashTime(1); ct != 42 {
		t.Fatalf("double crash changed CrashTime to %d", ct)
	}
}

func TestRangeErrors(t *testing.T) {
	net := NewNetwork(NewKernel(1), 2, nil)
	if err := net.Send(0, 5, nil); !errors.Is(err, ErrProcRange) {
		t.Fatalf("Send out of range err = %v", err)
	}
	if err := net.Register(-1, nil); !errors.Is(err, ErrProcRange) {
		t.Fatalf("Register out of range err = %v", err)
	}
	if err := net.Crash(9); !errors.Is(err, ErrProcRange) {
		t.Fatalf("Crash out of range err = %v", err)
	}
	if net.Crashed(17) {
		t.Fatal("out-of-range Crashed should be false")
	}
}

func TestInTransitAccounting(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, 2, FixedDelay{D: 10})
	if err := net.Register(1, func(int, any) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := net.Send(0, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	st := net.Stats(0, 1)
	if st.InTransit != 3 || st.HighWater != 3 {
		t.Fatalf("stats = %+v, want 3 in transit, high water 3", st)
	}
	if net.TotalInTransit() != 3 {
		t.Fatalf("TotalInTransit = %d, want 3", net.TotalInTransit())
	}
	k.Run(100)
	st = net.Stats(0, 1)
	if st.InTransit != 0 || st.HighWater != 3 || st.Delivered != 3 {
		t.Fatalf("stats after drain = %+v", st)
	}
	if net.TotalSent() != 3 {
		t.Fatalf("TotalSent = %d, want 3", net.TotalSent())
	}
}

func TestObserverCallbacks(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, 2, FixedDelay{D: 3})
	if err := net.Register(1, func(int, any) {}); err != nil {
		t.Fatal(err)
	}
	var sends, delivers, drops int
	net.SetObserver(Observer{
		OnSend:    func(Time, int, int, any) { sends++ },
		OnDeliver: func(Time, int, int, any) { delivers++ },
		OnDrop:    func(Time, int, int, any) { drops++ },
	})
	if err := net.Send(0, 1, "a"); err != nil {
		t.Fatal(err)
	}
	k.Run(10)
	if err := net.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "b"); err != nil {
		t.Fatal(err)
	}
	k.Run(20)
	if sends != 2 || delivers != 1 || drops != 1 {
		t.Fatalf("observer counts = %d/%d/%d, want 2/1/1", sends, delivers, drops)
	}
}

func TestDelayModels(t *testing.T) {
	k := NewKernel(3)
	rng := k.Rand()
	if d := (FixedDelay{D: 7}).Delay(0, 0, 1, rng); d != 7 {
		t.Fatalf("FixedDelay = %d, want 7", d)
	}
	if d := (FixedDelay{D: -2}).Delay(0, 0, 1, rng); d != 0 {
		t.Fatalf("negative FixedDelay = %d, want clamp to 0", d)
	}
	for i := 0; i < 100; i++ {
		d := (UniformDelay{Min: 2, Max: 9}).Delay(0, 0, 1, rng)
		if d < 2 || d > 9 {
			t.Fatalf("UniformDelay out of range: %d", d)
		}
	}
	// Degenerate uniform ranges clamp sanely.
	if d := (UniformDelay{Min: 5, Max: 3}).Delay(0, 0, 1, rng); d != 5 {
		t.Fatalf("inverted UniformDelay = %d, want 5", d)
	}
	if d := (UniformDelay{Min: -4, Max: -1}).Delay(0, 0, 1, rng); d != 0 {
		t.Fatalf("negative UniformDelay = %d, want 0", d)
	}
	gst := GSTDelay{GST: 100, Pre: FixedDelay{D: 50}, Post: FixedDelay{D: 2}}
	if d := gst.Delay(99, 0, 1, rng); d != 50 {
		t.Fatalf("pre-GST delay = %d, want 50", d)
	}
	if d := gst.Delay(100, 0, 1, rng); d != 2 {
		t.Fatalf("post-GST delay = %d, want 2", d)
	}
	spiky := SpikeDelay{Base: 3, Spike: 100, SpikeP: 1.0}
	if d := spiky.Delay(0, 0, 1, rng); d < 3 {
		t.Fatalf("spike delay = %d, want >= base", d)
	}
	calm := SpikeDelay{Base: 3, Spike: 100, SpikeP: 0}
	if d := calm.Delay(0, 0, 1, rng); d != 3 {
		t.Fatalf("no-spike delay = %d, want 3", d)
	}
}

// Property: with any mix of delays, per-channel delivery order equals
// send order (reliable FIFO), and everything sent to a live process is
// delivered.
func TestQuickFIFOReliable(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		k := NewKernel(seed)
		net := NewNetwork(k, 2, UniformDelay{Min: 0, Max: 50})
		var got []int
		if err := net.Register(1, func(from int, payload any) {
			got = append(got, payload.(int))
		}); err != nil {
			return false
		}
		n := len(raw) % 64
		for m := 0; m < n; m++ {
			if err := net.Send(0, 1, m); err != nil {
				return false
			}
			// stagger sends in time pseudo-randomly
			k.Run(k.Now() + Time(raw[m]%5))
		}
		k.Run(k.Now() + 1000)
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// delayFromList returns each queued delay in order (repeating the last
// one when exhausted), used to script adversarial reordering attempts.
func delayFromList(list []Time, idx *int) DelayModel {
	return DelayFunc(func(Time, int, int, *rand.Rand) Time {
		d := list[len(list)-1]
		if *idx < len(list) {
			d = list[*idx]
			*idx++
		}
		return d
	})
}
