package sim

import "testing"

// countNet builds a 2-process network and returns the slice deliveries
// land in.
func countNet(t *testing.T, seed int64, plan *FaultPlan, delay DelayModel) (*Kernel, *Network, *[]int) {
	t.Helper()
	k := NewKernel(seed)
	net := NewNetwork(k, 2, delay)
	net.SetFaults(plan)
	var got []int
	if err := net.Register(1, func(_ int, payload any) {
		got = append(got, payload.(int))
	}); err != nil {
		t.Fatal(err)
	}
	return k, net, &got
}

func TestFaultPlanDropsAndHeals(t *testing.T) {
	plan := &FaultPlan{DropP: 1.0, HealAt: 100}
	k, net, got := countNet(t, 1, plan, FixedDelay{D: 1})
	for i := 0; i < 10; i++ {
		i := i
		k.At(Time(10*i), func() { _ = net.Send(0, 1, i) })
	}
	// Sends at t >= 100 are past HealAt and must all arrive.
	k.Run(1000)
	want := []int{}
	for i := 0; i < 10; i++ {
		if 10*i >= 100 {
			want = append(want, i)
		}
	}
	if len(*got) != len(want) {
		t.Fatalf("delivered %v, want %v (drops must cease at HealAt)", *got, want)
	}
	for i := range want {
		if (*got)[i] != want[i] {
			t.Fatalf("delivered %v, want %v", *got, want)
		}
	}
	st := net.Stats(0, 1)
	if st.Lost != 10-uint64(len(want)) {
		t.Fatalf("Lost = %d, want %d", st.Lost, 10-len(want))
	}
	if st.Delivered != uint64(len(want)) {
		t.Fatalf("Delivered = %d, want %d", st.Delivered, len(want))
	}
}

func TestFaultPlanDuplicatesPreserveFIFO(t *testing.T) {
	plan := &FaultPlan{DupP: 1.0}
	k, net, got := countNet(t, 7, plan, UniformDelay{Min: 1, Max: 9})
	for i := 0; i < 20; i++ {
		i := i
		k.At(Time(5*i), func() { _ = net.Send(0, 1, i) })
	}
	k.Run(2000)
	if len(*got) != 40 {
		t.Fatalf("delivered %d messages, want 40 (each duplicated once)", len(*got))
	}
	// FIFO holds over the whole wire stream: both copies of message i
	// precede both copies of message i+1, and the payload sequence is
	// non-decreasing.
	for i := 1; i < len(*got); i++ {
		if (*got)[i] < (*got)[i-1] {
			t.Fatalf("FIFO violated at %d: %v", i, *got)
		}
	}
	if d := net.TotalDuplicated(); d != 20 {
		t.Fatalf("TotalDuplicated = %d, want 20", d)
	}
}

func TestFaultPlanPartitionCutsAndHeals(t *testing.T) {
	plan := &FaultPlan{Partitions: []Partition{{Start: 0, End: 50, Side: []int{0}}}}
	k, net, got := countNet(t, 3, plan, FixedDelay{D: 1})
	k.At(10, func() { _ = net.Send(0, 1, 10) })
	k.At(60, func() { _ = net.Send(0, 1, 60) })
	k.Run(200)
	if len(*got) != 1 || (*got)[0] != 60 {
		t.Fatalf("delivered %v, want [60] (partition cuts 0↔1 before t=50)", *got)
	}
	if l := net.TotalLost(); l != 1 {
		t.Fatalf("TotalLost = %d, want 1", l)
	}
}

func TestFaultPlanBurstWindow(t *testing.T) {
	plan := &FaultPlan{Bursts: []Burst{{Start: 20, End: 40, DropP: 1.0}}}
	k, net, got := countNet(t, 5, plan, FixedDelay{D: 1})
	for _, at := range []Time{5, 25, 35, 45} {
		at := at
		k.At(at, func() { _ = net.Send(0, 1, int(at)) })
	}
	k.Run(200)
	if len(*got) != 2 || (*got)[0] != 5 || (*got)[1] != 45 {
		t.Fatalf("delivered %v, want [5 45] (burst loses sends in [20,40))", *got)
	}
	_ = net
}

func TestFaultObserverBalance(t *testing.T) {
	// Every OnSend must be matched by exactly one of OnDeliver, OnDrop,
	// or OnLose, so in-transit accounting stays balanced under faults.
	plan := &FaultPlan{DropP: 0.3, DupP: 0.3}
	k := NewKernel(11)
	net := NewNetwork(k, 3, UniformDelay{Min: 1, Max: 5})
	net.SetFaults(plan)
	sends, ends := 0, 0
	net.SetObserver(Observer{
		OnSend:    func(Time, int, int, any) { sends++ },
		OnDeliver: func(Time, int, int, any) { ends++ },
		OnDrop:    func(Time, int, int, any) { ends++ },
		OnLose:    func(Time, int, int, any) { ends++ },
	})
	for i := 0; i < 3; i++ {
		if err := net.Register(i, func(int, any) {}); err != nil {
			t.Fatal(err)
		}
	}
	_ = net.Crash(2)
	for i := 0; i < 100; i++ {
		i := i
		k.At(Time(i), func() {
			_ = net.Send(0, 1, i)
			_ = net.Send(1, 0, i)
			_ = net.Send(0, 2, i) // dropped at a crashed destination
		})
	}
	k.Run(10000)
	if sends == 0 || sends != ends {
		t.Fatalf("observer unbalanced: %d sends, %d deliver/drop/lose", sends, ends)
	}
	if net.TotalInTransit() != 0 {
		t.Fatalf("in-transit = %d after drain, want 0", net.TotalInTransit())
	}
	if net.TotalLost() == 0 {
		t.Fatal("expected some injected losses at DropP=0.3")
	}
}
