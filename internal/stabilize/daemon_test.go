package stabilize

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sim"
)

// daemonRun wires a protocol under a dining daemon built from cfg and
// returns the runner plus adapter. The caller schedules crashes/faults
// and runs the kernel.
func daemonRun(t *testing.T, proto Protocol, cfg runner.Config) (*runner.Runner, *DaemonAdapter) {
	t.Helper()
	g := cfg.Graph
	var r *runner.Runner
	var a *DaemonAdapter
	cfg.OnTransition = func(at sim.Time, id int, from, to core.State) {
		a.OnTransition(at, id, from, to)
	}
	cfg.OnCrash = func(at sim.Time, id int) {
		a.OnCrash(at, id)
	}
	r, err := runner.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a = NewDaemonAdapter(proto, g.Neighbors, r.Kernel().Now, r.Kernel().Rand())
	return r, a
}

func TestDijkstraUnderDaemonTransientFaults(t *testing.T) {
	g := graph.Ring(9)
	proto := NewDijkstraRing(9, 0)
	r, a := daemonRun(t, proto, runner.Config{
		Graph:    g,
		Seed:     1,
		Delays:   sim.UniformDelay{Min: 1, Max: 3},
		Workload: runner.Saturated(),
	})
	// Transient fault bursts at 1000 and 3000.
	r.Kernel().At(1000, func() { a.InjectFaults(9) })
	r.Kernel().At(3000, func() { a.InjectFaults(5) })
	r.Run(20000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Converged(); !ok {
		t.Fatalf("ring did not stabilize; last illegitimate at %d, steps=%d",
			a.LastIllegitimate(), a.Steps())
	}
	if a.LastIllegitimate() < 3000 {
		t.Fatal("fault burst at 3000 should have driven the system out of the safe set")
	}
	if a.Steps() == 0 {
		t.Fatal("daemon executed no protocol steps")
	}
}

func TestColoringConvergesUnderDaemonWithCrashes(t *testing.T) {
	g := graph.Ring(10)
	proto := NewColoring(g) // monochrome: everyone conflicts
	r, a := daemonRun(t, proto, runner.Config{
		Graph: g,
		Seed:  4,
		NewDetector: func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
			return detector.NewPerfect(k, gg, 15)
		},
		Delays:   sim.UniformDelay{Min: 1, Max: 3},
		Workload: runner.Saturated(),
	})
	r.CrashAt(40, 2)
	r.CrashAt(60, 7)
	// After things settle, force a conflict adjacent to a crashed
	// process: the wait-free daemon must still schedule the live
	// neighbor so it can recolor.
	r.Kernel().At(5000, func() {
		proto.SetColor(3, proto.Color(2)) // conflict with crashed 2
		a.Recheck()
	})
	r.Run(20000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	at, ok := a.Converged()
	if !ok {
		t.Fatalf("coloring did not stabilize under crashes; last illegitimate %d", a.LastIllegitimate())
	}
	if at < 5000 {
		t.Fatal("the injected conflict at 5000 must have been repaired afterwards")
	}
}

func TestColoringFailsUnderChoySinghWithCrash(t *testing.T) {
	// Same scenario with the non-wait-free daemon: the crashed
	// process's neighbor is eventually starved, so an injected conflict
	// next to the crash is never repaired — convergence fails. This is
	// the paper's central motivation (E7's negative arm).
	g := graph.Ring(10)
	proto := NewColoring(g)
	r, a := daemonRun(t, proto, runner.Config{
		Graph: g,
		Seed:  4,
		NewProcess: func(id, color int, nbrColors map[int]int, _ func(int) bool) (core.Process, error) {
			return core.NewDiner(core.Config{
				ID: id, Color: color, NeighborColors: nbrColors,
				Options: core.Options{IgnoreDetector: true, DisableRepliedFlag: true},
			})
		},
		Delays:   sim.UniformDelay{Min: 1, Max: 3},
		Workload: runner.Saturated(),
	})
	r.CrashAt(40, 2)
	r.Kernel().At(5000, func() {
		proto.SetColor(3, proto.Color(2))
		a.Recheck()
	})
	r.Run(30000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Converged(); ok {
		t.Fatal("non-wait-free daemon unexpectedly repaired a conflict at a starved process")
	}
}

func TestSchedulingMistakesAreTransientFaults(t *testing.T) {
	// Force ◇P₁ mistakes early (scripted mutual suspicion) with
	// CorruptOnOverlap: every exclusion overlap perturbs the stepper.
	// ◇WX makes mistakes finite, so stabilization still converges.
	g := graph.Ring(6)
	proto := NewColoring(g)
	var scripted *detector.Scripted
	r, a := daemonRun(t, proto, runner.Config{
		Graph: g,
		Seed:  8,
		NewDetector: func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
			scripted = detector.NewScripted(k, gg, 0)
			for v := 0; v < gg.N(); v++ {
				for _, w := range gg.Neighbors(v) {
					scripted.AddMistake(v, w, 50, 600)
				}
			}
			scripted.Start()
			return scripted
		},
		Delays:   sim.FixedDelay{D: 2},
		Workload: runner.Saturated(),
	})
	a.CorruptOnOverlap = true
	r.Run(20000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Converged(); !ok {
		t.Fatalf("stabilization failed despite mistakes being finite; overlaps=%d last illegitimate=%d",
			a.Overlaps(), a.LastIllegitimate())
	}
	if !graphColorsProper(g, proto) {
		t.Fatal("final coloring not proper")
	}
}

func graphColorsProper(g *graph.Graph, p *Coloring) bool {
	return g.IsProperColoring(p.Colors())
}

func TestMISUnderDaemonBeatsSynchrony(t *testing.T) {
	// The synchronous schedule livelocks (see protocol tests); the
	// dining daemon serializes neighbors and converges.
	g := graph.Ring(8)
	proto := NewMIS(g)
	r, a := daemonRun(t, proto, runner.Config{
		Graph:    g,
		Seed:     2,
		Delays:   sim.UniformDelay{Min: 1, Max: 3},
		Workload: runner.Saturated(),
	})
	r.Run(10000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Converged(); !ok {
		t.Fatal("MIS did not converge under the dining daemon")
	}
	for i := 0; i < g.N(); i++ {
		if proto.Enabled(i) {
			t.Fatalf("process %d still enabled at end", i)
		}
	}
}

func TestDaemonAdapterCounters(t *testing.T) {
	g := graph.Path(2)
	proto := NewColoring(g)
	r, a := daemonRun(t, proto, runner.Config{
		Graph:    g,
		Seed:     1,
		Workload: runner.Workload{Sessions: 2, EatMin: 1, EatMax: 1, ThinkMin: 1, ThinkMax: 1},
	})
	r.Run(1000)
	if a.Steps() == 0 {
		t.Fatal("no protocol steps executed")
	}
	if a.Overlaps() != 0 {
		t.Fatalf("crash-free converged run had %d overlaps", a.Overlaps())
	}
}
