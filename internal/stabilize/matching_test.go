package stabilize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sim"
)

func TestMatchingConvergesSerially(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for name, g := range map[string]*graph.Graph{
		"ring8":  graph.Ring(8),
		"ring9":  graph.Ring(9),
		"star6":  graph.Star(6),
		"grid44": graph.Grid(4, 4),
		"k33":    graph.CompleteBipartite(3, 3),
		"tree15": graph.BinaryTree(15),
	} {
		p := NewMatching(g)
		if s := serialConverge(p, rng, 50000); s < 0 {
			t.Fatalf("%s: matching did not converge", name)
		}
		if !p.IsMaximalMatching() {
			t.Fatalf("%s: final state is not a maximal matching", name)
		}
	}
}

func TestMatchingWithdrawOnCorruptPointer(t *testing.T) {
	g := graph.Path(3)
	p := NewMatching(g)
	p.SetPartner(0, 2) // 2 is not a neighbor of 0
	if !p.Enabled(0) {
		t.Fatal("corrupt pointer must enable withdraw")
	}
	p.Step(0)
	if p.Partner(0) != -1 {
		t.Fatal("withdraw did not clear the corrupt pointer")
	}
	p.SetPartner(1, 1) // self-pointer
	if !p.Enabled(1) {
		t.Fatal("self-pointer must enable withdraw")
	}
	p.Step(1)
	if p.Partner(1) != -1 {
		t.Fatal("withdraw did not clear the self-pointer")
	}
}

func TestMatchingPairFormation(t *testing.T) {
	g := graph.Path(2)
	p := NewMatching(g)
	if !p.Enabled(0) {
		t.Fatal("idle adjacent processes must be enabled")
	}
	p.Step(0) // 0 proposes to 1
	if p.Partner(0) != 1 || p.Matched(0) {
		t.Fatalf("after propose: ptr=%d matched=%v", p.Partner(0), p.Matched(0))
	}
	p.Step(1) // 1 matches back
	if !p.Matched(0) || !p.Matched(1) {
		t.Fatal("pair did not form")
	}
	if p.Enabled(0) || p.Enabled(1) {
		t.Fatal("matched pair must be quiescent")
	}
	if !p.IsMaximalMatching() {
		t.Fatal("pair is a maximal matching on P2")
	}
}

func TestMatchingLegitimateRespectsLive(t *testing.T) {
	g := graph.Path(2)
	p := NewMatching(g)
	liveOnly1 := func(i int) bool { return i == 1 }
	// 0 crashed and idle; 1 idle with only crashed neighbors pointing
	// nowhere: 1 still proposes (its neighbor is idle) — not legitimate
	// until it acts.
	if p.Legitimate(liveOnly1) {
		t.Fatal("1 has an enabled propose action")
	}
	p.Step(1)
	// Now 1 points at crashed 0 which never reciprocates; no action is
	// enabled at 1 (0's pointer is -1), so the live system is quiescent
	// even though the pair never completes — the price of a crashed
	// partner, correctly excluded from the live legitimacy predicate.
	if !p.Legitimate(liveOnly1) {
		t.Fatal("live-restricted legitimacy should hold")
	}
}

func TestMatchingUnderDiningDaemon(t *testing.T) {
	g := graph.Grid(3, 3)
	proto := NewMatching(g)
	r, a := daemonRun(t, proto, runner.Config{
		Graph:    g,
		Seed:     6,
		Delays:   sim.UniformDelay{Min: 1, Max: 3},
		Workload: runner.Saturated(),
	})
	r.Kernel().At(1500, func() { a.InjectFaults(9) })
	r.Run(20000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Converged(); !ok {
		t.Fatalf("matching did not stabilize under the daemon; last illegitimate %d", a.LastIllegitimate())
	}
	if !proto.IsMaximalMatching() {
		t.Fatal("final configuration is not a maximal matching")
	}
}

// Property: from any corrupted initial pointer assignment on random
// connected graphs, serial scheduling converges to a maximal matching.
func TestQuickMatchingSelfStabilizes(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%12) + 2
		g := graph.ConnectedGNP(n, 0.3, rng)
		p := NewMatching(g)
		for i := 0; i < n; i++ {
			p.Perturb(i, rng)
		}
		if serialConverge(p, rng, 100000) < 0 {
			return false
		}
		return p.IsMaximalMatching()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
