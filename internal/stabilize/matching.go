package stabilize

import (
	"math/rand"

	"repro/internal/graph"
)

// Matching is self-stabilizing maximal matching in the style of Hsu &
// Huang (1992): each process holds a pointer (its proposed partner, or
// -1). The guarded actions, executed under a serializing daemon:
//
//   - match:    if unmatched and some neighbor points at us, point back
//     (preferring the smallest such neighbor).
//   - propose:  if unmatched with an unmatched, idle neighbor, point at
//     the smallest one.
//   - withdraw: if we point at a neighbor that points at a third
//     process, retract.
//
// A configuration is legitimate when pointers are symmetric (every
// pointer is reciprocated) and no two idle processes are adjacent —
// i.e. the pointer pairs form a maximal matching. Hsu & Huang proved
// convergence under a central daemon; the dining daemon provides the
// required serialization between neighbors.
type Matching struct {
	g   *graph.Graph
	ptr []int // partner pointer; -1 = idle
}

// NewMatching creates the protocol over g with every process idle.
func NewMatching(g *graph.Graph) *Matching {
	m := &Matching{g: g, ptr: make([]int, g.N())}
	for i := range m.ptr {
		m.ptr[i] = -1
	}
	return m
}

// Name implements Protocol.
func (m *Matching) Name() string { return "stabilizing-matching" }

// N implements Protocol.
func (m *Matching) N() int { return m.g.N() }

// Partner returns i's pointer (-1 when idle).
func (m *Matching) Partner(i int) int { return m.ptr[i] }

// SetPartner overwrites i's pointer — for adversarial initial
// configurations. Values outside the neighbor set become -1 at the next
// step via the withdraw action; any int is accepted.
func (m *Matching) SetPartner(i, p int) {
	if i >= 0 && i < len(m.ptr) {
		m.ptr[i] = p
	}
}

// action returns which action is enabled at i (0 = none).
func (m *Matching) action(i int) (kind int, target int) {
	p := m.ptr[i]
	if p >= 0 {
		// withdraw: corrupted pointer (self, out of range, or at a
		// non-neighbor — possible after a transient fault)...
		if p >= len(m.ptr) || !m.g.HasEdge(i, p) {
			return 3, -1
		}
		// ...or our candidate points elsewhere (and not at us).
		if q := m.ptr[p]; q != i && q != -1 {
			return 3, -1
		}
		return 0, -1
	}
	// match: the smallest neighbor pointing at us.
	for _, j := range m.g.Neighbors(i) {
		if m.ptr[j] == i {
			return 1, j
		}
	}
	// propose: the smallest idle neighbor that is unengaged.
	for _, j := range m.g.Neighbors(i) {
		if m.ptr[j] == -1 {
			return 2, j
		}
	}
	return 0, -1
}

// Enabled implements Protocol.
func (m *Matching) Enabled(i int) bool {
	kind, _ := m.action(i)
	return kind != 0
}

// Step implements Protocol.
func (m *Matching) Step(i int) {
	kind, target := m.action(i)
	switch kind {
	case 1, 2:
		m.ptr[i] = target
	case 3:
		m.ptr[i] = -1
	}
}

// Matched reports whether i is in a mutual pair.
func (m *Matching) Matched(i int) bool {
	p := m.ptr[i]
	return p >= 0 && p < len(m.ptr) && m.ptr[p] == i
}

// Legitimate implements Protocol: no live process has an enabled
// action. For fully live runs this coincides with "the mutual pairs
// form a maximal matching".
func (m *Matching) Legitimate(live func(int) bool) bool {
	for i := 0; i < m.g.N(); i++ {
		if live != nil && !live(i) {
			continue
		}
		if m.Enabled(i) {
			return false
		}
	}
	return true
}

// IsMaximalMatching verifies the structural result directly: pointers
// are symmetric or idle, matched pairs are edges, and no edge joins two
// idle processes.
func (m *Matching) IsMaximalMatching() bool {
	for i := 0; i < m.g.N(); i++ {
		p := m.ptr[i]
		if p == -1 {
			continue
		}
		if p < 0 || p >= len(m.ptr) || !m.g.HasEdge(i, p) || m.ptr[p] != i {
			return false
		}
	}
	for _, e := range m.g.Edges() {
		if m.ptr[e[0]] == -1 && m.ptr[e[1]] == -1 {
			return false
		}
	}
	return true
}

// Perturb implements Protocol: point somewhere arbitrary (possibly at a
// non-neighbor, which models pointer corruption) or go idle.
func (m *Matching) Perturb(i int, rng *rand.Rand) {
	if i < 0 || i >= len(m.ptr) {
		return
	}
	switch rng.Intn(3) {
	case 0:
		m.ptr[i] = -1
	case 1:
		nbrs := m.g.Neighbors(i)
		if len(nbrs) > 0 {
			m.ptr[i] = nbrs[rng.Intn(len(nbrs))]
		}
	default:
		m.ptr[i] = rng.Intn(len(m.ptr))
	}
}

var _ Protocol = (*Matching)(nil)
