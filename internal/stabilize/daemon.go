package stabilize

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/sim"
)

// DaemonAdapter runs a self-stabilizing protocol under a dining-based
// distributed daemon: every time the daemon schedules a process to eat,
// the adapter executes one enabled action of the protocol at that
// process. It chains into the runner's transition/crash callbacks and
// tracks convergence.
//
// Scheduling mistakes (two live neighbors eating simultaneously, which
// ◇WX permits finitely often) are recorded and — when CorruptOnOverlap
// is set — modeled as transient faults: the overlapping step's writer
// is perturbed, the worst case the paper allows for a sharing
// violation. Because ◇WX guarantees finitely many mistakes and the
// daemon is wait-free, convergence still follows, and the adapter's
// measurements show it.
type DaemonAdapter struct {
	proto Protocol
	clock func() sim.Time
	rng   *rand.Rand

	// CorruptOnOverlap injects a transient fault into a process that
	// executes its protocol step while a live neighbor is also eating.
	CorruptOnOverlap bool

	neighbors func(i int) []int
	eating    []bool
	crashed   []bool

	steps             int
	overlaps          int
	everIllegitimate  bool
	lastIllegitimate  sim.Time
	firstLegitimateAt sim.Time
	seenLegitimate    bool
}

// NewDaemonAdapter creates an adapter for proto over the given conflict
// neighborhood function (usually graph.Neighbors). clock supplies the
// current virtual time and rng drives fault injection.
func NewDaemonAdapter(proto Protocol, neighbors func(i int) []int, clock func() sim.Time, rng *rand.Rand) *DaemonAdapter {
	a := &DaemonAdapter{
		proto:     proto,
		clock:     clock,
		rng:       rng,
		neighbors: neighbors,
		eating:    make([]bool, proto.N()),
		crashed:   make([]bool, proto.N()),
	}
	a.recheck()
	return a
}

// OnTransition is the runner transition hook: executing one protocol
// step per eating session.
func (a *DaemonAdapter) OnTransition(_ sim.Time, id int, _, to core.State) {
	switch to {
	case core.Eating:
		a.eating[id] = true
		overlap := false
		for _, j := range a.neighbors(id) {
			if a.eating[j] && !a.crashed[j] {
				overlap = true
			}
		}
		if overlap {
			a.overlaps++
		}
		if a.proto.Enabled(id) {
			a.proto.Step(id)
			a.steps++
			if overlap && a.CorruptOnOverlap {
				a.proto.Perturb(id, a.rng)
			}
			a.recheck()
		} else if overlap && a.CorruptOnOverlap {
			a.proto.Perturb(id, a.rng)
			a.recheck()
		}
	case core.Thinking, core.Hungry:
		a.eating[id] = false
	}
}

// OnCrash is the runner crash hook.
func (a *DaemonAdapter) OnCrash(_ sim.Time, id int) {
	a.crashed[id] = true
	a.eating[id] = false
	a.recheck()
}

// InjectFaults perturbs the local states of count random processes —
// a transient-fault burst. Call it from a kernel event so the time
// accounting stays consistent.
func (a *DaemonAdapter) InjectFaults(count int) {
	n := a.proto.N()
	for f := 0; f < count; f++ {
		a.proto.Perturb(a.rng.Intn(n), a.rng)
	}
	a.recheck()
}

func (a *DaemonAdapter) live(i int) bool { return !a.crashed[i] }

// Recheck re-evaluates legitimacy; call it after mutating protocol
// state out-of-band (targeted fault injection via SetColor etc.).
func (a *DaemonAdapter) Recheck() { a.recheck() }

func (a *DaemonAdapter) recheck() {
	now := a.clock()
	if a.proto.Legitimate(a.live) {
		if !a.seenLegitimate {
			a.seenLegitimate = true
			a.firstLegitimateAt = now
		}
	} else {
		a.everIllegitimate = true
		a.lastIllegitimate = now
		a.seenLegitimate = false // restart the "stably legitimate" clock
	}
}

// Steps returns how many protocol actions the daemon executed.
func (a *DaemonAdapter) Steps() int { return a.steps }

// Overlaps returns how many eating sessions began while a live neighbor
// was already eating — the daemon's scheduling mistakes as seen by the
// stabilizing layer.
func (a *DaemonAdapter) Overlaps() int { return a.overlaps }

// Converged reports whether the protocol is currently legitimate and
// when it last entered the legitimate set (its convergence time).
func (a *DaemonAdapter) Converged() (at sim.Time, ok bool) {
	if !a.seenLegitimate {
		return 0, false
	}
	return a.firstLegitimateAt, true
}

// LastIllegitimate returns the last time the configuration was observed
// outside the safe set (0 if never).
func (a *DaemonAdapter) LastIllegitimate() sim.Time { return a.lastIllegitimate }
