package stabilize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func allLive(int) bool { return true }

// serialConverge runs a random serial (central) daemon: repeatedly pick
// an enabled process and step it. Returns the number of steps until
// legitimacy or -1 if maxSteps were exhausted.
func serialConverge(p Protocol, rng *rand.Rand, maxSteps int) int {
	for s := 0; s < maxSteps; s++ {
		if p.Legitimate(allLive) {
			return s
		}
		var enabled []int
		for i := 0; i < p.N(); i++ {
			if p.Enabled(i) {
				enabled = append(enabled, i)
			}
		}
		if len(enabled) == 0 {
			return s
		}
		p.Step(enabled[rng.Intn(len(enabled))])
	}
	if p.Legitimate(allLive) {
		return maxSteps
	}
	return -1
}

func TestDijkstraRingInitiallyLegitimate(t *testing.T) {
	d := NewDijkstraRing(5, 0)
	if d.K() != 6 {
		t.Fatalf("K clamped to %d, want 6", d.K())
	}
	if !d.Legitimate(allLive) {
		t.Fatal("all-zero ring should be legitimate (only bottom enabled)")
	}
	if th := d.TokenHolders(); len(th) != 1 || th[0] != 0 {
		t.Fatalf("token holders = %v, want [0]", th)
	}
}

func TestDijkstraRingTokenCirculates(t *testing.T) {
	d := NewDijkstraRing(4, 0)
	visited := make(map[int]bool)
	for round := 0; round < 40; round++ {
		th := d.TokenHolders()
		if len(th) != 1 {
			t.Fatalf("round %d: %d tokens", round, len(th))
		}
		visited[th[0]] = true
		d.Step(th[0])
	}
	if len(visited) != 4 {
		t.Fatalf("token visited %d of 4 processes", len(visited))
	}
}

func TestDijkstraRingConvergesFromArbitrary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		d := NewDijkstraRing(7, 0)
		for i := 0; i < d.N(); i++ {
			d.Perturb(i, rng)
		}
		if s := serialConverge(d, rng, 10000); s < 0 {
			t.Fatalf("trial %d: ring did not converge", trial)
		}
		// Closure: once legitimate, stays legitimate.
		for extra := 0; extra < 50; extra++ {
			th := d.TokenHolders()
			if len(th) != 1 {
				t.Fatalf("closure violated: %d tokens", len(th))
			}
			d.Step(th[0])
		}
	}
}

func TestDijkstraSetValue(t *testing.T) {
	d := NewDijkstraRing(3, 0)
	d.SetValue(1, -5)
	if v := d.Value(1); v < 0 || v >= d.K() {
		t.Fatalf("SetValue normalization broken: %d", v)
	}
	d.SetValue(99, 1) // out of range: no panic
}

func TestColoringConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, g := range []*graph.Graph{graph.Ring(8), graph.Clique(5), graph.Grid(3, 4)} {
		p := NewColoring(g)
		if p.Legitimate(allLive) {
			t.Fatalf("%v: monochrome start cannot be legitimate", g)
		}
		if s := serialConverge(p, rng, 10000); s < 0 {
			t.Fatalf("%v: coloring did not converge", g)
		}
		if !g.IsProperColoring(p.Colors()) {
			t.Fatalf("%v: final colors not proper: %v", g, p.Colors())
		}
	}
}

func TestColoringLegitimateIgnoresCrashedConflicts(t *testing.T) {
	g := graph.Path(2)
	p := NewColoring(g) // both color 0: conflict
	liveOnly0 := func(i int) bool { return i == 0 }
	if p.Legitimate(liveOnly0) {
		t.Fatal("live process 0 is enabled: not legitimate")
	}
	p.Step(0) // 0 recolors away from crashed 1
	if !p.Legitimate(liveOnly0) {
		t.Fatal("after recoloring, live processes are quiescent")
	}
	// With both live, 1 still conflicts with nobody (0 moved away).
	if !p.Legitimate(allLive) {
		t.Fatal("coloring should be fully proper now")
	}
}

func TestColoringSetColor(t *testing.T) {
	g := graph.Path(3)
	p := NewColoring(g)
	p.SetColor(1, 2)
	if p.Color(1) != 2 {
		t.Fatal("SetColor failed")
	}
	p.SetColor(-1, 5) // no panic
}

func TestMISConvergesSerially(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*graph.Graph{graph.Ring(9), graph.Star(7), graph.Grid(4, 4)} {
		p := NewMIS(g)
		if s := serialConverge(p, rng, 10000); s < 0 {
			t.Fatalf("%v: MIS did not converge serially", g)
		}
		// Verify independence + maximality.
		for i := 0; i < g.N(); i++ {
			if p.Enabled(i) {
				t.Fatalf("%v: process %d still enabled", g, i)
			}
		}
	}
}

func TestMISSynchronousLivelock(t *testing.T) {
	// All-out on a ring: synchronously, everyone joins, then everyone
	// leaves, forever. The daemon-free schedule never converges — the
	// motivating phenomenon for distributed daemons.
	g := graph.Ring(6)
	p := NewMIS(g)
	for round := 0; round < 100; round++ {
		if p.Legitimate(allLive) {
			t.Fatalf("round %d: synchronous MIS converged; expected livelock", round)
		}
		if n := p.SynchronousRound(); n != 6 {
			t.Fatalf("round %d: %d processes stepped, want all 6 (lockstep flip)", round, n)
		}
	}
}

func TestMISSet(t *testing.T) {
	p := NewMIS(graph.Path(2))
	p.Set(0, true)
	if !p.In(0) {
		t.Fatal("Set failed")
	}
	p.Set(9, true) // no panic
}

func TestProtocolNames(t *testing.T) {
	if NewDijkstraRing(3, 0).Name() == "" || NewColoring(graph.Ring(3)).Name() == "" || NewMIS(graph.Ring(3)).Name() == "" {
		t.Fatal("protocols must have names")
	}
}

// Property: coloring and MIS converge under random serial daemons from
// random initial configurations on random connected graphs, and the
// result is correct.
func TestQuickSerialConvergence(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%12) + 3
		g := graph.ConnectedGNP(n, 0.3, rng)

		col := NewColoring(g)
		for i := 0; i < n; i++ {
			col.Perturb(i, rng)
		}
		if serialConverge(col, rng, 50000) < 0 {
			return false
		}
		if !g.IsProperColoring(col.Colors()) {
			return false
		}

		mis := NewMIS(g)
		for i := 0; i < n; i++ {
			mis.Perturb(i, rng)
		}
		if serialConverge(mis, rng, 50000) < 0 {
			return false
		}
		for i := 0; i < n; i++ {
			if mis.Enabled(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
