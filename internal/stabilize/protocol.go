// Package stabilize implements the paper's motivating application: a
// dining-based distributed daemon scheduling self-stabilizing
// protocols in the presence of crash faults.
//
// A self-stabilizing protocol converges to a legitimate configuration
// from any initial state, provided every correct process executes
// enabled actions infinitely often and conflicting neighbors do not
// execute simultaneously. The dining daemon provides exactly that: a
// process executes one guarded action of the protocol each time it
// eats, and the dining algorithm's exclusion keeps neighboring steps
// serialized. Wait-freedom of the daemon is what preserves the
// infinitely-often guarantee when processes crash — with a non-wait-
// free daemon (Choy–Singh), a crash starves correct processes and
// convergence fails, which is the paper's core motivation.
//
// Three classic protocols are provided: Dijkstra's K-state token ring,
// self-stabilizing (Δ+1)-coloring, and self-stabilizing maximal
// independent set.
package stabilize

import (
	"math/rand"

	"repro/internal/graph"
)

// Protocol is a self-stabilizing protocol in the locally shared memory
// guarded-command model: each process owns local state and its action
// guards and effects read only its own and its neighbors' states.
// Implementations are driven by a daemon that serializes neighboring
// steps, so Step needs no internal synchronization.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// N returns the number of processes.
	N() int
	// Enabled reports whether process i has an enabled guarded action.
	Enabled(i int) bool
	// Step executes one enabled action at i; it is a no-op when no
	// action is enabled.
	Step(i int)
	// Legitimate reports whether the configuration is in the safe set,
	// judging only what live processes can still influence: every
	// live process must be action-disabled or, for token-circulation
	// protocols, the global predicate must hold.
	Legitimate(live func(i int) bool) bool
	// Perturb injects a transient fault at process i: its local state
	// is replaced with an arbitrary (random) value.
	Perturb(i int, rng *rand.Rand)
}

// DijkstraRing is Dijkstra's K-state self-stabilizing token ring
// (Dijkstra 1974): process 0 is the bottom machine; a process holds the
// token when its guard is enabled; in a legitimate configuration
// exactly one process holds the token. K must be at least N for
// convergence from arbitrary states. The conflict graph is the ring
// itself, so a dining daemon on the same ring provides the required
// read/write atomicity.
//
// The ring requires every process to take steps, so it is a crash-free
// benchmark: it demonstrates convergence under transient faults and the
// need for infinitely-often scheduling, while the graph protocols below
// demonstrate crash tolerance.
type DijkstraRing struct {
	k int
	x []int
}

// NewDijkstraRing creates a ring of n processes with K states each.
// K is clamped up to n+1 (Dijkstra's sufficiency bound).
func NewDijkstraRing(n, k int) *DijkstraRing {
	if k < n+1 {
		k = n + 1
	}
	return &DijkstraRing{k: k, x: make([]int, n)}
}

// Name implements Protocol.
func (d *DijkstraRing) Name() string { return "dijkstra-kstate-ring" }

// N implements Protocol.
func (d *DijkstraRing) N() int { return len(d.x) }

// K returns the state-space size per process.
func (d *DijkstraRing) K() int { return d.k }

// Value returns process i's register.
func (d *DijkstraRing) Value(i int) int { return d.x[i] }

// Enabled implements Protocol: the bottom machine is enabled when its
// value equals its predecessor's (the top machine); others are enabled
// when their value differs from their predecessor's.
func (d *DijkstraRing) Enabled(i int) bool {
	n := len(d.x)
	if n == 0 {
		return false
	}
	if i == 0 {
		return d.x[0] == d.x[n-1]
	}
	return d.x[i] != d.x[i-1]
}

// Step implements Protocol.
func (d *DijkstraRing) Step(i int) {
	if !d.Enabled(i) {
		return
	}
	if i == 0 {
		d.x[0] = (d.x[0] + 1) % d.k
		return
	}
	d.x[i] = d.x[i-1]
}

// SetValue overwrites process i's register — for constructing
// adversarial initial configurations.
func (d *DijkstraRing) SetValue(i, v int) {
	if i >= 0 && i < len(d.x) {
		d.x[i] = ((v % d.k) + d.k) % d.k
	}
}

// TokenHolders returns the processes whose guard is enabled — the
// "token holders". Legitimate configurations have exactly one.
func (d *DijkstraRing) TokenHolders() []int {
	var out []int
	for i := range d.x {
		if d.Enabled(i) {
			out = append(out, i)
		}
	}
	return out
}

// Legitimate implements Protocol: exactly one token exists. The ring
// needs all processes live; the live predicate is ignored (crashing a
// ring member makes legitimacy unreachable, which is precisely the
// phenomenon the crash experiments demonstrate with graph protocols
// instead).
func (d *DijkstraRing) Legitimate(func(int) bool) bool {
	return len(d.TokenHolders()) == 1
}

// Perturb implements Protocol.
func (d *DijkstraRing) Perturb(i int, rng *rand.Rand) {
	if i >= 0 && i < len(d.x) {
		d.x[i] = rng.Intn(d.k)
	}
}

// Coloring is self-stabilizing (Δ+1)-vertex-coloring: a process whose
// color collides with a neighbor's recolors itself with the smallest
// free color. It converges under any daemon that serializes
// neighboring steps, and it tolerates crashes: live processes converge
// to a coloring proper on every edge with a live endpoint, treating
// crashed neighbors' frozen colors as constraints.
type Coloring struct {
	g       *graph.Graph
	palette int
	c       []int
}

// NewColoring creates the protocol over conflict graph g with a
// (Δ+1)-color palette and all processes initially color 0 (an
// adversarial monochrome start).
func NewColoring(g *graph.Graph) *Coloring {
	return &Coloring{g: g, palette: g.MaxDegree() + 1, c: make([]int, g.N())}
}

// Name implements Protocol.
func (p *Coloring) Name() string { return "stabilizing-coloring" }

// N implements Protocol.
func (p *Coloring) N() int { return p.g.N() }

// Color returns process i's current color.
func (p *Coloring) Color(i int) int { return p.c[i] }

// Colors returns a copy of the full color vector.
func (p *Coloring) Colors() []int {
	out := make([]int, len(p.c))
	copy(out, p.c)
	return out
}

// SetColor overwrites process i's color — for constructing adversarial
// initial configurations.
func (p *Coloring) SetColor(i, c int) {
	if i >= 0 && i < len(p.c) {
		p.c[i] = c
	}
}

// Enabled implements Protocol.
func (p *Coloring) Enabled(i int) bool {
	for _, j := range p.g.Neighbors(i) {
		if p.c[j] == p.c[i] {
			return true
		}
	}
	return false
}

// Step implements Protocol: recolor with the smallest color unused by
// any neighbor.
func (p *Coloring) Step(i int) {
	if !p.Enabled(i) {
		return
	}
	used := make([]bool, p.palette+1)
	for _, j := range p.g.Neighbors(i) {
		if cj := p.c[j]; cj >= 0 && cj < len(used) {
			used[cj] = true
		}
	}
	for col := range used {
		if !used[col] {
			p.c[i] = col
			return
		}
	}
}

// Legitimate implements Protocol: no live process has a color conflict.
func (p *Coloring) Legitimate(live func(int) bool) bool {
	for i := 0; i < p.g.N(); i++ {
		if live != nil && !live(i) {
			continue
		}
		if p.Enabled(i) {
			return false
		}
	}
	return true
}

// Perturb implements Protocol.
func (p *Coloring) Perturb(i int, rng *rand.Rand) {
	if i >= 0 && i < len(p.c) {
		p.c[i] = rng.Intn(p.palette + 1)
	}
}

// MIS is self-stabilizing maximal independent set (Shukla, Rosenkrantz
// & Ravi 1995): a process joins the set when no neighbor is in it, and
// leaves when a neighbor is in it. Under a serializing daemon it
// converges; under a synchronous free-for-all schedule two neighbors
// can flip in lockstep forever, which is exactly why stabilizing
// protocols need a daemon — see SynchronousRound.
type MIS struct {
	g  *graph.Graph
	in []bool
}

// NewMIS creates the protocol over g with every process out of the set.
func NewMIS(g *graph.Graph) *MIS {
	return &MIS{g: g, in: make([]bool, g.N())}
}

// Name implements Protocol.
func (p *MIS) Name() string { return "stabilizing-mis" }

// N implements Protocol.
func (p *MIS) N() int { return p.g.N() }

// In reports whether process i is in the set.
func (p *MIS) In(i int) bool { return p.in[i] }

// Set overwrites process i's membership — for constructing adversarial
// initial configurations.
func (p *MIS) Set(i int, in bool) {
	if i >= 0 && i < len(p.in) {
		p.in[i] = in
	}
}

func (p *MIS) hasInNeighbor(i int) bool {
	for _, j := range p.g.Neighbors(i) {
		if p.in[j] {
			return true
		}
	}
	return false
}

// Enabled implements Protocol.
func (p *MIS) Enabled(i int) bool {
	if p.in[i] {
		return p.hasInNeighbor(i)
	}
	return !p.hasInNeighbor(i)
}

// Step implements Protocol.
func (p *MIS) Step(i int) {
	if !p.Enabled(i) {
		return
	}
	p.in[i] = !p.in[i]
}

// Legitimate implements Protocol: no live process is enabled — the set
// is independent and maximal with respect to live processes.
func (p *MIS) Legitimate(live func(int) bool) bool {
	for i := 0; i < p.g.N(); i++ {
		if live != nil && !live(i) {
			continue
		}
		if p.Enabled(i) {
			return false
		}
	}
	return true
}

// Perturb implements Protocol.
func (p *MIS) Perturb(i int, rng *rand.Rand) {
	if i >= 0 && i < len(p.in) {
		p.in[i] = rng.Intn(2) == 0
	}
}

// SynchronousRound executes one synchronous round: every enabled
// process steps simultaneously (reads before any write). It returns how
// many processes stepped. On a bipartite structure with a symmetric
// start, MIS livelocks under this schedule — all-out flips to all-in
// and back — which demonstrates why daemon-free scheduling is unsound
// for this protocol family.
func (p *MIS) SynchronousRound() int {
	var stepped []int
	for i := 0; i < p.g.N(); i++ {
		if p.Enabled(i) {
			stepped = append(stepped, i)
		}
	}
	for _, i := range stepped {
		p.in[i] = !p.in[i]
	}
	return len(stepped)
}

var (
	_ Protocol = (*DijkstraRing)(nil)
	_ Protocol = (*Coloring)(nil)
	_ Protocol = (*MIS)(nil)
)
