package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// Config assembles a Diner. All fields other than Options and Hooks are
// required.
type Config struct {
	// ID is this process's identity.
	ID int
	// Color is this process's static priority. The paper requires
	// locally unique colors: no neighbor may share it.
	Color int
	// NeighborColors maps each conflict-graph neighbor to its color.
	NeighborColors map[int]int
	// Suspects is the local ◇P₁ module: Suspects(j) reports whether
	// this process currently suspects neighbor j. A nil func never
	// suspects.
	Suspects func(j int) bool
	// Options tweak the algorithm for baselines and ablations.
	Options Options
	// Hooks observe state transitions.
	Hooks Hooks
}

// Options select algorithm variants. The zero value is the paper's
// Algorithm 1.
type Options struct {
	// DisableRepliedFlag reverts the modified doorway to the original
	// Choy–Singh ping-ack protocol: acks are granted whenever the
	// process is outside the doorway, with no per-hungry-session limit.
	// This is ablation D1; it forfeits the ◇2-BW guarantee (Theorem 3)
	// while keeping safety and wait-freedom.
	DisableRepliedFlag bool
	// IgnoreDetector makes the diner never consult ◇P₁. Together with
	// the default doorway this yields the original Choy–Singh
	// asynchronous doorway algorithm, which is not wait-free: a crashed
	// neighbor blocks the doorway and fork collection forever.
	IgnoreDetector bool
	// AcksPerSession generalizes the paper's modified doorway from "at
	// most one ack per neighbor per hungry session" to at most m: the
	// fairness guarantee becomes eventual (m+1)-bounded waiting — the
	// general "k" of the paper's title, of which Algorithm 1 is the
	// m = 1, k = 2 instance (the +1 is an ack that can be in flight
	// from just before the session started, exactly as in the paper's
	// Theorem 3 proof). Zero means 1; ignored when DisableRepliedFlag
	// is set (which is the m = ∞ limit).
	AcksPerSession int
}

// ackLimit returns the per-session ack budget, or -1 for unlimited.
func (o Options) ackLimit() int {
	if o.DisableRepliedFlag {
		return -1
	}
	if o.AcksPerSession <= 0 {
		return 1
	}
	return o.AcksPerSession
}

// Hooks are optional transition observers. Any field may be nil.
type Hooks struct {
	// OnHungry fires on thinking → hungry.
	OnHungry func()
	// OnEnterDoorway fires when the diner passes the doorway (Action 5).
	OnEnterDoorway func()
	// OnEat fires on hungry → eating (Action 9).
	OnEat func()
	// OnExit fires on eating → thinking (Action 10).
	OnExit func()
}

// Diner is one process executing Algorithm 1. It is a single-threaded
// state machine; see Process for the calling contract.
type Diner struct {
	id        int
	color     int
	neighbors []int       // sorted, for deterministic message order
	colorOf   map[int]int // neighbor colors (for initial fork placement)
	suspects  func(j int) bool
	opts      Options
	hooks     Hooks

	state  State
	inside bool

	// Per-neighbor protocol variables, exactly the paper's nine
	// variable families (state, inside, color above; six booleans per
	// neighbor below — `granted` generalizes the paper's boolean
	// replied_ij to a counter so that AcksPerSession > 1 is
	// expressible; at the default limit of 1 it carries one bit).
	pinged   map[int]bool // pending ping initiated by us
	ack      map[int]bool // ack received this hungry session (pre-doorway)
	deferred map[int]bool // we owe j an ack after we exit the doorway
	granted  map[int]int  // acks sent to j during our current hungry session
	fork     map[int]bool // we hold the fork shared with j
	token    map[int]bool // we hold the request token shared with j

	eatCount   int
	sessionSeq int // hungry sessions started
	err        error
}

var _ Process = (*Diner)(nil)

// Protocol-invariant violations. These correspond to the paper's
// Lemmas 1.1–1.2 and Lemma 2.2; over reliable FIFO channels they are
// unreachable, and the test suite relies on that.
var (
	ErrNotNeighbor    = errors.New("core: message from non-neighbor")
	ErrDuplicateFork  = errors.New("core: received fork while holding it (Lemma 1.2 violated)")
	ErrForkWithToken  = errors.New("core: received fork while holding token (FIFO violated)")
	ErrRequestNoFork  = errors.New("core: fork requested but not held (Lemma 1.1 violated)")
	ErrDuplicateToken = errors.New("core: received token while holding it")
	ErrUnsolicitedAck = errors.New("core: received ack with no pending ping (Lemma 2.2 violated)")
	ErrBadConfig      = errors.New("core: invalid configuration")
)

// NewDiner validates cfg and returns a ready (thinking) diner. Between
// each pair of neighbors the fork starts at the higher-colored process
// and the token at the lower-colored one, as the paper prescribes.
func NewDiner(cfg Config) (*Diner, error) {
	if len(cfg.NeighborColors) == 0 {
		// A diner with no neighbors is legal (it can always eat) but
		// callers usually indicate a wiring bug; allow it explicitly.
		// No error: isolated vertices occur in valid conflict graphs.
		_ = struct{}{}
	}
	d := &Diner{
		id:       cfg.ID,
		color:    cfg.Color,
		colorOf:  make(map[int]int, len(cfg.NeighborColors)),
		suspects: cfg.Suspects,
		opts:     cfg.Options,
		hooks:    cfg.Hooks,
		state:    Thinking,
		pinged:   make(map[int]bool, len(cfg.NeighborColors)),
		ack:      make(map[int]bool, len(cfg.NeighborColors)),
		deferred: make(map[int]bool, len(cfg.NeighborColors)),
		granted:  make(map[int]int, len(cfg.NeighborColors)),
		fork:     make(map[int]bool, len(cfg.NeighborColors)),
		token:    make(map[int]bool, len(cfg.NeighborColors)),
	}
	if d.suspects == nil {
		d.suspects = func(int) bool { return false }
	}
	// Wire neighbors in sorted ID order. Iterating the map directly
	// would let Go's randomized iteration order pick which configuration
	// error gets reported — a small but real nondeterminism.
	for j := range cfg.NeighborColors {
		d.neighbors = append(d.neighbors, j)
	}
	sort.Ints(d.neighbors)
	for _, j := range d.neighbors {
		c := cfg.NeighborColors[j]
		if j == cfg.ID {
			return nil, fmt.Errorf("%w: process %d lists itself as neighbor", ErrBadConfig, cfg.ID)
		}
		if c == cfg.Color {
			return nil, fmt.Errorf("%w: neighbors %d and %d share color %d", ErrBadConfig, cfg.ID, j, c)
		}
		d.colorOf[j] = c
		if cfg.Color > c {
			d.fork[j] = true
		} else {
			d.token[j] = true
		}
	}
	return d, nil
}

// ID returns the diner's process ID.
func (d *Diner) ID() int { return d.id }

// Color returns the diner's static priority.
func (d *Diner) Color() int { return d.color }

// State implements Process.
func (d *Diner) State() State { return d.state }

// Inside reports whether the diner is inside the doorway.
func (d *Diner) Inside() bool { return d.inside }

// HoldsFork reports whether the diner holds the fork shared with j.
func (d *Diner) HoldsFork(j int) bool { return d.fork[j] }

// HoldsToken reports whether the diner holds the token shared with j.
func (d *Diner) HoldsToken(j int) bool { return d.token[j] }

// EatCount returns how many times the diner has entered eating.
func (d *Diner) EatCount() int { return d.eatCount }

// Sessions returns how many hungry sessions the diner has started.
func (d *Diner) Sessions() int { return d.sessionSeq }

// Err implements Process.
func (d *Diner) Err() error { return d.err }

func (d *Diner) fail(err error, j int) {
	if d.err == nil {
		d.err = fmt.Errorf("diner %d, neighbor %d: %w", d.id, j, err)
	}
}

func (d *Diner) suspected(j int) bool {
	if d.opts.IgnoreDetector {
		return false
	}
	return d.suspects(j)
}

// BecomeHungry implements Process (Action 1): a thinking process may
// become hungry at any time.
func (d *Diner) BecomeHungry() []Message {
	if d.state != Thinking || d.err != nil {
		return nil
	}
	d.state = Hungry
	d.sessionSeq++
	if d.hooks.OnHungry != nil {
		d.hooks.OnHungry()
	}
	return d.fire(nil)
}

// Deliver implements Process (Actions 3, 4, 7, 8 plus the fixpoint of
// enabled internal actions).
func (d *Diner) Deliver(m Message) []Message {
	if d.err != nil {
		return nil
	}
	j := m.From
	if _, ok := d.colorOf[j]; !ok {
		d.fail(ErrNotNeighbor, j)
		return nil
	}
	var out []Message
	switch m.Kind {
	case Ping: // Action 3
		limit := d.opts.ackLimit()
		if d.inside || (limit >= 0 && d.granted[j] >= limit) {
			d.deferred[j] = true
		} else {
			out = append(out, Message{Kind: Ack, From: d.id, To: j})
			if limit >= 0 && d.state == Hungry {
				d.granted[j]++
			}
		}
	case Ack: // Action 4
		if !d.pinged[j] {
			d.fail(ErrUnsolicitedAck, j)
			return nil
		}
		d.ack[j] = d.state == Hungry && !d.inside
		d.pinged[j] = false
	case Request: // Action 7
		if d.token[j] {
			d.fail(ErrDuplicateToken, j)
			return nil
		}
		if !d.fork[j] {
			d.fail(ErrRequestNoFork, j)
			return nil
		}
		d.token[j] = true
		if !d.inside || (d.state == Hungry && d.color < m.Color) {
			out = append(out, Message{Kind: Fork, From: d.id, To: j})
			d.fork[j] = false
		}
	case Fork: // Action 8
		if d.fork[j] {
			d.fail(ErrDuplicateFork, j)
			return nil
		}
		if d.token[j] {
			d.fail(ErrForkWithToken, j)
			return nil
		}
		d.fork[j] = true
	default:
		d.fail(fmt.Errorf("unknown message kind %v", m.Kind), j)
		return nil
	}
	return d.fire(out)
}

// ResetNeighbor reinitializes the protocol variables of the edge
// shared with neighbor j to their NewDiner values: fork at the higher
// color, token at the lower, no pings, acks, deferrals, or grants
// outstanding. The crash-recovery runtime calls it on the surviving
// side when neighbor j restarts with fresh dining state: j's reborn
// diner holds exactly the initial placement for this edge, so the
// survivor must adopt the complementary half. Without the reset both
// endpoints can believe they hold the edge's one fork — the survivor
// acquired it legitimately before the crash, the restarted side
// re-seeded it by color — and since neither ever requests it, no
// message flows and no local invariant trips while the two eat
// concurrently forever. After the reset the enabled internal actions
// re-fire: a hungry survivor re-pings j, and one inside the doorway
// re-requests the fork if the reset left it holding the token.
//
// A reset mid-session can transiently break exclusion (a survivor
// eating on a fork the reset just reassigned finishes its meal), which
// is inherent to recovery: the paper's guarantees are eventual, and
// the chaos harness asserts them only after stabilization.
func (d *Diner) ResetNeighbor(j int) []Message {
	if d.err != nil {
		return nil
	}
	c, ok := d.colorOf[j]
	if !ok {
		return nil
	}
	d.pinged[j] = false
	d.ack[j] = false
	d.deferred[j] = false
	d.granted[j] = 0
	d.fork[j] = d.color > c
	d.token[j] = d.color < c
	return d.fire(nil)
}

// ReevaluateSuspicion implements Process: guards of Actions 5 and 9
// consult ◇P₁, so the runner invokes this when the local suspect set
// changes.
func (d *Diner) ReevaluateSuspicion() []Message {
	if d.err != nil {
		return nil
	}
	return d.fire(nil)
}

// ExitEating implements Process (Action 10): exit eating and the
// doorway, transit to thinking, and grant all deferred forks and acks.
func (d *Diner) ExitEating() []Message {
	if d.state != Eating || d.err != nil {
		return nil
	}
	d.inside = false
	d.state = Thinking
	var out []Message
	for _, j := range d.neighbors {
		if d.token[j] && d.fork[j] { // deferred fork request
			out = append(out, Message{Kind: Fork, From: d.id, To: j})
			d.fork[j] = false
		}
	}
	for _, j := range d.neighbors {
		if d.deferred[j] { // deferred ping request
			out = append(out, Message{Kind: Ack, From: d.id, To: j})
			d.deferred[j] = false
		}
	}
	if d.hooks.OnExit != nil {
		d.hooks.OnExit()
	}
	return d.fire(out)
}

// fire runs the enabled internal actions (2, 5, 6, 9) to a fixpoint,
// appending any messages they emit to out.
func (d *Diner) fire(out []Message) []Message {
	for {
		switch {
		case d.state == Hungry && !d.inside:
			// Action 2: request missing acks (at most one pending ping
			// per neighbor, Lemma 2.2).
			progress := false
			for _, j := range d.neighbors {
				if !d.pinged[j] && !d.ack[j] {
					out = append(out, Message{Kind: Ping, From: d.id, To: j})
					d.pinged[j] = true
					progress = true
				}
			}
			// Action 5: enter the doorway when every neighbor granted
			// an ack or is suspected.
			if d.doorwayGuard() {
				d.inside = true
				for _, j := range d.neighbors {
					d.ack[j] = false
					d.granted[j] = 0
				}
				if d.hooks.OnEnterDoorway != nil {
					d.hooks.OnEnterDoorway()
				}
				continue
			}
			if progress {
				continue
			}
			return out
		case d.state == Hungry && d.inside:
			// Action 6: request missing forks where we hold the token.
			progress := false
			for _, j := range d.neighbors {
				if d.token[j] && !d.fork[j] {
					out = append(out, Message{Kind: Request, From: d.id, To: j, Color: d.color})
					d.token[j] = false
					progress = true
				}
			}
			// Action 9: eat when every fork is held or its holder is
			// suspected.
			if d.eatGuard() {
				d.state = Eating
				d.eatCount++
				if d.hooks.OnEat != nil {
					d.hooks.OnEat()
				}
				return out
			}
			if progress {
				continue
			}
			return out
		default:
			return out
		}
	}
}

func (d *Diner) doorwayGuard() bool {
	for _, j := range d.neighbors {
		if !d.ack[j] && !d.suspected(j) {
			return false
		}
	}
	return true
}

func (d *Diner) eatGuard() bool {
	for _, j := range d.neighbors {
		if !d.fork[j] && !d.suspected(j) {
			return false
		}
	}
	return true
}

// SpaceBits returns the number of bits of protocol state this diner
// holds: six booleans per neighbor, the two state variables, and the
// color, matching the paper's Section 7 bound of log₂(δ)+6δ+c bits
// (with colors drawn from an O(δ) palette). With AcksPerSession m > 1
// the replied bit widens to a ⌈log₂(m+1)⌉-bit counter per neighbor.
func (d *Diner) SpaceBits() int {
	delta := len(d.neighbors)
	colorBits := bits.Len(uint(d.color)) // ≈ log₂(color)
	if colorBits == 0 {
		colorBits = 1
	}
	grantBits := 1
	if limit := d.opts.ackLimit(); limit > 1 {
		grantBits = bits.Len(uint(limit))
	}
	const stateBits = 2 + 1 // trivalent state + inside flag
	return colorBits + (5+grantBits)*delta + stateBits
}

// snapshot support for white-box tests ------------------------------

// Snapshot is a copy of a diner's protocol variables, exposed for tests
// and monitors.
type Snapshot struct {
	ID      int
	Color   int
	State   State
	Inside  bool
	Pinged  map[int]bool
	Acked   map[int]bool
	Defer   map[int]bool
	Replied map[int]bool
	Fork    map[int]bool
	Token   map[int]bool
}

// SetSuspects rebinds the diner's ◇P₁ module. The model checker uses it
// after Clone so each branched state consults its own crash set; a nil
// fn never suspects.
func (d *Diner) SetSuspects(fn func(j int) bool) {
	if fn == nil {
		fn = func(int) bool { return false }
	}
	d.suspects = fn
}

// Clone returns a deep copy of the diner sharing the suspects oracle
// and hooks. Used by the model checker to branch executions.
func (d *Diner) Clone() *Diner {
	cpB := func(m map[int]bool) map[int]bool {
		out := make(map[int]bool, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	cpI := func(m map[int]int) map[int]int {
		out := make(map[int]int, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	nbrs := make([]int, len(d.neighbors))
	copy(nbrs, d.neighbors)
	return &Diner{
		id:         d.id,
		color:      d.color,
		neighbors:  nbrs,
		colorOf:    cpI(d.colorOf),
		suspects:   d.suspects,
		opts:       d.opts,
		hooks:      d.hooks,
		state:      d.state,
		inside:     d.inside,
		pinged:     cpB(d.pinged),
		ack:        cpB(d.ack),
		deferred:   cpB(d.deferred),
		granted:    cpI(d.granted),
		fork:       cpB(d.fork),
		token:      cpB(d.token),
		eatCount:   d.eatCount,
		sessionSeq: d.sessionSeq,
		err:        d.err,
	}
}

// repliedView projects the generalized grant counters onto the paper's
// boolean replied_ij view: true iff any ack was granted this session.
func repliedView(granted map[int]int) map[int]bool {
	out := make(map[int]bool, len(granted))
	for j, n := range granted {
		out[j] = n > 0
	}
	return out
}

// AcksGranted returns how many acks were sent to j during the current
// hungry session (the generalized replied_ij counter).
func (d *Diner) AcksGranted(j int) int { return d.granted[j] }

// StateKey serializes the protocol-relevant variables canonically (for
// model-checker state hashing). Session and eat counters are excluded:
// they grow without bound and do not influence future behavior.
func (d *Diner) StateKey() string {
	var b []byte
	b = append(b, byte('0'+int(d.state)))
	if d.inside {
		b = append(b, 'I')
	}
	for _, j := range d.neighbors {
		b = append(b, ';')
		if d.pinged[j] {
			b = append(b, 'p')
		}
		if d.ack[j] {
			b = append(b, 'a')
		}
		if d.deferred[j] {
			b = append(b, 'D')
		}
		if g := d.granted[j]; g > 0 {
			b = append(b, 'g', byte('0'+g%10))
		}
		if d.fork[j] {
			b = append(b, 'f')
		}
		if d.token[j] {
			b = append(b, 't')
		}
	}
	return string(b)
}

// Snapshot returns a deep copy of the diner's current variables.
func (d *Diner) Snapshot() Snapshot {
	cp := func(m map[int]bool) map[int]bool {
		out := make(map[int]bool, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	return Snapshot{
		ID:      d.id,
		Color:   d.color,
		State:   d.state,
		Inside:  d.inside,
		Pinged:  cp(d.pinged),
		Acked:   cp(d.ack),
		Defer:   cp(d.deferred),
		Replied: repliedView(d.granted),
		Fork:    cp(d.fork),
		Token:   cp(d.token),
	}
}
