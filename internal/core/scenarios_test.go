package core

import "testing"

// Scenario tests reproducing the corner cases the paper's proofs argue
// about explicitly.

// TestMutualSuspicionSimultaneousDoorwayEntry reproduces the Section 3
// remark: "If two neighbors suspect each other (before ◇P₁ converges),
// then both can enter the doorway regardless of ack messages" — and the
// color-priority fork scheme must then resolve the symmetry in Phase 2.
func TestMutualSuspicionSimultaneousDoorwayEntry(t *testing.T) {
	a, b, aSusp, bSusp := pair(t, 3, 1)
	*aSusp, *bSusp = true, true
	outA := a.BecomeHungry()
	outB := b.BecomeHungry()
	if !a.Inside() || !b.Inside() {
		t.Fatal("mutual suspicion must let both enter the doorway")
	}
	// a holds the fork (higher color) so it eats immediately on
	// suspicion+fork; b eats on suspicion alone — both eating is the
	// legal pre-convergence ◇WX mistake.
	if a.State() != Eating || b.State() != Eating {
		t.Fatalf("states: a=%v b=%v; suspicion should let both eat", a.State(), b.State())
	}
	// Detector converges: suspicion is withdrawn. The messages sent
	// during the mistake must not corrupt protocol state.
	*aSusp, *bSusp = false, false
	queue := append(outA, outB...)
	queue = append(queue, a.ExitEating()...)
	queue = append(queue, b.ExitEating()...)
	pump(t, a, b, queue)
	if a.Err() != nil || b.Err() != nil {
		t.Fatalf("post-mistake errors: %v / %v", a.Err(), b.Err())
	}
	// From now on the run must be clean: alternate eating forever.
	queue = append(a.BecomeHungry(), b.BecomeHungry()...)
	for round := 0; round < 50; round++ {
		pump(t, a, b, queue)
		queue = nil
		eatingA, eatingB := a.State() == Eating, b.State() == Eating
		if eatingA && eatingB {
			t.Fatalf("round %d: exclusion violated after convergence", round)
		}
		if !eatingA && !eatingB {
			t.Fatalf("round %d: nobody eats", round)
		}
		if eatingA {
			queue = append(queue, a.ExitEating()...)
			queue = append(queue, a.BecomeHungry()...)
		} else {
			queue = append(queue, b.ExitEating()...)
			queue = append(queue, b.BecomeHungry()...)
		}
	}
}

// TestTheoremThreeBoundIsTight constructs the paper's "+1" scenario:
// an ack sent just before the victim became hungry is still in transit,
// so the neighbor enters the doorway twice during one hungry session —
// exactly two overtakes, never three.
func TestTheoremThreeBoundIsTight(t *testing.T) {
	v, n, _, _ := pair(t, 1, 3) // victim v (low color), neighbor n (high)
	// n gets hungry and pings v, which is thinking: v acks immediately
	// (replied stays false because v is thinking).
	out := n.BecomeHungry()
	if len(out) != 1 || out[0].Kind != Ping {
		t.Fatalf("setup: %v", out)
	}
	ackToN := v.Deliver(out[0]) // the "in-transit" ack
	if len(ackToN) != 1 || ackToN[0].Kind != Ack {
		t.Fatalf("setup ack: %v", ackToN)
	}
	// NOW v becomes hungry — the ack to n is still in transit.
	vOut := v.BecomeHungry()
	// Overtake #1: n receives the pre-session ack, enters, eats (it
	// holds the fork as the higher color).
	n.Deliver(ackToN[0])
	if n.State() != Eating {
		t.Fatalf("overtake 1 failed: n is %v", n.State())
	}
	exit1 := n.ExitEating()
	// v's ping (from vOut) reaches n only now; n re-becomes hungry and
	// pings v again; v is hungry outside and has not replied this
	// session → grants its one session-ack.
	var queue []Message
	queue = append(queue, vOut...)
	queue = append(queue, exit1...)
	queue = append(queue, n.BecomeHungry()...)
	// Drive to quiescence BUT intercept: count how many times n eats
	// while v stays hungry.
	overtakes := 1
	for steps := 0; ; steps++ {
		if steps > 10000 {
			t.Fatal("did not converge")
		}
		if len(queue) == 0 {
			if n.State() == Eating {
				overtakes++
				queue = append(queue, n.ExitEating()...)
				queue = append(queue, n.BecomeHungry()...)
				continue
			}
			break
		}
		m := queue[0]
		queue = queue[1:]
		switch m.To {
		case v.ID():
			queue = append(queue, v.Deliver(m)...)
		default:
			queue = append(queue, n.Deliver(m)...)
		}
		if v.State() == Eating {
			break // victim finally scheduled
		}
	}
	if v.State() != Eating {
		t.Fatalf("victim starved: %v (overtakes=%d)", v.State(), overtakes)
	}
	if overtakes != 2 {
		t.Fatalf("overtakes = %d; the paper's bound of 2 should be attained exactly here", overtakes)
	}
	if v.Err() != nil || n.Err() != nil {
		t.Fatal(v.Err(), n.Err())
	}
}

// TestDeferredAckArrivesAfterExit verifies the deferred-ack path: a
// ping deferred by a hungry process (replied already set) is granted
// when it exits the doorway after eating, and the waiter's session
// proceeds.
func TestDeferredAckArrivesAfterExit(t *testing.T) {
	a, b, _, _ := pair(t, 3, 1)
	// b hungry, pings a; a thinking: acks (no replied).
	outB := b.BecomeHungry()
	ack := a.Deliver(outB[0])
	// a becomes hungry, pings b; b is hungry outside, not replied:
	// grants, setting replied.
	outA := a.BecomeHungry()
	ackFromB := b.Deliver(outA[0])
	// a collects b's ack and eats (holds fork).
	a.Deliver(ackFromB[0])
	if a.State() != Eating {
		t.Fatalf("a should eat, is %v", a.State())
	}
	// b collects a's first ack, enters doorway, requests the fork; a
	// (eating) defers the request.
	var queue []Message
	queue = append(queue, b.Deliver(ack[0])...)
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		if m.To == a.ID() {
			queue = append(queue, a.Deliver(m)...)
		} else {
			queue = append(queue, b.Deliver(m)...)
		}
	}
	if b.State() != Hungry || !b.Inside() {
		t.Fatalf("b should be hungry inside, is %v/%v", b.State(), b.Inside())
	}
	// a exits: the deferred fork flows to b, which eats.
	queue = a.ExitEating()
	pump(t, a, b, queue)
	if b.State() != Eating {
		t.Fatalf("deferred grant failed: b is %v", b.State())
	}
}

// TestPingFromPreviousSessionAnswered reproduces the Lemma 2.4
// subtlety: a ping can be sent in one hungry session and answered in a
// later one. Here a wrongfully suspects b, eats through session 1 while
// its ping is deferred at b, and the single pending ping (Lemma 2.2 —
// no re-ping in session 2) is eventually answered, unblocking session 2
// after the suspicion clears.
func TestPingFromPreviousSessionAnswered(t *testing.T) {
	a, b, aSusp, _ := pair(t, 3, 1)
	// b gets hungry first and enters the doorway so it defers a's ping:
	// make b suspect nobody; b needs a's ack. a is thinking → acks.
	outB := b.BecomeHungry()
	ackToB := a.Deliver(outB[0])
	bOut := b.Deliver(ackToB[0]) // b inside, requests the fork
	if !b.Inside() {
		t.Fatal("setup: b should be inside the doorway")
	}
	// a now becomes hungry: its ping reaches b, which is inside →
	// deferred.
	outA := a.BecomeHungry()
	if out := b.Deliver(outA[0]); len(out) != 0 {
		t.Fatalf("b must defer the ping, sent %v", out)
	}
	if !b.Snapshot().Defer[0] {
		t.Fatal("deferred flag must be set at b")
	}
	// a wrongfully suspects b: session 1 completes on suspicion.
	*aSusp = true
	a.ReevaluateSuspicion()
	if a.State() != Eating {
		t.Fatalf("a should eat via suspicion, is %v", a.State())
	}
	exitOut := a.ExitEating()
	*aSusp = false // detector converges
	// Session 2: a must NOT re-ping (Lemma 2.2: one pending ping).
	out2 := a.BecomeHungry()
	for _, m := range append(out2, exitOut...) {
		if m.Kind == Ping {
			t.Fatalf("second ping sent while one is pending: %v", m)
		}
	}
	if !a.Snapshot().Pinged[1] {
		t.Fatal("the session-1 ping must still be pending")
	}
	// Drain everything: b eats (it held the doorway), exits, grants the
	// deferred ack; a's session 2 completes with the late ack.
	queue := append(append(bOut, out2...), exitOut...)
	for steps := 0; a.State() != Eating; steps++ {
		if steps > 10000 {
			t.Fatalf("a starved in session 2: a=%v b=%v", a.State(), b.State())
		}
		if len(queue) == 0 {
			if b.State() == Eating {
				queue = append(queue, b.ExitEating()...)
				continue
			}
			t.Fatalf("quiescent without progress: a=%v/%v b=%v/%v",
				a.State(), a.Inside(), b.State(), b.Inside())
		}
		m := queue[0]
		queue = queue[1:]
		if m.To == a.ID() {
			queue = append(queue, a.Deliver(m)...)
		} else {
			queue = append(queue, b.Deliver(m)...)
		}
	}
	if a.Err() != nil || b.Err() != nil {
		t.Fatal(a.Err(), b.Err())
	}
}
