package core

import (
	"errors"
	"testing"
)

// pairConfig builds two neighboring diners with the given colors; lo's
// suspicion of hi (and vice versa) is controlled by the returned flags.
func pair(t *testing.T, colorA, colorB int) (*Diner, *Diner, *bool, *bool) {
	t.Helper()
	aSuspectsB, bSuspectsA := new(bool), new(bool)
	a, err := NewDiner(Config{
		ID: 0, Color: colorA,
		NeighborColors: map[int]int{1: colorB},
		Suspects:       func(int) bool { return *aSuspectsB },
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiner(Config{
		ID: 1, Color: colorB,
		NeighborColors: map[int]int{0: colorA},
		Suspects:       func(int) bool { return *bSuspectsA },
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, b, aSuspectsB, bSuspectsA
}

// pump delivers messages between the two diners of a pair until both
// outboxes drain (instant, reliable, FIFO channels).
func pump(t *testing.T, a, b *Diner, initial []Message) {
	t.Helper()
	queue := initial
	for steps := 0; len(queue) > 0; steps++ {
		if steps > 10000 {
			t.Fatal("message pump did not quiesce")
		}
		m := queue[0]
		queue = queue[1:]
		var out []Message
		switch m.To {
		case a.ID():
			out = a.Deliver(m)
		case b.ID():
			out = b.Deliver(m)
		default:
			t.Fatalf("message to unknown process: %v", m)
		}
		queue = append(queue, out...)
	}
	if err := a.Err(); err != nil {
		t.Fatalf("diner %d: %v", a.ID(), err)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("diner %d: %v", b.ID(), err)
	}
}

func TestNewDinerValidation(t *testing.T) {
	if _, err := NewDiner(Config{ID: 0, Color: 1, NeighborColors: map[int]int{1: 1}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("same-color neighbor: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewDiner(Config{ID: 0, Color: 1, NeighborColors: map[int]int{0: 2}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("self neighbor: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewDiner(Config{ID: 0, Color: 1}); err != nil {
		t.Fatalf("isolated diner should be valid: %v", err)
	}
}

func TestInitialForkTokenPlacement(t *testing.T) {
	hi, lo, _, _ := pair(t, 5, 2)
	if !hi.HoldsFork(1) || hi.HoldsToken(1) {
		t.Fatal("higher color must start with the fork, not the token")
	}
	if lo.HoldsFork(0) || !lo.HoldsToken(0) {
		t.Fatal("lower color must start with the token, not the fork")
	}
}

func TestInitialStateThinkingOutside(t *testing.T) {
	a, _, _, _ := pair(t, 3, 1)
	if a.State() != Thinking || a.Inside() {
		t.Fatalf("initial state = %v inside=%v, want thinking outside", a.State(), a.Inside())
	}
}

func TestBecomeHungrySendsPings(t *testing.T) {
	a, _, _, _ := pair(t, 3, 1)
	out := a.BecomeHungry()
	if a.State() != Hungry {
		t.Fatalf("state = %v, want hungry", a.State())
	}
	if len(out) != 1 || out[0].Kind != Ping || out[0].To != 1 {
		t.Fatalf("out = %v, want one ping to 1", out)
	}
	if !a.Snapshot().Pinged[1] {
		t.Fatal("pinged flag not set")
	}
	// Becoming hungry twice is a no-op.
	if extra := a.BecomeHungry(); extra != nil {
		t.Fatalf("second BecomeHungry emitted %v", extra)
	}
}

func TestPingWhileThinkingGrantsAck(t *testing.T) {
	a, b, _, _ := pair(t, 3, 1)
	_ = a // a thinking
	out := a.Deliver(Message{Kind: Ping, From: 1, To: 0})
	if len(out) != 1 || out[0].Kind != Ack {
		t.Fatalf("out = %v, want one ack", out)
	}
	if a.Snapshot().Replied[1] {
		t.Fatal("replied must stay false when acking while thinking")
	}
	_ = b
}

func TestPingWhileHungryGrantsOneAckThenDefers(t *testing.T) {
	a, _, _, _ := pair(t, 3, 1)
	a.BecomeHungry()
	out := a.Deliver(Message{Kind: Ping, From: 1, To: 0})
	if len(out) != 1 || out[0].Kind != Ack {
		t.Fatalf("first ping: out = %v, want ack", out)
	}
	if !a.Snapshot().Replied[1] {
		t.Fatal("replied must be set after acking while hungry")
	}
	out = a.Deliver(Message{Kind: Ping, From: 1, To: 0})
	if len(out) != 0 {
		t.Fatalf("second ping in same session: out = %v, want deferral", out)
	}
	if !a.Snapshot().Defer[1] {
		t.Fatal("second ping must be deferred")
	}
}

func TestDisableRepliedFlagGrantsRepeatedAcks(t *testing.T) {
	a, err := NewDiner(Config{
		ID: 0, Color: 3,
		NeighborColors: map[int]int{1: 1},
		Options:        Options{DisableRepliedFlag: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.BecomeHungry()
	for i := 0; i < 3; i++ {
		out := a.Deliver(Message{Kind: Ping, From: 1, To: 0})
		if len(out) != 1 || out[0].Kind != Ack {
			t.Fatalf("ping %d: out = %v, want ack (original doorway)", i, out)
		}
	}
}

func TestAckEntersDoorwayAndRequestsForks(t *testing.T) {
	lo, _, _, _ := pair(t, 1, 3) // lo has lower color: starts with token, no fork
	lo.BecomeHungry()
	out := lo.Deliver(Message{Kind: Ack, From: 1, To: 0})
	if !lo.Inside() {
		t.Fatal("all acks received: must be inside the doorway")
	}
	// Inside the doorway, missing fork + held token => request.
	if len(out) != 1 || out[0].Kind != Request || out[0].Color != 1 {
		t.Fatalf("out = %v, want one fork request carrying color 1", out)
	}
	if lo.HoldsToken(1) {
		t.Fatal("token must be relinquished with the request")
	}
	snap := lo.Snapshot()
	if snap.Acked[1] || snap.Replied[1] {
		t.Fatal("ack/replied must reset on doorway entry")
	}
}

func TestHigherColorEatsWithForkInHand(t *testing.T) {
	hi, _, _, _ := pair(t, 3, 1) // hi starts holding the fork
	hi.BecomeHungry()
	out := hi.Deliver(Message{Kind: Ack, From: 1, To: 0})
	if hi.State() != Eating {
		t.Fatalf("state = %v, want eating (fork already held)", hi.State())
	}
	if len(out) != 0 {
		t.Fatalf("no messages expected, got %v", out)
	}
	if hi.EatCount() != 1 {
		t.Fatalf("EatCount = %d, want 1", hi.EatCount())
	}
}

func TestIsolatedDinerEatsImmediately(t *testing.T) {
	d, err := NewDiner(Config{ID: 7, Color: 0})
	if err != nil {
		t.Fatal(err)
	}
	out := d.BecomeHungry()
	if d.State() != Eating {
		t.Fatalf("isolated diner state = %v, want eating", d.State())
	}
	if len(out) != 0 {
		t.Fatalf("isolated diner sent %v", out)
	}
	d.ExitEating()
	if d.State() != Thinking {
		t.Fatal("exit failed")
	}
}

func TestRequestGrantedWhenOutside(t *testing.T) {
	hi, _, _, _ := pair(t, 3, 1) // hi holds fork, thinking
	out := hi.Deliver(Message{Kind: Request, From: 1, To: 0, Color: 1})
	if len(out) != 1 || out[0].Kind != Fork {
		t.Fatalf("out = %v, want fork grant", out)
	}
	if hi.HoldsFork(1) {
		t.Fatal("fork flag must clear on grant")
	}
	if !hi.HoldsToken(1) {
		t.Fatal("token must be retained after receiving request")
	}
}

func TestRequestDeferredWhenHungryInsideHigherColor(t *testing.T) {
	hi, _, _, _ := pair(t, 3, 1)
	hi.BecomeHungry()
	hi.Deliver(Message{Kind: Ack, From: 1, To: 0}) // hi is now eating (holds fork)
	if hi.State() != Eating {
		t.Fatal("setup: hi should be eating")
	}
	out := hi.Deliver(Message{Kind: Request, From: 1, To: 0, Color: 1})
	if len(out) != 0 {
		t.Fatalf("eating process must defer fork requests, sent %v", out)
	}
	if !hi.HoldsFork(1) || !hi.HoldsToken(1) {
		t.Fatal("deferred request: must hold both fork and token")
	}
	// Exit releases the deferred fork.
	out = hi.ExitEating()
	var forks int
	for _, m := range out {
		if m.Kind == Fork {
			forks++
		}
	}
	if forks != 1 {
		t.Fatalf("exit sent %d forks, want 1 (deferred grant)", forks)
	}
	if hi.HoldsFork(1) {
		t.Fatal("fork must leave with the deferred grant")
	}
}

func TestRequestYieldedWhenInsideButLowerColor(t *testing.T) {
	// Construct a diner that is hungry inside the doorway, holds the
	// fork, but has LOWER color than the requester: it must yield.
	lo, err := NewDiner(Config{ID: 0, Color: 1, NeighborColors: map[int]int{1: 3}})
	if err != nil {
		t.Fatal(err)
	}
	lo.BecomeHungry()
	lo.Deliver(Message{Kind: Ack, From: 1, To: 0}) // inside; requested fork
	lo.Deliver(Message{Kind: Fork, From: 1, To: 0})
	if lo.State() != Eating {
		t.Fatal("setup: lo should be eating after getting the fork")
	}
	lo.ExitEating()
	lo.BecomeHungry()
	lo.Deliver(Message{Kind: Ack, From: 1, To: 0}) // inside again, holds fork already
	if lo.State() != Eating {
		// lo holds the fork, so it goes straight to eating — that makes
		// the "hungry inside lower color" state unreachable here; build
		// it directly instead below.
		t.Log("lo ate immediately; acceptable")
	}
}

func TestLowerColorYieldsForkWhileHungryInside(t *testing.T) {
	// Two-neighbor construction: lo is hungry and inside, holding the
	// fork shared with hi (received earlier) but missing the fork
	// shared with third. hi requests: lo must yield (color priority).
	lo, err := NewDiner(Config{ID: 0, Color: 1, NeighborColors: map[int]int{1: 3, 2: 2}})
	if err != nil {
		t.Fatal(err)
	}
	lo.BecomeHungry()
	lo.Deliver(Message{Kind: Ack, From: 1, To: 0})
	out := lo.Deliver(Message{Kind: Ack, From: 2, To: 0}) // enters doorway, requests both forks
	if !lo.Inside() || lo.State() != Hungry {
		t.Fatal("setup: lo should be hungry inside")
	}
	if len(out) != 2 {
		t.Fatalf("expected 2 fork requests, got %v", out)
	}
	lo.Deliver(Message{Kind: Fork, From: 1, To: 0}) // got hi's fork; still missing 2's
	if lo.State() != Hungry {
		t.Fatal("setup: lo must still be hungry (fork from 2 missing)")
	}
	// hi (color 3 > 1) re-requests the fork: lo is hungry+inside but
	// lower color, so it must yield immediately.
	out = lo.Deliver(Message{Kind: Request, From: 1, To: 0, Color: 3})
	if len(out) == 0 || out[0].Kind != Fork || out[0].To != 1 {
		t.Fatalf("out = %v, want immediate fork grant to higher color first", out)
	}
	// Being still hungry inside, lo immediately re-requests the fork
	// with the token the request carried (Action 6 refires).
	if len(out) != 2 || out[1].Kind != Request {
		t.Fatalf("out = %v, want follow-up re-request after yielding", out)
	}
	if lo.Err() != nil {
		t.Fatalf("unexpected protocol error: %v", lo.Err())
	}
}

func TestSuspicionSubstitutesForAckAndFork(t *testing.T) {
	lo, _, aSusp, _ := pair(t, 1, 3) // lo holds token only
	*aSusp = true                    // lo suspects its neighbor
	out := lo.BecomeHungry()
	if lo.State() != Eating {
		t.Fatalf("state = %v, want eating straight through (suspicion)", lo.State())
	}
	// The doorway ping and the fork request may still be sent before
	// the guards fire; both are harmless (Section 7 quiescence allows
	// one residual ping and one residual token).
	for _, m := range out {
		if m.Kind != Ping && m.Kind != Request {
			t.Fatalf("unexpected message %v", m)
		}
	}
}

func TestExitEatingNoopWhenNotEating(t *testing.T) {
	a, _, _, _ := pair(t, 3, 1)
	if out := a.ExitEating(); out != nil {
		t.Fatalf("ExitEating while thinking emitted %v", out)
	}
	a.BecomeHungry()
	if out := a.ExitEating(); out != nil {
		t.Fatalf("ExitEating while hungry emitted %v", out)
	}
}

func TestExitSendsDeferredAcks(t *testing.T) {
	hi, _, _, _ := pair(t, 3, 1)
	hi.BecomeHungry()
	hi.Deliver(Message{Kind: Ack, From: 1, To: 0}) // eating
	hi.Deliver(Message{Kind: Ping, From: 1, To: 0})
	if !hi.Snapshot().Defer[1] {
		t.Fatal("ping while eating (inside) must be deferred")
	}
	out := hi.ExitEating()
	var acks int
	for _, m := range out {
		if m.Kind == Ack {
			acks++
		}
	}
	if acks != 1 {
		t.Fatalf("exit sent %d acks, want 1", acks)
	}
	if hi.Snapshot().Defer[1] {
		t.Fatal("deferred flag must clear on exit")
	}
}

func TestInvariantDuplicateFork(t *testing.T) {
	hi, _, _, _ := pair(t, 3, 1) // holds fork already
	hi.Deliver(Message{Kind: Fork, From: 1, To: 0})
	if !errors.Is(hi.Err(), ErrDuplicateFork) {
		t.Fatalf("err = %v, want ErrDuplicateFork", hi.Err())
	}
}

func TestInvariantForkWithToken(t *testing.T) {
	lo, _, _, _ := pair(t, 1, 3) // holds token, no fork
	lo.Deliver(Message{Kind: Fork, From: 1, To: 0})
	if !errors.Is(lo.Err(), ErrForkWithToken) {
		t.Fatalf("err = %v, want ErrForkWithToken", lo.Err())
	}
}

func TestInvariantRequestWithoutFork(t *testing.T) {
	lo, _, _, _ := pair(t, 1, 3) // lo does not hold the fork
	lo.Deliver(Message{Kind: Request, From: 1, To: 0, Color: 3})
	if !errors.Is(lo.Err(), ErrRequestNoFork) && !errors.Is(lo.Err(), ErrDuplicateToken) {
		t.Fatalf("err = %v, want token/fork invariant violation", lo.Err())
	}
}

func TestInvariantUnsolicitedAck(t *testing.T) {
	a, _, _, _ := pair(t, 3, 1)
	a.Deliver(Message{Kind: Ack, From: 1, To: 0})
	if !errors.Is(a.Err(), ErrUnsolicitedAck) {
		t.Fatalf("err = %v, want ErrUnsolicitedAck", a.Err())
	}
}

func TestInvariantNonNeighbor(t *testing.T) {
	a, _, _, _ := pair(t, 3, 1)
	a.Deliver(Message{Kind: Ping, From: 99, To: 0})
	if !errors.Is(a.Err(), ErrNotNeighbor) {
		t.Fatalf("err = %v, want ErrNotNeighbor", a.Err())
	}
}

func TestErroredDinerIsInert(t *testing.T) {
	a, _, _, _ := pair(t, 3, 1)
	a.Deliver(Message{Kind: Fork, From: 1, To: 0}) // duplicate fork → error
	if a.Err() == nil {
		t.Fatal("setup: error expected")
	}
	if out := a.BecomeHungry(); out != nil {
		t.Fatal("errored diner must be inert")
	}
	if out := a.Deliver(Message{Kind: Ping, From: 1, To: 0}); out != nil {
		t.Fatal("errored diner must be inert")
	}
}

func TestFullCycleTwoDiners(t *testing.T) {
	a, b, _, _ := pair(t, 3, 1)
	// Both become hungry; deliver everything; exactly one eats.
	var queue []Message
	queue = append(queue, a.BecomeHungry()...)
	queue = append(queue, b.BecomeHungry()...)
	pump(t, a, b, queue)
	eatingA, eatingB := a.State() == Eating, b.State() == Eating
	if eatingA == eatingB {
		t.Fatalf("exactly one should eat: a=%v b=%v", a.State(), b.State())
	}
	// The eater exits; the other must then eat.
	var out []Message
	if eatingA {
		out = a.ExitEating()
	} else {
		out = b.ExitEating()
	}
	pump(t, a, b, out)
	if eatingA && b.State() != Eating {
		t.Fatalf("b should eat after a exits, state=%v", b.State())
	}
	if eatingB && a.State() != Eating {
		t.Fatalf("a should eat after b exits, state=%v", a.State())
	}
	if a.State() == Eating && b.State() == Eating {
		t.Fatal("both eating: exclusion violated")
	}
}

func TestAlternationIsFair(t *testing.T) {
	// Under continuous hunger, the doorway must alternate the two
	// diners: neither may eat more than twice in a row while the other
	// is hungry (Theorem 3 with converged detector = never suspects).
	a, b, _, _ := pair(t, 3, 1)
	lastEater, streak, maxStreak := -1, 0, 0
	queue := append(a.BecomeHungry(), b.BecomeHungry()...)
	for round := 0; round < 200; round++ {
		pump(t, a, b, queue)
		queue = nil
		var eater *Diner
		switch {
		case a.State() == Eating:
			eater = a
		case b.State() == Eating:
			eater = b
		default:
			t.Fatalf("round %d: deadlock, nobody eats (a=%v b=%v)", round, a.State(), b.State())
		}
		if eater.ID() == lastEater {
			streak++
		} else {
			lastEater = eater.ID()
			streak = 1
		}
		if streak > maxStreak {
			maxStreak = streak
		}
		queue = append(queue, eater.ExitEating()...)
		queue = append(queue, eater.BecomeHungry()...)
	}
	if maxStreak > 2 {
		t.Fatalf("max consecutive eats by one diner = %d, want ≤ 2", maxStreak)
	}
}

func TestSpaceBits(t *testing.T) {
	d, err := NewDiner(Config{
		ID: 0, Color: 5,
		NeighborColors: map[int]int{1: 0, 2: 1, 3: 2, 4: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 neighbors: 6*4 = 24 bits of per-neighbor state + 3 bits of
	// state/inside + 3 bits for color 5.
	want := 24 + 3 + 3
	if got := d.SpaceBits(); got != want {
		t.Fatalf("SpaceBits = %d, want %d", got, want)
	}
	iso, _ := NewDiner(Config{ID: 0, Color: 0})
	if iso.SpaceBits() != 1+3 {
		t.Fatalf("isolated SpaceBits = %d, want 4", iso.SpaceBits())
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	a, _, _, _ := pair(t, 3, 1)
	snap := a.Snapshot()
	snap.Fork[1] = false
	if !a.HoldsFork(1) {
		t.Fatal("snapshot mutation leaked into diner")
	}
}

func TestSessionsCounter(t *testing.T) {
	d, _ := NewDiner(Config{ID: 0, Color: 0})
	for i := 0; i < 3; i++ {
		d.BecomeHungry()
		d.ExitEating()
	}
	if d.Sessions() != 3 || d.EatCount() != 3 {
		t.Fatalf("sessions=%d eats=%d, want 3/3", d.Sessions(), d.EatCount())
	}
}

func TestHooksFire(t *testing.T) {
	var hungry, doorway, eat, exit int
	d, err := NewDiner(Config{
		ID: 0, Color: 1, NeighborColors: map[int]int{1: 0},
		Hooks: Hooks{
			OnHungry:       func() { hungry++ },
			OnEnterDoorway: func() { doorway++ },
			OnEat:          func() { eat++ },
			OnExit:         func() { exit++ },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.BecomeHungry()
	d.Deliver(Message{Kind: Ack, From: 1, To: 0}) // enters doorway and eats (holds fork)
	d.ExitEating()
	if hungry != 1 || doorway != 1 || eat != 1 || exit != 1 {
		t.Fatalf("hooks fired %d/%d/%d/%d, want 1 each", hungry, doorway, eat, exit)
	}
}

func TestMessageAndStateStrings(t *testing.T) {
	if Thinking.String() != "thinking" || Hungry.String() != "hungry" || Eating.String() != "eating" {
		t.Fatal("State strings wrong")
	}
	if State(99).String() == "" || MsgKind(99).String() == "" {
		t.Fatal("unknown values must still stringify")
	}
	m := Message{Kind: Request, From: 1, To: 2, Color: 7}
	if m.String() != "request(1→2, color=7)" {
		t.Fatalf("Message.String() = %q", m.String())
	}
	p := Message{Kind: Ping, From: 0, To: 3}
	if p.String() != "ping(0→3)" {
		t.Fatalf("Message.String() = %q", p.String())
	}
}
