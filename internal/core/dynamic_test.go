package core

import (
	"errors"
	"testing"
)

// deliverAll routes a batch of messages to their recipients, appending
// any responses to the work list until quiescence. Deterministic: FIFO
// over the batch order.
func deliverAll(t *testing.T, diners map[int]*Diner, msgs []Message) {
	t.Helper()
	for len(msgs) > 0 {
		m := msgs[0]
		msgs = msgs[1:]
		d, ok := diners[m.To]
		if !ok {
			t.Fatalf("message to unknown diner %d", m.To)
		}
		msgs = append(msgs, d.Deliver(m)...)
		if err := d.Err(); err != nil {
			t.Fatalf("diner %d: %v", m.To, err)
		}
	}
}

func mustDiner(t *testing.T, id, color int, nbr map[int]int) *Diner {
	t.Helper()
	d, err := NewDiner(Config{ID: id, Color: color, NeighborColors: nbr})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAddNeighborBootPlacement(t *testing.T) {
	a := mustDiner(t, 0, 0, nil)
	b := mustDiner(t, 1, 1, nil)
	if err := a.AddNeighbor(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddNeighbor(0, 0); err != nil {
		t.Fatal(err)
	}
	if a.HoldsFork(1) || !a.HoldsToken(1) {
		t.Fatal("lower color should boot with token, not fork")
	}
	if !b.HoldsFork(0) || b.HoldsToken(0) {
		t.Fatal("higher color should boot with fork, not token")
	}
	// The spliced edge must actually carry a dining session.
	diners := map[int]*Diner{0: a, 1: b}
	deliverAll(t, diners, a.BecomeHungry())
	if a.State() != Eating {
		t.Fatalf("a = %v after hungry over spliced edge, want Eating", a.State())
	}
	deliverAll(t, diners, a.ExitEating())

	// Error paths.
	if err := a.AddNeighbor(0, 5); err == nil {
		t.Fatal("self-neighbor should error")
	}
	if err := a.AddNeighbor(2, 0); err == nil {
		t.Fatal("color collision should error")
	}
	if err := a.AddNeighbor(1, 1); err == nil {
		t.Fatal("duplicate neighbor should error")
	}
}

func TestRemoveNeighborSevers(t *testing.T) {
	a := mustDiner(t, 0, 0, map[int]int{1: 1})
	if err := a.RemoveNeighbor(1); err != nil {
		t.Fatal(err)
	}
	if got := a.Neighbors(); len(got) != 0 {
		t.Fatalf("neighbors = %v after removal", got)
	}
	if err := a.RemoveNeighbor(1); err != nil {
		t.Fatalf("double removal should be a no-op: %v", err)
	}
	// A message from the severed neighbor is now a protocol violation.
	a.Deliver(Message{Kind: Ping, From: 1, To: 0})
	if !errors.Is(a.Err(), ErrNotNeighbor) {
		t.Fatalf("err = %v, want ErrNotNeighbor", a.Err())
	}
	// With no neighbors the diner can always eat.
	b := mustDiner(t, 0, 0, map[int]int{1: 1})
	if err := b.RemoveNeighbor(1); err != nil {
		t.Fatal(err)
	}
	b.BecomeHungry()
	if b.State() != Eating {
		t.Fatalf("isolated diner = %v after hungry, want Eating", b.State())
	}
}

func TestMutationRequiresThinking(t *testing.T) {
	a := mustDiner(t, 0, 2, map[int]int{1: 1})
	a.BecomeHungry()
	if a.State() == Thinking {
		t.Fatal("setup: diner should not be thinking")
	}
	if err := a.AddNeighbor(2, 0); !errors.Is(err, ErrMutateBusy) {
		t.Fatalf("AddNeighbor err = %v, want ErrMutateBusy", err)
	}
	if err := a.RemoveNeighbor(1); !errors.Is(err, ErrMutateBusy) {
		t.Fatalf("RemoveNeighbor err = %v, want ErrMutateBusy", err)
	}
	if err := a.SetColor(5); !errors.Is(err, ErrMutateBusy) {
		t.Fatalf("SetColor err = %v, want ErrMutateBusy", err)
	}
	if err := a.SetNeighborColor(1, 5); !errors.Is(err, ErrMutateBusy) {
		t.Fatalf("SetNeighborColor err = %v, want ErrMutateBusy", err)
	}
}

func TestSetColorRederivesPlacement(t *testing.T) {
	a := mustDiner(t, 0, 0, map[int]int{1: 1})
	b := mustDiner(t, 1, 1, map[int]int{0: 0})
	if a.HoldsFork(1) || !b.HoldsFork(0) {
		t.Fatal("boot placement wrong")
	}
	if err := a.SetColor(2); err != nil {
		t.Fatal(err)
	}
	if err := b.SetNeighborColor(0, 2); err != nil {
		t.Fatal(err)
	}
	if !a.HoldsFork(1) || a.HoldsToken(1) {
		t.Fatal("a should hold the fork after recoloring above b")
	}
	if b.HoldsFork(0) || !b.HoldsToken(0) {
		t.Fatal("b should hold the token after a recolored above it")
	}
	// The recolored edge still works.
	diners := map[int]*Diner{0: a, 1: b}
	deliverAll(t, diners, b.BecomeHungry())
	if b.State() != Eating {
		t.Fatalf("b = %v, want Eating", b.State())
	}
	deliverAll(t, diners, b.ExitEating())
	// Collision validation.
	if err := a.SetColor(1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("SetColor collision err = %v, want ErrBadConfig", err)
	}
	if err := b.SetNeighborColor(0, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("SetNeighborColor collision err = %v, want ErrBadConfig", err)
	}
}

// TestAbortHungryFlushesDeferredFork scripts the interleaving where a
// hungry diner inside the doorway holds a deferred fork request, then
// is recalled: the abort must release the fork so the lower-priority
// requester is not starved.
func TestAbortHungryFlushesDeferredFork(t *testing.T) {
	// Path b(0) — a(1) — c(2). a boots holding the fork vs b and the
	// token vs c.
	a := mustDiner(t, 0, 1, map[int]int{1: 0, 2: 2})
	b := mustDiner(t, 1, 0, map[int]int{0: 1})
	c := mustDiner(t, 2, 2, map[int]int{0: 1})
	diners := map[int]*Diner{0: a, 1: b, 2: c}

	// Both a and b go hungry; a wins the doorway race and parks inside
	// waiting for c's fork; b's request for a's fork is deferred because
	// b's color is lower.
	aOut := a.BecomeHungry() // pings b, c
	bOut := b.BecomeHungry() // pings a
	var aAck []Message
	for _, m := range aOut {
		aAck = append(aAck, diners[m.To].Deliver(m)...) // acks back to a
	}
	var bAck []Message
	for _, m := range bOut {
		bAck = append(bAck, a.Deliver(m)...) // a hungry pre-doorway: acks b
	}
	var req []Message
	for _, m := range aAck {
		req = append(req, a.Deliver(m)...) // a inside; requests fork from c
	}
	for _, m := range bAck {
		req = append(req, b.Deliver(m)...) // b inside; requests fork from a
	}
	// Deliver only b's request to a (c's grant stays in flight): a is
	// inside with higher priority, so the request is deferred.
	for _, m := range req {
		if m.Kind == Request && m.To == 0 {
			if out := a.Deliver(m); len(out) != 0 {
				t.Fatalf("higher-priority insider granted fork: %v", out)
			}
		}
	}
	if !a.HoldsFork(1) || !a.HoldsToken(1) {
		t.Fatal("setup: a should hold fork+token vs b (deferred request)")
	}

	// Recall a: the deferred fork must flush to b, and b must eat.
	out := a.AbortHungry()
	if a.State() != Thinking || a.Inside() {
		t.Fatalf("a = %v inside=%v after abort, want thinking outside", a.State(), a.Inside())
	}
	forkSent := false
	for _, m := range out {
		if m.Kind == Fork && m.To == 1 {
			forkSent = true
		}
	}
	if !forkSent {
		t.Fatalf("abort emitted %v, want fork to b", out)
	}
	deliverAll(t, diners, out)
	if b.State() != Eating {
		t.Fatalf("b = %v after a's abort, want Eating", b.State())
	}
}

// TestAbortHungryClearsGrants: after an abort the per-session ack
// budget resets and deferred acks flush, so a neighbor's next ping is
// answered immediately instead of starving against a stale grant
// counter.
func TestAbortHungryClearsGrants(t *testing.T) {
	// a(0) with neighbors b(1) and c(2); c never answers, keeping a
	// pre-doorway (hungry) for the whole test.
	a := mustDiner(t, 0, 0, map[int]int{1: 1, 2: 2})
	b := mustDiner(t, 1, 1, map[int]int{0: 0})

	a.BecomeHungry() // pings b and c; we drop them
	bOut := b.BecomeHungry()
	var acks []Message
	for _, m := range bOut {
		acks = append(acks, a.Deliver(m)...) // first ping: acked, grant spent
	}
	if a.AcksGranted(1) != 1 {
		t.Fatalf("granted = %d, want 1", a.AcksGranted(1))
	}
	// b aborts and goes hungry again: its second ping hits a's spent
	// budget and is deferred.
	b.AbortHungry()
	for _, m := range acks {
		b.Deliver(m)
	}
	rePing := b.BecomeHungry()
	if len(rePing) == 0 {
		t.Fatal("setup: b should re-ping a")
	}
	for _, m := range rePing {
		if out := a.Deliver(m); len(out) != 0 {
			t.Fatalf("second ping in one session should defer, got %v", out)
		}
	}

	// Recalling a flushes the deferred ack and resets the budget.
	out := a.AbortHungry()
	ackSent := false
	for _, m := range out {
		if m.Kind == Ack && m.To == 1 {
			ackSent = true
		}
	}
	if !ackSent {
		t.Fatalf("abort emitted %v, want deferred ack to b", out)
	}
	if a.AcksGranted(1) != 0 {
		t.Fatalf("granted = %d after abort, want 0", a.AcksGranted(1))
	}
}

// TestAbortHungryNoOp: abort outside Hungry does nothing.
func TestAbortHungryNoOp(t *testing.T) {
	a := mustDiner(t, 0, 1, map[int]int{1: 0})
	if out := a.AbortHungry(); out != nil {
		t.Fatalf("thinking abort emitted %v", out)
	}
	b := mustDiner(t, 1, 0, map[int]int{0: 1})
	diners := map[int]*Diner{0: a, 1: b}
	deliverAll(t, diners, a.BecomeHungry())
	if a.State() != Eating {
		t.Fatalf("setup: a = %v, want Eating", a.State())
	}
	if out := a.AbortHungry(); out != nil {
		t.Fatalf("eating abort emitted %v", out)
	}
	if a.State() != Eating {
		t.Fatal("abort must not interrupt eating")
	}
}
