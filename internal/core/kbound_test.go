package core

import "testing"

// Tests for the generalized AcksPerSession option: at most m acks per
// neighbor per hungry session, giving eventual (m+1)-bounded waiting.
// The paper's Algorithm 1 is the m = 1 instance.

func newWithAcks(t *testing.T, m int) *Diner {
	t.Helper()
	d, err := NewDiner(Config{
		ID: 0, Color: 3,
		NeighborColors: map[int]int{1: 1},
		Options:        Options{AcksPerSession: m},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAckLimitDefaults(t *testing.T) {
	if got := (Options{}).ackLimit(); got != 1 {
		t.Fatalf("default ackLimit = %d, want 1", got)
	}
	if got := (Options{AcksPerSession: 3}).ackLimit(); got != 3 {
		t.Fatalf("ackLimit = %d, want 3", got)
	}
	if got := (Options{AcksPerSession: -2}).ackLimit(); got != 1 {
		t.Fatalf("negative AcksPerSession ackLimit = %d, want 1", got)
	}
	if got := (Options{DisableRepliedFlag: true, AcksPerSession: 3}).ackLimit(); got != -1 {
		t.Fatalf("DisableRepliedFlag ackLimit = %d, want -1 (unlimited)", got)
	}
}

func TestAcksPerSessionGrantsExactlyM(t *testing.T) {
	for _, m := range []int{1, 2, 4} {
		d := newWithAcks(t, m)
		d.BecomeHungry()
		for i := 0; i < m; i++ {
			out := d.Deliver(Message{Kind: Ping, From: 1, To: 0})
			if len(out) != 1 || out[0].Kind != Ack {
				t.Fatalf("m=%d ping %d: out = %v, want ack", m, i, out)
			}
		}
		if got := d.AcksGranted(1); got != m {
			t.Fatalf("m=%d: granted = %d", m, got)
		}
		out := d.Deliver(Message{Kind: Ping, From: 1, To: 0})
		if len(out) != 0 {
			t.Fatalf("m=%d: ping %d should be deferred, got %v", m, m, out)
		}
		if !d.Snapshot().Defer[1] {
			t.Fatalf("m=%d: deferred flag not set", m)
		}
	}
}

func TestAcksGrantedResetsOnDoorwayEntry(t *testing.T) {
	d := newWithAcks(t, 2)
	d.BecomeHungry()
	d.Deliver(Message{Kind: Ping, From: 1, To: 0})
	if d.AcksGranted(1) != 1 {
		t.Fatal("setup: one grant expected")
	}
	d.Deliver(Message{Kind: Ack, From: 1, To: 0}) // enters doorway (and eats: holds fork)
	if d.AcksGranted(1) != 0 {
		t.Fatalf("granted = %d after doorway entry, want 0", d.AcksGranted(1))
	}
}

func TestAcksWhileThinkingAreFree(t *testing.T) {
	// Acks granted while thinking never consume the session budget, in
	// any variant — matching the paper, where replied is set only when
	// hungry.
	d := newWithAcks(t, 1)
	for i := 0; i < 3; i++ {
		out := d.Deliver(Message{Kind: Ping, From: 1, To: 0})
		if len(out) != 1 || out[0].Kind != Ack {
			t.Fatalf("thinking ping %d: out = %v, want ack", i, out)
		}
	}
	if d.AcksGranted(1) != 0 {
		t.Fatalf("thinking grants consumed budget: %d", d.AcksGranted(1))
	}
}

func TestSpaceBitsWidensWithAckBudget(t *testing.T) {
	one := newWithAcks(t, 1)
	four := newWithAcks(t, 4)
	if four.SpaceBits() <= one.SpaceBits() {
		t.Fatalf("m=4 should need more bits: %d vs %d", four.SpaceBits(), one.SpaceBits())
	}
	// m=1 must match the paper's 6δ accounting exactly.
	if got, want := one.SpaceBits(), 2+6*1+3; got != want {
		t.Fatalf("m=1 SpaceBits = %d, want %d", got, want)
	}
}

// TestGeneralizedBoundTwoDiners hand-drives the m=2 doorway between two
// saturated diners and verifies the eat streak never exceeds m+1 = 3.
func TestGeneralizedBoundTwoDiners(t *testing.T) {
	mk := func(id, color, other, otherColor, m int) *Diner {
		d, err := NewDiner(Config{
			ID: id, Color: color,
			NeighborColors: map[int]int{other: otherColor},
			Options:        Options{AcksPerSession: m},
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	for _, m := range []int{1, 2, 3} {
		a := mk(0, 3, 1, 1, m)
		b := mk(1, 1, 0, 3, m)
		diners := map[int]*Diner{0: a, 1: b}
		pumpAll := func(queue []Message) {
			for steps := 0; len(queue) > 0; steps++ {
				if steps > 100000 {
					t.Fatal("pump diverged")
				}
				msg := queue[0]
				queue = queue[1:]
				queue = append(queue, diners[msg.To].Deliver(msg)...)
			}
			if a.Err() != nil || b.Err() != nil {
				t.Fatal(a.Err(), b.Err())
			}
		}
		lastEater, streak, maxStreak := -1, 0, 0
		queue := append(a.BecomeHungry(), b.BecomeHungry()...)
		for round := 0; round < 300; round++ {
			pumpAll(queue)
			queue = nil
			var eater *Diner
			switch {
			case a.State() == Eating:
				eater = a
			case b.State() == Eating:
				eater = b
			default:
				t.Fatalf("m=%d round %d: deadlock", m, round)
			}
			if eater.ID() == lastEater {
				streak++
			} else {
				lastEater, streak = eater.ID(), 1
			}
			if streak > maxStreak {
				maxStreak = streak
			}
			queue = append(queue, eater.ExitEating()...)
			queue = append(queue, eater.BecomeHungry()...)
		}
		if maxStreak > m+1 {
			t.Fatalf("m=%d: max streak %d exceeds m+1", m, maxStreak)
		}
	}
}
