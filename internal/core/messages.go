// Package core implements Algorithm 1 of Song & Pike, "Eventually
// k-bounded Wait-Free Distributed Daemons" (DSN 2007): a dining
// philosophers algorithm for eventual weak exclusion (◇WX) that is
// wait-free under arbitrarily many crash faults and satisfies eventual
// 2-bounded waiting (◇2-BW), given the locally scope-restricted
// eventually perfect failure detector ◇P₁.
//
// The algorithm combines two mechanisms:
//
//   - A modified asynchronous doorway (Phase 1) for fairness: a hungry
//     process collects one acknowledgment per neighbor before entering
//     the doorway, and while hungry it grants at most one ack per
//     neighbor per hungry session (the "replied" flag). Suspicion from
//     ◇P₁ substitutes for acks from crashed neighbors.
//   - Fork collection with static color priorities (Phase 2) for
//     safety: each edge has a unique fork; conflicts go to the
//     higher-colored neighbor; forks are re-requested with a unique
//     per-edge token. Suspicion substitutes for forks held by crashed
//     neighbors.
//
// The Diner type is a pure state machine: inputs are message
// deliveries, hunger requests, eating exits, and failure-detector
// output changes; outputs are messages to send. It has no goroutines,
// no clocks, and no I/O, so the same code runs under the deterministic
// simulator (internal/sim) and the goroutine runtime (internal/live).
package core

import "fmt"

// State is a diner's phase in the dining abstraction.
type State int

// Diner states. Thinking processes execute independently; hungry
// processes are requesting the shared resources; eating processes are
// in their critical section.
const (
	Thinking State = iota + 1
	Hungry
	Eating
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Thinking:
		return "thinking"
	case Hungry:
		return "hungry"
	case Eating:
		return "eating"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MsgKind identifies one of the four dining message types of
// Algorithm 1. The paper's Section 7 bounds simultaneous in-transit
// messages per edge by four: at most one ping or ack initiated by each
// endpoint, plus the unique fork and the unique token.
type MsgKind int

// Message kinds.
const (
	// Ping requests a doorway acknowledgment (Action 2).
	Ping MsgKind = iota + 1
	// Ack grants doorway entry permission (Actions 3 and 10).
	Ack
	// Request asks for the shared fork and carries the requester's
	// color; sending it transfers the edge token (Action 6).
	Request
	// Fork transfers the shared fork (Actions 7 and 10).
	Fork
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case Ping:
		return "ping"
	case Ack:
		return "ack"
	case Request:
		return "request"
	case Fork:
		return "fork"
	default:
		return fmt.Sprintf("msg(%d)", int(k))
	}
}

// Message is a dining-layer message. Color is meaningful only for
// Request messages, where it carries the requester's static priority
// (the paper encodes the color in fork-request messages; both process
// IDs and colors need O(log n) bits, giving O(log n)-bit messages).
type Message struct {
	Kind     MsgKind
	From, To int
	Color    int
}

// String implements fmt.Stringer.
func (m Message) String() string {
	if m.Kind == Request {
		return fmt.Sprintf("%v(%d→%d, color=%d)", m.Kind, m.From, m.To, m.Color)
	}
	return fmt.Sprintf("%v(%d→%d)", m.Kind, m.From, m.To)
}

// Process is the interface shared by Algorithm 1 and the baseline
// dining algorithms so that one experiment runner can drive them all.
// Every method returns the messages to transmit; implementations are
// single-threaded state machines and the caller must serialize calls.
type Process interface {
	// BecomeHungry transitions thinking → hungry (Action 1). It is a
	// no-op when not thinking.
	BecomeHungry() []Message
	// Deliver processes one received message.
	Deliver(m Message) []Message
	// ReevaluateSuspicion re-runs guards that depend on the failure
	// detector; the runner calls it when the local suspect set changes.
	ReevaluateSuspicion() []Message
	// ExitEating transitions eating → thinking (Action 10). It is a
	// no-op when not eating.
	ExitEating() []Message
	// State returns the current dining phase.
	State() State
	// Err returns the first protocol-invariant violation detected
	// locally, or nil. A correct implementation over reliable FIFO
	// channels never reports one.
	Err() error
}
