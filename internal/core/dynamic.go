package core

import (
	"errors"
	"fmt"
)

// Dynamic conflict-graph support: neighbor-set and color mutation on a
// drained diner, plus the hungry-session abort the drain protocol uses
// to recall a competing process.
//
// The paper proves Algorithm 1 over a fixed conflict graph; the
// dining-as-a-service layer (internal/dsvc) changes edges and colors at
// runtime. The safety argument stays the paper's: a mutation is only
// legal on a diner that is Thinking and quiescent on the affected edges
// (no in-flight messages — the drain protocol's job), at which point
// re-deriving fork/token placement from the new colors is exactly the
// NewDiner boot argument. Every entry point below enforces the Thinking
// half of that precondition and leaves queue quiescence to the caller.

// ErrMutateBusy reports a neighbor-set or color mutation attempted on a
// diner that is not Thinking; the drain protocol must park it first.
var ErrMutateBusy = errors.New("core: graph mutation requires a thinking (drained) diner")

// Neighbors returns the diner's current neighbor IDs, sorted. The slice
// is a copy.
func (d *Diner) Neighbors() []int {
	out := make([]int, len(d.neighbors))
	copy(out, d.neighbors)
	return out
}

// NeighborColor returns the color the diner believes neighbor j has,
// and whether j is a neighbor.
func (d *Diner) NeighborColor(j int) (int, bool) {
	c, ok := d.colorOf[j]
	return c, ok
}

// AddNeighbor splices a new conflict edge to process j with color c,
// seeding fork/token placement exactly as NewDiner does at boot: fork
// at the higher color, token at the lower. The counterpart on j must
// perform the complementary AddNeighbor in the same committed change.
func (d *Diner) AddNeighbor(j, c int) error {
	if d.err != nil {
		return d.err
	}
	if d.state != Thinking {
		return fmt.Errorf("%w: diner %d is %v", ErrMutateBusy, d.id, d.state)
	}
	if j == d.id {
		return fmt.Errorf("%w: process %d lists itself as neighbor", ErrBadConfig, d.id)
	}
	if c == d.color {
		return fmt.Errorf("%w: neighbors %d and %d share color %d", ErrBadConfig, d.id, j, c)
	}
	if _, ok := d.colorOf[j]; ok {
		return fmt.Errorf("%w: %d is already a neighbor of %d", ErrBadConfig, j, d.id)
	}
	d.neighbors = insertSortedID(d.neighbors, j)
	d.colorOf[j] = c
	d.fork[j] = d.color > c
	d.token[j] = d.color < c
	return nil
}

// RemoveNeighbor severs the conflict edge to j, discarding the edge's
// protocol variables. The fork/token pair the edge carried simply
// ceases to exist; if the edge ever returns, AddNeighbor re-seeds it by
// color. Removing a non-neighbor is a no-op.
func (d *Diner) RemoveNeighbor(j int) error {
	if d.err != nil {
		return d.err
	}
	if d.state != Thinking {
		return fmt.Errorf("%w: diner %d is %v", ErrMutateBusy, d.id, d.state)
	}
	if _, ok := d.colorOf[j]; !ok {
		return nil
	}
	for i, n := range d.neighbors {
		if n == j {
			d.neighbors = append(d.neighbors[:i], d.neighbors[i+1:]...)
			break
		}
	}
	delete(d.colorOf, j)
	delete(d.pinged, j)
	delete(d.ack, j)
	delete(d.deferred, j)
	delete(d.granted, j)
	delete(d.fork, j)
	delete(d.token, j)
	return nil
}

// SetColor changes the diner's own static priority and re-derives
// fork/token placement on EVERY edge from the new colors, as NewDiner
// would. All neighbors are affected: each must be drained and receive
// the matching SetNeighborColor in the same committed change.
func (d *Diner) SetColor(c int) error {
	if d.err != nil {
		return d.err
	}
	if d.state != Thinking {
		return fmt.Errorf("%w: diner %d is %v", ErrMutateBusy, d.id, d.state)
	}
	for _, j := range d.neighbors {
		if d.colorOf[j] == c {
			return fmt.Errorf("%w: neighbors %d and %d share color %d", ErrBadConfig, d.id, j, c)
		}
	}
	d.color = c
	for _, j := range d.neighbors {
		d.resetEdge(j)
	}
	return nil
}

// SetNeighborColor records neighbor j's new color and re-derives that
// edge's fork/token placement from boot rules — the counterpart of j's
// own SetColor.
func (d *Diner) SetNeighborColor(j, c int) error {
	if d.err != nil {
		return d.err
	}
	if d.state != Thinking {
		return fmt.Errorf("%w: diner %d is %v", ErrMutateBusy, d.id, d.state)
	}
	if _, ok := d.colorOf[j]; !ok {
		return fmt.Errorf("%w: %d is not a neighbor of %d", ErrBadConfig, j, d.id)
	}
	if c == d.color {
		return fmt.Errorf("%w: neighbors %d and %d share color %d", ErrBadConfig, d.id, j, c)
	}
	d.colorOf[j] = c
	d.resetEdge(j)
	return nil
}

// resetEdge restores edge j's protocol variables to their NewDiner
// values for the current colors (the body of ResetNeighbor, without the
// action refire — mutation entry points require Thinking, where no
// internal action is enabled).
func (d *Diner) resetEdge(j int) {
	d.pinged[j] = false
	d.ack[j] = false
	d.deferred[j] = false
	d.granted[j] = 0
	d.fork[j] = d.color > d.colorOf[j]
	d.token[j] = d.color < d.colorOf[j]
}

// AbortHungry recalls a hungry diner to Thinking without eating — the
// drain protocol's lever for pulling a competitor out of the doorway so
// an affected edge can quiesce. Like ExitEating it settles every
// deferred obligation on the way out: deferred fork requests are
// granted (the diner no longer competes, so holding the fork back would
// starve the requester) and deferred acks are released. Received acks
// and the per-session grant counters are cleared so the next ping from
// any neighbor is answered immediately. Forks and tokens stay where
// they are; holding them while Thinking is legal (Action 7 grants a
// request from Thinking unconditionally). A no-op unless Hungry.
func (d *Diner) AbortHungry() []Message {
	if d.state != Hungry || d.err != nil {
		return nil
	}
	d.inside = false
	d.state = Thinking
	var out []Message
	for _, j := range d.neighbors {
		if d.token[j] && d.fork[j] { // deferred fork request
			out = append(out, Message{Kind: Fork, From: d.id, To: j})
			d.fork[j] = false
		}
	}
	for _, j := range d.neighbors {
		if d.deferred[j] { // deferred ping request
			out = append(out, Message{Kind: Ack, From: d.id, To: j})
			d.deferred[j] = false
		}
		d.ack[j] = false
		d.granted[j] = 0
	}
	return out
}

func insertSortedID(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
