// Package backoff is the one retransmission/reconnection backoff
// policy shared by every layer that re-offers work to an unresponsive
// peer: the deterministic ARQ sublayer (internal/rlink), the live
// runtime's lossy-edge forwarders (internal/live), and the real-network
// transport (internal/remote). Before this package each of those
// carried its own copy of "double the delay, clamp at a maximum, add a
// little jitter"; centralizing it keeps the tuning story in one place
// and lets the three runtimes be compared like-for-like.
//
// A Policy is expressed over an abstract int64 duration unit so the
// same arithmetic serves sim.Time ticks (virtual time) and
// time.Duration nanoseconds (wall time). The policy itself is pure:
// jitter randomness is drawn from a caller-supplied source, so the
// deterministic packages keep their seed discipline (detpure,
// seedhygiene) while wall-clock callers can pass any rand they like.
package backoff

// Policy is an exponential backoff schedule: delays start at Initial,
// double on each consecutive failure, clamp at Max, and optionally
// carry a uniform [0, Jitter] additive term to decorrelate bursts
// across independent edges. All fields share one abstract time unit
// chosen by the caller (simulator ticks or nanoseconds).
type Policy struct {
	// Initial is the first delay. Normalized replaces a non-positive
	// value with a caller default.
	Initial int64
	// Max clamps the doubling. Normalized raises it to at least
	// Initial.
	Max int64
	// Jitter is the upper bound of the uniform additive term applied by
	// Jittered. Zero in Normalized selects the caller default; negative
	// disables jitter.
	Jitter int64
}

// Normalized returns p with zero-value fields replaced by the given
// defaults and the invariants restored: Initial > 0, Max >= Initial,
// Jitter >= 0 (a negative Jitter means "explicitly none" and becomes
// zero).
func (p Policy) Normalized(initial, max, jitter int64) Policy {
	if p.Initial <= 0 {
		p.Initial = initial
	}
	if p.Max <= 0 {
		p.Max = max
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	if p.Jitter == 0 {
		p.Jitter = jitter
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Next returns the delay following cur: doubled and clamped at Max. A
// cur below Initial (including zero) restarts the schedule at Initial.
func (p Policy) Next(cur int64) int64 {
	if cur < p.Initial {
		return p.Initial
	}
	if cur >= p.Max/2 {
		// Doubling would reach or overflow the clamp.
		return p.Max
	}
	return cur * 2
}

// Jittered returns d plus a uniform draw in [0, Jitter] obtained from
// intn, which must behave like rand.Int63n (return a value in [0, n)).
// With a nil intn or a zero Jitter the delay is returned unchanged, so
// callers without a randomness source simply get the deterministic
// schedule.
func (p Policy) Jittered(d int64, intn func(n int64) int64) int64 {
	if p.Jitter <= 0 || intn == nil {
		return d
	}
	return d + intn(p.Jitter+1)
}
