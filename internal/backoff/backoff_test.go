package backoff

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalizedDefaults(t *testing.T) {
	p := Policy{}.Normalized(12, 200, 3)
	if p.Initial != 12 || p.Max != 200 || p.Jitter != 3 {
		t.Fatalf("zero policy normalized to %+v, want {12 200 3}", p)
	}
}

func TestNormalizedPreservesExplicit(t *testing.T) {
	p := Policy{Initial: 5, Max: 7, Jitter: 1}.Normalized(12, 200, 3)
	if p.Initial != 5 || p.Max != 7 || p.Jitter != 1 {
		t.Fatalf("explicit policy changed: %+v", p)
	}
}

func TestNormalizedRaisesMaxToInitial(t *testing.T) {
	p := Policy{Initial: 50, Max: 10}.Normalized(12, 200, 3)
	if p.Max != 50 {
		t.Fatalf("Max = %d, want raised to Initial 50", p.Max)
	}
}

func TestNormalizedNegativeJitterMeansNone(t *testing.T) {
	p := Policy{Jitter: -1}.Normalized(12, 200, 3)
	if p.Jitter != 0 {
		t.Fatalf("Jitter = %d, want 0", p.Jitter)
	}
}

func TestNextDoublesAndClamps(t *testing.T) {
	p := Policy{Initial: 10, Max: 75}
	want := []int64{10, 20, 40, 75, 75}
	d := int64(0)
	for i, w := range want {
		d = p.Next(d)
		if d != w {
			t.Fatalf("step %d: delay %d, want %d", i, d, w)
		}
	}
}

func TestNextRestartsBelowInitial(t *testing.T) {
	p := Policy{Initial: 10, Max: 100}
	if got := p.Next(3); got != 10 {
		t.Fatalf("Next(3) = %d, want restart at 10", got)
	}
}

func TestNextNoOverflow(t *testing.T) {
	p := Policy{Initial: 1, Max: math.MaxInt64}
	d := int64(math.MaxInt64/2 + 1)
	if got := p.Next(d); got != p.Max {
		t.Fatalf("Next near overflow = %d, want clamp %d", got, p.Max)
	}
}

func TestJitteredBounds(t *testing.T) {
	p := Policy{Initial: 10, Max: 100, Jitter: 5}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		d := p.Jittered(10, rng.Int63n)
		if d < 10 || d > 15 {
			t.Fatalf("jittered delay %d outside [10, 15]", d)
		}
	}
}

func TestJitteredNilSourceOrZeroJitter(t *testing.T) {
	if got := (Policy{Jitter: 5}).Jittered(10, nil); got != 10 {
		t.Fatalf("nil intn: got %d, want 10", got)
	}
	rng := rand.New(rand.NewSource(1))
	if got := (Policy{Jitter: 0}).Jittered(10, rng.Int63n); got != 10 {
		t.Fatalf("zero jitter: got %d, want 10", got)
	}
}
