package live

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestLiveCrashFreeNoDetector(t *testing.T) {
	// Without a detector there is no suspicion, so fork exclusivity
	// makes violations impossible — even on real goroutines.
	s, err := NewSystem(Config{
		Graph:           graph.Ring(8),
		DisableDetector: true,
		EatTime:         200 * time.Microsecond,
		ThinkTime:       200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(300 * time.Millisecond)
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Tracker().Violations(); v != 0 {
		t.Fatalf("violations = %d, want 0 without a detector", v)
	}
	for i, c := range s.Tracker().EatCounts() {
		if c == 0 {
			t.Fatalf("process %d never ate", i)
		}
	}
	if hw := s.EdgeHighWater(); hw > 4 {
		t.Fatalf("edge occupancy = %d, exceeds the paper's bound", hw)
	}
}

func TestLiveWaitFreedomAfterCrash(t *testing.T) {
	// With the heartbeat detector, survivors must keep eating after a
	// neighbor crashes.
	s, err := NewSystem(Config{
		Graph:            graph.Ring(6),
		HeartbeatPeriod:  time.Millisecond,
		InitialTimeout:   30 * time.Millisecond,
		TimeoutIncrement: 30 * time.Millisecond,
		EatTime:          200 * time.Microsecond,
		ThinkTime:        200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(150 * time.Millisecond)
	if err := s.Crash(2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(600 * time.Millisecond)
	deadline := time.Now()
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if i == 2 {
			continue
		}
		last := s.Tracker().LastEat(i)
		if last.IsZero() {
			t.Fatalf("survivor %d never ate", i)
		}
		if deadline.Sub(last) > 400*time.Millisecond {
			t.Fatalf("survivor %d stopped eating %v before the end (starved)", i, deadline.Sub(last))
		}
	}
}

func TestLiveChoySinghBlocksOnCrash(t *testing.T) {
	// Original doorway on goroutines: after the crash, at least the
	// crashed vertex's neighbors stop making progress.
	s, err := NewSystem(Config{
		Graph:           graph.Ring(4),
		DisableDetector: true,
		Options: core.Options{
			IgnoreDetector:     true,
			DisableRepliedFlag: true,
		},
		EatTime:   200 * time.Microsecond,
		ThinkTime: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(100 * time.Millisecond)
	if err := s.Crash(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	before := s.Tracker().EatCounts()
	time.Sleep(300 * time.Millisecond)
	after := s.Tracker().EatCounts()
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	blocked := 0
	for _, j := range []int{1, 3} { // neighbors of the crashed vertex
		if after[j] == before[j] {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatalf("no neighbor of the crashed vertex blocked: before=%v after=%v", before, after)
	}
	// The antipodal vertex shares no edge with the crashed one and must
	// keep eating (its neighbors are blocked *outside* the doorway,
	// where they still grant acks and forks).
	if after[2] == before[2] {
		t.Fatalf("vertex 2 should keep eating: before=%v after=%v", before, after)
	}
}

func TestLiveDetectorSuppressesFalseBlockage(t *testing.T) {
	// Sanity: a 2-clique with detector converges to steady alternation;
	// both processes keep accumulating eats.
	s, err := NewSystem(Config{
		Graph:           graph.Path(2),
		HeartbeatPeriod: time.Millisecond,
		InitialTimeout:  40 * time.Millisecond,
		EatTime:         100 * time.Microsecond,
		ThinkTime:       100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(400 * time.Millisecond)
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	counts := s.Tracker().EatCounts()
	if counts[0] < 10 || counts[1] < 10 {
		t.Fatalf("eat counts too low: %v", counts)
	}
}

func TestLiveDaemonSchedulesStabilizingProtocol(t *testing.T) {
	// A live distributed daemon: each eating session executes one step
	// of self-stabilizing (Δ+1)-coloring over shared state. Without a
	// detector, exclusion is perpetual (fork-based), so neighboring
	// steps never overlap and the unsynchronized neighbor reads below
	// are race-free — which `go test -race` verifies for us.
	const n = 8
	colors := make([]int, n) // monochrome start: every edge conflicts
	step := func(i int) {
		l, r := (i+n-1)%n, (i+1)%n
		if colors[i] != colors[l] && colors[i] != colors[r] {
			return
		}
		for c := 0; ; c++ {
			if c != colors[l] && c != colors[r] {
				colors[i] = c
				return
			}
		}
	}
	s, err := NewSystem(Config{
		Graph:           graph.Ring(n),
		DisableDetector: true,
		EatTime:         100 * time.Microsecond,
		ThinkTime:       100 * time.Microsecond,
		OnEat:           step,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(300 * time.Millisecond)
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if colors[i] == colors[(i+1)%n] {
			t.Fatalf("coloring did not stabilize under the live daemon: %v", colors)
		}
	}
}

func TestLiveConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("nil graph must be rejected")
	}
	if _, err := NewSystem(Config{Graph: graph.Path(2), Colors: []int{0, 0}}); err == nil {
		t.Fatal("improper coloring must be rejected")
	}
	if _, err := NewSystem(Config{Graph: graph.Path(2), LossP: 1.5}); err == nil {
		t.Fatal("loss probability above 1 must be rejected")
	}
	if _, err := NewSystem(Config{Graph: graph.Path(2), DupP: -0.1}); err == nil {
		t.Fatal("negative duplication probability must be rejected")
	}
}

func TestLiveLossyLinks(t *testing.T) {
	// Real goroutines over lossy, duplicating channels: the forwarder's
	// retransmission backoff plus receive-side sequence dedup must keep
	// every process eating with no protocol violation. Faults run only
	// for a window, so the system also demonstrates recovery to clean
	// FIFO delivery.
	s, err := NewSystem(Config{
		Graph:           graph.Ring(6),
		DisableDetector: true,
		EatTime:         200 * time.Microsecond,
		ThinkTime:       200 * time.Microsecond,
		LossP:           0.2,
		DupP:            0.2,
		FaultFor:        300 * time.Millisecond,
		FaultSeed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(700 * time.Millisecond)
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Tracker().Violations(); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	for i, c := range s.Tracker().EatCounts() {
		if c == 0 {
			t.Fatalf("process %d never ate under lossy links", i)
		}
	}
	tr := s.Tracker()
	if tr.Retransmits() == 0 {
		t.Fatal("fault injection never held a frame: test exercised nothing")
	}
	if tr.Duplicates() > 0 && tr.DupSuppressed() == 0 {
		t.Fatalf("%d duplicates injected but none suppressed", tr.Duplicates())
	}
}

func TestLivePanicRecovery(t *testing.T) {
	// A panicking OnEat hook must not hang Stop or the victim's
	// neighbors: the process is recovered, reported, and treated as
	// crashed, while everyone else keeps eating (heartbeat detector).
	s, err := NewSystem(Config{
		Graph:            graph.Ring(6),
		HeartbeatPeriod:  time.Millisecond,
		InitialTimeout:   30 * time.Millisecond,
		TimeoutIncrement: 30 * time.Millisecond,
		EatTime:          200 * time.Microsecond,
		ThinkTime:        200 * time.Microsecond,
		OnEat: func(i int) {
			if i == 2 {
				panic("daemon hook failure")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(600 * time.Millisecond)
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung after a hook panic")
	}
	err = s.Err()
	if err == nil {
		t.Fatal("recovered hook panic must surface through Err")
	}
	if got := err.Error(); !strings.Contains(got, "hook panic") || !strings.Contains(got, "daemon hook failure") {
		t.Fatalf("Err() = %q, want recovered panic details", got)
	}
	counts := s.Tracker().EatCounts()
	for i, c := range counts {
		if i == 2 {
			continue
		}
		if c == 0 {
			t.Fatalf("survivor %d never ate after the panic: %v", i, counts)
		}
	}
}

func TestLiveStopIdempotentAndCrashRange(t *testing.T) {
	s, err := NewSystem(Config{Graph: graph.Path(2), DisableDetector: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Start() // no-op
	if err := s.Crash(5); err == nil {
		t.Fatal("out-of-range crash must error")
	}
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	s.Stop() // no-op
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}
