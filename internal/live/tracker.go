package live

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// tracker is the mutex-protected observation point for the live system:
// processes report their dining transitions and it maintains exclusion
// violations, eat counts, and recency, without ever influencing the
// run.
type tracker struct {
	mu         sync.Mutex
	g          *graph.Graph
	eating     []bool
	crashed    []bool
	eats       []int
	lastEat    []time.Time
	violations int
	lastViol   time.Time
	boundViol  int
}

func newTracker(g *graph.Graph) *tracker {
	return &tracker{
		g:       g,
		eating:  make([]bool, g.N()),
		crashed: make([]bool, g.N()),
		eats:    make([]int, g.N()),
		lastEat: make([]time.Time, g.N()),
	}
}

func (t *tracker) transition(id int, to core.State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch to {
	case core.Eating:
		t.eating[id] = true
		t.eats[id]++
		t.lastEat[id] = time.Now()
		for _, j := range t.g.Neighbors(id) {
			if t.eating[j] && !t.crashed[j] && !t.crashed[id] {
				t.violations++
				t.lastViol = time.Now()
			}
		}
	default:
		t.eating[id] = false
	}
}

func (t *tracker) boundViolation() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.boundViol++
}

func (t *tracker) boundViolationCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.boundViol
}

func (t *tracker) crash(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.crashed[id] = true
	t.eating[id] = false
}

// Tracker is the read-side view of the live system's metrics.
type Tracker tracker

// EatCounts returns a copy of per-process eat counts.
func (t *Tracker) EatCounts() []int {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make([]int, len(tt.eats))
	copy(out, tt.eats)
	return out
}

// Violations returns how many exclusion violations occurred and when
// the last one happened.
func (t *Tracker) Violations() (int, time.Time) {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.violations, tt.lastViol
}

// LastEat returns when process id last began eating (zero time if
// never).
func (t *Tracker) LastEat(id int) time.Time {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if id < 0 || id >= len(tt.lastEat) {
		return time.Time{}
	}
	return tt.lastEat[id]
}
