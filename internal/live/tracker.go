package live

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// tracker is the mutex-protected observation point for the live system:
// processes report their dining transitions and it maintains exclusion
// violations, eat counts, and recency, without ever influencing the
// run.
type tracker struct {
	mu         sync.Mutex
	g          *graph.Graph
	eating     []bool
	crashed    []bool
	eats       []int
	lastEat    []time.Time
	violations int
	lastViol   time.Time
	boundViol  int

	retransmits    int
	duplicates     int
	dupsSuppressed int
	hookPanics     []error
	edgeHW         int // max per-direction occupancy, published at proc exit
}

func newTracker(g *graph.Graph) *tracker {
	return &tracker{
		g:       g,
		eating:  make([]bool, g.N()),
		crashed: make([]bool, g.N()),
		eats:    make([]int, g.N()),
		lastEat: make([]time.Time, g.N()),
	}
}

func (t *tracker) transition(id int, to core.State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch to {
	case core.Eating:
		t.eating[id] = true
		t.eats[id]++
		t.lastEat[id] = time.Now()
		for _, j := range t.g.Neighbors(id) {
			if t.eating[j] && !t.crashed[j] && !t.crashed[id] {
				t.violations++
				t.lastViol = time.Now()
			}
		}
	case core.Thinking, core.Hungry:
		t.eating[id] = false
	}
}

func (t *tracker) boundViolation() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.boundViol++
}

func (t *tracker) boundViolationCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.boundViol
}

func (t *tracker) retransmit() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retransmits++
}

func (t *tracker) duplicate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.duplicates++
}

func (t *tracker) dupSuppressed() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dupsSuppressed++
}

func (t *tracker) edgeHighWater(hw int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if hw > t.edgeHW {
		t.edgeHW = hw
	}
}

func (t *tracker) edgeHighWaterMax() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.edgeHW
}

func (t *tracker) hookPanic(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hookPanics = append(t.hookPanics, err)
}

func (t *tracker) crash(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.crashed[id] = true
	t.eating[id] = false
}

// Tracker is the read-side view of the live system's metrics.
type Tracker tracker

// EatCounts returns a copy of per-process eat counts.
func (t *Tracker) EatCounts() []int {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make([]int, len(tt.eats))
	copy(out, tt.eats)
	return out
}

// Violations returns how many exclusion violations occurred and when
// the last one happened.
func (t *Tracker) Violations() (int, time.Time) {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.violations, tt.lastViol
}

// Retransmits returns how many frames the fault injector held back and
// resent (zero unless Config loss is enabled).
func (t *Tracker) Retransmits() int {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.retransmits
}

// Duplicates returns how many duplicate frames the fault injector
// delivered.
func (t *Tracker) Duplicates() int {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.duplicates
}

// DupSuppressed returns how many duplicate frames receivers discarded
// by sequence number.
func (t *Tracker) DupSuppressed() int {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.dupsSuppressed
}

// HookPanics returns the panics recovered from user OnEat hooks, in
// order of occurrence.
func (t *Tracker) HookPanics() []error {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make([]error, len(tt.hookPanics))
	copy(out, tt.hookPanics)
	return out
}

// LastEat returns when process id last began eating (zero time if
// never).
func (t *Tracker) LastEat(id int) time.Time {
	tt := (*tracker)(t)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if id < 0 || id >= len(tt.lastEat) {
		return time.Time{}
	}
	return tt.lastEat[id]
}
