// Package live runs the dining algorithm on real goroutines: one
// goroutine per process, buffered Go channels as the reliable FIFO
// links, and a wall-clock heartbeat implementation of ◇P₁. It exercises
// exactly the same core.Diner state machine as the deterministic
// simulator, which validates that the algorithm's correctness does not
// depend on simulator scheduling artifacts.
//
// The per-edge channels are deliberately small: the paper's Section 7
// proves at most four dining messages occupy an edge at once, so a
// capacity-8 buffered channel never fills and sends never block. The
// runtime records any would-block event as a bound violation, making
// the bounded-capacity claim an executable assertion.
//
// Config.LossP/DupP inject channel faults on the per-edge links,
// mirroring sim.FaultPlan for the goroutine runtime: each forwarder
// simulates a lossy link by holding "lost" messages through a
// retransmission backoff, and may post duplicate copies; receivers
// deduplicate by per-edge sequence number. Faults cease FaultFor after
// Start (eventual reliability), and the occupancy assertion is relaxed
// while they act — a link mid-backoff legitimately queues more than the
// paper's bound.
//
// Every process goroutine exclusively owns its diner, its failure-
// detector state, and its timers; cross-goroutine interaction happens
// only through channels and the mutex-protected tracker, keeping the
// package race-free (the tests run under -race).
package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/graph"
)

// edgeCap is the per-direction channel capacity. The paper bounds joint
// per-edge occupancy by 4; 8 per direction leaves margin so that a
// full channel can only mean an algorithm bug.
const edgeCap = 8

// forwarderBackoff is the retransmission schedule a lossy-edge
// forwarder sleeps through while a frame is "lost": the shared policy
// (see internal/backoff), in nanoseconds, jitterless — the per-edge
// fault RNG already decorrelates edges.
var forwarderBackoff = backoff.Policy{
	Initial: int64(time.Millisecond),
	Max:     int64(8 * time.Millisecond),
}

// Config assembles a live System.
type Config struct {
	// Graph is the conflict graph (required).
	Graph *graph.Graph
	// Colors are static priorities; nil selects greedy coloring.
	Colors []int
	// Options tweak the dining algorithm (see core.Options).
	Options core.Options

	// HeartbeatPeriod is the ◇P₁ heartbeat interval (default 2ms).
	HeartbeatPeriod time.Duration
	// InitialTimeout is the starting suspicion timeout (default 25ms).
	InitialTimeout time.Duration
	// TimeoutIncrement is added after each false suspicion (default
	// 25ms).
	TimeoutIncrement time.Duration
	// DisableDetector turns heartbeating off entirely; the diner then
	// sees an empty suspect set (Choy–Singh conditions).
	DisableDetector bool

	// EatTime and ThinkTime are the workload pauses (defaults 1ms
	// each). Processes are re-hungry forever until Stop.
	EatTime   time.Duration
	ThinkTime time.Duration

	// OnEat, when non-nil, is invoked on the process's own goroutine
	// each time it begins eating — the live distributed-daemon hook:
	// after detector convergence, OnEat(i) never runs concurrently with
	// OnEat(j) for neighbors i and j. The callback must return promptly
	// (it runs inside the critical section) and must synchronize any
	// state it shares across processes that are not conflict-graph
	// neighbors. A panicking hook does not kill the run: the panic is
	// recovered, recorded, and the process is treated as crashed.
	OnEat func(process int)

	// LossP is the per-message loss probability on every directed edge:
	// a "lost" message is held by its forwarder through a retransmission
	// backoff before getting through, like a real lossy link under ARQ.
	LossP float64
	// DupP is the per-message duplication probability; duplicates are
	// discarded at the receiver by sequence number.
	DupP float64
	// FaultFor bounds the fault window: faults cease this long after
	// Start (default 500ms when LossP/DupP are set) — the live analogue
	// of sim.FaultPlan.HealAt.
	FaultFor time.Duration
	// FaultSeed seeds the per-edge fault randomness (default 1).
	FaultSeed int64
}

// faulty reports whether channel-fault injection is configured.
func (c *Config) faulty() bool { return c.LossP > 0 || c.DupP > 0 }

func (c *Config) withDefaults() error {
	if c.Graph == nil {
		return errors.New("live: Config.Graph is required")
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 2 * time.Millisecond
	}
	if c.InitialTimeout <= 0 {
		c.InitialTimeout = 25 * time.Millisecond
	}
	if c.TimeoutIncrement <= 0 {
		c.TimeoutIncrement = 25 * time.Millisecond
	}
	if c.EatTime <= 0 {
		c.EatTime = time.Millisecond
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = time.Millisecond
	}
	if c.LossP < 0 || c.LossP > 1 {
		return fmt.Errorf("live: LossP %v outside [0,1]", c.LossP)
	}
	if c.DupP < 0 || c.DupP > 1 {
		return fmt.Errorf("live: DupP %v outside [0,1]", c.DupP)
	}
	if c.faulty() {
		if c.FaultFor <= 0 {
			c.FaultFor = 500 * time.Millisecond
		}
		if c.FaultSeed == 0 {
			c.FaultSeed = 1
		}
	}
	return nil
}

type eventKind int

const (
	evMessage eventKind = iota + 1
	evHeartbeat
	evHungry
	evExitEat
)

type event struct {
	kind eventKind
	msg  core.Message
	from int
	seq  uint64 // per-directed-edge message sequence, for receiver dedup
}

// liveFrame is what travels on a per-edge channel: the dining message
// plus its edge-local sequence number.
type liveFrame struct {
	seq uint64
	msg core.Message
}

// System is a running set of dining processes on goroutines.
type System struct {
	cfg     Config
	procs   []*proc
	tracker *tracker

	faultUntil time.Time // written in Start before forwarders launch

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  bool
}

// proc is one process: a goroutine owning a diner and its detector
// state.
type proc struct {
	sys   *System
	id    int
	diner *core.Diner
	inbox chan event
	dead  chan struct{} // closed on crash
	once  sync.Once

	// out[j] is the FIFO link to neighbor j; owned by this process's
	// goroutine on the send side.
	out map[int]chan liveFrame // owned: run
	// seqOut[j] is the last sequence number assigned on out[j].
	seqOut map[int]uint64 // owned: run
	// lastSeq[j] is the last sequence number accepted from neighbor j,
	// used to discard injected duplicates.
	lastSeq map[int]uint64 // owned: run
	// edgeHW is the per-neighbor send-side occupancy high-water mark,
	// published to the tracker at exit.
	edgeHW map[int]int // owned: run

	// Failure-detector state, owned by the run goroutine (enforced by
	// the mailboxown analyzer).
	lastHeard map[int]time.Time     // owned: run
	timeout   map[int]time.Duration // owned: run
	suspected map[int]bool          // owned: run

	nbrs []int
}

// NewSystem builds (but does not start) a live system.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	g := cfg.Graph
	colors := cfg.Colors
	if colors == nil {
		colors = g.GreedyColoring()
	}
	if len(colors) != g.N() || !g.IsProperColoring(colors) {
		return nil, errors.New("live: invalid coloring")
	}
	s := &System{
		cfg:     cfg,
		procs:   make([]*proc, g.N()),
		tracker: newTracker(g),
		stop:    make(chan struct{}),
	}
	for i := 0; i < g.N(); i++ {
		p := &proc{
			sys:       s,
			id:        i,
			inbox:     make(chan event, 64),
			dead:      make(chan struct{}),
			out:       make(map[int]chan liveFrame),
			seqOut:    make(map[int]uint64),
			lastSeq:   make(map[int]uint64),
			edgeHW:    make(map[int]int),
			lastHeard: make(map[int]time.Time),
			timeout:   make(map[int]time.Duration),
			suspected: make(map[int]bool),
			nbrs:      g.Neighbors(i),
		}
		s.procs[i] = p
	}
	// Create the per-edge links, then the diners. Under fault injection
	// a forwarder can sit in a retransmission backoff while the sender
	// keeps producing, so the links get extra slack.
	capacity := edgeCap
	if cfg.faulty() {
		capacity = 64
	}
	for i, p := range s.procs {
		for _, j := range p.nbrs {
			p.out[j] = make(chan liveFrame, capacity)
			p.timeout[j] = cfg.InitialTimeout
		}
		nbrColors := make(map[int]int, len(p.nbrs))
		for _, j := range p.nbrs {
			nbrColors[j] = colors[j]
		}
		p := p
		d, err := core.NewDiner(core.Config{
			ID:             i,
			Color:          colors[i],
			NeighborColors: nbrColors,
			Suspects:       func(j int) bool { return p.suspected[j] },
			Options:        cfg.Options,
		})
		if err != nil {
			return nil, fmt.Errorf("live: process %d: %w", i, err)
		}
		p.diner = d
	}
	return s, nil
}

// Start launches every process goroutine plus one forwarder per
// directed edge; all processes become hungry shortly after. Extra calls
// are no-ops.
func (s *System) Start() {
	if s.started {
		return
	}
	s.started = true
	now := time.Now()
	for _, p := range s.procs {
		for _, j := range p.nbrs {
			p.lastHeard[j] = now
		}
	}
	// Forwarders: drain each directed edge into the receiver's inbox,
	// preserving per-edge FIFO. With faults configured, each forwarder
	// simulates a lossy link: a "lost" frame is held through a doubling
	// backoff (counted as retransmits) before it gets through, and a
	// frame may be posted twice (the receiver drops the duplicate by
	// sequence number). Faults cease at s.faultUntil.
	s.faultUntil = time.Now().Add(s.cfg.FaultFor)
	for _, p := range s.procs {
		for _, j := range p.nbrs {
			from, ch, dst := p.id, p.out[j], s.procs[j]
			var rng *rand.Rand
			if s.cfg.faulty() {
				rng = rand.New(rand.NewSource(s.cfg.FaultSeed + int64(from)*1009 + int64(j)))
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for {
					select {
					case <-s.stop:
						return
					case <-dst.dead:
						return
					case f := <-ch:
						if rng != nil && !s.forward(rng, dst, from, f) {
							return
						}
						if rng == nil {
							dst.post(event{kind: evMessage, msg: f.msg, from: from, seq: f.seq})
						}
					}
				}
			}()
		}
	}
	for _, p := range s.procs {
		s.wg.Add(1)
		go p.run()
		p.post(event{kind: evHungry})
	}
}

// forward carries one frame across a faulty edge: a "lost" frame is
// held through a doubling retransmission backoff until a copy gets
// through, then posted — possibly twice (duplication). Returns false if
// the system stopped or the destination died mid-backoff.
func (s *System) forward(rng *rand.Rand, dst *proc, from int, f liveFrame) bool {
	pol := forwarderBackoff
	wait := time.Duration(pol.Next(0))
	for time.Now().Before(s.faultUntil) && rng.Float64() < s.cfg.LossP {
		s.tracker.retransmit()
		select {
		case <-s.stop:
			return false
		case <-dst.dead:
			return false
		case <-time.After(wait):
		}
		wait = time.Duration(pol.Next(int64(wait)))
	}
	dst.post(event{kind: evMessage, msg: f.msg, from: from, seq: f.seq})
	if time.Now().Before(s.faultUntil) && rng.Float64() < s.cfg.DupP {
		s.tracker.duplicate()
		dst.post(event{kind: evMessage, msg: f.msg, from: from, seq: f.seq})
	}
	return true
}

// Stop shuts the system down and waits for every goroutine to exit.
func (s *System) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Crash kills process id: its goroutine exits and it never sends again.
func (s *System) Crash(id int) error {
	if id < 0 || id >= len(s.procs) {
		return fmt.Errorf("live: crash %d out of range", id)
	}
	p := s.procs[id]
	p.once.Do(func() { close(p.dead) })
	s.tracker.crash(id)
	return nil
}

// Tracker returns the system's metrics tracker.
func (s *System) Tracker() *Tracker { return (*Tracker)(s.tracker) }

// Err returns the first protocol violation recorded by any process,
// including channel-bound overflows and recovered hook panics. Call
// after Stop.
func (s *System) Err() error {
	if errs := s.Tracker().HookPanics(); len(errs) > 0 {
		return errs[0]
	}
	for i, p := range s.procs {
		if err := p.diner.Err(); err != nil {
			return fmt.Errorf("process %d: %w", i, err)
		}
	}
	if n := s.tracker.boundViolationCount(); n > 0 {
		return fmt.Errorf("live: %d channel-bound violations (edge occupancy exceeded %d)", n, edgeCap)
	}
	return nil
}

// EdgeHighWater returns the largest per-direction channel occupancy
// observed at any send. Call after Stop. The paper's bound implies it
// never exceeds 4. Each process publishes its high-water marks to the
// tracker as its goroutine exits, so this never reads manager-owned
// state across goroutines.
func (s *System) EdgeHighWater() int {
	return s.tracker.edgeHighWaterMax()
}

// post delivers an event to this process, giving up if the process is
// dead or the system is stopping. Heartbeats are dropped when the inbox
// is full (late heartbeats only delay unsuspicion, never break safety);
// other events block until accepted — only forwarders and this
// process's own timers post them, so process goroutines never block on
// a peer.
func (p *proc) post(ev event) {
	if ev.kind == evHeartbeat {
		select {
		case p.inbox <- ev:
		case <-p.dead:
		case <-p.sys.stop:
		default:
		}
		return
	}
	select {
	case p.inbox <- ev:
	case <-p.dead:
	case <-p.sys.stop:
	}
}

// publishEdgeHW hands the process's occupancy high-water marks to the
// tracker; deferred in run so it happens-before Stop returns.
func (p *proc) publishEdgeHW() {
	best := 0
	for _, hw := range p.edgeHW {
		if hw > best {
			best = hw
		}
	}
	p.sys.tracker.edgeHighWater(best)
}

func (p *proc) run() {
	defer p.sys.wg.Done()
	defer p.publishEdgeHW()
	// A panicking daemon hook (OnEat) must not silently kill this
	// goroutine and hang the neighbors that share its forks: recover,
	// record the failure for the report, and fall over as a crash —
	// which the neighbors' detectors handle like any other.
	defer func() {
		if r := recover(); r != nil {
			p.sys.tracker.hookPanic(fmt.Errorf("live: process %d: recovered hook panic: %v", p.id, r))
			p.once.Do(func() { close(p.dead) })
			p.sys.tracker.crash(p.id)
		}
	}()
	var tick <-chan time.Time
	if !p.sys.cfg.DisableDetector {
		ticker := time.NewTicker(p.sys.cfg.HeartbeatPeriod)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-p.sys.stop:
			return
		case <-p.dead:
			return
		case <-tick:
			p.heartbeatRound()
		case ev := <-p.inbox:
			p.handle(ev)
		}
	}
}

// heartbeatRound sends heartbeats to all neighbors and refreshes
// suspicions from deadlines.
func (p *proc) heartbeatRound() {
	for _, j := range p.nbrs {
		p.sys.procs[j].post(event{kind: evHeartbeat, from: p.id})
	}
	now := time.Now()
	changed := false
	for _, j := range p.nbrs {
		if !p.suspected[j] && now.Sub(p.lastHeard[j]) > p.timeout[j] {
			p.suspected[j] = true
			changed = true
		}
	}
	if changed {
		p.act(func() []core.Message { return p.diner.ReevaluateSuspicion() })
	}
}

func (p *proc) handle(ev event) {
	switch ev.kind {
	case evHeartbeat:
		p.lastHeard[ev.from] = time.Now()
		if p.suspected[ev.from] {
			p.suspected[ev.from] = false
			p.timeout[ev.from] += p.sys.cfg.TimeoutIncrement
			p.act(func() []core.Message { return p.diner.ReevaluateSuspicion() })
		}
	case evMessage:
		if ev.seq <= p.lastSeq[ev.from] {
			// An injected duplicate: the original already arrived.
			p.sys.tracker.dupSuppressed()
			return
		}
		p.lastSeq[ev.from] = ev.seq
		m := ev.msg
		p.act(func() []core.Message { return p.diner.Deliver(m) })
	case evHungry:
		p.act(func() []core.Message { return p.diner.BecomeHungry() })
	case evExitEat:
		p.act(func() []core.Message { return p.diner.ExitEating() })
	}
}

// act executes one diner action, transmits outputs, and reacts to state
// transitions.
func (p *proc) act(action func() []core.Message) {
	before := p.diner.State()
	msgs := action()
	after := p.diner.State()
	for _, m := range msgs {
		p.seqOut[m.To]++
		f := liveFrame{seq: p.seqOut[m.To], msg: m}
		ch := p.out[m.To]
		if p.sys.cfg.faulty() {
			// A forwarder mid-backoff legitimately backs the link up, so
			// a full channel is congestion, not a protocol bug: block
			// until it drains (or the run ends).
			select {
			case ch <- f:
				if occ := len(ch); occ > p.edgeHW[m.To] {
					p.edgeHW[m.To] = occ
				}
			case <-p.dead:
			case <-p.sys.stop:
			}
			continue
		}
		select {
		case ch <- f:
			if occ := len(ch); occ > p.edgeHW[m.To] {
				p.edgeHW[m.To] = occ
			}
		default:
			// The paper's ≤4 bound makes this unreachable; record it
			// rather than block, so a bug surfaces as a test failure
			// instead of a deadlock.
			p.sys.tracker.boundViolation()
		}
	}
	if before == after {
		return
	}
	if before == core.Thinking && after == core.Eating {
		p.sys.tracker.transition(p.id, core.Hungry)
	}
	p.sys.tracker.transition(p.id, after)
	switch after {
	case core.Eating:
		if p.sys.cfg.OnEat != nil {
			p.sys.cfg.OnEat(p.id)
		}
		time.AfterFunc(p.sys.cfg.EatTime, func() { p.post(event{kind: evExitEat}) })
	case core.Thinking:
		time.AfterFunc(p.sys.cfg.ThinkTime, func() { p.post(event{kind: evHungry}) })
	case core.Hungry:
		// Nothing to schedule: the hungry phase ends when the protocol
		// grants entry, driven by message deliveries.
	}
}
