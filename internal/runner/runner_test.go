package runner

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// build assembles a runner with a metrics suite attached.
func build(t *testing.T, cfg Config) (*Runner, *metrics.Suite) {
	t.Helper()
	suite := metrics.NewSuite(cfg.Graph)
	cfg.OnTransition = suite.OnTransition
	cfg.OnCrash = suite.OnCrash
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Network().SetObserver(suite.Observer())
	return r, suite
}

func perfectFactory(latency sim.Time) DetectorFactory {
	return func(k *sim.Kernel, g *graph.Graph) detector.Detector {
		return detector.NewPerfect(k, g, latency)
	}
}

func heartbeatFactory(gst sim.Time, preMax sim.Time) DetectorFactory {
	return func(k *sim.Kernel, g *graph.Graph) detector.Detector {
		delays := sim.GSTDelay{
			GST:  gst,
			Pre:  sim.UniformDelay{Min: 0, Max: preMax},
			Post: sim.FixedDelay{D: 1},
		}
		hb := detector.NewHeartbeat(k, g, delays, detector.HeartbeatConfig{
			Period: 5, InitialTimeout: 12, Increment: 10,
		})
		hb.Start()
		return hb
	}
}

func TestCrashFreeSafetyAndFairnessRing(t *testing.T) {
	g := graph.Ring(12)
	r, suite := build(t, Config{
		Graph:    g,
		Seed:     1,
		Delays:   sim.UniformDelay{Min: 1, Max: 4},
		Workload: Saturated(),
	})
	r.Run(10000)
	suite.Finish(10000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := suite.Exclusion.Count(); n != 0 {
		t.Fatalf("crash-free run had %d exclusion violations, want 0", n)
	}
	// Theorem 3 with a converged-from-the-start detector: the 2-bound
	// holds for every window.
	if m := suite.Overtake.MaxCount(); m > 2 {
		t.Fatalf("max consecutive overtakes = %d, want ≤ 2", m)
	}
	// Wait-freedom: everybody is eating regularly.
	for i, c := range suite.Progress.CompletedSessions() {
		if c == 0 {
			t.Fatalf("process %d never ate in a saturated crash-free run", i)
		}
	}
	// Section 7: ≤ 4 dining messages in transit per edge.
	if hw := suite.Occupancy.MaxHighWater(); hw > 4 {
		t.Fatalf("edge occupancy high water = %d, want ≤ 4", hw)
	}
}

func TestCrashFreeCliqueAndGrid(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"clique8": graph.Clique(8),
		"grid4x4": graph.Grid(4, 4),
		"star9":   graph.Star(9),
	} {
		g := g
		t.Run(name, func(t *testing.T) {
			r, suite := build(t, Config{
				Graph:    g,
				Seed:     7,
				Delays:   sim.UniformDelay{Min: 1, Max: 5},
				Workload: Saturated(),
			})
			r.Run(20000)
			suite.Finish(20000)
			if err := r.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if n := suite.Exclusion.Count(); n != 0 {
				t.Fatalf("violations = %d, want 0", n)
			}
			if m := suite.Overtake.MaxCount(); m > 2 {
				t.Fatalf("max overtakes = %d, want ≤ 2", m)
			}
			if hw := suite.Occupancy.MaxHighWater(); hw > 4 {
				t.Fatalf("occupancy = %d, want ≤ 4", hw)
			}
			for i, c := range suite.Progress.CompletedSessions() {
				if c == 0 {
					t.Fatalf("process %d starved", i)
				}
			}
		})
	}
}

func TestScriptedMistakesCauseOnlyBoundedViolations(t *testing.T) {
	// Two neighbors; the lower-priority one wrongfully suspects the
	// higher-priority one during [100, 400). Violations may occur only
	// while the mistake (or its in-flight consequences) lasts.
	g := graph.Path(2)
	var scripted *detector.Scripted
	r, suite := build(t, Config{
		Graph:  g,
		Seed:   3,
		Delays: sim.FixedDelay{D: 2},
		NewDetector: func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
			scripted = detector.NewScripted(k, gg, 0)
			scripted.AddMistake(0, 1, 100, 400)
			scripted.AddMistake(1, 0, 100, 400)
			scripted.Start()
			return scripted
		},
		Workload: Saturated(),
	})
	r.Run(5000)
	suite.Finish(5000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if suite.Exclusion.Count() == 0 {
		t.Fatal("mutual wrongful suspicion under saturation should cause at least one ◇WX mistake")
	}
	// ◇WX: no violations after the mistakes clear (slack for in-flight
	// eating sessions that began during the window).
	if n := suite.Exclusion.CountAfter(450); n != 0 {
		t.Fatalf("%d violations after the detector converged", n)
	}
}

func TestWaitFreedomUnderCrashStorm(t *testing.T) {
	g := graph.Ring(16)
	r, suite := build(t, Config{
		Graph:       g,
		Seed:        11,
		Delays:      sim.UniformDelay{Min: 1, Max: 4},
		NewDetector: perfectFactory(20),
		Workload:    Saturated(),
	})
	// Crash half the ring, alternating vertices, in waves.
	for i := 0; i < 8; i++ {
		r.CrashAt(sim.Time(500+100*i), 2*i)
	}
	r.Run(30000)
	suite.Finish(30000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := suite.Exclusion.Count(); n != 0 {
		t.Fatalf("perfect-detector run had %d violations", n)
	}
	// Wait-freedom: no live process is stuck hungry at the end.
	if starving := suite.Progress.Starving(30000, 2000); len(starving) != 0 {
		t.Fatalf("starving live processes: %v", starving)
	}
	// Survivors keep making progress after every crash.
	for i := 1; i < 16; i += 2 {
		if c := suite.Progress.CompletedSessions()[i]; c < 100 {
			t.Fatalf("survivor %d completed only %d sessions", i, c)
		}
	}
}

func TestChoySinghStarvesNeighborsOfCrashed(t *testing.T) {
	// Same storm, but with no failure detector (the original
	// asynchronous doorway): neighbors of the crashed process block.
	g := graph.Ring(8)
	r, suite := build(t, Config{
		Graph:  g,
		Seed:   11,
		Delays: sim.UniformDelay{Min: 1, Max: 4},
		NewProcess: CoreFactory(core.Options{
			IgnoreDetector:     true,
			DisableRepliedFlag: true, // original Choy–Singh doorway
		}),
		Workload: Saturated(),
	})
	r.CrashAt(500, 0)
	r.Run(30000)
	suite.Finish(30000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	starving := suite.Progress.Starving(30000, 5000)
	if len(starving) == 0 {
		t.Fatal("without a detector, a crash must eventually starve some neighbor")
	}
	// Starvation must include at least one neighbor of the crashed
	// process (it can propagate further through the doorway).
	foundNeighbor := false
	for _, s := range starving {
		if g.HasEdge(0, s) {
			foundNeighbor = true
		}
	}
	if !foundNeighbor {
		t.Fatalf("starving set %v does not include a neighbor of the crashed vertex", starving)
	}
}

func TestHeartbeatEndToEnd(t *testing.T) {
	// Full stack: hostile pre-GST delays on the heartbeat network force
	// detector mistakes; after GST everything must settle into the
	// paper's guarantees.
	g := graph.Ring(10)
	const gst = 2000
	const end = 40000
	r, suite := build(t, Config{
		Graph:       g,
		Seed:        5,
		Delays:      sim.UniformDelay{Min: 1, Max: 3},
		NewDetector: heartbeatFactory(gst, 60),
		Workload:    Saturated(),
	})
	r.CrashAt(3000, 4)
	r.Run(end)
	suite.Finish(end)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	hb := r.Detector().(*detector.Heartbeat)
	_, cleared := hb.LastMistake()
	conv := cleared + 1
	if conv > gst+2000 {
		t.Fatalf("detector converged too late: %d", conv)
	}
	// ◇WX: violations only before convergence (plus drain slack for
	// eats begun before it).
	if n := suite.Exclusion.CountAfter(conv + 100); n != 0 {
		t.Fatalf("%d exclusion violations after detector convergence", n)
	}
	// ◇2-BW: sessions starting in the converged suffix are 2-bounded.
	suffix := conv + 5000
	if m := suite.Overtake.MaxCountFrom(suffix); m > 2 {
		t.Fatalf("max overtakes in suffix = %d, want ≤ 2", m)
	}
	// Wait-freedom despite the crash and detector noise.
	if starving := suite.Progress.Starving(end, 4000); len(starving) != 0 {
		t.Fatalf("starving: %v", starving)
	}
}

func TestQuiescenceTowardCrashed(t *testing.T) {
	g := graph.Ring(8)
	const end = 20000
	r, suite := build(t, Config{
		Graph:       g,
		Seed:        2,
		Delays:      sim.UniformDelay{Min: 1, Max: 3},
		NewDetector: perfectFactory(10),
		Workload:    Saturated(),
	})
	r.CrashAt(1000, 3)
	r.Run(end)
	suite.Finish(end)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Dining messages to the crashed process must stop quickly: the
	// residual budget is one ping and one token per live neighbor plus
	// whatever was already owed (deferred acks/forks in flight).
	if last, any := suite.Quiescence.LastSendToCrashed(); any && last > 1500 {
		t.Fatalf("dining message sent to crashed process at %d, long after the crash", last)
	}
	if n := suite.Quiescence.SendsAfterCrash(3); n > 8 {
		t.Fatalf("%d dining messages sent after crash, want a small constant", n)
	}
}

func TestChannelBoundUnderDelayVariance(t *testing.T) {
	g := graph.Clique(6)
	r, suite := build(t, Config{
		Graph:    g,
		Seed:     9,
		Delays:   sim.UniformDelay{Min: 1, Max: 50}, // heavy reordering pressure
		Workload: Saturated(),
	})
	r.Run(30000)
	suite.Finish(30000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if hw := suite.Occupancy.MaxHighWater(); hw > 4 {
		t.Fatalf("per-edge occupancy = %d, exceeds the paper's bound of 4", hw)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, uint64, []int) {
		g := graph.Grid(3, 3)
		suite := metrics.NewSuite(g)
		r, err := New(Config{
			Graph:        g,
			Seed:         42,
			Delays:       sim.UniformDelay{Min: 1, Max: 6},
			NewDetector:  perfectFactory(15),
			Workload:     Workload{ThinkMin: 2, ThinkMax: 10, EatMin: 1, EatMax: 4},
			OnTransition: suite.OnTransition,
			OnCrash:      suite.OnCrash,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Network().SetObserver(suite.Observer())
		r.CrashAt(700, 4)
		r.Run(10000)
		return suite.Exclusion.Count(), r.Network().TotalSent(), suite.Progress.CompletedSessions()
	}
	v1, s1, c1 := run()
	v2, s2, c2 := run()
	if v1 != v2 || s1 != s2 {
		t.Fatalf("nondeterministic run: (%d,%d) vs (%d,%d)", v1, s1, v2, s2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("per-process sessions diverge at %d: %d vs %d", i, c1[i], c2[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil graph must be rejected")
	}
	g := graph.Path(3)
	if _, err := New(Config{Graph: g, Colors: []int{0, 0, 0}}); err == nil {
		t.Fatal("improper coloring must be rejected")
	}
	if _, err := New(Config{Graph: g, Colors: []int{0, 1}}); err == nil {
		t.Fatal("wrong-length coloring must be rejected")
	}
}

func TestSessionLimitedWorkload(t *testing.T) {
	g := graph.Ring(6)
	r, suite := build(t, Config{
		Graph:    g,
		Seed:     4,
		Workload: Workload{Sessions: 3, EatMin: 1, EatMax: 2, ThinkMin: 1, ThinkMax: 2},
	})
	r.Run(10000)
	suite.Finish(10000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		if got := r.SessionsStarted(i); got != 3 {
			t.Fatalf("process %d started %d sessions, want 3", i, got)
		}
		if c := suite.Progress.CompletedSessions()[i]; c != 3 {
			t.Fatalf("process %d completed %d sessions, want 3", i, c)
		}
	}
}

func TestAdversarialTieBreaks(t *testing.T) {
	// The paper's guarantees are scheduler-independent: rerun the
	// crash-free saturated ring under LIFO and Random simultaneity.
	for _, mode := range []sim.TieBreak{sim.LIFO, sim.Random} {
		g := graph.Ring(10)
		r, suite := build(t, Config{
			Graph:    g,
			Seed:     13,
			TieBreak: mode,
			Delays:   sim.UniformDelay{Min: 1, Max: 4},
			Workload: Saturated(),
		})
		r.Run(15000)
		suite.Finish(15000)
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if n := suite.Exclusion.Count(); n != 0 {
			t.Fatalf("mode %d: %d violations", mode, n)
		}
		if m := suite.Overtake.MaxCount(); m > 2 {
			t.Fatalf("mode %d: overtakes %d", mode, m)
		}
		if hw := suite.Occupancy.MaxHighWater(); hw > 4 {
			t.Fatalf("mode %d: occupancy %d", mode, hw)
		}
		for i, c := range suite.Progress.CompletedSessions() {
			if c == 0 {
				t.Fatalf("mode %d: process %d starved", mode, i)
			}
		}
	}
}

// Property: across random topologies, seeds, and crash schedules with a
// perfect detector, the algorithm never violates exclusion, never
// triggers a protocol invariant, respects the channel bound, and
// starves no live process.
func TestQuickAlgorithmOneUniversalProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	f := func(seed int64, rawN, rawP, crashRaw uint8) bool {
		n := int(rawN%10) + 3
		p := float64(rawP%60)/100 + 0.15
		g := graph.ConnectedGNP(n, p, sim.NewKernel(seed).Rand())
		suite := metrics.NewSuite(g)
		r, err := New(Config{
			Graph:        g,
			Seed:         seed,
			Delays:       sim.UniformDelay{Min: 1, Max: 6},
			NewDetector:  perfectFactory(10),
			Workload:     Saturated(),
			OnTransition: suite.OnTransition,
			OnCrash:      suite.OnCrash,
		})
		if err != nil {
			return false
		}
		r.Network().SetObserver(suite.Observer())
		crashes := int(crashRaw) % n // up to n-1 crashes
		for c := 0; c < crashes; c++ {
			r.CrashAt(sim.Time(300+50*c), c)
		}
		const end = 15000
		r.Run(end)
		suite.Finish(end)
		if r.CheckInvariants() != nil {
			return false
		}
		if suite.Exclusion.Count() != 0 {
			return false
		}
		if suite.Occupancy.MaxHighWater() > 4 {
			return false
		}
		if suite.Overtake.MaxCount() > 2 {
			return false
		}
		return len(suite.Progress.Starving(end, 3000)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
