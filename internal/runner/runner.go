// Package runner assembles a dining system inside the deterministic
// simulator: it wires a conflict graph, a network, a failure detector,
// one dining process per vertex, a hunger/eating workload, and crash
// injection, and exposes transition and network events to monitors.
//
// The runner drives any core.Process implementation, so Algorithm 1 and
// the baseline algorithms run under identical adversarial schedules —
// same seed, same delays, same crash times — which is what makes the
// paper-vs-baseline comparisons meaningful.
package runner

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/rlink"
	"repro/internal/sim"
)

// Transport is the message surface the dining layer runs on: either the
// raw sim.Network or a reliability sublayer over it.
type Transport interface {
	Send(from, to int, payload any) error
	Register(i int, h sim.Handler) error
}

// TransportFactory builds the dining layer's transport over the
// network. Nil means the raw network itself.
type TransportFactory func(k *sim.Kernel, net *sim.Network) Transport

// ReliableTransport returns a factory that layers an rlink.Link over
// the network, masking injected channel faults.
func ReliableTransport(opts rlink.Options) TransportFactory {
	return func(_ *sim.Kernel, net *sim.Network) Transport {
		return rlink.New(net, opts)
	}
}

// Workload controls when processes get hungry and how long they eat.
// Durations are drawn uniformly from the inclusive ranges.
type Workload struct {
	// ThinkMin/ThinkMax bound the thinking time between sessions.
	ThinkMin, ThinkMax sim.Time
	// EatMin/EatMax bound the eating duration (the paper requires
	// finite eating times for correct processes).
	EatMin, EatMax sim.Time
	// Sessions caps hungry sessions per process; 0 means unlimited
	// (the process re-becomes hungry forever — a saturated daemon).
	Sessions int
	// FirstHungerMax staggers initial hunger uniformly over
	// [0, FirstHungerMax]; 0 means everyone is hungry at time 0.
	FirstHungerMax sim.Time
}

// Saturated returns a workload in which every process is permanently
// re-hungry with short eats — the harshest fairness workload.
func Saturated() Workload {
	return Workload{ThinkMin: 0, ThinkMax: 0, EatMin: 1, EatMax: 3}
}

// ProcessFactory builds the dining process for one vertex.
// nbrColors maps each conflict-graph neighbor to its color and suspects
// is the vertex's local ◇P₁ module.
type ProcessFactory func(id, color int, nbrColors map[int]int, suspects func(j int) bool) (core.Process, error)

// DetectorFactory builds the failure detector for a run. The factory
// must return a fully armed detector: implementations with a Start
// method (Heartbeat, Scripted) should be started inside the factory.
type DetectorFactory func(k *sim.Kernel, g *graph.Graph) detector.Detector

// Config assembles a Runner.
type Config struct {
	// Graph is the conflict graph (required).
	Graph *graph.Graph
	// Colors are static priorities; nil selects greedy Δ+1 coloring.
	Colors []int
	// Seed feeds all simulation randomness.
	Seed int64
	// TieBreak orders simultaneous kernel events (default FIFO; LIFO
	// and Random are adversarial schedulers).
	TieBreak sim.TieBreak
	// Delays is the dining network's delay model; nil = FixedDelay{1}.
	Delays sim.DelayModel
	// Faults injects channel unreliability into the dining network; nil
	// keeps the paper's reliable FIFO channels.
	Faults *sim.FaultPlan
	// Transport layers the dining protocol's message surface over the
	// network; nil runs directly on the (possibly faulty) network.
	Transport TransportFactory
	// NewDetector builds the oracle; nil = detector.Never (no oracle).
	NewDetector DetectorFactory
	// NewProcess builds each vertex's algorithm; nil = core.NewDiner
	// with default options (the paper's Algorithm 1).
	NewProcess ProcessFactory
	// Workload drives hunger; the zero value is Saturated with
	// moderate thinking (see normalize).
	Workload Workload

	// OnTransition observes every dining-state transition.
	OnTransition func(at sim.Time, id int, from, to core.State)
	// OnCrash observes crash injections.
	OnCrash func(at sim.Time, id int)
}

// Runner is an assembled simulation.
type Runner struct {
	cfg    Config
	k      *sim.Kernel
	g      *graph.Graph
	net    *sim.Network
	tx     Transport
	det    detector.Detector
	colors []int
	procs  []core.Process

	sessionsStarted []int
}

// CoreFactory returns a ProcessFactory producing the paper's
// Algorithm 1 with the given options.
func CoreFactory(opts core.Options) ProcessFactory {
	return func(id, color int, nbrColors map[int]int, suspects func(j int) bool) (core.Process, error) {
		return core.NewDiner(core.Config{
			ID:             id,
			Color:          color,
			NeighborColors: nbrColors,
			Suspects:       suspects,
			Options:        opts,
		})
	}
}

// New builds a runner from cfg.
func New(cfg Config) (*Runner, error) {
	if cfg.Graph == nil {
		return nil, errors.New("runner: Config.Graph is required")
	}
	g := cfg.Graph
	n := g.N()
	k := sim.NewKernel(cfg.Seed)
	k.SetTieBreak(cfg.TieBreak)

	colors := cfg.Colors
	if colors == nil {
		colors = g.GreedyColoring()
	}
	if len(colors) != n {
		return nil, fmt.Errorf("runner: %d colors for %d vertices", len(colors), n)
	}
	if !g.IsProperColoring(colors) {
		return nil, errors.New("runner: colors are not a proper coloring")
	}

	delays := cfg.Delays
	if delays == nil {
		delays = sim.FixedDelay{D: 1}
	}
	net := sim.NewNetwork(k, n, delays)
	if cfg.Faults != nil {
		net.SetFaults(cfg.Faults)
	}
	var tx Transport = net
	if cfg.Transport != nil {
		tx = cfg.Transport(k, net)
	}

	var det detector.Detector = detector.Never{}
	if cfg.NewDetector != nil {
		det = cfg.NewDetector(k, g)
	}
	// A suspicion-aware transport (rlink) parks retransmission toward
	// suspected peers; hand it the detector's output.
	if sa, ok := tx.(interface{ SetSuspects(func(int, int) bool) }); ok {
		sa.SetSuspects(func(watcher, target int) bool {
			return det.Suspects(watcher, target)
		})
	}

	factory := cfg.NewProcess
	if factory == nil {
		factory = CoreFactory(core.Options{})
	}

	r := &Runner{
		cfg:             cfg,
		k:               k,
		g:               g,
		net:             net,
		tx:              tx,
		det:             det,
		colors:          colors,
		procs:           make([]core.Process, n),
		sessionsStarted: make([]int, n),
	}
	r.cfg.Workload = normalize(cfg.Workload)

	for i := 0; i < n; i++ {
		i := i
		nbrColors := make(map[int]int)
		for _, j := range g.Neighbors(i) {
			nbrColors[j] = colors[j]
		}
		suspects := func(j int) bool { return r.det.Suspects(i, j) }
		p, err := factory(i, colors[i], nbrColors, suspects)
		if err != nil {
			return nil, fmt.Errorf("runner: process %d: %w", i, err)
		}
		r.procs[i] = p
		if err := tx.Register(i, func(from int, payload any) {
			m, ok := payload.(core.Message)
			if !ok {
				return
			}
			r.step(i, func() []core.Message { return r.procs[i].Deliver(m) })
		}); err != nil {
			return nil, err
		}
		if notifier, ok := r.det.(detector.Notifier); ok {
			notifier.SetListener(i, func() {
				// Un-park retransmission toward freshly trusted peers
				// before the process reacts to the new detector output.
				if res, ok := r.tx.(interface{ Resume(int) }); ok {
					res.Resume(i)
				}
				r.step(i, func() []core.Message { return r.procs[i].ReevaluateSuspicion() })
			})
		}
	}

	// Schedule initial hunger.
	for i := 0; i < n; i++ {
		i := i
		at := sim.Time(0)
		if r.cfg.Workload.FirstHungerMax > 0 {
			at = sim.Time(k.Rand().Int63n(int64(r.cfg.Workload.FirstHungerMax) + 1))
		}
		k.At(at, func() { r.hunger(i) })
	}
	return r, nil
}

func normalize(w Workload) Workload {
	if w.EatMax < w.EatMin {
		w.EatMax = w.EatMin
	}
	if w.ThinkMax < w.ThinkMin {
		w.ThinkMax = w.ThinkMin
	}
	if w.EatMin <= 0 && w.EatMax <= 0 {
		w.EatMin, w.EatMax = 1, 3
	}
	return w
}

func (r *Runner) uniform(lo, hi sim.Time) sim.Time {
	if hi <= lo {
		return lo
	}
	return lo + sim.Time(r.k.Rand().Int63n(int64(hi-lo)+1))
}

// step executes one atomic action of process i, transmits its output,
// and reacts to any state transition.
func (r *Runner) step(i int, action func() []core.Message) {
	if r.net.Crashed(i) {
		return
	}
	before := r.procs[i].State()
	msgs := action()
	after := r.procs[i].State()
	for _, m := range msgs {
		_ = r.tx.Send(i, m.To, m)
	}
	if before == after {
		return
	}
	if r.cfg.OnTransition != nil {
		// BecomeHungry can pass straight through to eating (e.g. an
		// isolated vertex, or all neighbors suspected); surface the
		// transient hungry phase so monitors see every phase boundary.
		if before == core.Thinking && after == core.Eating {
			r.cfg.OnTransition(r.k.Now(), i, core.Thinking, core.Hungry)
			r.cfg.OnTransition(r.k.Now(), i, core.Hungry, core.Eating)
		} else {
			r.cfg.OnTransition(r.k.Now(), i, before, after)
		}
	}
	switch after {
	case core.Eating:
		d := r.uniform(r.cfg.Workload.EatMin, r.cfg.Workload.EatMax)
		r.k.After(d, func() {
			r.step(i, func() []core.Message { return r.procs[i].ExitEating() })
		})
	case core.Thinking:
		r.scheduleNextHunger(i)
	case core.Hungry:
		// Nothing to schedule: progress out of Hungry is driven by
		// message deliveries, not timers.
	}
}

func (r *Runner) scheduleNextHunger(i int) {
	w := r.cfg.Workload
	if w.Sessions > 0 && r.sessionsStarted[i] >= w.Sessions {
		return
	}
	d := r.uniform(w.ThinkMin, w.ThinkMax)
	r.k.After(d, func() { r.hunger(i) })
}

func (r *Runner) hunger(i int) {
	if r.net.Crashed(i) {
		return
	}
	if r.procs[i].State() != core.Thinking {
		return
	}
	w := r.cfg.Workload
	if w.Sessions > 0 && r.sessionsStarted[i] >= w.Sessions {
		return
	}
	r.sessionsStarted[i]++
	r.step(i, func() []core.Message { return r.procs[i].BecomeHungry() })
}

// CrashAt schedules process id to crash at time t.
func (r *Runner) CrashAt(t sim.Time, id int) {
	r.k.At(t, func() {
		if r.net.Crashed(id) {
			return
		}
		_ = r.net.Crash(id)
		if ca, ok := r.det.(detector.CrashAware); ok {
			ca.ObserveCrash(id)
		}
		if r.cfg.OnCrash != nil {
			r.cfg.OnCrash(r.k.Now(), id)
		}
	})
}

// Run executes the simulation until the virtual deadline.
func (r *Runner) Run(until sim.Time) { r.k.Run(until) }

// Kernel returns the simulation kernel.
func (r *Runner) Kernel() *sim.Kernel { return r.k }

// Network returns the dining-layer network.
func (r *Runner) Network() *sim.Network { return r.net }

// Transport returns the dining layer's message surface — the network
// itself, or the reliability sublayer when one is configured.
func (r *Runner) Transport() Transport { return r.tx }

// Link returns the rlink sublayer, or nil when the dining layer runs on
// the raw network.
func (r *Runner) Link() *rlink.Link {
	if l, ok := r.tx.(*rlink.Link); ok {
		return l
	}
	return nil
}

// Detector returns the failure detector.
func (r *Runner) Detector() detector.Detector { return r.det }

// Graph returns the conflict graph.
func (r *Runner) Graph() *graph.Graph { return r.g }

// Colors returns the static priority assignment.
func (r *Runner) Colors() []int {
	out := make([]int, len(r.colors))
	copy(out, r.colors)
	return out
}

// Process returns the dining process at vertex i.
func (r *Runner) Process(i int) core.Process { return r.procs[i] }

// SessionsStarted returns how many hungry sessions vertex i has begun.
func (r *Runner) SessionsStarted(i int) int { return r.sessionsStarted[i] }

// CheckInvariants returns the first protocol violation recorded by any
// process, or nil. Tests call it at the end of every run.
func (r *Runner) CheckInvariants() error {
	for i, p := range r.procs {
		if err := p.Err(); err != nil {
			return fmt.Errorf("process %d: %w", i, err)
		}
	}
	return nil
}
