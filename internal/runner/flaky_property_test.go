package runner

import (
	"testing"
	"testing/quick"

	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestQuickFullPaperUnderFlakyDetector is the whole paper as one
// property: for random topologies, random crash schedules, and random
// pre-convergence detector mistakes, Algorithm 1 must satisfy
//
//   - no protocol-invariant corruption, ever (Lemmas 1.1–2.2);
//   - exclusion violations only before the detector converges
//     (Theorem 1);
//   - ≤2 consecutive overtakes for hungry sessions starting in the
//     converged, drained suffix (Theorem 3);
//   - no starvation of live processes (Theorem 2);
//   - ≤4 dining messages per edge at all times (Section 7);
//   - quiescence toward crashed processes by the end (Section 7).
func TestQuickFullPaperUnderFlakyDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	const (
		convergeAt = sim.Time(1500)
		maxHold    = sim.Time(60)
		horizon    = sim.Time(25000)
	)
	f := func(seed int64, rawN, rawP, crashRaw, rateRaw uint8) bool {
		n := int(rawN%8) + 3
		p := float64(rawP%50)/100 + 0.2
		g := graph.ConnectedGNP(n, p, sim.NewKernel(seed).Rand())
		suite := metrics.NewSuite(g)
		rate := float64(rateRaw%80)/100 + 0.1
		r, err := New(Config{
			Graph:  g,
			Seed:   seed,
			Delays: sim.UniformDelay{Min: 1, Max: 5},
			NewDetector: func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
				fd := detector.NewFlaky(k, gg, detector.FlakyConfig{
					ConvergeAt:   convergeAt,
					Rate:         rate,
					CheckEvery:   7,
					MaxHold:      maxHold,
					CrashLatency: 15,
				})
				fd.Start()
				return fd
			},
			Workload:     Saturated(),
			OnTransition: suite.OnTransition,
			OnCrash:      suite.OnCrash,
		})
		if err != nil {
			return false
		}
		r.Network().SetObserver(suite.Observer())
		crashes := int(crashRaw) % n
		for c := 0; c < crashes; c++ {
			// Crashes both before and after detector convergence.
			r.CrashAt(sim.Time(400+600*c), c)
		}
		r.Run(horizon)
		suite.Finish(horizon)

		if r.CheckInvariants() != nil {
			return false
		}
		// Mistakes end by convergeAt+maxHold; allow drain slack for
		// eating sessions begun under a mistaken guard.
		conv := convergeAt + maxHold + 200
		if suite.Exclusion.CountAfter(conv) != 0 {
			return false
		}
		// Suffix fairness: generous drain after convergence.
		if suite.Overtake.MaxCountFrom(horizon/2) > 2 {
			return false
		}
		if suite.Occupancy.MaxHighWater() > 4 {
			return false
		}
		if len(suite.Progress.Starving(horizon, 5000)) != 0 {
			return false
		}
		return suite.Quiescence.QuiescentBy(horizon - 5000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
