package dsvcd

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httputil"
	"net/url"
	"time"

	"repro/internal/dsvc"
)

// API shapes. Every response body is JSON; errors render as
// {"error": "..."} with the status code carrying the class.

type registerRequest struct {
	Name   string `json:"name"`
	Tenant string `json:"tenant"`
}

type registerResponse struct {
	Name string `json:"name"`
	Proc int    `json:"proc"`
}

type edgeRequest struct {
	A  string `json:"a"`
	B  string `json:"b"`
	Op string `json:"op"` // "add" (default) or "remove"
}

type acquireRequest struct {
	Tenant    string   `json:"tenant"`
	Resources []string `json:"resources"`
	// WaitMS long-polls the grant for up to this many milliseconds
	// (capped by Config.MaxWait). 0 returns the admission result
	// immediately.
	WaitMS int `json:"wait_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// statusOf maps an engine error to its HTTP class.
func statusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, dsvc.ErrTenantWindow),
		errors.Is(err, dsvc.ErrGlobalWindow),
		errors.Is(err, dsvc.ErrChangeWindow),
		errors.Is(err, dsvc.ErrResourceWindow):
		return http.StatusTooManyRequests // backpressure: reject, don't queue
	case errors.Is(err, dsvc.ErrUnknownResource), errors.Is(err, dsvc.ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, dsvc.ErrDuplicateResource),
		errors.Is(err, dsvc.ErrConflictingSet),
		errors.Is(err, dsvc.ErrResourceBusy),
		errors.Is(err, dsvc.ErrRetiring),
		errors.Is(err, dsvc.ErrCrashed):
		return http.StatusConflict
	case errors.Is(err, dsvc.ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, dsvc.ErrBadRequest):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request body: " + err.Error()})
		return false
	}
	return true
}

const stoppedMsg = "dsvc service stopping"

// Handler returns the /v1/* API surface, ready to mount on a dinerd
// mux next to the node's own /status.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/resources", s.handleRegister)
	mux.HandleFunc("DELETE /v1/resources/{name}", s.handleDeregister)
	mux.HandleFunc("POST /v1/edges", s.handleEdge)
	mux.HandleFunc("POST /v1/sessions", s.handleAcquire)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleRelease)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

// Compose mounts the dsvc API (or its proxy) in front of a node's own
// handler: /v1/* goes to api, everything else to node.
func Compose(api, node http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/", api)
	mux.Handle("/", node)
	return mux
}

// Proxy forwards /v1/* to the coordinator node hosting the engine, so
// every dinerd in the cluster serves the session API.
func Proxy(coordinator string) (http.Handler, error) {
	u, err := url.Parse(coordinator)
	if err != nil {
		return nil, err
	}
	return httputil.NewSingleHostReverseProxy(u), nil
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeInto(w, r, &req) {
		return
	}
	var (
		proc int
		err  error
	)
	if !s.do(func() { proc, err = s.eng.Register(req.Name, req.Tenant) }) {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	s.logf("registered %q as proc %d", req.Name, proc)
	writeJSON(w, http.StatusCreated, registerResponse{Name: req.Name, Proc: proc})
}

func (s *Service) handleDeregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var err error
	if !s.do(func() { err = s.eng.Deregister(name) }) {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	s.logf("deregistering %q", name)
	writeJSON(w, http.StatusAccepted, map[string]string{"name": name, "state": "retiring"})
}

func (s *Service) handleEdge(w http.ResponseWriter, r *http.Request) {
	var req edgeRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Op != "" && req.Op != "add" && req.Op != "remove" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `op must be "add" or "remove"`})
		return
	}
	var err error
	ok := s.do(func() {
		if req.Op == "remove" {
			err = s.eng.RemoveEdge(req.A, req.B)
		} else {
			err = s.eng.AddEdge(req.A, req.B)
		}
	})
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	s.logf("edge %s %s-%s staged", req.Op, req.A, req.B)
	// The commit is asynchronous (session-drain protocol): 202, and the
	// client watches /v1/status for pending_changes to drain.
	writeJSON(w, http.StatusAccepted, map[string]string{"a": req.A, "b": req.B, "state": "staged"})
}

func (s *Service) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if !decodeInto(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > s.cfg.MaxWait {
		wait = s.cfg.MaxWait
	}
	var (
		st   dsvc.SessionStatus
		aerr error
		ch   chan dsvc.SessionStatus
	)
	ok := s.do(func() {
		sess, err := s.eng.Acquire(req.Tenant, req.Resources)
		if err != nil {
			aerr = err
			return
		}
		st, _ = s.eng.SessionStatus(sess.ID())
		if !settled(st.State) && wait > 0 {
			ch = make(chan dsvc.SessionStatus, 1)
			s.waiters[st.ID] = append(s.waiters[st.ID], ch)
		}
	})
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
		return
	}
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	if ch != nil {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case got := <-ch:
			st = got
		case <-timer.C:
			// Timed out: report the current state (a waiter entry may
			// linger; settleWaiters drops it when the session settles).
			if !s.do(func() { st, _ = s.eng.SessionStatus(st.ID) }) {
				writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
				return
			}
		case <-r.Context().Done():
			return
		case <-s.stop:
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
			return
		}
	}
	code := http.StatusAccepted // admitted, not yet granted
	if st.State == dsvc.SessionGranted.String() {
		code = http.StatusCreated
	}
	s.logf("session %s %s (tenant %q over %v)", st.ID, st.State, req.Tenant, req.Resources)
	writeJSON(w, code, st)
}

func (s *Service) handleGetSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		st dsvc.SessionStatus
		ok bool
	)
	if !s.do(func() { st, ok = s.eng.SessionStatus(id) }) {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown session " + id})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		err error
		st  dsvc.SessionStatus
	)
	if !s.do(func() {
		if err = s.eng.Release(id); err == nil {
			st, _ = s.eng.SessionStatus(id)
		}
	}) {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	s.logf("session %s released", id)
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st, ok := s.Status()
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: stoppedMsg})
		return
	}
	writeJSON(w, http.StatusOK, st)
}
