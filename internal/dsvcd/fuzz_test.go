package dsvcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/dsvc"
)

// FuzzSessionAPI interprets the fuzz input as a client script — every
// two bytes one API call against a live Service — and asserts the
// properties a hostile client must not be able to break:
//
//   - no handler panics and no engine-invariant trip (a session state
//     machine driven into an illegal transition surfaces via Err);
//   - no leaked sessions: after the script, the engine's in-flight
//     windows match the live sessions exactly and no terminal session
//     still owns a resource (CheckInvariants audits both);
//   - zero exclusion violations, since every script runs with an exact
//     in-process suspicion oracle.
//
// The committed corpus under testdata/fuzz/FuzzSessionAPI seeds the
// interesting shapes: grant/release cycles, edge churn under held
// sessions, deregister races, window exhaustion, and malformed bodies.
func FuzzSessionAPI(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x20, 0x30, 0x40})
	f.Add([]byte{0x00, 0x01, 0x02, 0x10, 0x11, 0x20, 0x21, 0x30, 0x31, 0x40, 0x41})
	f.Add([]byte{0x00, 0x01, 0x10, 0x20, 0x50, 0x12, 0x30, 0x60, 0x70})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x05, 0x06, 0x07, 0x20, 0x20, 0x20, 0x20})
	f.Fuzz(func(t *testing.T, script []byte) {
		s := New(Config{Limits: dsvc.Limits{
			MaxResources:      8,
			MaxSessions:       8,
			MaxPerTenant:      4,
			MaxPendingChanges: 4,
		}})
		s.Start()
		defer s.Stop()
		h := s.Handler()

		post := func(path string, body any) {
			b, err := json.Marshal(body)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(b)))
			if rec.Code >= 500 {
				t.Fatalf("POST %s %v -> %d %s", path, body, rec.Code, rec.Body.String())
			}
		}
		req := func(method, path string) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code >= 500 {
				t.Fatalf("%s %s -> %d %s", method, path, rec.Code, rec.Body.String())
			}
		}
		name := func(arg byte) string { return fmt.Sprintf("r%d", arg%4) }

		var sessions []string
		for i := 0; i < len(script); i += 2 {
			op := script[i] >> 4
			var arg byte
			if i+1 < len(script) {
				arg = script[i+1]
			}
			switch op {
			case 0x0: // register
				post("/v1/resources", registerRequest{Name: name(arg), Tenant: fmt.Sprintf("t%d", arg%2)})
			case 0x1: // add edge
				post("/v1/edges", edgeRequest{A: name(arg), B: name(arg >> 2)})
			case 0x2: // acquire (wait 0: the fuzzer never blocks)
				res := []string{name(arg)}
				if arg%3 == 0 {
					res = append(res, name(arg>>2))
				}
				b, _ := json.Marshal(acquireRequest{Tenant: fmt.Sprintf("t%d", arg%2), Resources: res})
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sessions", bytes.NewReader(b)))
				if rec.Code >= 500 {
					t.Fatalf("acquire %v -> %d %s", res, rec.Code, rec.Body.String())
				}
				var got struct {
					ID string `json:"id"`
				}
				if json.Unmarshal(rec.Body.Bytes(), &got) == nil && got.ID != "" {
					sessions = append(sessions, got.ID)
				}
			case 0x3: // release a previously admitted session
				if len(sessions) > 0 {
					req("DELETE", "/v1/sessions/"+sessions[int(arg)%len(sessions)])
				}
			case 0x4: // release an arbitrary (likely unknown) session id
				req("DELETE", fmt.Sprintf("/v1/sessions/s%d", arg))
			case 0x5: // remove edge
				post("/v1/edges", edgeRequest{A: name(arg), B: name(arg >> 2), Op: "remove"})
			case 0x6: // deregister
				req("DELETE", "/v1/resources/"+name(arg))
			case 0x7: // poll a session
				if len(sessions) > 0 {
					req("GET", "/v1/sessions/"+sessions[int(arg)%len(sessions)])
				}
			case 0x8: // status probe
				req("GET", "/v1/status")
			default: // raw bytes straight at the decoder
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sessions", bytes.NewReader(script[i:])))
				if rec.Code >= 500 {
					t.Fatalf("raw body -> %d %s", rec.Code, rec.Body.String())
				}
			}
		}
		if err := s.Check(); err != nil {
			t.Fatalf("post-script audit: %v", err)
		}
		st, ok := s.Status()
		if !ok {
			t.Fatal("status after script")
		}
		if st.Violations != 0 {
			t.Fatalf("exclusion violations: %d", st.Violations)
		}
		// No leaked sessions: every granted session in the snapshot must
		// be one the script admitted (the engine never invents sessions).
		admitted := make(map[string]bool, len(sessions))
		for _, id := range sessions {
			admitted[id] = true
		}
		for _, ss := range st.Sessions {
			if ss.State == dsvc.SessionGranted.String() && !admitted[ss.ID] {
				t.Fatalf("granted session %s never admitted by the script", ss.ID)
			}
		}
	})
}
