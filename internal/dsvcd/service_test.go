package dsvcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dsvc"
)

// call drives one request through the handler without a network.
func call(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: non-JSON body %q", method, path, rec.Body.String())
		}
	}
	return rec, out
}

func newTestService(t *testing.T, limits dsvc.Limits) (*Service, http.Handler) {
	t.Helper()
	s := New(Config{Limits: limits})
	s.Start()
	t.Cleanup(s.Stop)
	return s, s.Handler()
}

func TestHTTPRegisterAcquireRelease(t *testing.T) {
	s, h := newTestService(t, dsvc.Limits{})
	rec, body := call(t, h, "POST", "/v1/resources", registerRequest{Name: "db", Tenant: "acme"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %v", rec.Code, body)
	}
	rec, _ = call(t, h, "POST", "/v1/resources", registerRequest{Name: "db", Tenant: "acme"})
	if rec.Code != http.StatusConflict {
		t.Fatalf("duplicate register: %d", rec.Code)
	}

	rec, body = call(t, h, "POST", "/v1/sessions", acquireRequest{Tenant: "acme", Resources: []string{"db"}, WaitMS: 1000})
	if rec.Code != http.StatusCreated {
		t.Fatalf("acquire: %d %v", rec.Code, body)
	}
	if body["state"] != "granted" {
		t.Fatalf("state = %v, want granted", body["state"])
	}
	id := body["id"].(string)

	rec, body = call(t, h, "GET", "/v1/sessions/"+id, nil)
	if rec.Code != http.StatusOK || body["state"] != "granted" {
		t.Fatalf("get session: %d %v", rec.Code, body)
	}

	rec, body = call(t, h, "DELETE", "/v1/sessions/"+id, nil)
	if rec.Code != http.StatusOK || body["state"] != "released" {
		t.Fatalf("release: %d %v", rec.Code, body)
	}
	rec, _ = call(t, h, "DELETE", "/v1/sessions/"+id, nil)
	if rec.Code != http.StatusGone {
		t.Fatalf("double release: %d", rec.Code)
	}
	rec, _ = call(t, h, "DELETE", "/v1/sessions/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown release: %d", rec.Code)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPLongPollGrant(t *testing.T) {
	s, h := newTestService(t, dsvc.Limits{})
	call(t, h, "POST", "/v1/resources", registerRequest{Name: "a", Tenant: "t"})
	call(t, h, "POST", "/v1/resources", registerRequest{Name: "b", Tenant: "t"})
	rec, _ := call(t, h, "POST", "/v1/edges", edgeRequest{A: "a", B: "b"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("add edge: %d", rec.Code)
	}
	// First session takes a; a second session over b conflicts at the
	// dining layer and must long-poll until the release.
	_, body := call(t, h, "POST", "/v1/sessions", acquireRequest{Tenant: "t", Resources: []string{"a"}, WaitMS: 2000})
	if body["state"] != "granted" {
		t.Fatalf("s1: %v", body)
	}
	s1 := body["id"].(string)

	var wg sync.WaitGroup
	wg.Add(1)
	results := make(chan map[string]any, 1)
	go func() {
		defer wg.Done()
		_, b := call(t, h, "POST", "/v1/sessions", acquireRequest{Tenant: "t", Resources: []string{"b"}, WaitMS: 5000})
		results <- b
	}()
	// Give the long-poll a moment to park, then release s1.
	time.Sleep(50 * time.Millisecond)
	call(t, h, "DELETE", "/v1/sessions/"+s1, nil)
	wg.Wait()
	b2 := <-results
	if b2["state"] != "granted" {
		t.Fatalf("long-polled session: %v", b2)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	s, h := newTestService(t, dsvc.Limits{MaxPerTenant: 1, MaxPendingChanges: 1})
	call(t, h, "POST", "/v1/resources", registerRequest{Name: "a", Tenant: "t"})
	call(t, h, "POST", "/v1/resources", registerRequest{Name: "b", Tenant: "t"})
	call(t, h, "POST", "/v1/resources", registerRequest{Name: "c", Tenant: "t"})
	_, body := call(t, h, "POST", "/v1/sessions", acquireRequest{Tenant: "t", Resources: []string{"a"}})
	rec, eb := call(t, h, "POST", "/v1/sessions", acquireRequest{Tenant: "t", Resources: []string{"b"}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("tenant window: %d %v", rec.Code, eb)
	}
	if !strings.Contains(eb["error"].(string), "backpressure") {
		t.Fatalf("window error lost the backpressure vocabulary: %v", eb["error"])
	}
	// One granted session holds the drain open, so a first change stays
	// pending and a second trips the change window.
	sid := body["id"].(string)
	rec, _ = call(t, h, "POST", "/v1/edges", edgeRequest{A: "a", B: "b"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("edge: %d", rec.Code)
	}
	rec, _ = call(t, h, "POST", "/v1/edges", edgeRequest{A: "a", B: "c"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("change window: %d", rec.Code)
	}
	call(t, h, "DELETE", "/v1/sessions/"+sid, nil)
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPEdgeLifecycleAndStatus(t *testing.T) {
	s, h := newTestService(t, dsvc.Limits{})
	for _, n := range []string{"a", "b", "c"} {
		call(t, h, "POST", "/v1/resources", registerRequest{Name: n, Tenant: "t"})
	}
	call(t, h, "POST", "/v1/edges", edgeRequest{A: "a", B: "b"})
	call(t, h, "POST", "/v1/edges", edgeRequest{A: "b", B: "c"})
	rec, _ := call(t, h, "POST", "/v1/sessions", acquireRequest{Tenant: "t", Resources: []string{"a", "b"}})
	if rec.Code != http.StatusConflict {
		t.Fatalf("conflicting set: %d", rec.Code)
	}
	call(t, h, "POST", "/v1/edges", edgeRequest{A: "a", B: "b", Op: "remove"})
	rec, body := call(t, h, "POST", "/v1/sessions", acquireRequest{Tenant: "t", Resources: []string{"a", "b"}, WaitMS: 2000})
	if rec.Code != http.StatusCreated {
		t.Fatalf("acquire after edge removal: %d %v", rec.Code, body)
	}
	call(t, h, "DELETE", "/v1/sessions/"+body["id"].(string), nil)

	rec, st := call(t, h, "GET", "/v1/status", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d", rec.Code)
	}
	if st["violations"] != float64(0) {
		t.Fatalf("violations = %v", st["violations"])
	}
	edges := st["edges"].([]any)
	if len(edges) != 1 {
		t.Fatalf("edges = %v, want only b-c", edges)
	}

	rec, _ = call(t, h, "DELETE", "/v1/resources/a", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("deregister: %d", rec.Code)
	}
	rec, _ = call(t, h, "POST", "/v1/edges", edgeRequest{A: "x", B: "a"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("edge on unknown: %d", rec.Code)
	}
	rec, _ = call(t, h, "POST", "/v1/edges", edgeRequest{A: "b", B: "b"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("self edge: %d", rec.Code)
	}
	rec, _ = call(t, h, "POST", "/v1/edges", edgeRequest{A: "b", B: "c", Op: "sever"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad op: %d", rec.Code)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPProxyReachesCoordinator(t *testing.T) {
	s, h := newTestService(t, dsvc.Limits{})
	coord := httptest.NewServer(Compose(h, http.NotFoundHandler()))
	defer coord.Close()
	proxy, err := Proxy(coord.URL)
	if err != nil {
		t.Fatalf("Proxy: %v", err)
	}
	edge := httptest.NewServer(Compose(proxy, http.NotFoundHandler()))
	defer edge.Close()

	body, _ := json.Marshal(registerRequest{Name: "db", Tenant: "t"})
	resp, err := http.Post(edge.URL+"/v1/resources", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("proxied register: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("proxied register: %d", resp.StatusCode)
	}
	st, ok := s.Status()
	if !ok || len(st.Resources) != 1 || st.Resources[0].Name != "db" {
		t.Fatalf("proxied write did not reach the engine: %+v", st)
	}
}

func TestHTTPMalformedBodies(t *testing.T) {
	s, h := newTestService(t, dsvc.Limits{})
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/v1/resources", "{"},
		{"POST", "/v1/resources", `{"nope": 1}`},
		{"POST", "/v1/sessions", `[]`},
		{"POST", "/v1/edges", `"x"`},
	} {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s %s %q: %d, want 400", tc.method, tc.path, tc.body, rec.Code)
		}
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStoppedServiceReturns503(t *testing.T) {
	s := New(Config{})
	s.Start()
	h := s.Handler()
	s.Stop()
	rec, _ := call(t, h, "GET", "/v1/status", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status after stop: %d", rec.Code)
	}
	rec, _ = call(t, h, "POST", "/v1/sessions", acquireRequest{Tenant: "t", Resources: []string{"a"}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("acquire after stop: %d", rec.Code)
	}
}

func TestManyConcurrentClients(t *testing.T) {
	s, h := newTestService(t, dsvc.Limits{})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 4; i++ {
		call(t, h, "POST", "/v1/resources", registerRequest{Name: fmt.Sprintf("r%d", i), Tenant: "t"})
	}
	call(t, h, "POST", "/v1/edges", edgeRequest{A: "r0", B: "r1"})
	call(t, h, "POST", "/v1/edges", edgeRequest{A: "r2", B: "r3"})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("r%d", c%4)
			for i := 0; i < 5; i++ {
				ab, _ := json.Marshal(acquireRequest{Tenant: fmt.Sprintf("c%d", c), Resources: []string{name}, WaitMS: 5000})
				resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(ab))
				if err != nil {
					errs <- err
					return
				}
				var got map[string]any
				json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("client %d: acquire %v -> %d %v", c, name, resp.StatusCode, got)
					return
				}
				req, _ := http.NewRequest("DELETE", srv.URL+"/v1/sessions/"+got["id"].(string), nil)
				dr, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				dr.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status()
	if st.Violations != 0 {
		t.Fatalf("violations under concurrent clients: %d", st.Violations)
	}
}
