// Package dsvcd serves the dining-as-a-service client API over HTTP:
// register/deregister resources, add/remove conflict edges, and
// acquire/release sessions with a long-poll on the grant. It wraps one
// dsvc.Engine — a deterministic, single-threaded state machine — behind
// the same closure-mailbox ownership discipline internal/remote uses
// for its peer managers: a single run goroutine owns the engine, every
// handler posts closures to its command channel, and the package needs
// no locks at all (the mailboxown analyzer enforces the annotations).
//
// A dinerd node either hosts the engine (the coordinator) and mounts
// Service.Handler on its mux, or forwards /v1/* to the coordinator with
// Proxy — so a client can speak to any node of the cluster.
package dsvcd

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dsvc"
	"repro/internal/sim"
)

// Config assembles a Service.
type Config struct {
	// Limits parameterizes the engine's admission control (zero fields
	// take dsvc defaults).
	Limits dsvc.Limits
	// MaxWait caps one long-poll's wait (default 30s).
	MaxWait time.Duration
	// Logf, when non-nil, receives request-level logging.
	Logf func(format string, args ...any)
}

// Service owns a dsvc.Engine and serializes all access through its
// mailbox goroutine.
type Service struct {
	cfg Config

	eng      *dsvc.Engine                         // owned: run
	waiters  map[string][]chan dsvc.SessionStatus // owned: run
	lastTick time.Time                            // owned: run

	cmds     chan func()
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  bool
}

// New builds (but does not start) a service.
func New(cfg Config) *Service {
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 30 * time.Second
	}
	return &Service{
		cfg:     cfg,
		eng:     dsvc.NewEngine(cfg.Limits),
		waiters: make(map[string][]chan dsvc.SessionStatus),
		cmds:    make(chan func(), 64),
		stop:    make(chan struct{}),
	}
}

// Start launches the engine-owner goroutine. Extra calls are no-ops.
func (s *Service) Start() {
	if s.started {
		return
	}
	s.started = true
	s.lastTick = time.Now()
	s.wg.Add(1)
	go s.run()
}

// Stop shuts the mailbox down; in-flight long-polls fail with 503.
func (s *Service) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// run is the engine-owner loop: it executes posted closures one at a
// time, pumps the engine's message queues to quiescence after each, and
// settles long-polls whose session reached a settled state.
func (s *Service) run() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case fn := <-s.cmds:
			s.advance()
			fn()
			s.eng.PumpAll()
			s.settleWaiters()
		}
	}
}

// advance injects wall time into the engine's logical clock (whole
// milliseconds; the remainder carries over via lastTick rounding).
func (s *Service) advance() {
	now := time.Now()
	if ms := now.Sub(s.lastTick).Milliseconds(); ms > 0 {
		s.eng.Advance(sim.Time(ms))
		s.lastTick = s.lastTick.Add(time.Duration(ms) * time.Millisecond)
	}
}

// do runs fn on the owner goroutine and waits for it; false means the
// service is stopping and fn may not have run.
func (s *Service) do(fn func()) bool {
	done := make(chan struct{})
	wrapped := func() { defer close(done); fn() }
	select {
	case s.cmds <- wrapped:
	case <-s.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-s.stop:
		return false
	}
}

// settled reports a session state string that ends a long-poll.
func settled(state string) bool {
	switch state {
	case dsvc.SessionGranted.String(), dsvc.SessionReleased.String(), dsvc.SessionFailed.String():
		return true
	}
	return false
}

// settleWaiters resolves every long-poll whose session is granted,
// terminal, or gone.
func (s *Service) settleWaiters() {
	for id, chans := range s.waiters {
		st, ok := s.eng.SessionStatus(id)
		if ok && !settled(st.State) {
			continue
		}
		if !ok {
			st = dsvc.SessionStatus{ID: id, State: "pruned"}
		}
		for _, ch := range chans {
			select {
			case ch <- st:
			default:
			}
		}
		delete(s.waiters, id)
	}
}

// Check audits the engine (used by tests and the fuzzer): the first
// internal-invariant error, or a cross-structure inconsistency.
func (s *Service) Check() error {
	var err error
	if !s.do(func() { err = s.eng.CheckInvariants() }) {
		return fmt.Errorf("dsvcd: service stopped")
	}
	return err
}

// Status snapshots the engine.
func (s *Service) Status() (dsvc.Status, bool) {
	var st dsvc.Status
	ok := s.do(func() { st = s.eng.Status() })
	return st, ok
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
