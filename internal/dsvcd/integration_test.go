package dsvcd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dsvc"
	"repro/internal/graph"
	"repro/internal/remote/cluster"
)

// TestThreeNodeDinerdWiring stands up a real 3-node dining cluster
// (loopback TCP, the dinerd composition: each node's HTTP mux serves
// its own /status plus the /v1/* session API) and drives
// register → acquire → release through *different* nodes, with a
// conflict edge added and removed at runtime. Node 0 is the dsvc
// coordinator; nodes 1 and 2 forward /v1/* to it exactly as
// `dinerd -dsvc-coordinator <url>` does.
func TestThreeNodeDinerdWiring(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	cl, err := cluster.New(g, [][]int{{0}, {1}, {2}}, cluster.Options{})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer cl.Stop()

	svc := New(Config{Limits: dsvc.Limits{}})
	svc.Start()
	defer svc.Stop()

	// dinerd mux composition: coordinator serves the engine, the other
	// nodes proxy /v1/* to it; every node keeps its own /status.
	servers := make([]*httptest.Server, 3)
	servers[0] = httptest.NewServer(Compose(svc.Handler(), cl.Nodes[0].Handler()))
	defer servers[0].Close()
	for i := 1; i < 3; i++ {
		p, perr := Proxy(servers[0].URL)
		if perr != nil {
			t.Fatalf("proxy: %v", perr)
		}
		servers[i] = httptest.NewServer(Compose(p, cl.Nodes[i].Handler()))
		defer servers[i].Close()
	}

	post := func(node int, path string, body any, wantCode int) map[string]any {
		t.Helper()
		b, merr := json.Marshal(body)
		if merr != nil {
			t.Fatalf("marshal: %v", merr)
		}
		resp, herr := http.Post(servers[node].URL+path, "application/json", bytes.NewReader(b))
		if herr != nil {
			t.Fatalf("node %d POST %s: %v", node, path, herr)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode != wantCode {
			t.Fatalf("node %d POST %s: %d (want %d): %v", node, path, resp.StatusCode, wantCode, out)
		}
		return out
	}
	do := func(node int, method, path string, wantCode int) map[string]any {
		t.Helper()
		req, rerr := http.NewRequest(method, servers[node].URL+path, nil)
		if rerr != nil {
			t.Fatalf("request: %v", rerr)
		}
		resp, herr := http.DefaultClient.Do(req)
		if herr != nil {
			t.Fatalf("node %d %s %s: %v", node, method, path, herr)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode != wantCode {
			t.Fatalf("node %d %s %s: %d (want %d): %v", node, method, path, resp.StatusCode, wantCode, out)
		}
		return out
	}

	// Register through node 1 (proxied), read back through node 2.
	for _, n := range []string{"stage", "prod", "audit"} {
		post(1, "/v1/resources", registerRequest{Name: n, Tenant: "acme"}, http.StatusCreated)
	}
	st := do(2, "GET", "/v1/status", http.StatusOK)
	if len(st["resources"].([]any)) != 3 {
		t.Fatalf("resources via proxy = %v", st["resources"])
	}

	// Add a conflict edge at runtime through node 2.
	post(2, "/v1/edges", edgeRequest{A: "stage", B: "prod"}, http.StatusAccepted)
	waitDrained := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			s := do(0, "GET", "/v1/status", http.StatusOK)
			if s["pending_changes"] == float64(0) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("graph change never committed: %v", s)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitDrained()

	// Acquire stage via node 0, then prod via node 1: the runtime edge
	// makes them conflict, so the second long-polls until the release.
	s1 := post(0, "/v1/sessions", acquireRequest{Tenant: "acme", Resources: []string{"stage"}, WaitMS: 3000}, http.StatusCreated)
	if s1["state"] != "granted" {
		t.Fatalf("s1 = %v", s1)
	}
	type result struct{ body map[string]any }
	ch := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(acquireRequest{Tenant: "acme", Resources: []string{"prod"}, WaitMS: 5000})
		resp, herr := http.Post(servers[1].URL+"/v1/sessions", "application/json", bytes.NewReader(b))
		if herr != nil {
			ch <- result{map[string]any{"error": herr.Error()}}
			return
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		ch <- result{out}
	}()
	time.Sleep(100 * time.Millisecond) // let the long-poll park
	do(2, "DELETE", "/v1/sessions/"+s1["id"].(string), http.StatusOK)
	r2 := <-ch
	if r2.body["state"] != "granted" {
		t.Fatalf("long-polled prod session = %v", r2.body)
	}
	do(0, "DELETE", "/v1/sessions/"+r2.body["id"].(string), http.StatusOK)

	// Remove the edge at runtime: stage+prod are acquirable as one set.
	post(1, "/v1/edges", edgeRequest{A: "stage", B: "prod", Op: "remove"}, http.StatusAccepted)
	waitDrained()
	s3 := post(2, "/v1/sessions", acquireRequest{Tenant: "acme", Resources: []string{"stage", "prod"}, WaitMS: 3000}, http.StatusCreated)
	if s3["state"] != "granted" {
		t.Fatalf("s3 = %v", s3)
	}
	do(1, "DELETE", "/v1/sessions/"+s3["id"].(string), http.StatusOK)

	// Every node still serves its own dining /status beside the API.
	for i := 0; i < 3; i++ {
		resp, herr := http.Get(servers[i].URL + "/status")
		if herr != nil {
			t.Fatalf("node %d /status: %v", i, herr)
		}
		var ns map[string]any
		json.NewDecoder(resp.Body).Decode(&ns)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || ns["node"] != float64(i) {
			t.Fatalf("node %d /status: %d %v", i, resp.StatusCode, ns)
		}
	}

	if err := svc.Check(); err != nil {
		t.Fatalf("engine audit: %v", err)
	}
	fst, _ := svc.Status()
	if fst.Violations != 0 {
		t.Fatalf("violations: %d", fst.Violations)
	}
	if cerr := cl.Err(); cerr != nil {
		t.Fatalf("cluster protocol error: %v", cerr)
	}
}
