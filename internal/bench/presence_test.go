package bench

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotPathBench maps every exported hot-path function family in
// internal/wire to the registered benchmark that measures it. A new
// exported function must either join a family here or be explicitly
// exempted below — otherwise the transport fast path grows unmeasured
// surface and this test fails.
var hotPathBench = map[string]string{
	// Encode family: every byte the transport emits goes through these.
	"AppendPayload": "WireEncodeData",
	"AppendFrame":   "WireEncodeData",
	"EncodePayload": "WireEncodeData",
	"WriteFrame":    "LinkLoopbackPerFrame",
	// Decode family: every byte the transport accepts.
	"DecodePayload":     "WireDecodeData",
	"DecodePayloadInto": "WireDecodeData",
	"ReadFrame":         "WireReadFrameLegacy",
	"NewDecoder":        "WireDecoderStream",
	"Decoder.Next":      "WireDecoderStream",
}

// benchExempt lists exported wire functions that are deliberately not
// benchmarked: constructors of constant-size values, accessors, and
// retention helpers that run off the hot path.
var benchExempt = map[string]string{
	"DataFrame":        "frame construction: fixed field copies, measured transitively by WireEncodeData",
	"FrameSize":        "constant-time size arithmetic inside WireEncodeData's setup",
	"Frame.Clone":      "copy-on-retain escape hatch; deliberately off the zero-copy hot path",
	"Decoder.More":     "non-blocking buffer probe, no I/O or parsing",
	"Decoder.Buffered": "accessor",
	"Frame.Message":    "field repackaging on delivery, measured transitively by the link benches",
	"Frame.String":     "debug formatting, never on the hot path",
	"FrameKind.String": "debug formatting, never on the hot path",
}

// wireExported parses internal/wire (sources only, no test files) and
// returns every exported function and method as Name or Recv.Name.
func wireExported(t *testing.T) []string {
	t.Helper()
	dir := filepath.Join("..", "wire")
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var names []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() {
					continue
				}
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					recv := fd.Recv.List[0].Type
					if star, ok := recv.(*ast.StarExpr); ok {
						recv = star.X
					}
					if id, ok := recv.(*ast.Ident); ok {
						if !id.IsExported() {
							continue
						}
						name = id.Name + "." + name
					}
				}
				names = append(names, name)
			}
		}
	}
	return names
}

// TestWireHotPathHasBenchmarks is the presence gate: every exported
// function in internal/wire maps to a registered remote-family
// benchmark or carries an explicit exemption, and every referenced
// benchmark actually exists in the registry.
func TestWireHotPathHasBenchmarks(t *testing.T) {
	for _, name := range wireExported(t) {
		caseName, hot := hotPathBench[name]
		_, exempt := benchExempt[name]
		switch {
		case hot && exempt:
			t.Errorf("%s is both benchmarked and exempted; pick one", name)
		case !hot && !exempt:
			t.Errorf("exported wire function %s has no benchmark: add it to a family in hotPathBench or exempt it with a reason", name)
		case hot:
			if c, ok := Lookup(caseName); !ok {
				t.Errorf("%s references unregistered benchmark %s", name, caseName)
			} else if c.Family != FamilyRemote {
				t.Errorf("benchmark %s for %s is family %q, want %q", caseName, name, c.Family, FamilyRemote)
			}
		}
	}
}

// TestRemoteFamilyRegistered pins the remote family's composition: the
// transport fast path must keep its before/after throughput pair and
// the netsim latency probe alongside the codec micro-benches.
func TestRemoteFamilyRegistered(t *testing.T) {
	want := map[string]bool{
		"WireEncodeData":       false,
		"WireDecodeData":       false,
		"WireDecoderStream":    false,
		"WireReadFrameLegacy":  false,
		"LinkLoopbackPerFrame": false,
		"LinkLoopbackBatched":  false,
		"LinkLatencyP99Netsim": false,
	}
	for _, c := range Cases() {
		if c.Family != FamilyRemote {
			continue
		}
		if _, ok := want[c.Name]; !ok {
			t.Errorf("remote-family case %s is not in the pinned set; extend this test and BENCH_remote.json together", c.Name)
			continue
		}
		want[c.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("remote family lost case %s", name)
		}
	}
}

// TestBenchRemoteJSONCoversFamily keeps the committed BENCH_remote.json
// honest: it must hold a measurement for every remote-family case, so
// the CI gate never silently shrinks its coverage.
func TestBenchRemoteJSONCoversFamily(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_remote.json"))
	if err != nil {
		t.Fatalf("committed baseline missing (regenerate with `go run ./cmd/bench -family remote -out BENCH_remote.json`): %v", err)
	}
	var f struct {
		Results []struct {
			Name string `json:"name"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("BENCH_remote.json: %v", err)
	}
	have := map[string]bool{}
	for _, r := range f.Results {
		have[r.Name] = true
	}
	for _, c := range Cases() {
		if c.Family == FamilyRemote && !have[c.Name] {
			t.Errorf("BENCH_remote.json lacks %s; regenerate with `go run ./cmd/bench -family remote -out BENCH_remote.json`", c.Name)
		}
	}
}
