package bench

import (
	"bytes"
	"net"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// The remote family measures the wire→diner→wire hot path: codec
// encode/decode cost (ns/op and, critically, allocs/op — the zero-copy
// decode contract is 0), loopback link throughput per-frame vs
// coalesced (the ≥10× msgs/sec story), and p99 frame latency under
// netsim-scheduled load. cmd/bench -family remote emits them into the
// committed BENCH_remote.json.

// benchDataFrame is the canonical hot-path frame: one dining message
// with a piggybacked cumulative ack, exactly what submit encodes.
func benchDataFrame(seq uint64) wire.Frame {
	f, err := wire.DataFrame(core.Message{Kind: core.Request, From: 3, To: 8, Color: 5}, seq, seq-1)
	if err != nil {
		panic(err)
	}
	return f
}

// WireEncodeData measures the submit-side encode: one Data frame
// rendered into a reused buffer (the transport allocates exactly once
// per queued frame via FrameSize; amortized here to isolate encode
// cost).
func WireEncodeData(b *testing.B) {
	fr := benchDataFrame(42)
	buf := make([]byte, 0, wire.FrameSize(fr))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.AppendFrame(buf[:0], fr)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = buf
}

// WireDecodeData measures the zero-copy payload decode: one Data
// payload parsed in place into a reused Frame. The contract is 0
// allocs/op.
func WireDecodeData(b *testing.B) {
	payload, err := wire.EncodePayload(benchDataFrame(42))
	if err != nil {
		b.Fatal(err)
	}
	var fr wire.Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.DecodePayloadInto(&fr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// WireDecoderStream measures the full streaming decode path — length
// prefix, buffered reassembly, payload parse — through wire.Decoder on
// a prebuilt frame stream. Also 0 allocs/op: frames are views into the
// decoder's reused read buffer.
func WireDecoderStream(b *testing.B) {
	const frames = 512
	var stream []byte
	for i := 1; i <= frames; i++ {
		var err error
		stream, err = wire.AppendFrame(stream, benchDataFrame(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
	}
	src := bytes.NewReader(stream)
	dec := wire.NewDecoder(src)
	var fr wire.Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Next(&fr); err != nil {
			b.Fatal(err)
		}
		if i%frames == frames-1 {
			b.StopTimer()
			src.Reset(stream)
			dec = wire.NewDecoder(src)
			b.StartTimer()
		}
	}
}

// WireReadFrameLegacy is the before-contrast: the per-frame
// make([]byte, n) read path the zero-copy decoder replaced. Kept as a
// benchmark so BENCH_remote.json always shows the allocation gap.
func WireReadFrameLegacy(b *testing.B) {
	frame, err := wire.AppendFrame(nil, benchDataFrame(42))
	if err != nil {
		b.Fatal(err)
	}
	src := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(frame)
		if _, err := wire.ReadFrame(src); err != nil {
			b.Fatal(err)
		}
	}
}

// loopbackPair returns a connected TCP pair on 127.0.0.1.
func loopbackPair(b *testing.B) (client, server net.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Skipf("loopback listen unavailable: %v", err)
	}
	defer ln.Close()
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		ch <- acc{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		client.Close()
		b.Fatal(a.err)
	}
	b.Cleanup(func() { client.Close(); a.c.Close() })
	return client, a.c
}

// LinkLoopbackPerFrame is the before side of the throughput story: one
// encode allocation, one write syscall, and one per-frame body
// allocation on the read side, per message, over real loopback TCP.
// Reported as msgs/sec.
func LinkLoopbackPerFrame(b *testing.B) {
	client, server := loopbackPair(b)
	fr := benchDataFrame(42)
	errc := make(chan error, 1)
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			if err := wire.WriteFrame(client, fr); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < b.N; i++ {
		if _, err := wire.ReadFrame(server); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-errc; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
}

// LinkLoopbackBatched is the after side: frames pre-encoded once (the
// send ring stores encodings), gathered 64 at a time into one
// net.Buffers writev, decoded zero-copy on the far end. The acceptance
// target is ≥10× LinkLoopbackPerFrame's msgs/sec.
func LinkLoopbackBatched(b *testing.B) {
	const batch = 64
	client, server := loopbackPair(b)
	encoded := make([][]byte, batch)
	for i := range encoded {
		buf, err := wire.AppendFrame(nil, benchDataFrame(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		encoded[i] = buf
	}
	dec := wire.NewDecoder(server)
	var fr wire.Frame
	errc := make(chan error, 1)
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		bufs := make(net.Buffers, 0, batch)
		sent := 0
		for sent < b.N {
			n := batch
			if rem := b.N - sent; n > rem {
				n = rem
			}
			bufs = append(bufs[:0], encoded[:n]...)
			if _, err := bufs.WriteTo(client); err != nil {
				errc <- err
				return
			}
			sent += n
		}
		errc <- nil
	}()
	for i := 0; i < b.N; i++ {
		if err := dec.Next(&fr); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-errc; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
}

// LinkLatencyP99Netsim measures tail frame latency under
// netsim-scheduled load: a seeded virtual-time link (200µs ± 100µs
// jitter) carries a paced stream of data frames, and each frame's
// delivery latency is observed in virtual time. Deterministic per seed
// up to reader scheduling lag; reported as p99_frame_ms.
func LinkLatencyP99Netsim(b *testing.B) {
	var p99 time.Duration
	for i := 0; i < b.N; i++ {
		p99 = netsimLatencyRun(b)
	}
	b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99_frame_ms")
}

func netsimLatencyRun(b *testing.B) time.Duration {
	const (
		frames   = 512
		interval = 50 * time.Microsecond
	)
	clk := netsim.NewClock()
	clk.Yield = 0
	nw := netsim.NewNet(clk, 42)
	nw.SetLink("a", "b", 200*time.Microsecond, 100*time.Microsecond)
	ln, err := nw.Host("b").Listen()
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		ch <- acc{c, err}
	}()
	client, err := nw.Host("a").Dial("b")
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	a := <-ch
	if a.err != nil {
		b.Fatal(a.err)
	}
	defer a.c.Close()

	// Pace the sends on virtual time: frame i leaves at (i+1)*interval,
	// written from the clock's timer context so send times are exact.
	for i := 0; i < frames; i++ {
		buf, err := wire.AppendFrame(nil, benchDataFrame(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		frame := buf
		clk.AfterFunc(time.Duration(i+1)*interval, func() { client.Write(frame) })
	}

	lats := make([]time.Duration, 0, frames)
	done := make(chan struct{})
	go func() {
		defer close(done)
		dec := wire.NewDecoder(a.c)
		var fr wire.Frame
		for len(lats) < frames {
			if err := dec.Next(&fr); err != nil {
				return
			}
			sentAt := time.Duration(fr.Seq) * interval
			lats = append(lats, clk.Elapsed()-sentAt)
		}
	}()
	deadline := time.Duration(frames+1)*interval + 100*time.Millisecond
	for waited := time.Duration(0); waited < deadline; waited += time.Millisecond {
		select {
		case <-done:
			waited = deadline
		default:
			clk.Advance(time.Millisecond)
		}
	}
	<-done
	if len(lats) != frames {
		b.Fatalf("received %d/%d frames", len(lats), frames)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[(len(lats)*99)/100]
}
