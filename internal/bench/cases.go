// Package bench hosts the repository's benchmark bodies in one
// registry shared by two front ends: the root bench_test.go wraps each
// case as a conventional `go test -bench` target, and cmd/bench runs
// the same cases via testing.Benchmark to emit machine-readable
// BENCH_sweep.json (with a -baseline regression gate). Keeping one
// body per case guarantees the two front ends can never measure
// different code.
package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/mc"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/sweep"
)

// Benchmark families. Each family feeds its own committed baseline
// file: sweep cases emit BENCH_sweep.json, remote (transport) cases
// emit BENCH_remote.json, and cmd/bench -family selects one.
const (
	FamilySweep  = "sweep"
	FamilyRemote = "remote"
)

// Case is one registered benchmark.
type Case struct {
	// Name is the benchmark name without the "Benchmark" prefix.
	Name string
	// Family groups cases for selection (cmd/bench -family) and ties
	// each to its committed baseline file.
	Family string
	// Quick marks the case for cmd/bench -quick smoke runs (fast
	// micro-benchmarks and the small sweep, suitable for CI).
	Quick bool
	Fn    func(b *testing.B)
}

// Cases returns the registry in fixed order.
func Cases() []Case {
	sweep := func(name string, quick bool, fn func(b *testing.B)) Case {
		return Case{Name: name, Family: FamilySweep, Quick: quick, Fn: fn}
	}
	remote := func(name string, quick bool, fn func(b *testing.B)) Case {
		return Case{Name: name, Family: FamilyRemote, Quick: quick, Fn: fn}
	}
	return []Case{
		sweep("E1SafetyMistakes", false, E1SafetyMistakes),
		sweep("E2WaitFreedom", false, E2WaitFreedom),
		sweep("E3BoundedWaiting", false, E3BoundedWaiting),
		sweep("E3ForksBaseline", false, E3ForksBaseline),
		sweep("E4ChannelBound", false, E4ChannelBound),
		sweep("E5Quiescence", false, E5Quiescence),
		sweep("E6SpaceBound", true, E6SpaceBound),
		sweep("E7Stabilization", false, E7Stabilization),
		sweep("E8ScalabilityRing64", false, E8ScalabilityRing64),
		sweep("E8ScalabilityClique12", false, E8ScalabilityClique12),
		sweep("E9ModelCheck", false, E9ModelCheck),
		sweep("E11LossyLinks", false, E11LossyLinks),
		sweep("A1RepliedAblation", false, A1RepliedAblation),
		sweep("A2DetectorSweep", false, A2DetectorSweep),
		sweep("A3KBound", false, A3KBound),
		sweep("SweepE8Workers1", false, SweepE8Workers1),
		sweep("SweepE8WorkersMax", false, SweepE8WorkersMax),
		sweep("CoreDinerCycle", true, CoreDinerCycle),
		sweep("KernelThroughput", true, KernelThroughput),
		sweep("NetworkSendDeliver", true, NetworkSendDeliver),
		sweep("GreedyColoring", true, GreedyColoring),
		remote("WireEncodeData", true, WireEncodeData),
		remote("WireDecodeData", true, WireDecodeData),
		remote("WireDecoderStream", true, WireDecoderStream),
		remote("WireReadFrameLegacy", true, WireReadFrameLegacy),
		remote("LinkLoopbackPerFrame", true, LinkLoopbackPerFrame),
		remote("LinkLoopbackBatched", true, LinkLoopbackBatched),
		remote("LinkLatencyP99Netsim", false, LinkLatencyP99Netsim),
	}
}

// Lookup returns the named case, or false.
func Lookup(name string) (Case, bool) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}

// benchExecute runs one harness spec per iteration, varying the seed,
// and reports an aggregate metric.
func benchExecute(b *testing.B, mkSpec func(seed int64) harness.Spec, metric func(harness.Result) (string, float64)) {
	b.Helper()
	var agg float64
	var name string
	for i := 0; i < b.N; i++ {
		res, err := harness.Execute(mkSpec(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if res.InvariantErr != nil {
			b.Fatal(res.InvariantErr)
		}
		n, v := metric(res)
		name = n
		if v > agg {
			agg = v
		}
	}
	if name != "" {
		b.ReportMetric(agg, name)
	}
}

// E1SafetyMistakes measures Theorem 1: exclusion mistakes per
// hostile-detector run (all pre-convergence).
func E1SafetyMistakes(b *testing.B) {
	hp := harness.DefaultHeartbeatParams()
	hp.PreNoise = 80
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:     graph.Ring(16),
			Seed:      seed,
			Algorithm: harness.Algorithm1,
			Detector:  harness.DetectorHeartbeat,
			Heartbeat: hp,
			Workload:  runner.Saturated(),
			Horizon:   15000,
		}
	}, func(res harness.Result) (string, float64) {
		// All violations must predate convergence; report the count.
		conv := res.FDLastMistakeEnd + 100
		if after := res.ViolationsAfter(conv); after != 0 {
			b.Fatalf("%d violations after detector convergence", after)
		}
		return "mistakes/run", float64(res.Violations)
	})
}

// E2WaitFreedom measures Theorem 2: a half-ring crash storm with zero
// starvation.
func E2WaitFreedom(b *testing.B) {
	benchExecute(b, func(seed int64) harness.Spec {
		spec := harness.Spec{
			Graph:     graph.Ring(16),
			Seed:      seed,
			Algorithm: harness.Algorithm1,
			Detector:  harness.DetectorHeartbeat,
			Heartbeat: harness.DefaultHeartbeatParams(),
			Workload:  runner.Saturated(),
			Horizon:   20000,
		}
		for c := 0; c < 8; c++ {
			spec.Crashes = append(spec.Crashes, harness.Crash{At: sim.Time(2500 + 200*c), ID: 2 * c})
		}
		return spec
	}, func(res harness.Result) (string, float64) {
		if len(res.Starving) != 0 {
			b.Fatalf("starving: %v", res.Starving)
		}
		return "live-sessions/run", float64(res.LiveCompleted())
	})
}

// E3BoundedWaiting measures Theorem 3 on the adversarial path:
// Algorithm 1's max consecutive overtakes (must be ≤ 2).
func E3BoundedWaiting(b *testing.B) {
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:     graph.Path(3),
			Colors:    []int{1, 0, 2},
			Seed:      seed,
			Delays:    sim.FixedDelay{D: 2},
			Algorithm: harness.Algorithm1,
			Workload:  runner.Saturated(),
			Horizon:   15000,
		}
	}, func(res harness.Result) (string, float64) {
		if res.MaxOvertake > 2 {
			b.Fatalf("overtakes = %d, exceeds paper bound", res.MaxOvertake)
		}
		return "max-overtakes", float64(res.MaxOvertake)
	})
}

// E3ForksBaseline shows the contrast: the doorway-free baseline
// overtakes without bound on the same workload.
func E3ForksBaseline(b *testing.B) {
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:     graph.Path(3),
			Colors:    []int{1, 0, 2},
			Seed:      seed,
			Delays:    sim.FixedDelay{D: 2},
			Algorithm: harness.Forks,
			Workload:  runner.Saturated(),
			Horizon:   15000,
		}
	}, func(res harness.Result) (string, float64) {
		return "max-overtakes", float64(res.MaxOvertake)
	})
}

// E4ChannelBound measures the Section 7 per-edge occupancy bound under
// heavy delay variance.
func E4ChannelBound(b *testing.B) {
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:     graph.Clique(6),
			Seed:      seed,
			Delays:    sim.UniformDelay{Min: 1, Max: 50},
			Algorithm: harness.Algorithm1,
			Workload:  runner.Saturated(),
			Horizon:   15000,
		}
	}, func(res harness.Result) (string, float64) {
		if res.OccupancyHW > 4 {
			b.Fatalf("occupancy = %d, exceeds paper bound", res.OccupancyHW)
		}
		return "max-edge-occupancy", float64(res.OccupancyHW)
	})
}

// E5Quiescence measures residual traffic to crashed processes.
func E5Quiescence(b *testing.B) {
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:          graph.Ring(8),
			Seed:           seed,
			Algorithm:      harness.Algorithm1,
			Detector:       harness.DetectorPerfect,
			PerfectLatency: 20,
			Workload:       runner.Saturated(),
			Crashes:        []harness.Crash{{At: 1000, ID: 3}},
			Horizon:        15000,
		}
	}, func(res harness.Result) (string, float64) {
		if !res.QuiescentLastHalf {
			b.Fatal("not quiescent by mid-run")
		}
		return "sends-after-crash", float64(res.SendsToCrashed)
	})
}

// E6SpaceBound measures per-process protocol state on a clique (the
// worst case, δ = n-1).
func E6SpaceBound(b *testing.B) {
	g := graph.Clique(16)
	colors := g.GreedyColoring()
	var bits int
	for i := 0; i < b.N; i++ {
		bits = 0
		for v := 0; v < g.N(); v++ {
			nbrColors := make(map[int]int)
			for _, j := range g.Neighbors(v) {
				nbrColors[j] = colors[j]
			}
			d, err := core.NewDiner(core.Config{ID: v, Color: colors[v], NeighborColors: nbrColors})
			if err != nil {
				b.Fatal(err)
			}
			if s := d.SpaceBits(); s > bits {
				bits = s
			}
		}
	}
	b.ReportMetric(float64(bits), "bits/process")
}

// E7Stabilization measures convergence of a stabilizing protocol under
// the wait-free daemon with a crash.
func E7Stabilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := graph.Ring(10)
		proto := stabilize.NewColoring(g)
		var ad *stabilize.DaemonAdapter
		r, err := runner.New(runner.Config{
			Graph: g,
			Seed:  int64(i + 1),
			NewDetector: func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
				return detector.NewPerfect(k, gg, 15)
			},
			Workload: runner.Saturated(),
			OnTransition: func(at sim.Time, id int, from, to core.State) {
				ad.OnTransition(at, id, from, to)
			},
			OnCrash: func(at sim.Time, id int) { ad.OnCrash(at, id) },
		})
		if err != nil {
			b.Fatal(err)
		}
		ad = stabilize.NewDaemonAdapter(proto, g.Neighbors, r.Kernel().Now, r.Kernel().Rand())
		r.CrashAt(1000, 2)
		r.Run(15000)
		if err := r.CheckInvariants(); err != nil {
			b.Fatal(err)
		}
		if _, ok := ad.Converged(); !ok {
			b.Fatal("did not converge")
		}
	}
}

// e8Ring64Spec is the spec shared by the single-run E8 benchmark and
// the sweep benchmarks, so their numbers divide cleanly.
func e8Ring64Spec(seed int64) harness.Spec {
	return harness.Spec{
		Graph:     graph.Ring(64),
		Seed:      seed,
		Delays:    sim.UniformDelay{Min: 1, Max: 3},
		Algorithm: harness.Algorithm1,
		Workload:  runner.Saturated(),
		Horizon:   10000,
	}
}

// E8ScalabilityRing64 profiles throughput on the largest sparse
// topology of the E8 sweep.
func E8ScalabilityRing64(b *testing.B) {
	benchExecute(b, e8Ring64Spec, func(res harness.Result) (string, float64) {
		return "sessions/run", float64(res.Sessions.Completed)
	})
}

// E8ScalabilityClique12 profiles the dense extreme.
func E8ScalabilityClique12(b *testing.B) {
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:     graph.Clique(12),
			Seed:      seed,
			Delays:    sim.UniformDelay{Min: 1, Max: 3},
			Algorithm: harness.Algorithm1,
			Workload:  runner.Saturated(),
			Horizon:   10000,
		}
	}, func(res harness.Result) (string, float64) {
		return "sessions/run", float64(res.Sessions.Completed)
	})
}

// E9ModelCheck measures exhaustive P2+1crash verification (590 states,
// every interleaving, wait-freedom included).
func E9ModelCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		checker, err := mc.New(graph.Path(2), mc.Options{MaxCrashes: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := checker.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Closed || rep.Violation != nil {
			b.Fatalf("closed=%v violation=%v", rep.Closed, rep.Violation)
		}
	}
}

// E11LossyLinks measures the rlink sublayer masking a 10% drop + 10%
// duplication adversary: Algorithm 1 must stay wait-free (no
// starvation) and within the suffix overtake bound; the metric is the
// retransmission cost of the masking.
func E11LossyLinks(b *testing.B) {
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:     graph.Ring(8),
			Seed:      seed,
			Algorithm: harness.Algorithm1,
			Detector:  harness.DetectorHeartbeat,
			Heartbeat: harness.DefaultHeartbeatParams(),
			Workload:  runner.Saturated(),
			Horizon:   15000,
			Faults:    &sim.FaultPlan{DropP: 0.10, DupP: 0.10, HealAt: 8000},
			Reliable:  true,
		}
	}, func(res harness.Result) (string, float64) {
		if len(res.Starving) != 0 {
			b.Fatalf("starving over rlink: %v", res.Starving)
		}
		if res.MaxOvertakeSuffix > 2 {
			b.Fatalf("suffix overtakes = %d over rlink", res.MaxOvertakeSuffix)
		}
		return "retransmits/run", float64(res.Retransmits)
	})
}

// A1RepliedAblation measures the original doorway's overtaking on the
// adversarial star (compare with E3BoundedWaiting).
func A1RepliedAblation(b *testing.B) {
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:     graph.Star(5),
			Seed:      seed,
			Delays:    sim.SpikeDelay{Base: 2, Spike: 300, SpikeP: 0.1},
			Algorithm: harness.Algorithm1NoReplied,
			Workload:  runner.Saturated(),
			Horizon:   15000,
		}
	}, func(res harness.Result) (string, float64) {
		return "max-overtakes", float64(res.MaxOvertake)
	})
}

// A2DetectorSweep measures detector mistakes at the noisiest sweep
// point.
func A2DetectorSweep(b *testing.B) {
	hp := harness.DefaultHeartbeatParams()
	hp.Period = 3
	hp.InitialTimeout = 6
	hp.PreNoise = 120
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:     graph.Ring(8),
			Seed:      seed,
			Algorithm: harness.Algorithm1,
			Detector:  harness.DetectorHeartbeat,
			Heartbeat: hp,
			Workload:  runner.Saturated(),
			Horizon:   15000,
		}
	}, func(res harness.Result) (string, float64) {
		return "false-positives", float64(res.FDFalsePositives)
	})
}

// A3KBound measures the generalized (m+1)-bounded doorway at m = 3 on
// the adversarial star (compare with E3BoundedWaiting at m = 1).
func A3KBound(b *testing.B) {
	const m = 3
	benchExecute(b, func(seed int64) harness.Spec {
		return harness.Spec{
			Graph:          graph.Star(5),
			Seed:           seed,
			Delays:         sim.SpikeDelay{Base: 2, Spike: 300, SpikeP: 0.1},
			Algorithm:      harness.Algorithm1,
			AcksPerSession: m,
			Workload:       runner.Saturated(),
			Horizon:        15000,
		}
	}, func(res harness.Result) (string, float64) {
		if res.MaxOvertake > m+1 {
			b.Fatalf("overtakes = %d, exceeds k = m+1 = %d", res.MaxOvertake, m+1)
		}
		return "max-overtakes", float64(res.MaxOvertake)
	})
}

// sweepE8 drives the acceptance-criterion sweep: the 8-seed E8 ring64
// batch through the worker pool. Workers=1 vs workers=GOMAXPROCS
// isolates the pool's parallel speedup on one fixed workload.
func sweepE8(b *testing.B, workers int) {
	specs := sweep.SeedRange(e8Ring64Spec(0), 1, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sweep.Run(specs, sweep.Options{Workers: workers})
		if rep.FirstFailure != nil {
			b.Fatal(rep.FirstFailure.FailureNote())
		}
	}
}

// SweepE8Workers1 is the sequential floor of the sweep comparison.
func SweepE8Workers1(b *testing.B) { sweepE8(b, 1) }

// SweepE8WorkersMax is the same batch across all cores.
func SweepE8WorkersMax(b *testing.B) { sweepE8(b, 0) }

// CoreDinerCycle micro-benchmarks one complete hungry cycle of the raw
// state machine (two diners, hand-pumped messages).
func CoreDinerCycle(b *testing.B) {
	hi, err := core.NewDiner(core.Config{ID: 0, Color: 2, NeighborColors: map[int]int{1: 1}})
	if err != nil {
		b.Fatal(err)
	}
	lo, err := core.NewDiner(core.Config{ID: 1, Color: 1, NeighborColors: map[int]int{0: 2}})
	if err != nil {
		b.Fatal(err)
	}
	diners := map[int]*core.Diner{0: hi, 1: lo}
	b.ReportAllocs()
	b.ResetTimer()
	queue := make([]core.Message, 0, 16)
	for i := 0; i < b.N; i++ {
		queue = append(queue[:0], hi.BecomeHungry()...)
		queue = append(queue, lo.BecomeHungry()...)
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			queue = append(queue, diners[m.To].Deliver(m)...)
		}
		for _, d := range diners {
			if d.State() == core.Eating {
				queue = append(queue, d.ExitEating()...)
			}
		}
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			queue = append(queue, diners[m.To].Deliver(m)...)
		}
		for _, d := range diners {
			if d.State() == core.Eating {
				d.ExitEating()
			}
		}
		if hi.Err() != nil || lo.Err() != nil {
			b.Fatal(hi.Err(), lo.Err())
		}
	}
}

// KernelThroughput micro-benchmarks raw event scheduling.
func KernelThroughput(b *testing.B) {
	k := sim.NewKernel(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(1, func() {})
		k.Step()
	}
}

// NetworkSendDeliver micro-benchmarks one message round trip through
// the simulated FIFO network.
func NetworkSendDeliver(b *testing.B) {
	k := sim.NewKernel(1)
	net := sim.NewNetwork(k, 2, sim.FixedDelay{D: 1})
	if err := net.Register(1, func(int, any) {}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Send(0, 1, i); err != nil {
			b.Fatal(err)
		}
		k.Step()
	}
}

// GreedyColoring micro-benchmarks the priority-assignment substrate on
// a dense graph.
func GreedyColoring(b *testing.B) {
	g := graph.Clique(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		colors := g.GreedyColoring()
		if !g.IsProperColoring(colors) {
			b.Fatal("improper coloring")
		}
	}
}
