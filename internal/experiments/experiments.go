// Package experiments assembles, executes, and reports the
// reproduction experiments E1–E11 and the ablations A1–A4 catalogued
// in DESIGN.md. Each experiment method returns text tables whose rows
// are recorded in EXPERIMENTS.md; cmd/experiments regenerates them all
// and bench_test.go wraps each one in a benchmark.
//
// Experiments whose rows are independent harness runs execute through
// the internal/sweep worker pool, so a multi-core host fills every
// core; results (and row order) are identical at any worker count.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/sweep"
)

// Suite runs the experiment catalogue with one seed and a fixed
// worker-pool size.
type Suite struct {
	// Seed feeds every simulation in the catalogue.
	Seed int64
	// Workers is the sweep pool size; <=0 means GOMAXPROCS.
	Workers int
}

// New returns a Suite at the given seed; workers <= 0 selects
// GOMAXPROCS.
func New(seed int64, workers int) *Suite {
	return &Suite{Seed: seed, Workers: workers}
}

// sweepRun executes specs through the worker pool.
func (s *Suite) sweepRun(specs []harness.Spec) *sweep.Report {
	return sweep.Run(specs, sweep.Options{Workers: s.Workers})
}

// ok reports whether the outcome completed cleanly; otherwise it adds
// an ERROR / INVARIANT-VIOLATION row whose note carries the full spec
// identity (graph, algorithm, detector, seed, ...) so a failed sweep
// cell is reproducible from the printed table alone.
func ok(t *harness.Table, o *sweep.Outcome) bool {
	switch {
	case o.Err != nil:
		t.AddRow("ERROR", o.FailureNote())
		return false
	case o.Result.InvariantErr != nil:
		t.AddRow("INVARIANT-VIOLATION", o.FailureNote())
		return false
	default:
		return true
	}
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// E1Safety measures Theorem 1: with a real ◇P₁ under hostile pre-GST
// delays, exclusion mistakes happen only finitely often and cease once
// the detector stops making mistakes.
func (s *Suite) E1Safety() *harness.Table {
	t := &harness.Table{
		ID:     "E1",
		Title:  "Eventual weak exclusion under a convergent ◇P₁ (Theorem 1)",
		Claim:  "finitely many exclusion mistakes per run; none after the detector converges",
		Header: []string{"topology", "n", "FD false-pos", "FD last mistake", "violations", "last violation", "viol after conv", "ok"},
	}
	hp := harness.DefaultHeartbeatParams()
	hp.PreNoise = 80 // hostile: force detector mistakes before GST
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", graph.Ring(16)},
		{"grid", graph.Grid(4, 4)},
		{"clique", graph.Clique(8)},
	}
	specs := make([]harness.Spec, len(cases))
	for i, c := range cases {
		specs[i] = harness.Spec{
			Graph:     c.g,
			Seed:      s.Seed,
			Algorithm: harness.Algorithm1,
			Detector:  harness.DetectorHeartbeat,
			Heartbeat: hp,
			Workload:  runner.Saturated(),
			Horizon:   40000,
		}
	}
	for i, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		conv := res.FDLastMistakeEnd + 100 // drain slack for in-flight eats
		after := res.ViolationsAfter(conv)
		t.AddRow(cases[i].name, cases[i].g.N(), res.FDFalsePositives, res.FDLastMistake,
			res.Violations, res.LastViolation, after, yesno(after == 0))
	}
	return t
}

// E2WaitFreedom measures Theorem 2: Algorithm 1 completes every correct
// hungry session regardless of crash count, while the detector-free
// Choy–Singh doorway starves neighbors of crashed processes.
func (s *Suite) E2WaitFreedom() *harness.Table {
	t := &harness.Table{
		ID:     "E2",
		Title:  "Wait-free progress under crash storms (Theorem 2)",
		Claim:  "every correct hungry process eventually eats, for any number of crashes; without ◇P₁, crashes starve correct processes",
		Header: []string{"algorithm", "crashes", "live sessions done", "starving live", "min live sessions", "ok"},
	}
	const n = 16
	var specs []harness.Spec
	for _, f := range []int{0, 1, 4, 8, 15} {
		for _, alg := range []harness.Algorithm{harness.Algorithm1, harness.ChoySingh, harness.HygienicFD, harness.Hygienic} {
			spec := harness.Spec{
				Graph:     graph.Ring(n),
				Seed:      s.Seed,
				Algorithm: alg,
				Workload:  runner.Saturated(),
				Horizon:   40000,
			}
			if alg == harness.Algorithm1 || alg == harness.HygienicFD {
				spec.Detector = harness.DetectorHeartbeat
				spec.Heartbeat = harness.DefaultHeartbeatParams()
			}
			for c := 0; c < f; c++ {
				spec.Crashes = append(spec.Crashes, harness.Crash{At: sim.Time(2500 + 200*c), ID: c})
			}
			specs = append(specs, spec)
		}
	}
	for _, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		alg := out.Spec.Algorithm
		f := len(out.Spec.Crashes)
		crashed := make(map[int]bool)
		for _, c := range out.Spec.Crashes {
			crashed[c.ID] = true
		}
		minLive := -1
		for i, done := range res.PerProcess {
			if crashed[i] {
				continue
			}
			if minLive < 0 || done < minLive {
				minLive = done
			}
		}
		okRun := len(res.Starving) == 0
		if (alg == harness.ChoySingh || alg == harness.Hygienic) && f > 0 {
			okRun = len(res.Starving) > 0 // the expected failure
		}
		t.AddRow(alg, f, res.LiveCompleted(), len(res.Starving), minLive, yesno(okRun))
	}
	return t
}

// e3StarDelays slows one leaf's link to the hub: the hub's doorway
// passage then waits ~slowLink ticks for that leaf's ack while the
// other leaves cycle fast. Under the original doorway the hub re-acks
// every fast leaf each cycle, so they overtake it without bound; the
// replied flag caps them at two.
func e3StarDelays(hub, slowLeaf int) sim.DelayModel {
	return sim.DelayFunc(func(_ sim.Time, from, to int, _ *rand.Rand) sim.Time {
		if from == slowLeaf && to == hub {
			return 400
		}
		return 2
	})
}

// E3BoundedWaiting measures Theorem 3: in the converged suffix,
// Algorithm 1 never lets a neighbor overtake a hungry process more than
// twice, while the replied-flag ablation and the doorway-free baseline
// exceed any constant bound.
func (s *Suite) E3BoundedWaiting() *harness.Table {
	t := &harness.Table{
		ID:     "E3",
		Title:  "Eventual 2-bounded waiting (Theorem 3) vs ablations",
		Claim:  "Algorithm 1: ≤2 consecutive overtakes per hungry neighbor in the suffix; without the replied flag or the doorway the bound fails",
		Header: []string{"algorithm", "scenario", "max overtakes", "suffix overtakes", "within paper bound (2)"},
	}
	type scenario struct {
		name   string
		g      *graph.Graph
		colors []int
		delays sim.DelayModel
	}
	star := graph.Star(5)
	scenarios := []scenario{
		{"star5-slow-leaf", star, nil, e3StarDelays(0, 1)},
		{"path3-low-middle", graph.Path(3), []int{1, 0, 2}, sim.FixedDelay{D: 2}},
		{"ring8", graph.Ring(8), nil, sim.UniformDelay{Min: 1, Max: 4}},
	}
	algs := []harness.Algorithm{harness.Algorithm1, harness.Algorithm1NoReplied, harness.Forks, harness.Hygienic}
	var specs []harness.Spec
	var names []string
	for _, sc := range scenarios {
		for _, alg := range algs {
			specs = append(specs, harness.Spec{
				Graph:     sc.g,
				Colors:    sc.colors,
				Seed:      s.Seed,
				Delays:    sc.delays,
				Algorithm: alg,
				Workload:  runner.Saturated(),
				Horizon:   30000,
			})
			names = append(names, sc.name)
		}
	}
	for i, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		// No detector noise in these runs, so the 2-bound must hold
		// over the whole run, not just a suffix.
		t.AddRow(out.Spec.Algorithm, names[i], res.MaxOvertake, res.MaxOvertakeSuffix,
			yesno(res.MaxOvertake <= 2))
	}
	return t
}

// E4ChannelBound measures the Section 7 claim that at most four dining
// messages occupy any edge simultaneously, even under severe delay
// variance.
func (s *Suite) E4ChannelBound() *harness.Table {
	t := &harness.Table{
		ID:     "E4",
		Title:  "Bounded channel capacity (Section 7)",
		Claim:  "at most 4 dining messages in transit per edge at any time",
		Header: []string{"topology", "delay model", "max edge occupancy", "total msgs", "ok"},
	}
	cases := []struct {
		name   string
		g      *graph.Graph
		dname  string
		delays sim.DelayModel
	}{
		{"ring16", graph.Ring(16), "uniform[1,4]", sim.UniformDelay{Min: 1, Max: 4}},
		{"clique6", graph.Clique(6), "uniform[1,50]", sim.UniformDelay{Min: 1, Max: 50}},
		{"grid4x4", graph.Grid(4, 4), "spiky", sim.SpikeDelay{Base: 2, Spike: 80, SpikeP: 0.2}},
		{"star8", graph.Star(8), "uniform[1,30]", sim.UniformDelay{Min: 1, Max: 30}},
	}
	specs := make([]harness.Spec, len(cases))
	for i, c := range cases {
		specs[i] = harness.Spec{
			Graph:     c.g,
			Seed:      s.Seed,
			Delays:    c.delays,
			Algorithm: harness.Algorithm1,
			Detector:  harness.DetectorHeartbeat,
			Heartbeat: harness.DefaultHeartbeatParams(),
			Workload:  runner.Saturated(),
			Horizon:   30000,
		}
	}
	for i, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		t.AddRow(cases[i].name, cases[i].dname, res.OccupancyHW, res.TotalMessages, yesno(res.OccupancyHW <= 4))
	}
	return t
}

// E5Quiescence measures the Section 7 claim that correct processes
// eventually stop sending dining messages to crashed neighbors.
func (s *Suite) E5Quiescence() *harness.Table {
	t := &harness.Table{
		ID:     "E5",
		Title:  "Quiescence toward crashed processes (Section 7)",
		Claim:  "eventually no dining messages flow to crashed processes (≤1 residual ping + 1 token per live neighbor)",
		Header: []string{"topology", "crashes", "sends after crash", "last send to crashed", "crash window ends", "quiescent by mid-run"},
	}
	cases := []struct {
		name    string
		g       *graph.Graph
		crashes []harness.Crash
	}{
		{"ring8", graph.Ring(8), []harness.Crash{{At: 1000, ID: 3}}},
		{"clique6", graph.Clique(6), []harness.Crash{{At: 1000, ID: 0}, {At: 1500, ID: 1}}},
		{"grid3x3", graph.Grid(3, 3), []harness.Crash{{At: 800, ID: 4}}},
	}
	specs := make([]harness.Spec, len(cases))
	for i, c := range cases {
		specs[i] = harness.Spec{
			Graph:     c.g,
			Seed:      s.Seed,
			Algorithm: harness.Algorithm1,
			Detector:  harness.DetectorPerfect,
			// Perfect detection isolates the dining layer's quiescence
			// from detector noise.
			PerfectLatency: 20,
			Workload:       runner.Saturated(),
			Crashes:        c.crashes,
			Horizon:        20000,
		}
	}
	for i, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		lastCrash := sim.Time(0)
		for _, cr := range out.Spec.Crashes {
			if cr.At > lastCrash {
				lastCrash = cr.At
			}
		}
		t.AddRow(cases[i].name, len(out.Spec.Crashes), res.SendsToCrashed, res.LastSendToCrashed,
			lastCrash, yesno(res.QuiescentLastHalf))
	}
	return t
}

// E6Space verifies the Section 7 space bound log₂(δ)+6δ+c bits per
// process by constructing diners over real colorings and counting their
// protocol state.
func (s *Suite) E6Space() *harness.Table {
	t := &harness.Table{
		ID:     "E6",
		Title:  "Bounded per-process space (Section 7)",
		Claim:  "each process needs log₂(δ)+6δ+c bits; O(n) even on a clique",
		Header: []string{"topology", "n", "δ", "colors used", "max bits measured", "bound 6δ+log₂(δ)+c", "ok"},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring32", graph.Ring(32)},
		{"grid6x6", graph.Grid(6, 6)},
		{"star33", graph.Star(33)},
		{"clique16", graph.Clique(16)},
	}
	for _, c := range cases {
		colors := c.g.GreedyColoring()
		maxBits := 0
		for i := 0; i < c.g.N(); i++ {
			nbrColors := make(map[int]int)
			for _, j := range c.g.Neighbors(i) {
				nbrColors[j] = colors[j]
			}
			d, err := core.NewDiner(core.Config{ID: i, Color: colors[i], NeighborColors: nbrColors})
			if err != nil {
				t.AddRow("ERROR", err.Error())
				continue
			}
			if b := d.SpaceBits(); b > maxBits {
				maxBits = b
			}
		}
		delta := c.g.MaxDegree()
		bound := 6*delta + bitsFor(delta) + 8 // generous constant c
		t.AddRow(c.name, c.g.N(), delta, graph.NumColors(colors), maxBits, bound, yesno(maxBits <= bound))
	}
	return t
}

func bitsFor(v int) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	if b == 0 {
		return 1
	}
	return b
}

// E7Stabilization measures the paper's motivating application: a
// wait-free daemon lets a self-stabilizing protocol converge despite
// crashes and transient faults; a non-wait-free daemon does not.
// (Custom runner wiring per arm — this experiment does not sweep.)
func (s *Suite) E7Stabilization() *harness.Table {
	seed := s.Seed
	t := &harness.Table{
		ID:     "E7",
		Title:  "Stabilizing protocols under wait-free vs blocking daemons (Section 1)",
		Claim:  "wait-free scheduling ⇒ convergence despite crashes; a crash under the detector-free daemon prevents convergence",
		Header: []string{"protocol", "daemon", "crashes", "converged", "last illegitimate", "protocol steps", "overlaps"},
	}
	type arm struct {
		daemon  string
		alg     harness.Algorithm
		det     harness.DetectorKind
		crashes []harness.Crash
	}
	runArm := func(protoName string, mkProto func(g *graph.Graph) stabilize.Protocol, g *graph.Graph, a arm, inject func(p stabilize.Protocol, ad *stabilize.DaemonAdapter, r *runner.Runner)) {
		proto := mkProto(g)
		var ad *stabilize.DaemonAdapter
		cfg := runner.Config{
			Graph:      g,
			Seed:       seed,
			Delays:     sim.UniformDelay{Min: 1, Max: 3},
			NewProcess: harness.ProcessFactory(a.alg, 0),
			Workload:   runner.Saturated(),
			OnTransition: func(at sim.Time, id int, from, to core.State) {
				ad.OnTransition(at, id, from, to)
			},
			OnCrash: func(at sim.Time, id int) { ad.OnCrash(at, id) },
		}
		if a.det == harness.DetectorPerfect {
			cfg.NewDetector = func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
				return detector.NewPerfect(k, gg, 15)
			}
		}
		r, err := runner.New(cfg)
		if err != nil {
			t.AddRow("ERROR", err.Error())
			return
		}
		ad = stabilize.NewDaemonAdapter(proto, g.Neighbors, r.Kernel().Now, r.Kernel().Rand())
		for _, c := range a.crashes {
			r.CrashAt(c.At, c.ID)
		}
		if inject != nil {
			inject(proto, ad, r)
		}
		r.Run(40000)
		_, converged := ad.Converged()
		t.AddRow(protoName, a.daemon, len(a.crashes), yesno(converged),
			ad.LastIllegitimate(), ad.Steps(), ad.Overlaps())
	}

	// Dijkstra ring: crash-free transient-fault recovery.
	ringG := graph.Ring(9)
	runArm("dijkstra-ring", func(g *graph.Graph) stabilize.Protocol {
		return stabilize.NewDijkstraRing(g.N(), 0)
	}, ringG, arm{daemon: "algorithm-1", alg: harness.Algorithm1, det: harness.DetectorPerfect},
		func(p stabilize.Protocol, ad *stabilize.DaemonAdapter, r *runner.Runner) {
			r.Kernel().At(2000, func() { ad.InjectFaults(9) })
		})

	// Coloring with crashes: the wait-free daemon repairs a conflict
	// injected beside the crashed vertex; the blocking daemon cannot.
	colorArms := []arm{
		{daemon: "algorithm-1", alg: harness.Algorithm1, det: harness.DetectorPerfect, crashes: []harness.Crash{{At: 40, ID: 2}}},
		{daemon: "choy-singh", alg: harness.ChoySingh, det: harness.DetectorNone, crashes: []harness.Crash{{At: 40, ID: 2}}},
	}
	for _, a := range colorArms {
		a := a
		g := graph.Ring(10)
		runArm("coloring", func(gg *graph.Graph) stabilize.Protocol {
			return stabilize.NewColoring(gg)
		}, g, a, func(p stabilize.Protocol, ad *stabilize.DaemonAdapter, r *runner.Runner) {
			col := p.(*stabilize.Coloring)
			r.Kernel().At(5000, func() {
				col.SetColor(3, col.Color(2))
				ad.Recheck()
			})
		})
	}

	// MIS under the daemon (the synchronous schedule livelocks; the
	// daemon converges).
	runArm("mis", func(g *graph.Graph) stabilize.Protocol {
		return stabilize.NewMIS(g)
	}, graph.Ring(8), arm{daemon: "algorithm-1", alg: harness.Algorithm1, det: harness.DetectorPerfect}, nil)

	return t
}

// E8Scalability profiles hungry-session latency and message overhead as
// the system grows — the paper argues ◇P₁'s locality keeps the daemon
// scalable on sparse networks.
func (s *Suite) E8Scalability() *harness.Table {
	t := &harness.Table{
		ID:     "E8",
		Title:  "Scalability profile (locality of ◇P₁, Section 8)",
		Claim:  "per-session cost tracks the conflict degree δ, not n, on sparse topologies",
		Header: []string{"topology", "n", "δ", "sessions done", "mean latency", "p99 latency", "msgs/session"},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring8", graph.Ring(8)},
		{"ring16", graph.Ring(16)},
		{"ring32", graph.Ring(32)},
		{"ring64", graph.Ring(64)},
		{"grid4x4", graph.Grid(4, 4)},
		{"grid6x6", graph.Grid(6, 6)},
		{"clique4", graph.Clique(4)},
		{"clique8", graph.Clique(8)},
		{"clique12", graph.Clique(12)},
	}
	specs := make([]harness.Spec, len(cases))
	for i, c := range cases {
		specs[i] = harness.Spec{
			Graph:     c.g,
			Seed:      s.Seed,
			Delays:    sim.UniformDelay{Min: 1, Max: 3},
			Algorithm: harness.Algorithm1,
			Workload:  runner.Saturated(),
			Horizon:   20000,
		}
	}
	for i, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		msgsPer := "n/a"
		if res.Sessions.Completed > 0 {
			msgsPer = fmt.Sprintf("%.1f", float64(res.TotalMessages)/float64(res.Sessions.Completed))
		}
		t.AddRow(cases[i].name, cases[i].g.N(), cases[i].g.MaxDegree(), res.Sessions.Completed,
			fmt.Sprintf("%.2f", float64(res.Sessions.MeanX100)/100), res.Sessions.P99, msgsPer)
	}
	return t
}

// A1RepliedAblation isolates design choice D1: the one-ack-per-session
// rule is exactly what turns eventual fairness into eventual 2-bounded
// waiting.
func (s *Suite) A1RepliedAblation() *harness.Table {
	t := &harness.Table{
		ID:     "A1",
		Title:  "Ablation: the replied flag (modified vs original doorway)",
		Claim:  "granting one ack per neighbor per hungry session caps consecutive overtakes at 2; the original doorway does not",
		Header: []string{"doorway", "max overtakes", "suffix overtakes", "hub sessions done", "hub p99 latency"},
	}
	algs := []harness.Algorithm{harness.Algorithm1, harness.Algorithm1NoReplied}
	specs := make([]harness.Spec, len(algs))
	for i, alg := range algs {
		specs[i] = harness.Spec{
			Graph:     graph.Star(5),
			Seed:      s.Seed,
			Delays:    e3StarDelays(0, 1),
			Algorithm: alg,
			Workload:  runner.Saturated(),
			Horizon:   30000,
		}
	}
	for _, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		t.AddRow(out.Spec.Algorithm, res.MaxOvertake, res.MaxOvertakeSuffix, res.PerProcess[0], res.Sessions.P99)
	}
	return t
}

// A3KBoundSweep validates the generalized doorway: granting at most m
// acks per neighbor per hungry session yields eventual (m+1)-bounded
// waiting. The paper's Algorithm 1 is the m = 1, k = 2 instance of the
// title's "eventually k-bounded" family.
func (s *Suite) A3KBoundSweep() *harness.Table {
	t := &harness.Table{
		ID:     "A3",
		Title:  "Extension: generalized ack budget m ⇒ eventual (m+1)-bounded waiting",
		Claim:  "the modified doorway with budget m bounds consecutive overtakes by k = m+1 (paper: m=1, k=2)",
		Header: []string{"ack budget m", "bound k=m+1", "max overtakes", "hub sessions", "hub p99 latency", "ok"},
	}
	budgets := []int{1, 2, 3, 5}
	specs := make([]harness.Spec, len(budgets))
	for i, m := range budgets {
		specs[i] = harness.Spec{
			Graph:          graph.Star(5),
			Seed:           s.Seed,
			Delays:         e3StarDelays(0, 1),
			Algorithm:      harness.Algorithm1,
			AcksPerSession: m,
			Workload:       runner.Saturated(),
			Horizon:        30000,
		}
	}
	for _, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		m := out.Spec.AcksPerSession
		t.AddRow(m, m+1, res.MaxOvertake, res.PerProcess[0], res.Sessions.P99,
			yesno(res.MaxOvertake <= m+1))
	}
	return t
}

// A2DetectorSweep explores D3/D4: how detector quality (heartbeat
// period and pre-GST delay noise) shapes mistake counts and how quickly
// the dining guarantees engage.
func (s *Suite) A2DetectorSweep() *harness.Table {
	t := &harness.Table{
		ID:     "A2",
		Title:  "Ablation: detector quality sweep (heartbeat period × pre-GST noise)",
		Claim:  "worse detectors make more (but always finitely many) mistakes; the dining guarantees engage after the last mistake regardless",
		Header: []string{"period", "pre-GST noise", "false positives", "FD last mistake", "violations", "last violation", "viol after conv"},
	}
	g := graph.Ring(8)
	var specs []harness.Spec
	for _, period := range []sim.Time{3, 5, 10} {
		for _, noise := range []sim.Time{0, 40, 120} {
			hp := harness.DefaultHeartbeatParams()
			hp.Period = period
			hp.InitialTimeout = period * 2
			hp.PreNoise = noise
			specs = append(specs, harness.Spec{
				Graph:     g,
				Seed:      s.Seed,
				Algorithm: harness.Algorithm1,
				Detector:  harness.DetectorHeartbeat,
				Heartbeat: hp,
				Workload:  runner.Saturated(),
				Horizon:   40000,
			})
		}
	}
	for _, out := range s.sweepRun(specs).Outcomes {
		if !ok(t, &out) {
			continue
		}
		res := out.Result
		conv := res.FDLastMistakeEnd + 100
		t.AddRow(out.Spec.Heartbeat.Period, out.Spec.Heartbeat.PreNoise, res.FDFalsePositives, res.FDLastMistake,
			res.Violations, res.LastViolation, res.ViolationsAfter(conv))
	}
	return t
}

// e11Faults is the adversarial channel used across E11's arms: 10%
// loss and 10% duplication on every edge, a near-total burst window,
// and a bipartition, all healing at 12000.
func e11Faults() *sim.FaultPlan {
	return &sim.FaultPlan{
		DropP:      0.10,
		DupP:       0.10,
		Bursts:     []sim.Burst{{Start: 4000, End: 5000, DropP: 0.9}},
		Partitions: []sim.Partition{{Start: 7000, End: 8000, Side: []int{0, 1, 2, 3}}},
		HealAt:     12000,
	}
}

// E11LossyLinks measures the robustness claim: layered over the rlink
// retransmission sublayer, Algorithm 1 keeps wait-freedom and the
// suffix 2-bounded-waiting guarantee on channels that drop and
// duplicate until a heal time, and its retransmissions to crashed
// neighbors are finite (suspicion parks the timers, preserving the
// Section 7 quiescence). The raw-network arm is the motivating negative
// control: the fork and token are unique messages, so an unmasked loss
// deadlocks an edge forever.
func (s *Suite) E11LossyLinks() *harness.Table {
	t := &harness.Table{
		ID:     "E11",
		Title:  "Lossy links: Algorithm 1 over the rlink sublayer vs raw channels",
		Claim:  "with 10% drop + 10% duplication (plus a burst and a partition) before heal, rlink preserves wait-freedom and suffix overtakes ≤ 2, with finite retransmits to crashed neighbors; the raw lossy network starves or corrupts the protocol",
		Header: []string{"arm", "lost", "dup injected", "retransmits", "dup suppressed", "live sessions", "starving live", "suffix overtakes", "retx to crashed", "ok"},
	}
	base := harness.Spec{
		Graph:     graph.Ring(8),
		Seed:      s.Seed,
		Algorithm: harness.Algorithm1,
		Detector:  harness.DetectorHeartbeat,
		Heartbeat: harness.DefaultHeartbeatParams(),
		Workload:  runner.Saturated(),
		Horizon:   30000,
		Faults:    e11Faults(),
	}

	// Arm 1: rlink, no crashes. Arm 2: rlink + crashes. Arm 3
	// (negative control): the same adversary against the raw network —
	// a violation there is the point, not a setup error.
	rlinkSpec := base
	rlinkSpec.Reliable = true
	crashSpec := base
	crashSpec.Reliable = true
	crashSpec.Crashes = []harness.Crash{{At: 3000, ID: 2}, {At: 9000, ID: 6}}
	rawSpec := base
	outcomes := s.sweepRun([]harness.Spec{rlinkSpec, crashSpec, rawSpec}).Outcomes

	// Arm 1: every guarantee must hold outright.
	if out := &outcomes[0]; ok(t, out) {
		res := out.Result
		okRun := len(res.Starving) == 0 && res.MaxOvertakeSuffix <= 2
		t.AddRow("rlink", res.MessagesLost, res.Duplicated, res.Retransmits,
			res.DupSuppressed, res.LiveCompleted(), len(res.Starving),
			res.MaxOvertakeSuffix, res.RetxToCrashed, yesno(okRun))
	}

	// Arm 2: live processes stay wait-free and the retransmits
	// addressed to the crashed stay finite (and small): suspicion parks
	// the timers, so the count stops growing long before the horizon.
	if out := &outcomes[1]; ok(t, out) {
		res := out.Result
		okRun := len(res.Starving) == 0 && res.MaxOvertakeSuffix <= 2 &&
			res.RetxToCrashed < res.Retransmits
		t.AddRow("rlink+crashes", res.MessagesLost, res.Duplicated, res.Retransmits,
			res.DupSuppressed, res.LiveCompleted(), len(res.Starving),
			res.MaxOvertakeSuffix, res.RetxToCrashed, yesno(okRun))
	}

	// Arm 3: loss of a unique fork or token deadlocks its edge, so the
	// expected outcome is starvation and/or a protocol-invariant
	// violation.
	if out := &outcomes[2]; out.Err != nil {
		t.AddRow("ERROR", out.FailureNote())
	} else {
		res := out.Result
		broken := res.InvariantErr != nil || len(res.Starving) > 0
		detail := "-"
		if res.InvariantErr != nil {
			detail = "invariant"
		}
		t.AddRow("raw-lossy", res.MessagesLost, res.Duplicated, 0, detail,
			res.LiveCompleted(), len(res.Starving), res.MaxOvertakeSuffix,
			0, yesno(broken))
	}
	return t
}

// All runs the complete experiment suite.
func (s *Suite) All() []*harness.Table {
	return []*harness.Table{
		s.E1Safety(),
		s.E2WaitFreedom(),
		s.E3BoundedWaiting(),
		s.E4ChannelBound(),
		s.E5Quiescence(),
		s.E6Space(),
		s.E7Stabilization(),
		s.E8Scalability(),
		s.E11LossyLinks(),
		s.A1RepliedAblation(),
		s.A2DetectorSweep(),
		s.A3KBoundSweep(),
	}
}
