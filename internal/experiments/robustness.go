package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// A4SeedRobustness re-checks the headline bounds across many seeds —
// the guard against a cherry-picked schedule. Each check expands one
// spec template over a seed range (sweep.SeedRange) and sweeps it
// through the worker pool; a row aggregates the worst case over the
// sweep, and a single seed violating a bound fails the row.
func (s *Suite) A4SeedRobustness(seeds int) *harness.Table {
	if seeds <= 0 {
		seeds = 10
	}
	t := &harness.Table{
		ID:     "A4",
		Title:  fmt.Sprintf("Seed robustness: worst case over %d seeds", seeds),
		Claim:  "the measured bounds are schedule-independent, not artifacts of one seed",
		Header: []string{"check", "seeds", "worst value", "bound", "ok"},
	}

	hostileHB := harness.DefaultHeartbeatParams()
	hostileHB.PreNoise = 80
	crashStorm := harness.Spec{
		Graph: graph.Ring(12), Algorithm: harness.Algorithm1,
		Detector: harness.DetectorHeartbeat, Heartbeat: harness.DefaultHeartbeatParams(),
		Workload: runner.Saturated(), Horizon: 25000,
	}
	for c := 0; c < 8; c++ {
		crashStorm.Crashes = append(crashStorm.Crashes, harness.Crash{At: sim.Time(3000 + 200*c), ID: c})
	}

	checks := []struct {
		name  string
		bound int
		tpl   harness.Spec
		value func(*harness.Result) int
	}{
		{
			name:  "E1: violations after FD convergence",
			bound: 0,
			tpl: harness.Spec{
				Graph: graph.Ring(10), Algorithm: harness.Algorithm1,
				Detector: harness.DetectorHeartbeat, Heartbeat: hostileHB,
				Workload: runner.Saturated(), Horizon: 20000,
			},
			value: func(r *harness.Result) int { return r.ViolationsAfter(r.FDLastMistakeEnd + 100) },
		},
		{
			name:  "E2: starving live processes (8 crashes, heartbeat FD)",
			bound: 0,
			tpl:   crashStorm,
			value: func(r *harness.Result) int { return len(r.Starving) },
		},
		{
			name:  "E3: max overtakes (adversarial path)",
			bound: 2,
			tpl: harness.Spec{
				Graph: graph.Path(3), Colors: []int{1, 0, 2},
				Delays: sim.FixedDelay{D: 2}, Algorithm: harness.Algorithm1,
				Workload: runner.Saturated(), Horizon: 15000,
			},
			value: func(r *harness.Result) int { return r.MaxOvertake },
		},
		{
			name:  "E4: per-edge channel occupancy (clique, wild delays)",
			bound: 4,
			tpl: harness.Spec{
				Graph:  graph.Clique(5),
				Delays: sim.UniformDelay{Min: 1, Max: 50}, Algorithm: harness.Algorithm1,
				Workload: runner.Saturated(), Horizon: 15000,
			},
			value: func(r *harness.Result) int { return r.OccupancyHW },
		},
	}

	for _, c := range checks {
		worst, bad := 0, false
		rep := s.sweepRun(sweep.SeedRange(c.tpl, 1, seeds))
		for i := range rep.Outcomes {
			o := &rep.Outcomes[i]
			if o.Failed() {
				bad = true
				continue
			}
			if v := c.value(&o.Result); v > worst {
				worst = v
			}
		}
		t.AddRow(c.name, seeds, worst, c.bound, yesno(!bad && worst <= c.bound))
	}
	return t
}
