package experiments

import (
	"strings"
	"testing"
)

func TestE6SpaceTable(t *testing.T) {
	tb := New(1, 0).E6Space()
	if len(tb.Rows) != 4 {
		t.Fatalf("E6 rows = %d, want 4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("space bound violated: %v", row)
		}
	}
}

func TestE3PathScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	tb := New(1, 0).E3BoundedWaiting()
	if len(tb.Rows) != 12 {
		t.Fatalf("E3 rows = %d, want 12 (4 algorithms × 3 scenarios)", len(tb.Rows))
	}
	byKey := map[string][]string{}
	for _, row := range tb.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	// Algorithm 1 must hold the bound in every scenario.
	for key, row := range byKey {
		if strings.HasPrefix(key, "algorithm-1/") && row[4] != "yes" {
			t.Fatalf("Algorithm 1 broke the bound: %v", row)
		}
	}
	// The doorway-free baseline must break it somewhere.
	broke := false
	for key, row := range byKey {
		if strings.HasPrefix(key, "static-forks/") && row[4] == "no" {
			broke = true
		}
	}
	if !broke {
		t.Fatal("static-forks never exceeded the bound; the ablation shows nothing")
	}
}

func TestE10MessageMixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	tb := New(1, 0).E10MessageMix()
	if len(tb.Rows) != 3 {
		t.Fatalf("E10 rows = %d, want 3", len(tb.Rows))
	}
	// On a saturated ring every session runs one full ping-ack round
	// per neighbor: exactly δ = 2 pings and acks per session.
	ring := tb.Rows[0]
	if ring[2] != "2.00" || ring[3] != "2.00" {
		t.Fatalf("ring ping/ack per session = %s/%s, want 2.00/2.00", ring[2], ring[3])
	}
}

// TestWorkerCountInvariance is the table-level complement of the sweep
// package's property test: a representative sweeping experiment must
// render identical bytes at 1 and 4 workers.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	var a, b strings.Builder
	New(1, 1).E4ChannelBound().Render(&a)
	New(1, 4).E4ChannelBound().Render(&b)
	if a.String() != b.String() {
		t.Fatalf("E4 table differs across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", a.String(), b.String())
	}
}
