package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/mc"
	"repro/internal/runner"
	"repro/internal/sim"
)

// E9ModelCheck runs the explicit-state model checker over small
// instances: exhaustive coverage of every interleaving, where the
// simulator samples only one schedule per seed. The crash rows verify
// wait-freedom against every ≤1-crash adversary; the Choy–Singh row
// must FAIL (a wedged state exists), confirming the checker has teeth.
// (The checker enumerates states, not specs, so this experiment does
// not sweep.)
func (s *Suite) E9ModelCheck() *harness.Table {
	t := &harness.Table{
		ID:     "E9",
		Title:  "Exhaustive verification by explicit-state model checking",
		Claim:  "safety invariants hold and progress stays possible in every reachable state; Choy–Singh wedges under a crash",
		Header: []string{"instance", "crashes", "states", "transitions", "closed", "verdict"},
	}
	type caseSpec struct {
		name    string
		g       *graph.Graph
		opts    mc.Options
		wantBad bool
	}
	cases := []caseSpec{
		{"algorithm-1 path2", graph.Path(2), mc.Options{}, false},
		{"algorithm-1 path3", graph.Path(3), mc.Options{MaxStates: 3_000_000}, false},
		{"algorithm-1 path2", graph.Path(2), mc.Options{MaxCrashes: 1}, false},
		{"algorithm-1 path3", graph.Path(3), mc.Options{MaxCrashes: 1, MaxStates: 4_000_000}, false},
		{"no-replied path2", graph.Path(2), mc.Options{Core: core.Options{DisableRepliedFlag: true}}, false},
		{"choy-singh path2", graph.Path(2), mc.Options{
			Core:       core.Options{IgnoreDetector: true, DisableRepliedFlag: true},
			MaxCrashes: 1,
		}, true},
		{"chandy-misra path3", graph.Path(3), mc.Options{Hygienic: true}, false},
		{"chandy-misra+fd path2", graph.Path(2), mc.Options{Hygienic: true, MaxCrashes: 1}, false},
		{"chandy-misra path2", graph.Path(2), mc.Options{
			Hygienic: true, NoDetector: true, MaxCrashes: 1,
		}, true},
	}
	for _, c := range cases {
		checker, err := mc.New(c.g, c.opts)
		if err != nil {
			t.AddRow("ERROR", err.Error())
			continue
		}
		rep, err := checker.Run()
		if err != nil && !errors.Is(err, mc.ErrBudget) {
			t.AddRow("ERROR", err.Error())
			continue
		}
		verdict := "verified"
		if rep.Violation != nil {
			verdict = rep.Violation.Kind
			if c.wantBad {
				verdict = "wedge found (expected): " + rep.Violation.Kind
			}
		} else if c.wantBad {
			verdict = "UNEXPECTEDLY CLEAN"
		}
		t.AddRow(c.name, c.opts.MaxCrashes, rep.States, rep.Transitions,
			yesno(rep.Closed), verdict)
	}
	return t
}

// E10MessageMix breaks dining traffic down by kind, checking the
// Section 7 inventory: a saturated session costs about one ping+ack and
// one request+fork exchange per neighbor, so the four kinds arrive in
// near-equal proportions and the per-session total tracks 4δ. (It reads
// live monitor internals via harness.ExecuteRaw, so it does not sweep.)
func (s *Suite) E10MessageMix() *harness.Table {
	t := &harness.Table{
		ID:     "E10",
		Title:  "Message mix per hungry session (Section 7 inventory)",
		Claim:  "a session costs ≈1 ping+ack and ≈1 request+fork per neighbor: four near-equal kind shares, ≈4δ messages/session",
		Header: []string{"topology", "δ", "ping/session", "ack/session", "request/session", "fork/session", "total/session"},
	}
	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ring12", graph.Ring(12)},
		{"grid4x4", graph.Grid(4, 4)},
		{"clique6", graph.Clique(6)},
	} {
		spec := harness.Spec{
			Graph:     c.g,
			Seed:      s.Seed,
			Delays:    sim.UniformDelay{Min: 1, Max: 3},
			Algorithm: harness.Algorithm1,
			Workload:  runner.Saturated(),
			Horizon:   20000,
		}
		suite, r, err := harness.ExecuteRaw(spec)
		if err != nil {
			t.AddRow("ERROR", fmt.Sprintf("%v [%s]", err, spec.Ident()))
			continue
		}
		if err := r.CheckInvariants(); err != nil {
			t.AddRow("INVARIANT-VIOLATION", fmt.Sprintf("%v [%s]", err, spec.Ident()))
			continue
		}
		sessions := suite.Progress.Stats().Completed
		per := func(k core.MsgKind) string {
			return fmt.Sprintf("%.2f", float64(suite.Mix.PerSessionX100(k, sessions))/100)
		}
		total := fmt.Sprintf("%.2f", float64(suite.Mix.Total())/float64(max(sessions, 1)))
		t.AddRow(c.name, c.g.MaxDegree(), per(core.Ping), per(core.Ack),
			per(core.Request), per(core.Fork), total)
	}
	return t
}
