package dsvc

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ResourceStatus is the client-visible snapshot of one resource.
type ResourceStatus struct {
	Name     string `json:"name"`
	Tenant   string `json:"tenant"`
	Proc     int    `json:"proc"`
	Color    int    `json:"color"`
	State    string `json:"state"`
	Crashed  bool   `json:"crashed,omitempty"`
	Retiring bool   `json:"retiring,omitempty"`
	Session  string `json:"session,omitempty"`
}

// SessionStatus is the client-visible snapshot of one session.
type SessionStatus struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	Resources []string `json:"resources"`
	State     string   `json:"state"`
	Reason    string   `json:"reason,omitempty"`
	CreatedAt sim.Time `json:"created_at"`
	GrantedAt sim.Time `json:"granted_at,omitempty"`
}

// Status is a full engine snapshot, deterministic in registration and
// ticket order.
type Status struct {
	Now            sim.Time         `json:"now"`
	Resources      []ResourceStatus `json:"resources"`
	Sessions       []SessionStatus  `json:"sessions"`
	Edges          [][2]string      `json:"edges"`
	PendingChanges int              `json:"pending_changes"`
	Palette        int              `json:"palette"`
	Violations     int              `json:"violations"`
	Delivered      int              `json:"delivered"`
	Err            string           `json:"err,omitempty"`
}

// Status snapshots the engine.
func (e *Engine) Status() Status {
	st := Status{
		Now:            e.now,
		PendingChanges: e.PendingChanges(),
		Palette:        e.Palette(),
		Violations:     e.excl.Count(),
		Delivered:      e.delivered,
	}
	if e.invariantErr != nil {
		st.Err = e.invariantErr.Error()
	}
	for _, r := range e.resOrder {
		rs := ResourceStatus{
			Name:     r.name,
			Tenant:   r.tenant,
			Proc:     r.id,
			Color:    e.colors[r.id],
			State:    r.diner.State().String(),
			Crashed:  r.crashed,
			Retiring: r.retiring,
		}
		if r.owner != nil {
			rs.Session = r.owner.id
		}
		st.Resources = append(st.Resources, rs)
	}
	for _, s := range e.sessOrder {
		ss := SessionStatus{
			ID:        s.id,
			Tenant:    s.tenant,
			Resources: s.Resources(),
			State:     s.state.String(),
			Reason:    s.reason,
			CreatedAt: s.createdAt,
			GrantedAt: s.grantedAt,
		}
		st.Sessions = append(st.Sessions, ss)
	}
	// Edges in committed-graph order, rendered by name where both
	// endpoints are live.
	for _, ed := range e.g.Edges() {
		a, b := e.resByID[ed[0]], e.resByID[ed[1]]
		if a != nil && b != nil {
			st.Edges = append(st.Edges, [2]string{a.name, b.name})
		}
	}
	return st
}

// SessionStatus snapshots one session by id.
func (e *Engine) SessionStatus(id string) (SessionStatus, bool) {
	s, ok := e.sessByID[id]
	if !ok {
		return SessionStatus{}, false
	}
	return SessionStatus{
		ID:        s.id,
		Tenant:    s.tenant,
		Resources: s.Resources(),
		State:     s.state.String(),
		Reason:    s.reason,
		CreatedAt: s.createdAt,
		GrantedAt: s.grantedAt,
	}, true
}

// Violations returns the exclusion violations recorded so far.
func (e *Engine) Violations() []metrics.Violation { return e.excl.Violations() }

// ProgressStats returns the latency statistics of completed hungry
// sessions (process-level, i.e. per-diner grants).
func (e *Engine) ProgressStats() metrics.SessionStats { return e.prog.Stats() }

// CheckInvariants audits the engine's cross-structure consistency and
// returns the first discrepancy. The fuzzer calls it after every op;
// the soak calls it after every schedule step. It is read-only.
func (e *Engine) CheckInvariants() error {
	if e.invariantErr != nil {
		return e.invariantErr
	}
	// Coloring proper on the committed graph.
	if !e.g.IsProperColoring(e.colors) {
		return fmt.Errorf("dsvc: committed coloring not proper")
	}
	// Index maps and registration order agree.
	live := 0
	for id, r := range e.resByID {
		if r == nil {
			continue
		}
		live++
		if r.id != id {
			return fmt.Errorf("dsvc: resource %q id mismatch (%d vs slot %d)", r.name, r.id, id)
		}
		if e.resByName[r.name] != r {
			return fmt.Errorf("dsvc: resource %q not in name index", r.name)
		}
	}
	if live != len(e.resOrder) || live != len(e.resByName) {
		return fmt.Errorf("dsvc: resource indices disagree (%d slots, %d order, %d names)",
			live, len(e.resOrder), len(e.resByName))
	}
	for _, r := range e.resOrder {
		// Hosted diner's neighbor set matches the committed graph.
		if !r.crashed {
			want := e.g.Neighbors(r.id)
			got := r.diner.Neighbors()
			if len(want) != len(got) {
				return fmt.Errorf("dsvc: diner %d neighbor set %v != graph %v", r.id, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					return fmt.Errorf("dsvc: diner %d neighbor set %v != graph %v", r.id, got, want)
				}
			}
			if r.diner.Color() != e.colors[r.id] {
				return fmt.Errorf("dsvc: diner %d color %d != committed %d",
					r.id, r.diner.Color(), e.colors[r.id])
			}
		}
		// Ownership is mutual.
		if s := r.owner; s != nil {
			if s.terminal() {
				return fmt.Errorf("dsvc: terminal session %s still owns %q", s.id, r.name)
			}
			found := false
			for _, v := range s.verts {
				found = found || v == r.id
			}
			if !found {
				return fmt.Errorf("dsvc: resource %q owned by session %s that excludes it", r.name, s.id)
			}
		}
	}
	// Session windows and member consistency.
	inflight := 0
	tenants := make(map[string]int)
	for _, s := range e.sessOrder {
		if e.sessByID[s.id] != s {
			return fmt.Errorf("dsvc: session %s not in id index", s.id)
		}
		if s.terminal() {
			continue
		}
		inflight++
		tenants[s.tenant]++
		switch s.state {
		case SessionActive, SessionGranted:
			for _, v := range s.verts {
				r := e.resByID[v]
				if r == nil {
					return fmt.Errorf("dsvc: session %s member proc %d gone", s.id, v)
				}
				if r.owner != s {
					return fmt.Errorf("dsvc: session %s member %q not owned by it", s.id, r.name)
				}
				// Granted means every live member is eating.
				if s.state == SessionGranted && !r.crashed && r.diner.State() != core.Eating {
					return fmt.Errorf("dsvc: granted session %s member %q is %v",
						s.id, r.name, r.diner.State())
				}
			}
		case SessionPending:
			for _, v := range s.verts {
				r := e.resByID[v]
				if r != nil && r.owner == s {
					return fmt.Errorf("dsvc: pending session %s already owns %q", s.id, r.name)
				}
			}
		case SessionReleased, SessionFailed:
			// Unreachable: terminal handled above.
		default:
			return fmt.Errorf("dsvc: session %s in unknown state %v", s.id, s.state)
		}
	}
	if inflight != e.inflight {
		return fmt.Errorf("dsvc: inflight window %d, counted %d", e.inflight, inflight)
	}
	// Sorted union of tenant names so the first mismatch reported does
	// not depend on map iteration order.
	names := make([]string, 0, len(tenants)+len(e.tenantInflight))
	for t := range tenants {
		names = append(names, t)
	}
	for t := range e.tenantInflight {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		if e.tenantInflight[t] != tenants[t] {
			return fmt.Errorf("dsvc: tenant %q window %d, counted %d", t, e.tenantInflight[t], tenants[t])
		}
	}
	// Live queues sit on committed edges.
	for i, q := range e.queues {
		if q.dead {
			continue
		}
		if j, ok := e.qIdx[[2]int{q.from, q.to}]; !ok || j != i {
			return fmt.Errorf("dsvc: queue %d→%d not indexed", q.from, q.to)
		}
		if !e.g.HasEdge(q.from, q.to) {
			return fmt.Errorf("dsvc: live queue %d→%d on missing edge", q.from, q.to)
		}
	}
	keys := make([][2]int, 0, len(e.qIdx))
	for key := range e.qIdx {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, key := range keys {
		i := e.qIdx[key]
		if i < 0 || i >= len(e.queues) || e.queues[i].dead ||
			e.queues[i].from != key[0] || e.queues[i].to != key[1] {
			return fmt.Errorf("dsvc: queue index %v→%d stale", key, i)
		}
	}
	return nil
}
