// Package dsvc is the dining-as-a-service engine: a deterministic,
// single-threaded scheduler that hosts one core.Diner per registered
// resource over a *mutable* conflict graph and arbitrates client
// sessions (acquire/release over a set of resources) on top of the
// paper's algorithm.
//
// The paper proves Algorithm 1 over a fixed conflict graph; this
// package supplies the dynamic-graph story the paper leaves open:
//
//   - clients register and deregister resources at runtime (Hesselink's
//     unbounded-participant generalization: the vertex set grows and
//     shrinks, IDs are recycled);
//   - conflict edges are added and removed at runtime via incremental
//     Δ+1 recoloring (graph.PlanAddEdge / graph.PlanRemoveEdge — only
//     the smaller affected neighborhood recolors);
//   - every change commits through a session-drain protocol (see
//     change.go): affected diners are parked and drained to Thinking,
//     fork/token placement is re-derived from the new colors exactly as
//     core.NewDiner does at boot, and only then does the change commit.
//     Exclusion is never violated during a transition because edges
//     mutate only between quiescent Thinking endpoints.
//
// Determinism contract (the package is in detpure's scope): no clocks,
// no goroutines or channels, no global randomness, and no map-order
// leak — all behavioral iteration walks registration-, ticket-, or
// creation-ordered slices. Time is injected via Advance; message
// interleaving is chosen by the caller through PumpOne/PumpAll. Given
// the same call sequence the engine is byte-for-byte reproducible,
// which the churn soak exploits.
//
// Concurrency contract: an Engine is single-threaded. The HTTP service
// (internal/dsvcd) serializes access through a mailbox goroutine, the
// same closure-ownership discipline internal/remote uses for its peer
// managers.
package dsvc

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Admission-control errors. The vocabulary is PR-6's transport
// backpressure, lifted to the service layer: a full window rejects
// (HTTP 429) instead of queueing unboundedly.
var (
	// ErrTenantWindow rejects an acquire: the tenant's in-flight session
	// window crossed its high-water mark.
	ErrTenantWindow = errors.New("dsvc: tenant in-flight session window at high-water mark; backpressure")
	// ErrGlobalWindow rejects an acquire: the global in-flight session
	// window crossed its high-water mark.
	ErrGlobalWindow = errors.New("dsvc: global in-flight session window at high-water mark; backpressure")
	// ErrChangeWindow rejects a graph change: the staged-change window
	// is full.
	ErrChangeWindow = errors.New("dsvc: staged-change window at high-water mark; backpressure")
	// ErrResourceWindow rejects a registration: the resource table is
	// full.
	ErrResourceWindow = errors.New("dsvc: resource table at high-water mark; backpressure")

	// ErrUnknownResource names a resource that is not registered.
	ErrUnknownResource = errors.New("dsvc: unknown resource")
	// ErrDuplicateResource rejects a second registration of a name.
	ErrDuplicateResource = errors.New("dsvc: resource already registered")
	// ErrResourceBusy rejects deregistration while sessions reference
	// the resource.
	ErrResourceBusy = errors.New("dsvc: resource referenced by in-flight sessions")
	// ErrRetiring rejects operations on a resource with a staged
	// deregistration.
	ErrRetiring = errors.New("dsvc: resource is deregistering")
	// ErrConflictingSet rejects a session whose resource set contains a
	// conflict edge (committed or staged): its members could never eat
	// simultaneously, so the session could never be granted.
	ErrConflictingSet = errors.New("dsvc: session resources conflict with each other")
	// ErrUnknownSession names a session that does not exist.
	ErrUnknownSession = errors.New("dsvc: unknown session")
	// ErrSessionClosed rejects a release of an already-terminal session.
	ErrSessionClosed = errors.New("dsvc: session already closed")
	// ErrBadRequest covers malformed arguments (empty sets, duplicate
	// members, oversized sets, self-edges).
	ErrBadRequest = errors.New("dsvc: bad request")
	// ErrCrashed rejects an operation that requires a live resource.
	ErrCrashed = errors.New("dsvc: resource is crashed")
)

// Limits parameterizes admission control. Zero fields take defaults.
type Limits struct {
	// MaxResources bounds live registered resources (default 1024).
	MaxResources int
	// MaxSessions bounds global in-flight (non-terminal) sessions
	// (default 4096).
	MaxSessions int
	// MaxPerTenant bounds one tenant's in-flight sessions (default 64).
	MaxPerTenant int
	// MaxSessionResources bounds one session's resource set (default 16).
	MaxSessionResources int
	// MaxPendingChanges bounds the staged + queued graph changes
	// (default 16).
	MaxPendingChanges int
	// MaxAudit bounds the audit ring (default 4096).
	MaxAudit int
}

func (l Limits) withDefaults() Limits {
	if l.MaxResources == 0 {
		l.MaxResources = 1024
	}
	if l.MaxSessions == 0 {
		l.MaxSessions = 4096
	}
	if l.MaxPerTenant == 0 {
		l.MaxPerTenant = 64
	}
	if l.MaxSessionResources == 0 {
		l.MaxSessionResources = 16
	}
	if l.MaxPendingChanges == 0 {
		l.MaxPendingChanges = 16
	}
	if l.MaxAudit == 0 {
		l.MaxAudit = 4096
	}
	return l
}

// resource is one registered resource: a hosted diner on a conflict-
// graph vertex.
type resource struct {
	name     string
	tenant   string
	id       int // conflict-graph vertex
	diner    *core.Diner
	crashed  bool
	parked   bool // affected by the staged change; no new activations
	retiring bool // deregistration staged
	owner    *Session
}

// Engine is the dining-as-a-service state machine. Not safe for
// concurrent use; see the package comment for the ownership contract.
type Engine struct {
	limits Limits
	now    sim.Time

	g      *graph.Graph
	colors []int

	resByName map[string]*resource
	resByID   []*resource // vertex id → resource; nil = free slot
	freeIDs   []int       // freed vertex ids, reused LIFO
	resOrder  []*resource // registration order (live resources only)

	queues []*edgeQueue
	qIdx   map[[2]int]int // directed edge → queues index

	sessByID  map[string]*Session
	sessOrder []*Session // ticket order; terminal sessions pruned lazily
	sessSeq   int

	inflight       int
	tenantInflight map[string]int

	staged  *change
	changeQ []*change

	excl *metrics.DynamicExclusionMonitor
	prog *metrics.DynamicProgressMonitor

	queueHW      int
	delivered    int
	invariantErr error

	audit      []string
	auditTotal int
}

// NewEngine returns an empty engine.
func NewEngine(limits Limits) *Engine {
	return &Engine{
		limits:         limits.withDefaults(),
		g:              graph.New(0),
		resByName:      make(map[string]*resource),
		qIdx:           make(map[[2]int]int),
		sessByID:       make(map[string]*Session),
		tenantInflight: make(map[string]int),
		excl:           metrics.NewDynamicExclusionMonitor(),
		prog:           metrics.NewDynamicProgressMonitor(),
	}
}

// Now returns the engine's logical time.
func (e *Engine) Now() sim.Time { return e.now }

// Advance moves the engine's logical time forward by d.
func (e *Engine) Advance(d sim.Time) {
	if d > 0 {
		e.now += d
	}
}

// Err returns the first internal-invariant error, if any. A non-nil
// value means a protocol impossibility occurred (a diner tripped a
// paper lemma, or the engine routed a message onto a missing edge).
func (e *Engine) Err() error { return e.invariantErr }

func (e *Engine) invariant(format string, args ...any) {
	if e.invariantErr == nil {
		e.invariantErr = fmt.Errorf("dsvc: "+format, args...)
	}
}

func (e *Engine) auditf(format string, args ...any) {
	e.auditTotal++
	e.audit = append(e.audit, fmt.Sprintf("t=%d ", e.now)+fmt.Sprintf(format, args...))
	if len(e.audit) > e.limits.MaxAudit {
		e.audit = e.audit[len(e.audit)-e.limits.MaxAudit:]
	}
}

// Audit returns the retained audit tail (oldest first).
func (e *Engine) Audit() []string {
	out := make([]string, len(e.audit))
	copy(out, e.audit)
	return out
}

// liveResources returns the number of registered resources.
func (e *Engine) liveResources() int { return len(e.resOrder) }

// suspectsFor builds the ◇P₁ oracle a hosted diner consults: a
// neighbor is suspected iff its resource is crashed or gone. In-process
// the oracle is exact, so (unlike the remote stack) no transient
// wrong-suspicion exclusion violations are possible — the churn soak
// demands literally zero.
func (e *Engine) suspectsFor() func(j int) bool {
	return func(j int) bool {
		if j < 0 || j >= len(e.resByID) || e.resByID[j] == nil {
			return true
		}
		return e.resByID[j].crashed
	}
}

// Register admits a new resource for tenant, hosting a fresh diner on
// a new (or recycled) conflict-graph vertex. The vertex starts
// isolated with color 0; edges arrive via AddEdge.
func (e *Engine) Register(name, tenant string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("%w: empty resource name", ErrBadRequest)
	}
	if _, ok := e.resByName[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateResource, name)
	}
	if e.liveResources() >= e.limits.MaxResources {
		return 0, ErrResourceWindow
	}
	var id int
	if n := len(e.freeIDs); n > 0 {
		id = e.freeIDs[n-1]
		e.freeIDs = e.freeIDs[:n-1]
	} else {
		id = e.g.AddVertex()
		e.colors = append(e.colors, 0)
		e.resByID = append(e.resByID, nil)
	}
	e.colors[id] = 0
	d, err := core.NewDiner(core.Config{ID: id, Color: 0, Suspects: e.suspectsFor()})
	if err != nil {
		return 0, err
	}
	r := &resource{name: name, tenant: tenant, id: id, diner: d}
	e.resByName[name] = r
	e.resByID[id] = r
	e.resOrder = append(e.resOrder, r)
	e.excl.AddProc(id)
	e.prog.AddProc(id)
	e.auditf("resource %q registered as proc %d (tenant %q)", name, id, tenant)
	return id, nil
}

// Deregister stages removal of a resource. It is rejected while any
// in-flight session references the resource; once staged, the
// resource's remaining edges drain and the vertex retires at commit.
func (e *Engine) Deregister(name string) error {
	r, ok := e.resByName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownResource, name)
	}
	if r.retiring {
		return fmt.Errorf("%w: %q", ErrRetiring, name)
	}
	for _, s := range e.sessOrder {
		if s.terminal() {
			continue
		}
		for _, v := range s.verts {
			if v == r.id {
				return fmt.Errorf("%w: %q held by session %s", ErrResourceBusy, name, s.id)
			}
		}
	}
	if err := e.admitChange(); err != nil {
		return err
	}
	r.retiring = true
	e.enqueueChange(&change{kind: ChangeDelProc, u: r.id, v: -1})
	return nil
}

// AddEdge stages a new conflict edge between two registered resources.
// The commit (asynchronous: poll Status) recolors at most one
// neighborhood and re-derives fork/token placement on the drained
// endpoints.
func (e *Engine) AddEdge(nameA, nameB string) error {
	u, v, err := e.edgeEndpoints(nameA, nameB)
	if err != nil {
		return err
	}
	if err := e.admitChange(); err != nil {
		return err
	}
	e.enqueueChange(&change{kind: ChangeAddEdge, u: u, v: v})
	return nil
}

// RemoveEdge stages removal of a conflict edge.
func (e *Engine) RemoveEdge(nameA, nameB string) error {
	u, v, err := e.edgeEndpoints(nameA, nameB)
	if err != nil {
		return err
	}
	if err := e.admitChange(); err != nil {
		return err
	}
	e.enqueueChange(&change{kind: ChangeDelEdge, u: u, v: v})
	return nil
}

func (e *Engine) edgeEndpoints(nameA, nameB string) (int, int, error) {
	a, ok := e.resByName[nameA]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownResource, nameA)
	}
	b, ok := e.resByName[nameB]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownResource, nameB)
	}
	if a == b {
		return 0, 0, fmt.Errorf("%w: self-edge on %q", ErrBadRequest, nameA)
	}
	if a.retiring {
		return 0, 0, fmt.Errorf("%w: %q", ErrRetiring, nameA)
	}
	if b.retiring {
		return 0, 0, fmt.Errorf("%w: %q", ErrRetiring, nameB)
	}
	return a.id, b.id, nil
}

func (e *Engine) admitChange() error {
	pending := len(e.changeQ)
	if e.staged != nil {
		pending++
	}
	if pending >= e.limits.MaxPendingChanges {
		return ErrChangeWindow
	}
	return nil
}

// Crash marks a resource's process crashed: in-flight messages to and
// from it are lost, neighbors suspect it, and its in-flight sessions
// fail. The resource stays registered; Restart revives it.
func (e *Engine) Crash(name string) error {
	r, ok := e.resByName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownResource, name)
	}
	if r.crashed {
		return nil
	}
	r.crashed = true
	e.wipeQueues(r.id)
	e.excl.OnCrash(e.now, r.id)
	e.prog.OnCrash(e.now, r.id)
	e.auditf("resource %q (proc %d) crashed", name, r.id)
	if s := r.owner; s != nil && !s.terminal() {
		e.failSession(s, fmt.Sprintf("resource %q crashed", name))
	}
	// Neighbors consult the oracle again: suspicion of the dead process
	// unblocks their doorways and fork collection.
	for _, j := range e.g.Neighbors(r.id) {
		if nb := e.resByID[j]; nb != nil && !nb.crashed {
			e.act(nb, nb.diner.ReevaluateSuspicion)
		}
	}
	e.maybeCommit()
	e.schedule()
	return nil
}

// Restart revives a crashed resource with fresh dining state, exactly
// like the remote runtime's crash recovery: the reborn diner boots from
// the committed graph and colors, and each surviving neighbor resets
// the shared edge to its boot placement.
func (e *Engine) Restart(name string) error {
	r, ok := e.resByName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownResource, name)
	}
	if !r.crashed {
		return nil
	}
	nbc := make(map[int]int)
	for _, j := range e.g.Neighbors(r.id) {
		nbc[j] = e.colors[j]
	}
	d, err := core.NewDiner(core.Config{
		ID: r.id, Color: e.colors[r.id], NeighborColors: nbc, Suspects: e.suspectsFor(),
	})
	if err != nil {
		return err
	}
	r.diner = d
	r.crashed = false
	e.wipeQueues(r.id)
	e.excl.OnRestart(e.now, r.id)
	e.prog.OnRestart(e.now, r.id)
	e.auditf("resource %q (proc %d) restarted", name, r.id)
	for _, j := range e.g.Neighbors(r.id) {
		if nb := e.resByID[j]; nb != nil && !nb.crashed {
			e.act(nb, func() []core.Message { return nb.diner.ResetNeighbor(r.id) })
			e.act(nb, nb.diner.ReevaluateSuspicion)
		}
	}
	e.maybeCommit()
	e.schedule()
	return nil
}
