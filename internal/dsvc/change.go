package dsvc

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// The session-drain protocol. A graph change never mutates a live
// edge: it is STAGED, the affected diners are parked (no new
// activations) and drained to Thinking, the incident message queues
// empty, and only then does the change COMMIT — re-deriving fork/token
// placement from the new colors exactly as core.NewDiner does at boot.
// Changes are serialized (one staged at a time, FIFO queue behind it),
// so a plan computed at stage time stays valid through its commit.
//
// Affected set of a change:
//   - add-edge u,v: {u, v} ∪ {recolored vertex} ∪ neighbors(recolored)
//   - del-edge u,v: {u, v} ∪ recolored endpoints' neighborhoods
//   - del-proc  u : {u} ∪ neighbors(u)
//
// (a SetColor re-derives every edge of the recolored vertex, so each
// of its neighbors must also be quiescent — they adopt the new color
// via SetNeighborColor, resetting their half of the shared edge.)
//
// Drain kicks: a parked diner that is Hungry is recalled with
// AbortHungry; one that is Eating on behalf of a not-yet-granted
// session is forced out with ExitEating (the client only owns the
// critical section from Granted, so pre-grant eating is just internal
// lock acquisition and may be rewound). A GRANTED session is never
// interrupted: the commit waits for the client's release. Exclusion is
// therefore never violated mid-transition — both endpoints of every
// mutated edge are Thinking and message-quiescent at the commit
// instant, and the monitors switch graphs at that same instant.

// ChangeKind enumerates the staged graph-change repertoire.
type ChangeKind int

const (
	// ChangeAddEdge adds a conflict edge (with incremental recoloring).
	ChangeAddEdge ChangeKind = iota + 1
	// ChangeDelEdge removes a conflict edge (priorities decay).
	ChangeDelEdge
	// ChangeDelProc deregisters a resource, removing all its edges.
	ChangeDelProc
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeAddEdge:
		return "add-edge"
	case ChangeDelEdge:
		return "del-edge"
	case ChangeDelProc:
		return "del-proc"
	default:
		return fmt.Sprintf("changekind(%d)", int(k))
	}
}

// change is one staged graph mutation.
type change struct {
	kind     ChangeKind
	u, v     int // edge endpoints; v = -1 for ChangeDelProc
	plan     []graph.Recolor
	affected []int // sorted vertex ids parked by this change
}

func (c *change) String() string {
	if c.kind == ChangeDelProc {
		return fmt.Sprintf("%v %d", c.kind, c.u)
	}
	return fmt.Sprintf("%v %d-%d", c.kind, c.u, c.v)
}

// enqueueChange appends a change and stages it immediately if nothing
// is in flight.
func (e *Engine) enqueueChange(c *change) {
	e.changeQ = append(e.changeQ, c)
	e.auditf("change %v queued", c)
	e.maybeCommit()
	e.schedule()
}

// stageNext pops queued changes until one validates and stages, or the
// queue empties. Returns whether a change is now staged.
func (e *Engine) stageNext() bool {
	for e.staged == nil && len(e.changeQ) > 0 {
		c := e.changeQ[0]
		e.changeQ = e.changeQ[1:]
		if e.stage(c) {
			return true
		}
	}
	return e.staged != nil
}

// stage validates a change against the current committed graph,
// computes its recolor plan and affected set, parks the affected
// resources, and kicks the drain. Invalid changes (made moot by
// earlier commits) are dropped with an audit note.
func (e *Engine) stage(c *change) bool {
	switch c.kind {
	case ChangeAddEdge:
		if !e.vertexLive(c.u) || !e.vertexLive(c.v) || e.g.HasEdge(c.u, c.v) {
			e.auditf("change %v dropped (stale)", c)
			return false
		}
		c.plan = e.g.PlanAddEdge(e.colors, c.u, c.v)
	case ChangeDelEdge:
		if !e.g.HasEdge(c.u, c.v) {
			e.auditf("change %v dropped (stale)", c)
			return false
		}
		c.plan = e.g.PlanRemoveEdge(e.colors, c.u, c.v)
	case ChangeDelProc:
		if !e.vertexLive(c.u) {
			e.auditf("change %v dropped (stale)", c)
			return false
		}
	default:
		e.invariant("unknown change kind %v", c.kind)
		return false
	}
	c.affected = e.affectedSet(c)
	e.staged = c
	for _, v := range c.affected {
		if r := e.resByID[v]; r != nil {
			r.parked = true
		}
	}
	e.auditf("change %v staged (affects %v)", c, c.affected)
	e.drainKick(c)
	return true
}

func (e *Engine) vertexLive(v int) bool {
	return v >= 0 && v < len(e.resByID) && e.resByID[v] != nil
}

// affectedSet computes the sorted set of vertices a change touches.
func (e *Engine) affectedSet(c *change) []int {
	in := make(map[int]bool)
	add := func(v int) { in[v] = true }
	add(c.u)
	if c.kind != ChangeDelProc {
		add(c.v)
	}
	if c.kind == ChangeDelProc {
		for _, j := range e.g.Neighbors(c.u) {
			add(j)
		}
	}
	for _, r := range c.plan {
		add(r.Vertex)
		for _, j := range e.g.Neighbors(r.Vertex) {
			add(j)
		}
	}
	out := make([]int, 0, len(in))
	for v := 0; v < len(e.resByID); v++ {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// drainKick recalls the affected diners: hungry ones abort, eating
// ones of not-yet-granted sessions exit. Eating members of granted
// sessions are left alone — the commit waits for the release.
func (e *Engine) drainKick(c *change) {
	for _, v := range c.affected {
		r := e.resByID[v]
		if r == nil || r.crashed {
			continue
		}
		switch r.diner.State() {
		case core.Hungry:
			e.act(r, r.diner.AbortHungry)
		case core.Eating:
			if r.owner != nil && r.owner.state == SessionGranted {
				continue // client owns the critical section; wait for release
			}
			e.act(r, r.diner.ExitEating)
		case core.Thinking:
			// Already drained.
		default:
			e.invariant("resource %q in unknown diner state", r.name)
		}
	}
}

// drained reports whether the staged change can commit: every affected
// diner is Thinking (or crashed — a restart rebuilds it from the
// committed graph anyway) and every queue incident to an affected
// vertex is empty.
func (e *Engine) drained(c *change) bool {
	in := make(map[int]bool, len(c.affected))
	for _, v := range c.affected {
		in[v] = true
		r := e.resByID[v]
		if r == nil || r.crashed {
			continue
		}
		if r.diner.State() != core.Thinking {
			return false
		}
	}
	for _, q := range e.queues {
		if q.dead || len(q.msgs) == 0 {
			continue
		}
		if in[q.from] || in[q.to] {
			return false
		}
	}
	return true
}

// maybeCommit commits the staged change if drained, then stages the
// next queued change (which may itself commit immediately if its
// affected set is already quiescent), and reschedules.
func (e *Engine) maybeCommit() {
	for {
		if e.staged == nil && !e.stageNext() {
			return
		}
		c := e.staged
		if !e.drained(c) {
			return
		}
		e.commit(c)
		e.staged = nil
		e.schedule()
	}
}

// commit applies a drained change: diners first (mutations require the
// Thinking precondition the drain established), then the graph, the
// queues, and the monitors — all at one instant.
func (e *Engine) commit(c *change) {
	switch c.kind {
	case ChangeAddEdge:
		e.applyRecolors(c.plan)
		e.mustGraph(e.g.AddEdge(c.u, c.v))
		e.spliceDiners(c.u, c.v)
		e.openQueue(c.u, c.v)
		e.openQueue(c.v, c.u)
		e.excl.AddEdge(c.u, c.v)
		// A pending/active session holding both endpoints could never be
		// granted once they conflict; fail it so the client re-acquires.
		e.failSessionsContaining(c.u, c.v)
	case ChangeDelEdge:
		e.severDiners(c.u, c.v)
		e.mustGraph(e.g.RemoveEdge(c.u, c.v))
		e.closeQueue(c.u, c.v)
		e.closeQueue(c.v, c.u)
		e.excl.RemoveEdge(c.u, c.v)
		e.applyRecolors(c.plan)
	case ChangeDelProc:
		r := e.resByID[c.u]
		for _, j := range e.g.Neighbors(c.u) {
			e.severDiners(c.u, j)
			e.mustGraph(e.g.RemoveEdge(c.u, j))
			e.closeQueue(c.u, j)
			e.closeQueue(j, c.u)
			e.excl.RemoveEdge(c.u, j)
		}
		if r != nil {
			delete(e.resByName, r.name)
			e.resByID[c.u] = nil
			e.freeIDs = append(e.freeIDs, c.u)
			for i, rr := range e.resOrder {
				if rr == r {
					e.resOrder = append(e.resOrder[:i], e.resOrder[i+1:]...)
					break
				}
			}
			e.excl.RemoveProc(c.u)
			e.prog.RemoveProc(c.u)
		}
	default:
		e.invariant("unknown change kind %v", c.kind)
		return
	}
	for _, v := range c.affected {
		if r := e.resByID[v]; r != nil {
			r.parked = false
		}
	}
	e.auditf("change %v committed", c)
}

// applyRecolors moves the planned vertices to their new colors and
// tells every neighbor, re-deriving fork/token placement on both sides
// of each touched edge. Crashed diners are skipped: a restart rebuilds
// them from the committed colors.
func (e *Engine) applyRecolors(plan []graph.Recolor) {
	for _, rc := range plan {
		e.colors[rc.Vertex] = rc.Color
		x := e.resByID[rc.Vertex]
		if x == nil {
			e.invariant("recolor of unregistered vertex %d", rc.Vertex)
			continue
		}
		if !x.crashed {
			if err := x.diner.SetColor(rc.Color); err != nil {
				e.invariant("SetColor(%d)=%d on drained diner: %v", rc.Vertex, rc.Color, err)
			}
		}
		for _, j := range e.g.Neighbors(rc.Vertex) {
			nb := e.resByID[j]
			if nb == nil || nb.crashed {
				continue
			}
			if err := nb.diner.SetNeighborColor(rc.Vertex, rc.Color); err != nil {
				e.invariant("SetNeighborColor(%d→%d) on drained diner: %v", j, rc.Vertex, err)
			}
		}
	}
}

// spliceDiners adds the edge on both hosted diners with boot fork/token
// placement.
func (e *Engine) spliceDiners(u, v int) {
	ru, rv := e.resByID[u], e.resByID[v]
	if ru != nil && !ru.crashed {
		if err := ru.diner.AddNeighbor(v, e.colors[v]); err != nil {
			e.invariant("AddNeighbor(%d→%d): %v", u, v, err)
		}
	}
	if rv != nil && !rv.crashed {
		if err := rv.diner.AddNeighbor(u, e.colors[u]); err != nil {
			e.invariant("AddNeighbor(%d→%d): %v", v, u, err)
		}
	}
}

// severDiners removes the edge on both hosted diners.
func (e *Engine) severDiners(u, v int) {
	ru, rv := e.resByID[u], e.resByID[v]
	if ru != nil && !ru.crashed {
		if err := ru.diner.RemoveNeighbor(v); err != nil {
			e.invariant("RemoveNeighbor(%d→%d): %v", u, v, err)
		}
	}
	if rv != nil && !rv.crashed {
		if err := rv.diner.RemoveNeighbor(u); err != nil {
			e.invariant("RemoveNeighbor(%d→%d): %v", v, u, err)
		}
	}
}

// failSessionsContaining fails every non-terminal session whose
// resource set contains both u and v (they now conflict).
func (e *Engine) failSessionsContaining(u, v int) {
	for _, s := range e.sessOrder {
		if s.terminal() {
			continue
		}
		hasU, hasV := false, false
		for _, w := range s.verts {
			hasU = hasU || w == u
			hasV = hasV || w == v
		}
		if hasU && hasV {
			e.failSession(s, fmt.Sprintf("conflict edge %d-%d added inside resource set", u, v))
		}
	}
}

func (e *Engine) mustGraph(err error) {
	if err != nil {
		e.invariant("graph mutation: %v", err)
	}
}

// PendingChanges returns how many changes are staged or queued.
func (e *Engine) PendingChanges() int {
	n := len(e.changeQ)
	if e.staged != nil {
		n++
	}
	return n
}

// Colors returns a copy of the committed coloring, indexed by vertex.
func (e *Engine) Colors() []int {
	out := make([]int, len(e.colors))
	copy(out, e.colors)
	return out
}

// Palette returns the number of distinct colors among live vertices.
func (e *Engine) Palette() int {
	live := make([]int, 0, len(e.resOrder))
	for _, r := range e.resOrder {
		live = append(live, e.colors[r.id])
	}
	sort.Ints(live)
	n := 0
	for i, c := range live {
		if i == 0 || c != live[i-1] {
			n++
		}
	}
	return n
}
