package dsvc

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// SessionState is the client-visible lifecycle of an eating session.
type SessionState int

const (
	// SessionPending: admitted, waiting for its resources to free up.
	SessionPending SessionState = iota + 1
	// SessionActive: resources assigned; the hosted diners are hungry
	// (or already eating) on the client's behalf.
	SessionActive
	// SessionGranted: every member diner is eating — the client owns
	// the session until it releases.
	SessionGranted
	// SessionReleased: terminal; released or cancelled by the client.
	SessionReleased
	// SessionFailed: terminal; a member crashed, or a committed graph
	// change made the resource set self-conflicting.
	SessionFailed
)

func (s SessionState) String() string {
	switch s {
	case SessionPending:
		return "pending"
	case SessionActive:
		return "active"
	case SessionGranted:
		return "granted"
	case SessionReleased:
		return "released"
	case SessionFailed:
		return "failed"
	default:
		return fmt.Sprintf("sessionstate(%d)", int(s))
	}
}

// Session is one client acquisition over a set of resources.
type Session struct {
	id        string
	tenant    string
	names     []string // member resource names, sorted
	verts     []int    // member vertex ids, aligned with names
	state     SessionState
	createdAt sim.Time
	grantedAt sim.Time
	closedAt  sim.Time
	reason    string // failure detail for SessionFailed
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Tenant returns the owning tenant.
func (s *Session) Tenant() string { return s.tenant }

// State returns the session's current lifecycle state.
func (s *Session) State() SessionState { return s.state }

// Resources returns the member resource names (sorted copy).
func (s *Session) Resources() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// CreatedAt returns the admission time.
func (s *Session) CreatedAt() sim.Time { return s.createdAt }

// GrantedAt returns when the session was granted (zero if never).
func (s *Session) GrantedAt() sim.Time { return s.grantedAt }

// Reason returns the failure detail for a failed session.
func (s *Session) Reason() string { return s.reason }

func (s *Session) terminal() bool {
	return s.state == SessionReleased || s.state == SessionFailed
}

// setState moves a session through its lifecycle, enforcing the legal
// transition relation; an illegal move is an engine invariant
// violation, which the fuzzer and soak surface via Err.
func (e *Engine) setState(s *Session, to SessionState) {
	from := s.state
	legal := false
	switch from {
	case SessionPending:
		legal = to == SessionActive || to == SessionReleased || to == SessionFailed
	case SessionActive:
		legal = to == SessionGranted || to == SessionReleased || to == SessionFailed
	case SessionGranted:
		legal = to == SessionReleased || to == SessionFailed
	case SessionReleased, SessionFailed:
		legal = false
	default:
		e.invariant("session %s in unknown state %v", s.id, from)
		return
	}
	if !legal {
		e.invariant("illegal session transition %s: %v → %v", s.id, from, to)
		return
	}
	s.state = to
	e.auditf("session %s %v → %v", s.id, from, to)
	switch to {
	case SessionGranted:
		s.grantedAt = e.now
	case SessionReleased, SessionFailed:
		s.closedAt = e.now
		e.inflight--
		e.tenantInflight[s.tenant]--
		if e.tenantInflight[s.tenant] <= 0 {
			delete(e.tenantInflight, s.tenant)
		}
	case SessionPending, SessionActive:
		// No bookkeeping beyond the state itself.
	}
}

// Acquire admits a session over the named resources for tenant. The
// session starts Pending and is granted asynchronously (poll Session /
// long-poll via the service layer). Admission enforces the tenant and
// global in-flight windows (backpressure, HTTP 429 at the API) and
// rejects sets that could never be granted: unknown, retiring, or
// duplicate members, and sets containing a conflict edge — committed
// or staged, since a session whose members conflict can never have all
// of them eating simultaneously.
func (e *Engine) Acquire(tenant string, resources []string) (*Session, error) {
	if len(resources) == 0 {
		return nil, fmt.Errorf("%w: empty resource set", ErrBadRequest)
	}
	if len(resources) > e.limits.MaxSessionResources {
		return nil, fmt.Errorf("%w: %d resources exceeds limit %d",
			ErrBadRequest, len(resources), e.limits.MaxSessionResources)
	}
	if e.inflight >= e.limits.MaxSessions {
		return nil, ErrGlobalWindow
	}
	if e.tenantInflight[tenant] >= e.limits.MaxPerTenant {
		return nil, ErrTenantWindow
	}
	names := make([]string, len(resources))
	copy(names, resources)
	sort.Strings(names)
	verts := make([]int, len(names))
	for i, nm := range names {
		if i > 0 && names[i-1] == nm {
			return nil, fmt.Errorf("%w: duplicate resource %q", ErrBadRequest, nm)
		}
		r, ok := e.resByName[nm]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownResource, nm)
		}
		if r.retiring {
			return nil, fmt.Errorf("%w: %q", ErrRetiring, nm)
		}
		verts[i] = r.id
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if e.conflicts(verts[i], verts[j]) {
				return nil, fmt.Errorf("%w: %q and %q", ErrConflictingSet, names[i], names[j])
			}
		}
	}

	e.sessSeq++
	s := &Session{
		id:        fmt.Sprintf("s%d", e.sessSeq),
		tenant:    tenant,
		names:     names,
		verts:     verts,
		state:     SessionPending,
		createdAt: e.now,
	}
	e.sessByID[s.id] = s
	e.sessOrder = append(e.sessOrder, s)
	e.inflight++
	e.tenantInflight[tenant]++
	e.auditf("session %s admitted (tenant %q, resources %v)", s.id, tenant, names)
	e.schedule()
	return s, nil
}

// conflicts reports whether vertices u and v conflict under the
// committed graph or any staged/queued edge addition.
func (e *Engine) conflicts(u, v int) bool {
	if e.g.HasEdge(u, v) {
		return true
	}
	pend := func(c *change) bool {
		return c != nil && c.kind == ChangeAddEdge &&
			((c.u == u && c.v == v) || (c.u == v && c.v == u))
	}
	if pend(e.staged) {
		return true
	}
	for _, c := range e.changeQ {
		if pend(c) {
			return true
		}
	}
	return false
}

// Session returns a session by ID.
func (e *Engine) Session(id string) (*Session, bool) {
	s, ok := e.sessByID[id]
	return s, ok
}

// Release closes a session: granted sessions stop eating, active ones
// abort their hungry diners, pending ones are simply cancelled. Always
// legal on a non-terminal session.
func (e *Engine) Release(id string) error {
	s, ok := e.sessByID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if s.terminal() {
		return fmt.Errorf("%w: %q is %v", ErrSessionClosed, id, s.state)
	}
	e.unbind(s)
	e.setState(s, SessionReleased)
	e.maybeCommit()
	e.schedule()
	return nil
}

// failSession closes a session involuntarily.
func (e *Engine) failSession(s *Session, reason string) {
	s.reason = reason
	e.unbind(s)
	e.setState(s, SessionFailed)
}

// unbind returns a session's resources to the pool, settling each
// member diner: eating members exit, hungry members abort.
func (e *Engine) unbind(s *Session) {
	for _, v := range s.verts {
		r := e.resByID[v]
		if r == nil || r.owner != s {
			continue
		}
		r.owner = nil
		if r.crashed {
			continue
		}
		switch r.diner.State() {
		case core.Eating:
			e.act(r, r.diner.ExitEating)
		case core.Hungry:
			e.act(r, r.diner.AbortHungry)
		case core.Thinking:
			// Nothing held.
		default:
			e.invariant("resource %q in unknown diner state", r.name)
		}
	}
}

// schedule activates pending sessions in ticket order with
// head-of-line reservation: a pending session that cannot start
// reserves its resources so younger sessions cannot overtake it
// forever — FIFO per resource, which is what makes service-level
// wait-freedom inherit from the paper's process-level guarantee. It
// also re-fires members of active sessions that a drain recalled, once
// their park lifts.
func (e *Engine) schedule() {
	reserved := make(map[int]bool)
	for _, s := range e.sessOrder {
		if s.state != SessionPending {
			continue
		}
		ok := true
		for _, v := range s.verts {
			r := e.resByID[v]
			if r == nil || r.owner != nil || r.parked || r.crashed || r.retiring || reserved[v] {
				ok = false
			}
		}
		if !ok {
			for _, v := range s.verts {
				reserved[v] = true
			}
			continue
		}
		for _, v := range s.verts {
			e.resByID[v].owner = s
		}
		e.setState(s, SessionActive)
		for _, v := range s.verts {
			r := e.resByID[v]
			e.act(r, r.diner.BecomeHungry)
		}
	}
	// Re-fire drained members of active sessions whose park lifted.
	for _, s := range e.sessOrder {
		if s.state != SessionActive {
			continue
		}
		for _, v := range s.verts {
			r := e.resByID[v]
			if r != nil && r.owner == s && !r.parked && !r.crashed && r.diner.State() == core.Thinking {
				e.act(r, r.diner.BecomeHungry)
			}
		}
	}
	e.pruneSessions()
}

// pruneSessions drops long-terminal sessions from the ticket order
// (kept briefly so Status can render them) once the order grows past
// twice the global window.
func (e *Engine) pruneSessions() {
	if len(e.sessOrder) <= 2*e.limits.MaxSessions {
		return
	}
	keep := e.sessOrder[:0]
	for _, s := range e.sessOrder {
		if !s.terminal() || e.now-s.closedAt < 1000 {
			keep = append(keep, s)
		} else {
			delete(e.sessByID, s.id)
		}
	}
	e.sessOrder = keep
}

// maybeGrant promotes an active session to granted when every member
// diner is eating.
func (e *Engine) maybeGrant(s *Session) {
	if s.state != SessionActive {
		return
	}
	for _, v := range s.verts {
		r := e.resByID[v]
		if r == nil || r.crashed || r.diner.State() != core.Eating {
			return
		}
	}
	e.setState(s, SessionGranted)
}
