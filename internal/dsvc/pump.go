package dsvc

import (
	"repro/internal/core"
)

// Message transport. Each directed committed edge owns one FIFO queue;
// the caller chooses the interleaving by picking which queue to drain
// (PumpOne) or by draining everything to quiescence (PumpAll). Queues
// are created at edge commit and tombstoned (never re-indexed) at edge
// retirement so queue indices — and therefore a seeded schedule's
// meaning — stay stable across churn.

// edgeQueue is the in-flight messages on one directed committed edge.
type edgeQueue struct {
	from, to int
	msgs     []core.Message
	dead     bool // edge retired; tombstone keeps indices stable
}

func (e *Engine) openQueue(from, to int) {
	key := [2]int{from, to}
	if i, ok := e.qIdx[key]; ok && !e.queues[i].dead {
		e.invariant("queue %d→%d already open", from, to)
		return
	}
	e.qIdx[key] = len(e.queues)
	e.queues = append(e.queues, &edgeQueue{from: from, to: to})
}

func (e *Engine) closeQueue(from, to int) {
	key := [2]int{from, to}
	i, ok := e.qIdx[key]
	if !ok {
		e.invariant("closing unknown queue %d→%d", from, to)
		return
	}
	q := e.queues[i]
	if len(q.msgs) != 0 {
		e.invariant("closing non-empty queue %d→%d (%d msgs)", from, to, len(q.msgs))
	}
	q.dead = true
	q.msgs = nil
	delete(e.qIdx, key)
}

// route enqueues messages a diner emitted. Messages to crashed or
// unregistered processes are dropped (the suspicion oracle already
// wrote them off); a message onto a missing edge is an engine
// invariant violation.
func (e *Engine) route(msgs []core.Message) {
	for _, m := range msgs {
		dst := e.resByID[m.To]
		if dst == nil || dst.crashed {
			continue
		}
		i, ok := e.qIdx[[2]int{m.From, m.To}]
		if !ok {
			e.invariant("message %v→%v on missing edge", m.From, m.To)
			continue
		}
		q := e.queues[i]
		q.msgs = append(q.msgs, m)
		if len(q.msgs) > e.queueHW {
			e.queueHW = len(q.msgs)
		}
	}
}

// act runs one diner step (BecomeHungry, Deliver, ExitEating, abort,
// reset…) on a resource, routes its output, feeds the state transition
// to the monitors, promotes its owning session if the step completed a
// grant, and surfaces any diner-internal protocol error.
func (e *Engine) act(r *resource, step func() []core.Message) {
	before := r.diner.State()
	out := step()
	after := r.diner.State()
	e.route(out)
	if before != after {
		e.excl.OnTransition(e.now, r.id, before, after)
		e.prog.OnTransition(e.now, r.id, before, after)
		if after == core.Eating && r.owner != nil {
			e.maybeGrant(r.owner)
		}
	}
	if err := r.diner.Err(); err != nil {
		e.invariant("diner %d: %v", r.id, err)
	}
}

// deliverFrom pops the head of queue i into its destination diner.
func (e *Engine) deliverFrom(i int) bool {
	q := e.queues[i]
	if q.dead || len(q.msgs) == 0 {
		return false
	}
	m := q.msgs[0]
	q.msgs = q.msgs[1:]
	dst := e.resByID[q.to]
	if dst == nil || dst.crashed {
		return true // lost in flight
	}
	e.act(dst, func() []core.Message { return dst.diner.Deliver(m) })
	e.delivered++
	return true
}

// NonEmptyQueues returns the indices of live queues holding messages,
// in creation order. The soak uses this as the schedule's choice set.
func (e *Engine) NonEmptyQueues() []int {
	var out []int
	for i, q := range e.queues {
		if !q.dead && len(q.msgs) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// PumpOne delivers the head message of the k-th non-empty queue
// (k modulo the number of non-empty queues) and reports whether
// anything was delivered. This is the adversarial-scheduler hook: a
// seeded sequence of ks is a reproducible interleaving.
func (e *Engine) PumpOne(k int) bool {
	ne := e.NonEmptyQueues()
	if len(ne) == 0 {
		return false
	}
	if k < 0 {
		k = -k
	}
	e.deliverFrom(ne[k%len(ne)])
	e.maybeCommit()
	e.schedule()
	return true
}

// PumpAll delivers messages round-robin until quiescence and returns
// the number delivered. Commit checks and scheduling interleave so
// drains complete as their last in-flight message lands.
func (e *Engine) PumpAll() int {
	total := 0
	for {
		progressed := false
		for i := range e.queues {
			if e.deliverFrom(i) {
				progressed = true
				total++
			}
		}
		e.maybeCommit()
		e.schedule()
		if !progressed {
			return total
		}
	}
}

// Delivered returns the total messages delivered over the engine's
// lifetime.
func (e *Engine) Delivered() int { return e.delivered }

// QueueHighWater returns the deepest any edge queue has been.
func (e *Engine) QueueHighWater() int { return e.queueHW }

// wipeQueues drops every in-flight message to or from proc id (crash
// and restart semantics: the wire state dies with the process).
func (e *Engine) wipeQueues(id int) {
	for _, q := range e.queues {
		if !q.dead && (q.from == id || q.to == id) {
			q.msgs = nil
		}
	}
}
