package dsvc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The churn soak: seeded schedules interleave graph churn (add-edge,
// del-edge, register, deregister), session traffic, and crash/restart,
// with the message interleaving chosen adversarially via PumpOne. The
// bar, per instant (checked after every step):
//
//   - zero exclusion violations, ever — the in-process suspicion oracle
//     is exact and edges mutate only between drained endpoints, so
//     unlike the remote soak there is no wrong-suspicion budget;
//   - no engine-invariant violation and a clean CheckInvariants audit;
//   - after the last churn event, every admitted session is eventually
//     granted (service-level wait-freedom);
//   - the verdict trace is a pure function of the seed: the soak runs
//     every seed twice and byte-compares the traces (CI repeats this
//     under -race).

const (
	soakSeeds = 10
	soakSteps = 400
)

type soakRun struct {
	t     *testing.T
	e     *Engine
	rng   *rand.Rand
	names []string
	open  []*Session
	seq   int
	trace []string
}

func (sr *soakRun) emit(format string, args ...any) {
	sr.trace = append(sr.trace, fmt.Sprintf("t=%d ", sr.e.Now())+fmt.Sprintf(format, args...))
}

// emitErr renders an op result deterministically (error strings are
// stable; nil renders "ok").
func errv(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

func (sr *soakRun) pick() string { return sr.names[sr.rng.Intn(len(sr.names))] }

func (sr *soakRun) liveOpen() []*Session {
	keep := sr.open[:0]
	for _, s := range sr.open {
		if !s.terminal() {
			keep = append(keep, s)
		}
	}
	sr.open = keep
	return sr.open
}

func (sr *soakRun) checkInstant(step int) {
	sr.t.Helper()
	e := sr.e
	if n := e.excl.Count(); n != 0 {
		sr.t.Fatalf("step %d: exclusion violated under churn: %v\naudit tail:\n%s",
			step, e.Violations(), strings.Join(e.Audit(), "\n"))
	}
	if err := e.Err(); err != nil {
		sr.t.Fatalf("step %d: engine invariant: %v", step, err)
	}
	if step%16 == 0 {
		if err := e.CheckInvariants(); err != nil {
			sr.t.Fatalf("step %d: %v\naudit tail:\n%s", step, err, strings.Join(e.Audit(), "\n"))
		}
	}
}

func (sr *soakRun) step(i int) {
	e, rng := sr.e, sr.rng
	e.Advance(1)
	op := rng.Intn(100)
	crashedNames := func() []string {
		var out []string
		for _, rs := range e.Status().Resources {
			if rs.Crashed {
				out = append(out, rs.Name)
			}
		}
		return out
	}
	switch {
	case op < 25: // acquire 1–3 random resources
		k := 1 + rng.Intn(3)
		set := map[string]bool{}
		for len(set) < k {
			set[sr.pick()] = true
		}
		var res []string
		for _, n := range sr.names { // deterministic order
			if set[n] {
				res = append(res, n)
			}
		}
		tenant := fmt.Sprintf("t%d", rng.Intn(3))
		s, err := e.Acquire(tenant, res)
		if err == nil {
			sr.open = append(sr.open, s)
			sr.emit("acquire %v %v -> %s", tenant, res, s.ID())
		} else {
			sr.emit("acquire %v %v -> %s", tenant, res, errv(err))
		}
	case op < 45: // release a random open session
		if open := sr.liveOpen(); len(open) > 0 {
			s := open[rng.Intn(len(open))]
			sr.emit("release %s (%v) -> %s", s.ID(), s.State(), errv(e.Release(s.ID())))
		}
	case op < 60: // add-edge
		a, b := sr.pick(), sr.pick()
		sr.emit("add-edge %s %s -> %s", a, b, errv(e.AddEdge(a, b)))
	case op < 72: // del-edge
		a, b := sr.pick(), sr.pick()
		sr.emit("del-edge %s %s -> %s", a, b, errv(e.RemoveEdge(a, b)))
	case op < 75: // register a fresh resource
		sr.seq++
		n := fmt.Sprintf("x%d", sr.seq)
		if _, err := e.Register(n, "t0"); err == nil {
			sr.names = append(sr.names, n)
			sr.emit("register %s -> ok", n)
		} else {
			sr.emit("register %s -> %s", n, errv(err))
		}
	case op < 78: // deregister (usually busy-rejected; that's the point)
		n := sr.pick()
		err := e.Deregister(n)
		if err == nil {
			for j, nm := range sr.names {
				if nm == n {
					sr.names = append(sr.names[:j], sr.names[j+1:]...)
					break
				}
			}
		}
		sr.emit("deregister %s -> %s", n, errv(err))
	case op < 81: // crash
		if len(crashedNames()) < 2 { // keep most of the graph alive
			n := sr.pick()
			sr.emit("crash %s -> %s", n, errv(e.Crash(n)))
		}
	case op < 86: // restart
		if cs := crashedNames(); len(cs) > 0 {
			n := cs[rng.Intn(len(cs))]
			sr.emit("restart %s -> %s", n, errv(e.Restart(n)))
		}
	default: // adversarial partial pumping
		for j := 0; j < 1+rng.Intn(4); j++ {
			e.PumpOne(rng.Intn(1 << 20))
		}
	}
	// The acceptance schedule demands at least one crash per seed.
	if i == soakSteps/2 && len(crashedNames()) == 0 {
		n := sr.pick()
		sr.emit("forced crash %s -> %s", n, errv(e.Crash(n)))
	}
	sr.checkInstant(i)
}

// drainPostChurn ends the churn phase: restart everything, release all
// held sessions, and pump to full quiescence. Every remaining admitted
// session must reach Granted (then be released) — service-level
// wait-freedom after the last churn event.
func (sr *soakRun) drainPostChurn() {
	e := sr.e
	for _, rs := range e.Status().Resources {
		if rs.Crashed {
			sr.emit("post: restart %s -> %s", rs.Name, errv(e.Restart(rs.Name)))
		}
	}
	for round := 0; ; round++ {
		if round > 2*len(sr.names)+len(sr.open)+8 {
			sr.t.Fatalf("post-churn drain did not converge:\n%s\naudit tail:\n%s",
				strings.Join(sr.trace[maxInt(0, len(sr.trace)-20):], "\n"),
				strings.Join(e.Audit(), "\n"))
		}
		e.Advance(1)
		e.PumpAll()
		open := sr.liveOpen()
		if len(open) == 0 && e.PendingChanges() == 0 {
			break
		}
		progressed := false
		for _, s := range open {
			if s.State() == SessionGranted {
				sr.emit("post: release %s -> %s", s.ID(), errv(e.Release(s.ID())))
				progressed = true
			}
		}
		if !progressed && e.PumpAll() == 0 && len(sr.liveOpen()) > 0 {
			// No grants, no messages: every remaining session must at
			// least be making scheduling progress; one is granted next
			// round or the convergence bound above trips.
			continue
		}
	}
	if err := e.CheckInvariants(); err != nil {
		sr.t.Fatalf("post-churn: %v", err)
	}
	// Wait-freedom probe: a fresh session per live resource, admitted
	// after the last churn event, must be granted.
	for _, rs := range e.Status().Resources {
		s, err := e.Acquire("post", []string{rs.Name})
		if err != nil {
			sr.t.Fatalf("post-churn acquire %s: %v", rs.Name, err)
		}
		e.PumpAll()
		if s.State() != SessionGranted {
			sr.t.Fatalf("post-churn session over %s stuck %v (wait-freedom lost)\naudit tail:\n%s",
				rs.Name, s.State(), strings.Join(e.Audit(), "\n"))
		}
		sr.emit("post: probe %s granted as %s", rs.Name, s.ID())
		if err := e.Release(s.ID()); err != nil {
			sr.t.Fatalf("post-churn release: %v", err)
		}
		e.PumpAll()
	}
	sr.checkInstant(0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// churnSoak runs one seeded schedule to completion and returns its
// verdict trace.
func churnSoak(t *testing.T, seed int64) string {
	sr := &soakRun{
		t:   t,
		e:   NewEngine(Limits{MaxPerTenant: 32, MaxPendingChanges: 8}),
		rng: rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < 8; i++ {
		n := fmt.Sprintf("r%d", i)
		if _, err := sr.e.Register(n, "t0"); err != nil {
			t.Fatalf("seed register: %v", err)
		}
		sr.names = append(sr.names, n)
	}
	for i := 0; i < soakSteps; i++ {
		sr.step(i)
	}
	sr.drainPostChurn()
	st := sr.e.Status()
	stats := sr.e.ProgressStats()
	sr.emit("verdict: palette=%d edges=%d delivered=%d queueHW=%d grants=%d maxlat=%d violations=%d",
		st.Palette, len(st.Edges), st.Delivered, sr.e.QueueHighWater(),
		stats.Completed, stats.MaxLatency, st.Violations)
	return strings.Join(sr.trace, "\n")
}

func TestChurnSoak(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			first := churnSoak(t, seed)
			second := churnSoak(t, seed)
			if first != second {
				t.Fatalf("seed %d: verdict trace not reproducible.\n--- first:\n%s\n--- second:\n%s",
					seed, tail(first, 30), tail(second, 30))
			}
			if !strings.Contains(first, "crash") {
				t.Fatalf("seed %d: schedule exercised no crash", seed)
			}
		})
	}
}

func tail(s string, n int) string {
	lines := strings.Split(s, "\n")
	return strings.Join(lines[maxInt(0, len(lines)-n):], "\n")
}
