package dsvc

import (
	"errors"
	"testing"
)

// mustStatus asserts the invariant audit passes after a step.
func mustOK(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Err(); err != nil {
		t.Fatalf("engine invariant: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

// settle pumps to quiescence and asserts invariants.
func settle(t *testing.T, e *Engine) {
	t.Helper()
	e.PumpAll()
	mustOK(t, e)
}

func TestRegisterAcquireReleaseIsolated(t *testing.T) {
	e := NewEngine(Limits{})
	if _, err := e.Register("db", "acme"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := e.Register("db", "acme"); !errors.Is(err, ErrDuplicateResource) {
		t.Fatalf("duplicate Register err = %v", err)
	}
	s, err := e.Acquire("acme", []string{"db"})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// An isolated resource has no forks to collect: granted immediately.
	if s.State() != SessionGranted {
		t.Fatalf("state = %v, want granted", s.State())
	}
	mustOK(t, e)
	if err := e.Release(s.ID()); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.State() != SessionReleased {
		t.Fatalf("state after release = %v", s.State())
	}
	if err := e.Release(s.ID()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("double release err = %v", err)
	}
	settle(t, e)
}

func TestConflictingNeighborsSerialize(t *testing.T) {
	e := NewEngine(Limits{})
	e.Register("a", "t")
	e.Register("b", "t")
	if err := e.AddEdge("a", "b"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	settle(t, e)
	if e.PendingChanges() != 0 {
		t.Fatalf("change did not commit: %d pending", e.PendingChanges())
	}

	s1, err := e.Acquire("t", []string{"a"})
	if err != nil {
		t.Fatalf("Acquire a: %v", err)
	}
	s2, err := e.Acquire("t", []string{"b"})
	if err != nil {
		t.Fatalf("Acquire b: %v", err)
	}
	settle(t, e)
	if s1.State() != SessionGranted {
		t.Fatalf("s1 = %v, want granted", s1.State())
	}
	if s2.State() == SessionGranted {
		t.Fatalf("s2 granted while its conflicting neighbor eats")
	}
	if err := e.Release(s1.ID()); err != nil {
		t.Fatalf("Release s1: %v", err)
	}
	settle(t, e)
	if s2.State() != SessionGranted {
		t.Fatalf("s2 = %v after s1 release, want granted", s2.State())
	}
	e.Release(s2.ID())
	settle(t, e)
	if e.excl.Count() != 0 {
		t.Fatalf("exclusion violations: %v", e.Violations())
	}
}

func TestAcquireRejectsConflictingSet(t *testing.T) {
	e := NewEngine(Limits{})
	e.Register("a", "t")
	e.Register("b", "t")
	e.Register("c", "t")
	e.AddEdge("a", "b")
	settle(t, e)
	if _, err := e.Acquire("t", []string{"a", "b"}); !errors.Is(err, ErrConflictingSet) {
		t.Fatalf("committed-edge set err = %v", err)
	}
	// A *staged* edge also rejects: the set could never be granted after
	// the commit.
	s, err := e.Acquire("t", []string{"a", "c"})
	if err != nil {
		t.Fatalf("Acquire a,c: %v", err)
	}
	settle(t, e)
	e.Release(s.ID())
	if err := e.AddEdge("a", "c"); err != nil {
		t.Fatalf("AddEdge a,c: %v", err)
	}
	if _, err := e.Acquire("t", []string{"a", "c"}); !errors.Is(err, ErrConflictingSet) {
		t.Fatalf("staged-edge set err = %v", err)
	}
	if _, err := e.Acquire("t", []string{"a", "a"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("duplicate member err = %v", err)
	}
	if _, err := e.Acquire("t", nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty set err = %v", err)
	}
	if _, err := e.Acquire("t", []string{"nope"}); !errors.Is(err, ErrUnknownResource) {
		t.Fatalf("unknown member err = %v", err)
	}
	settle(t, e)
}

func TestAddEdgeWaitsForGrantedRelease(t *testing.T) {
	e := NewEngine(Limits{})
	e.Register("a", "t")
	e.Register("b", "t")
	s, _ := e.Acquire("t", []string{"a"})
	if s.State() != SessionGranted {
		t.Fatalf("s = %v", s.State())
	}
	if err := e.AddEdge("a", "b"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	settle(t, e)
	// The granted session owns the critical section: the change must not
	// commit under it.
	if e.PendingChanges() != 1 {
		t.Fatalf("pending = %d, want 1 (blocked on granted session)", e.PendingChanges())
	}
	if len(e.Status().Edges) != 0 {
		t.Fatalf("edge committed under a granted session")
	}
	e.Release(s.ID())
	settle(t, e)
	if e.PendingChanges() != 0 {
		t.Fatalf("pending = %d after release, want 0", e.PendingChanges())
	}
	st := e.Status()
	if len(st.Edges) != 1 || st.Edges[0] != [2]string{"a", "b"} {
		t.Fatalf("edges = %v", st.Edges)
	}
	// Boot-identical placement: both colored 0 before, one endpoint
	// recolored, palette is 2.
	if st.Palette != 2 {
		t.Fatalf("palette = %d, want 2", st.Palette)
	}
}

func TestAddEdgeFailsSessionHoldingBothEndpoints(t *testing.T) {
	e := NewEngine(Limits{})
	e.Register("a", "t")
	e.Register("b", "t")
	s, _ := e.Acquire("t", []string{"a", "b"})
	if s.State() != SessionGranted {
		t.Fatalf("s = %v", s.State())
	}
	e.AddEdge("a", "b")
	settle(t, e)
	// Blocked on the granted session; release lets it commit, and the
	// commit fails any non-terminal session over both endpoints — but
	// this one is already terminal by then.
	e.Release(s.ID())
	settle(t, e)
	if e.PendingChanges() != 0 {
		t.Fatalf("pending = %d after release", e.PendingChanges())
	}
	if s.State() != SessionReleased {
		t.Fatalf("released session retro-failed: %v", s.State())
	}

	// A session still PENDING over both endpoints at commit time fails:
	// its members now conflict, so it could never be granted.
	e.RemoveEdge("a", "b")
	settle(t, e)
	s0, _ := e.Acquire("t", []string{"a"})
	s2, err := e.Acquire("t", []string{"a", "b"})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	e.AddEdge("a", "b")
	settle(t, e)
	if s2.State() != SessionPending {
		t.Fatalf("s2 = %v, want pending behind s0 and the parked change", s2.State())
	}
	e.Release(s0.ID())
	settle(t, e)
	if s2.State() != SessionFailed {
		t.Fatalf("s2 = %v, want failed (edge added inside set)", s2.State())
	}
	if s2.Reason() == "" {
		t.Fatalf("failed session carries no reason")
	}
}

func TestRemoveEdgeDecaysPalette(t *testing.T) {
	e := NewEngine(Limits{})
	e.Register("a", "t")
	e.Register("b", "t")
	e.Register("c", "t")
	e.AddEdge("a", "b")
	e.AddEdge("b", "c")
	e.AddEdge("a", "c")
	settle(t, e)
	if p := e.Palette(); p != 3 {
		t.Fatalf("triangle palette = %d, want 3", p)
	}
	e.RemoveEdge("a", "b")
	e.RemoveEdge("b", "c")
	e.RemoveEdge("a", "c")
	settle(t, e)
	if p := e.Palette(); p != 1 {
		t.Fatalf("palette after full decay = %d, want 1", p)
	}
	for _, c := range e.Colors() {
		if c != 0 {
			t.Fatalf("colors after decay = %v, want all 0", e.Colors())
		}
	}
}

func TestAdmissionWindows(t *testing.T) {
	e := NewEngine(Limits{MaxPerTenant: 1, MaxSessions: 2, MaxPendingChanges: 1, MaxSessionResources: 2})
	e.Register("a", "t1")
	e.Register("b", "t1")
	e.Register("c", "t2")
	s1, err := e.Acquire("t1", []string{"a"})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if _, err := e.Acquire("t1", []string{"b"}); !errors.Is(err, ErrTenantWindow) {
		t.Fatalf("tenant window err = %v", err)
	}
	if _, err := e.Acquire("t2", []string{"c"}); err != nil {
		t.Fatalf("second tenant Acquire: %v", err)
	}
	if _, err := e.Acquire("t3", []string{"b"}); !errors.Is(err, ErrGlobalWindow) {
		t.Fatalf("global window err = %v", err)
	}
	if _, err := e.Acquire("t3", []string{"a", "b", "c"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized set err = %v", err)
	}
	e.Release(s1.ID())
	if _, err := e.Acquire("t1", []string{"b"}); err != nil {
		t.Fatalf("Acquire after window drain: %v", err)
	}

	s, _ := e.Acquire("t2", []string{"c"})
	_ = s
	if err := e.AddEdge("a", "b"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := e.AddEdge("a", "c"); !errors.Is(err, ErrChangeWindow) {
		t.Fatalf("change window err = %v", err)
	}
	settle(t, e)

	er := NewEngine(Limits{MaxResources: 1})
	er.Register("x", "t")
	if _, err := er.Register("y", "t"); !errors.Is(err, ErrResourceWindow) {
		t.Fatalf("resource window err = %v", err)
	}
}

func TestDeregisterLifecycle(t *testing.T) {
	e := NewEngine(Limits{})
	idA, _ := e.Register("a", "t")
	e.Register("b", "t")
	e.AddEdge("a", "b")
	settle(t, e)
	s, _ := e.Acquire("t", []string{"a"})
	if err := e.Deregister("a"); !errors.Is(err, ErrResourceBusy) {
		t.Fatalf("busy Deregister err = %v", err)
	}
	e.Release(s.ID())
	settle(t, e)
	// Pin the drain open with a granted session on the neighbor (b is in
	// the del-proc's affected set), so the retiring window is observable.
	sb, _ := e.Acquire("t", []string{"b"})
	settle(t, e)
	if sb.State() != SessionGranted {
		t.Fatalf("sb = %v", sb.State())
	}
	if err := e.Deregister("a"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	settle(t, e)
	if e.PendingChanges() != 1 {
		t.Fatalf("pending = %d, want del-proc blocked on granted neighbor", e.PendingChanges())
	}
	// Retiring rejects new references even before the commit.
	if _, err := e.Acquire("t", []string{"a"}); !errors.Is(err, ErrRetiring) {
		t.Fatalf("retiring Acquire err = %v", err)
	}
	if err := e.AddEdge("a", "b"); !errors.Is(err, ErrRetiring) {
		t.Fatalf("retiring AddEdge err = %v", err)
	}
	if err := e.Deregister("a"); !errors.Is(err, ErrRetiring) {
		t.Fatalf("double Deregister err = %v", err)
	}
	e.Release(sb.ID())
	settle(t, e)
	st := e.Status()
	if len(st.Resources) != 1 || st.Resources[0].Name != "b" {
		t.Fatalf("resources after retire = %+v", st.Resources)
	}
	if len(st.Edges) != 0 {
		t.Fatalf("edges after retire = %v", st.Edges)
	}
	// The vertex id recycles.
	idC, err := e.Register("c", "t")
	if err != nil {
		t.Fatalf("Register c: %v", err)
	}
	if idC != idA {
		t.Fatalf("recycled id = %d, want %d", idC, idA)
	}
	mustOK(t, e)
	// The recycled vertex starts unconnected: a fresh session grants.
	s2, err := e.Acquire("t", []string{"c"})
	if err != nil || s2.State() != SessionGranted {
		t.Fatalf("Acquire on recycled id: %v, %v", err, s2.State())
	}
	settle(t, e)
}

func TestCrashFailsOwnerAndRestartRecovers(t *testing.T) {
	e := NewEngine(Limits{})
	e.Register("a", "t")
	e.Register("b", "t")
	e.AddEdge("a", "b")
	settle(t, e)
	s, _ := e.Acquire("t", []string{"a", "b"}) // wait: a–b conflict → rejected
	if s != nil {
		t.Fatalf("conflicting acquire admitted")
	}
	s, err := e.Acquire("t", []string{"a"})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	settle(t, e)
	if s.State() != SessionGranted {
		t.Fatalf("s = %v", s.State())
	}
	if err := e.Crash("a"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if s.State() != SessionFailed {
		t.Fatalf("s after crash = %v, want failed", s.State())
	}
	settle(t, e)
	// The surviving neighbor suspects the dead process and can eat.
	s2, _ := e.Acquire("t", []string{"b"})
	settle(t, e)
	if s2.State() != SessionGranted {
		t.Fatalf("s2 with crashed neighbor = %v, want granted", s2.State())
	}
	e.Release(s2.ID())
	settle(t, e)
	if err := e.Restart("a"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	settle(t, e)
	s3, _ := e.Acquire("t", []string{"a"})
	settle(t, e)
	if s3.State() != SessionGranted {
		t.Fatalf("s3 after restart = %v, want granted", s3.State())
	}
	if e.excl.Count() != 0 {
		t.Fatalf("violations: %v", e.Violations())
	}
}

func TestHeadOfLineReservation(t *testing.T) {
	e := NewEngine(Limits{})
	e.Register("a", "t")
	e.Register("b", "t")
	s0, _ := e.Acquire("t", []string{"a"})
	settle(t, e)
	// s1 needs a (busy) and b (free): it must reserve b so the younger
	// s2 over b alone cannot overtake it forever.
	s1, _ := e.Acquire("t", []string{"a", "b"})
	s2, _ := e.Acquire("t", []string{"b"})
	settle(t, e)
	if s1.State() != SessionPending || s2.State() != SessionPending {
		t.Fatalf("s1 = %v, s2 = %v, want both pending", s1.State(), s2.State())
	}
	e.Release(s0.ID())
	settle(t, e)
	if s1.State() != SessionGranted {
		t.Fatalf("s1 = %v after s0 release, want granted", s1.State())
	}
	if s2.State() != SessionPending {
		t.Fatalf("s2 = %v, want still pending behind s1", s2.State())
	}
	e.Release(s1.ID())
	settle(t, e)
	if s2.State() != SessionGranted {
		t.Fatalf("s2 = %v, want granted", s2.State())
	}
}

func TestChurnUnderActiveTraffic(t *testing.T) {
	// An edge is added between two resources whose sessions keep
	// re-acquiring: the drain must recall the diners, commit, and the
	// recalled sessions must still complete afterwards.
	e := NewEngine(Limits{})
	e.Register("a", "t")
	e.Register("b", "t")
	sa, _ := e.Acquire("t", []string{"a"})
	sb, _ := e.Acquire("t", []string{"b"})
	if sa.State() != SessionGranted || sb.State() != SessionGranted {
		t.Fatalf("independent grants: %v, %v", sa.State(), sb.State())
	}
	if err := e.AddEdge("a", "b"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	settle(t, e)
	if e.PendingChanges() != 1 {
		t.Fatalf("pending = %d (both sessions granted)", e.PendingChanges())
	}
	e.Release(sa.ID())
	settle(t, e)
	if e.PendingChanges() != 1 {
		t.Fatalf("pending = %d (sb still granted)", e.PendingChanges())
	}
	e.Release(sb.ID())
	settle(t, e)
	if e.PendingChanges() != 0 {
		t.Fatalf("pending = %d after both releases", e.PendingChanges())
	}
	// Post-churn wait-freedom: new sessions over the now-conflicting
	// resources serialize but both complete.
	s1, _ := e.Acquire("t", []string{"a"})
	s2, _ := e.Acquire("t", []string{"b"})
	settle(t, e)
	if s1.State() != SessionGranted {
		t.Fatalf("s1 = %v", s1.State())
	}
	e.Release(s1.ID())
	settle(t, e)
	if s2.State() != SessionGranted {
		t.Fatalf("s2 = %v", s2.State())
	}
	e.Release(s2.ID())
	settle(t, e)
	if e.excl.Count() != 0 {
		t.Fatalf("violations: %v", e.Violations())
	}
}
