package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
)

// hygienicFactory adapts NewHygienic to the runner (ignoring colors:
// Chandy–Misra priorities are dynamic).
func hygienicFactory(id, _ int, nbrColors map[int]int, _ func(int) bool) (core.Process, error) {
	nbrs := make([]int, 0, len(nbrColors))
	for j := range nbrColors {
		nbrs = append(nbrs, j)
	}
	return NewHygienic(id, nbrs, nil)
}

// hygienicFDFactory wires ◇P₁ into the eat guard.
func hygienicFDFactory(id, _ int, nbrColors map[int]int, suspects func(int) bool) (core.Process, error) {
	nbrs := make([]int, 0, len(nbrColors))
	for j := range nbrColors {
		nbrs = append(nbrs, j)
	}
	return NewHygienic(id, nbrs, suspects)
}

func TestHygienicValidation(t *testing.T) {
	if _, err := NewHygienic(0, []int{0}, nil); err == nil {
		t.Fatal("self neighbor must be rejected")
	}
	h, err := NewHygienic(0, []int{1, 2, 1}, nil) // duplicate neighbor tolerated
	if err != nil {
		t.Fatal(err)
	}
	if held, dirty := h.HoldsFork(1); !held || !dirty {
		t.Fatal("lower ID must start with the dirty fork")
	}
	hi, err := NewHygienic(2, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if held, _ := hi.HoldsFork(0); held {
		t.Fatal("higher ID must start with the token, not the fork")
	}
}

func TestHygienicYieldsDirtyForkWhileHungry(t *testing.T) {
	// The hygiene rule: a hungry process yields a requested dirty fork
	// (this is what makes Chandy–Misra starvation-free).
	lo, err := NewHygienic(0, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo.BecomeHungry() // holds its dirty fork; still missing nothing... it eats!
	if lo.State() != core.Eating {
		t.Fatalf("lo should eat immediately (holds its only fork), is %v", lo.State())
	}
	lo.ExitEating()
	lo.BecomeHungry()
	if lo.State() != core.Eating {
		t.Fatal("setup: lo eats again")
	}
	// While eating, a request is deferred.
	if out := lo.Deliver(core.Message{Kind: core.Request, From: 1, To: 0}); len(out) != 0 {
		t.Fatalf("eating process must defer: %v", out)
	}
	out := lo.ExitEating()
	if len(out) != 1 || out[0].Kind != core.Fork {
		t.Fatalf("exit must grant the deferred fork: %v", out)
	}
	// Now hungry without the fork: re-request, and when the neighbor
	// sends it back clean, keep it even if re-requested (clean = has
	// priority).
	out = lo.BecomeHungry()
	if len(out) != 1 || out[0].Kind != core.Request {
		t.Fatalf("expected re-request: %v", out)
	}
	lo.Deliver(core.Message{Kind: core.Fork, From: 1, To: 0})
	if lo.State() != core.Eating {
		t.Fatalf("clean fork must let lo eat, is %v", lo.State())
	}
	if lo.Err() != nil {
		t.Fatal(lo.Err())
	}
}

func TestHygienicCrashFreeCorrectAndFair(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"ring9":   graph.Ring(9),
		"clique5": graph.Clique(5),
		"grid33":  graph.Grid(3, 3),
	} {
		suite := metrics.NewSuite(g)
		r, err := runner.New(runner.Config{
			Graph:        g,
			Seed:         3,
			Delays:       sim.UniformDelay{Min: 1, Max: 4},
			NewProcess:   hygienicFactory,
			Workload:     runner.Saturated(),
			OnTransition: suite.OnTransition,
			OnCrash:      suite.OnCrash,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Network().SetObserver(suite.Observer())
		r.Run(20000)
		suite.Finish(20000)
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n := suite.Exclusion.Count(); n != 0 {
			t.Fatalf("%s: %d violations", name, n)
		}
		for i, c := range suite.Progress.CompletedSessions() {
			if c == 0 {
				t.Fatalf("%s: process %d starved (C-M is starvation-free)", name, i)
			}
		}
		// Hygienic dining is frugal: at most one token and one fork per
		// edge in flight (2 < the doorway algorithm's 4).
		if hw := suite.Occupancy.MaxHighWater(); hw > 2 {
			t.Fatalf("%s: occupancy %d, want ≤ 2", name, hw)
		}
	}
}

func TestHygienicCrashBlocksNeighborsWithoutDetector(t *testing.T) {
	g := graph.Ring(6)
	suite := metrics.NewSuite(g)
	r, err := runner.New(runner.Config{
		Graph:        g,
		Seed:         5,
		NewProcess:   hygienicFactory,
		Workload:     runner.Saturated(),
		OnTransition: suite.OnTransition,
		OnCrash:      suite.OnCrash,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.CrashAt(500, 0)
	r.Run(20000)
	suite.Finish(20000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if starving := suite.Progress.Starving(20000, 5000); len(starving) == 0 {
		t.Fatal("classic Chandy–Misra must block on a crashed fork holder")
	}
}

func TestHygienicWithDetectorSurvivesCrashes(t *testing.T) {
	g := graph.Ring(8)
	suite := metrics.NewSuite(g)
	r, err := runner.New(runner.Config{
		Graph: g,
		Seed:  7,
		NewDetector: func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
			return detector.NewPerfect(k, gg, 10)
		},
		NewProcess:   hygienicFDFactory,
		Workload:     runner.Saturated(),
		OnTransition: suite.OnTransition,
		OnCrash:      suite.OnCrash,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.CrashAt(500, 2)
	r.Run(20000)
	suite.Finish(20000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if starving := suite.Progress.Starving(20000, 5000); len(starving) != 0 {
		t.Fatalf("◇P₁-augmented hygienic dining should not starve: %v", starving)
	}
}

// Property: crash-free hygienic dining never violates exclusion and
// starves nobody on random connected graphs.
func TestQuickHygienicCrashFree(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%8) + 3
		g := graph.ConnectedGNP(n, 0.4, sim.NewKernel(seed).Rand())
		suite := metrics.NewSuite(g)
		r, err := runner.New(runner.Config{
			Graph:        g,
			Seed:         seed,
			Delays:       sim.UniformDelay{Min: 1, Max: 4},
			NewProcess:   hygienicFactory,
			Workload:     runner.Saturated(),
			OnTransition: suite.OnTransition,
			OnCrash:      suite.OnCrash,
		})
		if err != nil {
			return false
		}
		r.Network().SetObserver(suite.Observer())
		r.Run(12000)
		suite.Finish(12000)
		if r.CheckInvariants() != nil || suite.Exclusion.Count() != 0 {
			return false
		}
		for _, c := range suite.Progress.CompletedSessions() {
			if c == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
