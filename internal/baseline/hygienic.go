package baseline

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Hygienic is the Chandy–Misra "hygienic" dining philosophers algorithm
// (Chandy & Misra 1984, "The drinking philosophers problem"): forks are
// dirty or clean; a hungry process requests missing forks with per-edge
// tokens; a process must yield a *dirty* requested fork unless it is
// eating, and forks are cleaned in flight. Dynamic priorities (you lose
// priority by eating, because your forks become dirty) make it
// starvation-free on any acyclic initial orientation without any
// doorway or failure detector.
//
// As a baseline it brackets Algorithm 1 from the other side than
// Choy–Singh: hygienic dining is perpetually safe and starvation-free
// when crash-free, with waiting bounded only by chain length (not a
// constant k), and — having no failure detector — it is not wait-free:
// a crashed fork holder blocks its neighborhood forever.
//
// Message mapping: core.Request carries the token (Color unused),
// core.Fork carries a (freshly cleaned) fork. Ping/Ack are never used.
type Hygienic struct {
	id        int
	neighbors []int
	isNbr     map[int]bool
	suspects  func(j int) bool // optional ◇P₁ (nil/Never = classic C-M)

	state core.State
	fork  map[int]bool
	dirty map[int]bool
	token map[int]bool

	eatCount int
	err      error
}

var _ core.Process = (*Hygienic)(nil)

// ErrHygienicProtocol marks protocol-invariant violations.
var ErrHygienicProtocol = errors.New("baseline/hygienic: protocol violation")

// NewHygienic builds a Chandy–Misra diner. Initial orientation: every
// fork starts dirty at the lower-ID endpoint with the token opposite,
// which makes the global precedence order acyclic (the total ID order).
// suspects may be nil (no detector — the classic algorithm); a ◇P₁
// module makes the eat guard crash-tolerant like Algorithm 1's, for
// apples-to-apples crash experiments.
func NewHygienic(id int, neighbors []int, suspects func(j int) bool) (*Hygienic, error) {
	h := &Hygienic{
		id:       id,
		isNbr:    make(map[int]bool, len(neighbors)),
		suspects: suspects,
		state:    core.Thinking,
		fork:     make(map[int]bool, len(neighbors)),
		dirty:    make(map[int]bool, len(neighbors)),
		token:    make(map[int]bool, len(neighbors)),
	}
	if h.suspects == nil {
		h.suspects = func(int) bool { return false }
	}
	for _, j := range neighbors {
		if j == id {
			return nil, fmt.Errorf("%w: self neighbor %d", ErrHygienicProtocol, id)
		}
		if h.isNbr[j] {
			continue
		}
		h.isNbr[j] = true
		h.neighbors = append(h.neighbors, j)
		if id < j {
			h.fork[j] = true
			h.dirty[j] = true
		} else {
			h.token[j] = true
		}
	}
	sort.Ints(h.neighbors)
	return h, nil
}

// ID returns the process ID.
func (h *Hygienic) ID() int { return h.id }

// State implements core.Process.
func (h *Hygienic) State() core.State { return h.state }

// Err implements core.Process.
func (h *Hygienic) Err() error { return h.err }

// EatCount returns how many times the process has eaten.
func (h *Hygienic) EatCount() int { return h.eatCount }

// HoldsFork reports whether the fork shared with j is held, and whether
// it is dirty.
func (h *Hygienic) HoldsFork(j int) (held, dirty bool) { return h.fork[j], h.dirty[j] }

// HoldsToken reports whether the request token shared with j is held.
func (h *Hygienic) HoldsToken(j int) bool { return h.token[j] }

// SetSuspects rebinds the ◇P₁ module (nil never suspects). Used by the
// model checker when branching executions.
func (h *Hygienic) SetSuspects(fn func(j int) bool) {
	if fn == nil {
		fn = func(int) bool { return false }
	}
	h.suspects = fn
}

// Clone returns a deep copy sharing the suspects oracle.
func (h *Hygienic) Clone() *Hygienic {
	cp := func(m map[int]bool) map[int]bool {
		out := make(map[int]bool, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	nbrs := make([]int, len(h.neighbors))
	copy(nbrs, h.neighbors)
	return &Hygienic{
		id:        h.id,
		neighbors: nbrs,
		isNbr:     cp(h.isNbr),
		suspects:  h.suspects,
		state:     h.state,
		fork:      cp(h.fork),
		dirty:     cp(h.dirty),
		token:     cp(h.token),
		eatCount:  h.eatCount,
		err:       h.err,
	}
}

// StateKey serializes the protocol-relevant state canonically (for
// model-checker state hashing).
func (h *Hygienic) StateKey() string {
	var b []byte
	b = append(b, byte('0'+int(h.state)))
	for _, j := range h.neighbors {
		b = append(b, ';')
		if h.fork[j] {
			b = append(b, 'f')
		}
		if h.dirty[j] {
			b = append(b, 'd')
		}
		if h.token[j] {
			b = append(b, 't')
		}
	}
	return string(b)
}

func (h *Hygienic) fail(err error, j int) {
	if h.err == nil {
		h.err = fmt.Errorf("hygienic %d, neighbor %d: %w", h.id, j, err)
	}
}

// BecomeHungry implements core.Process.
func (h *Hygienic) BecomeHungry() []core.Message {
	if h.state != core.Thinking || h.err != nil {
		return nil
	}
	h.state = core.Hungry
	return h.fire(nil)
}

// Deliver implements core.Process.
func (h *Hygienic) Deliver(m core.Message) []core.Message {
	if h.err != nil {
		return nil
	}
	j := m.From
	if !h.isNbr[j] {
		h.fail(fmt.Errorf("%w: message from non-neighbor", ErrHygienicProtocol), j)
		return nil
	}
	var out []core.Message
	switch m.Kind {
	case core.Request: // token arrives
		if h.token[j] {
			h.fail(fmt.Errorf("%w: duplicate token", ErrHygienicProtocol), j)
			return nil
		}
		if !h.fork[j] {
			h.fail(fmt.Errorf("%w: fork requested but not held", ErrHygienicProtocol), j)
			return nil
		}
		h.token[j] = true
		// The hygiene rule: yield a dirty fork unless eating; keep a
		// clean fork (we have priority) until after we eat.
		if h.dirty[j] && h.state != core.Eating {
			out = append(out, core.Message{Kind: core.Fork, From: h.id, To: j})
			h.fork[j] = false
			h.dirty[j] = false
		}
	case core.Fork: // a freshly cleaned fork arrives
		if h.fork[j] {
			h.fail(fmt.Errorf("%w: duplicate fork", ErrHygienicProtocol), j)
			return nil
		}
		if h.token[j] {
			h.fail(fmt.Errorf("%w: fork while holding token", ErrHygienicProtocol), j)
			return nil
		}
		h.fork[j] = true
		h.dirty[j] = false
	default:
		h.fail(fmt.Errorf("%w: unexpected %v message", ErrHygienicProtocol, m.Kind), j)
		return nil
	}
	return h.fire(out)
}

// ReevaluateSuspicion implements core.Process.
func (h *Hygienic) ReevaluateSuspicion() []core.Message {
	if h.err != nil {
		return nil
	}
	return h.fire(nil)
}

// ExitEating implements core.Process: forks stay held but dirty;
// deferred requests are granted with cleaned forks.
func (h *Hygienic) ExitEating() []core.Message {
	if h.state != core.Eating || h.err != nil {
		return nil
	}
	h.state = core.Thinking
	var out []core.Message
	for _, j := range h.neighbors {
		if h.token[j] && h.fork[j] {
			out = append(out, core.Message{Kind: core.Fork, From: h.id, To: j})
			h.fork[j] = false
			h.dirty[j] = false
		}
	}
	return h.fire(out)
}

// fire requests missing forks and eats when all are present.
func (h *Hygienic) fire(out []core.Message) []core.Message {
	for h.state == core.Hungry {
		progress := false
		for _, j := range h.neighbors {
			if h.token[j] && !h.fork[j] {
				out = append(out, core.Message{Kind: core.Request, From: h.id, To: j})
				h.token[j] = false
				progress = true
			}
		}
		if h.eatGuard() {
			h.state = core.Eating
			h.eatCount++
			for _, j := range h.neighbors {
				if h.fork[j] {
					h.dirty[j] = true // eating soils every fork
				}
			}
			return out
		}
		if !progress {
			return out
		}
	}
	return out
}

func (h *Hygienic) eatGuard() bool {
	for _, j := range h.neighbors {
		if !h.fork[j] && !h.suspects(j) {
			return false
		}
	}
	return true
}
