package baseline

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Forks is a doorway-free dining algorithm: pure fork collection with
// static color priorities and the same per-edge fork/token discipline
// as Algorithm 1's Phase 2, plus ◇P₁ substitution for crashed
// neighbors. Messages reuse core's Request/Fork kinds so the same
// network and monitors apply (it never sends Ping/Ack).
//
// Priority rule: a process receiving a fork request defers it while
// eating, or while hungry with a higher color than the requester;
// otherwise it yields the fork immediately. Because there is no
// doorway, a lower-colored process can lose its forks to hungry
// higher-colored neighbors indefinitely: the algorithm satisfies
// exclusion but not k-bounded waiting for any k, and a process with two
// or more saturated higher-colored neighbors can starve outright. This
// is the ablation that shows what the paper's Phase 1 buys.
type Forks struct {
	id        int
	color     int
	neighbors []int
	colorOf   map[int]int
	suspects  func(j int) bool

	state core.State
	fork  map[int]bool
	token map[int]bool

	eatCount int
	err      error
}

var _ core.Process = (*Forks)(nil)

// ErrForksProtocol marks protocol-invariant violations in the baseline.
var ErrForksProtocol = errors.New("baseline/forks: protocol violation")

// NewForks builds a doorway-free static-priority diner. As in
// Algorithm 1, the fork starts at the higher-colored endpoint and the
// token at the lower-colored one.
func NewForks(id, color int, neighborColors map[int]int, suspects func(j int) bool) (*Forks, error) {
	f := &Forks{
		id:       id,
		color:    color,
		colorOf:  make(map[int]int, len(neighborColors)),
		suspects: suspects,
		state:    core.Thinking,
		fork:     make(map[int]bool, len(neighborColors)),
		token:    make(map[int]bool, len(neighborColors)),
	}
	if f.suspects == nil {
		f.suspects = func(int) bool { return false }
	}
	for j, c := range neighborColors {
		if j == id {
			return nil, fmt.Errorf("%w: self neighbor %d", ErrForksProtocol, id)
		}
		if c == color {
			return nil, fmt.Errorf("%w: neighbor %d shares color %d", ErrForksProtocol, j, c)
		}
		f.neighbors = append(f.neighbors, j)
		f.colorOf[j] = c
		if color > c {
			f.fork[j] = true
		} else {
			f.token[j] = true
		}
	}
	sort.Ints(f.neighbors)
	return f, nil
}

// ID returns the process ID.
func (f *Forks) ID() int { return f.id }

// State implements core.Process.
func (f *Forks) State() core.State { return f.state }

// Err implements core.Process.
func (f *Forks) Err() error { return f.err }

// EatCount returns how many times the process has eaten.
func (f *Forks) EatCount() int { return f.eatCount }

// HoldsFork reports whether the fork shared with j is held.
func (f *Forks) HoldsFork(j int) bool { return f.fork[j] }

func (f *Forks) fail(err error, j int) {
	if f.err == nil {
		f.err = fmt.Errorf("forks %d, neighbor %d: %w", f.id, j, err)
	}
}

// BecomeHungry implements core.Process.
func (f *Forks) BecomeHungry() []core.Message {
	if f.state != core.Thinking || f.err != nil {
		return nil
	}
	f.state = core.Hungry
	return f.fire(nil)
}

// Deliver implements core.Process.
func (f *Forks) Deliver(m core.Message) []core.Message {
	if f.err != nil {
		return nil
	}
	j := m.From
	if _, ok := f.colorOf[j]; !ok {
		f.fail(fmt.Errorf("%w: message from non-neighbor", ErrForksProtocol), j)
		return nil
	}
	var out []core.Message
	switch m.Kind {
	case core.Request:
		if f.token[j] {
			f.fail(fmt.Errorf("%w: duplicate token", ErrForksProtocol), j)
			return nil
		}
		if !f.fork[j] {
			f.fail(fmt.Errorf("%w: fork requested but not held", ErrForksProtocol), j)
			return nil
		}
		f.token[j] = true
		defer2 := f.state == core.Eating || (f.state == core.Hungry && f.color > m.Color)
		if !defer2 {
			out = append(out, core.Message{Kind: core.Fork, From: f.id, To: j})
			f.fork[j] = false
		}
	case core.Fork:
		if f.fork[j] {
			f.fail(fmt.Errorf("%w: duplicate fork", ErrForksProtocol), j)
			return nil
		}
		if f.token[j] {
			f.fail(fmt.Errorf("%w: fork while holding token", ErrForksProtocol), j)
			return nil
		}
		f.fork[j] = true
	default:
		f.fail(fmt.Errorf("%w: unexpected %v message (no doorway)", ErrForksProtocol, m.Kind), j)
		return nil
	}
	return f.fire(out)
}

// ReevaluateSuspicion implements core.Process.
func (f *Forks) ReevaluateSuspicion() []core.Message {
	if f.err != nil {
		return nil
	}
	return f.fire(nil)
}

// ExitEating implements core.Process: transit to thinking and grant all
// deferred fork requests.
func (f *Forks) ExitEating() []core.Message {
	if f.state != core.Eating || f.err != nil {
		return nil
	}
	f.state = core.Thinking
	var out []core.Message
	for _, j := range f.neighbors {
		if f.token[j] && f.fork[j] {
			out = append(out, core.Message{Kind: core.Fork, From: f.id, To: j})
			f.fork[j] = false
		}
	}
	return f.fire(out)
}

// fire runs the enabled internal actions (request missing forks; eat)
// to a fixpoint.
func (f *Forks) fire(out []core.Message) []core.Message {
	for f.state == core.Hungry {
		progress := false
		for _, j := range f.neighbors {
			if f.token[j] && !f.fork[j] {
				out = append(out, core.Message{Kind: core.Request, From: f.id, To: j, Color: f.color})
				f.token[j] = false
				progress = true
			}
		}
		if f.eatGuard() {
			f.state = core.Eating
			f.eatCount++
			return out
		}
		if !progress {
			return out
		}
	}
	return out
}

func (f *Forks) eatGuard() bool {
	for _, j := range f.neighbors {
		if !f.fork[j] && !f.suspects(j) {
			return false
		}
	}
	return true
}
