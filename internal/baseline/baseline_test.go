package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
)

// choySinghFactory adapts NewChoySingh to the runner.
func choySinghFactory(id, color int, nbrColors map[int]int, _ func(int) bool) (core.Process, error) {
	return NewChoySingh(id, color, nbrColors)
}

// forksFactory adapts NewForks to the runner.
func forksFactory(id, color int, nbrColors map[int]int, suspects func(int) bool) (core.Process, error) {
	return NewForks(id, color, nbrColors, suspects)
}

func buildRun(t *testing.T, cfg runner.Config) (*runner.Runner, *metrics.Suite) {
	t.Helper()
	suite := metrics.NewSuite(cfg.Graph)
	cfg.OnTransition = suite.OnTransition
	cfg.OnCrash = suite.OnCrash
	r, err := runner.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Network().SetObserver(suite.Observer())
	return r, suite
}

func TestChoySinghCrashFreeIsCorrect(t *testing.T) {
	g := graph.Ring(10)
	r, suite := buildRun(t, runner.Config{
		Graph:      g,
		Seed:       1,
		Delays:     sim.UniformDelay{Min: 1, Max: 4},
		NewProcess: choySinghFactory,
		Workload:   runner.Saturated(),
	})
	r.Run(15000)
	suite.Finish(15000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Crash-free, the original algorithm is perpetually safe and
	// starvation-free.
	if n := suite.Exclusion.Count(); n != 0 {
		t.Fatalf("violations = %d, want 0", n)
	}
	for i, c := range suite.Progress.CompletedSessions() {
		if c == 0 {
			t.Fatalf("process %d starved in a crash-free run", i)
		}
	}
	if hw := suite.Occupancy.MaxHighWater(); hw > 4 {
		t.Fatalf("occupancy = %d, want ≤ 4", hw)
	}
}

func TestChoySinghCrashBlocksNeighbors(t *testing.T) {
	g := graph.Path(3) // 0 - 1 - 2; crash the middle
	r, suite := buildRun(t, runner.Config{
		Graph:      g,
		Seed:       3,
		Delays:     sim.FixedDelay{D: 2},
		NewProcess: choySinghFactory,
		Workload:   runner.Saturated(),
	})
	r.CrashAt(300, 1)
	r.Run(20000)
	suite.Finish(20000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	starving := suite.Progress.Starving(20000, 5000)
	if len(starving) != 2 {
		t.Fatalf("starving = %v, want both ends blocked by the crashed middle", starving)
	}
}

func TestForksValidation(t *testing.T) {
	if _, err := NewForks(0, 1, map[int]int{1: 1}, nil); err == nil {
		t.Fatal("same-color neighbor must be rejected")
	}
	if _, err := NewForks(0, 1, map[int]int{0: 2}, nil); err == nil {
		t.Fatal("self neighbor must be rejected")
	}
	f, err := NewForks(0, 2, map[int]int{1: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HoldsFork(1) {
		t.Fatal("higher color must start with the fork")
	}
}

func TestForksBasicExchange(t *testing.T) {
	hi, err := NewForks(0, 2, map[int]int{1: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := NewForks(1, 1, map[int]int{0: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := lo.BecomeHungry()
	if len(out) != 1 || out[0].Kind != core.Request {
		t.Fatalf("out = %v, want fork request", out)
	}
	out = hi.Deliver(out[0]) // hi thinking → grants
	if len(out) != 1 || out[0].Kind != core.Fork {
		t.Fatalf("out = %v, want fork grant", out)
	}
	lo.Deliver(out[0])
	if lo.State() != core.Eating {
		t.Fatalf("lo state = %v, want eating", lo.State())
	}
	if lo.Err() != nil || hi.Err() != nil {
		t.Fatalf("errors: %v / %v", lo.Err(), hi.Err())
	}
}

func TestForksSafetyCrashFree(t *testing.T) {
	g := graph.Ring(9)
	r, suite := buildRun(t, runner.Config{
		Graph:      g,
		Seed:       5,
		Delays:     sim.UniformDelay{Min: 1, Max: 4},
		NewProcess: forksFactory,
		Workload:   runner.Saturated(),
	})
	r.Run(15000)
	suite.Finish(15000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := suite.Exclusion.Count(); n != 0 {
		t.Fatalf("violations = %d, want 0 (forks are exclusive)", n)
	}
}

func TestForksUnboundedOvertaking(t *testing.T) {
	// A path 0-1-2 where the middle vertex has the lowest color: its
	// two saturated higher-colored neighbors keep stealing its forks,
	// so the overtake count grows far beyond 2 — the doorway ablation.
	g := graph.Path(3)
	colors := []int{1, 0, 2} // middle lowest
	r, suite := buildRun(t, runner.Config{
		Graph:      g,
		Colors:     colors,
		Seed:       2,
		Delays:     sim.FixedDelay{D: 2},
		NewProcess: forksFactory,
		Workload:   runner.Saturated(),
	})
	r.Run(30000)
	suite.Finish(30000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m := suite.Overtake.MaxCount(); m <= 2 {
		t.Fatalf("no-doorway baseline max overtakes = %d; expected far beyond the paper's bound of 2", m)
	}
}

func TestForksAlgorithmOneComparison(t *testing.T) {
	// The same adversarial setup under Algorithm 1 keeps the bound ≤ 2:
	// this pairing is experiment E3's headline contrast.
	g := graph.Path(3)
	colors := []int{1, 0, 2}
	r, suite := buildRun(t, runner.Config{
		Graph:    g,
		Colors:   colors,
		Seed:     2,
		Delays:   sim.FixedDelay{D: 2},
		Workload: runner.Saturated(),
	})
	r.Run(30000)
	suite.Finish(30000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m := suite.Overtake.MaxCount(); m > 2 {
		t.Fatalf("Algorithm 1 max overtakes = %d, want ≤ 2", m)
	}
}

func TestForksWaitFreeForCrashesWithDetector(t *testing.T) {
	// With ◇P₁, the forks baseline does tolerate crashes (suspicion
	// substitutes for forks); what it lacks is fairness, not crash
	// tolerance for the top-priority processes.
	g := graph.Ring(8)
	r, suite := buildRun(t, runner.Config{
		Graph: g,
		Seed:  8,
		NewDetector: func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
			return detector.NewPerfect(k, gg, 10)
		},
		Delays:     sim.UniformDelay{Min: 1, Max: 3},
		NewProcess: forksFactory,
		Workload:   runner.Saturated(),
	})
	r.CrashAt(500, 0)
	r.Run(20000)
	suite.Finish(20000)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := suite.Exclusion.Count(); n != 0 {
		t.Fatalf("violations = %d, want 0", n)
	}
	// The crashed vertex's neighbors must keep eating.
	for _, j := range g.Neighbors(0) {
		if suite.Progress.CompletedSessions()[j] < 10 {
			t.Fatalf("neighbor %d of crashed vertex made little progress", j)
		}
	}
}

func TestForksNoopTransitions(t *testing.T) {
	f, err := NewForks(0, 2, map[int]int{1: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out := f.ExitEating(); out != nil {
		t.Fatal("ExitEating while thinking must be a no-op")
	}
	f.BecomeHungry()
	if out := f.BecomeHungry(); out != nil {
		t.Fatal("double BecomeHungry must be a no-op")
	}
}

func TestForksRejectsDoorwayMessages(t *testing.T) {
	f, err := NewForks(0, 2, map[int]int{1: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Deliver(core.Message{Kind: core.Ping, From: 1, To: 0})
	if f.Err() == nil {
		t.Fatal("ping delivered to the doorway-free baseline must be flagged")
	}
	if out := f.BecomeHungry(); out != nil {
		t.Fatal("errored process must be inert")
	}
}

func TestForksSuspicionSubstitutesForFork(t *testing.T) {
	suspect := false
	f, err := NewForks(0, 1, map[int]int{1: 2}, func(int) bool { return suspect })
	if err != nil {
		t.Fatal(err)
	}
	f.BecomeHungry() // sends request; fork never arrives
	if f.State() != core.Hungry {
		t.Fatal("setup: should be hungry")
	}
	suspect = true
	f.ReevaluateSuspicion()
	if f.State() != core.Eating {
		t.Fatalf("state = %v, want eating via suspicion", f.State())
	}
}
