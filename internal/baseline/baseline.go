// Package baseline provides the comparison algorithms for the
// reproduction experiments:
//
//   - ChoySingh: the original asynchronous-doorway dining algorithm
//     that Algorithm 1 extends (Choy & Singh 1995). It is safe and
//     fair when crash-free, but it consults no failure detector, so a
//     single crash eventually blocks its neighbors forever — the
//     impossibility that motivates the paper.
//   - Forks: a static-priority fork algorithm with no doorway
//     (hierarchical resource allocation in the style of Lynch 1980),
//     augmented with ◇P₁ for crash tolerance. It demonstrates why the
//     doorway is needed: without it, higher-colored processes overtake
//     lower-colored neighbors without bound, so eventual k-bounded
//     waiting fails for every k.
package baseline

import (
	"repro/internal/core"
)

// NewChoySingh builds the original Choy–Singh asynchronous doorway
// diner. Algorithm 1 differs from Choy–Singh in exactly two ways — it
// consults ◇P₁ in the doorway and eating guards, and it grants at most
// one ack per neighbor per hungry session — so the baseline is the core
// diner with both mechanisms disabled.
func NewChoySingh(id, color int, neighborColors map[int]int) (*core.Diner, error) {
	return core.NewDiner(core.Config{
		ID:             id,
		Color:          color,
		NeighborColors: neighborColors,
		Options: core.Options{
			IgnoreDetector:     true,
			DisableRepliedFlag: true,
		},
	})
}
