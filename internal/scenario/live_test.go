package scenario_test

import (
	"os"
	"testing"

	"repro/internal/scenario"
)

// TestLiveBackendOptIn executes every live-declared scenario on real
// loopback TCP sockets. Live runs are wall-clock and inherently
// nondeterministic, so they are opt-in twice over: a scenario must
// declare "backends: live", and the test only runs with
// SCENARIO_LIVE=1 in the environment (the CI conformance job covers
// the deterministic backends; this one is for hardware validation).
func TestLiveBackendOptIn(t *testing.T) {
	if os.Getenv("SCENARIO_LIVE") == "" {
		t.Skip("live TCP scenarios are opt-in; set SCENARIO_LIVE=1")
	}
	names, data := corpus(t)
	ran := 0
	for _, p := range names {
		sc, err := scenario.Parse(data[p])
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Supports(scenario.BackendLive) {
			continue
		}
		ran++
		t.Run(sc.Name, func(t *testing.T) {
			out, err := scenario.Run(sc, scenario.BackendLive)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range out.Mismatches() {
				t.Errorf("%s got %s, committed expectation %s (%s)",
					m.Check.Prop, m.Got, m.Check.Expect, out.Diagnose())
			}
		})
	}
	if ran == 0 {
		t.Error("no scenario declares the live backend")
	}
}
