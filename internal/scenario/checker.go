package scenario

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Observations is the backend-normalized measurement record every
// checker reads. Each backend reduces its own instrumentation (the
// sim metrics.Suite, the netsim/live cluster monitors) to this one
// struct, so a property has exactly one verdict rule — the heart of
// the differential contract.
type Observations struct {
	Backend Backend
	// Settled reports that the anchor-seeking stabilization search
	// converged: within its iteration budget it found a time with no
	// later exclusion violation and no later over-K waiting window, and
	// every live process then completed at least minWindowsPostHeal
	// hungry sessions that started after the anchor (the "teeth" that
	// keep an end-of-run anchor from passing vacuously).
	Settled bool
	// ExclusionViolations counts live-neighbor simultaneous-eating
	// events at or after the anchor.
	ExclusionViolations int
	// Starving lists live processes still hungry at the end whose
	// session is old enough to be suspicious.
	Starving []int
	// MinWindowsClosed is the minimum over live processes of completed
	// post-anchor hungry sessions.
	MinWindowsClosed int
	// MaxOvertake is the largest overtake count among waiting windows
	// whose hungry session started at or after the anchor.
	MaxOvertake int
	// Quiescent reports no sends to crashed processes at or after the
	// quiescence deadline. Sim only.
	Quiescent bool
	// QueueHW is the per-edge application-message occupancy high water.
	QueueHW int
	// PairDepthHW and SendWindow are the ARQ per-pair queue high water
	// and its configured bound. Netsim/live only.
	PairDepthHW, SendWindow int
	// InvariantErr is the first protocol-invariant violation, "" if
	// none.
	InvariantErr string
	// FallenOutsideBlast lists processes that fell over outside the
	// blast radius of the scripted crashes/restarts.
	FallenOutsideBlast []int
}

// Result is one evaluated check.
type Result struct {
	Check Check
	Got   Verdict
}

// EvalCheck applies one property checker to the observations. This is
// the entire checker registry: one rule per Property, identical for
// every backend.
func EvalCheck(c Check, obs *Observations) Verdict {
	pass := false
	switch c.Prop {
	case PropExclusionClean:
		// ◇WX (Theorem 1): stabilization settles and no live neighbors
		// eat together after it.
		pass = obs.Settled && obs.ExclusionViolations == 0
	case PropWaitFreedom:
		// Theorem 2: nobody starves, and every live process keeps
		// completing sessions after the faults end.
		pass = len(obs.Starving) == 0 && obs.MinWindowsClosed >= minWindowsPostHeal
	case PropOvertakeBound:
		// ◇K-BW (Theorem 3, K=2 by default): no post-anchor waiting
		// window exceeds K overtakes.
		pass = obs.Settled && obs.MaxOvertake <= c.K
	case PropQuiescence:
		pass = obs.Quiescent
	case PropQueueBound:
		pass = obs.QueueHW <= c.Limit
	case PropPairDepthBound:
		pass = obs.PairDepthHW <= obs.SendWindow
	case PropContainment:
		pass = obs.InvariantErr == "" && len(obs.FallenOutsideBlast) == 0
	default:
		panic(fmt.Sprintf("scenario: no checker for property %v", c.Prop))
	}
	if pass {
		return VerdictPass
	}
	return VerdictFail
}

// Evaluate runs every declared check against the observations, in
// declaration order.
func Evaluate(sc *Scenario, obs *Observations) []Result {
	out := make([]Result, len(sc.Checks))
	for i, c := range sc.Checks {
		out[i] = Result{Check: c, Got: EvalCheck(c, obs)}
	}
	return out
}

// SuiteParams parameterize the reduction of a sim metrics.Suite to
// Observations.
type SuiteParams struct {
	// End is the run horizon.
	End sim.Time
	// Heal is where the anchor search starts (the scenario's heal tick,
	// or 0 when it has none).
	Heal sim.Time
	// K is the overtake bound the anchor search moves past.
	K int
	// QuiescenceBy is the quiescence deadline.
	QuiescenceBy sim.Time
	// Crashed lists processes down at the end of the run.
	Crashed []int
	// InvariantErr is the runner's invariant check result.
	InvariantErr error
}

// ObserveSuite reduces a finished sim metrics.Suite to Observations:
// the sim backend's half of the differential contract, also the seam
// the negative-trace tests feed hand-built histories through. The
// anchor search mirrors cluster.RunPlan: start at the heal, move past
// the last exclusion violation and the last over-K window, give up
// after anchorBudget moves, then demand minWindowsPostHeal completed
// post-anchor sessions from every live process.
func ObserveSuite(g *graph.Graph, s *metrics.Suite, p SuiteParams) *Observations {
	down := make([]bool, g.N())
	for _, id := range p.Crashed {
		down[id] = true
	}

	anchor := p.Heal
	settled := false
	for iter := 0; iter < anchorBudget && !settled; iter++ {
		moved := false
		if lv, ok := s.Exclusion.LastViolation(); ok && lv >= anchor {
			anchor = lv + 1
			moved = true
		}
		if le, ok := s.Overtake.LastExcessWindow(p.K); ok && le >= anchor {
			anchor = le + 1
			moved = true
		}
		settled = !moved
	}

	windows := s.Overtake.Windows()
	minClosed := -1
	for id := 0; id < g.N(); id++ {
		if down[id] {
			continue
		}
		n := closedSessions(windows, id, anchor)
		if minClosed < 0 || n < minClosed {
			minClosed = n
		}
	}
	if minClosed < 0 {
		minClosed = 0
	}
	if minClosed < minWindowsPostHeal {
		settled = false
	}

	obs := &Observations{
		Backend:             BackendSim,
		Settled:             settled,
		ExclusionViolations: s.Exclusion.CountAfter(anchor),
		Starving:            s.Progress.Starving(p.End, p.End/5),
		MinWindowsClosed:    minClosed,
		MaxOvertake:         s.Overtake.MaxCountFrom(anchor),
		Quiescent:           s.Quiescence.QuiescentBy(p.QuiescenceBy),
		QueueHW:             s.Occupancy.MaxHighWater(),
	}
	if p.InvariantErr != nil {
		obs.InvariantErr = p.InvariantErr.Error()
	}
	return obs
}

// closedSessions counts victim's completed hungry sessions starting at
// or after anchor. The overtake monitor emits one window per neighbor
// per session, all sharing the session's HungryAt, so distinct
// HungryAt values count sessions.
func closedSessions(windows []metrics.OvertakeWindow, victim int, anchor sim.Time) int {
	n := 0
	last := sim.Time(-1)
	seen := false
	for _, w := range windows {
		if w.Victim != victim || !w.Closed || w.HungryAt < anchor {
			continue
		}
		if !seen || w.HungryAt != last {
			n++
			last = w.HungryAt
			seen = true
		}
	}
	return n
}

// quiescenceDeadline resolves a quiescence check's deadline: the
// explicit by= tick, or three quarters of the horizon.
func (sc *Scenario) quiescenceDeadline() int64 {
	if c, ok := sc.check(PropQuiescence); ok && c.By != 0 {
		return c.By
	}
	return sc.Horizon * 3 / 4
}
