package scenario_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// FuzzScenarioParse drives the strict parser with arbitrary bytes. The
// invariants: Parse never panics; when it accepts an input, the
// rendered canonical form must itself parse (parse∘render identity on
// the semantic value), and rendering that reparse must reproduce the
// canonical bytes exactly (render is a fixpoint). Together these
// guarantee the corpus files have exactly one canonical spelling and
// -update style rewrites are loss-free.
func FuzzScenarioParse(f *testing.F) {
	// Seed with the real corpus plus the committed valid/truncated/
	// garbage seeds under testdata/fuzz/FuzzScenarioParse.
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.scen"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := scenario.Parse(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		canon := scenario.Render(sc)
		sc2, err := scenario.Parse(canon)
		if err != nil {
			t.Fatalf("canonical render does not reparse: %v\ninput:\n%s\nrender:\n%s", err, data, canon)
		}
		canon2 := scenario.Render(sc2)
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("render is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", canon, canon2)
		}
	})
}
