package scenario

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/remote/cluster"
	"repro/internal/sim"
)

// Netsim/live time mapping: 1 scenario tick = 1 millisecond of
// (virtual respectively wall) time; the cluster's monitor axis is
// nanoseconds since start.
const (
	tick   = time.Millisecond
	tickNS = sim.Time(tick)
)

// starveAge is how long a live process must have been continuously
// hungry at the end of a cluster run to count as starving — matching
// the chaos soak's threshold.
const starveAge = time.Second

// runNetsim executes the scenario against the full remote stack on the
// virtual network: the event script compiles to a netsim.ChaosPlan and
// cluster.RunPlan executes it, runs the anchor search, and hands back
// the monitors.
func runNetsim(sc *Scenario) (*Observations, error) {
	g := sc.Graph()
	pr, err := cluster.RunPlan(cluster.PlanConfig{
		Seed:             sc.Seed,
		Graph:            g,
		Plan:             compileChaosPlan(sc),
		OvertakeK:        sc.OvertakeK(),
		MinSessions:      minWindowsPostHeal,
		HeartbeatPeriod:  time.Duration(sc.Det.Period) * tick,
		InitialTimeout:   time.Duration(sc.Det.Timeout) * tick,
		TimeoutIncrement: time.Duration(sc.Det.Increment) * tick,
		EatTime:          time.Duration(sc.Work.Eat) * tick,
		ThinkTime:        time.Duration(sc.Work.Think) * tick,
		DialBackoff:      time.Duration(sc.Opts.Backoff) * tick,
		DialBackoffMax:   time.Duration(sc.Opts.BackoffMax) * tick,
		SendWindow:       sc.Opts.Window,
	})
	if err != nil {
		return nil, err
	}
	cl := pr.Cluster
	defer cl.Stop()
	return observeCluster(BackendNetsim, sc, cl, pr.Blast, pr.StableAt, pr.Settled, pr.WaitErr), nil
}

// compileChaosPlan lowers the scenario's event script onto the netsim
// chaos vocabulary. A scenario partition becomes pairwise blackholed
// links across the cut; the heal becomes the single ChaosHealAll.
func compileChaosPlan(sc *Scenario) netsim.ChaosPlan {
	n := sc.Topo.Procs()
	pl := netsim.ChaosPlan{Seed: sc.Seed, Duration: time.Duration(sc.Horizon) * tick}
	add := func(ev netsim.ChaosEvent) { pl.Events = append(pl.Events, ev) }
	for _, ev := range sc.Events {
		at := time.Duration(ev.At) * tick
		switch ev.Kind {
		case EventCrash:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosCrash, A: cluster.NodeAddr(ev.Procs[0])})
		case EventRestart:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosRestart, A: cluster.NodeAddr(ev.Procs[0])})
		case EventPartition, EventUnpartition:
			// A partition cuts every link across the side/complement
			// boundary; an unpartition heals the same pairs one link at a
			// time (the selective heal, so links cut by other still-open
			// faults stay down).
			kind := netsim.ChaosPartition
			if ev.Kind == EventUnpartition {
				kind = netsim.ChaosHealLink
			}
			side := make([]bool, n)
			for _, p := range ev.Procs {
				side[p] = true
			}
			for p := 0; p < n; p++ {
				if !side[p] {
					continue
				}
				for q := 0; q < n; q++ {
					if !side[q] {
						add(netsim.ChaosEvent{At: at, Kind: kind,
							A: cluster.NodeAddr(p), B: cluster.NodeAddr(q)})
					}
				}
			}
		case EventHealLink:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosHealLink,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B)})
		case EventPartitionLink:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosPartition,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B)})
		case EventPartitionDir:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosPartitionDir,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B)})
		case EventReset:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosReset,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B)})
		case EventTruncate:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosTruncate,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B), DropTail: ev.Bytes})
		case EventSlowLink:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosSlowLink,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B), Rate: ev.Rate})
		case EventStopDrain:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosStopDrain,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B)})
		case EventResumeDrain:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosResumeDrain,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B)})
		case EventLatency:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosSetLink,
				A: cluster.NodeAddr(ev.A), B: cluster.NodeAddr(ev.B),
				Latency: time.Duration(ev.Latency) * tick,
				Jitter:  time.Duration(ev.Jitter) * tick})
		case EventHeal:
			add(netsim.ChaosEvent{At: at, Kind: netsim.ChaosHealAll})
		case EventBurst, EventAddEdge, EventDelEdge, EventAddProc, EventDelProc:
			// Sim- and dsvc-only vocabulary; Supports(BackendNetsim)
			// rejects scenarios carrying these before a netsim run can
			// start.
			panic("scenario: netsim backend cannot compile event kind " + ev.Kind.String())
		}
	}
	return pl
}

// observeCluster reduces a finished cluster run to Observations — the
// shared reduction of the netsim and live backends.
func observeCluster(b Backend, sc *Scenario, cl *cluster.Cluster, blast map[int]bool, stable sim.Time, settled bool, waitErr error) *Observations {
	n := sc.Topo.Procs()
	down := make([]bool, n)
	for _, ev := range sc.Events {
		switch ev.Kind {
		case EventCrash:
			down[ev.Procs[0]] = true
		case EventRestart:
			down[ev.Procs[0]] = false
		case EventPartition, EventUnpartition, EventPartitionLink,
			EventPartitionDir, EventReset, EventTruncate, EventSlowLink,
			EventStopDrain, EventResumeDrain, EventLatency, EventBurst,
			EventHeal, EventHealLink:
			// Link faults and the heals change no process's up/down status.
		case EventAddEdge, EventDelEdge, EventAddProc, EventDelProc:
			// Dsvc-only vocabulary; cluster runs never carry these.
			panic("scenario: cluster reduction cannot interpret event kind " + ev.Kind.String())
		}
	}
	fallen := cl.FallenProcs()
	for _, p := range fallen {
		down[p] = true
	}

	sessions := cl.ClosedSessionsFrom(stable)
	minClosed := -1
	for id := 0; id < n; id++ {
		if down[id] {
			continue
		}
		if minClosed < 0 || sessions[id] < minClosed {
			minClosed = sessions[id]
		}
	}
	if minClosed < 0 {
		minClosed = 0
	}
	if minClosed < minWindowsPostHeal {
		settled = false
	}

	var outside []int
	for _, p := range fallen {
		if !blast[p] {
			outside = append(outside, p)
		}
	}

	obs := &Observations{
		Backend:             b,
		Settled:             settled && waitErr == nil,
		ExclusionViolations: cl.ExclusionViolationsAfter(stable),
		Starving:            cl.Starving(starveAge),
		MinWindowsClosed:    minClosed,
		MaxOvertake:         cl.MaxOvertakeFrom(stable),
		QueueHW:             cl.MaxEdgeOccupancy(),
		PairDepthHW:         cl.MaxPairDepth(),
		SendWindow:          cl.SendWindow(),
		FallenOutsideBlast:  outside,
	}
	if ok, detail := cl.ErrsOutsideBlast(blast); !ok {
		obs.InvariantErr = detail
	}
	return obs
}
