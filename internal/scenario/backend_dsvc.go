package scenario

import (
	"errors"
	"fmt"

	"repro/internal/dsvc"
)

// runDsvc executes the scenario on the dining-as-a-service engine:
// the topology boots as one registered resource per process plus its
// conflict edges, and the workload is a saturated per-resource client
// loop — each live resource's client re-acquires a single-resource
// session after Think ticks and releases it Eat ticks after the
// grant. The churn vocabulary maps onto the engine's runtime-mutation
// API (add-edge/del-edge through the session-drain protocol, add-proc
// as a fresh registration, del-proc as a deregistration), and
// crash/restart hit the hosted diners directly. Everything is pumped
// to quiescence each tick, so a run is a pure function of the
// scenario text and per-seed repeats are byte-identical by
// construction.
func runDsvc(sc *Scenario) (*Observations, error) {
	n := sc.Topo.Procs()
	e := dsvc.NewEngine(dsvc.Limits{MaxPerTenant: 256, MaxPendingChanges: 64})
	name := func(p int) string { return fmt.Sprintf("p%d", p) }
	for p := 0; p < n; p++ {
		if _, err := e.Register(name(p), "scen"); err != nil {
			return nil, fmt.Errorf("dsvc boot: register %s: %w", name(p), err)
		}
	}
	for _, ed := range sc.Graph().Edges() {
		if err := e.AddEdge(name(ed[0]), name(ed[1])); err != nil {
			return nil, fmt.Errorf("dsvc boot: edge %d-%d: %w", ed[0], ed[1], err)
		}
	}
	e.PumpAll()

	// The stabilization anchor: the heal when there is one, else the
	// last churn/fault event — wait-freedom is claimed for sessions
	// admitted after it (the post-churn window).
	anchor := int64(0)
	if heal, ok := sc.HealAt(); ok {
		anchor = heal
	} else {
		for _, ev := range sc.Events {
			if ev.At > anchor {
				anchor = ev.At
			}
		}
	}

	type client struct {
		sess       *dsvc.Session
		acquiredAt int64
		grantSeen  int64
		nextAt     int64
		closedPost int
	}
	clients := make([]*client, n)
	for p := range clients {
		clients[p] = &client{grantSeen: -1}
	}
	down := make([]bool, n)
	retired := make([]bool, n)

	// retryable admission rejections: the client just tries again next
	// tick (windows are backpressure, retiring/crashed are transient
	// from the script's point of view).
	retryable := func(err error) bool {
		return errors.Is(err, dsvc.ErrTenantWindow) ||
			errors.Is(err, dsvc.ErrGlobalWindow) ||
			errors.Is(err, dsvc.ErrRetiring) ||
			errors.Is(err, dsvc.ErrCrashed) ||
			errors.Is(err, dsvc.ErrConflictingSet)
	}

	evIdx := 0
	for t := int64(0); t <= sc.Horizon; t++ {
		for evIdx < len(sc.Events) && sc.Events[evIdx].At <= t {
			ev := sc.Events[evIdx]
			evIdx++
			switch ev.Kind {
			case EventCrash:
				p := ev.Procs[0]
				if err := e.Crash(name(p)); err != nil {
					return nil, fmt.Errorf("dsvc event crash %d: %w", p, err)
				}
				down[p] = true
			case EventRestart:
				p := ev.Procs[0]
				if err := e.Restart(name(p)); err != nil {
					return nil, fmt.Errorf("dsvc event restart %d: %w", p, err)
				}
				down[p] = false
				clients[p].nextAt = t + sc.Work.Think
			case EventAddEdge:
				if err := e.AddEdge(name(ev.A), name(ev.B)); err != nil {
					return nil, fmt.Errorf("dsvc event add-edge %d-%d: %w", ev.A, ev.B, err)
				}
			case EventDelEdge:
				if err := e.RemoveEdge(name(ev.A), name(ev.B)); err != nil {
					return nil, fmt.Errorf("dsvc event del-edge %d-%d: %w", ev.A, ev.B, err)
				}
			case EventAddProc:
				p := len(clients)
				if _, err := e.Register(name(p), "scen"); err != nil {
					return nil, fmt.Errorf("dsvc event add-proc %d: %w", p, err)
				}
				clients = append(clients, &client{grantSeen: -1, nextAt: t + sc.Work.Think})
				down = append(down, false)
				retired = append(retired, false)
			case EventDelProc:
				p := ev.Procs[0]
				c := clients[p]
				if c.sess != nil && c.sess.State() != dsvc.SessionReleased && c.sess.State() != dsvc.SessionFailed {
					if err := e.Release(c.sess.ID()); err != nil {
						return nil, fmt.Errorf("dsvc event del-proc %d: release: %w", p, err)
					}
				}
				c.sess = nil
				if err := e.Deregister(name(p)); err != nil {
					return nil, fmt.Errorf("dsvc event del-proc %d: %w", p, err)
				}
				retired[p] = true
			case EventHeal:
				// No link faults to end: on this backend the heal is purely
				// the stabilization anchor.
			case EventPartition, EventUnpartition, EventPartitionLink,
				EventPartitionDir, EventReset, EventTruncate, EventSlowLink,
				EventStopDrain, EventResumeDrain, EventLatency, EventBurst,
				EventHealLink:
				// Network vocabulary; Supports(BackendDsvc) rejects
				// scenarios carrying these before a dsvc run can start.
				panic("scenario: dsvc backend cannot execute event kind " + ev.Kind.String())
			}
		}

		for p, c := range clients {
			if down[p] || retired[p] {
				continue
			}
			if c.sess != nil {
				switch c.sess.State() {
				case dsvc.SessionGranted:
					if c.grantSeen < 0 {
						c.grantSeen = t
					}
					if t-c.grantSeen >= sc.Work.Eat {
						if err := e.Release(c.sess.ID()); err != nil {
							return nil, fmt.Errorf("dsvc release %s: %w", c.sess.ID(), err)
						}
						if c.acquiredAt >= anchor {
							c.closedPost++
						}
						c.sess = nil
						c.nextAt = t + sc.Work.Think
					}
				case dsvc.SessionReleased, dsvc.SessionFailed:
					// Closed externally (crash, edge-commit failure): go
					// hungry again after a think pause.
					c.sess = nil
					c.nextAt = t + sc.Work.Think
				case dsvc.SessionPending, dsvc.SessionActive:
					// Still waiting on the grant.
				}
			}
			if c.sess == nil && t >= c.nextAt {
				s, err := e.Acquire("scen", []string{name(p)})
				if err != nil {
					if !retryable(err) {
						return nil, fmt.Errorf("dsvc acquire %s: %w", name(p), err)
					}
					c.nextAt = t + 1
					continue
				}
				c.sess = s
				c.acquiredAt = t
				c.grantSeen = -1
			}
		}

		e.PumpAll()
		e.Advance(1)
	}

	minClosed := -1
	var starving []int
	for p, c := range clients {
		if down[p] || retired[p] {
			continue
		}
		if minClosed < 0 || c.closedPost < minClosed {
			minClosed = c.closedPost
		}
		if c.sess != nil && !terminalState(c.sess.State()) && sc.Horizon-c.acquiredAt > sc.Horizon/5 {
			starving = append(starving, p)
		}
	}
	if minClosed < 0 {
		minClosed = 0
	}

	obs := &Observations{
		Backend:             BackendDsvc,
		Settled:             e.PendingChanges() == 0 && minClosed >= minWindowsPostHeal,
		ExclusionViolations: len(e.Violations()),
		Starving:            starving,
		MinWindowsClosed:    minClosed,
		QueueHW:             e.QueueHighWater(),
	}
	if err := e.Err(); err != nil {
		obs.InvariantErr = err.Error()
	} else if err := e.CheckInvariants(); err != nil {
		obs.InvariantErr = err.Error()
	}
	return obs, nil
}

// terminalState reports whether a session state is terminal.
func terminalState(s dsvc.SessionState) bool {
	return s == dsvc.SessionReleased || s == dsvc.SessionFailed
}
