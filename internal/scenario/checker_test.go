package scenario_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// cleanObs is an observation record that passes every checker; the
// negative table mutates one field at a time off this baseline.
func cleanObs() *scenario.Observations {
	return &scenario.Observations{
		Backend:          scenario.BackendNetsim,
		Settled:          true,
		MinWindowsClosed: 5,
		MaxOvertake:      2,
		Quiescent:        true,
		QueueHW:          3,
		PairDepthHW:      4,
		SendWindow:       256,
	}
}

// TestEvalCheckNegative proves every property checker in the registry
// can actually fail: for each Property, a hand-built violating
// observation record must produce VerdictFail while the clean baseline
// produces VerdictPass.
func TestEvalCheckNegative(t *testing.T) {
	cases := []struct {
		name    string
		check   scenario.Check
		violate func(o *scenario.Observations)
	}{
		{"exclusion_clean/violations", scenario.Check{Prop: scenario.PropExclusionClean},
			func(o *scenario.Observations) { o.ExclusionViolations = 1 }},
		{"exclusion_clean/unsettled", scenario.Check{Prop: scenario.PropExclusionClean},
			func(o *scenario.Observations) { o.Settled = false }},
		{"wait_freedom/starving", scenario.Check{Prop: scenario.PropWaitFreedom},
			func(o *scenario.Observations) { o.Starving = []int{3} }},
		{"wait_freedom/no_teeth", scenario.Check{Prop: scenario.PropWaitFreedom},
			func(o *scenario.Observations) { o.MinWindowsClosed = 1 }},
		{"overtake_bound/excess", scenario.Check{Prop: scenario.PropOvertakeBound, K: 2},
			func(o *scenario.Observations) { o.MaxOvertake = 3 }},
		{"overtake_bound/unsettled", scenario.Check{Prop: scenario.PropOvertakeBound, K: 2},
			func(o *scenario.Observations) { o.Settled = false }},
		{"quiescence/late_send", scenario.Check{Prop: scenario.PropQuiescence},
			func(o *scenario.Observations) { o.Quiescent = false }},
		{"queue_bound/over_limit", scenario.Check{Prop: scenario.PropQueueBound, Limit: 8},
			func(o *scenario.Observations) { o.QueueHW = 9 }},
		{"pair_depth_bound/over_window", scenario.Check{Prop: scenario.PropPairDepthBound},
			func(o *scenario.Observations) { o.PairDepthHW = 257 }},
		{"containment/invariant", scenario.Check{Prop: scenario.PropContainment},
			func(o *scenario.Observations) { o.InvariantErr = "fork duplicated on edge (0,1)" }},
		{"containment/fallen_outside", scenario.Check{Prop: scenario.PropContainment},
			func(o *scenario.Observations) { o.FallenOutsideBlast = []int{4} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := scenario.EvalCheck(tc.check, cleanObs()); got != scenario.VerdictPass {
				t.Fatalf("clean baseline: got %s, want pass", got)
			}
			bad := cleanObs()
			tc.violate(bad)
			if got := scenario.EvalCheck(tc.check, bad); got != scenario.VerdictFail {
				t.Fatalf("violating observations: got %s, want fail", got)
			}
		})
	}
}

// feedSessions drives n clean hungry→eating→thinking sessions for every
// process of a ring, two ticks apart, starting at t. Returns the first
// free tick. Neighbors never overlap an eating interval: process i eats
// alone in its window.
func feedSessions(s *metrics.Suite, procs, n int, t sim.Time) sim.Time {
	for k := 0; k < n; k++ {
		for id := 0; id < procs; id++ {
			s.OnTransition(t, id, core.Thinking, core.Hungry)
			s.OnTransition(t+1, id, core.Hungry, core.Eating)
			s.OnTransition(t+2, id, core.Eating, core.Thinking)
			t += 3
		}
	}
	return t
}

// TestObserveSuiteNegativeTraces feeds hand-built violating histories
// through the REAL sim monitors (not mocked observations) and checks
// the reduction + checker pipeline flags each one, while the clean
// history passes. This is the end-to-end negative test for the sim
// half of the checker registry.
func TestObserveSuiteNegativeTraces(t *testing.T) {
	g := graph.Ring(5)
	const end = sim.Time(1000)
	params := scenario.SuiteParams{End: end, K: 2, QuiescenceBy: 500}

	run := func(build func(s *metrics.Suite)) *scenario.Observations {
		s := metrics.NewSuite(g)
		build(s)
		s.Finish(end)
		return scenario.ObserveSuite(g, s, params)
	}

	clean := run(func(s *metrics.Suite) { feedSessions(s, 5, 4, 10) })
	for _, c := range []scenario.Check{
		{Prop: scenario.PropExclusionClean},
		{Prop: scenario.PropWaitFreedom},
		{Prop: scenario.PropOvertakeBound, K: 2},
		{Prop: scenario.PropQuiescence},
		{Prop: scenario.PropQueueBound, Limit: 8},
	} {
		if got := scenario.EvalCheck(c, clean); got != scenario.VerdictPass {
			t.Fatalf("clean trace: %s got %s, want pass (%+v)", c.Prop, got, clean)
		}
	}

	t.Run("exclusion_violation", func(t *testing.T) {
		// Neighbors 0 and 1 eat simultaneously after every session has
		// closed: the anchor search moves past the violation, finds no
		// post-anchor sessions, and must refuse to settle.
		obs := run(func(s *metrics.Suite) {
			tt := feedSessions(s, 5, 4, 10)
			s.OnTransition(tt, 0, core.Thinking, core.Eating)
			s.OnTransition(tt, 1, core.Thinking, core.Eating)
		})
		if got := scenario.EvalCheck(scenario.Check{Prop: scenario.PropExclusionClean}, obs); got != scenario.VerdictFail {
			t.Fatalf("got %s, want fail (%+v)", got, obs)
		}
	})

	t.Run("overtake_excess", func(t *testing.T) {
		// Process 1 overtakes its hungry neighbor 0 three times at the
		// end of the run: the trailing over-K window leaves nothing for
		// the anchor to settle on.
		obs := run(func(s *metrics.Suite) {
			tt := feedSessions(s, 5, 4, 10)
			s.OnTransition(tt, 0, core.Thinking, core.Hungry)
			for k := sim.Time(0); k < 3; k++ {
				s.OnTransition(tt+1+3*k, 1, core.Thinking, core.Hungry)
				s.OnTransition(tt+2+3*k, 1, core.Hungry, core.Eating)
				s.OnTransition(tt+3+3*k, 1, core.Eating, core.Thinking)
			}
			s.OnTransition(tt+11, 0, core.Hungry, core.Eating)
			s.OnTransition(tt+12, 0, core.Eating, core.Thinking)
		})
		if got := scenario.EvalCheck(scenario.Check{Prop: scenario.PropOvertakeBound, K: 2}, obs); got != scenario.VerdictFail {
			t.Fatalf("got %s, want fail (%+v)", got, obs)
		}
	})

	t.Run("starvation", func(t *testing.T) {
		// Process 3 goes hungry early and never eats again while
		// everyone else keeps cycling: it is starving at the end, and
		// its open session also denies the wait-freedom teeth.
		obs := run(func(s *metrics.Suite) {
			s.OnTransition(5, 3, core.Thinking, core.Hungry)
			feedSessions(s, 3, 4, 10)
		})
		if got := scenario.EvalCheck(scenario.Check{Prop: scenario.PropWaitFreedom}, obs); got != scenario.VerdictFail {
			t.Fatalf("got %s, want fail (%+v)", got, obs)
		}
		if len(obs.Starving) == 0 {
			t.Fatalf("expected process 3 in the starving set, got %+v", obs)
		}
	})

	t.Run("quiescence_late_send", func(t *testing.T) {
		// A message reaches crashed process 2 after the quiescence
		// deadline (500): retransmissions to the dead were not parked.
		obs := run(func(s *metrics.Suite) {
			feedSessions(s, 5, 4, 10)
			s.OnCrash(200, 2)
			s.Observer().OnSend(700, 1, 2, "fork-request")
		})
		if got := scenario.EvalCheck(scenario.Check{Prop: scenario.PropQuiescence}, obs); got != scenario.VerdictFail {
			t.Fatalf("got %s, want fail (%+v)", got, obs)
		}
	})

	t.Run("queue_overflow", func(t *testing.T) {
		// Nine undelivered app messages pile up on edge 0→1: the
		// occupancy high water breaches the Section 7 sanity lid of 8.
		obs := run(func(s *metrics.Suite) {
			feedSessions(s, 5, 4, 10)
			for i := 0; i < 9; i++ {
				s.Observer().OnSend(300, 0, 1, i)
			}
		})
		if got := scenario.EvalCheck(scenario.Check{Prop: scenario.PropQueueBound, Limit: 8}, obs); got != scenario.VerdictFail {
			t.Fatalf("got %s, want fail (queue_hw=%d)", got, obs.QueueHW)
		}
	})
}
