// Package scenario is the declarative conformance layer: one text
// scenario file describes a topology, a workload, a fault schedule,
// a detector configuration, and the paper properties the run must
// satisfy (◇WX, wait-freedom, ◇2-BW, quiescence, channel/queue
// bounds), and one engine executes it against any supported backend —
// the pure deterministic simulator (internal/sim via internal/harness),
// the virtual-time network (internal/netsim via
// cluster.RunPlan), or, opt-in, a real TCP loopback cluster.
//
// Every scenario doubles as a differential test: a scenario runnable
// on both deterministic backends must produce the same verdict for
// every declared property on both, and per-seed runs must render
// byte-identical traces across repeats (the DESIGN S19 determinism
// contract extended to this layer; see DESIGN S22).
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Backend names an execution substrate a scenario can bind.
type Backend int

// Backends, in engine order. Sim and netsim are deterministic; live is
// wall-clock TCP and opt-in (never selected by default).
const (
	// BackendSim is the pure deterministic simulator (internal/sim,
	// driven through internal/harness).
	BackendSim Backend = iota + 1
	// BackendNetsim is the remote stack on the virtual-time in-memory
	// network (internal/netsim, driven through cluster.RunPlan).
	BackendNetsim
	// BackendLive is the remote stack on loopback TCP and the wall
	// clock. Opt-in: a scenario must declare it in its backends line.
	BackendLive
	// BackendDsvc is the dining-as-a-service engine (internal/dsvc):
	// the topology boots as registered resources plus conflict edges,
	// the workload is per-resource acquire/release session traffic, and
	// the churn vocabulary (add-edge/del-edge/add-proc/del-proc)
	// mutates the graph at runtime through the session-drain protocol.
	// Deterministic, but opt-in like live: a scenario must declare it.
	BackendDsvc
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendSim:
		return "sim"
	case BackendNetsim:
		return "netsim"
	case BackendLive:
		return "live"
	case BackendDsvc:
		return "dsvc"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend inverts String.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "sim":
		return BackendSim, nil
	case "netsim":
		return BackendNetsim, nil
	case "live":
		return BackendLive, nil
	case "dsvc":
		return BackendDsvc, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (want sim, netsim, live, or dsvc)", s)
	}
}

// TopoKind enumerates the topology constructors a scenario may name.
type TopoKind int

// Topology kinds.
const (
	// TopoRing is graph.Ring(N).
	TopoRing TopoKind = iota + 1
	// TopoClique is graph.Clique(N).
	TopoClique
	// TopoGrid is graph.Grid(Rows, Cols).
	TopoGrid
	// TopoPath is graph.Path(N).
	TopoPath
	// TopoStar is graph.Star(N).
	TopoStar
)

// String implements fmt.Stringer.
func (k TopoKind) String() string {
	switch k {
	case TopoRing:
		return "ring"
	case TopoClique:
		return "clique"
	case TopoGrid:
		return "grid"
	case TopoPath:
		return "path"
	case TopoStar:
		return "star"
	default:
		return fmt.Sprintf("topokind(%d)", int(k))
	}
}

// Topology is a parsed topology line.
type Topology struct {
	Kind TopoKind
	// N is the vertex count for ring/clique/path/star.
	N int
	// Rows, Cols apply to grid.
	Rows, Cols int
}

// Build constructs the conflict graph.
func (t Topology) Build() *graph.Graph {
	switch t.Kind {
	case TopoRing:
		return graph.Ring(t.N)
	case TopoClique:
		return graph.Clique(t.N)
	case TopoGrid:
		return graph.Grid(t.Rows, t.Cols)
	case TopoPath:
		return graph.Path(t.N)
	case TopoStar:
		return graph.Star(t.N)
	default:
		panic(fmt.Sprintf("scenario: unknown topology kind %v", t.Kind))
	}
}

// Procs returns the process count of the topology.
func (t Topology) Procs() int {
	switch t.Kind {
	case TopoRing, TopoClique, TopoPath, TopoStar:
		return t.N
	case TopoGrid:
		return t.Rows * t.Cols
	default:
		panic(fmt.Sprintf("scenario: unknown topology kind %v", t.Kind))
	}
}

// EventKind enumerates the fault/chaos operations of the scenario
// vocabulary. Each backend supports a subset; see Supports.
type EventKind int

// Event kinds. Times are in ticks: 1 tick is 1 sim.Time unit on the
// sim backend and 1 millisecond of virtual (respectively wall) time on
// the netsim (respectively live) backend.
const (
	// EventCrash crashes process Procs[0] (on netsim/live: the node
	// hosting it). Supported everywhere.
	EventCrash EventKind = iota + 1
	// EventRestart reboots the crashed process's node with a fresh
	// incarnation. Netsim only (the sim runner has no crash recovery
	// and TCP restarts would change the ephemeral port).
	EventRestart
	// EventPartition cuts the processes in Procs from the complement
	// until the heal. Both deterministic backends (sim: timed
	// bipartition; netsim: pairwise blackholed links).
	EventPartition
	// EventPartitionLink blackholes one link A–B. Netsim only.
	EventPartitionLink
	// EventPartitionDir blackholes only direction A→B. Netsim only.
	EventPartitionDir
	// EventReset kills every live connection between A and B. Netsim
	// only.
	EventReset
	// EventTruncate drops Bytes queued bytes from A–B streams. Netsim
	// only.
	EventTruncate
	// EventSlowLink throttles A–B to Rate bytes/sec. Netsim only.
	EventSlowLink
	// EventStopDrain freezes the consuming ends of A–B streams. Netsim
	// only.
	EventStopDrain
	// EventResumeDrain undoes EventStopDrain. Netsim only.
	EventResumeDrain
	// EventLatency sets latency/jitter on link A–B. Netsim only (the
	// sim backend's delay model is uniform [1,4] ticks by design).
	EventLatency
	// EventBurst opens a high-loss window [At, Until) with drop
	// probability DropP on every channel. Sim only.
	EventBurst
	// EventHeal ends every fault: sim FaultPlan.HealAt, netsim
	// heal-all. On dsvc (which has no link faults) it is purely the
	// stabilization anchor. At most one per scenario, after every
	// other event.
	EventHeal
	// EventUnpartition ends one partition early: Procs must exactly
	// match the side of an open partition. Both deterministic backends
	// (sim: the matching Partition's End; netsim: pairwise heal-link
	// across the cut) — the selective heal that makes sim's timed
	// partitions differential.
	EventUnpartition
	// EventHealLink reopens the single link A–B (both directions).
	// Netsim only.
	EventHealLink
	// EventAddEdge stages a runtime conflict edge A–B through the
	// session-drain protocol. Dsvc only.
	EventAddEdge
	// EventDelEdge stages removal of the conflict edge A–B. Dsvc only.
	EventDelEdge
	// EventAddProc registers one new resource (the next free process
	// id), isolated until add-edge wires it in. Dsvc only.
	EventAddProc
	// EventDelProc deregisters process Procs[0] (resource retires once
	// drained; its conflict edges go with it). Dsvc only.
	EventDelProc
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventRestart:
		return "restart"
	case EventPartition:
		return "partition"
	case EventPartitionLink:
		return "partition-link"
	case EventPartitionDir:
		return "partition-dir"
	case EventReset:
		return "reset"
	case EventTruncate:
		return "truncate"
	case EventSlowLink:
		return "slow-link"
	case EventStopDrain:
		return "stop-drain"
	case EventResumeDrain:
		return "resume-drain"
	case EventLatency:
		return "latency"
	case EventBurst:
		return "burst"
	case EventHeal:
		return "heal"
	case EventUnpartition:
		return "unpartition"
	case EventHealLink:
		return "heal-link"
	case EventAddEdge:
		return "add-edge"
	case EventDelEdge:
		return "del-edge"
	case EventAddProc:
		return "add-proc"
	case EventDelProc:
		return "del-proc"
	default:
		return fmt.Sprintf("eventkind(%d)", int(k))
	}
}

// Event is one scripted fault at tick At.
type Event struct {
	At   int64
	Kind EventKind
	// Procs is the crash/restart victim ([0]) or the partition side.
	Procs []int
	// A, B name link endpoints (process IDs; on netsim, node indices,
	// which coincide under the 1-process-per-node placement).
	A, B int
	// Until is the end tick of a burst window.
	Until int64
	// DropP is the burst loss probability.
	DropP float64
	// Latency, Jitter (ticks) apply to EventLatency.
	Latency, Jitter int64
	// Bytes applies to EventTruncate.
	Bytes int
	// Rate (bytes/sec) applies to EventSlowLink.
	Rate int64
}

// Property enumerates the checkable paper properties.
type Property int

// Properties. Each maps to a theorem or resource claim of the paper;
// see DESIGN S22 for the exact verdict semantics.
const (
	// PropExclusionClean is ◇WX (Theorem 1): the stabilization anchor
	// settles and no two live neighbors eat simultaneously after it.
	PropExclusionClean Property = iota + 1
	// PropWaitFreedom is Theorem 2: no live process is starving at the
	// end, and every live process completes at least two bounded-
	// waiting windows after the heal.
	PropWaitFreedom
	// PropOvertakeBound is ◇2-BW (Theorem 3): no bounded-waiting
	// window starting after the anchor exceeds K overtakes.
	PropOvertakeBound
	// PropQuiescence is the Section 7 claim that sends to crashed
	// processes cease: quiescent by tick By. Sim only (the remote
	// stack has no per-recipient send census).
	PropQuiescence
	// PropQueueBound bounds the per-edge application-message
	// occupancy high water by Limit (Section 7's ≤4, measured loosely
	// on the remote stack where cumulative-ack latency inflates it).
	PropQueueBound
	// PropPairDepthBound requires the per-ordered-pair ARQ queue high
	// water to stay within the configured send window. Netsim/live
	// only.
	PropPairDepthBound
	// PropContainment requires that no process outside a crash/restart
	// blast radius fell over or recorded a protocol-invariant error.
	PropContainment
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case PropExclusionClean:
		return "exclusion_clean"
	case PropWaitFreedom:
		return "wait_freedom"
	case PropOvertakeBound:
		return "overtake_bound"
	case PropQuiescence:
		return "quiescence"
	case PropQueueBound:
		return "queue_bound"
	case PropPairDepthBound:
		return "pair_depth_bound"
	case PropContainment:
		return "containment"
	default:
		return fmt.Sprintf("property(%d)", int(p))
	}
}

// Properties lists every property in declaration order (the checker
// registry; tests iterate it to prove each checker can reject).
func Properties() []Property {
	return []Property{
		PropExclusionClean, PropWaitFreedom, PropOvertakeBound,
		PropQuiescence, PropQueueBound, PropPairDepthBound,
		PropContainment,
	}
}

// ParseProperty inverts Property.String.
func ParseProperty(s string) (Property, error) {
	for _, p := range Properties() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown property %q", s)
}

// Verdict is a property outcome.
type Verdict int

// Verdicts.
const (
	// VerdictPass means the property held on this run.
	VerdictPass Verdict = iota + 1
	// VerdictFail means it did not.
	VerdictFail
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictFail:
		return "fail"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// ParseVerdict inverts Verdict.String.
func ParseVerdict(s string) (Verdict, error) {
	switch s {
	case "pass":
		return VerdictPass, nil
	case "fail":
		return VerdictFail, nil
	default:
		return 0, fmt.Errorf("unknown verdict %q (want pass or fail)", s)
	}
}

// Check is one expected-property line: a property, its arguments, and
// the committed expected verdict (the golden the -update flag of
// cmd/scenario refreshes).
type Check struct {
	Prop Property
	// K is the overtake bound (PropOvertakeBound; default 2).
	K int
	// Limit is the occupancy bound (PropQueueBound; default 8).
	Limit int
	// By is the quiescence deadline in ticks (PropQuiescence; default
	// 3/4 of the horizon, resolved at run time when zero).
	By int64
	// Expect is the committed expected verdict.
	Expect Verdict
}

// Workload is the hunger/eating schedule: fixed think and eat times in
// ticks (every process is permanently re-hungry — the saturated
// workload all fairness claims are checked under).
type Workload struct {
	Think, Eat int64
}

// Detector is the ◇P₁ heartbeat configuration in ticks.
type Detector struct {
	Period, Timeout, Increment int64
}

// Options are backend tuning knobs.
type Options struct {
	// Raw runs the sim backend on raw faulty channels instead of
	// layering the rlink retransmission sublayer (the negative-control
	// mode of E11). Sim only.
	Raw bool
	// DropP/DupP are per-message loss/duplication probabilities on
	// every channel until the heal. Sim only (netsim's streams are
	// TCP-like; loss lives below its byte-stream abstraction).
	DropP, DupP float64
	// Window overrides the per-pair ARQ send window. Netsim/live only.
	Window int
	// Backoff/BackoffMax override the dial backoff schedule, in ticks.
	// Netsim/live only.
	Backoff, BackoffMax int64
}

// Scenario is one parsed scenario file.
type Scenario struct {
	Name    string
	Summary string
	Topo    Topology
	Seed    int64
	Horizon int64
	Work    Workload
	Det     Detector
	Opts    Options
	// Declared restricts the runnable backends beyond what the
	// capability rules allow; empty means "sim netsim" (live is always
	// opt-in).
	Declared []Backend
	Events   []Event
	Checks   []Check
}

// Defaults mirror the chaos-soak tuning (soak.go): the netsim backend
// uses these values as durations in milliseconds, the sim backend as
// sim.Time ticks.
const (
	DefaultSeed         = 1
	DefaultThink        = 4
	DefaultEat          = 4
	DefaultHBPeriod     = 10
	DefaultHBTimeout    = 120
	DefaultHBIncrement  = 60
	DefaultOvertakeK    = 2
	DefaultQueueLimit   = 8
	anchorBudget        = 8 // anchor-seeking iterations, as in RunPlan
	minWindowsPostHeal  = 2 // wait-freedom teeth: closed windows per live proc
)

// HealAt returns the heal tick and whether the scenario has one.
func (sc *Scenario) HealAt() (int64, bool) {
	for _, ev := range sc.Events {
		if ev.Kind == EventHeal {
			return ev.At, true
		}
	}
	return 0, false
}

// Graph builds the conflict graph.
func (sc *Scenario) Graph() *graph.Graph { return sc.Topo.Build() }

// check returns the scenario's check for property p, if declared.
func (sc *Scenario) check(p Property) (Check, bool) {
	for _, c := range sc.Checks {
		if c.Prop == p {
			return c, true
		}
	}
	return Check{}, false
}

// OvertakeK returns the bound the anchor search and the ◇2-BW check
// use: the declared overtake_bound k, or the paper's 2.
func (sc *Scenario) OvertakeK() int {
	if c, ok := sc.check(PropOvertakeBound); ok && c.K > 0 {
		return c.K
	}
	return DefaultOvertakeK
}

// eventSupported reports whether backend b can execute event kind k.
func eventSupported(b Backend, k EventKind) bool {
	switch k {
	case EventCrash, EventHeal:
		return true
	case EventPartition, EventUnpartition:
		return b == BackendSim || b == BackendNetsim
	case EventBurst:
		return b == BackendSim
	case EventRestart:
		return b == BackendNetsim || b == BackendDsvc
	case EventPartitionLink, EventPartitionDir, EventReset,
		EventTruncate, EventSlowLink, EventStopDrain, EventResumeDrain,
		EventLatency, EventHealLink:
		return b == BackendNetsim
	case EventAddEdge, EventDelEdge, EventAddProc, EventDelProc:
		return b == BackendDsvc
	default:
		return false
	}
}

// propSupported reports whether backend b can evaluate property p.
func propSupported(b Backend, p Property) bool {
	switch p {
	case PropQuiescence:
		return b == BackendSim
	case PropPairDepthBound:
		return b == BackendNetsim || b == BackendLive
	case PropOvertakeBound:
		// The dsvc engine schedules sessions in strict ticket order
		// (head-of-line reservation), so it has no overtake monitor to
		// read a bound from.
		return b != BackendDsvc
	case PropExclusionClean, PropWaitFreedom,
		PropQueueBound, PropContainment:
		return true
	default:
		return false
	}
}

// Supports reports whether the scenario can run on backend b: every
// event and property must be executable there, options must apply, and
// the declared backends line (when present) must include it. Live is
// additionally always opt-in.
func (sc *Scenario) Supports(b Backend) bool {
	if len(sc.Declared) > 0 {
		found := false
		for _, d := range sc.Declared {
			if d == b {
				found = true
			}
		}
		if !found {
			return false
		}
	} else if b == BackendLive || b == BackendDsvc {
		return false
	}
	for _, ev := range sc.Events {
		if !eventSupported(b, ev.Kind) {
			return false
		}
	}
	for _, c := range sc.Checks {
		if !propSupported(b, c.Prop) {
			return false
		}
	}
	switch b {
	case BackendSim:
		if sc.Opts.Window != 0 || sc.Opts.Backoff != 0 || sc.Opts.BackoffMax != 0 {
			return false
		}
	case BackendNetsim, BackendLive:
		if sc.Opts.Raw || sc.Opts.DropP != 0 || sc.Opts.DupP != 0 {
			return false
		}
	case BackendDsvc:
		// No channel faults and no ARQ below the engine: every option
		// is a sim or netsim knob.
		if sc.Opts != (Options{}) {
			return false
		}
	}
	return true
}

// RunnableBackends lists the backends the scenario supports, in enum
// order.
func (sc *Scenario) RunnableBackends() []Backend {
	var out []Backend
	for _, b := range []Backend{BackendSim, BackendNetsim, BackendLive, BackendDsvc} {
		if sc.Supports(b) {
			out = append(out, b)
		}
	}
	return out
}

// Differential reports whether the scenario is under the cross-backend
// differential contract: runnable on both deterministic backends.
func (sc *Scenario) Differential() bool {
	return sc.Supports(BackendSim) && sc.Supports(BackendNetsim)
}

// Validate checks structural consistency beyond what parsing enforces
// locally: process IDs in range, events ordered and inside the
// horizon, a single final heal, restarts only of crashed processes,
// unpartitions matching open partitions, churn events consistent with
// the evolving graph (edges added only when absent, deleted only when
// present, processes retired at most once), and at least one runnable
// backend.
func (sc *Scenario) Validate() error {
	n := sc.Topo.Procs()
	if n < 2 {
		return fmt.Errorf("topology has %d processes, need at least 2", n)
	}
	if sc.Horizon <= 0 {
		return fmt.Errorf("horizon must be positive, got %d", sc.Horizon)
	}
	if len(sc.Checks) == 0 {
		return fmt.Errorf("expect section is empty")
	}
	seen := make(map[Property]bool)
	for _, c := range sc.Checks {
		if seen[c.Prop] {
			return fmt.Errorf("duplicate expect line for %s", c.Prop)
		}
		seen[c.Prop] = true
	}
	inRange := func(p int) bool { return p >= 0 && p < n }
	healSeen := false
	crashed := make(map[int]bool)
	retired := make(map[int]bool)
	openParts := make(map[string]bool)
	// edges tracks the evolving conflict-edge set for the churn
	// vocabulary, built lazily from the topology on first use.
	var edges map[[2]int]bool
	edgeKey := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	ensureEdges := func() {
		if edges != nil {
			return
		}
		edges = make(map[[2]int]bool)
		for _, e := range sc.Topo.Build().Edges() {
			edges[e] = true
		}
	}
	var prev int64
	for i, ev := range sc.Events {
		if ev.At < prev {
			return fmt.Errorf("event %d (%s) at tick %d is out of order (previous %d)", i, ev.Kind, ev.At, prev)
		}
		prev = ev.At
		if ev.At < 0 || ev.At > sc.Horizon {
			return fmt.Errorf("event %d (%s) at tick %d is outside [0, horizon=%d]", i, ev.Kind, ev.At, sc.Horizon)
		}
		if healSeen {
			return fmt.Errorf("event %d (%s) follows the heal; heal must be last", i, ev.Kind)
		}
		switch ev.Kind {
		case EventHeal:
			healSeen = true
		case EventCrash:
			p := ev.Procs[0]
			if !inRange(p) {
				return fmt.Errorf("event %d: crash of out-of-range process %d", i, p)
			}
			if crashed[p] || retired[p] {
				return fmt.Errorf("event %d: process %d crashed while already down or retired", i, p)
			}
			crashed[p] = true
		case EventRestart:
			p := ev.Procs[0]
			if !inRange(p) {
				return fmt.Errorf("event %d: restart of out-of-range process %d", i, p)
			}
			if !crashed[p] {
				return fmt.Errorf("event %d: restart of process %d, which is not down", i, p)
			}
			delete(crashed, p)
		case EventPartition:
			if len(ev.Procs) == 0 || len(ev.Procs) >= n {
				return fmt.Errorf("event %d: partition side must be a nonempty proper subset", i)
			}
			for _, p := range ev.Procs {
				if !inRange(p) {
					return fmt.Errorf("event %d: partition of out-of-range process %d", i, p)
				}
			}
			key := fmt.Sprint(sortedSide(ev.Procs))
			if openParts[key] {
				return fmt.Errorf("event %d: partition side %v is already cut", i, ev.Procs)
			}
			openParts[key] = true
		case EventUnpartition:
			key := fmt.Sprint(sortedSide(ev.Procs))
			if !openParts[key] {
				return fmt.Errorf("event %d: unpartition side %v does not match an open partition", i, ev.Procs)
			}
			delete(openParts, key)
		case EventPartitionLink, EventPartitionDir, EventReset, EventTruncate,
			EventSlowLink, EventStopDrain, EventResumeDrain, EventLatency,
			EventHealLink:
			if !inRange(ev.A) || !inRange(ev.B) || ev.A == ev.B {
				return fmt.Errorf("event %d (%s): bad link endpoints %d-%d", i, ev.Kind, ev.A, ev.B)
			}
		case EventAddEdge, EventDelEdge:
			if !inRange(ev.A) || !inRange(ev.B) || ev.A == ev.B {
				return fmt.Errorf("event %d (%s): bad edge endpoints %d-%d", i, ev.Kind, ev.A, ev.B)
			}
			if retired[ev.A] || retired[ev.B] {
				return fmt.Errorf("event %d (%s): edge %d-%d touches a retired process", i, ev.Kind, ev.A, ev.B)
			}
			ensureEdges()
			key := edgeKey(ev.A, ev.B)
			if ev.Kind == EventAddEdge {
				if edges[key] {
					return fmt.Errorf("event %d: add-edge %d-%d, which already exists", i, ev.A, ev.B)
				}
				edges[key] = true
			} else {
				if !edges[key] {
					return fmt.Errorf("event %d: del-edge %d-%d, which does not exist", i, ev.A, ev.B)
				}
				delete(edges, key)
			}
		case EventAddProc:
			n++
		case EventDelProc:
			p := ev.Procs[0]
			if !inRange(p) {
				return fmt.Errorf("event %d: del-proc of out-of-range process %d", i, p)
			}
			if retired[p] || crashed[p] {
				return fmt.Errorf("event %d: del-proc of process %d, which is already retired or down", i, p)
			}
			retired[p] = true
			ensureEdges()
			for q := 0; q < n; q++ {
				if q != p {
					delete(edges, edgeKey(p, q))
				}
			}
		case EventBurst:
			if ev.Until <= ev.At || ev.Until > sc.Horizon {
				return fmt.Errorf("event %d: burst window [%d, %d) is empty or outside the horizon", i, ev.At, ev.Until)
			}
			if ev.DropP < 0 || ev.DropP > 1 {
				return fmt.Errorf("event %d: burst drop probability %v outside [0, 1]", i, ev.DropP)
			}
		}
	}
	if sc.Opts.DropP < 0 || sc.Opts.DropP > 1 || sc.Opts.DupP < 0 || sc.Opts.DupP > 1 {
		return fmt.Errorf("options drop/dup probabilities must lie in [0, 1]")
	}
	if len(sc.RunnableBackends()) == 0 {
		return fmt.Errorf("no backend supports this scenario (sim-only and netsim-only constructs are mixed, or the backends line excludes all capable backends)")
	}
	return nil
}

// sortedSide returns a sorted copy of a partition side.
func sortedSide(ps []int) []int {
	out := make([]int, len(ps))
	copy(out, ps)
	sort.Ints(out)
	return out
}
