package scenario_test

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/scenario"
)

// corpus loads every committed scenario file, sorted by path.
func corpus(t *testing.T) (names []string, data map[string][]byte) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.scen"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 12 {
		t.Fatalf("corpus has %d scenario files, the conformance contract requires >= 12", len(paths))
	}
	sort.Strings(paths)
	data = make(map[string][]byte)
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, p)
		data[p] = b
	}
	return names, data
}

// TestCorpusCanonical pins every committed scenario file to the
// canonical rendering: parse then render must reproduce the file
// byte-for-byte, so there is exactly one way to write each scenario
// and text-level diffs are always semantic.
func TestCorpusCanonical(t *testing.T) {
	names, data := corpus(t)
	for _, p := range names {
		sc, err := scenario.Parse(data[p])
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got := scenario.Render(sc); string(got) != string(data[p]) {
			t.Errorf("%s is not canonical; re-render it:\n--- committed\n%s--- canonical\n%s", p, data[p], got)
		}
	}
}

// TestCorpusConformance is the differential contract (DESIGN S22):
// every committed scenario, on every deterministic backend it
// supports, must reproduce its committed verdicts; per-seed repeats
// must produce byte-identical traces; and when a scenario runs on
// both deterministic backends, the two traces must be equal.
func TestCorpusConformance(t *testing.T) {
	names, data := corpus(t)
	differential := 0
	for _, p := range names {
		sc, err := scenario.Parse(data[p])
		if err != nil {
			t.Fatal(err)
		}
		if sc.Differential() {
			differential++
		}
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			traces := make(map[scenario.Backend]string)
			for _, b := range []scenario.Backend{scenario.BackendSim, scenario.BackendNetsim, scenario.BackendDsvc} {
				if !sc.Supports(b) {
					continue
				}
				var prev string
				for rep := 0; rep < 2; rep++ {
					out, err := scenario.Run(sc, b)
					if err != nil {
						t.Fatalf("%s rep %d: %v", b, rep, err)
					}
					for _, m := range out.Mismatches() {
						t.Errorf("%s rep %d: %s got %s, committed expectation %s (%s)",
							b, rep, m.Check.Prop, m.Got, m.Check.Expect, out.Diagnose())
					}
					if rep > 0 && out.Trace != prev {
						t.Errorf("%s: trace differs between repeats of seed %d:\nrep0:\n%srep1:\n%s",
							b, sc.Seed, prev, out.Trace)
					}
					prev = out.Trace
				}
				traces[b] = prev
			}
			simTr, simOK := traces[scenario.BackendSim]
			netTr, netOK := traces[scenario.BackendNetsim]
			if simOK && netOK && simTr != netTr {
				t.Errorf("differential disagreement:\nsim:\n%snetsim:\n%s", simTr, netTr)
			}
		})
	}
	if differential < 12 {
		t.Errorf("only %d scenarios run on both deterministic backends, the differential contract requires >= 12", differential)
	}
}
