package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads one scenario file. The format is a strict line-oriented
// YAML subset (DESIGN S22):
//
//	# comment lines and blank lines are ignored
//	scenario: <name>
//	summary: <one line of free text>            (optional)
//	topology: ring 5 | clique 4 | grid 3 3 | path 4 | star 5
//	seed: 7                                     (optional, default 1)
//	horizon: 4000
//	workload: think=4 eat=4                     (optional)
//	detector: period=10 timeout=120 increment=60 (optional)
//	options: raw drop=0.1 dup=0.1 window=64 backoff=10 backoffmax=40 (optional)
//	backends: sim netsim live                   (optional)
//	events:                                     (optional)
//	  - at=300 crash 2
//	  - at=2200 heal
//	expect:
//	  - exclusion_clean pass
//	  - overtake_bound k=2 pass
//
// Top-level keys must appear in exactly this order; item lines are
// exactly two spaces, a dash, and a space. Unknown keys, duplicate
// keys, out-of-order keys, and trailing tokens are errors — the
// strictness is what makes Render(Parse(x)) a canonical form. Parse
// also runs Validate.
func Parse(data []byte) (*Scenario, error) {
	sc := &Scenario{
		Seed: DefaultSeed,
		Work: Workload{Think: DefaultThink, Eat: DefaultEat},
		Det:  Detector{Period: DefaultHBPeriod, Timeout: DefaultHBTimeout, Increment: DefaultHBIncrement},
	}
	// keyRank enforces the canonical key order; section is the open
	// item-list ("" none, "events", "expect").
	rank := -1
	section := ""
	sawEvents, sawExpect := false, false

	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		lineNo := ln + 1
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.HasPrefix(raw, "  - ") {
			item := strings.TrimSpace(raw[len("  - "):])
			if item == "" {
				return nil, fmt.Errorf("line %d: empty item", lineNo)
			}
			switch section {
			case "events":
				ev, err := parseEvent(item)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				sc.Events = append(sc.Events, ev)
			case "expect":
				c, err := parseCheck(item)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				sc.Checks = append(sc.Checks, c)
			default:
				return nil, fmt.Errorf("line %d: item line outside events/expect section", lineNo)
			}
			continue
		}
		if raw != trimmed {
			return nil, fmt.Errorf("line %d: unexpected indentation", lineNo)
		}
		key, val, ok := strings.Cut(trimmed, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: expected \"key: value\"", lineNo)
		}
		val = strings.TrimSpace(val)
		r, known := keyOrder[key]
		if !known {
			return nil, fmt.Errorf("line %d: unknown key %q", lineNo, key)
		}
		if r <= rank {
			return nil, fmt.Errorf("line %d: key %q is out of order or duplicated", lineNo, key)
		}
		rank = r
		section = ""
		switch key {
		case "scenario":
			if err := checkName(val); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			sc.Name = val
		case "summary":
			if val == "" {
				return nil, fmt.Errorf("line %d: empty summary", lineNo)
			}
			sc.Summary = val
		case "topology":
			topo, err := parseTopology(val)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			sc.Topo = topo
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad seed %q", lineNo, val)
			}
			sc.Seed = n
		case "horizon":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("line %d: bad horizon %q (want a positive tick count)", lineNo, val)
			}
			sc.Horizon = n
		case "workload":
			if err := parseWorkload(val, &sc.Work); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		case "detector":
			if err := parseDetector(val, &sc.Det); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		case "options":
			if err := parseOptions(val, &sc.Opts); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		case "backends":
			for _, tok := range strings.Fields(val) {
				b, err := ParseBackend(tok)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				for _, d := range sc.Declared {
					if d == b {
						return nil, fmt.Errorf("line %d: duplicate backend %s", lineNo, b)
					}
				}
				sc.Declared = append(sc.Declared, b)
			}
			if len(sc.Declared) == 0 {
				return nil, fmt.Errorf("line %d: empty backends line", lineNo)
			}
		case "events":
			if val != "" {
				return nil, fmt.Errorf("line %d: events: takes no inline value", lineNo)
			}
			section = "events"
			sawEvents = true
		case "expect":
			if val != "" {
				return nil, fmt.Errorf("line %d: expect: takes no inline value", lineNo)
			}
			section = "expect"
			sawExpect = true
		}
	}
	if sc.Name == "" {
		return nil, fmt.Errorf("missing scenario: line")
	}
	if sc.Topo.Kind == 0 {
		return nil, fmt.Errorf("missing topology: line")
	}
	if sc.Horizon == 0 {
		return nil, fmt.Errorf("missing horizon: line")
	}
	if sawEvents && len(sc.Events) == 0 {
		return nil, fmt.Errorf("events: section is empty")
	}
	if !sawExpect {
		return nil, fmt.Errorf("missing expect: section")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// keyOrder ranks the canonical top-level key order.
var keyOrder = map[string]int{
	"scenario": 0, "summary": 1, "topology": 2, "seed": 3, "horizon": 4,
	"workload": 5, "detector": 6, "options": 7, "backends": 8,
	"events": 9, "expect": 10,
}

func checkName(s string) error {
	if s == "" {
		return fmt.Errorf("empty scenario name")
	}
	for _, r := range s {
		ok := r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("scenario name %q contains %q (allowed: letters, digits, '.', '-', '_')", s, r)
		}
	}
	return nil
}

func parseTopology(val string) (Topology, error) {
	f := strings.Fields(val)
	if len(f) == 0 {
		return Topology{}, fmt.Errorf("empty topology")
	}
	atoi := func(s string) (int, error) {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("bad topology size %q", s)
		}
		return n, nil
	}
	switch f[0] {
	case "ring", "clique", "path", "star":
		if len(f) != 2 {
			return Topology{}, fmt.Errorf("topology %s takes one size argument", f[0])
		}
		n, err := atoi(f[1])
		if err != nil {
			return Topology{}, err
		}
		kind := map[string]TopoKind{"ring": TopoRing, "clique": TopoClique, "path": TopoPath, "star": TopoStar}[f[0]]
		return Topology{Kind: kind, N: n}, nil
	case "grid":
		if len(f) != 3 {
			return Topology{}, fmt.Errorf("topology grid takes rows and cols")
		}
		r, err := atoi(f[1])
		if err != nil {
			return Topology{}, err
		}
		c, err := atoi(f[2])
		if err != nil {
			return Topology{}, err
		}
		return Topology{Kind: TopoGrid, Rows: r, Cols: c}, nil
	default:
		return Topology{}, fmt.Errorf("unknown topology %q (want ring, clique, grid, path, or star)", f[0])
	}
}

// kvInt64 parses "key=<int>" returning the value.
func kvInt64(tok, key string) (int64, bool, error) {
	k, v, ok := strings.Cut(tok, "=")
	if !ok || k != key {
		return 0, false, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s value %q", key, v)
	}
	return n, true, nil
}

func parseWorkload(val string, w *Workload) error {
	for _, tok := range strings.Fields(val) {
		if n, ok, err := kvInt64(tok, "think"); err != nil {
			return err
		} else if ok {
			if n < 0 {
				return fmt.Errorf("negative think time")
			}
			w.Think = n
			continue
		}
		if n, ok, err := kvInt64(tok, "eat"); err != nil {
			return err
		} else if ok {
			if n <= 0 {
				return fmt.Errorf("eat time must be positive")
			}
			w.Eat = n
			continue
		}
		return fmt.Errorf("unknown workload token %q", tok)
	}
	return nil
}

func parseDetector(val string, d *Detector) error {
	for _, tok := range strings.Fields(val) {
		if n, ok, err := kvInt64(tok, "period"); err != nil {
			return err
		} else if ok {
			if n <= 0 {
				return fmt.Errorf("detector period must be positive")
			}
			d.Period = n
			continue
		}
		if n, ok, err := kvInt64(tok, "timeout"); err != nil {
			return err
		} else if ok {
			if n <= 0 {
				return fmt.Errorf("detector timeout must be positive")
			}
			d.Timeout = n
			continue
		}
		if n, ok, err := kvInt64(tok, "increment"); err != nil {
			return err
		} else if ok {
			if n <= 0 {
				return fmt.Errorf("detector increment must be positive")
			}
			d.Increment = n
			continue
		}
		return fmt.Errorf("unknown detector token %q", tok)
	}
	return nil
}

func parseFloat(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q", s)
	}
	return p, nil
}

func parseOptions(val string, o *Options) error {
	for _, tok := range strings.Fields(val) {
		if tok == "raw" {
			o.Raw = true
			continue
		}
		key, v, ok := strings.Cut(tok, "=")
		if !ok {
			return fmt.Errorf("unknown options token %q", tok)
		}
		switch key {
		case "drop":
			p, err := parseFloat(v)
			if err != nil {
				return err
			}
			o.DropP = p
		case "dup":
			p, err := parseFloat(v)
			if err != nil {
				return err
			}
			o.DupP = p
		case "window":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return fmt.Errorf("bad window %q", v)
			}
			o.Window = n
		case "backoff":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return fmt.Errorf("bad backoff %q", v)
			}
			o.Backoff = n
		case "backoffmax":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return fmt.Errorf("bad backoffmax %q", v)
			}
			o.BackoffMax = n
		default:
			return fmt.Errorf("unknown options token %q", tok)
		}
	}
	return nil
}

// parseProcList parses "0,1,2" into sorted unique process IDs.
func parseProcList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad process id %q", part)
		}
		out = append(out, n)
	}
	out = sortedSide(out)
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			return nil, fmt.Errorf("duplicate process id %d", out[i])
		}
	}
	return out, nil
}

// parseLink parses two distinct endpoint tokens.
func parseLink(a, b string) (int, int, error) {
	x, err := strconv.Atoi(a)
	if err != nil || x < 0 {
		return 0, 0, fmt.Errorf("bad endpoint %q", a)
	}
	y, err := strconv.Atoi(b)
	if err != nil || y < 0 {
		return 0, 0, fmt.Errorf("bad endpoint %q", b)
	}
	return x, y, nil
}

func parseEvent(item string) (Event, error) {
	f := strings.Fields(item)
	if len(f) < 2 {
		return Event{}, fmt.Errorf("event %q: want \"at=<tick> <kind> ...\"", item)
	}
	at, ok, err := kvInt64(f[0], "at")
	if err != nil || !ok {
		return Event{}, fmt.Errorf("event %q must start with at=<tick>", item)
	}
	if at < 0 {
		return Event{}, fmt.Errorf("event %q: negative tick", item)
	}
	ev := Event{At: at}
	kind := f[1]
	args := f[2:]
	argc := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("event %q: %s takes %d argument(s), got %d", item, kind, n, len(args))
		}
		return nil
	}
	switch kind {
	case "crash", "restart", "del-proc":
		if err := argc(1); err != nil {
			return Event{}, err
		}
		p, err := strconv.Atoi(args[0])
		if err != nil || p < 0 {
			return Event{}, fmt.Errorf("event %q: bad process id %q", item, args[0])
		}
		switch kind {
		case "crash":
			ev.Kind = EventCrash
		case "restart":
			ev.Kind = EventRestart
		case "del-proc":
			ev.Kind = EventDelProc
		}
		ev.Procs = []int{p}
	case "partition", "unpartition":
		if err := argc(1); err != nil {
			return Event{}, err
		}
		side, err := parseProcList(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("event %q: %v", item, err)
		}
		ev.Kind = EventPartition
		if kind == "unpartition" {
			ev.Kind = EventUnpartition
		}
		ev.Procs = side
	case "partition-link", "partition-dir", "reset", "stop-drain", "resume-drain",
		"heal-link", "add-edge", "del-edge":
		if err := argc(2); err != nil {
			return Event{}, err
		}
		a, b, err := parseLink(args[0], args[1])
		if err != nil {
			return Event{}, fmt.Errorf("event %q: %v", item, err)
		}
		switch kind {
		case "partition-link":
			ev.Kind = EventPartitionLink
		case "partition-dir":
			ev.Kind = EventPartitionDir
		case "reset":
			ev.Kind = EventReset
		case "stop-drain":
			ev.Kind = EventStopDrain
		case "resume-drain":
			ev.Kind = EventResumeDrain
		case "heal-link":
			ev.Kind = EventHealLink
		case "add-edge":
			ev.Kind = EventAddEdge
		case "del-edge":
			ev.Kind = EventDelEdge
		}
		ev.A, ev.B = a, b
	case "add-proc":
		if err := argc(0); err != nil {
			return Event{}, err
		}
		ev.Kind = EventAddProc
	case "truncate":
		if err := argc(3); err != nil {
			return Event{}, err
		}
		a, b, err := parseLink(args[0], args[1])
		if err != nil {
			return Event{}, fmt.Errorf("event %q: %v", item, err)
		}
		n, ok, err := kvInt64(args[2], "bytes")
		if err != nil || !ok || n <= 0 {
			return Event{}, fmt.Errorf("event %q: want bytes=<n>", item)
		}
		ev.Kind = EventTruncate
		ev.A, ev.B, ev.Bytes = a, b, int(n)
	case "slow-link":
		if err := argc(3); err != nil {
			return Event{}, err
		}
		a, b, err := parseLink(args[0], args[1])
		if err != nil {
			return Event{}, fmt.Errorf("event %q: %v", item, err)
		}
		n, ok, err := kvInt64(args[2], "rate")
		if err != nil || !ok || n <= 0 {
			return Event{}, fmt.Errorf("event %q: want rate=<bytes/sec>", item)
		}
		ev.Kind = EventSlowLink
		ev.A, ev.B, ev.Rate = a, b, n
	case "latency":
		if err := argc(4); err != nil {
			return Event{}, err
		}
		a, b, err := parseLink(args[0], args[1])
		if err != nil {
			return Event{}, fmt.Errorf("event %q: %v", item, err)
		}
		lat, ok, err := kvInt64(args[2], "lat")
		if err != nil || !ok || lat < 0 {
			return Event{}, fmt.Errorf("event %q: want lat=<ticks>", item)
		}
		jit, ok, err := kvInt64(args[3], "jitter")
		if err != nil || !ok || jit < 0 {
			return Event{}, fmt.Errorf("event %q: want jitter=<ticks>", item)
		}
		ev.Kind = EventLatency
		ev.A, ev.B, ev.Latency, ev.Jitter = a, b, lat, jit
	case "burst":
		if err := argc(2); err != nil {
			return Event{}, err
		}
		until, ok, err := kvInt64(args[0], "until")
		if err != nil || !ok {
			return Event{}, fmt.Errorf("event %q: want until=<tick>", item)
		}
		k, v, ok2 := strings.Cut(args[1], "=")
		if !ok2 || k != "drop" {
			return Event{}, fmt.Errorf("event %q: want drop=<probability>", item)
		}
		p, err := parseFloat(v)
		if err != nil {
			return Event{}, fmt.Errorf("event %q: %v", item, err)
		}
		ev.Kind = EventBurst
		ev.Until, ev.DropP = until, p
	case "heal":
		if err := argc(0); err != nil {
			return Event{}, err
		}
		ev.Kind = EventHeal
	default:
		return Event{}, fmt.Errorf("event %q: unknown kind %q", item, kind)
	}
	return ev, nil
}

func parseCheck(item string) (Check, error) {
	f := strings.Fields(item)
	if len(f) < 2 {
		return Check{}, fmt.Errorf("expect %q: want \"<property> [args] <pass|fail>\"", item)
	}
	prop, err := ParseProperty(f[0])
	if err != nil {
		return Check{}, fmt.Errorf("expect %q: %v", item, err)
	}
	verdict, err := ParseVerdict(f[len(f)-1])
	if err != nil {
		return Check{}, fmt.Errorf("expect %q: %v", item, err)
	}
	c := Check{Prop: prop, K: DefaultOvertakeK, Limit: DefaultQueueLimit, Expect: verdict}
	for _, tok := range f[1 : len(f)-1] {
		key, v, ok := strings.Cut(tok, "=")
		if !ok {
			return Check{}, fmt.Errorf("expect %q: unknown token %q", item, tok)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return Check{}, fmt.Errorf("expect %q: bad %s value %q", item, key, v)
		}
		switch {
		case key == "k" && prop == PropOvertakeBound:
			c.K = int(n)
		case key == "limit" && prop == PropQueueBound:
			c.Limit = int(n)
		case key == "by" && prop == PropQuiescence:
			c.By = n
		default:
			return Check{}, fmt.Errorf("expect %q: argument %q does not apply to %s", item, tok, prop)
		}
	}
	return c, nil
}
