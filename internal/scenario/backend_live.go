package scenario

import (
	"fmt"
	"time"

	"repro/internal/remote/cluster"
	"repro/internal/sim"
)

// liveWaitCap bounds every goal-driven wall-clock wait of the live
// backend (event scheduling and the anchor search's session waits).
const liveWaitCap = 30 * time.Second

// runLive executes the scenario on a real loopback-TCP cluster under
// the wall clock: 1 tick = 1 millisecond. Only the crash/heal event
// vocabulary is supported (Supports enforces this): TCP has no
// scriptable link faults, and a restarted listener would change its
// ephemeral port. The run is NOT deterministic — live results are
// excluded from the byte-identical trace contract and exist to check
// that the verdicts the deterministic backends agree on also hold on
// real sockets.
func runLive(sc *Scenario) (*Observations, error) {
	g := sc.Graph()
	n := g.N()
	placement := make([][]int, n)
	for i := range placement {
		placement[i] = []int{i}
	}
	cl, err := cluster.New(g, placement, cluster.Options{
		HeartbeatPeriod:  time.Duration(sc.Det.Period) * tick,
		InitialTimeout:   time.Duration(sc.Det.Timeout) * tick,
		TimeoutIncrement: time.Duration(sc.Det.Increment) * tick,
		EatTime:          time.Duration(sc.Work.Eat) * tick,
		ThinkTime:        time.Duration(sc.Work.Think) * tick,
		DialBackoff:      time.Duration(sc.Opts.Backoff) * tick,
		DialBackoffMax:   time.Duration(sc.Opts.BackoffMax) * tick,
		SendWindow:       sc.Opts.Window,
		Seed:             sc.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("live cluster: %w", err)
	}
	defer cl.Stop()

	heal := sim.Time(0)
	for _, ev := range sc.Events {
		at := sim.Time(ev.At) * tickNS
		if err := cl.WaitUntilElapsed(at, liveWaitCap+time.Duration(sc.Horizon)*tick); err != nil {
			return nil, fmt.Errorf("live: waiting for tick %d: %w", ev.At, err)
		}
		switch ev.Kind {
		case EventCrash:
			cl.Kill(ev.Procs[0])
		case EventHeal:
			// Crashes are permanent on the live backend; the heal only
			// marks where the stabilization window begins.
			heal = at
		case EventRestart, EventPartition, EventUnpartition, EventPartitionLink,
			EventPartitionDir, EventReset, EventTruncate, EventSlowLink,
			EventStopDrain, EventResumeDrain, EventLatency, EventBurst,
			EventHealLink, EventAddEdge, EventDelEdge, EventAddProc, EventDelProc:
			// TCP has no scriptable link faults and no resource-churn
			// API; Supports(BackendLive) rejects these scenarios before a
			// live run can start.
			return nil, fmt.Errorf("live: unsupported event kind %s", ev.Kind)
		}
	}
	if err := cl.WaitUntilElapsed(sim.Time(sc.Horizon)*tickNS, liveWaitCap+time.Duration(sc.Horizon)*tick); err != nil {
		return nil, fmt.Errorf("live: waiting for horizon: %w", err)
	}

	stable, settled, waitErr := cl.AnchorSearch(heal, sc.OvertakeK(), minWindowsPostHeal, liveWaitCap)
	cl.FinishMonitors()
	// No restarts ever run live, so the blast radius is empty: any
	// fallen process or node error is a containment failure.
	return observeCluster(BackendLive, sc, cl, map[int]bool{}, stable, settled, waitErr), nil
}
