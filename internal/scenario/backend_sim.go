package scenario

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/sim"
)

// runSim executes the scenario on the pure deterministic simulator: 1
// tick = 1 sim.Time unit. The fault script compiles to a sim.FaultPlan
// (bursts, timed bipartitions, plan-wide drop/dup) plus scheduled
// crashes; whenever channel faults are present and the raw option is
// off, the rlink retransmission sublayer is layered under the
// algorithm — matching the netsim backend, whose TCP-like streams mask
// loss below the byte-stream abstraction. (Raw faulty channels can
// destroy a fork in flight, which no protocol above them can recover;
// that mode exists as a negative control.)
func runSim(sc *Scenario) (*Observations, error) {
	g := sc.Graph()
	heal, hasHeal := sc.HealAt()

	spec := harness.Spec{
		Graph:     g,
		Seed:      sc.Seed,
		Algorithm: harness.Algorithm1,
		Detector:  harness.DetectorHeartbeat,
		Heartbeat: harness.HeartbeatParams{
			Period:         sim.Time(sc.Det.Period),
			InitialTimeout: sim.Time(sc.Det.Timeout),
			Increment:      sim.Time(sc.Det.Increment),
			// The detector's own network is synchronous from the start
			// (GST 0): scenario faults target the dining channels, and a
			// deterministic detector keeps verdicts a function of the
			// schedule alone.
			GST:       0,
			PreNoise:  0,
			PostDelay: 1,
		},
		Workload: runner.Workload{
			ThinkMin: sim.Time(sc.Work.Think), ThinkMax: sim.Time(sc.Work.Think),
			EatMin: sim.Time(sc.Work.Eat), EatMax: sim.Time(sc.Work.Eat),
		},
		Horizon: sim.Time(sc.Horizon),
	}

	var crashed []int
	for _, ev := range sc.Events {
		if ev.Kind == EventCrash {
			spec.Crashes = append(spec.Crashes, harness.Crash{At: sim.Time(ev.At), ID: ev.Procs[0]})
			crashed = append(crashed, ev.Procs[0])
		}
	}

	if fp := compileFaults(sc); fp != nil {
		spec.Faults = fp
		spec.Reliable = !sc.Opts.Raw
	}

	suite, r, err := harness.ExecuteRaw(spec)
	if err != nil {
		return nil, err
	}

	obs := ObserveSuite(g, suite, SuiteParams{
		End:          sim.Time(sc.Horizon),
		Heal:         healTick(heal, hasHeal),
		K:            sc.OvertakeK(),
		QuiescenceBy: sim.Time(sc.quiescenceDeadline()),
		Crashed:      crashed,
		InvariantErr: r.CheckInvariants(),
	})
	// With the rlink sublayer in place the comparable occupancy figure
	// is application messages, as on the remote stack — the raw wire
	// carries retransmissions and acks on top.
	if link := r.Link(); link != nil {
		obs.QueueHW = link.MaxAppEdgeOccupancy()
	}
	return obs, nil
}

// compileFaults builds the sim.FaultPlan of the scenario's channel
// faults, or nil when the channels are reliable.
func compileFaults(sc *Scenario) *sim.FaultPlan {
	heal, hasHeal := sc.HealAt()
	end := sim.Time(sc.Horizon)
	if hasHeal {
		end = sim.Time(heal)
	}
	// A partition's End is its matching unpartition when one exists
	// (Validate guarantees each unpartition names exactly one open
	// partition), else the heal/horizon default.
	ends := make(map[int]sim.Time)
	open := make(map[string]int)
	for i, ev := range sc.Events {
		if ev.Kind == EventPartition {
			open[fmt.Sprint(sortedSide(ev.Procs))] = i
		} else if ev.Kind == EventUnpartition {
			ends[open[fmt.Sprint(sortedSide(ev.Procs))]] = sim.Time(ev.At)
		}
	}
	fp := &sim.FaultPlan{DropP: sc.Opts.DropP, DupP: sc.Opts.DupP}
	any := fp.DropP > 0 || fp.DupP > 0
	for i, ev := range sc.Events {
		switch ev.Kind {
		case EventBurst:
			fp.Bursts = append(fp.Bursts, sim.Burst{
				Start: sim.Time(ev.At), End: sim.Time(ev.Until), DropP: ev.DropP,
			})
			any = true
		case EventPartition:
			pEnd := end
			if e, ok := ends[i]; ok {
				pEnd = e
			}
			fp.Partitions = append(fp.Partitions, sim.Partition{
				Start: sim.Time(ev.At), End: pEnd, Side: ev.Procs,
			})
			any = true
		case EventCrash, EventHeal, EventUnpartition:
			// Crashes compile to harness.Crash entries in runSim; the heal
			// becomes FaultPlan.HealAt below; unpartitions became the End
			// of their matching partition in the pre-pass.
		case EventRestart, EventPartitionLink, EventPartitionDir, EventReset,
			EventTruncate, EventSlowLink, EventStopDrain, EventResumeDrain,
			EventLatency, EventHealLink, EventAddEdge, EventDelEdge,
			EventAddProc, EventDelProc:
			// Netsim- and dsvc-only vocabulary; Supports(BackendSim)
			// rejects scenarios carrying these before a sim run can start.
			panic("scenario: sim backend cannot compile event kind " + ev.Kind.String())
		}
	}
	if !any {
		return nil
	}
	if hasHeal {
		fp.HealAt = sim.Time(heal)
	}
	return fp
}

// healTick maps the optional heal to the anchor-search start.
func healTick(heal int64, has bool) sim.Time {
	if !has {
		return 0
	}
	return sim.Time(heal)
}
