package scenario

import (
	"fmt"
	"strings"
)

// Outcome is one executed scenario on one backend.
type Outcome struct {
	Scenario *Scenario
	Backend  Backend
	Obs      *Observations
	// Results holds one evaluated verdict per declared check.
	Results []Result
	// Trace is the run's deterministic trace: the scenario header, the
	// event script, and one verdict line per check — and nothing else.
	// Everything in it is a pure function of the scenario text (plus
	// the paper-guaranteed verdict booleans), so per-seed repeats on a
	// deterministic backend must be byte-identical, and two backends
	// agree on the differential contract exactly when their traces are
	// equal (DESIGN S22).
	Trace string
}

// Passed reports whether every verdict matched its committed
// expectation.
func (o *Outcome) Passed() bool { return len(o.Mismatches()) == 0 }

// Mismatches lists the checks whose verdict differed from the
// committed expectation.
func (o *Outcome) Mismatches() []Result {
	var out []Result
	for _, r := range o.Results {
		if r.Got != r.Check.Expect {
			out = append(out, r)
		}
	}
	return out
}

// Run executes the scenario on one backend and evaluates every
// declared check. The backend must be supported (callers select from
// RunnableBackends); errors are harness malfunctions, never property
// verdicts.
func Run(sc *Scenario, b Backend) (*Outcome, error) {
	if !sc.Supports(b) {
		return nil, fmt.Errorf("scenario %s does not support backend %s", sc.Name, b)
	}
	var (
		obs *Observations
		err error
	)
	switch b {
	case BackendSim:
		obs, err = runSim(sc)
	case BackendNetsim:
		obs, err = runNetsim(sc)
	case BackendLive:
		obs, err = runLive(sc)
	case BackendDsvc:
		obs, err = runDsvc(sc)
	default:
		err = fmt.Errorf("unknown backend %v", b)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s on %s: %w", sc.Name, b, err)
	}
	results := Evaluate(sc, obs)
	return &Outcome{
		Scenario: sc,
		Backend:  b,
		Obs:      obs,
		Results:  results,
		Trace:    renderTrace(sc, results),
	}, nil
}

// renderTrace emits the backend-independent deterministic trace.
func renderTrace(sc *Scenario, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s seed=%d\n", sc.Name, sc.Seed)
	for _, ev := range sc.Events {
		fmt.Fprintf(&b, "event %s\n", renderEvent(ev))
	}
	for _, r := range results {
		fmt.Fprintf(&b, "verdict %s=%s\n", r.Check.Prop, r.Got)
	}
	return b.String()
}

// Diagnose renders the observation record for humans debugging a
// verdict mismatch. Its output is NOT under the determinism contract.
func (o *Outcome) Diagnose() string {
	var b strings.Builder
	fmt.Fprintf(&b, "backend=%s settled=%v violations_post_stable=%d max_overtake=%d min_sessions=%d starving=%v queue_hw=%d",
		o.Backend, o.Obs.Settled, o.Obs.ExclusionViolations, o.Obs.MaxOvertake,
		o.Obs.MinWindowsClosed, o.Obs.Starving, o.Obs.QueueHW)
	if o.Backend != BackendSim {
		fmt.Fprintf(&b, " pair_depth_hw=%d send_window=%d fallen_outside=%v",
			o.Obs.PairDepthHW, o.Obs.SendWindow, o.Obs.FallenOutsideBlast)
	}
	if o.Obs.InvariantErr != "" {
		fmt.Fprintf(&b, " invariant_err=%q", o.Obs.InvariantErr)
	}
	return b.String()
}
