package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Render emits the canonical text form of a scenario: exactly the
// shape Parse accepts, with every defaultable line written explicitly,
// tokens in fixed order, and no comments. Render is the normal form of
// the format — Parse(Render(sc)) reproduces sc, and for any input
// accepted by Parse, render∘parse is a fixpoint (the round-trip law
// FuzzScenarioParse enforces).
func Render(sc *Scenario) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s\n", sc.Name)
	if sc.Summary != "" {
		fmt.Fprintf(&b, "summary: %s\n", sc.Summary)
	}
	b.WriteString("topology: ")
	switch sc.Topo.Kind {
	case TopoGrid:
		fmt.Fprintf(&b, "grid %d %d\n", sc.Topo.Rows, sc.Topo.Cols)
	case TopoRing, TopoClique, TopoPath, TopoStar:
		fmt.Fprintf(&b, "%s %d\n", sc.Topo.Kind, sc.Topo.N)
	default:
		panic(fmt.Sprintf("scenario: render of unknown topology kind %v", sc.Topo.Kind))
	}
	fmt.Fprintf(&b, "seed: %d\n", sc.Seed)
	fmt.Fprintf(&b, "horizon: %d\n", sc.Horizon)
	fmt.Fprintf(&b, "workload: think=%d eat=%d\n", sc.Work.Think, sc.Work.Eat)
	fmt.Fprintf(&b, "detector: period=%d timeout=%d increment=%d\n",
		sc.Det.Period, sc.Det.Timeout, sc.Det.Increment)
	if opts := renderOptions(sc.Opts); opts != "" {
		fmt.Fprintf(&b, "options: %s\n", opts)
	}
	if len(sc.Declared) > 0 {
		names := make([]string, len(sc.Declared))
		for i, d := range sc.Declared {
			names[i] = d.String()
		}
		fmt.Fprintf(&b, "backends: %s\n", strings.Join(names, " "))
	}
	if len(sc.Events) > 0 {
		b.WriteString("events:\n")
		for _, ev := range sc.Events {
			fmt.Fprintf(&b, "  - %s\n", renderEvent(ev))
		}
	}
	b.WriteString("expect:\n")
	for _, c := range sc.Checks {
		fmt.Fprintf(&b, "  - %s\n", renderCheck(c))
	}
	return []byte(b.String())
}

// fmtProb renders a probability with the shortest exact representation
// so a render→parse round trip reproduces the same float64.
func fmtProb(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

func renderOptions(o Options) string {
	var toks []string
	if o.Raw {
		toks = append(toks, "raw")
	}
	if o.DropP != 0 {
		toks = append(toks, "drop="+fmtProb(o.DropP))
	}
	if o.DupP != 0 {
		toks = append(toks, "dup="+fmtProb(o.DupP))
	}
	if o.Window != 0 {
		toks = append(toks, fmt.Sprintf("window=%d", o.Window))
	}
	if o.Backoff != 0 {
		toks = append(toks, fmt.Sprintf("backoff=%d", o.Backoff))
	}
	if o.BackoffMax != 0 {
		toks = append(toks, fmt.Sprintf("backoffmax=%d", o.BackoffMax))
	}
	return strings.Join(toks, " ")
}

func renderEvent(ev Event) string {
	at := fmt.Sprintf("at=%d", ev.At)
	switch ev.Kind {
	case EventCrash, EventRestart, EventDelProc:
		return fmt.Sprintf("%s %s %d", at, ev.Kind, ev.Procs[0])
	case EventPartition, EventUnpartition:
		ids := make([]string, len(ev.Procs))
		for i, p := range ev.Procs {
			ids[i] = strconv.Itoa(p)
		}
		return fmt.Sprintf("%s %s %s", at, ev.Kind, strings.Join(ids, ","))
	case EventPartitionLink, EventPartitionDir, EventReset, EventStopDrain, EventResumeDrain,
		EventHealLink, EventAddEdge, EventDelEdge:
		return fmt.Sprintf("%s %s %d %d", at, ev.Kind, ev.A, ev.B)
	case EventAddProc:
		return at + " add-proc"
	case EventTruncate:
		return fmt.Sprintf("%s truncate %d %d bytes=%d", at, ev.A, ev.B, ev.Bytes)
	case EventSlowLink:
		return fmt.Sprintf("%s slow-link %d %d rate=%d", at, ev.A, ev.B, ev.Rate)
	case EventLatency:
		return fmt.Sprintf("%s latency %d %d lat=%d jitter=%d", at, ev.A, ev.B, ev.Latency, ev.Jitter)
	case EventBurst:
		return fmt.Sprintf("%s burst until=%d drop=%s", at, ev.Until, fmtProb(ev.DropP))
	case EventHeal:
		return at + " heal"
	default:
		panic(fmt.Sprintf("scenario: render of unknown event kind %v", ev.Kind))
	}
}

func renderCheck(c Check) string {
	switch c.Prop {
	case PropOvertakeBound:
		return fmt.Sprintf("overtake_bound k=%d %s", c.K, c.Expect)
	case PropQueueBound:
		return fmt.Sprintf("queue_bound limit=%d %s", c.Limit, c.Expect)
	case PropQuiescence:
		if c.By != 0 {
			return fmt.Sprintf("quiescence by=%d %s", c.By, c.Expect)
		}
		return fmt.Sprintf("quiescence %s", c.Expect)
	default:
		return fmt.Sprintf("%s %s", c.Prop, c.Expect)
	}
}
