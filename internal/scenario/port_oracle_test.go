package scenario_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/remote/cluster"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// The three scenario files in this test port hand-written cases:
//
//   - ring5-kill-node      ← cluster.TestFiveNodeWaitFreedom
//   - netsim-soak-seed1    ← cluster.RunChaosSoak seed 1 (ms-rounded)
//   - sim-ring8-lossy      ← experiments E11, rlink arm
//
// The originals stay in the tree as regression oracles. The ported
// schedules are not always bit-identical (scenario time is quantised
// to 1 ms ticks, and scenario partitions last until the heal), so the
// contract these tests enforce is VERDICT identity: the property
// booleans the original asserts must equal the verdicts the scenario
// reports.

func loadScenario(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "scenarios", name+".scen"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func verdictOf(t *testing.T, out *scenario.Outcome, p scenario.Property) bool {
	t.Helper()
	for _, r := range out.Results {
		if r.Check.Prop == p {
			return r.Got == scenario.VerdictPass
		}
	}
	t.Fatalf("scenario %s declares no %s check", out.Scenario.Name, p)
	return false
}

// TestPortedKillNodeVerdicts checks the scenario port of the five-node
// kill-one-node acceptance test: the original asserts that after
// killing node 2 every correct process keeps eating, exclusion stays
// clean post-stabilization, nobody starves, and edge occupancy stays
// under the sanity lid — exactly the scenario's committed pass
// verdicts, here re-derived on the deterministic netsim backend.
func TestPortedKillNodeVerdicts(t *testing.T) {
	sc := loadScenario(t, "ring5-kill-node")
	out, err := scenario.Run(sc, scenario.BackendNetsim)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []scenario.Property{
		scenario.PropExclusionClean, // zero violations after stabilization
		scenario.PropWaitFreedom,    // neighbors of the dead keep eating
		scenario.PropQueueBound,     // occupancy high water <= 8
		scenario.PropContainment,    // c.Err() == nil
	} {
		if !verdictOf(t, out, p) {
			t.Errorf("%s: original test asserts this property holds, scenario port says fail (%s)", p, out.Diagnose())
		}
	}
}

// TestPortedSoakSeed1Verdicts runs the original generated seed-1 chaos
// soak and the ms-rounded scenario transcription and demands identical
// verdicts, property by property.
func TestPortedSoakSeed1Verdicts(t *testing.T) {
	res, err := cluster.RunChaosSoak(cluster.SoakConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	soak := map[string]bool{}
	for _, line := range strings.Split(res.Trace, "\n") {
		rest, ok := strings.CutPrefix(line, "verdict ")
		if !ok {
			continue
		}
		name, val, ok := strings.Cut(rest, "=")
		if !ok {
			continue
		}
		soak[name] = val == "true"
	}

	sc := loadScenario(t, "netsim-soak-seed1")
	out, err := scenario.Run(sc, scenario.BackendNetsim)
	if err != nil {
		t.Fatal(err)
	}

	// Scenario property → conjunction of the soak verdicts it unifies.
	mapping := map[scenario.Property][]string{
		scenario.PropExclusionClean: {"anchor_settled", "exclusion_clean_post_stable"},
		scenario.PropWaitFreedom:    {"no_starvation_post_heal"},
		scenario.PropOvertakeBound:  {"anchor_settled", "overtake_bound_2_post_stable"},
		scenario.PropPairDepthBound: {"queue_depth_bounded"},
		scenario.PropContainment:    {"fallen_within_blast_radius", "errors_outside_blast_radius_none"},
	}
	for p, names := range mapping {
		want := true
		for _, n := range names {
			v, ok := soak[n]
			if !ok {
				t.Fatalf("soak trace lacks verdict %q:\n%s", n, res.Trace)
			}
			want = want && v
		}
		if got := verdictOf(t, out, p); got != want {
			t.Errorf("%s: soak oracle says %v, scenario port says %v", p, want, got)
		}
	}
}

// TestPortedLossyLinksVerdicts runs the original E11 rlink-arm
// adversary (10%% drop + 10%% duplication, a 90%% burst, a bipartition,
// all healing at 12000) through the harness exactly as the experiment
// does, derives the experiment's pass booleans, and demands the
// scenario port reach the same verdicts on the sim backend.
func TestPortedLossyLinksVerdicts(t *testing.T) {
	spec := harness.Spec{
		Graph:     graph.Ring(8),
		Seed:      1,
		Algorithm: harness.Algorithm1,
		Detector:  harness.DetectorHeartbeat,
		Heartbeat: harness.DefaultHeartbeatParams(),
		Workload:  runner.Saturated(),
		Horizon:   30000,
		Reliable:  true,
		Faults: &sim.FaultPlan{
			DropP:      0.10,
			DupP:       0.10,
			Bursts:     []sim.Burst{{Start: 4000, End: 5000, DropP: 0.9}},
			Partitions: []sim.Partition{{Start: 7000, End: 8000, Side: []int{0, 1, 2, 3}}},
			HealAt:     12000,
		},
	}
	res, err := harness.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantWaitFree := len(res.Starving) == 0
	wantOvertake := res.MaxOvertakeSuffix <= 2

	sc := loadScenario(t, "sim-ring8-lossy")
	out, err := scenario.Run(sc, scenario.BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, out, scenario.PropWaitFreedom); got != wantWaitFree {
		t.Errorf("wait_freedom: E11 oracle says %v, scenario port says %v", wantWaitFree, got)
	}
	if got := verdictOf(t, out, scenario.PropOvertakeBound); got != wantOvertake {
		t.Errorf("overtake_bound: E11 oracle says %v, scenario port says %v", wantOvertake, got)
	}
}
