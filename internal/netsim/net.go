package netsim

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Net is an in-memory network: a set of named endpoints connected by
// directed links with configurable latency/jitter and injectable
// faults. Listen/Dial produce net.Listener/net.Conn values with real
// byte-stream semantics — FIFO per direction, partial reads, deadlines
// — except that time is the virtual clock, so nothing moves unless the
// harness advances it.
//
// Fault model (what ChaosPlan scripts):
//
//   - latency/jitter per directed link, applied per write;
//   - partitions hold written bytes in flight (the link is silent but
//     connections stay up, like a blackholing middlebox); healing
//     releases the held bytes in order;
//   - resets kill every live connection between two endpoints with a
//     "connection reset" error on both sides, dropping queued bytes —
//     a connection dying with unflushed kernel buffers;
//   - truncation silently drops the newest queued bytes of a link's
//     streams without killing the connection, punching a hole
//     mid-stream that the wire codec must detect and the transport
//     must recover from by tearing the connection down itself;
//   - rate limits model a slow reader / thin pipe: each chunk's
//     delivery is serialized behind the previous one at the link's
//     byte rate, so a throttled link backs traffic up realistically;
//   - stop-drain freezes the consuming end of a link (the application
//     stops reading): bytes queue against the pipe's bounded buffer,
//     and once it fills, writes block until the write deadline expires
//     — exactly how a wedged peer surfaces through a real kernel
//     socket buffer.
//
// Every pipe buffers at most DefaultBufCap bytes (a kernel
// send-buffer stand-in); a write finding the buffer full blocks until
// the reader drains, the connection dies, or the write deadline
// passes. This is what makes long partitions and stop-drain episodes
// resource-bounded: a silent link accumulates one buffer of bytes,
// never an unbounded backlog.
//
// Lock ordering: Net.mu → pipe.mu → Clock.mu. Clock callbacks fire
// with no clock locks held, so pipes may schedule wakes while locked.
type Net struct {
	clock *Clock
	seed  int64

	// BufCap is the per-pipe byte buffer capacity adopted by
	// connections created after it is set (DefaultBufCap from NewNet;
	// <= 0 means unlimited). Set it before dialing, never mid-run.
	BufCap int

	mu        sync.Mutex
	listeners map[string]*listener
	links     map[[2]string]*linkCfg
	// pipes is kept in creation order, never a map: fault injection
	// walks it drawing per-link jitter samples, so a nondeterministic
	// visit order would consume the rngs differently run to run and
	// skew the restamped delivery times.
	pipes []*pipe
}

// DefaultBufCap is the default per-pipe buffered-byte capacity — the
// virtual analogue of a kernel socket send buffer.
const DefaultBufCap = 256 << 10

// linkCfg is the state of one directed link.
type linkCfg struct {
	latency time.Duration
	jitter  time.Duration
	down    bool
	rate    int64 // delivery bytes/sec; 0 = unlimited
	noDrain bool  // receiving end stopped reading
	rng     *rand.Rand
}

// NewNet builds an empty network on the given virtual clock. The seed
// feeds per-link jitter draws only; it never influences the fault
// schedule (ChaosPlan has its own seed).
func NewNet(clock *Clock, seed int64) *Net {
	return &Net{
		clock:     clock,
		seed:      seed,
		BufCap:    DefaultBufCap,
		listeners: make(map[string]*listener),
		links:     make(map[[2]string]*linkCfg),
	}
}

// Clock returns the network's virtual clock.
func (n *Net) Clock() *Clock { return n.clock }

// Host returns the endpoint handle for addr: its Listen binds the
// address, and its Dial originates from it (so directed partitions
// know which way the connection attempt crosses the link).
func (n *Net) Host(addr string) *Host { return &Host{n: n, addr: addr} }

// Host is one named endpoint of the network.
type Host struct {
	n    *Net
	addr string
}

// Addr returns the host's address string.
func (h *Host) Addr() string { return h.addr }

// Listen binds the host's address. Re-listening after Close is
// allowed (a restarted node reuses its address); double-listening is
// an error, as with real sockets.
func (h *Host) Listen() (net.Listener, error) {
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	if _, taken := h.n.listeners[h.addr]; taken {
		return nil, fmt.Errorf("netsim: listen %s: address in use", h.addr)
	}
	l := &listener{n: h.n, addr: h.addr}
	l.cond.L = &l.mu
	h.n.listeners[h.addr] = l
	return l, nil
}

// Dial connects from this host to raddr. It fails immediately when no
// listener is bound (connection refused) or the link is partitioned in
// either direction (a TCP connect needs both ways). Establishment
// itself is instantaneous; per-byte latency applies to the streams.
func (h *Host) Dial(raddr string) (net.Conn, error) {
	h.n.mu.Lock()
	if h.n.linkLocked(h.addr, raddr).down || h.n.linkLocked(raddr, h.addr).down {
		h.n.mu.Unlock()
		return nil, fmt.Errorf("netsim: dial %s from %s: network unreachable (partitioned)", raddr, h.addr)
	}
	l, ok := h.n.listeners[raddr]
	if !ok {
		h.n.mu.Unlock()
		return nil, fmt.Errorf("netsim: dial %s from %s: connection refused", raddr, h.addr)
	}
	ab := h.n.newPipeLocked(h.addr, raddr)
	ba := h.n.newPipeLocked(raddr, h.addr)
	h.n.mu.Unlock()

	client := &nsConn{n: h.n, local: h.addr, remote: raddr, rd: ba, wr: ab}
	server := &nsConn{n: h.n, local: raddr, remote: h.addr, rd: ab, wr: ba}
	if err := l.offer(server); err != nil {
		client.Close()
		return nil, err
	}
	return client, nil
}

// linkLocked returns (creating if needed) the directed link config.
func (n *Net) linkLocked(from, to string) *linkCfg {
	key := [2]string{from, to}
	lc, ok := n.links[key]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(from))
		h.Write([]byte{0})
		h.Write([]byte(to))
		lc = &linkCfg{rng: rand.New(rand.NewSource(n.seed ^ int64(h.Sum64())))}
		n.links[key] = lc
	}
	return lc
}

func (n *Net) newPipeLocked(from, to string) *pipe {
	p := &pipe{n: n, from: from, to: to, bufCap: n.BufCap}
	p.noDrain = n.linkLocked(from, to).noDrain
	p.cond.L = &p.mu
	n.pipes = append(n.pipes, p)
	return p
}

// sweepLocked forgets pipes that can never carry another byte,
// preserving creation order among the survivors.
func (n *Net) sweepLocked() {
	live := n.pipes[:0]
	for _, p := range n.pipes {
		p.mu.Lock()
		dead := p.resetErr != nil || (p.writeClosed && p.readClosed)
		p.mu.Unlock()
		if !dead {
			live = append(live, p)
		}
	}
	for i := len(live); i < len(n.pipes); i++ {
		n.pipes[i] = nil
	}
	n.pipes = live
}

// --- fault injection ----------------------------------------------------

// SetLink configures latency and jitter on the link between a and b,
// both directions.
func (n *Net) SetLink(a, b string, latency, jitter time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range [][2]string{{a, b}, {b, a}} {
		lc := n.linkLocked(k[0], k[1])
		lc.latency, lc.jitter = latency, jitter
	}
}

// SetLinkRate throttles delivery on the link between a and b (both
// directions) to bytesPerSec, modeling a slow reader or thin pipe:
// each chunk's arrival is serialized behind the previous one at that
// byte rate, so sustained traffic backs up in the pipe buffer. Zero
// restores unlimited rate.
func (n *Net) SetLinkRate(a, b string, bytesPerSec int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range [][2]string{{a, b}, {b, a}} {
		n.linkLocked(k[0], k[1]).rate = bytesPerSec
	}
}

// StopDrain freezes the consuming end of every stream between a and b
// (both directions): delivered bytes stop being readable, as if the
// remote application wedged without closing its socket. Writes keep
// landing in the pipe buffer until it fills, then block.
func (n *Net) StopDrain(a, b string) { n.setDrain(a, b, false) }

// ResumeDrain undoes StopDrain: queued bytes become readable again at
// their original delivery times.
func (n *Net) ResumeDrain(a, b string) { n.setDrain(a, b, true) }

func (n *Net) setDrain(a, b string, drain bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range [][2]string{{a, b}, {b, a}} {
		n.linkLocked(k[0], k[1]).noDrain = !drain
	}
	for _, p := range n.pipes {
		if (p.from == a && p.to == b) || (p.from == b && p.to == a) {
			p.mu.Lock()
			p.noDrain = !drain
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// QueuedBytes reports the total undelivered (queued or held) bytes
// across all live pipes — the simulated network's entire in-flight
// footprint, used by resource-invariant assertions.
func (n *Net) QueuedBytes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, p := range n.pipes {
		p.mu.Lock()
		total += p.queued
		p.mu.Unlock()
	}
	return total
}

// PartitionDir blackholes the directed link from→to: written bytes are
// held in flight and new dial attempts crossing the link fail.
func (n *Net) PartitionDir(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(from, to).down = true
}

// Partition blackholes both directions between a and b.
func (n *Net) Partition(a, b string) {
	n.PartitionDir(a, b)
	n.PartitionDir(b, a)
}

// HealDir reopens the directed link from→to and releases its held
// bytes, in order, with the link's current latency.
func (n *Net) HealDir(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(from, to).down = false
	n.releaseHeldLocked(from, to)
}

// HealAll reopens every partitioned link, releases all held bytes,
// restores full delivery rate, and resumes draining everywhere — the
// "network is whole again" event the stabilization suffix builds on.
func (n *Net) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, lc := range n.links {
		lc.down = false
		lc.rate = 0
		lc.noDrain = false
	}
	for _, p := range n.pipes {
		p.mu.Lock()
		p.noDrain = false
		p.cond.Broadcast()
		p.mu.Unlock()
		n.releaseHeldPipeLocked(p)
	}
	n.sweepLocked()
}

func (n *Net) releaseHeldLocked(from, to string) {
	for _, p := range n.pipes {
		if p.from == from && p.to == to {
			n.releaseHeldPipeLocked(p)
		}
	}
	n.sweepLocked()
}

// releaseHeldPipeLocked restamps a pipe's held chunks with delivery
// times from now, preserving order.
func (n *Net) releaseHeldPipeLocked(p *pipe) {
	lc := n.linkLocked(p.from, p.to)
	now := n.clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.chunks {
		if !p.chunks[i].held {
			continue
		}
		at := now.Add(lc.delay())
		if at.Before(p.lastAt) {
			at = p.lastAt
		}
		p.chunks[i].held = false
		p.chunks[i].at = at
		p.lastAt = at
		p.scheduleWakeLocked(at)
	}
	p.cond.Broadcast()
}

// ResetLink kills every live connection between a and b (both
// directions) with a connection-reset error, dropping queued bytes.
// It returns how many stream directions it reset.
func (n *Net) ResetLink(a, b string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for _, p := range n.pipes {
		if (p.from == a && p.to == b) || (p.from == b && p.to == a) {
			p.reset(errConnReset)
			count++
		}
	}
	n.sweepLocked()
	return count
}

// TruncateLink silently drops up to dropTail of the newest queued
// (undelivered) bytes in each stream direction between a and b,
// leaving the connections up: the byte stream acquires a hole that the
// frame codec must detect. It returns how many bytes were dropped.
func (n *Net) TruncateLink(a, b string, dropTail int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	dropped := 0
	for _, p := range n.pipes {
		if (p.from == a && p.to == b) || (p.from == b && p.to == a) {
			dropped += p.truncateTail(dropTail)
		}
	}
	return dropped
}

// --- pipe: one directed byte stream -------------------------------------

type chunk struct {
	at   time.Time
	held bool
	b    []byte
}

// pipe carries bytes from one endpoint to the other. It is shared by
// the two nsConns of a connection: the writer side appends chunks with
// virtual delivery times, the reader side consumes them once the clock
// passes those times.
type pipe struct {
	n        *Net
	from, to string

	mu   sync.Mutex
	cond sync.Cond

	chunks      []chunk
	lastAt      time.Time // delivery-time high-water, keeps FIFO order under jitter
	queued      int       // undelivered bytes (queued + held), bounded by bufCap
	bufCap      int       // byte capacity; <= 0 means unlimited
	noDrain     bool      // reader end frozen: nothing is deliverable
	writeClosed bool      // writer gone: EOF after the queue drains
	readClosed  bool      // reader gone: writes fail
	resetErr    error     // hard failure, both sides, queue dropped

	readDeadline  time.Time
	writeDeadline time.Time
}

// send stamps b with the link's current delay (or holds it during a
// partition) and enqueues it. When the pipe's byte buffer is full the
// write blocks — like a full kernel send buffer — until the reader
// drains, the connection dies, or the write deadline passes. The
// latency stamp is drawn after any blocking wait so delivery reflects
// when the bytes actually entered the link, not when the writer first
// tried.
func (n *Net) send(p *pipe, b []byte) (int, error) {
	for {
		n.mu.Lock()
		lc := n.linkLocked(p.from, p.to)
		down := lc.down
		var at time.Time
		var tx time.Duration
		if !down {
			at = n.clock.Now().Add(lc.delay())
			if lc.rate > 0 {
				tx = time.Duration(int64(len(b))) * time.Second / time.Duration(lc.rate)
			}
		}
		n.mu.Unlock()

		p.mu.Lock()
		switch {
		case p.resetErr != nil:
			err := p.resetErr
			p.mu.Unlock()
			return 0, err
		case p.writeClosed:
			p.mu.Unlock()
			return 0, net.ErrClosed
		case p.readClosed:
			p.mu.Unlock()
			return 0, errConnReset
		}
		// Admit a write that fits, and always admit into an empty buffer
		// (an oversized single write must not deadlock, mirroring kernels
		// accepting at least one chunk).
		if p.bufCap > 0 && p.queued > 0 && p.queued+len(b) > p.bufCap {
			now := p.n.clock.Now()
			if dl := p.writeDeadline; !dl.IsZero() && !now.Before(dl) {
				p.mu.Unlock()
				return 0, errDeadline
			}
			if dl := p.writeDeadline; !dl.IsZero() {
				// A frozen reader never drains, so the deadline needs its
				// own wake to un-wedge the writer.
				p.scheduleWakeLocked(dl)
			}
			p.cond.Wait()
			p.mu.Unlock()
			// Re-stamp from scratch: the link's latency, rate, or
			// partition state may have changed while we were blocked.
			continue
		}
		c := chunk{b: append([]byte(nil), b...), held: down}
		if !down {
			if at.Before(p.lastAt) {
				at = p.lastAt
			}
			at = at.Add(tx) // serialize behind prior traffic at the link rate
			c.at = at
			p.lastAt = at
			p.scheduleWakeLocked(at)
		}
		p.chunks = append(p.chunks, c)
		p.queued += len(b)
		// A zero-delay chunk is deliverable right now; wake blocked readers
		// without waiting for the next clock advance.
		p.cond.Broadcast()
		p.mu.Unlock()
		return len(b), nil
	}
}

// delay draws one per-write latency sample (rng guarded by Net.mu).
func (lc *linkCfg) delay() time.Duration {
	d := lc.latency
	if lc.jitter > 0 {
		d += time.Duration(lc.rng.Int63n(int64(lc.jitter) + 1))
	}
	return d
}

// scheduleWakeLocked arms a clock event that re-checks the pipe when a
// delivery time (or deadline) arrives. Stale wakes are harmless: the
// reader re-evaluates its conditions on every broadcast.
func (p *pipe) scheduleWakeLocked(at time.Time) {
	d := at.Sub(p.n.clock.Now())
	if d < 0 {
		d = 0
	}
	p.n.clock.AfterFunc(d, p.wake)
}

func (p *pipe) wake() {
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// read blocks until bytes are deliverable at the current virtual time,
// the stream ends, or the read deadline passes.
func (p *pipe) read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.readClosed {
			return 0, net.ErrClosed
		}
		if p.resetErr != nil {
			return 0, p.resetErr
		}
		now := p.n.clock.Now()
		if !p.noDrain && len(p.chunks) > 0 && !p.chunks[0].held && !p.chunks[0].at.After(now) {
			c := &p.chunks[0]
			nb := copy(b, c.b)
			if nb < len(c.b) {
				c.b = c.b[nb:]
			} else {
				p.chunks = p.chunks[1:]
			}
			p.queued -= nb
			// Draining may have opened buffer space; wake blocked writers.
			p.cond.Broadcast()
			return nb, nil
		}
		if p.writeClosed && len(p.chunks) == 0 {
			return 0, io.EOF
		}
		if dl := p.readDeadline; !dl.IsZero() && !now.Before(dl) {
			return 0, errDeadline
		}
		p.cond.Wait()
	}
}

func (p *pipe) setReadDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readDeadline = t
	if !t.IsZero() {
		p.scheduleWakeLocked(t)
	}
	p.cond.Broadcast()
}

func (p *pipe) setWriteDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeDeadline = t
	if !t.IsZero() {
		p.scheduleWakeLocked(t)
	}
	p.cond.Broadcast()
}

// closeWrite ends the stream: queued bytes still deliver, then EOF.
func (p *pipe) closeWrite() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeClosed = true
	p.cond.Broadcast()
}

// closeRead abandons the stream from the reader side: local reads and
// remote writes fail from here on.
func (p *pipe) closeRead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readClosed = true
	p.cond.Broadcast()
}

func (p *pipe) reset(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.resetErr == nil {
		p.resetErr = err
	}
	p.chunks = nil
	p.queued = 0
	p.cond.Broadcast()
}

// truncateTail drops up to dropTail of the newest queued bytes,
// trimming partial chunks, and returns how many were dropped.
func (p *pipe) truncateTail(dropTail int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	dropped := 0
	for dropped < dropTail && len(p.chunks) > 0 {
		last := &p.chunks[len(p.chunks)-1]
		take := dropTail - dropped
		if take >= len(last.b) {
			dropped += len(last.b)
			p.chunks = p.chunks[:len(p.chunks)-1]
			continue
		}
		last.b = last.b[:len(last.b)-take]
		dropped += take
	}
	p.queued -= dropped
	if dropped > 0 {
		// Dropping tail bytes frees buffer space for blocked writers.
		p.cond.Broadcast()
	}
	return dropped
}

// --- nsConn: net.Conn over a pipe pair ----------------------------------

type nsConn struct {
	n             *Net
	local, remote string
	rd, wr        *pipe
	closeOnce     sync.Once
}

func (c *nsConn) Read(b []byte) (int, error)  { return c.rd.read(b) }
func (c *nsConn) Write(b []byte) (int, error) { return c.n.send(c.wr, b) }

func (c *nsConn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.closeWrite()
		c.rd.closeRead()
	})
	return nil
}

func (c *nsConn) LocalAddr() net.Addr  { return netAddr(c.local) }
func (c *nsConn) RemoteAddr() net.Addr { return netAddr(c.remote) }

func (c *nsConn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}
func (c *nsConn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}
func (c *nsConn) SetWriteDeadline(t time.Time) error {
	c.wr.setWriteDeadline(t)
	return nil
}

// netAddr is a netsim endpoint address.
type netAddr string

func (a netAddr) Network() string { return "netsim" }
func (a netAddr) String() string  { return string(a) }

// --- listener -----------------------------------------------------------

type listener struct {
	n    *Net
	addr string

	mu      sync.Mutex
	cond    sync.Cond
	pending []*nsConn
	closed  bool
}

func (l *listener) offer(c *nsConn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("netsim: dial %s: connection refused (listener closed)", l.addr)
	}
	l.pending = append(l.pending, c)
	l.cond.Broadcast()
	return nil
}

func (l *listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.pending) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, net.ErrClosed
	}
	c := l.pending[0]
	l.pending = l.pending[1:]
	return c, nil
}

func (l *listener) Close() error {
	l.n.mu.Lock()
	if l.n.listeners[l.addr] == l {
		delete(l.n.listeners, l.addr)
	}
	l.n.mu.Unlock()
	l.mu.Lock()
	pending := l.pending
	l.pending = nil
	alreadyClosed := l.closed
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	for _, c := range pending {
		c.rd.reset(errConnReset)
		c.wr.reset(errConnReset)
	}
	if alreadyClosed {
		return net.ErrClosed
	}
	return nil
}

func (l *listener) Addr() net.Addr { return netAddr(l.addr) }

// --- errors -------------------------------------------------------------

var errConnReset = &netError{msg: "netsim: connection reset", timeout: false}
var errDeadline = &netError{msg: "netsim: i/o deadline exceeded", timeout: true}

// netError implements net.Error so deadline expiries are recognizable
// as timeouts by generic networking code.
type netError struct {
	msg     string
	timeout bool
}

func (e *netError) Error() string   { return e.msg }
func (e *netError) Timeout() bool   { return e.timeout }
func (e *netError) Temporary() bool { return e.timeout }
