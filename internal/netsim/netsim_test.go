package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// testTimeout bounds real-time waits on virtual-clock activity; a
// second of wall time is an eternity when every delay is simulated.
const testTimeout = 5 * time.Second

func dialPair(t *testing.T, n *Net, from, to string) (client, server net.Conn) {
	t.Helper()
	ln, err := n.Host(to).Listen()
	if err != nil {
		t.Fatalf("listen %s: %v", to, err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			close(accepted)
			return
		}
		accepted <- c
	}()
	client, err = n.Host(from).Dial(to)
	if err != nil {
		t.Fatalf("dial %s->%s: %v", from, to, err)
	}
	select {
	case server = <-accepted:
	case <-time.After(testTimeout):
		t.Fatal("accept timed out")
	}
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { ln.Close() })
	return client, server
}

// readAsync starts a Read on its own goroutine, returning channels for
// the result — tests pump the virtual clock while the read blocks.
func readAsync(c net.Conn, size int) (<-chan []byte, <-chan error) {
	data := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, size)
		n, err := c.Read(buf)
		if err != nil {
			errc <- err
			return
		}
		data <- buf[:n]
	}()
	return data, errc
}

func wantData(t *testing.T, data <-chan []byte, errc <-chan error, want string) {
	t.Helper()
	select {
	case b := <-data:
		if string(b) != want {
			t.Fatalf("read %q, want %q", b, want)
		}
	case err := <-errc:
		t.Fatalf("read error %v, want %q", err, want)
	case <-time.After(testTimeout):
		t.Fatalf("read of %q timed out (virtual time stuck?)", want)
	}
}

func wantErr(t *testing.T, data <-chan []byte, errc <-chan error, check func(error) bool, desc string) {
	t.Helper()
	select {
	case b := <-data:
		t.Fatalf("read %q, want %s", b, desc)
	case err := <-errc:
		if !check(err) {
			t.Fatalf("read error %v, want %s", err, desc)
		}
	case <-time.After(testTimeout):
		t.Fatalf("read timed out, want %s", desc)
	}
}

func TestClockTimerOrderAndStop(t *testing.T) {
	clk := NewClock()
	var fired []int
	clk.AfterFunc(30*time.Millisecond, func() { fired = append(fired, 3) })
	clk.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 1) })
	clk.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 2) }) // same instant: FIFO
	stop := clk.AfterFunc(20*time.Millisecond, func() { fired = append(fired, 99) })
	if !stop.Stop() {
		t.Fatal("Stop before firing should report true")
	}
	if stop.Stop() {
		t.Fatal("second Stop should report false")
	}
	clk.Advance(25 * time.Millisecond)
	if want := []int{1, 2}; len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("after 25ms fired=%v want %v", fired, want)
	}
	clk.Advance(5 * time.Millisecond)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("after 30ms fired=%v want [1 2 3]", fired)
	}
	if got := clk.Elapsed(); got != 30*time.Millisecond {
		t.Fatalf("Elapsed=%v want 30ms", got)
	}
}

func TestClockTimerChaining(t *testing.T) {
	// A callback scheduling a follow-up inside the advanced window: the
	// same Advance must fire it.
	clk := NewClock()
	var hits int
	clk.AfterFunc(10*time.Millisecond, func() {
		hits++
		clk.AfterFunc(10*time.Millisecond, func() { hits++ })
	})
	clk.Advance(25 * time.Millisecond)
	if hits != 2 {
		t.Fatalf("hits=%d want 2 (chained timer must fire within one Advance)", hits)
	}
}

func TestClockTicker(t *testing.T) {
	clk := NewClock()
	tk := clk.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	done := make(chan int, 1)
	go func() {
		n := 0
		for range tk.C() {
			n++
			if n == 3 {
				done <- n
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		clk.Advance(10 * time.Millisecond)
		select {
		case n := <-done:
			if n != 3 {
				t.Fatalf("ticks=%d want 3", n)
			}
			return
		default:
		}
	}
	t.Fatal("ticker produced fewer than 3 ticks in 100 periods")
}

func TestLatencyDeliversOnAdvance(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	n.SetLink("a", "b", 5*time.Millisecond, 0)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, errc := readAsync(s, 16)
	// Not deliverable before latency elapses.
	clk.Advance(4 * time.Millisecond)
	select {
	case b := <-data:
		t.Fatalf("read %q before latency elapsed", b)
	case err := <-errc:
		t.Fatalf("read error %v before latency elapsed", err)
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(1 * time.Millisecond)
	wantData(t, data, errc, "hello")
}

func TestFIFOUnderJitter(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 42)
	n.SetLink("a", "b", 2*time.Millisecond, 5*time.Millisecond)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	for _, part := range []string{"ab", "cd", "ef", "gh"} {
		if _, err := c.Write([]byte(part)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 8)
		for len(got) < 8 {
			nn, err := s.Read(buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = append(got, buf[:nn]...)
		}
	}()
	for i := 0; i < 50; i++ {
		clk.Advance(time.Millisecond)
		select {
		case <-done:
			if string(got) != "abcdefgh" {
				t.Fatalf("stream reordered: %q", got)
			}
			return
		default:
		}
	}
	t.Fatalf("stream incomplete after 50ms virtual: %q", got)
}

func TestPartialReadAndEOF(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	c, s := dialPair(t, n, "a", "b")
	defer s.Close()

	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.Close()
	// Zero latency: deliverable immediately, in partial pieces.
	buf := make([]byte, 4)
	nn, err := s.Read(buf)
	if err != nil || string(buf[:nn]) != "abcd" {
		t.Fatalf("first read %q/%v, want abcd", buf[:nn], err)
	}
	nn, err = s.Read(buf)
	if err != nil || string(buf[:nn]) != "ef" {
		t.Fatalf("second read %q/%v, want ef", buf[:nn], err)
	}
	if _, err = s.Read(buf); err != io.EOF {
		t.Fatalf("read after close: %v, want EOF", err)
	}
}

func TestReadDeadline(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	s.SetReadDeadline(clk.Now().Add(10 * time.Millisecond))
	data, errc := readAsync(s, 8)
	clk.Advance(11 * time.Millisecond)
	wantErr(t, data, errc, func(err error) bool {
		var ne net.Error
		return errors.As(err, &ne) && ne.Timeout()
	}, "timeout net.Error")

	// Clearing the deadline lets reads proceed again.
	s.SetReadDeadline(time.Time{})
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, errc = readAsync(s, 8)
	wantData(t, data, errc, "x")
}

func TestPartitionHoldsBytesUntilHeal(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	n.Partition("a", "b")
	if _, err := c.Write([]byte("held")); err != nil {
		t.Fatalf("write during partition should succeed locally: %v", err)
	}
	data, errc := readAsync(s, 8)
	clk.Advance(time.Second)
	select {
	case b := <-data:
		t.Fatalf("read %q across a partition", b)
	case err := <-errc:
		t.Fatalf("read error %v across a partition", err)
	case <-time.After(20 * time.Millisecond):
	}
	n.HealAll()
	clk.Advance(time.Millisecond)
	wantData(t, data, errc, "held")
}

func TestAsymmetricPartition(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	n.PartitionDir("a", "b")
	// b→a still flows.
	if _, err := s.Write([]byte("back")); err != nil {
		t.Fatalf("write b->a: %v", err)
	}
	data, errc := readAsync(c, 8)
	wantData(t, data, errc, "back")
	// a→b is held.
	if _, err := c.Write([]byte("fwd")); err != nil {
		t.Fatalf("write a->b: %v", err)
	}
	sdata, serrc := readAsync(s, 8)
	clk.Advance(100 * time.Millisecond)
	select {
	case b := <-sdata:
		t.Fatalf("read %q across directed partition", b)
	case <-time.After(20 * time.Millisecond):
	}
	n.HealDir("a", "b")
	clk.Advance(time.Millisecond)
	wantData(t, sdata, serrc, "fwd")
}

func TestDialFailures(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	if _, err := n.Host("a").Dial("nowhere"); err == nil {
		t.Fatal("dial with no listener should be refused")
	}
	ln, err := n.Host("b").Listen()
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if _, err := n.Host("b").Listen(); err == nil {
		t.Fatal("double listen should fail (address in use)")
	}
	n.PartitionDir("b", "a") // reverse direction alone must block the dial
	if _, err := n.Host("a").Dial("b"); err == nil {
		t.Fatal("dial across a partitioned link should fail")
	}
	n.HealAll()
	if _, err := n.Host("a").Dial("b"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestResetLink(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	if _, err := c.Write([]byte("doomed")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := n.ResetLink("a", "b"); got == 0 {
		t.Fatal("ResetLink found no streams")
	}
	if _, err := s.Read(make([]byte, 8)); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("read after reset: %v, want connection reset", err)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after reset should fail")
	}
}

func TestTruncatePunchesHole(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	n.SetLink("a", "b", time.Millisecond, 0) // keep bytes queued
	if _, err := c.Write([]byte("keep")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := n.TruncateLink("a", "b", 4); got != 4 {
		t.Fatalf("TruncateLink dropped %d bytes, want 4", got)
	}
	if _, err := c.Write([]byte("tail")); err != nil {
		t.Fatalf("write after truncate (conn must stay up): %v", err)
	}
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		for len(got) < 8 {
			nn, err := s.Read(buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = append(got, buf[:nn]...)
		}
	}()
	for i := 0; i < 20; i++ {
		clk.Advance(time.Millisecond)
		select {
		case <-done:
			if string(got) != "keeptail" {
				t.Fatalf("stream after truncation: %q, want keeptail", got)
			}
			return
		default:
		}
	}
	t.Fatalf("stream incomplete: %q", got)
}

func TestListenerCloseAndRebind(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	ln, err := n.Host("a").Listen()
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		errc <- err
	}()
	ln.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Accept after close: %v, want net.ErrClosed", err)
		}
	case <-time.After(testTimeout):
		t.Fatal("Accept did not return after Close")
	}
	// A restarted node rebinds the same address.
	ln2, err := n.Host("a").Listen()
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	ln2.Close()
}

func TestGenPlanDeterministic(t *testing.T) {
	addrs := []string{"n0", "n1", "n2", "n3", "n4"}
	a := GenPlan(7, addrs, 10*time.Second)
	b := GenPlan(7, addrs, 10*time.Second)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\nvs\n%s", a, b)
	}
	c := GenPlan(8, addrs, 10*time.Second)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical plans")
	}
	if a.HealAt() <= 0 || a.HealAt() >= a.Duration {
		t.Fatalf("HealAt=%v outside (0,%v)", a.HealAt(), a.Duration)
	}
	for _, ev := range a.Events {
		if ev.At > a.HealAt() {
			t.Fatalf("event %+v after the final heal — stabilization window not quiet", ev)
		}
	}
}

func TestLinkRateSerializesDelivery(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	n.SetLinkRate("a", "b", 1000) // 1 byte per millisecond
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	msg := make([]byte, 500)
	for i := range msg {
		msg[i] = 'x'
	}
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, errc := readAsync(s, 1000)
	// 500 bytes at 1000 B/s serialize for 500ms; nothing before that.
	clk.Advance(499 * time.Millisecond)
	select {
	case b := <-data:
		t.Fatalf("read %d bytes before serialization finished", len(b))
	case err := <-errc:
		t.Fatalf("read error %v before serialization finished", err)
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(1 * time.Millisecond)
	wantData(t, data, errc, string(msg))
}

func TestStopDrainFreezesReadsUntilResume(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	n.StopDrain("a", "b")
	if _, err := c.Write([]byte("stuck")); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, errc := readAsync(s, 16)
	clk.Advance(time.Second)
	select {
	case b := <-data:
		t.Fatalf("read %q through a frozen reader", b)
	case err := <-errc:
		t.Fatalf("read error %v through a frozen reader", err)
	case <-time.After(20 * time.Millisecond):
	}
	if q := n.QueuedBytes(); q != 5 {
		t.Fatalf("QueuedBytes = %d while frozen, want 5", q)
	}
	n.ResumeDrain("a", "b")
	wantData(t, data, errc, "stuck")
	if q := n.QueuedBytes(); q != 0 {
		t.Fatalf("QueuedBytes = %d after drain, want 0", q)
	}
}

func TestHealAllRestoresRateAndDrain(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	n.SetLinkRate("a", "b", 10) // glacial: 100ms per byte
	n.StopDrain("a", "b")
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	n.HealAll()
	data, errc := readAsync(s, 16)
	// Healed link: no rate shaping, no frozen reader. The bytes were
	// stamped before the heal, so allow their original serialization,
	// but a fresh write must fly.
	clk.Advance(300 * time.Millisecond)
	wantData(t, data, errc, "ok")
	if _, err := c.Write([]byte("fast")); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, errc = readAsync(s, 16)
	clk.Advance(time.Millisecond)
	wantData(t, data, errc, "fast")
}

func TestWriteDeadlineOnFullPipe(t *testing.T) {
	clk := NewClock()
	n := NewNet(clk, 1)
	n.BufCap = 8
	n.StopDrain("a", "b")
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	defer s.Close()

	// Fills the bounded buffer exactly; an empty pipe always admits a
	// write, however large.
	if _, err := c.Write([]byte("12345678")); err != nil {
		t.Fatalf("fill write: %v", err)
	}
	if err := c.SetWriteDeadline(clk.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatalf("set write deadline: %v", err)
	}
	wrote := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("overflow"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write into a full pipe returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(50 * time.Millisecond)
	select {
	case err := <-wrote:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("write error = %v, want timeout net.Error", err)
		}
	case <-time.After(testTimeout):
		t.Fatal("blocked write never observed its deadline")
	}
	// Unrelated: the reader side still sees the first chunk intact
	// after a resume.
	n.ResumeDrain("a", "b")
	data, errc := readAsync(s, 16)
	wantData(t, data, errc, "12345678")
}
