// Package netsim is an in-memory, virtual-time network for the
// real-network runtime. It provides the two seams internal/remote
// needs to run unmodified off the wall clock and off real sockets:
//
//   - Clock, a virtual implementation of vclock.Clock: timers and
//     tickers fire only when the harness calls Advance, so a soak that
//     spans minutes of heartbeat/retransmission/reconnect activity
//     replays in milliseconds of real time, identically per seed;
//   - Net, an in-memory transport whose Listen/Dial endpoints speak
//     net.Listener/net.Conn byte-stream semantics (partial reads,
//     FIFO per direction, deadlines against the virtual clock), with
//     per-directed-link latency/jitter, asymmetric partitions that
//     hold bytes in flight, connection resets, and byte-stream
//     truncation — the fault repertoire ChaosPlan scripts.
//
// Virtual-time semantics (DESIGN.md S19): Advance moves the clock from
// event to event. At each instant it fires every due timer, then
// yields the real scheduler briefly so the goroutines those timers
// woke can run before the clock moves again. This keeps simulated
// processing lag small but does not serialize the runtime's goroutines;
// the determinism the chaos suite asserts is therefore over the fault
// schedule and the stabilized outcome, never over per-message
// interleavings (see cluster.RunChaosSoak).
package netsim

import (
	"container/heap"
	"runtime"
	"sync"
	"time"

	"repro/internal/vclock"
)

// epoch is the fixed virtual time origin. It is a constant — never the
// wall clock — so every run of a seeded simulation sees identical
// timestamps.
var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// DefaultYield is the real-time pause Advance takes every
// yieldEvery-th fired instant, giving woken goroutines a chance to run
// before the clock moves on. Larger values tighten fidelity (less
// virtual processing lag) at the cost of real soak time.
const DefaultYield = 20 * time.Microsecond

// yieldEvery spaces the real-time pauses out: most instants settle
// with cheap scheduler yields alone (enough for woken goroutines to
// run on other cores), and every yieldEvery-th fired instant pays the
// full Yield sleep so lagging goroutines catch up. A simulated second
// holds thousands of instants, so sleeping at each one would dominate
// real soak time.
const yieldEvery = 64

// Clock is a virtual vclock.Clock. All methods are safe for concurrent
// use; Advance must be called from one goroutine at a time (a second
// concurrent Advance blocks until the first returns).
type Clock struct {
	// Yield is the per-instant real-time pause (DefaultYield if left
	// alone). Set it before the simulation starts, never during.
	Yield time.Duration

	runMu   sync.Mutex // serializes Advance callers
	settles uint64     // fired instants since the last full Yield (runMu held)

	mu  sync.Mutex
	now time.Time
	seq uint64
	evs eventHeap
}

// NewClock returns a virtual clock frozen at the fixed epoch.
func NewClock() *Clock {
	return &Clock{Yield: DefaultYield, now: epoch}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Elapsed returns how much virtual time has passed since the epoch.
func (c *Clock) Elapsed() time.Duration {
	return c.Now().Sub(epoch)
}

// AfterFunc schedules f to run when Advance reaches d from now. f runs
// on the Advance caller's goroutine with no clock locks held.
func (c *Clock) AfterFunc(d time.Duration, f func()) vclock.Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &vtimer{c: c, ev: c.scheduleLocked(c.now.Add(d), f)}
}

// NewTicker returns a ticker firing every d of virtual time. Like
// time.Ticker it drops ticks when the consumer lags.
func (c *Clock) NewTicker(d time.Duration) vclock.Ticker {
	if d <= 0 {
		panic("netsim: non-positive ticker period")
	}
	t := &vticker{c: c, d: d}
	//lint:ignore detpure the ticker channel is the one place virtual time crosses into goroutine-land; consumers select on it exactly like time.Ticker.C
	t.ch = make(chan time.Time, 1)
	c.mu.Lock()
	t.ev = c.scheduleLocked(c.now.Add(d), t.fire)
	c.mu.Unlock()
	return t
}

// scheduleLocked inserts one event (c.mu held).
func (c *Clock) scheduleLocked(when time.Time, fn func()) *event {
	c.seq++
	ev := &event{when: when, seq: c.seq, fn: fn}
	heap.Push(&c.evs, ev)
	return ev
}

// Advance moves virtual time forward by d, firing every timer that
// comes due, in time order (FIFO among same-instant timers). After each
// fired instant it briefly yields real time so woken goroutines can
// schedule their follow-on work before the clock moves again.
func (c *Clock) Advance(d time.Duration) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		c.dropStoppedLocked()
		if len(c.evs) == 0 || c.evs[0].when.After(target) {
			c.now = target
			c.mu.Unlock()
			break
		}
		// Move to the next instant and take everything due at it. Events
		// scheduled by the fired callbacks at (or before) this instant
		// are picked up by the next loop iteration.
		if c.evs[0].when.After(c.now) {
			c.now = c.evs[0].when
		}
		var due []*event
		for len(c.evs) > 0 && !c.evs[0].when.After(c.now) {
			ev := heap.Pop(&c.evs).(*event)
			if !ev.stopped {
				ev.fired = true
				due = append(due, ev)
			}
		}
		c.mu.Unlock()
		for _, ev := range due {
			//lint:ignore lockheld c.mu is released on the line above; runMu is held by design — Advance IS the timer executor, and serializing callbacks under it is the virtual-time contract (callbacks may re-enter the clock, which takes only c.mu)
			ev.fn()
		}
		c.settle()
		c.mu.Lock()
	}
	c.settle()
}

// dropStoppedLocked discards lazily-cancelled events at the heap head.
func (c *Clock) dropStoppedLocked() {
	for len(c.evs) > 0 && c.evs[0].stopped {
		heap.Pop(&c.evs)
	}
}

// settle yields the real scheduler so goroutines woken by the instant
// just fired get to run before virtual time moves again (runMu held).
func (c *Clock) settle() {
	for i := 0; i < 4; i++ {
		runtime.Gosched()
	}
	c.settles++
	if c.Yield > 0 && c.settles%yieldEvery == 0 {
		//lint:ignore detpure the real-time pause is the fidelity knob of virtual-time advancement (S19); it bounds simulated processing lag and carries no timing information into the simulation
		time.Sleep(c.Yield)
	}
}

// event is one scheduled callback.
type event struct {
	when    time.Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

// eventHeap orders events by (when, seq): time order, FIFO within an
// instant.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// vtimer implements vclock.Timer.
type vtimer struct {
	c  *Clock
	ev *event
}

func (t *vtimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.ev.fired || t.ev.stopped {
		return false
	}
	t.ev.stopped = true
	return true
}

// vticker implements vclock.Ticker by rescheduling itself after each
// fire.
type vticker struct {
	c  *Clock
	d  time.Duration
	ch chan time.Time

	// Guarded by c.mu.
	ev      *event
	stopped bool
}

func (t *vticker) C() <-chan time.Time { return t.ch }

func (t *vticker) Stop() {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	t.stopped = true
	if t.ev != nil {
		t.ev.stopped = true
	}
}

// fire delivers one tick (dropping it if the consumer lags, like
// time.Ticker) and re-arms.
func (t *vticker) fire() {
	now := t.c.Now()
	//lint:ignore detpure nonblocking tick delivery mirrors time.Ticker: a lagging consumer drops ticks instead of blocking virtual time
	select {
	//lint:ignore detpure nonblocking tick delivery mirrors time.Ticker (the send half of the drop-if-lagging select)
	case t.ch <- now:
	default:
	}
	t.c.mu.Lock()
	if !t.stopped {
		t.ev = t.c.scheduleLocked(t.c.now.Add(t.d), t.fire)
	}
	t.c.mu.Unlock()
}
