package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// ChaosKind enumerates the fault repertoire a ChaosPlan scripts. Link
// events are executed by Net; node events (crash/restart) are executed
// by the harness that owns the nodes (cluster.RunChaosSoak).
type ChaosKind int

const (
	// ChaosSetLink sets latency/jitter on the link A–B.
	ChaosSetLink ChaosKind = iota + 1
	// ChaosPartition blackholes A–B (both directions).
	ChaosPartition
	// ChaosPartitionDir blackholes only A→B (asymmetric).
	ChaosPartitionDir
	// ChaosReset kills every live connection between A and B.
	ChaosReset
	// ChaosTruncate drops DropTail queued bytes from A–B streams.
	ChaosTruncate
	// ChaosCrash stops node A (listener down, connections die,
	// heartbeats cease).
	ChaosCrash
	// ChaosRestart boots a fresh node at A's address with a new
	// incarnation and fresh dining state.
	ChaosRestart
	// ChaosSlowLink throttles delivery on A–B to Rate bytes/sec (a slow
	// reader / thin pipe); restored by the final heal-all.
	ChaosSlowLink
	// ChaosStopDrain freezes the consuming ends of every A–B stream:
	// the applications stop reading, bytes pile into the bounded pipe
	// buffers, and writers eventually block against their deadlines.
	ChaosStopDrain
	// ChaosResumeDrain undoes ChaosStopDrain for A–B.
	ChaosResumeDrain
	// ChaosHealAll reopens every partitioned link, restores full rate,
	// and resumes draining. The generator always emits it exactly once,
	// after every other event: everything after it is the stabilization
	// window the paper's eventual guarantees quantify over.
	ChaosHealAll
	// ChaosHealLink reopens just the link A–B (both directions),
	// releasing its held bytes. The selective counterpart of
	// ChaosHealAll: a partition can end mid-run without declaring the
	// whole network whole, which is what makes sim's timed partitions
	// (Partition.End before the final heal) expressible on this
	// backend.
	ChaosHealLink
)

func (k ChaosKind) String() string {
	switch k {
	case ChaosSetLink:
		return "setlink"
	case ChaosPartition:
		return "partition"
	case ChaosPartitionDir:
		return "partition-dir"
	case ChaosReset:
		return "reset"
	case ChaosTruncate:
		return "truncate"
	case ChaosCrash:
		return "crash"
	case ChaosRestart:
		return "restart"
	case ChaosSlowLink:
		return "slow-link"
	case ChaosStopDrain:
		return "stop-drain"
	case ChaosResumeDrain:
		return "resume-drain"
	case ChaosHealAll:
		return "heal-all"
	case ChaosHealLink:
		return "heal-link"
	default:
		return fmt.Sprintf("chaoskind(%d)", int(k))
	}
}

// ChaosEvent is one scripted fault at a virtual-time offset from the
// start of the run.
type ChaosEvent struct {
	At   time.Duration
	Kind ChaosKind

	// A, B name endpoints for link events; A names the node for
	// crash/restart.
	A, B string

	// Latency/Jitter apply to ChaosSetLink.
	Latency, Jitter time.Duration
	// DropTail applies to ChaosTruncate.
	DropTail int
	// Rate (bytes/sec) applies to ChaosSlowLink.
	Rate int64
}

// ChaosPlan is a deterministic fault schedule: events in time order,
// then a quiet stabilization tail until Duration. Its String rendering
// is the seed-derived half of a soak's event trace.
type ChaosPlan struct {
	Seed     int64
	Events   []ChaosEvent
	Duration time.Duration
}

// HealAt returns the time of the final ChaosHealAll event — the start
// of the stabilization window.
func (pl ChaosPlan) HealAt() time.Duration {
	at := time.Duration(0)
	for _, ev := range pl.Events {
		if ev.Kind == ChaosHealAll && ev.At > at {
			at = ev.At
		}
	}
	return at
}

// String renders the plan one event per line, deterministically.
func (pl ChaosPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan seed=%d duration=%v events=%d\n", pl.Seed, pl.Duration, len(pl.Events))
	for _, ev := range pl.Events {
		fmt.Fprintf(&b, "  +%-8v %s", ev.At, ev.Kind)
		switch ev.Kind {
		case ChaosSetLink:
			fmt.Fprintf(&b, " %s<->%s latency=%v jitter=%v", ev.A, ev.B, ev.Latency, ev.Jitter)
		case ChaosPartition:
			fmt.Fprintf(&b, " %s<->%s", ev.A, ev.B)
		case ChaosPartitionDir:
			fmt.Fprintf(&b, " %s->%s", ev.A, ev.B)
		case ChaosReset, ChaosTruncate:
			fmt.Fprintf(&b, " %s<->%s", ev.A, ev.B)
			if ev.Kind == ChaosTruncate {
				fmt.Fprintf(&b, " drop=%dB", ev.DropTail)
			}
		case ChaosCrash, ChaosRestart:
			fmt.Fprintf(&b, " %s", ev.A)
		case ChaosSlowLink:
			fmt.Fprintf(&b, " %s<->%s rate=%dB/s", ev.A, ev.B, ev.Rate)
		case ChaosStopDrain, ChaosResumeDrain, ChaosHealLink:
			fmt.Fprintf(&b, " %s<->%s", ev.A, ev.B)
		case ChaosHealAll:
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GenPlan derives a fault schedule from a seed, over the given
// endpoint addresses. The schedule is built so the paper's guarantees
// are checkable afterwards:
//
//   - faults land in the first ~55% of the run (the chaos window);
//   - every crashed node restarts inside the chaos window, so by the
//     end all processes are live;
//   - at most one node is down at a time (survivor progress is then
//     asserted for every other node's processes);
//   - a single final ChaosHealAll closes the chaos window, after which
//     the plan is quiet: the remaining ~45% is the stabilization
//     window where ◇WX/◇2-BW must hold.
//
// Same seed, addrs, and duration always yield the identical plan.
func GenPlan(seed int64, addrs []string, duration time.Duration) ChaosPlan {
	rng := rand.New(rand.NewSource(seed))
	window := duration * 55 / 100
	pl := ChaosPlan{Seed: seed, Duration: duration}

	// Base latency profile: every pair gets a small latency with
	// jitter, fixed for the run at t=0.
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			pl.Events = append(pl.Events, ChaosEvent{
				At: 0, Kind: ChaosSetLink, A: addrs[i], B: addrs[j],
				Latency: time.Duration(rng.Int63n(int64(2 * time.Millisecond))),
				Jitter:  time.Duration(rng.Int63n(int64(1 * time.Millisecond))),
			})
		}
	}

	pair := func() (string, string) {
		i := rng.Intn(len(addrs))
		j := rng.Intn(len(addrs) - 1)
		if j >= i {
			j++
		}
		return addrs[i], addrs[j]
	}
	at := func() time.Duration { return time.Duration(rng.Int63n(int64(window))) }

	// One crash/restart episode in most plans: crash a random node,
	// restart it while still inside the chaos window.
	if len(addrs) >= 3 && rng.Intn(4) > 0 {
		crashAt := time.Duration(rng.Int63n(int64(window / 2)))
		restartAt := crashAt + time.Duration(rng.Int63n(int64(window/3))) + window/10
		victim := addrs[rng.Intn(len(addrs))]
		pl.Events = append(pl.Events,
			ChaosEvent{At: crashAt, Kind: ChaosCrash, A: victim},
			ChaosEvent{At: restartAt, Kind: ChaosRestart, A: victim},
		)
	}

	// Link chaos: partitions (healed by the final heal-all), resets,
	// truncations, latency shifts.
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		a, b := pair()
		ev := ChaosEvent{At: at(), A: a, B: b}
		switch rng.Intn(6) {
		case 0:
			ev.Kind = ChaosPartition
		case 1:
			ev.Kind = ChaosPartitionDir
		case 2, 3:
			ev.Kind = ChaosReset
		case 4:
			ev.Kind = ChaosTruncate
			ev.DropTail = 1 + rng.Intn(64)
		case 5:
			ev.Kind = ChaosSetLink
			ev.Latency = time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
			ev.Jitter = time.Duration(rng.Int63n(int64(2 * time.Millisecond)))
		}
		pl.Events = append(pl.Events, ev)
	}

	// Overload episodes, drawn after the link-chaos block so earlier
	// per-seed schedules are a stable prefix of the rng stream.
	//
	// Slow-reader: one link crawls at a few KiB/s until the heal-all
	// restores full rate — sustained traffic must back up without
	// unbounded queue growth.
	if rng.Intn(2) == 0 {
		a, b := pair()
		pl.Events = append(pl.Events, ChaosEvent{
			At: at(), Kind: ChaosSlowLink, A: a, B: b,
			Rate: 2048 + rng.Int63n(14336),
		})
	}
	// Stop-drain: one link's consumers freeze for a stretch, then
	// resume inside the chaos window (the heal-all is the backstop).
	if rng.Intn(2) == 0 {
		a, b := pair()
		start := time.Duration(rng.Int63n(int64(window / 2)))
		stop := start + time.Duration(rng.Int63n(int64(window/4))) + window/20
		pl.Events = append(pl.Events,
			ChaosEvent{At: start, Kind: ChaosStopDrain, A: a, B: b},
			ChaosEvent{At: stop, Kind: ChaosResumeDrain, A: a, B: b},
		)
	}

	pl.Events = append(pl.Events, ChaosEvent{At: window, Kind: ChaosHealAll})
	sort.SliceStable(pl.Events, func(i, j int) bool { return pl.Events[i].At < pl.Events[j].At })
	return pl
}
