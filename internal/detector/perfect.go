package detector

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

// Perfect is a crash-omniscient oracle: watcher suspects target exactly
// Latency ticks after target crashes, permanently, and never suspects
// live processes. With Latency 0 it is the perfect detector P; with
// positive latency it is still perpetually accurate, so it provides an
// upper baseline for what any ◇P₁ implementation can achieve.
//
// Perfect must be informed of crashes via ObserveCrash (the experiment
// runner injects crashes through one place, so this is natural).
type Perfect struct {
	k         *sim.Kernel
	g         *graph.Graph
	latency   sim.Time
	suspected []bool // suspected[target]: all live neighbors suspect target
	listeners []func()
}

// NewPerfect creates a Perfect oracle over conflict graph g, scheduling
// its (optional) detection latency on kernel k.
func NewPerfect(k *sim.Kernel, g *graph.Graph, latency sim.Time) *Perfect {
	return &Perfect{
		k:         k,
		g:         g,
		latency:   latency,
		suspected: make([]bool, g.N()),
		listeners: make([]func(), g.N()),
	}
}

// Suspects implements Detector.
func (p *Perfect) Suspects(watcher, target int) bool {
	if watcher < 0 || watcher >= p.g.N() || target < 0 || target >= p.g.N() {
		return false
	}
	return p.suspected[target] && p.g.HasEdge(watcher, target)
}

// SetListener implements Notifier.
func (p *Perfect) SetListener(watcher int, fn func()) {
	if watcher >= 0 && watcher < len(p.listeners) {
		p.listeners[watcher] = fn
	}
}

// ObserveCrash implements CrashAware: after the configured latency, all
// neighbors of target begin suspecting it permanently.
func (p *Perfect) ObserveCrash(target int) {
	if target < 0 || target >= p.g.N() || p.suspected[target] {
		return
	}
	p.k.After(p.latency, func() {
		if p.suspected[target] {
			return
		}
		p.suspected[target] = true
		for _, w := range p.g.Neighbors(target) {
			if fn := p.listeners[w]; fn != nil {
				fn()
			}
		}
	})
}

var (
	_ Detector   = (*Perfect)(nil)
	_ Notifier   = (*Perfect)(nil)
	_ CrashAware = (*Perfect)(nil)
)
