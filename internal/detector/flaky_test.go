package detector

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestFlakyMakesMistakesThenConverges(t *testing.T) {
	k := sim.NewKernel(3)
	g := graph.Ring(6)
	f := NewFlaky(k, g, FlakyConfig{ConvergeAt: 500, Rate: 0.5, CheckEvery: 5, MaxHold: 40})
	f.Start()
	k.Run(5000)
	if f.Mistakes() == 0 {
		t.Fatal("rate 0.5 for 100 checks should produce mistakes")
	}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if f.Suspects(w, v) {
				t.Fatalf("%d still suspects live %d after convergence", w, v)
			}
		}
	}
}

func TestFlakyCompleteness(t *testing.T) {
	k := sim.NewKernel(1)
	g := graph.Ring(5)
	f := NewFlaky(k, g, FlakyConfig{ConvergeAt: 100, Rate: 0.2, CrashLatency: 10})
	f.Start()
	k.At(50, func() { f.ObserveCrash(2) })
	k.Run(2000)
	for _, w := range g.Neighbors(2) {
		if !f.Suspects(w, 2) {
			t.Fatalf("neighbor %d does not suspect crashed 2", w)
		}
	}
	// Permanent: the hold-expiry of any wrongful suspicion of 2 placed
	// before the crash must not clear the crash suspicion.
	k.Run(5000)
	for _, w := range g.Neighbors(2) {
		if !f.Suspects(w, 2) {
			t.Fatal("crash suspicion was dropped")
		}
	}
}

func TestFlakyListeners(t *testing.T) {
	k := sim.NewKernel(7)
	g := graph.Path(2)
	f := NewFlaky(k, g, FlakyConfig{ConvergeAt: 1000, Rate: 1.0, CheckEvery: 5, MaxHold: 10})
	f.Start()
	changes := 0
	f.SetListener(0, func() { changes++ })
	k.Run(3000)
	if changes == 0 {
		t.Fatal("listener never notified at rate 1.0")
	}
	if changes%2 != 0 {
		t.Fatalf("changes = %d; every crash-free mistake must clear", changes)
	}
}

func TestFlakyBoundsAndDefaults(t *testing.T) {
	k := sim.NewKernel(1)
	f := NewFlaky(k, graph.Path(2), FlakyConfig{})
	if f.cfg.CheckEvery != 10 || f.cfg.MaxHold != 50 {
		t.Fatalf("defaults not applied: %+v", f.cfg)
	}
	if f.Suspects(-1, 0) || f.Suspects(0, 7) {
		t.Fatal("out-of-range queries must be false")
	}
	f.SetListener(-1, nil) // no panic
	f.ObserveCrash(99)     // no panic
	f.Start()
	f.Start() // idempotent
}
