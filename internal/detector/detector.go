// Package detector implements the locally scope-restricted eventually
// perfect failure detector ◇P₁ used by the paper, together with the
// degenerate oracles needed by baselines and ablations.
//
// ◇P₁ satisfies, with respect to immediate neighbors in the conflict
// graph:
//
//   - Local Strong Completeness: every crashed process is eventually
//     and permanently suspected by all correct neighbors.
//   - Local Eventual Strong Accuracy: for every run there is a time
//     after which no correct process is suspected by any correct
//     neighbor.
//
// The package provides a heartbeat implementation with adaptive
// timeouts (the standard Chandra–Toueg construction under partial
// synchrony), a scripted oracle for deterministic false-positive
// schedules in tests, a crash-omniscient "perfect" oracle, and a
// never-suspecting oracle that models running with no detector at all.
package detector

// Detector is the oracle interface queried by dining processes.
// Suspects reports whether watcher's local module currently suspects
// target. Implementations must be cheap to query; diners consult the
// oracle inside guard evaluation.
type Detector interface {
	Suspects(watcher, target int) bool
}

// Notifier is implemented by detectors whose output changes over time.
// The runner registers a listener per process; the detector must invoke
// it whenever that process's local suspect set changes, so guarded
// actions that depend on suspicion are re-evaluated.
type Notifier interface {
	SetListener(watcher int, fn func())
}

// CrashAware is implemented by detectors that must be told about crash
// injections (those that do not observe an underlying network of their
// own).
type CrashAware interface {
	ObserveCrash(target int)
}

// Never is the empty oracle: it suspects no one, ever. Running
// Algorithm 1 with Never recovers the original Choy–Singh asynchronous
// doorway behavior, where a crash blocks neighbors forever.
type Never struct{}

// Suspects implements Detector; it is always false.
func (Never) Suspects(int, int) bool { return false }

// Always is the paranoid oracle: it suspects everyone. It violates
// eventual accuracy and exists to exercise worst-case mistake paths in
// tests (with Always, dining degenerates to no synchronization at all).
type Always struct{}

// Suspects implements Detector; it is always true.
func (Always) Suspects(int, int) bool { return true }

var (
	_ Detector = Never{}
	_ Detector = Always{}
)
