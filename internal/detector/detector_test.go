package detector

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestNeverAndAlways(t *testing.T) {
	if (Never{}).Suspects(0, 1) {
		t.Fatal("Never suspected someone")
	}
	if !(Always{}).Suspects(3, 7) {
		t.Fatal("Always failed to suspect")
	}
}

func TestPerfectDetectsCrashAfterLatency(t *testing.T) {
	k := sim.NewKernel(1)
	g := graph.Ring(4)
	p := NewPerfect(k, g, 10)
	changes := 0
	p.SetListener(1, func() { changes++ })

	if p.Suspects(1, 0) {
		t.Fatal("suspected live process")
	}
	k.At(5, func() { p.ObserveCrash(0) })
	k.Run(14)
	if p.Suspects(1, 0) {
		t.Fatal("suspected before latency elapsed")
	}
	k.Run(15)
	if !p.Suspects(1, 0) {
		t.Fatal("did not suspect crashed neighbor after latency")
	}
	if !p.Suspects(3, 0) {
		t.Fatal("other neighbor should also suspect")
	}
	if p.Suspects(2, 0) {
		t.Fatal("non-neighbor should not suspect (◇P₁ is local)")
	}
	if changes != 1 {
		t.Fatalf("listener fired %d times, want 1", changes)
	}
}

func TestPerfectDoubleCrashNoop(t *testing.T) {
	k := sim.NewKernel(1)
	g := graph.Ring(3)
	p := NewPerfect(k, g, 0)
	fired := 0
	p.SetListener(1, func() { fired++ })
	p.ObserveCrash(0)
	p.ObserveCrash(0)
	k.Run(10)
	if fired != 1 {
		t.Fatalf("listener fired %d times for one crash, want 1", fired)
	}
}

func TestPerfectOutOfRange(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPerfect(k, graph.Ring(3), 0)
	if p.Suspects(-1, 0) || p.Suspects(0, 9) {
		t.Fatal("out-of-range queries must be false")
	}
	p.ObserveCrash(-5) // must not panic
	p.SetListener(99, func() {})
	k.Run(10)
}

func TestScriptedMistakeWindow(t *testing.T) {
	k := sim.NewKernel(1)
	g := graph.Path(3)
	s := NewScripted(k, g, 0)
	s.AddMistake(0, 1, 10, 30)
	s.Start()

	k.Run(9)
	if s.Suspects(0, 1) {
		t.Fatal("suspected before window")
	}
	k.Run(10)
	if !s.Suspects(0, 1) {
		t.Fatal("not suspected inside window")
	}
	k.Run(29)
	if !s.Suspects(0, 1) {
		t.Fatal("suspicion dropped early")
	}
	k.Run(30)
	if s.Suspects(0, 1) {
		t.Fatal("suspicion persisted past window")
	}
}

func TestScriptedListenerFiresOnChanges(t *testing.T) {
	k := sim.NewKernel(1)
	g := graph.Path(2)
	s := NewScripted(k, g, 0)
	s.AddMistake(0, 1, 5, 6)
	// Redundant event must not fire the listener again.
	s.Add(SuspicionEvent{At: 5, Watcher: 0, Target: 1, Suspect: true})
	s.Start()
	fired := 0
	s.SetListener(0, func() { fired++ })
	k.Run(100)
	if fired != 2 {
		t.Fatalf("listener fired %d times, want 2 (suspect + unsuspect)", fired)
	}
}

func TestScriptedCompletenessOverridesScript(t *testing.T) {
	k := sim.NewKernel(1)
	g := graph.Path(2)
	s := NewScripted(k, g, 5)
	// Script tries to unsuspect after the crash; completeness must win.
	s.Add(SuspicionEvent{At: 50, Watcher: 0, Target: 1, Suspect: false})
	s.Start()
	k.At(10, func() { s.ObserveCrash(1) })
	k.Run(200)
	if !s.Suspects(0, 1) {
		t.Fatal("crashed process must stay suspected (strong completeness)")
	}
}

func TestScriptedStartIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewScripted(k, graph.Path(2), 0)
	s.AddMistake(0, 1, 1, 2)
	s.Start()
	s.Start()
	fired := 0
	s.SetListener(0, func() { fired++ })
	k.Run(10)
	if fired != 2 {
		t.Fatalf("double Start duplicated events: fired = %d, want 2", fired)
	}
}

func newHB(seed int64, g *graph.Graph, pre sim.Time, gst sim.Time) (*sim.Kernel, *Heartbeat) {
	k := sim.NewKernel(seed)
	delays := sim.GSTDelay{
		GST:  gst,
		Pre:  sim.UniformDelay{Min: 0, Max: pre},
		Post: sim.FixedDelay{D: 1},
	}
	hb := NewHeartbeat(k, g, delays, HeartbeatConfig{Period: 5, InitialTimeout: 12, Increment: 8})
	hb.Start()
	return k, hb
}

func TestHeartbeatCompleteness(t *testing.T) {
	g := graph.Ring(5)
	k, hb := newHB(1, g, 0, 0)
	k.At(100, func() { hb.ObserveCrash(2) })
	k.Run(500)
	for _, w := range g.Neighbors(2) {
		if !hb.Suspects(w, 2) {
			t.Fatalf("neighbor %d does not suspect crashed process 2", w)
		}
	}
	// Suspicions must be permanent.
	k.Run(1000)
	for _, w := range g.Neighbors(2) {
		if !hb.Suspects(w, 2) {
			t.Fatal("suspicion of crashed process was dropped")
		}
	}
	if hb.FalsePositives() != 0 {
		t.Fatalf("synchronous run produced %d false positives", hb.FalsePositives())
	}
}

func TestHeartbeatAccuracyAfterGST(t *testing.T) {
	g := graph.Ring(6)
	// Hostile pre-GST delays force mistakes; after GST they must stop.
	k, hb := newHB(7, g, 60, 400)
	k.Run(5000)
	began, cleared := hb.LastMistake()
	if hb.FalsePositives() == 0 {
		t.Log("note: no false positives even pre-GST (acceptable but weak run)")
	}
	// No wrongful suspicion may begin long after GST: allow the detector
	// one adaptation window past GST.
	slack := sim.Time(1000)
	if began > 400+slack {
		t.Fatalf("wrongful suspicion at %d, far beyond GST+slack", began)
	}
	if cleared > 400+slack {
		t.Fatalf("wrongful suspicion cleared at %d, far beyond GST+slack", cleared)
	}
	// At the end of the run no live process is suspected by any live
	// neighbor (eventual strong accuracy reached).
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if hb.Suspects(w, v) {
				t.Fatalf("%d still suspects live %d at end of run", w, v)
			}
		}
	}
}

func TestHeartbeatMistakesThenRecovery(t *testing.T) {
	g := graph.Path(2)
	// Deterministically hostile: pre-GST delays far exceed the initial
	// timeout, so mistakes are guaranteed; then delays become fast.
	k := sim.NewKernel(3)
	delays := sim.GSTDelay{
		GST:  300,
		Pre:  sim.FixedDelay{D: 40},
		Post: sim.FixedDelay{D: 1},
	}
	hb := NewHeartbeat(k, g, delays, HeartbeatConfig{Period: 5, InitialTimeout: 10, Increment: 10})
	hb.Start()
	k.Run(2000)
	if hb.FalsePositives() == 0 {
		t.Fatal("expected forced false positives before GST")
	}
	if hb.Suspects(0, 1) || hb.Suspects(1, 0) {
		t.Fatal("suspicion should have cleared after GST")
	}
}

func TestHeartbeatTrafficIsCounted(t *testing.T) {
	g := graph.Ring(4)
	k, hb := newHB(1, g, 0, 0)
	k.Run(100)
	if hb.MessagesSent() == 0 {
		t.Fatal("no heartbeat traffic recorded")
	}
}

func TestHeartbeatListenerNotifications(t *testing.T) {
	g := graph.Path(2)
	k := sim.NewKernel(3)
	delays := sim.GSTDelay{GST: 100, Pre: sim.FixedDelay{D: 50}, Post: sim.FixedDelay{D: 1}}
	hb := NewHeartbeat(k, g, delays, HeartbeatConfig{Period: 5, InitialTimeout: 10, Increment: 20})
	hb.Start()
	changes := 0
	hb.SetListener(0, func() { changes++ })
	k.Run(1000)
	if changes == 0 {
		t.Fatal("listener never notified despite forced suspicion churn")
	}
	if changes%2 != 0 {
		t.Fatalf("suspicion changes = %d; every pre-GST mistake must clear (even count)", changes)
	}
}

func TestHeartbeatConfigDefaultsApplied(t *testing.T) {
	k := sim.NewKernel(1)
	hb := NewHeartbeat(k, graph.Path(2), nil, HeartbeatConfig{})
	if hb.cfg.Period <= 0 || hb.cfg.InitialTimeout <= 0 || hb.cfg.Increment <= 0 {
		t.Fatalf("zero config not defaulted: %+v", hb.cfg)
	}
}

func TestHeartbeatOutOfRangeQueries(t *testing.T) {
	k := sim.NewKernel(1)
	hb := NewHeartbeat(k, graph.Path(2), nil, HeartbeatConfig{})
	if hb.Suspects(-1, 0) || hb.Suspects(0, 5) {
		t.Fatal("out-of-range queries must be false")
	}
	hb.SetListener(-3, func() {}) // must not panic
}

// Property: for any crash time and any seed, the heartbeat detector
// satisfies local strong completeness by the end of a long run, and
// never suspects live neighbors at the end (eventual accuracy),
// provided the run extends well beyond GST.
func TestQuickHeartbeatConvergence(t *testing.T) {
	f := func(seed int64, crashRaw, victimRaw uint8) bool {
		g := graph.Ring(5)
		k := sim.NewKernel(seed)
		gst := sim.Time(200)
		delays := sim.GSTDelay{
			GST:  gst,
			Pre:  sim.UniformDelay{Min: 0, Max: 40},
			Post: sim.FixedDelay{D: 1},
		}
		hb := NewHeartbeat(k, g, delays, HeartbeatConfig{Period: 5, InitialTimeout: 12, Increment: 10})
		hb.Start()
		victim := int(victimRaw) % g.N()
		crashAt := sim.Time(crashRaw)
		k.At(crashAt, func() { hb.ObserveCrash(victim) })
		k.Run(5000)
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(v) {
				if w == victim {
					continue // crashed watcher's output is irrelevant
				}
				if v == victim && !hb.Suspects(w, v) {
					return false // completeness violated
				}
				if v != victim && hb.Suspects(w, v) {
					return false // accuracy violated at end of run
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
