package detector

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/sim"
)

// SuspicionEvent is one scripted change of a local suspect set:
// at time At, Watcher begins (Suspect=true) or stops (Suspect=false)
// suspecting Target.
type SuspicionEvent struct {
	At      sim.Time
	Watcher int
	Target  int
	Suspect bool
}

// Scripted is a deterministic ◇P₁ oracle driven by an explicit schedule
// of suspicion events plus crash notifications. It is the workhorse for
// testing the dining algorithm's behavior under controlled
// false-positive mistakes: a test can force watcher w to wrongfully
// suspect live neighbor t during [a, b) and verify the algorithm's
// safety violations are confined to that window.
//
// Completeness is handled automatically: ObserveCrash makes every
// neighbor suspect the crashed process permanently after Latency ticks,
// overriding any scripted unsuspicion.
type Scripted struct {
	k         *sim.Kernel
	g         *graph.Graph
	latency   sim.Time
	crashed   []bool
	suspects  [][]bool // suspects[watcher][target]
	listeners []func()
	started   bool
	script    []SuspicionEvent
}

// NewScripted creates a scripted oracle over conflict graph g. The
// schedule is installed by Add and armed by Start.
func NewScripted(k *sim.Kernel, g *graph.Graph, crashLatency sim.Time) *Scripted {
	n := g.N()
	s := &Scripted{
		k:         k,
		g:         g,
		latency:   crashLatency,
		crashed:   make([]bool, n),
		suspects:  make([][]bool, n),
		listeners: make([]func(), n),
	}
	for i := range s.suspects {
		s.suspects[i] = make([]bool, n)
	}
	return s
}

// Add appends events to the script. It must be called before Start.
func (s *Scripted) Add(events ...SuspicionEvent) {
	s.script = append(s.script, events...)
}

// AddMistake schedules watcher to wrongfully suspect target during
// [from, to) — a convenience for the common test shape.
func (s *Scripted) AddMistake(watcher, target int, from, to sim.Time) {
	s.Add(
		SuspicionEvent{At: from, Watcher: watcher, Target: target, Suspect: true},
		SuspicionEvent{At: to, Watcher: watcher, Target: target, Suspect: false},
	)
}

// Start schedules every scripted event on the kernel. Calling Start
// twice is an error-free no-op.
func (s *Scripted) Start() {
	if s.started {
		return
	}
	s.started = true
	script := make([]SuspicionEvent, len(s.script))
	copy(script, s.script)
	sort.SliceStable(script, func(i, j int) bool { return script[i].At < script[j].At })
	for _, ev := range script {
		ev := ev
		s.k.At(ev.At, func() { s.apply(ev) })
	}
}

func (s *Scripted) apply(ev SuspicionEvent) {
	w, t := ev.Watcher, ev.Target
	if w < 0 || w >= s.g.N() || t < 0 || t >= s.g.N() {
		return
	}
	// Completeness overrides scripted unsuspicion of crashed processes.
	if s.crashed[t] && !ev.Suspect {
		return
	}
	if s.suspects[w][t] == ev.Suspect {
		return
	}
	s.suspects[w][t] = ev.Suspect
	if fn := s.listeners[w]; fn != nil {
		fn()
	}
}

// Suspects implements Detector.
func (s *Scripted) Suspects(watcher, target int) bool {
	if watcher < 0 || watcher >= s.g.N() || target < 0 || target >= s.g.N() {
		return false
	}
	return s.suspects[watcher][target]
}

// SetListener implements Notifier.
func (s *Scripted) SetListener(watcher int, fn func()) {
	if watcher >= 0 && watcher < len(s.listeners) {
		s.listeners[watcher] = fn
	}
}

// ObserveCrash implements CrashAware: after the crash latency every
// neighbor permanently suspects the crashed process.
func (s *Scripted) ObserveCrash(target int) {
	if target < 0 || target >= s.g.N() || s.crashed[target] {
		return
	}
	s.crashed[target] = true
	s.k.After(s.latency, func() {
		for _, w := range s.g.Neighbors(target) {
			if !s.suspects[w][target] {
				s.suspects[w][target] = true
				if fn := s.listeners[w]; fn != nil {
					fn()
				}
			}
		}
	})
}

var (
	_ Detector   = (*Scripted)(nil)
	_ Notifier   = (*Scripted)(nil)
	_ CrashAware = (*Scripted)(nil)
)
