package detector

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

// FlakyConfig parameterizes the Flaky oracle.
type FlakyConfig struct {
	// ConvergeAt is the time after which no new wrongful suspicion
	// starts (existing ones clear by ConvergeAt + MaxHold).
	ConvergeAt sim.Time
	// Rate is the per-check probability that a watcher begins
	// wrongfully suspecting a random live neighbor.
	Rate float64
	// CheckEvery is the cadence of suspicion churn (default 10).
	CheckEvery sim.Time
	// MaxHold bounds how long a wrongful suspicion lasts (default 50).
	MaxHold sim.Time
	// CrashLatency delays permanent suspicion of crashed processes.
	CrashLatency sim.Time
}

// Flaky is a randomized ◇P₁: it wrongfully suspects live neighbors at a
// configurable rate until a convergence time, then behaves perfectly.
// Unlike Scripted (exact schedules) and Heartbeat (mechanistic
// mistakes), Flaky drives property tests across the whole space of
// mistake patterns from a single seed.
type Flaky struct {
	k         *sim.Kernel
	g         *graph.Graph
	cfg       FlakyConfig
	crashed   []bool
	suspects  [][]bool
	listeners []func()
	started   bool
	mistakes  int
}

// NewFlaky creates a flaky oracle over conflict graph g.
func NewFlaky(k *sim.Kernel, g *graph.Graph, cfg FlakyConfig) *Flaky {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 10
	}
	if cfg.MaxHold <= 0 {
		cfg.MaxHold = 50
	}
	n := g.N()
	f := &Flaky{
		k:         k,
		g:         g,
		cfg:       cfg,
		crashed:   make([]bool, n),
		suspects:  make([][]bool, n),
		listeners: make([]func(), n),
	}
	for i := range f.suspects {
		f.suspects[i] = make([]bool, n)
	}
	return f
}

// Start begins the suspicion churn. Extra calls are no-ops.
func (f *Flaky) Start() {
	if f.started {
		return
	}
	f.started = true
	f.k.Ticker(f.cfg.CheckEvery, func() bool { return f.k.Now() > f.cfg.ConvergeAt }, f.churn)
}

func (f *Flaky) churn() {
	rng := f.k.Rand()
	for w := 0; w < f.g.N(); w++ {
		if f.crashed[w] || rng.Float64() >= f.cfg.Rate {
			continue
		}
		nbrs := f.g.Neighbors(w)
		if len(nbrs) == 0 {
			continue
		}
		t := nbrs[rng.Intn(len(nbrs))]
		if f.crashed[t] || f.suspects[w][t] {
			continue
		}
		f.set(w, t, true)
		f.mistakes++
		hold := 1 + sim.Time(rng.Int63n(int64(f.cfg.MaxHold)))
		w, t := w, t
		f.k.After(hold, func() {
			if !f.crashed[t] {
				f.set(w, t, false)
			}
		})
	}
}

func (f *Flaky) set(w, t int, v bool) {
	if f.suspects[w][t] == v {
		return
	}
	f.suspects[w][t] = v
	if fn := f.listeners[w]; fn != nil {
		fn()
	}
}

// Suspects implements Detector.
func (f *Flaky) Suspects(watcher, target int) bool {
	if watcher < 0 || watcher >= f.g.N() || target < 0 || target >= f.g.N() {
		return false
	}
	return f.suspects[watcher][target]
}

// SetListener implements Notifier.
func (f *Flaky) SetListener(watcher int, fn func()) {
	if watcher >= 0 && watcher < len(f.listeners) {
		f.listeners[watcher] = fn
	}
}

// ObserveCrash implements CrashAware.
func (f *Flaky) ObserveCrash(target int) {
	if target < 0 || target >= f.g.N() || f.crashed[target] {
		return
	}
	f.crashed[target] = true
	f.k.After(f.cfg.CrashLatency, func() {
		for _, w := range f.g.Neighbors(target) {
			f.set(w, target, true)
		}
	})
}

// Mistakes returns how many wrongful suspicions were injected.
func (f *Flaky) Mistakes() int { return f.mistakes }

var (
	_ Detector   = (*Flaky)(nil)
	_ Notifier   = (*Flaky)(nil)
	_ CrashAware = (*Flaky)(nil)
)
