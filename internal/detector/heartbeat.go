package detector

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

// heartbeatMsg is the payload exchanged by the heartbeat detector. It
// carries no data; identity comes from the channel.
type heartbeatMsg struct{}

// HeartbeatConfig parameterizes the heartbeat ◇P₁ implementation.
type HeartbeatConfig struct {
	// Period between heartbeats sent to each neighbor.
	Period sim.Time
	// InitialTimeout is the starting patience for each watched
	// neighbor: a process is suspected if no heartbeat arrives for this
	// long.
	InitialTimeout sim.Time
	// Increment is added to the per-neighbor timeout each time a
	// suspicion proves wrong (a heartbeat arrives from a suspected
	// process). This adaptation is what yields eventual strong accuracy
	// once message delays stabilize.
	Increment sim.Time
}

// DefaultHeartbeatConfig returns conservative parameters suitable for
// post-GST delays up to roughly Period.
func DefaultHeartbeatConfig() HeartbeatConfig {
	return HeartbeatConfig{Period: 5, InitialTimeout: 12, Increment: 8}
}

type watchState struct {
	lastHeard sim.Time
	timeout   sim.Time
	suspected bool
	everHeard bool
}

// Heartbeat is the standard heartbeat/adaptive-timeout implementation
// of ◇P₁ over a partially synchronous network: every live process
// periodically heartbeats its conflict-graph neighbors; a watcher
// suspects a neighbor whose heartbeat is overdue, and on learning of a
// false suspicion it both unsuspects and permanently increases its
// patience for that neighbor.
//
//   - Local strong completeness holds because crashed processes stop
//     heartbeating, so every correct neighbor's deadline eventually
//     fires and no later heartbeat ever clears the suspicion.
//   - Local eventual strong accuracy holds under partial synchrony:
//     after GST, inter-arrival of heartbeats is bounded by
//     Period + Δ, and each mistake grows the timeout by Increment, so
//     only finitely many mistakes are possible.
//
// Heartbeat traffic runs on its own sim.Network so dining-layer channel
// accounting (the paper's ≤4 in-transit bound) is unaffected.
type Heartbeat struct {
	k         *sim.Kernel
	g         *graph.Graph
	net       *sim.Network
	cfg       HeartbeatConfig
	watch     [][]watchState // watch[watcher][target]
	listeners []func()
	started   bool

	falsePositives  int
	lastMistakeAt   sim.Time
	lastMistakeEnd  sim.Time
	everFalseSusp   bool
	suspicionEvents int
}

// NewHeartbeat creates a heartbeat detector over conflict graph g,
// exchanging messages on a dedicated network with the given delay
// model (typically the same partial-synchrony model as the dining
// layer).
func NewHeartbeat(k *sim.Kernel, g *graph.Graph, delays sim.DelayModel, cfg HeartbeatConfig) *Heartbeat {
	if cfg.Period <= 0 {
		cfg.Period = DefaultHeartbeatConfig().Period
	}
	if cfg.InitialTimeout <= 0 {
		cfg.InitialTimeout = DefaultHeartbeatConfig().InitialTimeout
	}
	if cfg.Increment <= 0 {
		cfg.Increment = DefaultHeartbeatConfig().Increment
	}
	n := g.N()
	hb := &Heartbeat{
		k:         k,
		g:         g,
		net:       sim.NewNetwork(k, n, delays),
		cfg:       cfg,
		watch:     make([][]watchState, n),
		listeners: make([]func(), n),
	}
	for i := range hb.watch {
		hb.watch[i] = make([]watchState, n)
		for j := range hb.watch[i] {
			hb.watch[i][j] = watchState{timeout: cfg.InitialTimeout}
		}
	}
	return hb
}

// Start begins heartbeating and deadline monitoring. It must be called
// exactly once, before the simulation runs; extra calls are no-ops.
func (hb *Heartbeat) Start() {
	if hb.started {
		return
	}
	hb.started = true
	for i := 0; i < hb.g.N(); i++ {
		i := i
		if err := hb.net.Register(i, func(from int, _ any) { hb.onHeartbeat(i, from) }); err != nil {
			// Registration can only fail for out-of-range IDs, which
			// cannot happen for 0 <= i < N.
			continue
		}
		nbrs := hb.g.Neighbors(i)
		hb.k.Ticker(hb.cfg.Period, func() bool { return hb.net.Crashed(i) }, func() {
			for _, j := range nbrs {
				_ = hb.net.Send(i, j, heartbeatMsg{})
			}
		})
		// Arm the initial deadline for each watched neighbor.
		for _, j := range nbrs {
			j := j
			hb.k.After(hb.cfg.InitialTimeout, func() { hb.checkDeadline(i, j) })
		}
	}
}

func (hb *Heartbeat) onHeartbeat(watcher, target int) {
	ws := &hb.watch[watcher][target]
	now := hb.k.Now()
	ws.lastHeard = now
	ws.everHeard = true
	if ws.suspected {
		ws.suspected = false
		ws.timeout += hb.cfg.Increment // adapt: this suspicion was a mistake
		hb.lastMistakeEnd = now
		hb.notify(watcher)
	}
	hb.k.After(ws.timeout, func() { hb.checkDeadline(watcher, target) })
}

func (hb *Heartbeat) checkDeadline(watcher, target int) {
	if hb.net.Crashed(watcher) {
		return
	}
	ws := &hb.watch[watcher][target]
	if ws.suspected {
		return
	}
	now := hb.k.Now()
	base := ws.lastHeard
	if now-base < ws.timeout {
		// A newer heartbeat re-armed a later deadline; this check is
		// stale.
		return
	}
	ws.suspected = true
	hb.suspicionEvents++
	if !hb.net.Crashed(target) {
		hb.falsePositives++
		hb.lastMistakeAt = now
		hb.everFalseSusp = true
	}
	hb.notify(watcher)
}

func (hb *Heartbeat) notify(watcher int) {
	if fn := hb.listeners[watcher]; fn != nil {
		fn()
	}
}

// Suspects implements Detector.
func (hb *Heartbeat) Suspects(watcher, target int) bool {
	if watcher < 0 || watcher >= hb.g.N() || target < 0 || target >= hb.g.N() {
		return false
	}
	return hb.watch[watcher][target].suspected
}

// SetListener implements Notifier.
func (hb *Heartbeat) SetListener(watcher int, fn func()) {
	if watcher >= 0 && watcher < len(hb.listeners) {
		hb.listeners[watcher] = fn
	}
}

// ObserveCrash implements CrashAware by crashing the process on the
// heartbeat network, which silences its heartbeats; completeness then
// follows from the deadline mechanism.
func (hb *Heartbeat) ObserveCrash(target int) {
	_ = hb.net.Crash(target)
}

// FalsePositives returns how many wrongful suspicions (of live
// processes) occurred.
func (hb *Heartbeat) FalsePositives() int { return hb.falsePositives }

// SuspicionEvents returns the total number of suspicion transitions.
func (hb *Heartbeat) SuspicionEvents() int { return hb.suspicionEvents }

// LastMistake returns the time of the most recent wrongful suspicion
// and the time the most recent wrongful suspicion was cleared. Both are
// zero if the detector never made a mistake.
func (hb *Heartbeat) LastMistake() (began, cleared sim.Time) {
	return hb.lastMistakeAt, hb.lastMistakeEnd
}

// MessagesSent reports total heartbeat traffic (for overhead
// accounting, kept separate from dining-layer channels).
func (hb *Heartbeat) MessagesSent() uint64 { return hb.net.TotalSent() }

var (
	_ Detector   = (*Heartbeat)(nil)
	_ Notifier   = (*Heartbeat)(nil)
	_ CrashAware = (*Heartbeat)(nil)
)
