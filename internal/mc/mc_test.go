package mc

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestPathTwoClosesClean(t *testing.T) {
	c, err := New(graph.Path(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed {
		t.Fatal("P2 state space should close")
	}
	if rep.Violation != nil {
		t.Fatalf("violation: %v\ntrace: %v\nstate:\n%s",
			rep.Violation, rep.Violation.Trace, rep.Violation.State)
	}
	if rep.States < 10 {
		t.Fatalf("suspiciously small space: %d states", rep.States)
	}
	if rep.MaxQueue > 4 {
		t.Fatalf("max queue %d exceeds the paper bound", rep.MaxQueue)
	}
	t.Logf("P2: %d states, %d transitions, max queue %d", rep.States, rep.Transitions, rep.MaxQueue)
}

func TestPathThreeClosesClean(t *testing.T) {
	c, err := New(graph.Path(3), Options{MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed {
		t.Fatal("P3 state space should close")
	}
	if rep.Violation != nil {
		t.Fatalf("violation: %v\ntrace: %v\nstate:\n%s",
			rep.Violation, rep.Violation.Trace, rep.Violation.State)
	}
	t.Logf("P3: %d states, %d transitions, max queue %d", rep.States, rep.Transitions, rep.MaxQueue)
}

func TestTriangleClosesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("triangle space is large")
	}
	c, err := New(graph.Ring(3), Options{MaxStates: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed {
		t.Fatal("triangle state space should close")
	}
	if rep.Violation != nil {
		t.Fatalf("violation: %v\ntrace: %v\nstate:\n%s",
			rep.Violation, rep.Violation.Trace, rep.Violation.State)
	}
	t.Logf("K3: %d states, %d transitions, max queue %d", rep.States, rep.Transitions, rep.MaxQueue)
}

func TestNoRepliedVariantStillSafe(t *testing.T) {
	// Removing the replied flag forfeits fairness, not safety: the
	// checker must close the P2 space with no safety violation and
	// progress possible everywhere.
	c, err := New(graph.Path(2), Options{Core: core.Options{DisableRepliedFlag: true}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Violation != nil {
		t.Fatalf("closed=%v violation=%v", rep.Closed, rep.Violation)
	}
}

func TestAckBudgetVariantStillSafe(t *testing.T) {
	c, err := New(graph.Path(2), Options{Core: core.Options{AcksPerSession: 3}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Violation != nil {
		t.Fatalf("closed=%v violation=%v", rep.Closed, rep.Violation)
	}
}

func TestSuspectAllFindsExclusionViolation(t *testing.T) {
	// With an always-wrong detector, both diners can pass the doorway
	// and eat on suspicion alone. The checker must find a state where
	// both eat — demonstrated here with the exclusion check forced on.
	c, err := New(graph.Path(2), Options{
		SuspectAll:         true,
		KeepExclusionCheck: true,
		SkipProgress:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("always-suspecting oracle must produce an exclusion violation")
	}
	if len(rep.Violation.Trace) == 0 {
		t.Fatal("violation must carry a counterexample trace")
	}
	t.Logf("counterexample (%d moves): %v", len(rep.Violation.Trace), rep.Violation.Trace)
}

func TestBudgetExhaustion(t *testing.T) {
	c, err := New(graph.Ring(3), Options{MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestCheckerDeterministic(t *testing.T) {
	run := func() (int, int) {
		c, err := New(graph.Path(2), Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.States, rep.Transitions
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("nondeterministic exploration: (%d,%d) vs (%d,%d)", s1, t1, s2, t2)
	}
}
