package mc

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestWaitFreedomUnderOneCrashP2(t *testing.T) {
	// Exhaustive wait-freedom on P2 with up to one crash and a perfect
	// detector: in every reachable state, every live hungry process can
	// still reach eating — including all states where its only
	// neighbor crashed while holding the fork, mid-doorway, or
	// mid-grant.
	c, err := New(graph.Path(2), Options{MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed {
		t.Fatal("P2+1crash should close")
	}
	if rep.Violation != nil {
		t.Fatalf("violation: %v\ntrace: %v\nstate:\n%s",
			rep.Violation, rep.Violation.Trace, rep.Violation.State)
	}
	t.Logf("P2+1crash: %d states, %d transitions", rep.States, rep.Transitions)
}

func TestWaitFreedomUnderCrashesP3(t *testing.T) {
	if testing.Short() {
		t.Skip("large space")
	}
	// P3 with a crash anywhere: the middle process can lose a
	// neighbor mid-handshake in every possible way; nobody live may
	// get wedged. (Two-crash exploration also closes — 333,751 states,
	// ~90s — run it via: go run ./cmd/modelcheck -topology path -n 3
	// -crashes 2.)
	c, err := New(graph.Path(3), Options{MaxCrashes: 1, MaxStates: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed {
		t.Fatal("P3+1crash should close")
	}
	if rep.Violation != nil {
		t.Fatalf("violation: %v\ntrace: %v\nstate:\n%s",
			rep.Violation, rep.Violation.Trace, rep.Violation.State)
	}
	t.Logf("P3+1crash: %d states, %d transitions", rep.States, rep.Transitions)
}

func TestChoySinghWedgesUnderCrashExhaustively(t *testing.T) {
	// The converse: with the detector ignored (Choy–Singh), the checker
	// must find a reachable state in which a live hungry process can
	// never eat — the impossibility that motivates the paper, as an
	// explicit counterexample trace.
	c, err := New(graph.Path(2), Options{
		Core:       core.Options{IgnoreDetector: true, DisableRepliedFlag: true},
		MaxCrashes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("Choy–Singh with a crash must have a wedged hungry state")
	}
	if !strings.Contains(rep.Violation.Kind, "progress") {
		t.Fatalf("violation kind = %q, want a progress violation", rep.Violation.Kind)
	}
	crashed := false
	for _, mv := range rep.Violation.Trace {
		if strings.Contains(mv, "crash(") {
			crashed = true
		}
	}
	if !crashed {
		t.Fatalf("counterexample must involve a crash: %v", rep.Violation.Trace)
	}
	t.Logf("wedge counterexample (%d moves): %v", len(rep.Violation.Trace), rep.Violation.Trace)
}

func TestCrashedEaterDoesNotBlockWithDetector(t *testing.T) {
	// Directly exercise the nastiest pattern: the fork holder crashes
	// while eating. Exhaustive: some interleaving reaches it, and the
	// survivor must still be able to eat from everywhere.
	c, err := New(graph.Path(2), Options{MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("violation: %v", rep.Violation)
	}
	// Sanity: the space with crashes is strictly larger than without.
	noCrash, err := New(graph.Path(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := noCrash.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.States <= base.States {
		t.Fatalf("crash mode explored %d states, base %d — crash moves missing?",
			rep.States, base.States)
	}
}
