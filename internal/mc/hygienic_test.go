package mc

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestHygienicPathTwoClosesClean(t *testing.T) {
	// Exhaustive crash-free verification of Chandy–Misra: perpetual
	// exclusion, fork/token uniqueness, the (tighter) channel bound,
	// and possibility of progress in every reachable state.
	c, err := New(graph.Path(2), Options{Hygienic: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Violation != nil {
		t.Fatalf("closed=%v violation=%v", rep.Closed, rep.Violation)
	}
	if rep.MaxQueue > 2 {
		t.Fatalf("hygienic max queue = %d, want ≤ 2 (one fork + one token)", rep.MaxQueue)
	}
	t.Logf("hygienic P2: %d states, %d transitions", rep.States, rep.Transitions)
}

func TestHygienicPathThreeClosesClean(t *testing.T) {
	c, err := New(graph.Path(3), Options{Hygienic: true, MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Violation != nil {
		t.Fatalf("closed=%v violation=%v", rep.Closed, rep.Violation)
	}
	t.Logf("hygienic P3: %d states, %d transitions", rep.States, rep.Transitions)
}

func TestHygienicTriangleClosesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("larger space")
	}
	c, err := New(graph.Ring(3), Options{Hygienic: true, MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Violation != nil {
		t.Fatalf("closed=%v violation=%v", rep.Closed, rep.Violation)
	}
	t.Logf("hygienic K3: %d states, %d transitions", rep.States, rep.Transitions)
}

func TestHygienicWedgesUnderCrash(t *testing.T) {
	// Classic Chandy–Misra has no detector: a crash wedges the
	// neighborhood, and the checker finds the exact counterexample
	// (here: p1 borrows the fork, crashes holding it, p0 starves).
	c, err := New(graph.Path(2), Options{Hygienic: true, NoDetector: true, MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("classic hygienic dining must wedge under a crash")
	}
	if !strings.Contains(rep.Violation.Kind, "progress") {
		t.Fatalf("violation = %q, want a progress violation", rep.Violation.Kind)
	}
	t.Logf("hygienic wedge (%d moves): %v", len(rep.Violation.Trace), rep.Violation.Trace)
}

func TestHygienicWithDetectorSurvivesCrashExhaustively(t *testing.T) {
	// The ◇P₁-augmented variant (the checker's default perfect-
	// detector semantics) is exhaustively wait-free on P2 with a crash.
	c, err := New(graph.Path(2), Options{Hygienic: true, MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Closed || rep.Violation != nil {
		t.Fatalf("closed=%v violation=%v", rep.Closed, rep.Violation)
	}
}
