// Package mc is a bounded explicit-state model checker for the dining
// algorithm: it exhaustively explores every interleaving of message
// deliveries, hunger onsets, and eating exits on a small conflict
// graph, checking the paper's safety invariants in every reachable
// state and the possibility of progress from every reachable state.
//
// Where the simulator samples one schedule per seed, the checker covers
// all of them — for systems small enough that the reachable state space
// closes. The protocol state per diner is finite and channels are
// bounded (Section 7), so the space is finite; 2–4 diners close within
// a few hundred thousand states.
//
// Checked in every reachable state:
//
//   - exclusion: no two neighbors simultaneously eating (crash-free,
//     no suspicion ⇒ the weak-exclusion guarantee must be perpetual);
//   - fork/token uniqueness per edge, counting in-flight messages
//     (Lemmas 1.1–1.2);
//   - the ≤4 in-transit bound per edge (Section 7);
//   - no diner-internal invariant errors.
//
// Checked globally: from every state in which a process is hungry,
// some state in which it eats is reachable ("possibility of progress";
// with the weakly fair scheduler of the simulator this is what rules
// out wedged states).
package mc

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
)

// Options configure a check.
type Options struct {
	// Diner options; the zero value checks the paper's Algorithm 1.
	Core core.Options
	// Hygienic checks the Chandy–Misra baseline instead of Algorithm 1
	// (Core options are then ignored).
	Hygienic bool
	// NoDetector binds every process to the empty oracle even when
	// crashes are explored — the classic detector-free setting, under
	// which crash wedges are expected. (For core.Diner variants the
	// same effect comes from Core.IgnoreDetector.)
	NoDetector bool
	// SuspectAll wires every diner to an always-suspecting oracle —
	// a detector in its maximal-mistake regime. The exclusion check is
	// skipped under SuspectAll (◇WX legitimately permits violations
	// while the detector errs) unless KeepExclusionCheck is set.
	SuspectAll bool
	// KeepExclusionCheck retains the exclusion check under SuspectAll,
	// turning the checker into a violation finder with counterexample
	// traces.
	KeepExclusionCheck bool
	// MaxCrashes allows up to that many crash-fault moves during
	// exploration, with perfect-detector semantics: the moment a
	// process crashes, every neighbor suspects it. The checker then
	// verifies the paper's wait-freedom exhaustively: from every state
	// where a live process is hungry, an eating state stays reachable
	// no matter which (bounded) crash pattern the adversary picked.
	MaxCrashes int
	// MaxStates bounds exploration (default 2,000,000). Exceeding it
	// returns ErrBudget rather than a partial verdict on liveness
	// (safety violations found before the budget still surface).
	MaxStates int
	// SkipProgress disables the backward progress check (useful when
	// only safety is of interest or the budget was hit).
	SkipProgress bool
}

// ErrBudget reports that exploration exceeded MaxStates before closing
// the reachable space.
var ErrBudget = errors.New("mc: state budget exhausted before closure")

// Violation describes a failed check with a counterexample trace.
type Violation struct {
	Kind  string
	State string   // rendered offending state
	Trace []string // move labels from the initial state
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("mc: %s violated after %d moves", v.Kind, len(v.Trace))
}

// Report summarizes a completed check.
type Report struct {
	States      int
	Transitions int
	Closed      bool
	MaxQueue    int // max per-edge channel occupancy observed
	Violation   *Violation
}

// Checkable is what the checker needs from a dining process beyond
// core.Process: branching (deep copy), canonical state serialization,
// oracle rebinding, and fork/token visibility for the uniqueness
// invariants.
type Checkable interface {
	core.Process
	CloneProc() Checkable
	StateKey() string
	SetSuspects(fn func(j int) bool)
	ForkWith(j int) bool
	TokenWith(j int) bool
}

// dinerProc adapts core.Diner to Checkable.
type dinerProc struct{ *core.Diner }

func (p dinerProc) CloneProc() Checkable { return dinerProc{p.Diner.Clone()} }
func (p dinerProc) ForkWith(j int) bool  { return p.HoldsFork(j) }
func (p dinerProc) TokenWith(j int) bool { return p.HoldsToken(j) }

// hygienicProc adapts baseline.Hygienic to Checkable.
type hygienicProc struct{ *baseline.Hygienic }

func (p hygienicProc) CloneProc() Checkable { return hygienicProc{p.Hygienic.Clone()} }
func (p hygienicProc) ForkWith(j int) bool {
	held, _ := p.HoldsFork(j)
	return held
}
func (p hygienicProc) TokenWith(j int) bool { return p.HoldsToken(j) }

// sysState is one global state: all diners, channel contents, and the
// crash pattern so far.
type sysState struct {
	diners  []Checkable
	queues  map[[2]int][]core.Message // directed edge → FIFO queue
	crashed []bool
	crashes int
}

func (s *sysState) clone() *sysState {
	c := &sysState{
		diners:  make([]Checkable, len(s.diners)),
		queues:  make(map[[2]int][]core.Message, len(s.queues)),
		crashed: make([]bool, len(s.crashed)),
		crashes: s.crashes,
	}
	copy(c.crashed, s.crashed)
	for i, d := range s.diners {
		c.diners[i] = d.CloneProc()
	}
	for k, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		cq := make([]core.Message, len(q))
		copy(cq, q)
		c.queues[k] = cq
	}
	return c
}

// key serializes the protocol-relevant state canonically.
func (s *sysState) key() string {
	var b strings.Builder
	for i, c := range s.crashed {
		if c {
			fmt.Fprintf(&b, "x%d", i)
		}
	}
	for i, d := range s.diners {
		fmt.Fprintf(&b, "|%d:%s", i, d.StateKey())
	}
	edges := make([][2]int, 0, len(s.queues))
	for e := range s.queues {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "|q%d-%d:", e[0], e[1])
		for _, m := range s.queues[e] {
			fmt.Fprintf(&b, "%d.%d,", int(m.Kind), m.Color)
		}
	}
	return b.String()
}

// render pretty-prints a state for counterexamples.
func (s *sysState) render() string {
	var b strings.Builder
	for i, d := range s.diners {
		crashed := ""
		if s.crashed[i] {
			crashed = " CRASHED"
		}
		fmt.Fprintf(&b, "p%d %v%s key=%s\n", i, d.State(), crashed, d.StateKey())
	}
	// Render channels in sorted edge order so the same counterexample
	// state always prints identically.
	edges := make([][2]int, 0, len(s.queues))
	for e := range s.queues {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		if q := s.queues[e]; len(q) > 0 {
			fmt.Fprintf(&b, "channel %d→%d: %v\n", e[0], e[1], q)
		}
	}
	return b.String()
}

// node is one explored state with its discovery edge (for traces).
type node struct {
	st     *sysState
	parent int
	label  string
}

// Checker explores the reachable state space of a dining system.
type Checker struct {
	g      *graph.Graph
	colors []int
	opts   Options
}

// New creates a checker over conflict graph g with greedy coloring.
func New(g *graph.Graph, opts Options) (*Checker, error) {
	if opts.MaxStates <= 0 {
		opts.MaxStates = 2_000_000
	}
	colors := g.GreedyColoring()
	if !g.IsProperColoring(colors) {
		return nil, errors.New("mc: coloring failed")
	}
	return &Checker{g: g, colors: colors, opts: opts}, nil
}

func (c *Checker) initial() (*sysState, error) {
	s := &sysState{
		diners:  make([]Checkable, c.g.N()),
		queues:  make(map[[2]int][]core.Message),
		crashed: make([]bool, c.g.N()),
	}
	for i := 0; i < c.g.N(); i++ {
		if c.opts.Hygienic {
			h, err := baseline.NewHygienic(i, c.g.Neighbors(i), nil)
			if err != nil {
				return nil, err
			}
			s.diners[i] = hygienicProc{h}
			continue
		}
		nbrColors := make(map[int]int)
		for _, j := range c.g.Neighbors(i) {
			nbrColors[j] = c.colors[j]
		}
		d, err := core.NewDiner(core.Config{
			ID:             i,
			Color:          c.colors[i],
			NeighborColors: nbrColors,
			Options:        c.opts.Core,
		})
		if err != nil {
			return nil, err
		}
		s.diners[i] = dinerProc{d}
	}
	c.bindOracles(s)
	return s, nil
}

// bindOracles points every diner's ◇P₁ module at this state's crash
// set (perfect-detector semantics), or at the constant-true oracle in
// SuspectAll mode. Must be called after every clone.
func (c *Checker) bindOracles(s *sysState) {
	for _, d := range s.diners {
		switch {
		case c.opts.SuspectAll:
			d.SetSuspects(func(int) bool { return true })
		case c.opts.NoDetector:
			d.SetSuspects(nil)
		default:
			d.SetSuspects(func(j int) bool {
				return j >= 0 && j < len(s.crashed) && s.crashed[j]
			})
		}
	}
}

// move is a labeled successor generator.
type move struct {
	label string
	apply func(s *sysState) // mutates s in place
}

// moves enumerates every enabled move in state s.
func (c *Checker) moves(s *sysState) []move {
	var out []move
	for i, d := range s.diners {
		i, d := i, d
		if s.crashed[i] {
			continue
		}
		switch d.State() {
		case core.Thinking:
			out = append(out, move{
				label: fmt.Sprintf("hungry(p%d)", i),
				apply: func(t *sysState) { t.send(t.diners[i].BecomeHungry()) },
			})
		case core.Eating:
			out = append(out, move{
				label: fmt.Sprintf("exit(p%d)", i),
				apply: func(t *sysState) { t.send(t.diners[i].ExitEating()) },
			})
		case core.Hungry:
			// No spontaneous move: a hungry diner acts only when the
			// adversary delivers it a message.
		}
		if s.crashes < c.opts.MaxCrashes {
			out = append(out, move{
				label: fmt.Sprintf("crash(p%d)", i),
				apply: func(t *sysState) {
					t.crashed[i] = true
					t.crashes++
					// ReevaluateSuspicion at every live neighbor: the
					// perfect detector reports the crash instantly.
					for _, j := range c.g.Neighbors(i) {
						if !t.crashed[j] {
							t.send(t.diners[j].ReevaluateSuspicion())
						}
					}
				},
			})
		}
	}
	edges := make([][2]int, 0, len(s.queues))
	for e := range s.queues {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		q := s.queues[e]
		if len(q) == 0 {
			continue
		}
		e, m := e, q[0]
		out = append(out, move{
			label: fmt.Sprintf("deliver(%v)", m),
			apply: func(t *sysState) {
				head := t.queues[e][0]
				rest := t.queues[e][1:]
				if len(rest) == 0 {
					delete(t.queues, e)
				} else {
					nq := make([]core.Message, len(rest))
					copy(nq, rest)
					t.queues[e] = nq
				}
				if t.crashed[e[1]] {
					return // dropped at the crashed destination
				}
				t.send(t.diners[e[1]].Deliver(head))
			},
		})
	}
	return out
}

func (s *sysState) send(msgs []core.Message) {
	for _, m := range msgs {
		e := [2]int{m.From, m.To}
		s.queues[e] = append(s.queues[e], m)
	}
}

// checkState validates all safety invariants in s; the empty string
// means OK.
func (c *Checker) checkState(s *sysState) string {
	for i, d := range s.diners {
		if err := d.Err(); err != nil {
			return fmt.Sprintf("diner invariant at p%d: %v", i, err)
		}
	}
	if !c.opts.SuspectAll || c.opts.KeepExclusionCheck {
		for _, e := range c.g.Edges() {
			if s.crashed[e[0]] || s.crashed[e[1]] {
				continue // the paper's ◇WX concerns live neighbors
			}
			a, b := s.diners[e[0]], s.diners[e[1]]
			if a.State() == core.Eating && b.State() == core.Eating {
				return fmt.Sprintf("exclusion: p%d and p%d eating together", e[0], e[1])
			}
		}
	}
	for _, e := range c.g.Edges() {
		u, v := e[0], e[1]
		forks := b2i(s.diners[u].ForkWith(v)) + b2i(s.diners[v].ForkWith(u))
		tokens := b2i(s.diners[u].TokenWith(v)) + b2i(s.diners[v].TokenWith(u))
		occupancy := 0
		for _, dir := range [][2]int{{u, v}, {v, u}} {
			for _, m := range s.queues[dir] {
				occupancy++
				switch m.Kind {
				case core.Fork:
					forks++
				case core.Request:
					tokens++
				case core.Ping, core.Ack:
					// Doorway traffic carries neither fork nor token.
				}
			}
		}
		// On an edge with a crashed endpoint the fork or token can be
		// lost — frozen at the crashed process or dropped with an
		// undeliverable message — but never duplicated.
		if s.crashed[u] || s.crashed[v] {
			if forks > 1 {
				return fmt.Sprintf("fork duplicated: edge {%d,%d} has %d forks", u, v, forks)
			}
			if tokens > 1 {
				return fmt.Sprintf("token duplicated: edge {%d,%d} has %d tokens", u, v, tokens)
			}
		} else {
			if forks != 1 {
				return fmt.Sprintf("fork uniqueness: edge {%d,%d} has %d forks", u, v, forks)
			}
			if tokens != 1 {
				return fmt.Sprintf("token uniqueness: edge {%d,%d} has %d tokens", u, v, tokens)
			}
		}
		if occupancy > 4 {
			return fmt.Sprintf("channel bound: edge {%d,%d} holds %d messages", u, v, occupancy)
		}
	}
	return ""
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Run explores the reachable space and returns the report. A safety
// violation is returned inside the report with its counterexample; the
// error return covers only budget exhaustion and setup failures.
func (c *Checker) Run() (Report, error) {
	init, err := c.initial()
	if err != nil {
		return Report{}, err
	}
	var rep Report
	nodes := []node{{st: init, parent: -1}}
	index := map[string]int{init.key(): 0}
	var succ [][]int // adjacency for the progress check

	traceTo := func(id int) []string {
		var labels []string
		for id > 0 {
			labels = append(labels, nodes[id].label)
			id = nodes[id].parent
		}
		for l, r := 0, len(labels)-1; l < r; l, r = l+1, r-1 {
			labels[l], labels[r] = labels[r], labels[l]
		}
		return labels
	}

	if msg := c.checkState(init); msg != "" {
		rep.States = 1
		rep.Violation = &Violation{Kind: msg, State: init.render()}
		return rep, nil
	}

	for head := 0; head < len(nodes); head++ {
		if len(nodes) > c.opts.MaxStates {
			rep.States = len(nodes)
			rep.Transitions = countTransitions(succ)
			return rep, ErrBudget
		}
		cur := nodes[head].st
		moves := c.moves(cur)
		succ = append(succ, make([]int, 0, len(moves)))
		for _, mv := range moves {
			next := cur.clone()
			c.bindOracles(next) // rebind before apply: guards consult suspicion
			mv.apply(next)
			rep.Transitions++
			if q := maxQueue(next); q > rep.MaxQueue {
				rep.MaxQueue = q
			}
			k := next.key()
			id, seen := index[k]
			if !seen {
				id = len(nodes)
				index[k] = id
				nodes = append(nodes, node{st: next, parent: head, label: mv.label})
				if msg := c.checkState(next); msg != "" {
					rep.States = len(nodes)
					rep.Violation = &Violation{Kind: msg, State: next.render(), Trace: traceTo(id)}
					return rep, nil
				}
			}
			succ[head] = append(succ[head], id)
		}
	}
	rep.States = len(nodes)
	rep.Closed = true

	if !c.opts.SkipProgress {
		for p := 0; p < c.g.N(); p++ {
			if v := c.progressCheck(p, nodes, succ, traceTo); v != nil {
				rep.Violation = v
				return rep, nil
			}
		}
	}
	return rep, nil
}

// progressCheck verifies AG(hungry(p) → EF eating(p)) by backward
// reachability from p's eating states.
func (c *Checker) progressCheck(p int, nodes []node, succ [][]int, traceTo func(int) []string) *Violation {
	n := len(nodes)
	pred := make([][]int, n)
	for u, vs := range succ {
		for _, v := range vs {
			pred[v] = append(pred[v], u)
		}
	}
	canReach := make([]bool, n)
	var stack []int
	for i := 0; i < n; i++ {
		if nodes[i].st.diners[p].State() == core.Eating {
			canReach[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range pred[v] {
			if !canReach[u] {
				canReach[u] = true
				stack = append(stack, u)
			}
		}
	}
	for i := 0; i < n; i++ {
		if nodes[i].st.crashed[p] {
			continue
		}
		if nodes[i].st.diners[p].State() == core.Hungry && !canReach[i] {
			return &Violation{
				Kind:  fmt.Sprintf("progress: p%d hungry with no path to eating", p),
				State: nodes[i].st.render(),
				Trace: traceTo(i),
			}
		}
	}
	return nil
}

func maxQueue(s *sysState) int {
	occ := map[[2]int]int{}
	for e, q := range s.queues {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		occ[[2]int{u, v}] += len(q)
	}
	best := 0
	for _, n := range occ {
		if n > best {
			best = n
		}
	}
	return best
}

func countTransitions(succ [][]int) int {
	n := 0
	for _, s := range succ {
		n += len(s)
	}
	return n
}
