package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// decoderBufSize is the Decoder's read window. It must hold at least
// one maximal frame (4-byte prefix + MaxPayload); sizing it to a
// multiple of that lets one kernel read surface a whole burst of
// coalesced frames, which More drains without further syscalls.
const decoderBufSize = 2 * (4 + MaxPayload)

// Decoder reads length-prefixed frames from a stream with zero
// per-frame allocations: payloads are parsed in place as views into
// one reused read buffer instead of the per-frame make([]byte, n) that
// ReadFrame performs.
//
// Ownership contract (DESIGN S24), enforced by the transport's
// mailboxown analyzer annotations:
//
//   - A Decoder is owned by exactly one reader goroutine; no method is
//     safe for concurrent use.
//   - The Frame filled by Next is valid until the next Next call. Its
//     only reference field, Procs, may alias a scratch array the next
//     decode reuses — retaining a frame beyond one iteration (posting
//     it to another goroutine, storing it in a map) requires
//     Frame.Clone, the copy-on-retain rule.
//   - Next never reads past the current frame's length prefix into a
//     decoded field: every byte of the view is either consumed by the
//     strict parser or rejected (trailing-byte error), so a frame can
//     never alias its successor's bytes.
//
// Error semantics match ReadFrame: io.EOF for a clean close at a frame
// boundary, io.ErrUnexpectedEOF for a close mid-frame, ErrOversize for
// a corrupt length prefix, and strict DecodePayloadInto errors for a
// corrupt payload. Frames fully buffered before an error surface first,
// so a burst followed by a disconnect still delivers the burst.
type Decoder struct {
	r          io.Reader
	buf        []byte // reused read window; frames are parsed in place
	start, end int    // unconsumed bytes are buf[start:end]
	err        error  // sticky read error, surfaced once buffered bytes drain
}

// NewDecoder returns a Decoder reading length-prefixed frames from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, buf: make([]byte, decoderBufSize)}
}

// Next decodes the next frame into *f. See the type comment for the
// buffer-ownership contract and error semantics.
func (d *Decoder) Next(f *Frame) error {
	if err := d.need(4, false); err != nil {
		return err
	}
	n := int(binary.LittleEndian.Uint32(d.buf[d.start:]))
	if n > MaxPayload {
		return fmt.Errorf("%w: length prefix %d", ErrOversize, n)
	}
	if err := d.need(4+n, true); err != nil {
		return err
	}
	payload := d.buf[d.start+4 : d.start+4+n]
	d.start += 4 + n
	return DecodePayloadInto(f, payload)
}

// More reports whether a complete frame is already buffered, so the
// next Next call is guaranteed not to touch the underlying reader.
// Transport read loops use it to drain a coalesced burst that arrived
// in one segment without risking a block. A buffered corrupt length
// prefix also reports true: Next will fail fast on it without reading.
func (d *Decoder) More() bool {
	avail := d.end - d.start
	if avail < 4 {
		return false
	}
	n := int(binary.LittleEndian.Uint32(d.buf[d.start:]))
	if n > MaxPayload {
		return true
	}
	return avail >= 4+n
}

// Buffered returns the number of unconsumed bytes in the read window.
func (d *Decoder) Buffered() int { return d.end - d.start }

// need blocks until at least n unconsumed bytes are buffered. midFrame
// selects the ReadFrame-compatible EOF mapping: a clean EOF before any
// byte of the length prefix is io.EOF, while an EOF after the prefix
// (or partway through it, matching io.ReadFull) is io.ErrUnexpectedEOF.
func (d *Decoder) need(n int, midFrame bool) error {
	for d.end-d.start < n {
		if d.err != nil {
			err := d.err
			if err == io.EOF && (midFrame || d.end != d.start) {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		if d.end == len(d.buf) {
			// No write room: slide the unconsumed tail to the front.
			// n ≤ 4+MaxPayload ≤ len(buf), so room always opens up.
			copy(d.buf, d.buf[d.start:d.end])
			d.end -= d.start
			d.start = 0
		}
		m, err := d.r.Read(d.buf[d.end:])
		d.end += m
		if err != nil {
			d.err = err
		}
	}
	return nil
}
