package wire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite the wire golden files")

// goldenCases pins one full framing (length prefix + payload) per frame
// kind and per dining message kind. Changing any of these bytes is a
// wire-compatibility break: bump Version and regenerate deliberately
// with -update, never casually.
var goldenCases = []struct {
	name  string
	frame Frame
}{
	{"hello", Frame{Kind: Hello, Node: 2, Incarnation: 0x0102030405060708, Procs: []uint32{4, 9, 17}}},
	{"hello_empty", Frame{Kind: Hello, Node: 1, Incarnation: 7}},
	{"heartbeat", Frame{Kind: Heartbeat, From: 3, To: 7}},
	{"data_ping", Frame{Kind: Data, From: 1, To: 2, Seq: 42, Ack: 41, MsgKind: core.Ping}},
	{"data_ack", Frame{Kind: Data, From: 2, To: 1, Seq: 3, Ack: 2, MsgKind: core.Ack}},
	{"data_request", Frame{Kind: Data, From: 0, To: 5, Seq: 9, Ack: 8, MsgKind: core.Request, Color: 6}},
	{"data_fork", Frame{Kind: Data, From: 5, To: 0, Seq: 10, Ack: 9, MsgKind: core.Fork}},
	{"pure_ack", Frame{Kind: Ack, From: 4, To: 6, Ack: 12}},
}

func TestGoldenBytes(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := AppendFrame(nil, tc.frame)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(hexDump(enc)), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			want, err := parseHexDump(string(raw))
			if err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if !bytes.Equal(enc, want) {
				t.Fatalf("wire layout changed for %s:\n got %x\nwant %x\n"+
					"this breaks wire compatibility; if intentional, bump wire.Version and regenerate with -update",
					tc.name, enc, want)
			}
			// The golden bytes must also decode back to the source frame,
			// so the files stay usable as cross-implementation vectors.
			got, err := ReadFrame(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden bytes do not decode: %v", err)
			}
			re, err := AppendFrame(nil, got)
			if err != nil || !bytes.Equal(re, want) {
				t.Fatalf("golden bytes not canonical: re-encoded %x, want %x (err %v)", re, want, err)
			}
		})
	}
}

// hexDump renders b as lowercase hex, 16 bytes per line, so golden
// diffs are readable.
func hexDump(b []byte) string {
	var sb strings.Builder
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		sb.WriteString(hex.EncodeToString(b[i:end]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func parseHexDump(s string) ([]byte, error) {
	return hex.DecodeString(strings.Join(strings.Fields(s), ""))
}
