package wire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite the wire golden files")

// goldenCases pins one full framing (length prefix + payload) per frame
// kind and per dining message kind. Changing any of these bytes is a
// wire-compatibility break: bump Version and regenerate deliberately
// with -update, never casually.
var goldenCases = []struct {
	name  string
	frame Frame
}{
	{"hello", Frame{Kind: Hello, Node: 2, Incarnation: 0x0102030405060708, Procs: []uint32{4, 9, 17}}},
	{"hello_empty", Frame{Kind: Hello, Node: 1, Incarnation: 7}},
	{"heartbeat", Frame{Kind: Heartbeat, From: 3, To: 7}},
	{"data_ping", Frame{Kind: Data, From: 1, To: 2, Seq: 42, Ack: 41, MsgKind: core.Ping}},
	{"data_ack", Frame{Kind: Data, From: 2, To: 1, Seq: 3, Ack: 2, MsgKind: core.Ack}},
	{"data_request", Frame{Kind: Data, From: 0, To: 5, Seq: 9, Ack: 8, MsgKind: core.Request, Color: 6}},
	{"data_fork", Frame{Kind: Data, From: 5, To: 0, Seq: 10, Ack: 9, MsgKind: core.Fork}},
	{"pure_ack", Frame{Kind: Ack, From: 4, To: 6, Ack: 12}},
}

func TestGoldenBytes(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := AppendFrame(nil, tc.frame)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(hexDump(enc)), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			want, err := parseHexDump(string(raw))
			if err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if !bytes.Equal(enc, want) {
				t.Fatalf("wire layout changed for %s:\n got %x\nwant %x\n"+
					"this breaks wire compatibility; if intentional, bump wire.Version and regenerate with -update",
					tc.name, enc, want)
			}
			// The golden bytes must also decode back to the source frame,
			// so the files stay usable as cross-implementation vectors.
			got, err := ReadFrame(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden bytes do not decode: %v", err)
			}
			re, err := AppendFrame(nil, got)
			if err != nil || !bytes.Equal(re, want) {
				t.Fatalf("golden bytes not canonical: re-encoded %x, want %x (err %v)", re, want, err)
			}
		})
	}
}

// goldenBursts pins the coalesced shapes the transport actually puts
// on a socket: writeLoop gathers queued frames into one writev, so a
// burst is the exact concatenation of its frames' encodings — no burst
// header, no padding, each frame still carrying its own length prefix
// and CRC trailer. These files double as decoder vectors: a burst must
// split back into precisely its source frames.
var goldenBursts = []struct {
	name   string
	frames []Frame
}{
	// Three data frames from one writev flush, each carrying the
	// piggybacked cumulative ack frozen at submit time.
	{"burst_coalesced_data", []Frame{
		{Kind: Data, From: 1, To: 2, Seq: 7, Ack: 6, MsgKind: core.Request, Color: 3},
		{Kind: Data, From: 1, To: 2, Seq: 8, Ack: 6, MsgKind: core.Ping},
		{Kind: Data, From: 1, To: 2, Seq: 9, Ack: 6, MsgKind: core.Fork},
	}},
	// A receive burst's reply shape: the batched cumulative ack is one
	// pure-ack frame restating the latest seq for the whole burst,
	// trailing the opposite direction's data.
	{"burst_batched_ack", []Frame{
		{Kind: Data, From: 2, To: 1, Seq: 4, Ack: 9, MsgKind: core.Ack},
		{Kind: Ack, From: 2, To: 1, Ack: 9},
	}},
	// A reconnect flush: handshake hello, then a heartbeat and the
	// retransmitted ring contents in one gather.
	{"burst_reconnect", []Frame{
		{Kind: Hello, Node: 1, Incarnation: 3, Procs: []uint32{0, 2}},
		{Kind: Heartbeat, From: 0, To: 3},
		{Kind: Data, From: 0, To: 3, Seq: 1, Ack: 0, MsgKind: core.Request, Color: 1},
	}},
}

func TestGoldenBurstBytes(t *testing.T) {
	for _, tc := range goldenBursts {
		t.Run(tc.name, func(t *testing.T) {
			var enc []byte
			for _, fr := range tc.frames {
				var err error
				enc, err = AppendFrame(enc, fr)
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(hexDump(enc)), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			want, err := parseHexDump(string(raw))
			if err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if !bytes.Equal(enc, want) {
				t.Fatalf("coalesced wire layout changed for %s:\n got %x\nwant %x\n"+
					"this breaks wire compatibility; if intentional, bump wire.Version and regenerate with -update",
					tc.name, enc, want)
			}
			// The burst must split back into exactly its source frames
			// through the zero-copy decoder — frame boundaries survive
			// coalescing byte-for-byte.
			dec := NewDecoder(bytes.NewReader(want))
			for i, src := range tc.frames {
				var got Frame
				if err := dec.Next(&got); err != nil {
					t.Fatalf("frame %d: decode: %v", i, err)
				}
				re, err := AppendFrame(nil, got.Clone())
				if err != nil {
					t.Fatalf("frame %d: re-encode: %v", i, err)
				}
				orig, err := AppendFrame(nil, src)
				if err != nil {
					t.Fatalf("frame %d: source encode: %v", i, err)
				}
				if !bytes.Equal(re, orig) {
					t.Fatalf("frame %d round-trip diverged:\n got %x\nwant %x", i, re, orig)
				}
			}
			var extra Frame
			if err := dec.Next(&extra); err == nil {
				t.Fatalf("burst decoded an extra frame: %+v", extra)
			}
		})
	}
}

// TestGoldenCoversEveryFrameKind fails when a frame kind is added
// without a pinned byte layout — the golden corpus must stay
// exhaustive.
func TestGoldenCoversEveryFrameKind(t *testing.T) {
	covered := map[FrameKind]bool{}
	for _, tc := range goldenCases {
		covered[tc.frame.Kind] = true
	}
	for k := Hello; k <= Ack; k++ {
		if !covered[k] {
			t.Errorf("frame kind %v has no golden case", k)
		}
	}
	if covered[Hello] && covered[Heartbeat] && covered[Data] && covered[Ack] && len(covered) != 4 {
		t.Errorf("golden cases cover %d kinds; a new kind needs a case here and a golden file", len(covered))
	}
}

// hexDump renders b as lowercase hex, 16 bytes per line, so golden
// diffs are readable.
func hexDump(b []byte) string {
	var sb strings.Builder
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		sb.WriteString(hex.EncodeToString(b[i:end]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func parseHexDump(s string) ([]byte, error) {
	return hex.DecodeString(strings.Join(strings.Fields(s), ""))
}
