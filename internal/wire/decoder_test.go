package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
)

// decoderTestFrames is a mixed burst covering every frame kind.
func decoderTestFrames(t *testing.T) []Frame {
	t.Helper()
	d1, err := DataFrame(core.Message{Kind: core.Request, From: 3, To: 4, Color: -2}, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DataFrame(core.Message{Kind: core.Fork, From: 4, To: 3, Color: 7}, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	return []Frame{
		{Kind: Hello, Node: 1, Incarnation: 77, Procs: []uint32{2, 3}},
		{Kind: Heartbeat, From: 2, To: 5},
		d1,
		{Kind: Ack, From: 4, To: 3, Ack: 9},
		d2,
		{Kind: Hello, Node: 2, Incarnation: 78, Procs: []uint32{4, 5, 6}},
	}
}

func encodeAll(t *testing.T, frames []Frame) []byte {
	t.Helper()
	var buf []byte
	for _, f := range frames {
		var err error
		buf, err = AppendFrame(buf, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// chunkReader returns at most chunk bytes per Read, exercising frame
// reassembly across arbitrary segment boundaries.
type chunkReader struct {
	b     []byte
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.b) == 0 {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.b) {
		n = len(c.b)
	}
	copy(p, c.b[:n])
	c.b = c.b[n:]
	return n, nil
}

func TestDecoderMatchesReadFrame(t *testing.T) {
	frames := decoderTestFrames(t)
	stream := encodeAll(t, frames)
	for _, chunk := range []int{1, 3, 7, 64, len(stream)} {
		dec := NewDecoder(&chunkReader{b: stream, chunk: chunk})
		legacy := bytes.NewReader(stream)
		var got Frame
		for i := range frames {
			if err := dec.Next(&got); err != nil {
				t.Fatalf("chunk %d frame %d: Next: %v", chunk, i, err)
			}
			want, err := ReadFrame(legacy)
			if err != nil {
				t.Fatalf("chunk %d frame %d: ReadFrame: %v", chunk, i, err)
			}
			if !framesEqual(got.Clone(), want) {
				t.Fatalf("chunk %d frame %d: decoder %+v != readframe %+v", chunk, i, got, want)
			}
		}
		if err := dec.Next(&got); err != io.EOF {
			t.Fatalf("chunk %d: want io.EOF at stream end, got %v", chunk, err)
		}
	}
}

func framesEqual(a, b Frame) bool {
	if a.Kind != b.Kind || a.Node != b.Node || a.Incarnation != b.Incarnation ||
		a.From != b.From || a.To != b.To || a.Seq != b.Seq || a.Ack != b.Ack ||
		a.MsgKind != b.MsgKind || a.Color != b.Color || len(a.Procs) != len(b.Procs) {
		return false
	}
	for i := range a.Procs {
		if a.Procs[i] != b.Procs[i] {
			return false
		}
	}
	return true
}

func TestDecoderEOFSemantics(t *testing.T) {
	frames := decoderTestFrames(t)
	stream := encodeAll(t, frames[:1])

	// Clean close at a frame boundary: io.EOF, like ReadFrame.
	dec := NewDecoder(bytes.NewReader(stream))
	var f Frame
	if err := dec.Next(&f); err != nil {
		t.Fatal(err)
	}
	if err := dec.Next(&f); err != io.EOF {
		t.Fatalf("want io.EOF at boundary, got %v", err)
	}

	// Close mid-prefix and mid-body: io.ErrUnexpectedEOF, like
	// ReadFrame's io.ReadFull behavior.
	for _, cut := range []int{2, len(stream) - 3} {
		dec := NewDecoder(bytes.NewReader(stream[:cut]))
		if err := dec.Next(&f); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestDecoderOversizePrefix(t *testing.T) {
	var pre [4]byte
	pre[0], pre[1], pre[2], pre[3] = 0xff, 0xff, 0xff, 0x7f
	dec := NewDecoder(bytes.NewReader(pre[:]))
	var f Frame
	if err := dec.Next(&f); !errors.Is(err, ErrOversize) {
		t.Fatalf("want ErrOversize, got %v", err)
	}
}

func TestDecoderMore(t *testing.T) {
	frames := decoderTestFrames(t)
	stream := encodeAll(t, frames)
	// The whole burst arrives in one segment: after the first blocking
	// Next, More must report every remaining frame without further
	// reads (the reader would panic).
	dec := NewDecoder(&oneShotReader{b: stream})
	var f Frame
	if err := dec.Next(&f); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(frames); i++ {
		if !dec.More() {
			t.Fatalf("frame %d: More()=false with %d bytes buffered", i, dec.Buffered())
		}
		if err := dec.Next(&f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if dec.More() {
		t.Fatal("More()=true after burst drained")
	}
}

// oneShotReader yields its whole buffer on the first read and panics on
// any later read, proving More-guarded Nexts never touch the reader.
type oneShotReader struct {
	b    []byte
	done bool
}

func (r *oneShotReader) Read(p []byte) (int, error) {
	if r.done {
		panic("read after burst delivered")
	}
	if len(p) < len(r.b) {
		panic("short read buffer in test")
	}
	r.done = true
	return copy(p, r.b), nil
}

// TestDecoderZeroAllocHotPath is the tentpole's 0 allocs/op claim for
// the decode hot path: Data, Ack, and Heartbeat frames decode into a
// reused Frame with no per-frame allocation. (Hello allocates only
// until Procs capacity is established.)
func TestDecoderZeroAllocHotPath(t *testing.T) {
	d, err := DataFrame(core.Message{Kind: core.Ping, From: 1, To: 2, Color: 3}, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	stream := encodeAll(t, []Frame{d, {Kind: Ack, From: 2, To: 1, Ack: 5}, {Kind: Heartbeat, From: 1, To: 2}})
	src := bytes.NewReader(stream)
	dec := NewDecoder(src)
	var f Frame
	allocs := testing.AllocsPerRun(200, func() {
		src.Reset(stream)
		dec.start, dec.end, dec.err = 0, 0, nil
		for j := 0; j < 3; j++ {
			if err := dec.Next(&f); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("decode hot path allocates: %v allocs/op", allocs)
	}
}

// TestDecoderProcsReuseAndClone pins the copy-on-retain contract: a
// retained Hello frame's Procs alias the decoder scratch and are
// overwritten by the next decode, while Clone detaches them.
func TestDecoderProcsReuseAndClone(t *testing.T) {
	stream := encodeAll(t, []Frame{
		{Kind: Hello, Node: 1, Incarnation: 1, Procs: []uint32{10, 11}},
		{Kind: Hello, Node: 2, Incarnation: 2, Procs: []uint32{20, 21}},
	})
	dec := NewDecoder(bytes.NewReader(stream))
	var f Frame
	if err := dec.Next(&f); err != nil {
		t.Fatal(err)
	}
	aliased := f.Procs
	cloned := f.Clone()
	if err := dec.Next(&f); err != nil {
		t.Fatal(err)
	}
	if aliased[0] != 20 || aliased[1] != 21 {
		t.Fatalf("expected scratch reuse to overwrite retained Procs, got %v", aliased)
	}
	if cloned.Procs[0] != 10 || cloned.Procs[1] != 11 {
		t.Fatalf("Clone must detach Procs, got %v", cloned.Procs)
	}
}

// TestFrameSizeExact pins FrameSize to the encoder's actual output for
// every kind, so the one-allocation encode path can trust it.
func TestFrameSizeExact(t *testing.T) {
	for _, f := range decoderTestFrames(t) {
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		if got := FrameSize(f); got != len(buf) {
			t.Fatalf("%v: FrameSize=%d, encoded=%d", f, got, len(buf))
		}
	}
	var empty Frame
	if got := FrameSize(empty); got != 0 {
		t.Fatalf("unknown kind: FrameSize=%d, want 0", got)
	}
}

// TestDecoderDrainsBufferedBeforeError: frames fully buffered before a
// read error must surface before the error does, so a coalesced burst
// followed by a disconnect is not lost.
func TestDecoderDrainsBufferedBeforeError(t *testing.T) {
	frames := decoderTestFrames(t)
	stream := encodeAll(t, frames[:2])
	dec := NewDecoder(&thenError{b: stream, err: errors.New("conn reset")})
	var f Frame
	for i := 0; i < 2; i++ {
		if err := dec.Next(&f); err != nil {
			t.Fatalf("frame %d lost to pending error: %v", i, err)
		}
	}
	if err := dec.Next(&f); err == nil || err.Error() != "conn reset" {
		t.Fatalf("want conn reset, got %v", err)
	}
}

type thenError struct {
	b   []byte
	err error
}

func (r *thenError) Read(p []byte) (int, error) {
	n := copy(p, r.b)
	r.b = r.b[n:]
	if n == 0 {
		return 0, r.err
	}
	return n, r.err
}
