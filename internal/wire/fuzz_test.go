package wire

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzWireCodec checks the codec's two load-bearing properties on
// arbitrary byte strings:
//
//  1. Strict decode never panics, and either rejects the input with an
//     error or accepts it completely (no partial reads: a decoded
//     frame consumed every byte).
//  2. The encoding is canonical: any accepted payload re-encodes to
//     exactly the input bytes, and decoding that encoding yields the
//     same frame again. Together with the golden files this pins the
//     byte layout from both directions.
func FuzzWireCodec(f *testing.F) {
	for _, fr := range []Frame{
		{Kind: Hello, Node: 2, Incarnation: 0x0102030405060708, Procs: []uint32{4, 9, 17}},
		{Kind: Hello},
		{Kind: Heartbeat, From: 3, To: 7},
		{Kind: Data, From: 1, To: 2, Seq: 42, Ack: 41, MsgKind: core.Ping},
		{Kind: Data, From: 0, To: 5, Seq: 9, Ack: 8, MsgKind: core.Request, Color: -6},
		{Kind: Data, From: 5, To: 0, Seq: 10, Ack: 9, MsgKind: core.Fork},
		{Kind: Ack, From: 4, To: 6, Ack: 12},
	} {
		enc, err := EncodePayload(fr)
		if err != nil {
			f.Fatalf("seed encode %v: %v", fr, err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, 99, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodePayload(b)
		if err != nil {
			return // rejected garbage: exactly what strict decode promises
		}
		enc, err := EncodePayload(fr)
		if err != nil {
			t.Fatalf("decoded frame %v does not re-encode: %v", fr, err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("encoding not canonical:\n  in %x\n out %x", b, enc)
		}
		fr2, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("re-decode of %x failed: %v", enc, err)
		}
		enc2, err := EncodePayload(fr2)
		if err != nil || !bytes.Equal(enc2, enc) {
			t.Fatalf("decode/encode not idempotent: %x vs %x (err %v)", enc2, enc, err)
		}
	})
}
