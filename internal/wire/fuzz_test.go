package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
)

// FuzzWireDecoder feeds arbitrary byte streams — not single payloads —
// to the zero-copy Decoder and differentially checks it against the
// allocating ReadFrame reference across hostile chunk boundaries:
//
//  1. Same frames, same errors: for every chunking of the stream
//     (including 1-byte reads that split every length prefix and CRC
//     trailer, mimicking truncated iovec boundaries), the Decoder
//     yields exactly the frame sequence ReadFrame does, and fails on
//     exactly the same byte position.
//  2. No aliasing past the frame boundary: a Clone taken when a frame
//     is current must still re-encode to the original bytes after the
//     decoder has moved on and recycled its buffer. Run under -race in
//     CI, this also catches any write to a returned view.
func FuzzWireDecoder(f *testing.F) {
	frame := func(fr Frame) []byte {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	hello := frame(Frame{Kind: Hello, Node: 2, Incarnation: 7, Procs: []uint32{4, 9, 17}})
	data := frame(Frame{Kind: Data, From: 1, To: 2, Seq: 42, Ack: 41, MsgKind: core.Ping})
	ack := frame(Frame{Kind: Ack, From: 4, To: 6, Ack: 12})
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	f.Add([]byte{})
	f.Add(cat(hello, data, data, ack))     // coalesced writev splice
	f.Add(cat(data, ack)[:len(data)+2])    // burst truncated inside the ack's length prefix
	f.Add(cat(data, data)[:2*len(data)-5]) // burst truncated mid-payload
	forged := cat(data, ack)
	forged[len(forged)-1] ^= 0xff // batched ack with a forged CRC trailer
	f.Add(forged)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00}) // oversize length prefix

	f.Fuzz(func(t *testing.T, stream []byte) {
		// Reference pass: the allocating read path.
		var wantFrames [][]byte // canonical re-encodings
		var wantErr error
		ref := bytes.NewReader(stream)
		for {
			fr, err := ReadFrame(ref)
			if err != nil {
				wantErr = err
				break
			}
			enc, err := AppendFrame(nil, fr)
			if err != nil {
				t.Fatalf("reference frame does not re-encode: %v", err)
			}
			wantFrames = append(wantFrames, enc)
		}

		for _, chunk := range []int{1, 3, 7, 64, len(stream) + 1} {
			dec := NewDecoder(&chunkReader{b: stream, chunk: chunk})
			var clones []Frame
			var gotErr error
			for {
				var fr Frame
				if err := dec.Next(&fr); err != nil {
					gotErr = err
					break
				}
				clones = append(clones, fr.Clone())
			}
			if len(clones) != len(wantFrames) {
				t.Fatalf("chunk %d: decoder yielded %d frames, ReadFrame %d", chunk, len(clones), len(wantFrames))
			}
			// The error classes must agree; EOF flavors differ only in
			// that both mean "stream ended" vs a decode rejection.
			wantEOF := wantErr == io.EOF || wantErr == io.ErrUnexpectedEOF
			gotEOF := gotErr == io.EOF || gotErr == io.ErrUnexpectedEOF
			if wantEOF != gotEOF {
				t.Fatalf("chunk %d: decoder error %v, ReadFrame error %v", chunk, gotErr, wantErr)
			}
			// Aliasing check: the clones were taken while their frames
			// were current; by now the decoder has recycled its buffer
			// many times. Every clone must still match the reference.
			for i, cl := range clones {
				enc, err := AppendFrame(nil, cl)
				if err != nil {
					t.Fatalf("chunk %d: clone %d does not re-encode: %v", chunk, i, err)
				}
				if !bytes.Equal(enc, wantFrames[i]) {
					t.Fatalf("chunk %d: clone %d aliased recycled decoder memory:\n got %x\nwant %x", chunk, i, enc, wantFrames[i])
				}
			}
		}
	})
}

// FuzzWireCodec checks the codec's two load-bearing properties on
// arbitrary byte strings:
//
//  1. Strict decode never panics, and either rejects the input with an
//     error or accepts it completely (no partial reads: a decoded
//     frame consumed every byte).
//  2. The encoding is canonical: any accepted payload re-encodes to
//     exactly the input bytes, and decoding that encoding yields the
//     same frame again. Together with the golden files this pins the
//     byte layout from both directions.
func FuzzWireCodec(f *testing.F) {
	for _, fr := range []Frame{
		{Kind: Hello, Node: 2, Incarnation: 0x0102030405060708, Procs: []uint32{4, 9, 17}},
		{Kind: Hello},
		{Kind: Heartbeat, From: 3, To: 7},
		{Kind: Data, From: 1, To: 2, Seq: 42, Ack: 41, MsgKind: core.Ping},
		{Kind: Data, From: 0, To: 5, Seq: 9, Ack: 8, MsgKind: core.Request, Color: -6},
		{Kind: Data, From: 5, To: 0, Seq: 10, Ack: 9, MsgKind: core.Fork},
		{Kind: Ack, From: 4, To: 6, Ack: 12},
	} {
		enc, err := EncodePayload(fr)
		if err != nil {
			f.Fatalf("seed encode %v: %v", fr, err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, 99, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodePayload(b)
		if err != nil {
			return // rejected garbage: exactly what strict decode promises
		}
		enc, err := EncodePayload(fr)
		if err != nil {
			t.Fatalf("decoded frame %v does not re-encode: %v", fr, err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("encoding not canonical:\n  in %x\n out %x", b, enc)
		}
		fr2, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("re-decode of %x failed: %v", enc, err)
		}
		enc2, err := EncodePayload(fr2)
		if err != nil || !bytes.Equal(enc2, enc) {
			t.Fatalf("decode/encode not idempotent: %x vs %x (err %v)", enc2, enc, err)
		}
	})
}
