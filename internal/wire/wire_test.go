package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
)

// seal appends the CRC32-C trailer to a hand-built payload body.
func seal(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))
}

// reseal recomputes the trailer after a test mutated body bytes of an
// encoded payload, so the mutation reaches the field validators behind
// the integrity check.
func reseal(enc []byte) []byte {
	return seal(enc[:len(enc)-crcLen])
}

// sampleFrames covers every frame kind with non-trivial field values.
func sampleFrames() []Frame {
	return []Frame{
		{Kind: Hello, Node: 2, Incarnation: 0x1122334455667788, Procs: []uint32{4, 9, 17}},
		{Kind: Hello, Node: 0, Incarnation: 1},
		{Kind: Heartbeat, From: 3, To: 7},
		{Kind: Data, From: 1, To: 2, Seq: 42, Ack: 41, MsgKind: core.Ping},
		{Kind: Data, From: 2, To: 1, Seq: 1, Ack: 0, MsgKind: core.Request, Color: -3},
		{Kind: Data, From: 5, To: 0, Seq: 7, Ack: 9, MsgKind: core.Fork, Color: 0},
		{Kind: Data, From: 0, To: 5, Seq: 8, Ack: 7, MsgKind: core.Ack, Color: 12},
		{Kind: Ack, From: 4, To: 6, Ack: 1 << 40},
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		enc, err := EncodePayload(f)
		if err != nil {
			t.Fatalf("encode %v: %v", f, err)
		}
		got, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", f, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", f, got)
		}
		re, err := EncodePayload(got)
		if err != nil {
			t.Fatalf("re-encode %v: %v", got, err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("encoding not canonical for %v:\n %x\n %x", f, enc, re)
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := sampleFrames()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %v: %v", f, err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d:\n in: %+v\nout: %+v", i, want, got)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("read past end: err = %v, want io.EOF", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	enc, err := EncodePayload(Frame{Kind: Heartbeat, From: 1, To: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A stray byte between the body and a (valid) trailer must surface
	// as ErrTrailing, not be silently ignored.
	if _, err := DecodePayload(seal(append(enc[:len(enc)-crcLen], 0))); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing byte: err = %v, want ErrTrailing", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	// Every single-byte corruption of every frame kind must fail decode:
	// the transport's exactly-once guarantee relies on a spliced byte
	// stream never yielding a frame with forged Seq/Ack fields.
	for _, f := range sampleFrames() {
		enc, err := EncodePayload(f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range enc {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 0x40
			if _, err := DecodePayload(mut); err == nil {
				t.Fatalf("decode of %v with byte %d flipped succeeded", f, i)
			}
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	for _, f := range sampleFrames() {
		enc, err := EncodePayload(f)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodePayload(enc[:cut]); err == nil {
				t.Fatalf("decode of %v truncated to %d bytes succeeded", f, cut)
			}
		}
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	enc, _ := EncodePayload(Frame{Kind: Heartbeat, From: 1, To: 2})
	enc[0] = Version + 1
	if _, err := DecodePayload(reseal(enc)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := DecodePayload(seal([]byte{Version, 99})); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind: err = %v, want ErrUnknownKind", err)
	}
}

func TestDecodeRejectsZeroDataSeq(t *testing.T) {
	enc, _ := EncodePayload(Frame{Kind: Data, From: 1, To: 2, Seq: 5, MsgKind: core.Ping})
	binary.LittleEndian.PutUint64(enc[10:], 0) // version, kind, from, to precede seq
	if _, err := DecodePayload(reseal(enc)); !errors.Is(err, ErrBadValue) {
		t.Fatalf("zero seq: err = %v, want ErrBadValue", err)
	}
}

func TestDecodeRejectsBadMsgKindCode(t *testing.T) {
	enc, _ := EncodePayload(Frame{Kind: Data, From: 1, To: 2, Seq: 5, MsgKind: core.Ping})
	enc[26] = 9 // version, kind, from, to, seq, ack precede the kind code
	if _, err := DecodePayload(reseal(enc)); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad msg kind: err = %v, want ErrBadValue", err)
	}
}

func TestEncodeRejectsZeroDataSeq(t *testing.T) {
	if _, err := EncodePayload(Frame{Kind: Data, From: 1, To: 2, Seq: 0, MsgKind: core.Ping}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("encode zero seq: err = %v, want ErrBadValue", err)
	}
}

func TestEncodeRejectsUnknownMsgKind(t *testing.T) {
	if _, err := EncodePayload(Frame{Kind: Data, From: 1, To: 2, Seq: 1, MsgKind: core.MsgKind(9)}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("encode bad msg kind: err = %v, want ErrBadValue", err)
	}
}

func TestEncodeRejectsUnknownFrameKind(t *testing.T) {
	if _, err := EncodePayload(Frame{Kind: FrameKind(0)}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("encode bad frame kind: err = %v, want ErrUnknownKind", err)
	}
}

func TestHelloProcsLimit(t *testing.T) {
	f := Frame{Kind: Hello, Procs: make([]uint32, MaxHelloProcs+1)}
	if _, err := EncodePayload(f); !errors.Is(err, ErrBadValue) {
		t.Fatalf("oversized hello encode: err = %v, want ErrBadValue", err)
	}
	// A hand-built payload claiming too many processes must be rejected
	// before any per-process reads.
	b := []byte{Version, byte(Hello)}
	b = binary.LittleEndian.AppendUint32(b, 0)
	b = binary.LittleEndian.AppendUint64(b, 0)
	b = binary.LittleEndian.AppendUint16(b, MaxHelloProcs+1)
	if _, err := DecodePayload(seal(b)); !errors.Is(err, ErrBadValue) {
		t.Fatalf("oversized hello decode: err = %v, want ErrBadValue", err)
	}
}

func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	var buf bytes.Buffer
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], MaxPayload+1)
	buf.Write(prefix[:])
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversized prefix: err = %v, want ErrOversize", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Kind: Heartbeat, From: 1, To: 2}); err != nil {
		t.Fatal(err)
	}
	short := bytes.NewReader(buf.Bytes()[:buf.Len()-1])
	if _, err := ReadFrame(short); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated body: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestDataFrameMessageRoundTrip(t *testing.T) {
	m := core.Message{Kind: core.Request, From: 3, To: 8, Color: 5}
	f, err := DataFrame(m, 11, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Message(); got != m {
		t.Fatalf("Message() = %+v, want %+v", got, m)
	}
	if f.Seq != 11 || f.Ack != 10 {
		t.Fatalf("seq/ack = %d/%d, want 11/10", f.Seq, f.Ack)
	}
}

func TestDataFrameRejectsNegativeProcess(t *testing.T) {
	if _, err := DataFrame(core.Message{Kind: core.Ping, From: -1, To: 2}, 1, 0); !errors.Is(err, ErrBadValue) {
		t.Fatalf("negative process: err = %v, want ErrBadValue", err)
	}
}
