// Package wire is the byte-stable binary codec for the real-network
// runtime (internal/remote, cmd/dinerd). It serializes the closed
// message alphabet of Algorithm 1 — core.Message with its four kinds —
// plus the transport-level frames the TCP runtime needs: a Hello
// handshake carrying node identity and protocol version, Heartbeat for
// the wall-clock ◇P₁ detector, and pure Ack frames for the ARQ
// sublayer (data frames piggyback a cumulative ack as well, mirroring
// internal/rlink).
//
// Stability rules (see DESIGN.md S18):
//
//   - Framing is a uint32 little-endian length prefix counting the
//     payload bytes that follow; the payload starts with a version
//     byte and a frame-kind byte and ends with a uint32 little-endian
//     CRC32-C (Castagnoli) of every preceding payload byte.
//   - Every multi-byte integer is little-endian and fixed-width; there
//     are no optional fields, so each frame kind has exactly one
//     encoding and decode(encode(f)) == f byte-for-byte.
//   - Decoding is strict: checksum mismatches, trailing bytes,
//     truncated bodies, unknown versions or kinds, zero data sequence
//     numbers, and oversized frames are all errors, never silently
//     tolerated. Garbage on the wire must fail loudly at the codec,
//     not corrupt protocol state.
//   - The checksum is not optional hardening: the transport's
//     exactly-once guarantee rides on cumulative acks, and a spliced
//     byte stream (a middlebox or proxy that loses bytes mid-
//     connection) can otherwise forge a parseable frame whose Seq/Ack
//     fields silently poison the ARQ state — acking messages the peer
//     never received loses them forever, which deadlocks the dining
//     protocol. A corrupt frame must tear the connection down so
//     go-back-N retransmission can restore the stream.
//   - The encoding version is bumped for any layout change; peers
//     refuse mismatched versions at handshake.
//
// The golden-file tests (testdata/*.golden) pin the exact bytes of
// every frame kind, and FuzzWireCodec checks the strict-decode and
// round-trip properties on arbitrary input.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
)

// Version is the wire-format version carried by every frame. Bump it
// on any layout change; Decode rejects all other values. Version 2
// added the CRC32-C payload trailer.
const Version = 2

// crcLen is the size of the CRC32-C trailer closing every payload.
const crcLen = 4

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxPayload bounds a frame payload (the bytes after the length
// prefix). The largest legal frame is a Hello listing MaxHelloProcs
// processes, well under this; anything larger is a corrupt or hostile
// length prefix and is rejected before allocation.
const MaxPayload = 32 << 10

// MaxHelloProcs caps the process list a Hello may carry.
const MaxHelloProcs = 4096

// FrameKind identifies a transport frame type.
type FrameKind uint8

// Frame kinds. The byte values are part of the wire format.
const (
	// Hello opens a connection: node identity, incarnation, hosted
	// processes. Each side sends exactly one Hello before anything else.
	Hello FrameKind = iota + 1
	// Heartbeat is the ◇P₁ liveness signal between neighbor processes.
	Heartbeat
	// Data carries one dining message with its ARQ sequence number and
	// a piggybacked cumulative ack for the reverse stream.
	Data
	// Ack is a pure cumulative acknowledgment for one ordered process
	// pair.
	Ack
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case Hello:
		return "hello"
	case Heartbeat:
		return "heartbeat"
	case Data:
		return "data"
	case Ack:
		return "ack"
	default:
		return fmt.Sprintf("frame(%d)", uint8(k))
	}
}

// Codec errors. Decode failures wrap one of these.
var (
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrUnknownKind = errors.New("wire: unknown frame kind")
	ErrShort       = errors.New("wire: truncated frame")
	ErrTrailing    = errors.New("wire: trailing bytes after frame body")
	ErrOversize    = errors.New("wire: frame exceeds MaxPayload")
	ErrBadValue    = errors.New("wire: field value outside wire range")
	ErrChecksum    = errors.New("wire: payload checksum mismatch")
)

// Frame is the decoded form of every wire frame. Which fields are
// meaningful depends on Kind:
//
//	Hello:     Node, Incarnation, Procs
//	Heartbeat: From, To
//	Data:      From, To, Seq, Ack, MsgKind, Color
//	Ack:       From, To, Ack
//
// From and To are process IDs (the conflict-graph vertices), not node
// indices; per-edge logical links are multiplexed over one node-pair
// connection and demultiplexed by these fields.
type Frame struct {
	Kind FrameKind

	// Hello fields.
	Node        uint32   // sender's node index in the shared topology
	Incarnation uint64   // sender's boot identity; a change marks a restart and resets the link's ARQ state
	Procs       []uint32 // process IDs the sender hosts

	// Endpoint fields (Heartbeat, Data, Ack).
	From, To uint32

	// ARQ fields. Seq is 1-based on Data frames; Ack is the highest
	// reverse-stream sequence received in order (0 = none yet).
	Seq, Ack uint64

	// Dining payload (Data only).
	MsgKind core.MsgKind
	Color   int32
}

// Message reconstructs the dining message carried by a Data frame.
func (f Frame) Message() core.Message {
	return core.Message{Kind: f.MsgKind, From: int(f.From), To: int(f.To), Color: int(f.Color)}
}

// Clone returns a deep copy of f that is safe to retain after the
// decoding buffer or Frame it came from is reused — the copy-on-retain
// half of the zero-copy contract (DESIGN S24). Procs is the only
// reference field; everything else copies by value.
func (f Frame) Clone() Frame {
	if f.Procs != nil {
		f.Procs = append([]uint32(nil), f.Procs...)
	}
	return f
}

// FrameSize returns the exact encoded size of f including the 4-byte
// length prefix, so encoders can size a buffer in one allocation. It
// mirrors AppendPayload's layout byte for byte (golden tests pin the
// equivalence). Unknown kinds return 0.
func FrameSize(f Frame) int {
	const overhead = 4 + 2 + crcLen // length prefix + version/kind + CRC trailer
	switch f.Kind {
	case Hello:
		return overhead + 4 + 8 + 2 + 4*len(f.Procs)
	case Heartbeat:
		return overhead + 4 + 4
	case Data:
		return overhead + 4 + 4 + 8 + 8 + 1 + 4
	case Ack:
		return overhead + 4 + 4 + 8
	default:
		return 0
	}
}

// DataFrame builds a Data frame carrying m with ARQ sequence seq and
// piggybacked cumulative ack.
func DataFrame(m core.Message, seq, ack uint64) (Frame, error) {
	from, err := procID(m.From)
	if err != nil {
		return Frame{}, err
	}
	to, err := procID(m.To)
	if err != nil {
		return Frame{}, err
	}
	if m.Color < -1<<31 || m.Color > 1<<31-1 {
		return Frame{}, fmt.Errorf("%w: color %d", ErrBadValue, m.Color)
	}
	return Frame{
		Kind: Data, From: from, To: to, Seq: seq, Ack: ack,
		MsgKind: m.Kind, Color: int32(m.Color),
	}, nil
}

// procID converts a conflict-graph process ID to its wire form.
func procID(id int) (uint32, error) {
	if id < 0 || int64(id) > int64(^uint32(0)) {
		return 0, fmt.Errorf("%w: process ID %d", ErrBadValue, id)
	}
	return uint32(id), nil
}

// msgKindCode maps the dining alphabet onto wire bytes. The switch is
// exhaustive over core.MsgKind (kindexhaustive enforces it): adding a
// fifth message kind without extending the codec fails loudly here.
func msgKindCode(k core.MsgKind) (byte, error) {
	switch k {
	case core.Ping:
		return 1, nil
	case core.Ack:
		return 2, nil
	case core.Request:
		return 3, nil
	case core.Fork:
		return 4, nil
	default:
		return 0, fmt.Errorf("%w: message kind %v", ErrBadValue, k)
	}
}

// msgKindFromCode is the decode inverse of msgKindCode.
func msgKindFromCode(b byte) (core.MsgKind, error) {
	switch b {
	case 1:
		return core.Ping, nil
	case 2:
		return core.Ack, nil
	case 3:
		return core.Request, nil
	case 4:
		return core.Fork, nil
	default:
		return 0, fmt.Errorf("%w: message kind byte %d", ErrBadValue, b)
	}
}

// AppendPayload appends f's payload encoding (version byte, kind byte,
// kind-specific body, CRC32-C trailer — no length prefix) to dst and
// returns the extended slice.
func AppendPayload(dst []byte, f Frame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, Version, byte(f.Kind))
	switch f.Kind {
	case Hello:
		if len(f.Procs) > MaxHelloProcs {
			return nil, fmt.Errorf("%w: hello lists %d processes (max %d)", ErrBadValue, len(f.Procs), MaxHelloProcs)
		}
		dst = binary.LittleEndian.AppendUint32(dst, f.Node)
		dst = binary.LittleEndian.AppendUint64(dst, f.Incarnation)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Procs)))
		for _, p := range f.Procs {
			dst = binary.LittleEndian.AppendUint32(dst, p)
		}
	case Heartbeat:
		dst = binary.LittleEndian.AppendUint32(dst, f.From)
		dst = binary.LittleEndian.AppendUint32(dst, f.To)
	case Data:
		if f.Seq == 0 {
			return nil, fmt.Errorf("%w: data frame with sequence 0", ErrBadValue)
		}
		code, err := msgKindCode(f.MsgKind)
		if err != nil {
			return nil, err
		}
		dst = binary.LittleEndian.AppendUint32(dst, f.From)
		dst = binary.LittleEndian.AppendUint32(dst, f.To)
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, f.Ack)
		dst = append(dst, code)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Color))
	case Ack:
		dst = binary.LittleEndian.AppendUint32(dst, f.From)
		dst = binary.LittleEndian.AppendUint32(dst, f.To)
		dst = binary.LittleEndian.AppendUint64(dst, f.Ack)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(f.Kind))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli)), nil
}

// EncodePayload returns f's payload encoding.
func EncodePayload(f Frame) ([]byte, error) {
	return AppendPayload(nil, f)
}

// AppendFrame appends the full framing — uint32 little-endian payload
// length, then the payload — to dst.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err := AppendPayload(dst, f)
	if err != nil {
		return nil, err
	}
	n := len(dst) - start - 4
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, n)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

// reader is a strict decode cursor over one payload.
type reader struct {
	b   []byte
	off int
}

func (r *reader) u8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, ErrShort
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, ErrShort
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, ErrShort
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, ErrShort
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// DecodePayload strictly decodes one payload: checksum mismatch, wrong
// version, unknown kind, truncated body, illegal field values, and
// trailing bytes are all errors. On success the returned frame
// re-encodes to exactly b. The CRC32-C trailer is verified before any
// field is interpreted, so a spliced or corrupted byte stream is
// rejected wholesale rather than half-parsed.
func DecodePayload(b []byte) (Frame, error) {
	var f Frame
	if err := DecodePayloadInto(&f, b); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// DecodePayloadInto is the allocation-free form of DecodePayload: it
// decodes one payload into *f, reusing f.Procs' backing array when its
// capacity suffices (the only variable-length field). Every other field
// is overwritten unconditionally, so a reused Frame never leaks state
// between frames. This is the hot-path entry the zero-copy Decoder
// uses; b may be a view into a shared read buffer because no decoded
// field retains a reference into it. On error f holds no meaningful
// frame and must not be interpreted.
func DecodePayloadInto(f *Frame, b []byte) error {
	procs := f.Procs
	*f = Frame{}
	if len(b) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrOversize, len(b))
	}
	if len(b) < crcLen {
		return ErrShort
	}
	body, sum := b[:len(b)-crcLen], binary.LittleEndian.Uint32(b[len(b)-crcLen:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, sum)
	}
	r := &reader{b: body}
	ver, err := r.u8()
	if err != nil {
		return err
	}
	if ver != Version {
		return fmt.Errorf("%w: %d (want %d)", ErrBadVersion, ver, Version)
	}
	kind, err := r.u8()
	if err != nil {
		return err
	}
	f.Kind = FrameKind(kind)
	switch f.Kind {
	case Hello:
		if f.Node, err = r.u32(); err != nil {
			return err
		}
		if f.Incarnation, err = r.u64(); err != nil {
			return err
		}
		count, err := r.u16()
		if err != nil {
			return err
		}
		if int(count) > MaxHelloProcs {
			return fmt.Errorf("%w: hello lists %d processes (max %d)", ErrBadValue, count, MaxHelloProcs)
		}
		if count > 0 {
			if cap(procs) >= int(count) {
				f.Procs = procs[:count]
			} else {
				f.Procs = make([]uint32, count)
			}
			for i := range f.Procs {
				if f.Procs[i], err = r.u32(); err != nil {
					f.Procs = nil
					return err
				}
			}
		}
	case Heartbeat:
		if f.From, err = r.u32(); err != nil {
			return err
		}
		if f.To, err = r.u32(); err != nil {
			return err
		}
	case Data:
		if f.From, err = r.u32(); err != nil {
			return err
		}
		if f.To, err = r.u32(); err != nil {
			return err
		}
		if f.Seq, err = r.u64(); err != nil {
			return err
		}
		if f.Seq == 0 {
			return fmt.Errorf("%w: data frame with sequence 0", ErrBadValue)
		}
		if f.Ack, err = r.u64(); err != nil {
			return err
		}
		code, err := r.u8()
		if err != nil {
			return err
		}
		if f.MsgKind, err = msgKindFromCode(code); err != nil {
			return err
		}
		color, err := r.u32()
		if err != nil {
			return err
		}
		f.Color = int32(color)
	case Ack:
		if f.From, err = r.u32(); err != nil {
			return err
		}
		if f.To, err = r.u32(); err != nil {
			return err
		}
		if f.Ack, err = r.u64(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.b)-r.off)
	}
	return nil
}

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame from r. It returns the
// underlying read error verbatim (io.EOF on a clean close before the
// prefix), and a codec error on an oversized prefix or a payload that
// fails strict decoding.
func ReadFrame(r io.Reader) (Frame, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: length prefix %d", ErrOversize, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return DecodePayload(body)
}

// String implements fmt.Stringer for trace readability.
func (f Frame) String() string {
	switch f.Kind {
	case Hello:
		return fmt.Sprintf("hello[node=%d inc=%d procs=%v]", f.Node, f.Incarnation, f.Procs)
	case Heartbeat:
		return fmt.Sprintf("heartbeat[%d→%d]", f.From, f.To)
	case Data:
		return fmt.Sprintf("data[seq=%d ack=%d %v]", f.Seq, f.Ack, f.Message())
	case Ack:
		return fmt.Sprintf("ack[%d→%d ack=%d]", f.From, f.To, f.Ack)
	default:
		return fmt.Sprintf("frame(%d)", uint8(f.Kind))
	}
}
