package remote

import (
	"bytes"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// fuzzVictim boots a single accepting node (node 1 of a 2-clique; node
// 0's address exists on the network but hosts nothing) on the virtual
// network and returns it with its clock and a raw connection dialed
// from node 0's address — the exact byte stream an accepted transport
// connection reads.
func fuzzVictim(t *testing.T) (*Node, *netsim.Clock, net.Conn) {
	t.Helper()
	clk := netsim.NewClock()
	clk.Yield = 0
	nw := netsim.NewNet(clk, 1)
	ln, err := nw.Host("n1").Listen()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewTopology(graph.Clique(2), []NodeSpec{
		{Addr: "n0", Procs: []int{0}}, {Addr: "n1", Procs: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{
		Topology:        topo,
		Node:            1,
		HeartbeatPeriod: 5 * time.Millisecond,
		InitialTimeout:  200 * time.Millisecond,
		EatTime:         time.Millisecond,
		ThinkTime:       time.Millisecond,
		RTO:             15 * time.Millisecond,
		DialBackoff:     10 * time.Millisecond,
		Listener:        ln,
		Seed:            1,
		Clock:           clk,
		Dial: func(addr string) (net.Conn, error) {
			return nw.Host("n1").Dial(addr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := nw.Host("n0").Dial("n1")
	if err != nil {
		stopPumped(clk, n)
		t.Fatal(err)
	}
	return n, clk, c
}

// feedInbound plays one post-accept byte stream at the victim node:
// write, let virtual time run far past the handshake timeout and a few
// retransmission/heartbeat cycles, then tear everything down. The only
// assertions are implicit — no panic anywhere in the transport, and
// Stop returning proves every spawned goroutine was joined.
func feedInbound(t *testing.T, stream []byte) {
	t.Helper()
	n, clk, c := fuzzVictim(t)
	if len(stream) > 0 {
		if _, err := c.Write(stream); err != nil {
			t.Fatalf("virtual write: %v", err)
		}
	}
	// Drain whatever the node replies (a Hello, acks) so its writes hit
	// a live reader, and surface the node's view of the stream ending.
	go func() {
		var buf [512]byte
		for {
			if _, err := c.Read(buf[:]); err != nil {
				return
			}
		}
	}()
	clk.Advance(2 * handshakeTimeout)
	c.Close()
	clk.Advance(100 * time.Millisecond)
	stopPumped(clk, n)
	if err := n.Err(); err != nil {
		// A hostile byte stream may at worst trip a dining invariant on
		// the victim's process (it legitimately crashes the process, never
		// the node). That is the documented failure containment, not a
		// transport bug.
		t.Logf("process fell (contained): %v", err)
	}
}

// fuzzSeedStreams builds the committed interesting cases: a valid
// handshake, truncated hellos, a handshake followed by data frames cut
// mid-frame (what a connection reset leaves behind), duplicated
// hellos, and framing-level garbage.
func fuzzSeedStreams(t interface{ Fatal(args ...any) }) [][]byte {
	frame := func(fr wire.Frame) []byte {
		var b bytes.Buffer
		if err := wire.WriteFrame(&b, fr); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	hello := frame(wire.Frame{Kind: wire.Hello, Node: 0, Incarnation: 7, Procs: []uint32{0}})
	df := func(seq, ack uint64) []byte {
		fr, err := wire.DataFrame(core.Message{Kind: core.Ping, From: 0, To: 1}, seq, ack)
		if err != nil {
			t.Fatal(err)
		}
		return frame(fr)
	}
	ping := df(1, 0)
	hb := frame(wire.Frame{Kind: wire.Heartbeat, From: 0, To: 1})

	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	return [][]byte{
		{},
		hello,
		hello[:3],                      // truncated hello: inside the length prefix
		hello[:len(hello)-2],           // truncated hello: mid-frame reset
		cat(hello, hello),              // duplicate hello on one connection
		cat(hello, ping),               // clean handshake plus one dining frame
		cat(hello, ping[:len(ping)-3]), // data frame cut mid-frame
		cat(hello, hb, ping, ping),     // duplicate delivery attempt
		cat(hello, []byte{0xff, 0xff, 0xff, 0xff, 0x00}), // oversized length prefix after handshake
		{0x00, 0x00, 0x00, 0x00},                         // zero-length frame
		bytes.Repeat([]byte{0xa5}, 64),                   // pure garbage
		// Coalesced-era shapes: a whole writev burst in one splice, the
		// same burst cut at an iovec boundary mid-frame, and a forged
		// batched cumulative ack acknowledging seqs never sent.
		cat(hello, df(1, 0), df(2, 0), df(3, 0)),
		cat(hello, df(1, 0), df(2, 0))[:len(hello)+2*len(ping)-7],
		cat(hello, df(1, 0), frame(wire.Frame{Kind: wire.Ack, From: 1, To: 0, Ack: 1 << 40})),
	}
}

// FuzzTransportInbound throws arbitrary post-accept byte streams at a
// node's inbound transport path (serverHandshake and the adopted
// connection's frame loop). The transport must never panic and must
// always join its goroutines on Stop, whatever bytes arrive — the
// wire codec's validation plus CRC trailer turn every corruption into
// a clean connection teardown.
func FuzzTransportInbound(f *testing.F) {
	for _, s := range fuzzSeedStreams(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, stream []byte) {
		feedInbound(t, stream)
	})
}

// TestTransportInboundSeedsNoLeak replays every committed seed stream
// sequentially and checks the process goroutine count returns to its
// starting level — the explicit no-goroutine-leak assertion that the
// fuzz target itself cannot make (fuzz workers run concurrently).
func TestTransportInboundSeedsNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i, s := range fuzzSeedStreams(t) {
		t.Logf("seed stream %d (%d bytes)", i, len(s))
		feedInbound(t, s)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
