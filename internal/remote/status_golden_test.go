package remote

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"repro/internal/graph"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// Volatile parts of the /status document: run-dependent counters and
// states are pinned to fixed values so the golden compares structure —
// field names, order, nesting, indentation — not one run's numbers.
var (
	statusStateRe  = regexp.MustCompile(`"state": "[^"]*"`)
	statusCountRe  = regexp.MustCompile(`"(eat_count|sessions|connects|retransmits|dup_suppressed|writer_drops|max_edge_occupancy|coalesced|stalls|wedges|depth|peak_depth|bytes)": \d+`)
	statusBoolRe   = regexp.MustCompile(`"connected": (?:true|false)`)
	statusSuspects = regexp.MustCompile(`\n\s*"suspects": \[[^\]]*\],?`)
	statusHealthRe = regexp.MustCompile(`"health": "[^"]*"`)
	// The transition tally depends on connect/reconnect timing, so both
	// its keys and counts are run-dependent; drop the whole object.
	statusStepsRe = regexp.MustCompile(`\n\s*"health_steps": \{[^}]*\},?`)
)

func normalizeStatusJSON(b []byte) []byte {
	b = statusStateRe.ReplaceAll(b, []byte(`"state": "X"`))
	b = statusCountRe.ReplaceAll(b, []byte(`"$1": 0`))
	b = statusBoolRe.ReplaceAll(b, []byte(`"connected": true`))
	b = statusSuspects.ReplaceAll(b, nil)
	b = statusHealthRe.ReplaceAll(b, []byte(`"health": "X"`))
	b = statusStepsRe.ReplaceAll(b, nil)
	return b
}

// TestStatusGolden pins the dinerd /status JSON document — the
// monitoring contract scripts scrape — against
// testdata/status.golden. Node addresses come from the virtual
// network, so apart from the normalized counters the document is
// stable across runs and machines. Regenerate with
//
//	go test ./internal/remote/ -run TestStatusGolden -update
//
// after an intentional schema change, and review the diff as part of
// the change.
func TestStatusGolden(t *testing.T) {
	g := graph.Clique(2)
	nodes, clk := virtCluster(t, g, [][]int{{0}, {1}}, nil)
	waitEatsV(t, clk, nodes, nil, 1, 20*time.Second)

	rec := httptest.NewRecorder()
	nodes[0].Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/status returned %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/status Content-Type = %q, want application/json", ct)
	}
	got := normalizeStatusJSON(rec.Body.Bytes())

	path := filepath.Join("testdata", "status.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("/status JSON drifted from golden (run with -update if intentional):\ngot:\n%s\nwant:\n%s", got, want)
	}
}
