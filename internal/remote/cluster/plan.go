package cluster

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// PlanConfig parameterizes one scripted chaos run on the virtual
// network: an arbitrary conflict graph (process i lives alone on node
// i, addressed NodeAddr(i)), an explicit netsim.ChaosPlan, and the
// cluster tuning. Zero durations pick the chaos-soak defaults. This is
// the data-driven seam of the harness: RunChaosSoak derives its plan
// from a seed, the scenario engine compiles one from a scenario file,
// and both execute it here.
type PlanConfig struct {
	// Seed feeds network jitter and the per-node RNGs. 0 is valid.
	Seed int64
	// Graph is the conflict graph. Required.
	Graph *graph.Graph
	// Plan is the fault schedule, with addresses NodeAddr(0..N-1).
	Plan netsim.ChaosPlan
	// OvertakeK is the waiting bound the anchor search moves past
	// (default 2, the paper's ◇2-BW constant).
	OvertakeK int
	// MinSessions is the teeth of the anchor search: completed
	// post-anchor hungry sessions demanded of every live process before
	// the monitors are re-read (default 2).
	MinSessions int
	// WaitCap bounds the extra virtual time each goal-driven wait may
	// consume past the plan's Duration (default 12s).
	WaitCap time.Duration

	HeartbeatPeriod  time.Duration // default 10ms
	InitialTimeout   time.Duration // default 120ms
	TimeoutIncrement time.Duration // default 60ms
	EatTime          time.Duration // default 4ms
	ThinkTime        time.Duration // default 4ms
	RTO              time.Duration // default 20ms
	DialBackoff      time.Duration // zero keeps remote's default
	DialBackoffMax   time.Duration // zero keeps remote's default
	SendWindow       int           // zero keeps remote's default
	Logf             func(format string, args ...any)
}

// PlanRun is the outcome of one scripted run: the stopped-or-running
// cluster (the caller owns Stop), the executed plan, and the
// stabilization search result. Property verdicts are the caller's job
// — RunChaosSoak and the scenario checkers read the cluster's monitors
// through their own rules.
type PlanRun struct {
	// Cluster is still running; the caller must Stop it.
	Cluster *Cluster
	// Plan is the executed schedule.
	Plan netsim.ChaosPlan
	// Addrs are the node addresses, index-aligned with the graph.
	Addrs []string
	// Blast is the crash/restart blast radius of the plan.
	Blast map[int]bool
	// StableAt is the stabilization anchor the search settled on (or
	// its last position if it never settled).
	StableAt sim.Time
	// Settled reports that the anchor search converged within its
	// iteration budget.
	Settled bool
	// WaitErr, when non-nil, is the session-wait timeout that aborted
	// the anchor search: the cluster stopped completing sessions, which
	// is wait-freedom failing at the harness level.
	WaitErr error
}

// NodeAddr is the virtual-network address of node i.
func NodeAddr(i int) string { return fmt.Sprintf("n%d", i) }

// anchorIterBudget bounds the anchor-seeking stabilization search; a
// run whose violations never cease exhausts it and reports !Settled.
const anchorIterBudget = 8

// RunPlan executes one scripted fault schedule against a full
// remote-stack cluster on the virtual network, then runs the
// anchor-seeking stabilization search: start at the final heal, and
// while an exclusion violation or an over-K bounded-waiting window
// still starts at or after the anchor, move past it and look again —
// the paper's guarantees are all of the form "there is a time after
// which ...", so the search's job is to find that time and prove a
// non-trivial suffix is clean. Each iteration demands MinSessions
// fresh post-anchor sessions from every live process before re-reading
// the monitors, so a converged anchor is never vacuous.
//
// The returned error covers harness malfunctions (cluster
// construction, a restart that could not bind); the session-wait
// timeout is reported in PlanRun.WaitErr instead, because "no
// progress" is a property verdict, not a harness failure.
func RunPlan(cfg PlanConfig) (*PlanRun, error) {
	if cfg.OvertakeK == 0 {
		cfg.OvertakeK = 2
	}
	if cfg.MinSessions == 0 {
		cfg.MinSessions = 2
	}
	if cfg.WaitCap == 0 {
		cfg.WaitCap = soakWaitCap
	}
	if cfg.HeartbeatPeriod == 0 {
		cfg.HeartbeatPeriod = 10 * time.Millisecond
	}
	if cfg.InitialTimeout == 0 {
		cfg.InitialTimeout = 120 * time.Millisecond
	}
	if cfg.TimeoutIncrement == 0 {
		cfg.TimeoutIncrement = 60 * time.Millisecond
	}
	if cfg.EatTime == 0 {
		cfg.EatTime = 4 * time.Millisecond
	}
	if cfg.ThinkTime == 0 {
		cfg.ThinkTime = 4 * time.Millisecond
	}
	if cfg.RTO == 0 {
		cfg.RTO = 20 * time.Millisecond
	}

	clk := netsim.NewClock()
	// Settle with scheduler yields alone: the real-time pause is a
	// fidelity knob, not a correctness one — the anchor-seeking search
	// below already tolerates simulated processing lag, and skipping the
	// sleeps cuts wall time several-fold on small machines.
	clk.Yield = 0
	nw := netsim.NewNet(clk, cfg.Seed)
	n := cfg.Graph.N()
	addrs := make([]string, n)
	placement := make([][]int, n)
	for i := range addrs {
		addrs[i] = NodeAddr(i)
		placement[i] = []int{i}
	}

	cl, err := New(cfg.Graph, placement, Options{
		HeartbeatPeriod:  cfg.HeartbeatPeriod,
		InitialTimeout:   cfg.InitialTimeout,
		TimeoutIncrement: cfg.TimeoutIncrement,
		EatTime:          cfg.EatTime,
		ThinkTime:        cfg.ThinkTime,
		RTO:              cfg.RTO,
		DialBackoff:      cfg.DialBackoff,
		DialBackoffMax:   cfg.DialBackoffMax,
		SendWindow:       cfg.SendWindow,
		Seed:             cfg.Seed + 1,
		Logf:             cfg.Logf,
		Network:          nw,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}

	// Execute the schedule. Times are absolute offsets; Kill may pump
	// the clock past an event's instant, in which case the event
	// applies as soon as scripted time catches up. Virtual time must be
	// advanced in bounded steps, never one leap per event: a goroutine
	// that falls behind a sweeping clock stamps its next chunk after the
	// clock's final resting point, so the delivery wake only fires on
	// the NEXT Advance — one big jump harvests roughly one message hop
	// per call and can freeze an entire handshake chain.
	for _, ev := range cfg.Plan.Events {
		advanceTo(clk, ev.At)
		if err := applyChaos(cl, nw, ev); err != nil {
			cl.Stop()
			return nil, err
		}
	}
	advanceTo(clk, cfg.Plan.Duration)

	pr := &PlanRun{
		Cluster: cl,
		Plan:    cfg.Plan,
		Addrs:   addrs,
		Blast:   BlastRadius(cfg.Graph, cfg.Plan, addrs),
	}

	pr.StableAt, pr.Settled, pr.WaitErr = cl.AnchorSearch(
		sim.Time(cfg.Plan.HealAt()), cfg.OvertakeK, cfg.MinSessions, cfg.WaitCap)
	cl.FinishMonitors()
	return pr, nil
}

// AnchorSearch runs the anchor-seeking stabilization search against
// the running cluster: start the anchor at `start` (typically the
// final heal), and while an exclusion violation or an over-k
// bounded-waiting window still begins at or after the anchor, move
// past it and look again. Violations after the heal are legal while
// they last: the physical network is whole, but reconnect backoff
// (grown while the link was dead) can keep a link down for up to a
// full backoff cap afterwards, and until the handshake completes both
// sides legitimately eat under mutual suspicion. What must not happen
// is that they keep occurring: each iteration demands minSessions
// fresh post-anchor sessions from every live process (the teeth of
// the check) before re-reading the monitors, and a run whose
// violations never cease exhausts the iteration budget and returns
// settled=false. A session wait that times out aborts the search and
// is reported in waitErr — the cluster stopped completing sessions,
// which is wait-freedom failing. The caller still owns FinishMonitors.
func (c *Cluster) AnchorSearch(start sim.Time, k, minSessions int, waitCap time.Duration) (stable sim.Time, settled bool, waitErr error) {
	stable = start
	for iter := 0; iter < anchorIterBudget && !settled; iter++ {
		if err := c.WaitClosedSessions(stable, minSessions, waitCap); err != nil {
			return stable, false, err
		}
		moved := false
		if t, found := c.LastExclusionViolation(); found && t >= stable {
			stable = t + 1
			moved = true
		}
		if t, found := c.LastExcessOvertake(k); found && t >= stable {
			stable = t + 1
			moved = true
		}
		if !moved {
			settled = true
		}
	}
	return stable, settled, nil
}

// ClosedSessionsFrom counts, per process, completed hungry sessions
// starting at or after t. The overtake monitor emits one window per
// neighbor per session, all sharing the session's start time, so
// distinct start times count sessions.
func (c *Cluster) ClosedSessionsFrom(t sim.Time) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.g.N()
	out := make([]int, n)
	last := make([]sim.Time, n)
	seen := make([]bool, n)
	for _, w := range c.over.Windows() {
		if !w.Closed || w.HungryAt < t {
			continue
		}
		if !seen[w.Victim] || w.HungryAt != last[w.Victim] {
			out[w.Victim]++
			last[w.Victim] = w.HungryAt
			seen[w.Victim] = true
		}
	}
	return out
}

// WaitClosedSessions drives time until every live process has
// completed at least min hungry sessions starting at or after t — the
// teeth that keep an eventual-property assertion from passing over an
// empty suffix.
func (c *Cluster) WaitClosedSessions(t sim.Time, min int, timeout time.Duration) error {
	return c.waitCond(func() bool {
		ss := c.ClosedSessionsFrom(t)
		for id := 0; id < c.g.N(); id++ {
			if c.procDown(id) {
				continue
			}
			if ss[id] < min {
				return false
			}
		}
		return true
	}, timeout)
}

// WaitUntilElapsed drives time — virtual or wall, depending on the
// cluster's mode — until the cluster clock reaches t. Harnesses
// scripting absolute-offset events use it as their only clock.
func (c *Cluster) WaitUntilElapsed(t sim.Time, timeout time.Duration) error {
	return c.waitCond(func() bool { return c.now() >= t }, timeout)
}

// ErrsOutsideBlast checks that every node hosting only
// outside-blast-radius processes recorded no error; the detail string
// describes the first offender.
func (c *Cluster) ErrsOutsideBlast(blast map[int]bool) (bool, string) {
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if dead {
			continue
		}
		inBlast := false
		for _, p := range c.Topo.Nodes[ni].Procs {
			if blast[p] {
				inBlast = true
			}
		}
		if inBlast {
			continue
		}
		if err := n.Err(); err != nil {
			return false, fmt.Sprintf("node %d (outside blast radius): %v", ni, err)
		}
	}
	return true, ""
}

// BlastRadius collects the processes whose protocol state may
// legitimately be torn by a crash/restart episode: the restarted
// node's processes plus their conflict-graph neighbors (stale
// messages from either side can trip an invariant, which the runtime
// converts into a process crash — see rproc.act).
func BlastRadius(g *graph.Graph, plan netsim.ChaosPlan, addrs []string) map[int]bool {
	out := make(map[int]bool)
	for _, ev := range plan.Events {
		if ev.Kind != netsim.ChaosRestart {
			continue
		}
		for ni, a := range addrs {
			if a != ev.A {
				continue
			}
			// Placement is process i on node i.
			out[ni] = true
			for _, j := range g.Neighbors(ni) {
				out[j] = true
			}
		}
	}
	return out
}
