package cluster

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// TestFiveNodeWaitFreedom is the acceptance run for the real-network
// runtime: a 5-node loopback cluster (one philosopher per daemon,
// ring conflict graph) must let every process eat repeatedly, record
// zero exclusion violations after stabilization, and — after one node
// is killed mid-run — keep every correct process eating, including the
// dead node's direct neighbors (wait-freedom over real TCP).
func TestFiveNodeWaitFreedom(t *testing.T) {
	g := graph.Ring(5)
	c, err := New(g, [][]int{{0}, {1}, {2}, {3}, {4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Phase 1: converge. Everyone eats at least 3 times.
	if err := c.WaitEats(nil, 3, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	tStab := c.Now()

	// Phase 2: crash node 2 (hosting process 2) abruptly. Its ring
	// neighbors, processes 1 and 3, depend on the failure detector to
	// keep eating without process 2's fork.
	base := c.EatCounts()
	c.Kill(2)
	if err := c.WaitEats(base, 3, 90*time.Second); err != nil {
		t.Fatalf("correct processes starved after node kill: %v", err)
	}

	if err := c.Err(); err != nil {
		t.Fatalf("protocol invariant violated: %v", err)
	}
	if v := c.ExclusionViolationsAfter(tStab); v > 0 {
		t.Fatalf("%d exclusion violations among live neighbors after stabilization", v)
	}
	if s := c.Starving(time.Minute); len(s) > 0 {
		t.Fatalf("starving processes: %v", s)
	}
	// The paper's Section 7 bound is at most 4 app messages in transit
	// per edge. The sender-side measurement counts a message until its
	// cumulative ack returns, so ack latency can inflate it slightly
	// above the instantaneous in-flight count; 8 is a loose sanity lid.
	if occ := c.MaxEdgeOccupancy(); occ > 8 {
		t.Fatalf("edge occupancy high-water %d, want <= 8", occ)
	}
}

// TestMultiProcNodes packs several philosophers per daemon so both
// local and remote edges are exercised by the harness.
func TestMultiProcNodes(t *testing.T) {
	g := graph.Ring(6)
	c, err := New(g, [][]int{{0, 1}, {2, 3}, {4, 5}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.WaitEats(nil, 4, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
