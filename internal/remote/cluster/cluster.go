// Package cluster is a test harness for the real-network runtime: it
// stands up an N-node dining cluster and watches it with the same
// metrics monitors the simulator uses (exclusion violations,
// per-process progress, overtake counts), so the paper's properties —
// ◇WX, no starvation, wait-freedom under crashes, ◇2-BW — can be
// asserted against the real transport stack.
//
// The cluster runs in one of two modes:
//
//   - loopback TCP on the wall clock (the default): real sockets, real
//     time, suitable for smoke tests;
//   - a netsim virtual network on a virtual clock (Options.Network):
//     nothing moves unless the harness advances time, so minutes of
//     heartbeat/retransmission/reconnect activity replay in
//     milliseconds, and scripted fault schedules (netsim.ChaosPlan,
//     executed by RunChaosSoak) are reproducible per seed.
//
// Time is mapped onto sim.Time as nanoseconds since the cluster
// started — wall elapsed or virtual elapsed — which is all the
// monitors need (they only compare and subtract timestamps).
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/remote"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// Options tunes the cluster-wide daemon configuration. Zero values
// pick defaults suited to an unloaded CI runner: fast heartbeats but a
// generous detection timeout, so false suspicion — legal before
// stabilization, but noisy in a test — stays rare.
type Options struct {
	HeartbeatPeriod  time.Duration // default 10ms
	InitialTimeout   time.Duration // default 1s
	TimeoutIncrement time.Duration // default remote's (250ms)
	EatTime          time.Duration // default 1ms
	ThinkTime        time.Duration // default 1ms
	RTO              time.Duration // default 20ms
	Seed             int64         // default 1
	Logf             func(format string, args ...any)

	// DialBackoff / DialBackoffMax bound the reconnect schedule of
	// every node (defaults are remote's). Long-partition tests shrink
	// DialBackoffMax so a few virtual seconds of outage dwarfs the cap.
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
	// SendWindow is the per-ordered-pair ARQ ring capacity (default
	// remote's 256). Backpressure tests shrink it to force stalls.
	SendWindow int
	// WedgeBudget is the node watchdog's no-progress budget (default
	// remote's 2s).
	WedgeBudget time.Duration

	// Network, when non-nil, runs the cluster on the in-memory virtual
	// network instead of loopback TCP: node i binds address "n<i>" on
	// it, and every clock in the stack is the network's virtual clock.
	// The harness (or RunChaosSoak) then owns time via Advance.
	Network *netsim.Net
}

// Cluster is a running set of remote.Nodes plus shared monitors.
type Cluster struct {
	Topo  *remote.Topology
	Nodes []*remote.Node

	g     *graph.Graph
	opts  Options
	clk   vclock.Clock // wall clock; only read in TCP mode
	start time.Time
	vclk  *netsim.Clock // nil in TCP mode
	bg    sync.WaitGroup

	mu        sync.Mutex
	excl      *metrics.ExclusionMonitor
	prog      *metrics.ProgressMonitor
	over      *metrics.OvertakeMonitor
	killed    map[int]bool // node index -> stopped by Kill
	fallen    map[int]bool // proc id -> fell over (hook panic / tripped invariant)
	incarnSeq uint64
}

// New builds and starts one node per placement entry — on ephemeral
// loopback listeners, or on Options.Network when set. placement[i]
// lists the processes node i hosts and must partition the vertices of
// g.
func New(g *graph.Graph, placement [][]int, opts Options) (*Cluster, error) {
	if opts.HeartbeatPeriod == 0 {
		opts.HeartbeatPeriod = 10 * time.Millisecond
	}
	if opts.InitialTimeout == 0 {
		opts.InitialTimeout = time.Second
	}
	if opts.EatTime == 0 {
		opts.EatTime = time.Millisecond
	}
	if opts.ThinkTime == 0 {
		opts.ThinkTime = time.Millisecond
	}
	if opts.RTO == 0 {
		opts.RTO = 20 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	listeners := make([]net.Listener, len(placement))
	specs := make([]remote.NodeSpec, len(placement))
	for i, procs := range placement {
		ln, err := listenFor(opts.Network, i)
		if err != nil {
			closeAll(listeners[:i])
			return nil, err
		}
		listeners[i] = ln
		specs[i] = remote.NodeSpec{Addr: ln.Addr().String(), Procs: procs}
	}
	topo, err := remote.NewTopology(g, specs)
	if err != nil {
		closeAll(listeners)
		return nil, err
	}

	clk := vclock.Wall
	c := &Cluster{
		Topo:   topo,
		g:      g,
		opts:   opts,
		clk:    clk,
		start:  clk.Now(),
		excl:   metrics.NewExclusionMonitor(g),
		prog:   metrics.NewProgressMonitor(g.N()),
		over:   metrics.NewOvertakeMonitor(g),
		killed: make(map[int]bool),
		fallen: make(map[int]bool),
	}
	if opts.Network != nil {
		c.vclk = opts.Network.Clock()
	}
	for i := range placement {
		n, err := remote.NewNode(c.nodeConfig(i, listeners[i]))
		if err != nil {
			// No node has been Started yet, so no listener has been
			// adopted: close them all ourselves.
			c.stopStarted()
			closeAll(listeners)
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	for _, n := range c.Nodes {
		if err := n.Start(); err != nil {
			// Stop closes the listeners of nodes that Started; closing
			// the rest again is a harmless double-close.
			c.stopStarted()
			closeAll(listeners)
			return nil, err
		}
	}
	return c, nil
}

// listenFor binds node ni's transport listener in the right mode.
func listenFor(nw *netsim.Net, ni int) (net.Listener, error) {
	if nw == nil {
		return net.Listen("tcp", "127.0.0.1:0")
	}
	return nw.Host(fmt.Sprintf("n%d", ni)).Listen()
}

// nodeConfig assembles node ni's remote.Config (used at construction
// and again by Restart). Incarnations come from a cluster-wide counter
// so two boots at the same virtual instant still differ.
func (c *Cluster) nodeConfig(ni int, ln net.Listener) remote.Config {
	c.mu.Lock()
	c.incarnSeq++
	inc := c.incarnSeq
	c.mu.Unlock()
	cfg := remote.Config{
		Topology:         c.Topo,
		Node:             ni,
		HeartbeatPeriod:  c.opts.HeartbeatPeriod,
		InitialTimeout:   c.opts.InitialTimeout,
		TimeoutIncrement: c.opts.TimeoutIncrement,
		EatTime:          c.opts.EatTime,
		ThinkTime:        c.opts.ThinkTime,
		RTO:              c.opts.RTO,
		DialBackoff:      c.opts.DialBackoff,
		DialBackoffMax:   c.opts.DialBackoffMax,
		SendWindow:       c.opts.SendWindow,
		WedgeBudget:      c.opts.WedgeBudget,
		Seed:             c.opts.Seed + int64(ni) + int64(inc)*1000003,
		Incarnation:      inc,
		Listener:         ln,
		Observer:         c.observe,
		OnProcCrash:      c.procFell,
		Logf:             c.opts.Logf,
	}
	if c.opts.Network != nil {
		self := fmt.Sprintf("n%d", ni)
		cfg.Clock = c.vclk
		cfg.Dial = func(addr string) (net.Conn, error) {
			return c.opts.Network.Host(self).Dial(addr)
		}
	}
	return cfg
}

func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			ln.Close()
		}
	}
}

func (c *Cluster) stopStarted() {
	for _, n := range c.Nodes {
		c.stopNode(n)
	}
}

// stopNode stops one node. On the virtual network, Stop can block on
// goroutines waiting for virtual deadlines (an in-flight handshake
// read, a parked redial timer), so the harness pumps the clock until
// the node is down.
func (c *Cluster) stopNode(n *remote.Node) {
	if c.vclk == nil {
		n.Stop()
		return
	}
	done := make(chan struct{})
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		n.Stop()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
			c.vclk.Advance(10 * time.Millisecond)
		}
	}
}

// Advance moves virtual time forward (no-op in TCP mode). Tests drive
// all activity through it.
func (c *Cluster) Advance(d time.Duration) {
	if c.vclk != nil {
		c.vclk.Advance(d)
	}
}

// now maps elapsed cluster time onto the monitors' sim.Time axis.
func (c *Cluster) now() sim.Time {
	if c.vclk != nil {
		return sim.Time(c.vclk.Elapsed())
	}
	return sim.Time(c.clk.Now().Sub(c.start))
}

// observe feeds every dining transition, from every node, into the
// shared monitors. It runs on process goroutines across the whole
// cluster, so it is the one place the harness serializes.
func (c *Cluster) observe(proc int, from, to core.State) {
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.excl.OnTransition(at, proc, from, to)
	c.prog.OnTransition(at, proc, from, to)
	c.over.OnTransition(at, proc, from, to)
}

// procFell records a process that fell over on its own — a recovered
// hook panic or a tripped protocol invariant (the legal degradation
// mode of crash-recovery: a restarted process or its neighbors may be
// killed by a stale message). The monitors treat it as a crash so it
// stops counting toward starvation and fairness checks.
func (c *Cluster) procFell(proc int) {
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fallen[proc] = true
	c.excl.OnCrash(at, proc)
	c.prog.OnCrash(at, proc)
	c.over.OnCrash(at, proc)
}

// FallenProcs returns the processes that fell over on their own
// (independent of Kill), sorted by id.
func (c *Cluster) FallenProcs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for p := range c.fallen {
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Kill stops node ni abruptly — from its peers' point of view this is
// a crash of every process it hosts (the connections die and the
// heartbeats stop). The monitors are told so the crashed processes
// stop counting toward starvation and exclusion checks.
func (c *Cluster) Kill(ni int) {
	c.stopNode(c.Nodes[ni])
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.killed[ni] = true
	for _, p := range c.Topo.Nodes[ni].Procs {
		c.excl.OnCrash(at, p)
		c.prog.OnCrash(at, p)
		c.over.OnCrash(at, p)
	}
}

// Restart boots a fresh node at a killed node's address: new
// incarnation, fresh dining state, same topology slot — the paper's
// crash-recovery model. Peers detect the incarnation change at the
// next handshake and reset their per-pair ARQ state.
func (c *Cluster) Restart(ni int) error {
	c.mu.Lock()
	if !c.killed[ni] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: restart of node %d, which is not killed", ni)
	}
	c.mu.Unlock()

	ln, err := listenFor(c.opts.Network, ni)
	if err != nil {
		return fmt.Errorf("cluster: restart node %d: %w", ni, err)
	}
	n, err := remote.NewNode(c.nodeConfig(ni, ln))
	if err != nil {
		ln.Close()
		return fmt.Errorf("cluster: restart node %d: %w", ni, err)
	}
	if err := n.Start(); err != nil {
		return fmt.Errorf("cluster: restart node %d: %w", ni, err)
	}
	at := c.now()
	c.mu.Lock()
	c.Nodes[ni] = n
	c.killed[ni] = false
	for _, p := range c.Topo.Nodes[ni].Procs {
		delete(c.fallen, p)
		c.excl.OnRestart(at, p)
		c.prog.OnRestart(at, p)
		c.over.OnRestart(at, p)
	}
	c.mu.Unlock()
	return nil
}

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if !dead {
			c.stopNode(n)
		}
	}
	c.bg.Wait()
}

// EatCounts merges the per-process eat counters of every live node.
// Counters restart from zero when a node restarts; for monotonic
// progress accounting across restarts use Sessions.
func (c *Cluster) EatCounts() map[int]int {
	out := make(map[int]int)
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if dead {
			continue
		}
		for id, eats := range n.EatCounts() {
			out[id] = eats
		}
	}
	return out
}

// Sessions returns per-process completed hungry sessions as counted by
// the progress monitor — monotonic across node restarts.
func (c *Cluster) Sessions() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prog.CompletedSessions()
}

// WaitEats blocks until every process NOT hosted on a killed node has
// eaten at least min more times than base (nil base means zero), or
// the deadline passes. On the virtual network the timeout is virtual
// time, which the call itself advances; on TCP it is wall time.
func (c *Cluster) WaitEats(base map[int]int, min int, timeout time.Duration) error {
	check := func() bool {
		for id, eats := range c.EatCounts() {
			if eats-base[id] < min {
				return false
			}
		}
		return true
	}
	err := c.waitCond(check, timeout)
	if err != nil {
		return fmt.Errorf("cluster: timeout waiting for %d eats over %v; counts %v", min, base, c.EatCounts())
	}
	return c.Err()
}

// WaitSessions advances/polls until every live process (not killed,
// not fallen) has completed at least min sessions more than base, or
// the (virtual respectively wall) timeout passes.
func (c *Cluster) WaitSessions(base []int, min int, timeout time.Duration) error {
	check := func() bool {
		cur := c.Sessions()
		for id := range cur {
			if c.procDown(id) {
				continue
			}
			b := 0
			if base != nil {
				b = base[id]
			}
			if cur[id]-b < min {
				return false
			}
		}
		return true
	}
	if err := c.waitCond(check, timeout); err != nil {
		return fmt.Errorf("cluster: timeout waiting for %d sessions over %v; sessions %v", min, base, c.Sessions())
	}
	return nil
}

// procDown reports whether process id is on a killed node or has
// fallen over.
func (c *Cluster) procDown(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fallen[id] {
		return true
	}
	return c.killed[c.Topo.NodeOf(id)]
}

// waitCond drives time until check passes: by advancing the virtual
// clock in heartbeat-sized steps (virtual mode), or by sleeping
// between polls (TCP mode).
func (c *Cluster) waitCond(check func() bool, timeout time.Duration) error {
	if c.vclk != nil {
		step := 5 * time.Millisecond
		for advanced := time.Duration(0); ; advanced += step {
			if check() {
				return nil
			}
			if advanced >= timeout {
				return fmt.Errorf("cluster: virtual timeout after %v", advanced)
			}
			c.vclk.Advance(step)
		}
	}
	deadline := c.clk.Now().Add(timeout)
	tick := c.clk.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if check() {
			return nil
		}
		if c.clk.Now().After(deadline) {
			return fmt.Errorf("cluster: timeout after %v", timeout)
		}
		<-tick.C()
	}
}

// Err returns the first protocol-invariant error recorded by any live
// node (nil if the run is clean).
func (c *Cluster) Err() error {
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if dead {
			continue
		}
		if err := n.Err(); err != nil {
			return fmt.Errorf("node %d: %w", ni, err)
		}
	}
	return nil
}

// ExclusionViolationsAfter returns how many times two live neighbors
// ate simultaneously at or after t (◇WX says this count must hit zero
// for t past stabilization).
func (c *Cluster) ExclusionViolationsAfter(t sim.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.excl.CountAfter(t)
}

// LastExclusionViolation returns the time of the latest recorded
// simultaneous-eating violation and whether any occurred.
func (c *Cluster) LastExclusionViolation() (sim.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.excl.LastViolation()
}

// MaxOvertakeFrom returns the largest overtake count among bounded-
// waiting windows whose hungry session began at or after t (Theorem
// 3's ◇2-BW: ≤2 for t past stabilization).
func (c *Cluster) MaxOvertakeFrom(t sim.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.over.MaxCountFrom(t)
}

// LastExcessOvertake returns the start of the latest bounded-waiting
// window exceeding k, and whether one exists.
func (c *Cluster) LastExcessOvertake(k int) (sim.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.over.LastExcessWindow(k)
}

// OvertakeWindowsFrom counts closed bounded-waiting windows per victim
// whose hungry session began at or after t — the "teeth" check that a
// fairness assertion actually covered sessions.
func (c *Cluster) OvertakeWindowsFrom(t sim.Time) map[int]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int)
	for _, w := range c.over.Windows() {
		if w.Closed && w.HungryAt >= t {
			out[w.Victim]++
		}
	}
	return out
}

// FinishMonitors closes still-open monitor windows at the current
// time. Call once, after the run's last activity, before reading
// overtake results.
func (c *Cluster) FinishMonitors() {
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.over.Finish(at)
}

// Starving returns processes that have been hungry without eating for
// at least olderThan (crashed processes excluded).
func (c *Cluster) Starving(olderThan time.Duration) []int {
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prog.Starving(at, sim.Time(olderThan))
}

// Now reports the cluster clock (nanoseconds since start), for
// anchoring ExclusionViolationsAfter checks.
func (c *Cluster) Now() sim.Time { return c.now() }

// MaxEdgeOccupancy is the largest per-edge application-message
// high-water mark any node measured (the paper's Section 7 quantity).
func (c *Cluster) MaxEdgeOccupancy() int {
	max := 0
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if dead {
			continue
		}
		if v := n.MaxEdgeOccupancy(); v > max {
			max = v
		}
	}
	return max
}

// MaxPairDepth is the largest per-ordered-pair ARQ queue high-water
// mark any live node measured. The bounded-window contract says this
// never exceeds SendWindow, under any schedule.
func (c *Cluster) MaxPairDepth() int {
	max := 0
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if dead {
			continue
		}
		if v := n.MaxPairDepth(); v > max {
			max = v
		}
	}
	return max
}

// QueuedFrameBytes sums the encoded bytes currently parked in ARQ
// rings across live nodes — the quantity that must stay flat (not
// grow with outage length) across a long partition.
func (c *Cluster) QueuedFrameBytes() int {
	total := 0
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if dead {
			continue
		}
		total += n.QueuedFrameBytes()
	}
	return total
}

// SendWindow reports the configured per-pair ARQ window (uniform
// across nodes).
func (c *Cluster) SendWindow() int {
	if len(c.Nodes) == 0 {
		return 0
	}
	return c.Nodes[0].SendWindow()
}
