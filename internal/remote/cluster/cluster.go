// Package cluster is a test harness for the real-network runtime: it
// stands up an N-node dining cluster on localhost loopback TCP and
// watches it with the same metrics monitors the simulator uses
// (exclusion violations, per-process progress), so the paper's
// properties — ◇WX, no starvation, wait-freedom under crashes — can be
// asserted against real sockets instead of the simulated network.
//
// Wall-clock time is mapped onto sim.Time as nanoseconds since the
// cluster started, which is all the monitors need (they only compare
// and subtract timestamps).
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/remote"
	"repro/internal/sim"
)

// Options tunes the cluster-wide daemon configuration. Zero values
// pick defaults suited to an unloaded CI runner: fast heartbeats but a
// generous detection timeout, so false suspicion — legal before
// stabilization, but noisy in a test — stays rare.
type Options struct {
	HeartbeatPeriod time.Duration // default 10ms
	InitialTimeout  time.Duration // default 1s
	EatTime         time.Duration // default 1ms
	ThinkTime       time.Duration // default 1ms
	RTO             time.Duration // default 20ms
	Seed            int64         // default 1
	Logf            func(format string, args ...any)
}

// Cluster is a running set of remote.Nodes plus shared monitors.
type Cluster struct {
	Topo  *remote.Topology
	Nodes []*remote.Node

	start time.Time

	mu     sync.Mutex
	excl   *metrics.ExclusionMonitor
	prog   *metrics.ProgressMonitor
	killed map[int]bool // node index -> stopped by Kill
}

// New builds and starts one node per placement entry, all on ephemeral
// loopback listeners. placement[i] lists the processes node i hosts
// and must partition the vertices of g.
func New(g *graph.Graph, placement [][]int, opts Options) (*Cluster, error) {
	if opts.HeartbeatPeriod == 0 {
		opts.HeartbeatPeriod = 10 * time.Millisecond
	}
	if opts.InitialTimeout == 0 {
		opts.InitialTimeout = time.Second
	}
	if opts.EatTime == 0 {
		opts.EatTime = time.Millisecond
	}
	if opts.ThinkTime == 0 {
		opts.ThinkTime = time.Millisecond
	}
	if opts.RTO == 0 {
		opts.RTO = 20 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	listeners := make([]net.Listener, len(placement))
	specs := make([]remote.NodeSpec, len(placement))
	for i, procs := range placement {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(listeners[:i])
			return nil, err
		}
		listeners[i] = ln
		specs[i] = remote.NodeSpec{Addr: ln.Addr().String(), Procs: procs}
	}
	topo, err := remote.NewTopology(g, specs)
	if err != nil {
		closeAll(listeners)
		return nil, err
	}

	c := &Cluster{
		Topo:   topo,
		start:  time.Now(),
		excl:   metrics.NewExclusionMonitor(g),
		prog:   metrics.NewProgressMonitor(g.N()),
		killed: make(map[int]bool),
	}
	for i := range placement {
		cfg := remote.Config{
			Topology:        topo,
			Node:            i,
			HeartbeatPeriod: opts.HeartbeatPeriod,
			InitialTimeout:  opts.InitialTimeout,
			EatTime:         opts.EatTime,
			ThinkTime:       opts.ThinkTime,
			RTO:             opts.RTO,
			Seed:            opts.Seed + int64(i),
			Listener:        listeners[i],
			Observer:        c.observe,
			Logf:            opts.Logf,
		}
		n, err := remote.NewNode(cfg)
		if err != nil {
			// No node has been Started yet, so no listener has been
			// adopted: close them all ourselves.
			c.stopStarted()
			closeAll(listeners)
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	for _, n := range c.Nodes {
		if err := n.Start(); err != nil {
			// Stop closes the listeners of nodes that Started; closing
			// the rest again is a harmless double-close.
			c.stopStarted()
			closeAll(listeners)
			return nil, err
		}
	}
	return c, nil
}

func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			ln.Close()
		}
	}
}

func (c *Cluster) stopStarted() {
	for _, n := range c.Nodes {
		n.Stop()
	}
}

// now maps wall clock onto the monitors' sim.Time axis.
func (c *Cluster) now() sim.Time { return sim.Time(time.Since(c.start)) }

// observe feeds every dining transition, from every node, into the
// shared monitors. It runs on process goroutines across the whole
// cluster, so it is the one place the harness serializes.
func (c *Cluster) observe(proc int, from, to core.State) {
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.excl.OnTransition(at, proc, from, to)
	c.prog.OnTransition(at, proc, from, to)
}

// Kill stops node ni abruptly — from its peers' point of view this is
// a crash of every process it hosts (the TCP connections die and the
// heartbeats stop). The monitors are told so the crashed processes
// stop counting toward starvation and exclusion checks.
func (c *Cluster) Kill(ni int) {
	c.Nodes[ni].Stop()
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.killed[ni] = true
	for _, p := range c.Topo.Nodes[ni].Procs {
		c.excl.OnCrash(at, p)
		c.prog.OnCrash(at, p)
	}
}

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if !dead {
			n.Stop()
		}
	}
}

// EatCounts merges the per-process eat counters of every live node.
func (c *Cluster) EatCounts() map[int]int {
	out := make(map[int]int)
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if dead {
			continue
		}
		for id, eats := range n.EatCounts() {
			out[id] = eats
		}
	}
	return out
}

// WaitEats blocks until every process NOT hosted on a killed node has
// eaten at least min more times than base (nil base means zero), or
// the deadline passes.
func (c *Cluster) WaitEats(base map[int]int, min int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		counts := c.EatCounts()
		done := true
		for id, eats := range counts {
			if eats-base[id] < min {
				done = false
			}
		}
		if done {
			return c.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: timeout waiting for %d eats over %v; counts %v", min, base, counts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Err returns the first protocol-invariant error recorded by any live
// node (nil if the run is clean).
func (c *Cluster) Err() error {
	for ni, n := range c.Nodes {
		c.mu.Lock()
		dead := c.killed[ni]
		c.mu.Unlock()
		if dead {
			continue
		}
		if err := n.Err(); err != nil {
			return fmt.Errorf("node %d: %w", ni, err)
		}
	}
	return nil
}

// ExclusionViolationsAfter returns how many times two live neighbors
// ate simultaneously at or after t (◇WX says this count must hit zero
// for t past stabilization).
func (c *Cluster) ExclusionViolationsAfter(t sim.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.excl.CountAfter(t)
}

// Starving returns processes that have been hungry without eating for
// at least olderThan (crashed processes excluded).
func (c *Cluster) Starving(olderThan time.Duration) []int {
	at := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prog.Starving(at, sim.Time(olderThan))
}

// Now reports the cluster clock (nanoseconds since start), for
// anchoring ExclusionViolationsAfter checks.
func (c *Cluster) Now() sim.Time { return c.now() }

// MaxEdgeOccupancy is the largest per-edge application-message
// high-water mark any node measured (the paper's Section 7 quantity).
func (c *Cluster) MaxEdgeOccupancy() int {
	max := 0
	for _, n := range c.Nodes {
		if v := n.MaxEdgeOccupancy(); v > max {
			max = v
		}
	}
	return max
}
