package cluster

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// SoakConfig parameterizes one seeded chaos-soak run on the virtual
// network.
type SoakConfig struct {
	// Seed derives the fault schedule and all jitter. Required (0 is a
	// valid seed).
	Seed int64
	// Nodes is the ring size (default 5); process i lives on node i.
	Nodes int
	// Duration is the virtual length of the scripted plan (default 8s).
	// Roughly the first 55% is the chaos window, the rest the
	// stabilization tail; the run advances further past Duration if the
	// fairness checks need more sessions.
	Duration time.Duration
	// Plan overrides the generated schedule (Seed then only feeds
	// jitter). Its Duration must match.
	Plan *netsim.ChaosPlan
	// DialBackoff / DialBackoffMax override the reconnect schedule
	// (zero keeps remote's defaults). Long-partition schedules shrink
	// the cap so the outage dwarfs it by orders of magnitude.
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
	// SendWindow overrides the per-pair ARQ ring capacity (zero keeps
	// remote's default).
	SendWindow int
	// Logf, when non-nil, receives per-node debug logging.
	Logf func(format string, args ...any)
}

// SoakResult is the outcome of one chaos-soak run.
type SoakResult struct {
	// Plan is the executed fault schedule.
	Plan netsim.ChaosPlan
	// Trace is the per-seed event trace: the rendered plan plus one
	// verdict line per checked property. It contains only
	// schedule-deterministic content — the plan is a pure function of
	// the seed and every verdict is a boolean that the paper guarantees
	// for all schedules — so two runs of the same seed must produce
	// byte-identical traces (the determinism contract of DESIGN S19;
	// per-message interleavings are NOT replayed, goroutine scheduling
	// being outside the harness's control).
	Trace string
	// StableAt is the stabilization anchor actually used: the start of
	// the quiet window in which the eventual properties were asserted.
	StableAt sim.Time
	// MaxOvertakePostStable is the largest bounded-waiting count among
	// windows starting at or after StableAt (Theorem 3: ≤2).
	MaxOvertakePostStable int
	// Failures lists every property violation with diagnostic detail
	// (empty on a clean run). Diagnostics are free to be
	// nondeterministic; only Trace is under the byte-identical
	// contract.
	Failures []string

	traceB strings.Builder
}

// Failed reports whether any property check failed.
func (r *SoakResult) Failed() bool { return len(r.Failures) > 0 }

// soakWaitCap bounds how much extra virtual time a goal-driven wait
// may consume past the plan's Duration.
const soakWaitCap = 12 * time.Second

// RunChaosSoak executes one seeded fault schedule against a full
// remote-stack ring on the virtual network and checks the paper's
// properties after stabilization:
//
//   - zero exclusion violations from the stabilization point (◇WX,
//     Theorem 1);
//   - every live process keeps completing hungry sessions after the
//     final heal, and none is starving at the end (wait-freedom,
//     Theorem 2);
//   - no bounded-waiting window starting after stabilization exceeds 2
//     overtakes (◇2-BW, Theorem 3);
//   - processes that fell over on their own did so only inside a
//     crash/restart blast radius (the restarted node's processes and
//     their conflict-graph neighbors), and nodes outside it recorded
//     no errors.
//
// Schedule execution and the anchor-seeking stabilization search live
// in RunPlan; this wrapper derives the plan from the seed, applies the
// soak's verdict rules, and renders the deterministic trace.
//
// The returned error covers harness malfunctions (a restart that could
// not bind, a progress wait that timed out); property violations go to
// SoakResult.Failures.
func RunChaosSoak(cfg SoakConfig) (*SoakResult, error) {
	res, _, err := runChaosSoakInner(cfg)
	return res, err
}

// runChaosSoakInner also returns the (stopped) cluster so tests can
// inspect its monitors.
func runChaosSoakInner(cfg SoakConfig) (*SoakResult, *Cluster, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 5
	}
	if cfg.Duration == 0 {
		cfg.Duration = 8 * time.Second
	}

	addrs := make([]string, cfg.Nodes)
	for i := range addrs {
		addrs[i] = NodeAddr(i)
	}
	plan := netsim.GenPlan(cfg.Seed, addrs, cfg.Duration)
	if cfg.Plan != nil {
		plan = *cfg.Plan
	}

	pr, err := RunPlan(PlanConfig{
		Seed:           cfg.Seed,
		Graph:          graph.Ring(cfg.Nodes),
		Plan:           plan,
		DialBackoff:    cfg.DialBackoff,
		DialBackoffMax: cfg.DialBackoffMax,
		SendWindow:     cfg.SendWindow,
		Logf:           cfg.Logf,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("soak seed %d: %w", cfg.Seed, err)
	}
	cl := pr.Cluster
	defer cl.Stop()
	if pr.WaitErr != nil {
		return nil, cl, fmt.Errorf("soak seed %d: post-heal progress: %w (the cluster stopped completing sessions — wait-freedom broken)", cfg.Seed, pr.WaitErr)
	}

	res := &SoakResult{Plan: plan, StableAt: pr.StableAt}
	stable := pr.StableAt

	check := func(ok bool, verdict string, detail func() string) {
		fmt.Fprintf(&res.traceB, "verdict %s=%v\n", verdict, ok)
		if !ok {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %s", verdict, detail()))
		}
	}

	fmt.Fprint(&res.traceB, plan.String())
	res.MaxOvertakePostStable = cl.MaxOvertakeFrom(stable)
	check(pr.Settled, "anchor_settled", func() string {
		return fmt.Sprintf("exclusion violations or excess overtake windows kept appearing after %d anchor moves (last anchor %v)", anchorIterBudget, stable)
	})
	check(cl.ExclusionViolationsAfter(stable) == 0, "exclusion_clean_post_stable", func() string {
		return fmt.Sprintf("%d violations after %v", cl.ExclusionViolationsAfter(stable), stable)
	})
	check(res.MaxOvertakePostStable <= 2, "overtake_bound_2_post_stable", func() string {
		return fmt.Sprintf("max overtake %d after %v", res.MaxOvertakePostStable, stable)
	})
	starving := cl.Starving(time.Second)
	check(len(starving) == 0, "no_starvation_post_heal", func() string {
		return fmt.Sprintf("starving processes %v", starving)
	})
	// Resource invariant: the per-pair ARQ high-water mark is tracked
	// continuously by the transport itself, so reading the peak once at
	// the end is equivalent to sampling depth at every instant of the
	// run — including the depths reached mid-partition and mid-overload.
	check(cl.MaxPairDepth() <= cl.SendWindow(), "queue_depth_bounded", func() string {
		return fmt.Sprintf("peak pair depth %d exceeds send window %d", cl.MaxPairDepth(), cl.SendWindow())
	})
	fallen := cl.FallenProcs()
	check(within(fallen, pr.Blast), "fallen_within_blast_radius", func() string {
		return fmt.Sprintf("fallen %v outside blast radius %v", fallen, sortedKeys(pr.Blast))
	})
	cleanOutside, errDetail := cl.ErrsOutsideBlast(pr.Blast)
	check(cleanOutside, "errors_outside_blast_radius_none", func() string { return errDetail })

	res.Trace = res.traceB.String()
	return res, cl, nil
}

// advanceStep is the largest single virtual-time jump a scripted run
// takes. It matches waitCond's pump granularity; see the comment at
// RunPlan's event loop for why bounded steps matter.
const advanceStep = 5 * time.Millisecond

// advanceTo steps the virtual clock up to absolute offset t.
func advanceTo(clk *netsim.Clock, t time.Duration) {
	for {
		delta := t - clk.Elapsed()
		if delta <= 0 {
			return
		}
		if delta > advanceStep {
			delta = advanceStep
		}
		clk.Advance(delta)
	}
}

// applyChaos executes one scripted event against the cluster/network.
func applyChaos(cl *Cluster, nw *netsim.Net, ev netsim.ChaosEvent) error {
	switch ev.Kind {
	case netsim.ChaosSetLink:
		nw.SetLink(ev.A, ev.B, ev.Latency, ev.Jitter)
	case netsim.ChaosPartition:
		nw.Partition(ev.A, ev.B)
	case netsim.ChaosPartitionDir:
		nw.PartitionDir(ev.A, ev.B)
	case netsim.ChaosReset:
		nw.ResetLink(ev.A, ev.B)
	case netsim.ChaosTruncate:
		nw.TruncateLink(ev.A, ev.B, ev.DropTail)
	case netsim.ChaosSlowLink:
		nw.SetLinkRate(ev.A, ev.B, ev.Rate)
	case netsim.ChaosStopDrain:
		nw.StopDrain(ev.A, ev.B)
	case netsim.ChaosResumeDrain:
		nw.ResumeDrain(ev.A, ev.B)
	case netsim.ChaosHealAll:
		nw.HealAll()
	case netsim.ChaosHealLink:
		nw.HealDir(ev.A, ev.B)
		nw.HealDir(ev.B, ev.A)
	case netsim.ChaosCrash:
		ni, err := nodeIndex(ev.A)
		if err != nil {
			return err
		}
		cl.Kill(ni)
	case netsim.ChaosRestart:
		ni, err := nodeIndex(ev.A)
		if err != nil {
			return err
		}
		return cl.Restart(ni)
	default:
		return fmt.Errorf("cluster: unknown chaos event %v", ev.Kind)
	}
	return nil
}

func nodeIndex(addr string) (int, error) {
	var ni int
	if _, err := fmt.Sscanf(addr, "n%d", &ni); err != nil {
		return 0, fmt.Errorf("cluster: bad node address %q: %w", addr, err)
	}
	return ni, nil
}

func within(procs []int, set map[int]bool) bool {
	for _, p := range procs {
		if !set[p] {
			return false
		}
	}
	return true
}

func sortedKeys(set map[int]bool) []int {
	var out []int
	for k := range set {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
