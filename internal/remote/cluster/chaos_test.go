package cluster

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/netsim"
)

// soakSeeds are the committed chaos schedules. Every seed must pass
// the full property suite on every run — a failure here is a real
// protocol or harness bug, not flake, because the run is on virtual
// time. The mix matters: across these seeds the generated plans cover
// crash/restart episodes, symmetric and asymmetric partitions,
// connection resets, and mid-stream truncations (seed 10's truncation
// is the schedule that originally exposed the need for the wire CRC).
var soakSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

// shortSoakSeeds is the -short subset: one plain-partition schedule,
// one crash/restart schedule, one truncation schedule.
var shortSoakSeeds = []int64{1, 4, 10}

// soakDuration is the virtual plan length for the committed seeds.
// 4s keeps the chaos window (~2.2s) long enough for every fault kind
// while the whole run stays cheap in wall time.
const soakDuration = 4 * time.Second

// TestChaosSoakSeeds runs every committed seed twice and checks the
// acceptance contract of the harness (DESIGN S19):
//
//   - both runs report zero property failures (exclusion, wait-freedom,
//     ◇2-BW, blast radius — see RunChaosSoak);
//   - the two per-seed event traces are byte-identical, proving the
//     schedule and every verdict are a pure function of the seed.
func TestChaosSoakSeeds(t *testing.T) {
	seeds := soakSeeds
	if testing.Short() {
		seeds = shortSoakSeeds
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			var first string
			for run := 0; run < 2; run++ {
				res, err := RunChaosSoak(SoakConfig{Seed: seed, Duration: soakDuration})
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if res.Failed() {
					t.Fatalf("run %d: property failures:\n%s\ntrace:\n%s",
						run, join(res.Failures), res.Trace)
				}
				if run == 0 {
					first = res.Trace
				} else if res.Trace != first {
					t.Fatalf("traces differ between runs:\nrun 0:\n%s\nrun 1:\n%s", first, res.Trace)
				}
			}
		})
	}
}

// TestChaosOvertakeBound is the end-to-end ◇2-BW conformance check
// (Theorem 3): a hand-scripted schedule crashes a node, partitions two
// more links while it is down, restarts it with a fresh incarnation,
// and heals. After stabilization no bounded-waiting window may see a
// hungry process overtaken more than twice, and the monitors must
// record zero exclusion violations — on a 5-process ring where the
// greedy coloring gives process 4 color 2, the worst-case chain the
// bound quantifies over actually occurs.
func TestChaosOvertakeBound(t *testing.T) {
	addrs := []string{"n0", "n1", "n2", "n3", "n4"}
	plan := netsim.ChaosPlan{Seed: 42, Duration: soakDuration}
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			plan.Events = append(plan.Events, netsim.ChaosEvent{
				Kind: netsim.ChaosSetLink, A: addrs[i], B: addrs[j],
				Latency: 500 * time.Microsecond,
			})
		}
	}
	plan.Events = append(plan.Events,
		netsim.ChaosEvent{At: 300 * time.Millisecond, Kind: netsim.ChaosCrash, A: "n2"},
		netsim.ChaosEvent{At: 450 * time.Millisecond, Kind: netsim.ChaosPartition, A: "n0", B: "n4"},
		netsim.ChaosEvent{At: 600 * time.Millisecond, Kind: netsim.ChaosPartitionDir, A: "n3", B: "n4"},
		netsim.ChaosEvent{At: 900 * time.Millisecond, Kind: netsim.ChaosRestart, A: "n2"},
		netsim.ChaosEvent{At: 2200 * time.Millisecond, Kind: netsim.ChaosHealAll},
	)

	res, err := RunChaosSoak(SoakConfig{Seed: 42, Duration: soakDuration, Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("property failures:\n%s", join(res.Failures))
	}
	if res.MaxOvertakePostStable > 2 {
		t.Fatalf("max post-stabilization overtake %d, want <= 2 (Theorem 3)", res.MaxOvertakePostStable)
	}
}

// longPartitionPlan scripts the ISSUE-6 endurance schedule: a full
// bidirectional partition of one ring link that lasts outage — chosen
// by the callers to exceed the dial-backoff cap by two orders of
// magnitude — then a heal and a stabilization tail.
func longPartitionPlan(outage, tail time.Duration) *netsim.ChaosPlan {
	plan := &netsim.ChaosPlan{Seed: 77, Duration: 200*time.Millisecond + outage + tail}
	plan.Events = append(plan.Events,
		netsim.ChaosEvent{At: 200 * time.Millisecond, Kind: netsim.ChaosPartition, A: "n1", B: "n2"},
		netsim.ChaosEvent{At: 200*time.Millisecond + outage, Kind: netsim.ChaosHealAll},
	)
	return plan
}

// TestChaosLongPartition holds one link down for 100x the reconnect
// backoff cap — the regime where an unbounded send queue or an
// unbounded retransmit schedule would show up as resource growth —
// and then requires the full post-heal property suite plus the
// bounded-window verdict, twice, with byte-identical traces.
func TestChaosLongPartition(t *testing.T) {
	t.Parallel()
	const cap = 40 * time.Millisecond // backoff cap; outage = 4s = 100x
	plan := longPartitionPlan(4*time.Second, 1500*time.Millisecond)
	var first string
	for run := 0; run < 2; run++ {
		res, err := RunChaosSoak(SoakConfig{
			Seed:           77,
			Duration:       plan.Duration,
			Plan:           plan,
			DialBackoff:    10 * time.Millisecond,
			DialBackoffMax: cap,
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Failed() {
			t.Fatalf("run %d: property failures:\n%s\ntrace:\n%s", run, join(res.Failures), res.Trace)
		}
		if run == 0 {
			first = res.Trace
		} else if res.Trace != first {
			t.Fatalf("traces differ between runs:\nrun 0:\n%s\nrun 1:\n%s", first, res.Trace)
		}
	}
}

// TestChaosPartitionMemoryFlat pins the resource half of the bounded-
// window contract: during a partition lasting far beyond the backoff
// cap, the bytes parked in ARQ rings must stop growing once the
// windows fill (coalescing keeps heartbeats and re-stated acks out of
// the rings), and the process-wide live heap must stay flat rather
// than scale with outage length. Deliberately not parallel: it reads
// runtime.MemStats, so concurrent tests would pollute the samples.
func TestChaosPartitionMemoryFlat(t *testing.T) {
	clk := netsim.NewClock()
	clk.Yield = 0
	nw := netsim.NewNet(clk, 7)
	g := graph.Ring(5)
	placement := [][]int{{0}, {1}, {2}, {3}, {4}}
	cl, err := New(g, placement, Options{
		HeartbeatPeriod:  10 * time.Millisecond,
		InitialTimeout:   120 * time.Millisecond,
		TimeoutIncrement: 60 * time.Millisecond,
		EatTime:          4 * time.Millisecond,
		ThinkTime:        4 * time.Millisecond,
		RTO:              20 * time.Millisecond,
		DialBackoff:      10 * time.Millisecond,
		DialBackoffMax:   40 * time.Millisecond,
		Seed:             7,
		Network:          nw,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	if err := cl.WaitEats(nil, 2, 10*time.Second); err != nil {
		t.Fatalf("pre-partition progress: %v", err)
	}

	nw.Partition("n1", "n2")
	advance := func(d time.Duration) {
		for step := time.Duration(0); step < d; step += advanceStep {
			cl.Advance(advanceStep)
		}
	}
	heapSample := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	// One virtual second in: the windows toward the dead link have
	// absorbed whatever residual traffic the parked diner emits.
	advance(time.Second)
	bytesEarly := cl.QueuedFrameBytes()
	heapEarly := heapSample()

	// Eight more virtual seconds of outage — 200x the backoff cap.
	// Flat means flat: no per-tick, per-retransmit, or per-redial
	// accumulation anywhere in the stack.
	advance(8 * time.Second)
	bytesLate := cl.QueuedFrameBytes()
	heapLate := heapSample()

	if bytesLate > bytesEarly+256 {
		t.Fatalf("queued frame bytes grew during partition: %d -> %d", bytesEarly, bytesLate)
	}
	if d := cl.MaxPairDepth(); d > cl.SendWindow() {
		t.Fatalf("peak pair depth %d exceeds send window %d", d, cl.SendWindow())
	}
	const heapSlack = 4 << 20
	if heapLate > heapEarly+heapSlack {
		t.Fatalf("live heap grew %d bytes across the partition (early %d, late %d)",
			heapLate-heapEarly, heapEarly, heapLate)
	}

	nw.HealAll()
	base := cl.EatCounts()
	if err := cl.WaitEats(base, 2, 15*time.Second); err != nil {
		t.Fatalf("post-heal progress: %v", err)
	}
}

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += "  " + s + "\n"
	}
	return out
}
