package remote

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// handshakeTimeout bounds how long a Hello exchange may take; a peer
// that connects but stays silent is cut off.
const handshakeTimeout = 5 * time.Second

// dialTimeout bounds one TCP connect attempt.
const dialTimeout = 2 * time.Second

// writerQueueCap sizes a connection's outbound frame queue. The
// manager never blocks on it: when the queue is full (a stalled TCP
// connection) data frames are dropped and counted — the ARQ layer
// retransmits them — while idempotent control frames (heartbeats,
// cumulative acks) are coalesced into a per-pair stash of the latest
// instance and flushed when the writer drains. A writer that stays
// saturated for a full write timeout is treated as dead and torn down.
const writerQueueCap = 256

// pairKey identifies one ordered process pair (stream direction).
type pairKey struct{ from, to int }

type sendEntry struct {
	seq uint64
	msg core.Message
	// buf is the frame's wire encoding, frozen at submit time: the
	// iovec flush path retransmits these exact bytes without re-encoding
	// or re-slicing. The piggybacked ack inside is the one current at
	// submit; that staleness is harmless because cumulative acks are
	// monotone and the receive path restates the latest value on every
	// inbound burst. Buffers are immutable once queued — the write loop
	// may still hold a reference after the ack pops the entry.
	buf []byte
}

// sendState is the sender half of one ordered pair; it lives in the
// peer manager and survives reconnects, so sequence numbers and the
// unacked queue span connection generations. The queue is a
// fixed-capacity ring (Config.SendWindow): a partitioned or slow peer
// can pin at most one window of frames per pair, never unbounded
// memory.
type sendState struct {
	nextSeq   uint64 // next sequence number to assign (starts at 1)
	queue     *sendRing
	bytes     int // encoded bytes held by the ring
	rto       time.Duration
	deadline  time.Time // zero = timer idle
	suspended bool      // retransmission parked while the peer process is suspected
	stalled   bool      // backpressure: window crossed high-water, sender parked
}

// stallMarks returns the backpressure hysteresis marks for window w:
// a pair crossing high parks its sender at the dining layer (exactly
// like suspicion); it resumes only after draining to low. The gap
// below capacity leaves headroom for the parked diner's bounded
// residual traffic (Lemma 2.2: at most one pending ping and one
// request toward an unresponsive neighbor, plus deferred grants driven
// by inbound frames), so a correctly parked pair never reaches the
// hard capacity.
func stallMarks(w int) (high, low int) {
	high = w - 16
	if min := (w + 1) / 2; high < min {
		high = min
	}
	low = high / 2
	if low < 1 {
		low = 1
	}
	return high, low
}

// recvState is the receiver half of one ordered pair: dedup and
// reordering across reconnects.
type recvState struct {
	next uint64 // lowest sequence not yet delivered (starts at 1)
	buf  map[uint64]core.Message
}

// liveConn is one accepted or dialed connection generation. done is
// closed when the generation is retired, releasing its writer.
type liveConn struct {
	c    net.Conn
	gen  uint64
	out  chan []byte
	done chan struct{}

	// rd is the generation's zero-copy frame decoder. Frames it yields
	// are views into its reused read buffer (wire.Decoder's ownership
	// contract): only the read loop may touch it, and any frame that
	// outlives one loop iteration must be Clone()d before crossing a
	// goroutine boundary.
	rd *wire.Decoder // owned: peer.readLoop

	// satSince is when the writer queue first refused a frame with no
	// successful enqueue since (zero = not saturated). A queue saturated
	// for a full write timeout marks the connection dead even if the
	// socket never errors.
	satSince time.Time // owned: peer.run
}

// retire closes the generation's socket and releases its writer.
func (lc *liveConn) retire() {
	lc.c.Close()
	close(lc.done)
}

// peer is the manager for the link to one remote node. A single
// goroutine (run) owns all its state and executes closures posted to
// cmds, so the transport needs no mutexes.
type peer struct {
	node   *Node
	remote int
	dialer bool // exactly one side dials: the lower node index
	cmds   chan func()

	// Manager-owned state below; the annotations bind each field to the
	// run loop, enforced by the mailboxown analyzer.
	conn      *liveConn              // owned: run
	connGen   uint64                 // owned: run
	peerInc   uint64                 // owned: run — peer's boot incarnation from its last Hello (0 = never seen)
	dialDelay time.Duration          // owned: run
	dialing   bool                   // owned: run
	capFails  int                    // owned: run — consecutive dial failures at the backoff cap (Down hysteresis)
	sends     map[pairKey]*sendState // owned: run
	recvs     map[pairKey]*recvState // owned: run
	// pendingHB coalesces heartbeats awaiting writer room; pendingAck
	// coalesces cumulative acks (highest wins).
	pendingHB  map[pairKey]bool   // owned: run
	pendingAck map[pairKey]uint64 // owned: run
	// ackDue accumulates the batched cumulative acks of one inbound
	// burst (highest per pair); onInbound drains it before returning, so
	// it never carries state between commands.
	ackDue map[pairKey]uint64 // owned: run
	// iov is scratch for gathering a ring's stored encodings into one
	// retransmission burst without allocating per scan.
	iov [][]byte   // owned: run
	rng *rand.Rand // owned: run

	// Cross-goroutine observation points for the node watchdog (the
	// manager may be wedged, so these bypass the command channel).
	lastDrain atomic.Int64 // clk nanos of the last manager loop iteration
	liveSock  atomic.Value // sockBox: current socket, for a forced close
}

// sockBox wraps the current net.Conn for atomic.Value storage (an
// empty box means no live socket).
type sockBox struct{ c net.Conn }

func newPeer(n *Node, remote int) *peer {
	return &peer{
		node:       n,
		remote:     remote,
		dialer:     n.self < remote,
		cmds:       make(chan func(), 1024),
		sends:      make(map[pairKey]*sendState),
		recvs:      make(map[pairKey]*recvState),
		pendingHB:  make(map[pairKey]bool),
		pendingAck: make(map[pairKey]uint64),
		ackDue:     make(map[pairKey]uint64),
		rng:        n.jitterRand(remote),
	}
}

// post hands a closure to the manager goroutine, giving up when the
// node is stopping.
func (p *peer) post(fn func()) {
	select {
	case p.cmds <- fn:
	case <-p.node.stop:
	}
}

// tickEvery derives the retransmission scan period from the RTO.
func (p *peer) tickEvery() time.Duration {
	d := p.node.cfg.RTO / 3
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// run is the manager loop.
func (p *peer) run() {
	defer p.node.wg.Done()
	defer p.teardown()
	ticker := p.node.clk.NewTicker(p.tickEvery())
	defer ticker.Stop()
	if p.dialer {
		p.startDial()
	}
	p.lastDrain.Store(p.node.clk.Now().UnixNano())
	for {
		select {
		case <-p.node.stop:
			return
		case fn := <-p.cmds:
			fn()
		case <-ticker.C():
			p.tick()
		}
		// Stamp progress for the watchdog: a manager that stops making
		// iterations while its mailbox backs up is wedged.
		p.lastDrain.Store(p.node.clk.Now().UnixNano())
	}
}

// teardown closes the current connection on shutdown.
func (p *peer) teardown() {
	if p.conn != nil {
		p.conn.retire()
		p.conn = nil
		p.liveSock.Store(sockBox{})
	}
}

// --- dialing and handshake ---------------------------------------------

// startDial launches one connect attempt (manager goroutine only).
func (p *peer) startDial() {
	if p.dialing || p.conn != nil || !p.dialer {
		return
	}
	p.dialing = true
	addr := p.node.topo.Nodes[p.remote].Addr
	p.node.wg.Add(1)
	go p.dialAttempt(addr)
}

// dialAttempt runs off the manager goroutine: TCP connect plus the
// client half of the Hello exchange, then hands the result back.
func (p *peer) dialAttempt(addr string) {
	defer p.node.wg.Done()
	var inc uint64
	c, err := p.dialConn(addr)
	if err == nil {
		inc, err = p.clientHandshake(c)
		if err != nil {
			c.Close()
			c = nil
		}
	}
	p.post(func() { p.onDialDone(c, inc, err) })
}

func (p *peer) dialConn(addr string) (net.Conn, error) {
	if addr == "" {
		return nil, fmt.Errorf("remote: node %d has no address yet", p.remote)
	}
	if p.node.cfg.Dial != nil {
		return p.node.cfg.Dial(addr)
	}
	return net.DialTimeout("tcp", addr, dialTimeout)
}

// clientHandshake sends our Hello, validates the peer's reply against
// the shared topology, and returns the peer's boot incarnation.
func (p *peer) clientHandshake(c net.Conn) (uint64, error) {
	c.SetDeadline(p.node.clk.Now().Add(handshakeTimeout))
	defer c.SetDeadline(time.Time{})
	if err := wire.WriteFrame(c, p.node.helloFrame()); err != nil {
		return 0, fmt.Errorf("remote: hello send to node %d: %w", p.remote, err)
	}
	fr, err := wire.ReadFrame(c)
	if err != nil {
		return 0, fmt.Errorf("remote: hello read from node %d: %w", p.remote, err)
	}
	if err := p.node.checkHello(fr, p.remote); err != nil {
		return 0, err
	}
	return fr.Incarnation, nil
}

// onDialDone adopts a successful connection or schedules the next
// attempt with exponential backoff + jitter (manager goroutine only).
func (p *peer) onDialDone(c net.Conn, inc uint64, err error) {
	p.dialing = false
	if err != nil || c == nil {
		if c != nil {
			c.Close()
		}
		p.node.logf("node %d: dial node %d failed: %v", p.node.self, p.remote, err)
		p.scheduleRedial()
		return
	}
	if p.conn != nil {
		// A connection raced in while we dialed (shouldn't happen with
		// one dialing side, but be safe): keep the existing one.
		c.Close()
		return
	}
	p.adopt(c, inc)
}

// scheduleRedial arms the next dial attempt (manager goroutine only).
// Repeated failures at the backoff cap demote the link to Down —
// with downAfterFails of hysteresis so one unlucky redial during a
// listener restart doesn't flap the state machine.
func (p *peer) scheduleRedial() {
	pol := p.node.cfg.dialPolicy()
	p.dialDelay = time.Duration(pol.Next(int64(p.dialDelay)))
	if int64(p.dialDelay) >= pol.Max {
		p.capFails++
		if p.capFails >= downAfterFails {
			p.node.tr.setHealth(p.remote, HealthDown, "reconnect backoff exhausted")
		}
	}
	d := time.Duration(pol.Jittered(int64(p.dialDelay), p.rng.Int63n))
	p.node.clk.AfterFunc(d, func() { p.post(p.startDial) })
}

// helloFrame is this node's handshake announcement.
func (n *Node) helloFrame() wire.Frame {
	procs := make([]uint32, 0, len(n.procs))
	for id := range n.procs {
		procs = append(procs, uint32(id))
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	return wire.Frame{Kind: wire.Hello, Node: uint32(n.self), Incarnation: n.incarnation, Procs: procs}
}

// checkHello validates a peer's Hello against the shared topology: the
// frame must be a Hello claiming the expected node index, and the
// advertised process list must match our topology's placement for that
// node exactly. Nodes loading different topology files would otherwise
// happily interconnect and misroute process IDs; instead the placement
// disagreement surfaces here as a handshake rejection.
func (n *Node) checkHello(fr wire.Frame, wantNode int) error {
	if fr.Kind != wire.Hello {
		return fmt.Errorf("remote: want hello from node %d, got %v", wantNode, fr)
	}
	if int(fr.Node) != wantNode {
		return fmt.Errorf("remote: hello claims node %d, want node %d", fr.Node, wantNode)
	}
	want := append([]int(nil), n.topo.Nodes[wantNode].Procs...)
	sort.Ints(want)
	if len(fr.Procs) != len(want) {
		return fmt.Errorf("remote: node %d advertises %d processes, topology places %d", wantNode, len(fr.Procs), len(want))
	}
	for i, pid := range fr.Procs {
		if int(pid) != want[i] {
			return fmt.Errorf("remote: node %d advertises process %d where topology places %d", wantNode, pid, want[i])
		}
	}
	return nil
}

// acceptLoop serves inbound connections until the listener closes.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed (Stop)
		}
		n.wg.Add(1)
		go n.serverHandshake(c)
	}
}

// serverHandshake validates an inbound Hello, replies with ours, and
// hands the connection to the owning peer manager.
func (n *Node) serverHandshake(c net.Conn) {
	defer n.wg.Done()
	c.SetDeadline(n.clk.Now().Add(handshakeTimeout))
	fr, err := wire.ReadFrame(c)
	if err != nil || fr.Kind != wire.Hello {
		n.logf("node %d: bad inbound handshake: %v (err %v)", n.self, fr, err)
		c.Close()
		return
	}
	pr, ok := n.peers[int(fr.Node)]
	if !ok || pr.dialer {
		// Unknown node, or a peer that should be accepting our dial,
		// not dialing us.
		n.logf("node %d: unexpected hello from node %d", n.self, fr.Node)
		c.Close()
		return
	}
	if err := n.checkHello(fr, int(fr.Node)); err != nil {
		n.logf("node %d: rejecting inbound handshake: %v", n.self, err)
		c.Close()
		return
	}
	if err := wire.WriteFrame(c, n.helloFrame()); err != nil {
		c.Close()
		return
	}
	c.SetDeadline(time.Time{})
	pr.post(func() { pr.acceptConn(c, fr.Incarnation) })
}

// acceptConn installs an inbound connection, replacing any current one
// (the dialer reconnected, so the old conn is dead or dying).
func (p *peer) acceptConn(c net.Conn, inc uint64) {
	if p.conn != nil {
		p.conn.retire()
		p.conn = nil
	}
	p.adopt(c, inc)
}

// noteIncarnation compares the incarnation a peer advertised in its
// Hello against the last one seen; a change means the peer daemon
// restarted, so everything this link carries is stale and the link
// starts a new epoch (manager goroutine only):
//
//   - receive streams reset to 1 so the restarted peer's fresh frames
//     deliver instead of being dedup-dropped (or parked forever in the
//     reorder buffer);
//   - queued unacked sends are discarded, not retransmitted — they were
//     addressed to dining state that no longer exists, and replaying
//     them into a reborn diner trips its invariants (a Request it never
//     solicited, an Ack it never pinged for);
//   - every local process sharing an edge with the restarted node
//     resets that edge to the initial fork/token placement
//     (core.Diner.ResetNeighbor), matching what the reborn diner
//     booted with. Without this both endpoints can hold the edge's
//     one fork and eat concurrently forever — a silent exclusion
//     breach no local invariant catches.
//
// The edge resets are posted before the new connection's read loop
// starts, so they land in each process inbox ahead of any fresh-epoch
// frame.
func (p *peer) noteIncarnation(inc uint64) {
	if inc == p.peerInc {
		return
	}
	if p.peerInc != 0 {
		p.node.logf("node %d: node %d restarted (incarnation %d -> %d); resetting link state",
			p.node.self, p.remote, p.peerInc, inc)
		for key, ss := range p.sends {
			for i := 0; i < ss.queue.len(); i++ {
				// Close the occupancy accounting of each discarded
				// message: it is no longer in transit.
				e := ss.queue.at(i)
				p.node.tr.appDeliver(e.msg.From, e.msg.To)
			}
			ss.queue.clear()
			ss.bytes = 0
			ss.nextSeq = 1
			ss.rto = p.node.cfg.RTO
			ss.deadline = time.Time{}
			p.noteQueue(key, ss)
			p.maybeUnstall(key, ss)
		}
		for _, rs := range p.recvs {
			rs.next = 1
			rs.buf = make(map[uint64]core.Message)
		}
		// Stashed control frames belong to the dead epoch: acks restate
		// from the fresh recv cursors on adopt, heartbeats are periodic.
		p.pendingHB = make(map[pairKey]bool)
		p.pendingAck = make(map[pairKey]uint64)
		p.node.resetEdges(p.remote)
	}
	p.peerInc = inc
}

// adopt makes c the live connection: starts its reader and writer,
// resets the backoff, resets the ARQ state if the peer's incarnation
// changed, retransmits every unacked frame, and re-states our
// cumulative acks so the peer can clear its own queues (manager
// goroutine only).
func (p *peer) adopt(c net.Conn, inc uint64) {
	p.noteIncarnation(inc)
	p.connGen++
	lc := &liveConn{c: c, gen: p.connGen, out: make(chan []byte, writerQueueCap), done: make(chan struct{}), rd: wire.NewDecoder(c)}
	p.conn = lc
	p.liveSock.Store(sockBox{c: c})
	p.dialDelay = 0
	p.capFails = 0
	p.node.tr.peerConnected(p.remote, true)
	// A successful handshake resurrects the link from any state; pairs
	// still backlogged past high-water keep it Degraded until drained.
	if p.anyStalled() {
		p.node.tr.setHealth(p.remote, HealthDegraded, "reconnected with stalled pairs")
	} else {
		p.node.tr.setHealth(p.remote, HealthHealthy, "reconnected")
	}
	p.node.logf("node %d: connected to node %d (gen %d)", p.node.self, p.remote, lc.gen)
	p.node.wg.Add(2)
	go p.readLoop(lc)
	go p.writeLoop(lc)
	now := p.node.clk.Now()
	for key, ss := range p.sends {
		ss.rto = p.node.cfg.RTO
		ss.deadline = time.Time{}
		if ss.queue.len() > 0 && !ss.suspended {
			p.retransmitQueue(key, ss)
			p.armDeadline(ss, now)
		}
	}
	for key, rs := range p.recvs {
		if rs.next > 1 {
			p.sendAck(key.to, key.from, rs.next-1)
		}
	}
}

// connDown tears down connection generation gen after a read or write
// error (manager goroutine only; stale generations are ignored).
func (p *peer) connDown(gen uint64, err error) {
	if p.conn == nil || p.conn.gen != gen {
		return
	}
	p.node.logf("node %d: connection to node %d down: %v", p.node.self, p.remote, err)
	p.conn.retire()
	p.conn = nil
	p.liveSock.Store(sockBox{})
	p.node.tr.peerConnected(p.remote, false)
	if h := p.node.tr.healthOf(p.remote); h == HealthHealthy || h == HealthDegraded {
		p.node.tr.setHealth(p.remote, HealthSuspect, "connection down")
	}
	for _, ss := range p.sends {
		ss.deadline = time.Time{} // nothing to retransmit into; adopt re-arms
	}
	if p.dialer {
		p.scheduleRedial()
	}
}

// --- frame I/O ---------------------------------------------------------

// encodeFrame renders fr into one exactly-sized allocation (FrameSize
// is pinned to the encoder's output), recording codec errors (which
// indicate a local bug, never peer behavior) and returning nil on
// failure.
func (p *peer) encodeFrame(fr wire.Frame) []byte {
	buf, err := wire.AppendFrame(make([]byte, 0, wire.FrameSize(fr)), fr)
	if err != nil {
		p.node.tr.recordErr(fmt.Errorf("remote: encode %v: %w", fr, err))
		return nil
	}
	return buf
}

// sendEncoded offers an encoded frame to the live connection's writer
// without blocking, tracking saturation: the first refusal stamps
// satSince, any success clears it. Returns false when disconnected or
// saturated (manager goroutine only).
func (p *peer) sendEncoded(buf []byte) bool {
	if p.conn == nil {
		return false
	}
	select {
	case p.conn.out <- buf:
		p.conn.satSince = time.Time{}
		return true
	default:
		if p.conn.satSince.IsZero() {
			p.conn.satSince = p.node.clk.Now()
		}
		return false
	}
}

// sendAck transmits a cumulative ack for the from→to pair (manager
// goroutine only; skipped while disconnected — adopt restates acks).
// On a saturated writer the highest ack per pair is stashed instead of
// queued: cumulative acks are idempotent and monotone, so restating
// only the latest loses nothing while shedding queue pressure.
func (p *peer) sendAck(from, to int, ack uint64) {
	if p.conn == nil {
		return
	}
	buf := p.encodeFrame(wire.Frame{Kind: wire.Ack, From: uint32(from), To: uint32(to), Ack: ack})
	if buf == nil {
		return
	}
	if !p.sendEncoded(buf) {
		key := pairKey{from: from, to: to}
		if cur, ok := p.pendingAck[key]; !ok || ack > cur {
			p.pendingAck[key] = ack
		}
		p.node.tr.coalescedFrame(p.remote)
	}
}

// flushCoalesced drains stashed idempotent frames once the writer has
// room again (manager goroutine only, from tick). Pairs are visited in
// sorted order so the wire sequence stays deterministic under netsim.
func (p *peer) flushCoalesced() {
	for _, key := range sortedPairKeys(p.pendingAck) {
		buf := p.encodeFrame(wire.Frame{Kind: wire.Ack, From: uint32(key.from), To: uint32(key.to), Ack: p.pendingAck[key]})
		if buf != nil && !p.sendEncoded(buf) {
			return // still saturated; retry next tick
		}
		delete(p.pendingAck, key)
	}
	for _, key := range sortedPairKeys(p.pendingHB) {
		buf := p.encodeFrame(wire.Frame{Kind: wire.Heartbeat, From: uint32(key.from), To: uint32(key.to)})
		if buf != nil && !p.sendEncoded(buf) {
			return
		}
		delete(p.pendingHB, key)
	}
}

// sortedPairKeys returns a map's keys in (from, to) order, keeping
// flush order deterministic under netsim.
func sortedPairKeys[V any](m map[pairKey]V) []pairKey {
	keys := make([]pairKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	return keys
}

// writeTimeout bounds one frame write. A half-dead connection (peer
// unreachable, no RST) would otherwise block Write for the OS TCP
// timeout — minutes during which p.conn stays non-nil, so the dialer
// never redials and every frame, heartbeats included, drops on the
// saturated writer queue. Several suspicion timeouts is far more than
// a live peer ever needs to drain one small frame, and short enough
// that the failure detector's recovery assumptions hold.
func (p *peer) writeTimeout() time.Duration {
	d := 4 * p.node.cfg.InitialTimeout
	if hb := 10 * p.node.cfg.HeartbeatPeriod; d < hb {
		d = hb
	}
	return d
}

// writeBatchMax bounds how many queued frames one flush gathers into a
// single writev. It is small enough that a batch always fits a socket
// buffer comfortably, large enough that a send-window burst (default
// 256 frames ≈ 8 KiB) drains in a handful of syscalls.
const writeBatchMax = 64

// writeLoop owns the connection's write side. It gathers every frame
// already queued (up to writeBatchMax) into one net.Buffers flush: on a
// real TCP connection that is a single writev syscall per burst, the
// tentpole's one-syscall-per-burst path. On any other net.Conn —
// netsim's virtual pipes in particular — net.Buffers falls back to one
// Write per buffer, byte-for-byte and call-for-call identical to the
// old per-frame loop, which is what keeps netsim's per-seed traces
// byte-identical (each Write draws one jitter sample; batching must
// not change the Write count).
//
// Each flush carries one deadline; a deadline error tears the
// generation down like any other write failure, so the dialer redials
// promptly.
func (p *peer) writeLoop(lc *liveConn) {
	defer p.node.wg.Done()
	wt := p.writeTimeout()
	bufs := make(net.Buffers, 0, writeBatchMax)
	for {
		select {
		case <-p.node.stop:
			return
		case <-lc.done:
			return
		case buf := <-lc.out:
			bufs = append(bufs[:0], buf)
		gather:
			for len(bufs) < writeBatchMax {
				select {
				case more := <-lc.out:
					bufs = append(bufs, more)
				default:
					break gather
				}
			}
			lc.c.SetWriteDeadline(p.node.clk.Now().Add(wt))
			wb := bufs // WriteTo consumes its receiver; keep bufs reusable
			if _, err := wb.WriteTo(lc.c); err != nil {
				p.post(func() { p.connDown(lc.gen, err) })
				return
			}
			for i := range bufs {
				bufs[i] = nil // release frame references promptly
			}
		}
	}
}

// inboundBatchMax bounds how many ARQ frames one manager command
// carries; a larger burst is split across commands.
const inboundBatchMax = 128

// readLoop owns the connection's read side. It decodes frames through
// the generation's zero-copy decoder and routes them — heartbeats
// straight to process inboxes, ARQ frames to the manager — draining
// every frame the decoder already holds buffered (Decoder.More) into
// one posted batch, so a coalesced burst arriving in one TCP segment
// costs one manager command and one batched ack per pair instead of
// one of each per frame.
//
// Batch boundaries are trace-deterministic under netsim: its pipes
// deliver at most one write's worth of bytes per Read and the write
// side sends one frame per Write there, so a netsim batch is always
// exactly one frame — byte-identical behavior to the old per-frame
// loop — while real TCP sockets, which merge frames into segments,
// get genuine batching.
//
// The decoded Frame is a view per the zero-copy contract: Data and Ack
// frames are pure values (no reference fields) and are copied into the
// batch slice; anything that crosses a goroutine boundary otherwise —
// the mid-stream Hello posted as a protocol error — is Clone()d first.
func (p *peer) readLoop(lc *liveConn) {
	defer p.node.wg.Done()
	var fr wire.Frame
	for {
		// Block for the first frame of a burst.
		if err := lc.rd.Next(&fr); err != nil {
			p.post(func() { p.connDown(lc.gen, err) })
			return
		}
		var batch []wire.Frame
		for {
			switch fr.Kind {
			case wire.Heartbeat:
				p.node.deliverHeartbeat(int(fr.To), int(fr.From))
			case wire.Data, wire.Ack:
				batch = append(batch, fr)
			default:
				// A second Hello — or an unknown kind — mid-stream is a
				// protocol error. Deliver what preceded it in stream order,
				// then tear the generation down.
				bad := fr.Clone()
				p.postInbound(lc.gen, batch)
				p.post(func() { p.protocolError(lc.gen, bad) })
				return
			}
			if len(batch) >= inboundBatchMax || !lc.rd.More() {
				break
			}
			if err := lc.rd.Next(&fr); err != nil {
				p.postInbound(lc.gen, batch)
				p.post(func() { p.connDown(lc.gen, err) })
				return
			}
		}
		p.postInbound(lc.gen, batch)
	}
}

// postInbound hands one read burst to the manager (no-op on an empty
// batch). The slice is freshly built per burst and ownership moves to
// the manager with the post.
func (p *peer) postInbound(gen uint64, batch []wire.Frame) {
	if len(batch) == 0 {
		return
	}
	p.post(func() { p.onInbound(gen, batch) })
}

// protocolError drops a connection that sent an illegal frame.
func (p *peer) protocolError(gen uint64, fr wire.Frame) {
	p.connDown(gen, fmt.Errorf("remote: illegal frame %v", fr))
}

// --- ARQ ---------------------------------------------------------------

func (p *peer) sendStateFor(key pairKey) *sendState {
	ss, ok := p.sends[key]
	if !ok {
		ss = &sendState{nextSeq: 1, rto: p.node.cfg.RTO, queue: newSendRing(p.node.cfg.SendWindow)}
		p.sends[key] = ss
	}
	return ss
}

// noteQueue publishes the pair's ring depth and byte gauges.
func (p *peer) noteQueue(key pairKey, ss *sendState) {
	p.node.tr.pairQueue(p.remote, key, ss.queue.len(), ss.bytes)
}

// anyStalled reports whether any ordered pair is backpressure-parked.
func (p *peer) anyStalled() bool {
	for _, ss := range p.sends {
		if ss.stalled {
			return true
		}
	}
	return false
}

// maybeStall parks the pair's sender when the ring crosses high-water:
// the stall surfaces to the dining layer exactly like suspicion (the
// local diner stops waiting on — and generating traffic toward — the
// neighbor), so wait-freedom among non-stalled neighbors is preserved
// while retransmission keeps draining the backlog.
func (p *peer) maybeStall(key pairKey, ss *sendState) {
	high, _ := stallMarks(ss.queue.capacity())
	if ss.stalled || ss.queue.len() < high {
		return
	}
	ss.stalled = true
	p.node.tr.stallBegan(p.remote)
	if p.node.tr.healthOf(p.remote) == HealthHealthy {
		p.node.tr.setHealth(p.remote, HealthDegraded, "send window high-water")
	}
	p.node.signalStall(key.from, key.to, true)
}

// maybeUnstall resumes a parked pair once the ring drains to low-water
// (hysteresis: well below the high mark, so the link doesn't flap on
// the boundary).
func (p *peer) maybeUnstall(key pairKey, ss *sendState) {
	_, low := stallMarks(ss.queue.capacity())
	if !ss.stalled || ss.queue.len() > low {
		return
	}
	ss.stalled = false
	p.node.signalStall(key.from, key.to, false)
	if p.conn != nil && !p.anyStalled() && p.node.tr.healthOf(p.remote) == HealthDegraded {
		p.node.tr.setHealth(p.remote, HealthHealthy, "send windows drained")
	}
}

func (p *peer) recvStateFor(key pairKey) *recvState {
	rs, ok := p.recvs[key]
	if !ok {
		rs = &recvState{next: 1, buf: make(map[uint64]core.Message)}
		p.recvs[key] = rs
	}
	return rs
}

// submit accepts one dining message from local process m.From for
// remote process m.To: assign the next sequence number, queue until
// acked, transmit immediately with a piggybacked ack (manager
// goroutine only). Crossing the window's high-water mark stalls the
// sending pair; filling it entirely means flow control was breached —
// the diner's residual traffic is Lemma-bounded far below any sane
// window — so the sender fails loudly instead of growing or silently
// dropping (either would break exactly-once FIFO invisibly).
func (p *peer) submit(m core.Message) {
	key := pairKey{from: m.From, to: m.To}
	ss := p.sendStateFor(key)
	if ss.queue.full() {
		p.node.failProc(m.From, fmt.Errorf(
			"remote: send window (%d) from process %d to %d overflowed; backpressure breached",
			ss.queue.capacity(), m.From, m.To))
		return
	}
	fr, err := wire.DataFrame(m, ss.nextSeq, p.recvStateFor(pairKey{from: m.To, to: m.From}).next-1)
	if err != nil {
		p.node.tr.recordErr(err)
		return
	}
	buf := p.encodeFrame(fr)
	if buf == nil {
		return
	}
	// The frame restates the reverse stream's cumulative ack, so any
	// stashed pure ack it covers is redundant: drop the stash instead of
	// flushing the same information twice on the next tick.
	if cur, ok := p.pendingAck[key]; ok && cur <= fr.Ack {
		delete(p.pendingAck, key)
	}
	seq := ss.nextSeq
	ss.nextSeq++
	ss.queue.push(sendEntry{seq: seq, msg: m, buf: buf})
	ss.bytes += len(buf)
	p.noteQueue(key, ss)
	p.maybeStall(key, ss)
	if !p.sendEncoded(buf) && p.conn != nil {
		p.node.tr.writerDrop(p.remote)
	}
	if !ss.suspended && ss.deadline.IsZero() {
		p.armDeadline(ss, p.node.clk.Now())
	}
}

// armDeadline schedules the pair's next retransmission scan.
func (p *peer) armDeadline(ss *sendState, now time.Time) {
	d := time.Duration(p.node.cfg.rtoPolicy().Jittered(int64(ss.rto), p.rng.Int63n))
	ss.deadline = now.Add(d)
}

// tick retransmits every pair whose oldest unacked frame has waited a
// full RTO, flushes coalesced control frames, and tears down a writer
// that has been saturated past the write timeout (manager goroutine
// only).
func (p *peer) tick() {
	if p.conn == nil {
		return
	}
	now := p.node.clk.Now()
	if !p.conn.satSince.IsZero() && now.Sub(p.conn.satSince) > p.writeTimeout() {
		// The writer queue has refused every frame for a full write
		// timeout: the connection is dead in all but name. Tear it down
		// so the dialer redials instead of letting frames rot.
		p.connDown(p.conn.gen, fmt.Errorf("remote: writer queue saturated for %v", p.writeTimeout()))
		return
	}
	p.flushCoalesced()
	for key, ss := range p.sends {
		if ss.suspended || ss.queue.len() == 0 {
			continue
		}
		if ss.deadline.IsZero() {
			p.armDeadline(ss, now)
			continue
		}
		if now.Before(ss.deadline) {
			continue
		}
		p.retransmitQueue(key, ss)
		ss.rto = time.Duration(p.node.cfg.rtoPolicy().Next(int64(ss.rto)))
		p.armDeadline(ss, now)
	}
}

// retransmitQueue resends every unacked frame on the pair (go-back-N)
// straight from the ring's stored encodings — the iovec flush path: no
// re-encode, no re-slice, one writer offer per frame that the write
// loop gathers into a single writev. The piggybacked ack inside each
// stored frame is the one frozen at submit; the receive path restates
// the current cumulative ack on every inbound burst, and acks are
// monotone, so the frozen value can never move the peer backwards.
func (p *peer) retransmitQueue(key pairKey, ss *sendState) {
	_ = key // the pair's identity lives in the stored frames
	p.iov = ss.queue.appendBufs(p.iov[:0])
	for i, buf := range p.iov {
		p.node.tr.retransmit(p.remote)
		if !p.sendEncoded(buf) && p.conn != nil {
			p.node.tr.writerDrop(p.remote)
		}
		p.iov[i] = nil
	}
}

// setSuspended parks or resumes retransmission for the ordered pair
// (from=local, to=remote process), driven by the local ◇P₁ module
// (manager goroutine only).
func (p *peer) setSuspended(from, to int, suspended bool) {
	ss := p.sendStateFor(pairKey{from: from, to: to})
	if ss.suspended == suspended {
		return
	}
	ss.suspended = suspended
	if suspended {
		ss.deadline = time.Time{}
		return
	}
	// Freshly trusted: the backlog goes out immediately with a reset
	// backoff, exactly like rlink.Resume.
	ss.rto = p.node.cfg.RTO
	if ss.queue.len() > 0 && p.conn != nil {
		p.retransmitQueue(pairKey{from: from, to: to}, ss)
		p.armDeadline(ss, p.node.clk.Now())
	}
}

// stale reports whether a frame decoded on connection generation gen
// arrived after that generation was retired (manager goroutine only).
// A late old-generation frame must be dropped, not applied: after an
// incarnation-driven epoch reset its sequence numbers are meaningless —
// a stale data frame could park a pre-restart message in the fresh
// reorder buffer, and a stale cumulative ack could drain fresh queue
// entries the peer never received. Within an epoch dropping is always
// safe; the ARQ layer retransmits on the next connection.
func (p *peer) stale(gen uint64) bool {
	return p.conn == nil || p.conn.gen != gen
}

// onInbound applies one read burst — Data and Ack frames decoded from
// bytes the wire had already delivered — in stream order, then flushes
// one batched cumulative ack per ordered pair the burst touched
// (manager goroutine only). Batching the acks is what collapses the
// reverse stream under load: a 64-frame coalesced burst used to cost
// 64 pure acks, now it costs one per pair, restating the highest
// in-order sequence. Cumulative acks are monotone, so the skipped
// intermediate values carry no information; exactly-once FIFO is
// untouched because delivery order and dedup happen per frame below,
// before any ack is formed.
func (p *peer) onInbound(gen uint64, frames []wire.Frame) {
	if p.stale(gen) {
		return
	}
	for i := range frames {
		fr := &frames[i]
		switch fr.Kind {
		case wire.Data:
			p.onData(*fr)
		case wire.Ack:
			p.applyAck(int(fr.To), int(fr.From), fr.Ack)
		default:
			// readLoop batches only Data and Ack; anything else here is a
			// local bug, never peer behavior.
			p.node.tr.recordErr(fmt.Errorf("remote: %v frame in inbound batch", fr.Kind))
		}
	}
	// Flush the burst's acks, one per pair in sorted order (determinism
	// under netsim); sendAck stashes into pendingAck when the writer is
	// saturated, exactly like the per-frame path did.
	for _, key := range sortedPairKeys(p.ackDue) {
		p.sendAck(key.from, key.to, p.ackDue[key])
		delete(p.ackDue, key)
	}
}

// onData processes one data frame from remote process fr.From to local
// process fr.To (manager goroutine only) and records the pair's ack in
// ackDue for the batch flush — acknowledging every data frame, if only
// cumulatively, so the sender's queue drains even when the application
// has nothing to say back.
func (p *peer) onData(fr wire.Frame) {
	p.applyAck(int(fr.To), int(fr.From), fr.Ack)
	key := pairKey{from: int(fr.From), to: int(fr.To)}
	rs := p.recvStateFor(key)
	switch {
	case fr.Seq < rs.next:
		p.node.tr.dupSuppressed(p.remote)
	case fr.Seq == rs.next:
		p.node.deliverData(fr.Message())
		rs.next++
		for {
			m, ok := rs.buf[rs.next]
			if !ok {
				break
			}
			delete(rs.buf, rs.next)
			p.node.deliverData(m)
			rs.next++
		}
	default:
		if _, dup := rs.buf[fr.Seq]; dup {
			p.node.tr.dupSuppressed(p.remote)
		} else {
			rs.buf[fr.Seq] = fr.Message()
		}
	}
	ackKey := pairKey{from: key.to, to: key.from}
	if cur, ok := p.ackDue[ackKey]; !ok || rs.next-1 > cur {
		p.ackDue[ackKey] = rs.next - 1
	}
}

// applyAck applies a cumulative ack from the remote process `remote`
// covering the stream local → remote (manager goroutine only). Acked
// entries are popped from the ring — which zeroes their slots, so the
// messages are garbage-collectible immediately — and a pair that
// drains to low-water resumes its stalled sender.
func (p *peer) applyAck(local, remote int, ack uint64) {
	key := pairKey{from: local, to: remote}
	ss, ok := p.sends[key]
	if !ok {
		return
	}
	progressed := false
	for ss.queue.len() > 0 && ss.queue.front().seq <= ack {
		e := ss.queue.popFront()
		ss.bytes -= len(e.buf)
		p.node.tr.appDeliver(e.msg.From, e.msg.To)
		progressed = true
	}
	if !progressed {
		return
	}
	p.noteQueue(key, ss)
	p.maybeUnstall(key, ss)
	// Forward progress: the path works, so reset the backoff.
	ss.rto = p.node.cfg.RTO
	if ss.queue.len() > 0 {
		if !ss.suspended {
			p.armDeadline(ss, p.node.clk.Now())
		}
	} else {
		ss.deadline = time.Time{}
	}
}

// sendHeartbeat transmits one ◇P₁ heartbeat (manager goroutine only;
// silently skipped while disconnected — missing heartbeats are the
// signal). On a saturated writer the heartbeat is stashed, latest
// instance only: heartbeats are idempotent liveness pulses, so
// coalescing sheds load without losing information.
func (p *peer) sendHeartbeat(from, to int) {
	if p.conn == nil {
		return
	}
	buf := p.encodeFrame(wire.Frame{Kind: wire.Heartbeat, From: uint32(from), To: uint32(to)})
	if buf == nil {
		return
	}
	if !p.sendEncoded(buf) {
		p.pendingHB[pairKey{from: from, to: to}] = true
		p.node.tr.coalescedFrame(p.remote)
	}
}
