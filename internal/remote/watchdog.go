package remote

import (
	"fmt"
	"time"
)

// The node watchdog is the self-defense layer behind the transport's
// cooperative flow control: everything else in this package assumes
// every goroutine keeps draining its queue, and the watchdog is what
// turns a violation of that assumption — a wedged process or peer
// manager — into a loud, contained failure instead of a silent
// cluster-wide stall.
//
// Two wedge shapes exist, and they chain:
//
//   - a process stops consuming its inbox (a blocking OnEat hook, a
//     livelocked workload). Its inbox fills, and the next peer manager
//     that tries to deliver to it blocks in post — now the *manager*
//     is wedged too, and every pair that manager carries stops acking.
//   - a peer manager stops draining cmds for any other reason.
//
// The watchdog breaks the chain at the root: a process with a full
// inbox and a stale progress stamp is crashed through the normal crash
// path (closing its dead channel unblocks every post aimed at it, so
// wedged managers resume on their own). ◇P₁ then handles the rest —
// heartbeats cease, neighbors suspect the crashed process, and the
// paper's failure containment bounds the blast radius to its edges.
//
// For a manager that stays wedged even with no crashed-process
// excuse, the watchdog declares the link Down, force-closes the
// current socket (the one manager-owned resource it can safely touch
// from outside: connDown is generation-checked, so a racing close is
// absorbed), and gives the manager one more budget to recover.
// Escalation after that is a recorded error — the same loud channel
// as a protocol-invariant trip, surfaced by Node.Err and fatal to the
// chaos soak's no-errors verdict.
//
// The watchdog deliberately does NOT reset ARQ or dining state for a
// wedged link. Unilateral resets desynchronize: dropping our send
// cursor back to 1 against a peer whose receive cursor is high means
// every future frame is dedup-dropped forever. State resets are only
// safe through the incarnation handshake (noteIncarnation), where the
// restarted side provably boots fresh — so recovery-by-restart stays
// the job of the crash/restart path the watchdog feeds into.
func (n *Node) watchdog() {
	defer n.wg.Done()
	budget := n.cfg.WedgeBudget
	ticker := n.clk.NewTicker(budget / 2)
	defer ticker.Stop()
	// downSince tracks managers the watchdog has already intervened
	// against, for the one-more-budget escalation.
	downSince := make(map[int]time.Time)
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C():
			n.watchdogScan(budget, downSince)
		}
	}
}

// watchdogScan runs one sweep over processes and peer managers.
func (n *Node) watchdogScan(budget time.Duration, downSince map[int]time.Time) {
	now := n.clk.Now()
	for id, p := range n.procs {
		select {
		case <-p.dead:
			continue
		default:
		}
		if len(p.inbox) < cap(p.inbox) {
			continue
		}
		if now.Sub(time.Unix(0, p.lastEvent.Load())) <= budget {
			continue
		}
		// Full inbox and no progress for a whole budget: the process is
		// wedged. Crash it — post() selects on the dead channel, so
		// every manager blocked delivering to this inbox unwedges.
		n.failProc(id, fmt.Errorf(
			"remote: watchdog: process %d wedged (inbox full, no progress for %v); crashing it", id, budget))
	}
	for remote, pr := range n.peers {
		if len(pr.cmds) < cap(pr.cmds)/2 {
			delete(downSince, remote)
			continue
		}
		if now.Sub(time.Unix(0, pr.lastDrain.Load())) <= budget {
			delete(downSince, remote)
			continue
		}
		since, known := downSince[remote]
		if !known {
			// First verdict: declare the link Down, force-close the
			// socket to stop inbound pressure, and give the manager one
			// more budget to drain (the usual cause — a crashed-process
			// inbox — has just been cleared above).
			downSince[remote] = now
			n.tr.wedge(remote)
			n.tr.setHealth(remote, HealthDown, "manager wedged")
			n.logf("node %d: watchdog: peer %d manager wedged (mailbox %d/%d); closing socket",
				n.self, remote, len(pr.cmds), cap(pr.cmds))
			if box, ok := pr.liveSock.Load().(sockBox); ok && box.c != nil {
				box.c.Close()
			}
			continue
		}
		if now.Sub(since) > budget {
			// Still wedged a full budget after intervention: crash
			// loudly. The error makes Node.Err non-nil and fails every
			// harness verdict — a wedge must never pass silently.
			n.tr.recordErr(fmt.Errorf(
				"remote: watchdog: peer %d manager still wedged %v after intervention", remote, now.Sub(since)))
			delete(downSince, remote)
		}
	}
}
