package remote

import "repro/internal/core"

// sendRing is the fixed-capacity unacked-frame buffer of one ordered
// pair. It replaces the append/[1:] slice the go-back-N queue used to
// grow: that pattern both let a partitioned peer pin unbounded memory
// on every healthy node (the opposite of the paper's failure
// containment) and retained acked entries in the backing array until
// the whole slice was reallocated. The ring's capacity is the pair's
// hard resource bound — push refuses instead of growing — and popFront
// zeroes the vacated slot so an acked message is unreachable the
// moment its cumulative ack lands.
//
// The ring is owned by the peer manager goroutine; it needs no locks.
type sendRing struct {
	buf  []sendEntry
	head int // index of the oldest entry
	n    int // occupied slots
}

func newSendRing(capacity int) *sendRing {
	return &sendRing{buf: make([]sendEntry, capacity)}
}

// cap returns the fixed capacity.
func (r *sendRing) capacity() int { return len(r.buf) }

// len returns the number of queued entries.
func (r *sendRing) len() int { return r.n }

// full reports whether push would refuse.
func (r *sendRing) full() bool { return r.n == len(r.buf) }

// push appends e, reporting false (and storing nothing) when the ring
// is full. The caller decides what a refusal means; the ring only
// enforces the bound.
func (r *sendRing) push(e sendEntry) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
	return true
}

// front returns the oldest entry; it must not be called on an empty
// ring.
func (r *sendRing) front() sendEntry { return r.buf[r.head] }

// popFront removes and zeroes the oldest entry, so the acked message
// (and any pointers its payload carries) is garbage-collectible
// immediately — the regression contract for the old backing-array
// leak.
func (r *sendRing) popFront() sendEntry {
	e := r.buf[r.head]
	r.buf[r.head] = sendEntry{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}

// at returns the i-th entry from the front (0 = oldest); callers
// iterate i in [0, len()).
func (r *sendRing) at(i int) sendEntry { return r.buf[(r.head+i)%len(r.buf)] }

// appendBufs appends the stored encoding of every queued entry, oldest
// first, to dst and returns it: the iovec-backed flush path. A
// retransmission burst reuses the exact bytes submit froze — no
// re-encode, no re-slice — and the write loop gathers the appended
// buffers into one writev.
func (r *sendRing) appendBufs(dst [][]byte) [][]byte {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(r.head+i)%len(r.buf)].buf)
	}
	return dst
}

// isZero reports a vacated slot. The leak-regression tests assert every
// popped or cleared slot returns to this state; it replaces direct
// struct comparison now that entries hold their encoded bytes (a slice
// field makes sendEntry non-comparable).
func (e sendEntry) isZero() bool {
	return e.seq == 0 && e.buf == nil && e.msg == (core.Message{})
}

// clear drops and zeroes everything (the incarnation-reset path).
func (r *sendRing) clear() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = sendEntry{}
	}
	r.head, r.n = 0, 0
}
