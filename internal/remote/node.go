// Package remote runs the dining algorithm across real sockets: one
// Node per OS process (or per test-harness instance), TCP connections
// between nodes, and the byte-stable internal/wire codec on the wire.
// It is the bridge from the in-process runtimes — the deterministic
// simulator (internal/sim) and the goroutine runtime (internal/live) —
// to a deployable system: delay, loss, reordering, and crashes come
// from the real network instead of a fault plan.
//
// The layering mirrors the paper's Section 2 reconstruction exactly as
// internal/rlink does for the simulator. TCP gives FIFO bytes per
// connection but connections die and are replaced, so above each
// node-pair connection the transport runs an ARQ discipline per
// ordered process pair: sequence numbers assigned at first send,
// cumulative acknowledgments (piggybacked on data frames and echoed as
// pure acks), go-back-N retransmission with the shared exponential
// backoff + jitter policy (internal/backoff), and receive-side
// dedup/reordering — so application delivery is exactly-once FIFO
// *across reconnects*, which is what core.Diner requires.
//
// ◇P₁ is wall-clock heartbeats between neighbor processes with
// adaptive timeouts (each false suspicion widens the timeout), scoped
// locally as the paper prescribes. As in internal/rlink, suspicion
// parks retransmission toward the suspected process and trust resumes
// it, preserving the quiescence property: a crashed node draws only
// finitely many retransmits.
//
// Every process goroutine exclusively owns its diner, detector state,
// and timers; each peer connection is owned by a single manager
// goroutine that executes closures from a command channel, so the
// package needs no locks beyond the metrics tracker's mutex (lockheld
// enforces the discipline).
package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/vclock"
)

// Config assembles a Node. Topology is required; every other field has
// a workable default.
type Config struct {
	// Topology is the shared cluster layout (required).
	Topology *Topology
	// Node is this daemon's index into Topology.Nodes.
	Node int
	// Colors are the static priorities for all processes; nil selects
	// the deterministic greedy coloring, which every node computes
	// identically from the shared graph.
	Colors []int
	// Options tweak the dining algorithm (see core.Options).
	Options core.Options

	// HeartbeatPeriod is the ◇P₁ heartbeat interval (default 25ms).
	HeartbeatPeriod time.Duration
	// InitialTimeout is the starting suspicion timeout (default 500ms).
	InitialTimeout time.Duration
	// TimeoutIncrement is added after each false suspicion (default
	// 250ms).
	TimeoutIncrement time.Duration

	// EatTime and ThinkTime are the workload pauses (defaults 2ms
	// each). Processes are re-hungry forever until Stop.
	EatTime   time.Duration
	ThinkTime time.Duration

	// OnProcCrash, when non-nil, is invoked once when a local process
	// falls over — a recovered hook panic or a tripped protocol
	// invariant (runs on the process goroutine, before it exits). The
	// chaos harness uses it to tell the fairness monitors a process is
	// legitimately gone rather than starving.
	OnProcCrash func(proc int)
	// OnEat, when non-nil, runs on the process's own goroutine each
	// time it begins eating — the distributed-daemon hook. After
	// detector convergence it never runs concurrently for conflict-
	// graph neighbors, cluster-wide. A panicking hook is recovered and
	// the process falls over as a crash.
	OnEat func(proc int)
	// Observer, when non-nil, is invoked on every dining transition of
	// a local process (from the process goroutine, outside all locks).
	// The cluster test harness hangs its metrics monitors here.
	Observer func(proc int, from, to core.State)

	// RTO is the initial ARQ retransmission timeout (default 30ms);
	// MaxRTO caps the exponential backoff (default 1s);
	// RetransmitJitter decorrelates retransmission bursts (default
	// 10ms).
	RTO, MaxRTO, RetransmitJitter time.Duration
	// DialBackoff and DialBackoffMax bound the reconnect schedule
	// (defaults 25ms and 1s).
	DialBackoff, DialBackoffMax time.Duration

	// SendWindow is the fixed per-ordered-pair ARQ ring capacity
	// (default 256 frames): the hard bound on what a partitioned or
	// slow peer can pin on this node. Crossing the window's high-water
	// mark parks the sending pair at the dining layer like suspicion
	// does; the window itself never grows.
	SendWindow int
	// WedgeBudget is how long a peer manager's mailbox (or a process
	// inbox) may stay backed up without the owner making progress
	// before the node watchdog intervenes (default 2s).
	WedgeBudget time.Duration
	// ProcInboxCap sizes each process event inbox (default 1024; tests
	// shrink it to provoke the watchdog's wedge handling).
	ProcInboxCap int

	// Seed feeds the jitter randomness (default 1).
	Seed int64

	// Clock is the node's sole source of time — heartbeats, suspicion
	// deadlines, ARQ retransmission, reconnect backoff, and workload
	// pauses all read it. Nil selects the wall clock (vclock.Wall); the
	// chaos harness injects netsim's virtual clock so the whole stack
	// runs on simulated time.
	Clock vclock.Clock
	// Incarnation overrides the node's boot incarnation (0 derives one
	// from the wall clock). Harnesses that restart nodes at the same
	// virtual instant must inject distinct incarnations, since peers
	// detect restarts by incarnation change.
	Incarnation uint64

	// Listener, when non-nil, is the pre-bound transport listener (the
	// test harness binds port 0 first so addresses are known before
	// nodes start). Nil makes Start listen on the node's topology
	// address.
	Listener net.Listener
	// Dial, when non-nil, replaces the TCP dialer (tests substitute
	// in-memory pipes). Nil selects net.DialTimeout.
	Dial func(addr string) (net.Conn, error)
	// Logf, when non-nil, receives debug logging.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() error {
	if c.Topology == nil {
		return errors.New("remote: Config.Topology is required")
	}
	if c.Node < 0 || c.Node >= len(c.Topology.Nodes) {
		return fmt.Errorf("remote: node index %d outside topology of %d nodes", c.Node, len(c.Topology.Nodes))
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 25 * time.Millisecond
	}
	if c.InitialTimeout <= 0 {
		c.InitialTimeout = 500 * time.Millisecond
	}
	if c.TimeoutIncrement <= 0 {
		c.TimeoutIncrement = 250 * time.Millisecond
	}
	if c.EatTime <= 0 {
		c.EatTime = 2 * time.Millisecond
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 2 * time.Millisecond
	}
	rto := backoff.Policy{
		Initial: int64(c.RTO), Max: int64(c.MaxRTO), Jitter: int64(c.RetransmitJitter),
	}.Normalized(int64(30*time.Millisecond), int64(time.Second), int64(10*time.Millisecond))
	c.RTO, c.MaxRTO, c.RetransmitJitter = time.Duration(rto.Initial), time.Duration(rto.Max), time.Duration(rto.Jitter)
	dial := backoff.Policy{
		Initial: int64(c.DialBackoff), Max: int64(c.DialBackoffMax),
	}.Normalized(int64(25*time.Millisecond), int64(time.Second), 0)
	c.DialBackoff, c.DialBackoffMax = time.Duration(dial.Initial), time.Duration(dial.Max)
	if c.SendWindow <= 0 {
		c.SendWindow = 256
	}
	if c.WedgeBudget <= 0 {
		c.WedgeBudget = 2 * time.Second
	}
	if c.ProcInboxCap <= 0 {
		c.ProcInboxCap = procInboxCap
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = vclock.Wall
	}
	return nil
}

// rtoPolicy is the ARQ retransmission schedule in nanoseconds.
func (c *Config) rtoPolicy() backoff.Policy {
	return backoff.Policy{Initial: int64(c.RTO), Max: int64(c.MaxRTO), Jitter: int64(c.RetransmitJitter)}
}

// dialPolicy is the reconnect schedule in nanoseconds.
func (c *Config) dialPolicy() backoff.Policy {
	return backoff.Policy{Initial: int64(c.DialBackoff), Max: int64(c.DialBackoffMax), Jitter: int64(c.DialBackoff)}
}

// Node is one daemon: the processes it hosts plus the transport links
// to every peer node hosting a conflict-graph neighbor.
type Node struct {
	cfg         Config
	topo        *Topology
	self        int
	incarnation uint64
	clk         vclock.Clock

	ln    net.Listener
	procs map[int]*rproc
	peers map[int]*peer
	tr    *tracker

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  bool
}

// NewNode builds (but does not start) a node.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	colors := cfg.Colors
	if colors == nil {
		colors = topo.G.GreedyColoring()
	}
	if len(colors) != topo.G.N() || !topo.G.IsProperColoring(colors) {
		return nil, errors.New("remote: invalid coloring")
	}
	incarnation := cfg.Incarnation
	if incarnation == 0 {
		incarnation = uint64(cfg.Clock.Now().UnixNano())
	}
	n := &Node{
		cfg:         cfg,
		topo:        topo,
		self:        cfg.Node,
		incarnation: incarnation,
		clk:         cfg.Clock,
		procs:       make(map[int]*rproc),
		peers:       make(map[int]*peer),
		tr:          newTracker(topo.G),
		stop:        make(chan struct{}),
	}
	for _, pid := range topo.Nodes[n.self].Procs {
		p := &rproc{
			node:      n,
			id:        pid,
			inbox:     make(chan procEvent, cfg.ProcInboxCap),
			dead:      make(chan struct{}),
			nbrs:      topo.G.Neighbors(pid),
			lastHeard: make(map[int]time.Time),
			timeout:   make(map[int]time.Duration),
			suspected: make(map[int]bool),
			stalled:   make(map[int]bool),
		}
		nbrColors := make(map[int]int, len(p.nbrs))
		for _, j := range p.nbrs {
			nbrColors[j] = colors[j]
		}
		d, err := core.NewDiner(core.Config{
			ID:             pid,
			Color:          colors[pid],
			NeighborColors: nbrColors,
			// A backpressure-stalled neighbor is treated exactly like a
			// suspected one: the diner stops waiting on it, preserving
			// wait-freedom among non-stalled neighbors while the
			// transport drains the backlog.
			Suspects: func(j int) bool { return p.suspected[j] || p.stalled[j] },
			Options:  cfg.Options,
		})
		if err != nil {
			return nil, fmt.Errorf("remote: process %d: %w", pid, err)
		}
		p.diner = d
		n.procs[pid] = p
		n.tr.addProc(pid)
	}
	for _, peerIdx := range topo.PeersOf(n.self) {
		n.peers[peerIdx] = newPeer(n, peerIdx)
		n.tr.addPeer(peerIdx, topo.Nodes[peerIdx].Addr)
	}
	return n, nil
}

// Start binds the listener (unless one was injected), launches the
// transport and process goroutines, and makes every hosted process
// hungry. Extra calls are no-ops.
func (n *Node) Start() error {
	if n.started {
		return nil
	}
	n.started = true
	if n.cfg.Listener != nil {
		n.ln = n.cfg.Listener
	} else {
		ln, err := net.Listen("tcp", n.topo.Nodes[n.self].Addr)
		if err != nil {
			return fmt.Errorf("remote: node %d listen: %w", n.self, err)
		}
		n.ln = ln
	}
	n.wg.Add(1)
	go n.acceptLoop()
	for _, p := range n.peers {
		n.wg.Add(1)
		go p.run()
	}
	now := n.clk.Now()
	for _, p := range n.procs {
		for _, j := range p.nbrs {
			p.lastHeard[j] = now
			p.timeout[j] = n.cfg.InitialTimeout
		}
		n.wg.Add(1)
		go p.run()
		p.post(procEvent{kind: evHungry})
	}
	n.wg.Add(1)
	go n.watchdog()
	return nil
}

// Addr returns the transport listen address (useful with port 0).
func (n *Node) Addr() string {
	if n.ln == nil {
		return n.topo.Nodes[n.self].Addr
	}
	return n.ln.Addr().String()
}

// Stop shuts the node down: the listener and every connection close,
// and all goroutines exit. From the rest of the cluster this is
// indistinguishable from a crash — heartbeats cease, dials are
// refused — which is exactly the failure model the algorithm handles.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		if n.ln != nil {
			n.ln.Close()
		}
	})
	n.wg.Wait()
}

// logf emits debug logging when configured.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Err returns the first failure recorded by any local process —
// protocol-invariant violations and recovered hook panics. Call after
// Stop.
func (n *Node) Err() error { return n.tr.firstErr() }

// peerFor returns the manager for the node hosting process q.
func (n *Node) peerFor(q int) *peer { return n.peers[n.topo.NodeOf(q)] }

// routeMessages transmits diner outputs from local process p: directly
// into a co-hosted neighbor's inbox, or through the peer transport.
func (n *Node) routeMessages(msgs []core.Message) {
	for _, m := range msgs {
		if n.topo.NodeOf(m.To) == n.self {
			n.tr.appSend(m.From, m.To)
			dst := n.procs[m.To]
			dst.post(procEvent{kind: evMessage, msg: m, from: m.From})
			continue
		}
		pr := n.peerFor(m.To)
		if pr == nil {
			// Topology guarantees a peer exists for every remote
			// neighbor; a miss is a wiring bug worth failing loudly.
			n.tr.recordErr(fmt.Errorf("remote: no peer for process %d", m.To))
			continue
		}
		n.tr.appSend(m.From, m.To)
		m := m
		pr.post(func() { pr.submit(m) })
	}
}

// deliverData posts one in-order application message from a remote
// neighbor into the local process inbox (called on peer manager
// goroutines).
func (n *Node) deliverData(m core.Message) {
	if dst, ok := n.procs[m.To]; ok {
		dst.post(procEvent{kind: evMessage, msg: m, from: m.From})
	}
}

// resetEdges tells every local process neighboring a process hosted on
// the restarted node remote to reinitialize that edge's dining state
// (called on the peer manager goroutine from noteIncarnation, before
// any fresh-epoch frame is read, so the reset lands in each inbox
// ahead of the reborn neighbor's first message). See
// core.Diner.ResetNeighbor for why recovery requires this.
func (n *Node) resetEdges(remote int) {
	for _, lp := range n.procs {
		for _, j := range lp.nbrs {
			if n.topo.NodeOf(j) == remote {
				lp.post(procEvent{kind: evNeighborReset, from: j})
			}
		}
	}
}

// deliverHeartbeat posts a remote heartbeat (called on reader
// goroutines; dropped when the inbox is full, like internal/live —
// late heartbeats only delay unsuspicion).
func (n *Node) deliverHeartbeat(to, from int) {
	if dst, ok := n.procs[to]; ok {
		dst.postHeartbeat(from)
	}
}

// signalStall surfaces a transport backpressure stall (or its end) on
// the stream local → nbr to the owning process (called on peer manager
// goroutines).
func (n *Node) signalStall(local, nbr int, stalled bool) {
	if dst, ok := n.procs[local]; ok {
		dst.post(procEvent{kind: evStall, from: nbr, stalled: stalled})
	}
}

// failProc records err and crashes the local process id — the loud,
// contained failure path for resource-contract breaches (callable from
// peer manager and watchdog goroutines; rproc.crash is idempotent and
// goroutine-safe).
func (n *Node) failProc(id int, err error) {
	n.tr.recordErr(err)
	if p, ok := n.procs[id]; ok {
		p.crash()
	}
}

// --- process event loop ------------------------------------------------

// procInboxCap sizes a process inbox. The paper bounds in-transit
// dining messages by 4 per edge, so the dining load on an inbox is at
// most 4·degree; heartbeats are dropped when the inbox is full. The
// slack above that bound exists so transient bursts (reconnect
// retransmissions) never make a peer manager block on a full inbox
// while a process blocks on that manager's command queue.
const procInboxCap = 1024

type eventKind int

const (
	evMessage eventKind = iota + 1
	evHeartbeat
	evHungry
	evExitEat
	evNeighborReset
	evStall
)

type procEvent struct {
	kind    eventKind
	msg     core.Message
	from    int
	stalled bool // evStall: stall began (true) or drained (false)
}

// rproc is one hosted process: a goroutine owning a diner, its ◇P₁
// state, and its workload timers.
type rproc struct {
	node  *Node
	id    int
	diner *core.Diner // owned: run
	inbox chan procEvent
	dead  chan struct{}
	once  sync.Once
	nbrs  []int

	// Failure-detector state, owned by the run goroutine (enforced by
	// the mailboxown analyzer).
	lastHeard map[int]time.Time     // owned: run
	timeout   map[int]time.Duration // owned: run
	suspected map[int]bool          // owned: run
	// stalled marks neighbors whose outbound stream is backpressure-
	// parked; the diner's Suspects view ORs it with suspicion.
	stalled map[int]bool // owned: run

	// lastEvent is the clk nanos of the last run-loop iteration, read
	// by the node watchdog to spot a wedged process.
	lastEvent atomic.Int64
}

// post delivers an event, giving up if the process died or the node is
// stopping.
func (p *rproc) post(ev procEvent) {
	select {
	case p.inbox <- ev:
	case <-p.dead:
	case <-p.node.stop:
	}
}

// postHeartbeat delivers a heartbeat without ever blocking.
func (p *rproc) postHeartbeat(from int) {
	select {
	case p.inbox <- procEvent{kind: evHeartbeat, from: from}:
	default:
	}
}

// crash marks the process failed; its goroutine exits and it falls
// silent, leaving neighbors to their detectors.
func (p *rproc) crash() {
	p.once.Do(func() {
		close(p.dead)
		if p.node.cfg.OnProcCrash != nil {
			p.node.cfg.OnProcCrash(p.id)
		}
	})
	p.node.tr.crash(p.id)
}

func (p *rproc) run() {
	defer p.node.wg.Done()
	// A panicking daemon hook must not hang the neighbors sharing this
	// process's forks: recover, record, and fall over as a crash.
	defer func() {
		if r := recover(); r != nil {
			p.node.tr.recordErr(fmt.Errorf("remote: process %d: recovered hook panic: %v", p.id, r))
			p.crash()
		}
	}()
	ticker := p.node.clk.NewTicker(p.node.cfg.HeartbeatPeriod)
	defer ticker.Stop()
	p.lastEvent.Store(p.node.clk.Now().UnixNano())
	for {
		select {
		case <-p.node.stop:
			return
		case <-p.dead:
			return
		case <-ticker.C():
			p.heartbeatRound()
		case ev := <-p.inbox:
			p.handle(ev)
		}
		// Progress stamp for the watchdog: a full inbox plus a stale
		// stamp means this process stopped consuming events.
		p.lastEvent.Store(p.node.clk.Now().UnixNano())
	}
}

// heartbeatRound sends heartbeats to all neighbors and refreshes
// suspicions from deadlines.
func (p *rproc) heartbeatRound() {
	for _, j := range p.nbrs {
		if p.node.topo.NodeOf(j) == p.node.self {
			p.node.deliverHeartbeat(j, p.id)
			continue
		}
		if pr := p.node.peerFor(j); pr != nil {
			from, to := p.id, j
			pr.post(func() { pr.sendHeartbeat(from, to) })
		}
	}
	now := p.node.clk.Now()
	changed := false
	for _, j := range p.nbrs {
		if !p.suspected[j] && now.Sub(p.lastHeard[j]) > p.timeout[j] {
			p.suspected[j] = true
			p.setParked(j, true)
			changed = true
		}
	}
	if changed {
		p.node.tr.setSuspects(p.id, p.suspected)
		p.act(func() []core.Message { return p.diner.ReevaluateSuspicion() })
	}
}

// setParked parks or resumes ARQ retransmission toward neighbor j,
// mirroring rlink's suspicion-parked timers (quiescence: a crashed
// peer draws only finitely many retransmits).
func (p *rproc) setParked(j int, parked bool) {
	if p.node.topo.NodeOf(j) == p.node.self {
		return
	}
	if pr := p.node.peerFor(j); pr != nil {
		from, to := p.id, j
		pr.post(func() { pr.setSuspended(from, to, parked) })
	}
}

func (p *rproc) handle(ev procEvent) {
	switch ev.kind {
	case evHeartbeat:
		p.lastHeard[ev.from] = p.node.clk.Now()
		if p.suspected[ev.from] {
			// False suspicion: widen the timeout (the adaptive part of
			// ◇P₁), resume retransmission, re-run the guards.
			p.suspected[ev.from] = false
			p.timeout[ev.from] += p.node.cfg.TimeoutIncrement
			p.setParked(ev.from, false)
			p.node.tr.setSuspects(p.id, p.suspected)
			p.act(func() []core.Message { return p.diner.ReevaluateSuspicion() })
		}
	case evMessage:
		m := ev.msg
		if p.node.topo.NodeOf(m.From) == p.node.self {
			// Local edges complete their occupancy accounting here;
			// remote streams complete at the sender when the ack lands.
			p.node.tr.appDeliver(m.From, m.To)
		}
		p.act(func() []core.Message { return p.diner.Deliver(m) })
	case evHungry:
		p.act(func() []core.Message { return p.diner.BecomeHungry() })
	case evExitEat:
		p.act(func() []core.Message { return p.diner.ExitEating() })
	case evNeighborReset:
		p.act(func() []core.Message { return p.diner.ResetNeighbor(ev.from) })
	case evStall:
		if p.stalled[ev.from] == ev.stalled {
			return
		}
		p.stalled[ev.from] = ev.stalled
		// The diner re-reads its Suspects view: a stalled neighbor is
		// dropped from (or restored to) the processes it waits on,
		// exactly as suspicion transitions do.
		p.act(func() []core.Message { return p.diner.ReevaluateSuspicion() })
	}
}

// act executes one diner action, routes its outputs, and reacts to
// state transitions.
func (p *rproc) act(action func() []core.Message) {
	before := p.diner.State()
	msgs := action()
	after := p.diner.State()
	if err := p.diner.Err(); err != nil {
		// A diner that tripped a protocol invariant is halted for good —
		// core.Diner refuses every further action, so it will never
		// answer another ping. Keeping its heartbeat alive would make
		// neighbors trust a process that cannot respond, starving them
		// forever. Fall over as a crash instead (exactly like a
		// panicking OnEat hook): heartbeats stop, ◇P₁ suspects us, and
		// the neighbors keep eating — wait-freedom is preserved. This is
		// also the last line of defense around crash-recovery: the
		// incarnation-driven edge resets (resetEdges) keep restart
		// reconciliation invariant-clean, but a stale message that slips
		// through a race window degrades to a crash here, never a wedge.
		p.node.tr.recordErr(fmt.Errorf("remote: process %d: %w", p.id, err))
		p.crash()
		return
	}
	p.node.routeMessages(msgs)
	if before == after {
		return
	}
	if before == core.Thinking && after == core.Eating {
		p.transition(core.Thinking, core.Hungry)
		before = core.Hungry
	}
	p.transition(before, after)
	switch after {
	case core.Eating:
		if p.node.cfg.OnEat != nil {
			p.node.cfg.OnEat(p.id)
		}
		p.node.clk.AfterFunc(p.node.cfg.EatTime, func() { p.post(procEvent{kind: evExitEat}) })
	case core.Thinking:
		p.node.clk.AfterFunc(p.node.cfg.ThinkTime, func() { p.post(procEvent{kind: evHungry}) })
	case core.Hungry:
		// The hungry phase ends when the protocol grants entry, driven
		// by message deliveries.
	}
}

// transition records one dining transition with the tracker and the
// configured observer.
func (p *rproc) transition(from, to core.State) {
	p.node.tr.transition(p.id, to, p.diner.EatCount(), p.diner.Sessions())
	if p.node.cfg.Observer != nil {
		p.node.cfg.Observer(p.id, from, to)
	}
}

// jitterRand builds a peer-local jitter source. Each peer gets its own
// so managers never share rand state.
func (n *Node) jitterRand(peerIdx int) *rand.Rand {
	return rand.New(rand.NewSource(n.cfg.Seed + int64(n.self)*100003 + int64(peerIdx)*1009))
}
