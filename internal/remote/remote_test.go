package remote

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestParseTopologyRoundTrip(t *testing.T) {
	const in = `# 3-ring over three daemons
n 3
0 1
1 2
2 0
node 127.0.0.1:7000 0
node 127.0.0.1:7001 1
node 127.0.0.1:7002 2
`
	topo, err := ParseTopology(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if topo.G.N() != 3 || topo.G.M() != 3 {
		t.Fatalf("graph %d vertices %d edges, want 3/3", topo.G.N(), topo.G.M())
	}
	if len(topo.Nodes) != 3 || topo.Nodes[1].Addr != "127.0.0.1:7001" {
		t.Fatalf("nodes parsed wrong: %+v", topo.Nodes)
	}
	for p := 0; p < 3; p++ {
		if topo.NodeOf(p) != p {
			t.Fatalf("NodeOf(%d) = %d, want %d", p, topo.NodeOf(p), p)
		}
	}
	var sb strings.Builder
	if err := topo.Write(&sb); err != nil {
		t.Fatal(err)
	}
	again, err := ParseTopology(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse of rendered topology: %v\n%s", err, sb.String())
	}
	if again.G.N() != 3 || len(again.Nodes) != 3 {
		t.Fatalf("round trip lost structure: %+v", again)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"duplicate process": "n 2\n0 1\nnode a:1 0 1\nnode a:2 1\n",
		"missing process":   "n 2\n0 1\nnode a:1 0\n",
		"bad node line":     "n 2\n0 1\nnode a:1\nnode a:2 0 1\n",
		"bad process id":    "n 2\n0 1\nnode a:1 x\nnode a:2 0 1\n",
		"out of range":      "n 2\n0 1\nnode a:1 0 1 5\n",
		"no nodes":          "n 2\n0 1\n",
	}
	for name, in := range cases {
		if _, err := ParseTopology(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestPeersOf(t *testing.T) {
	// Path 0-1-2-3 split over three nodes: {0,1}, {2}, {3}.
	g := graph.Path(4)
	topo, err := NewTopology(g, []NodeSpec{
		{Addr: "a", Procs: []int{0, 1}}, {Addr: "b", Procs: []int{2}}, {Addr: "c", Procs: []int{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.PeersOf(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PeersOf(0) = %v, want [1]", got)
	}
	if got := topo.PeersOf(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("PeersOf(1) = %v, want [0 2]", got)
	}
	if got := topo.PeersOf(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PeersOf(2) = %v, want [1]", got)
	}
}

// testCluster builds one Node per NodeSpec over g with pre-bound
// ephemeral listeners and fast test timings.
func testCluster(t *testing.T, g *graph.Graph, placement [][]int, mut func(i int, cfg *Config)) []*Node {
	t.Helper()
	listeners := make([]net.Listener, len(placement))
	specs := make([]NodeSpec, len(placement))
	for i, procs := range placement {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		specs[i] = NodeSpec{Addr: ln.Addr().String(), Procs: procs}
	}
	topo, err := NewTopology(g, specs)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, len(placement))
	for i := range placement {
		cfg := Config{
			Topology:        topo,
			Node:            i,
			HeartbeatPeriod: 5 * time.Millisecond,
			InitialTimeout:  200 * time.Millisecond,
			EatTime:         time.Millisecond,
			ThinkTime:       time.Millisecond,
			RTO:             15 * time.Millisecond,
			DialBackoff:     10 * time.Millisecond,
			Listener:        listeners[i],
			Seed:            int64(i) + 1,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	return nodes
}

// waitEats polls until every listed process on node n has eaten at
// least min more times than base, or the deadline expires.
func waitEats(t *testing.T, nodes []*Node, base map[int]int, min int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		done := true
		counts := map[int]int{}
		for _, n := range nodes {
			for id, c := range n.EatCounts() {
				counts[id] = c
				if c-base[id] < min {
					done = false
				}
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d eats over base %v; counts %v", min, base, counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTwoNodeEdgeEats(t *testing.T) {
	g := graph.Clique(2)
	nodes := testCluster(t, g, [][]int{{0}, {1}}, nil)
	waitEats(t, nodes, nil, 5, 20*time.Second)
	for _, n := range nodes {
		if err := n.Err(); err != nil {
			t.Fatalf("node error: %v", err)
		}
	}
	st := nodes[0].Status()
	if len(st.Procs) != 1 || len(st.Peers) != 1 || !st.Peers[0].Connected {
		t.Fatalf("unexpected status: %+v", st)
	}
}

func TestMixedLocalRemoteEdges(t *testing.T) {
	// Ring of 4 over two nodes: edges 0-1 and 2-3 are node-local,
	// edges 1-2 and 3-0 cross the wire.
	g := graph.Ring(4)
	nodes := testCluster(t, g, [][]int{{0, 1}, {2, 3}}, nil)
	waitEats(t, nodes, nil, 5, 20*time.Second)
	for _, n := range nodes {
		if err := n.Err(); err != nil {
			t.Fatalf("node error: %v", err)
		}
	}
}

// flakyConn cuts itself off after a fixed number of writes, simulating
// a connection that dies mid-stream.
type flakyConn struct {
	net.Conn
	budget *int32
}

func (f *flakyConn) Write(b []byte) (int, error) {
	if atomic.AddInt32(f.budget, -1) < 0 {
		f.Conn.Close()
		return 0, errors.New("flaky: connection cut")
	}
	return f.Conn.Write(b)
}

// TestReconnectKeepsExactlyOnceFIFO drops the node-pair connection
// every few dozen frames for the first part of the run. The ARQ layer
// must ride the reconnects: core.Diner's protocol invariants
// (duplicate fork, unsolicited ack, fork-with-token) reject any
// duplicated, reordered, or lost delivery, so Err() == nil after
// hundreds of eats is an end-to-end exactly-once-FIFO check.
func TestReconnectKeepsExactlyOnceFIFO(t *testing.T) {
	g := graph.Clique(2)
	var dials int32
	nodes := testCluster(t, g, [][]int{{0}, {1}}, func(i int, cfg *Config) {
		if i != 0 {
			return // node 0 is the dialer (lower index)
		}
		cfg.Dial = func(addr string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				return nil, err
			}
			n := atomic.AddInt32(&dials, 1)
			if n <= 6 {
				// The first generations die young (the budget includes
				// the handshake write).
				budget := int32(25)
				return &flakyConn{Conn: c, budget: &budget}, nil
			}
			return c, nil
		}
	})
	waitEats(t, nodes, nil, 30, 60*time.Second)
	for _, n := range nodes {
		if err := n.Err(); err != nil {
			t.Fatalf("protocol invariant violated across reconnects: %v", err)
		}
	}
	if got := atomic.LoadInt32(&dials); got < 3 {
		t.Fatalf("only %d dials; the flaky dialer never forced a reconnect", got)
	}
	st := nodes[1].Status()
	if len(st.Peers) != 1 || st.Peers[0].Connects < 2 {
		t.Fatalf("acceptor saw %d connects, want >= 2 (reconnect)", st.Peers[0].Connects)
	}
}

func TestStatusHandler(t *testing.T) {
	g := graph.Clique(2)
	nodes := testCluster(t, g, [][]int{{0}, {1}}, nil)
	waitEats(t, nodes, nil, 1, 20*time.Second)
	srv := newLocalServer(t, nodes[0])
	resp, err := srv.get("/status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"node": 0`, `"procs"`, `"eat_count"`, `"max_edge_occupancy"`} {
		if !strings.Contains(resp, want) {
			t.Fatalf("/status missing %q:\n%s", want, resp)
		}
	}
	if resp, err = srv.get("/debug/pprof/cmdline"); err != nil || resp == "" {
		t.Fatalf("pprof endpoint: %q, %v", resp, err)
	}
}

// newLocalServer serves a node's debug handler on an ephemeral port.
type localServer struct{ addr string }

func newLocalServer(t *testing.T, n *Node) *localServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = http.Serve(ln, n.Handler()) }()
	t.Cleanup(func() { ln.Close() })
	return &localServer{addr: ln.Addr().String()}
}

func (s *localServer) get(path string) (string, error) {
	c, err := net.DialTimeout("tcp", s.addr, time.Second)
	if err != nil {
		return "", err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(c, "GET %s HTTP/1.0\r\nHost: x\r\n\r\n", path); err != nil {
		return "", err
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := c.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), nil
}
