package remote

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func TestParseTopologyRoundTrip(t *testing.T) {
	const in = `# 3-ring over three daemons
n 3
0 1
1 2
2 0
node 127.0.0.1:7000 0
node 127.0.0.1:7001 1
node 127.0.0.1:7002 2
`
	topo, err := ParseTopology(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if topo.G.N() != 3 || topo.G.M() != 3 {
		t.Fatalf("graph %d vertices %d edges, want 3/3", topo.G.N(), topo.G.M())
	}
	if len(topo.Nodes) != 3 || topo.Nodes[1].Addr != "127.0.0.1:7001" {
		t.Fatalf("nodes parsed wrong: %+v", topo.Nodes)
	}
	for p := 0; p < 3; p++ {
		if topo.NodeOf(p) != p {
			t.Fatalf("NodeOf(%d) = %d, want %d", p, topo.NodeOf(p), p)
		}
	}
	var sb strings.Builder
	if err := topo.Write(&sb); err != nil {
		t.Fatal(err)
	}
	again, err := ParseTopology(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse of rendered topology: %v\n%s", err, sb.String())
	}
	if again.G.N() != 3 || len(again.Nodes) != 3 {
		t.Fatalf("round trip lost structure: %+v", again)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"duplicate process": "n 2\n0 1\nnode a:1 0 1\nnode a:2 1\n",
		"missing process":   "n 2\n0 1\nnode a:1 0\n",
		"bad node line":     "n 2\n0 1\nnode a:1\nnode a:2 0 1\n",
		"bad process id":    "n 2\n0 1\nnode a:1 x\nnode a:2 0 1\n",
		"out of range":      "n 2\n0 1\nnode a:1 0 1 5\n",
		"no nodes":          "n 2\n0 1\n",
	}
	for name, in := range cases {
		if _, err := ParseTopology(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestPeersOf(t *testing.T) {
	// Path 0-1-2-3 split over three nodes: {0,1}, {2}, {3}.
	g := graph.Path(4)
	topo, err := NewTopology(g, []NodeSpec{
		{Addr: "a", Procs: []int{0, 1}}, {Addr: "b", Procs: []int{2}}, {Addr: "c", Procs: []int{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.PeersOf(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PeersOf(0) = %v, want [1]", got)
	}
	if got := topo.PeersOf(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("PeersOf(1) = %v, want [0 2]", got)
	}
	if got := topo.PeersOf(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PeersOf(2) = %v, want [1]", got)
	}
}

// virtCluster mirrors testCluster on the netsim virtual network: node
// i binds "n<i>", every clock in the stack is the shared virtual
// clock, and nothing moves unless the test advances it — so
// timing-sensitive scenarios (reconnect storms, restart races) replay
// deterministically with no wall-clock sleeps. mut may wrap cfg.Dial;
// the pre-set value dials the virtual network.
func virtCluster(t *testing.T, g *graph.Graph, placement [][]int, mut func(i int, cfg *Config)) ([]*Node, *netsim.Clock) {
	t.Helper()
	nodes, clk, _ := virtClusterNet(t, g, placement, mut)
	return nodes, clk
}

// virtClusterNet is virtCluster plus the virtual network itself, for
// tests that inject link faults (partitions, frozen readers).
func virtClusterNet(t *testing.T, g *graph.Graph, placement [][]int, mut func(i int, cfg *Config)) ([]*Node, *netsim.Clock, *netsim.Net) {
	t.Helper()
	clk := netsim.NewClock()
	clk.Yield = 0
	nw := netsim.NewNet(clk, 1)
	listeners := make([]net.Listener, len(placement))
	specs := make([]NodeSpec, len(placement))
	for i, procs := range placement {
		ln, err := nw.Host(fmt.Sprintf("n%d", i)).Listen()
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		specs[i] = NodeSpec{Addr: fmt.Sprintf("n%d", i), Procs: procs}
	}
	topo, err := NewTopology(g, specs)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, len(placement))
	for i := range placement {
		self := fmt.Sprintf("n%d", i)
		cfg := Config{
			Topology:        topo,
			Node:            i,
			HeartbeatPeriod: 5 * time.Millisecond,
			InitialTimeout:  200 * time.Millisecond,
			EatTime:         time.Millisecond,
			ThinkTime:       time.Millisecond,
			RTO:             15 * time.Millisecond,
			DialBackoff:     10 * time.Millisecond,
			Listener:        listeners[i],
			Seed:            int64(i) + 1,
			Clock:           clk,
			Dial: func(addr string) (net.Conn, error) {
				return nw.Host(self).Dial(addr)
			},
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			stopPumped(clk, n)
		}
	})
	return nodes, clk, nw
}

// stopPumped stops a node while pumping the virtual clock: Stop joins
// goroutines that may be parked on virtual deadlines (an in-flight
// handshake read, a backed-off redial timer), which only expire when
// time advances.
func stopPumped(clk *netsim.Clock, n *Node) {
	done := make(chan struct{})
	go func() {
		n.Stop()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
			clk.Advance(10 * time.Millisecond)
		}
	}
}

// waitEatsV advances virtual time until every process has eaten at
// least min more times than base, failing once budget of virtual time
// is spent. No wall-clock dependence: a slow machine just takes longer
// in real time, never a different outcome.
func waitEatsV(t *testing.T, clk *netsim.Clock, nodes []*Node, base map[int]int, min int, budget time.Duration) {
	t.Helper()
	const step = 5 * time.Millisecond
	for spent := time.Duration(0); ; spent += step {
		done := true
		counts := map[int]int{}
		for _, n := range nodes {
			for id, c := range n.EatCounts() {
				counts[id] = c
				if c-base[id] < min {
					done = false
				}
			}
		}
		if done {
			return
		}
		if spent >= budget {
			t.Fatalf("virtual timeout waiting for %d eats over base %v; counts %v", min, base, counts)
		}
		clk.Advance(step)
	}
}

// testCluster builds one Node per NodeSpec over g with pre-bound
// ephemeral listeners and fast test timings.
func testCluster(t *testing.T, g *graph.Graph, placement [][]int, mut func(i int, cfg *Config)) []*Node {
	t.Helper()
	listeners := make([]net.Listener, len(placement))
	specs := make([]NodeSpec, len(placement))
	for i, procs := range placement {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		specs[i] = NodeSpec{Addr: ln.Addr().String(), Procs: procs}
	}
	topo, err := NewTopology(g, specs)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, len(placement))
	for i := range placement {
		cfg := Config{
			Topology:        topo,
			Node:            i,
			HeartbeatPeriod: 5 * time.Millisecond,
			InitialTimeout:  200 * time.Millisecond,
			EatTime:         time.Millisecond,
			ThinkTime:       time.Millisecond,
			RTO:             15 * time.Millisecond,
			DialBackoff:     10 * time.Millisecond,
			Listener:        listeners[i],
			Seed:            int64(i) + 1,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	return nodes
}

// waitEats polls until every listed process on node n has eaten at
// least min more times than base, or the deadline expires.
func waitEats(t *testing.T, nodes []*Node, base map[int]int, min int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		done := true
		counts := map[int]int{}
		for _, n := range nodes {
			for id, c := range n.EatCounts() {
				counts[id] = c
				if c-base[id] < min {
					done = false
				}
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d eats over base %v; counts %v", min, base, counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTwoNodeEdgeEats(t *testing.T) {
	g := graph.Clique(2)
	nodes := testCluster(t, g, [][]int{{0}, {1}}, nil)
	waitEats(t, nodes, nil, 5, 20*time.Second)
	for _, n := range nodes {
		if err := n.Err(); err != nil {
			t.Fatalf("node error: %v", err)
		}
	}
	st := nodes[0].Status()
	if len(st.Procs) != 1 || len(st.Peers) != 1 || !st.Peers[0].Connected {
		t.Fatalf("unexpected status: %+v", st)
	}
}

func TestMixedLocalRemoteEdges(t *testing.T) {
	// Ring of 4 over two nodes: edges 0-1 and 2-3 are node-local,
	// edges 1-2 and 3-0 cross the wire.
	g := graph.Ring(4)
	nodes := testCluster(t, g, [][]int{{0, 1}, {2, 3}}, nil)
	waitEats(t, nodes, nil, 5, 20*time.Second)
	for _, n := range nodes {
		if err := n.Err(); err != nil {
			t.Fatalf("node error: %v", err)
		}
	}
}

// flakyConn cuts itself off after a fixed number of writes, simulating
// a connection that dies mid-stream.
type flakyConn struct {
	net.Conn
	budget *int32
}

func (f *flakyConn) Write(b []byte) (int, error) {
	if atomic.AddInt32(f.budget, -1) < 0 {
		f.Conn.Close()
		return 0, errors.New("flaky: connection cut")
	}
	return f.Conn.Write(b)
}

// TestReconnectKeepsExactlyOnceFIFO drops the node-pair connection
// every few dozen frames for the first part of the run. The ARQ layer
// must ride the reconnects: core.Diner's protocol invariants
// (duplicate fork, unsolicited ack, fork-with-token) reject any
// duplicated, reordered, or lost delivery, so Err() == nil after
// dozens of eats is an end-to-end exactly-once-FIFO check. Runs on
// the virtual network so the cut/redial/retransmit timing is the same
// on every machine.
func TestReconnectKeepsExactlyOnceFIFO(t *testing.T) {
	g := graph.Clique(2)
	var dials int32
	var nodes []*Node
	var clk *netsim.Clock
	nodes, clk = virtCluster(t, g, [][]int{{0}, {1}}, func(i int, cfg *Config) {
		if i != 0 {
			return // node 0 is the dialer (lower index)
		}
		inner := cfg.Dial
		cfg.Dial = func(addr string) (net.Conn, error) {
			c, err := inner(addr)
			if err != nil {
				return nil, err
			}
			n := atomic.AddInt32(&dials, 1)
			if n <= 6 {
				// The first generations die young (the budget includes
				// the handshake write).
				budget := int32(25)
				return &flakyConn{Conn: c, budget: &budget}, nil
			}
			return c, nil
		}
	})
	waitEatsV(t, clk, nodes, nil, 30, 60*time.Second)
	for _, n := range nodes {
		if err := n.Err(); err != nil {
			t.Fatalf("protocol invariant violated across reconnects: %v", err)
		}
	}
	if got := atomic.LoadInt32(&dials); got < 3 {
		t.Fatalf("only %d dials; the flaky dialer never forced a reconnect", got)
	}
	st := nodes[1].Status()
	if len(st.Peers) != 1 || st.Peers[0].Connects < 2 {
		t.Fatalf("acceptor saw %d connects, want >= 2 (reconnect)", st.Peers[0].Connects)
	}
}

// TestCheckHello exercises the handshake's topology validation: a peer
// advertising a different process placement (a different topology
// file) must be rejected instead of silently interconnecting.
func TestCheckHello(t *testing.T) {
	g := graph.Path(3)
	topo, err := NewTopology(g, []NodeSpec{
		{Addr: "a", Procs: []int{1, 0}}, {Addr: "b", Procs: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{Topology: topo, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	// helloFrame lists processes sorted, and checkHello sorts the local
	// placement, so the unsorted NodeSpec above must still match.
	ok := wire.Frame{Kind: wire.Hello, Node: 0, Incarnation: 7, Procs: []uint32{0, 1}}
	if err := n.checkHello(ok, 0); err != nil {
		t.Fatalf("valid hello rejected: %v", err)
	}
	bad := map[string]wire.Frame{
		"not a hello":       {Kind: wire.Heartbeat, From: 0, To: 2},
		"wrong node index":  {Kind: wire.Hello, Node: 1, Procs: []uint32{0, 1}},
		"missing process":   {Kind: wire.Hello, Node: 0, Procs: []uint32{0}},
		"extra process":     {Kind: wire.Hello, Node: 0, Procs: []uint32{0, 1, 2}},
		"other placement":   {Kind: wire.Hello, Node: 0, Procs: []uint32{0, 2}},
		"empty process set": {Kind: wire.Hello, Node: 0},
	}
	for name, fr := range bad {
		if err := n.checkHello(fr, 0); err == nil {
			t.Errorf("%s: hello %v accepted, want rejection", name, fr)
		}
	}
}

// TestIncarnationResetsARQState drives the peer manager's restart
// detection directly (single-goroutine, white box): a reconnect from
// the same incarnation must keep the ARQ state, and a new incarnation
// must start a fresh epoch — receive streams back to 1, queued unacked
// sends discarded (they were addressed to dining state that no longer
// exists), and an edge-reset event posted to the local process sharing
// an edge with the restarted node.
func TestIncarnationResetsARQState(t *testing.T) {
	g := graph.Clique(2)
	topo, err := NewTopology(g, []NodeSpec{
		{Addr: "a", Procs: []int{0}}, {Addr: "b", Procs: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{Topology: topo, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	p := n.peers[1]
	// Simulate an established link: sends 0→1 up to sequence 6 with
	// 4..6 still unacked, receive stream 1→0 advanced to 10 with an
	// out-of-order frame parked at 12.
	ss := p.sendStateFor(pairKey{from: 0, to: 1})
	ss.nextSeq = 7
	ss.deadline = time.Now()
	for seq := uint64(4); seq <= 6; seq++ {
		ss.queue.push(sendEntry{seq: seq, msg: core.Message{Kind: core.Ping, From: 0, To: 1}})
	}
	rs := p.recvStateFor(pairKey{from: 1, to: 0})
	rs.next = 10
	rs.buf[12] = core.Message{Kind: core.Ack, From: 1, To: 0}

	p.noteIncarnation(100) // first Hello ever seen: adopt, nothing to reset
	if p.peerInc != 100 || ss.nextSeq != 7 || rs.next != 10 || len(rs.buf) != 1 {
		t.Fatalf("first hello must not reset state: %+v %+v", ss, rs)
	}
	p.noteIncarnation(100) // reconnect of the same incarnation: state survives
	if ss.nextSeq != 7 || ss.queue.front().seq != 4 || rs.next != 10 {
		t.Fatalf("same-incarnation reconnect must keep state: %+v %+v", ss, rs)
	}
	p.noteIncarnation(200) // restart: everything stale
	if p.peerInc != 200 {
		t.Fatalf("peerInc = %d, want 200", p.peerInc)
	}
	if ss.queue.len() != 0 || ss.nextSeq != 1 || !ss.deadline.IsZero() {
		t.Fatalf("send state not reset: %+v", ss)
	}
	if rs.next != 1 || len(rs.buf) != 0 {
		t.Fatalf("recv state not reset: next=%d buf=%v", rs.next, rs.buf)
	}
	// The local process sharing an edge with node 1 must have been told
	// to reset that edge (the node was never started, so the event sits
	// in its inbox).
	select {
	case ev := <-n.procs[0].inbox:
		if ev.kind != evNeighborReset || ev.from != 1 {
			t.Fatalf("inbox event = %+v, want evNeighborReset from 1", ev)
		}
	default:
		t.Fatal("no edge-reset event posted to the surviving process")
	}
}

// TestPeerRestartResetsLink restarts one daemon end-to-end and asserts
// the link un-wedges: the new incarnation's Hello must reset the
// surviving node's ARQ state, or every frame the restarted process
// sends is dedup-dropped (its sequence numbers restarted at 1, below
// the survivor's cursor), its doorway never gets an ack, and it
// starves without ever being suspected (heartbeats keep flowing).
//
// Dining-layer recovery (the incarnation-driven edge resets) is
// exercised separately by the chaos soak, which restarts nodes at
// arbitrary moments; this test pins a provably clean scenario so that
// any failure isolates the ARQ layer. Process 0 thinks
// for an hour after its first meal, so the steady state is process 1
// cycling on a retained fork with only ping/ack doorway traffic, and
// fork-at-1/token-at-0 — exactly the boot state a fresh node 1
// assumes. The kill lands during process 1's eating phase, when the
// link is quiet and both ARQ queues have long drained — on the
// virtual clock the kill instant is exact, not a sleep-length guess.
func TestPeerRestartResetsLink(t *testing.T) {
	g := graph.Clique(2)
	clk := netsim.NewClock()
	clk.Yield = 0
	nw := netsim.NewNet(clk, 1)
	ln0, err := nw.Host("n0").Listen()
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := nw.Host("n1").Listen()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewTopology(g, []NodeSpec{
		{Addr: "n0", Procs: []int{0}},
		{Addr: "n1", Procs: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int, ln net.Listener, think time.Duration) *Node {
		self := fmt.Sprintf("n%d", i)
		n, err := NewNode(Config{
			Topology:        topo,
			Node:            i,
			HeartbeatPeriod: 5 * time.Millisecond,
			// Suspicion must not mask the wedge: with the restart gap far
			// below the timeout, recovery can only come from the
			// incarnation reset, never from ◇P₁.
			InitialTimeout: time.Minute,
			EatTime:        300 * time.Millisecond,
			ThinkTime:      think,
			RTO:            15 * time.Millisecond,
			DialBackoff:    10 * time.Millisecond,
			DialBackoffMax: 50 * time.Millisecond,
			Listener:       ln,
			Seed:           int64(i) + 1,
			Clock:          clk,
			Dial: func(addr string) (net.Conn, error) {
				return nw.Host(self).Dial(addr)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n0 := mk(0, ln0, time.Hour)
	n1 := mk(1, ln1, 100*time.Millisecond)
	for _, n := range []*Node{n0, n1} {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { stopPumped(clk, n0) })
	t.Cleanup(func() { stopPumped(clk, n1) })

	// Settle: process 0 has had its one meal, process 1 is cycling.
	waitEatsV(t, clk, []*Node{n0}, nil, 1, 30*time.Second)
	waitEatsV(t, clk, []*Node{n1}, nil, 2, 30*time.Second)

	// Kill node 1 mid-eating: the doorway exchange for this session
	// finished hundreds of virtual milliseconds ago, so no dining frame
	// is unacked on either side.
	for spent := time.Duration(0); n1.Status().Procs[0].State != core.Eating.String(); spent += 2 * time.Millisecond {
		if spent >= 20*time.Second {
			t.Fatal("process 1 never observed eating")
		}
		clk.Advance(2 * time.Millisecond)
	}
	clk.Advance(10 * time.Millisecond) // still well inside the 300ms meal
	stopPumped(clk, n1)

	// Restart node 1 on the same address with a fresh incarnation (Stop
	// released the address, so the rebind cannot race another process).
	ln1b, err := nw.Host("n1").Listen()
	if err != nil {
		t.Fatalf("rebind n1: %v", err)
	}
	n1b := mk(1, ln1b, 100*time.Millisecond)
	if err := n1b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stopPumped(clk, n1b) })

	// The restarted process must eat again — repeatedly, so dedup and
	// ordering are exercised across many fresh sequence numbers.
	waitEatsV(t, clk, []*Node{n1b}, nil, 3, 30*time.Second)
	if err := n0.Err(); err != nil {
		t.Fatalf("surviving node protocol error: %v", err)
	}
	if err := n1b.Err(); err != nil {
		t.Fatalf("restarted node protocol error: %v", err)
	}
	if st := n0.Status(); len(st.Peers) != 1 || st.Peers[0].Connects < 2 {
		t.Fatalf("survivor saw %d connects, want >= 2 (reconnect to restarted peer)", st.Peers[0].Connects)
	}
}

func TestStatusHandler(t *testing.T) {
	g := graph.Clique(2)
	nodes := testCluster(t, g, [][]int{{0}, {1}}, nil)
	waitEats(t, nodes, nil, 1, 20*time.Second)
	srv := newLocalServer(t, nodes[0])
	resp, err := srv.get("/status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"node": 0`, `"procs"`, `"eat_count"`, `"max_edge_occupancy"`} {
		if !strings.Contains(resp, want) {
			t.Fatalf("/status missing %q:\n%s", want, resp)
		}
	}
	if resp, err = srv.get("/debug/pprof/cmdline"); err != nil || resp == "" {
		t.Fatalf("pprof endpoint: %q, %v", resp, err)
	}
}

// newLocalServer serves a node's debug handler on an ephemeral port.
type localServer struct{ addr string }

func newLocalServer(t *testing.T, n *Node) *localServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = http.Serve(ln, n.Handler()) }()
	t.Cleanup(func() { ln.Close() })
	return &localServer{addr: ln.Addr().String()}
}

func (s *localServer) get(path string) (string, error) {
	c, err := net.DialTimeout("tcp", s.addr, time.Second)
	if err != nil {
		return "", err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(c, "GET %s HTTP/1.0\r\nHost: x\r\n\r\n", path); err != nil {
		return "", err
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := c.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), nil
}
