package remote

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
)

// peerDo runs fn on the peer's manager goroutine and pumps virtual
// time until it has executed.
func peerDo(t *testing.T, clk *netsim.Clock, p *peer, fn func()) {
	t.Helper()
	done := make(chan struct{})
	p.post(func() { fn(); close(done) })
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
			if i > 10000 {
				t.Fatal("peer manager never executed posted closure")
			}
			clk.Advance(time.Millisecond)
		}
	}
}

// pumpUntil advances virtual time until cond holds, failing after
// budget of virtual time.
func pumpUntil(t *testing.T, clk *netsim.Clock, budget time.Duration, what string, cond func() bool) {
	t.Helper()
	const step = 5 * time.Millisecond
	for spent := time.Duration(0); ; spent += step {
		if cond() {
			return
		}
		if spent >= budget {
			t.Fatalf("virtual timeout waiting for %s", what)
		}
		clk.Advance(step)
	}
}

// TestBackpressureStallsAndAckDrainResumes exercises the bounded-
// window flow control end to end on a live two-node cluster: a frozen
// reader on the n0→n1 direction stops acks for the 0→1 stream, the
// ring crosses its high-water mark, the pair parks its sender (peer
// health Healthy→Degraded, the diner stops waiting on the stalled
// neighbor so wait-freedom survives), and a cumulative ack draining
// the ring resumes the pair and restores Healthy.
func TestBackpressureStallsAndAckDrainResumes(t *testing.T) {
	t.Parallel()
	const window = 40 // stallMarks: high 24, low 12
	g := graph.Clique(2)
	nodes, clk, nw := virtClusterNet(t, g, [][]int{{0}, {1}}, func(i int, cfg *Config) {
		cfg.SendWindow = window
	})
	waitEatsV(t, clk, nodes, nil, 1, 20*time.Second)

	pr := nodes[0].peers[1]
	if h := nodes[0].tr.healthOf(1); h != HealthHealthy {
		t.Fatalf("pre-stall health = %v, want %v", h, HealthHealthy)
	}

	// Freeze the link's readers: the sockets never error, so the
	// connection stays up, but nothing we send is read and no acks
	// come back for the 0→1 stream.
	nw.StopDrain("n0", "n1")

	key := pairKey{from: 0, to: 1}
	high, low := stallMarks(window)
	peerDo(t, clk, pr, func() {
		for i := 0; i < high; i++ {
			pr.node.tr.appSend(0, 1)
			pr.submit(core.Message{Kind: core.Ping, From: 0, To: 1})
		}
	})

	var depth int
	var stalled bool
	peerDo(t, clk, pr, func() {
		ss := pr.sends[key]
		depth, stalled = ss.queue.len(), ss.stalled
	})
	if depth != high || !stalled {
		t.Fatalf("after %d submits: depth=%d stalled=%v, want depth=%d stalled=true", high, depth, stalled, high)
	}
	if h := nodes[0].tr.healthOf(1); h != HealthDegraded {
		t.Fatalf("stalled health = %v, want %v", h, HealthDegraded)
	}
	st := nodes[0].Status()
	if len(st.Peers) != 1 || st.Peers[0].Stalls != 1 {
		t.Fatalf("status stalls = %+v, want one stall on the single peer", st.Peers)
	}
	if st.Peers[0].Health != HealthDegraded.String() {
		t.Fatalf("status health = %q, want %q", st.Peers[0].Health, HealthDegraded)
	}

	// Wait-freedom among non-stalled neighbors: the stalled stream
	// parks process 0's view of neighbor 1 exactly like suspicion, so
	// process 0 must keep completing sessions while the stream is
	// parked.
	base := nodes[0].EatCounts()[0]
	pumpUntil(t, clk, 20*time.Second, "eats during stall", func() bool {
		return nodes[0].EatCounts()[0] >= base+2
	})

	// A cumulative ack that drains the ring to low-water resumes the
	// pair and, with no other stalled pairs, restores Healthy. The ack
	// is injected on the manager goroutine — exactly what onAck does
	// when a real ack frame lands.
	peerDo(t, clk, pr, func() {
		ss := pr.sends[key]
		pr.applyAck(0, 1, ss.nextSeq-1)
	})
	peerDo(t, clk, pr, func() {
		ss := pr.sends[key]
		depth, stalled = ss.queue.len(), ss.stalled
		// Leak regression, live-cluster edition: every acked slot must
		// be zero so the messages are collectible.
		for i, e := range ss.queue.buf {
			if !e.isZero() {
				t.Errorf("ring slot %d = %+v still populated after full ack", i, e)
			}
		}
		if ss.bytes != 0 {
			t.Errorf("pair byte gauge = %d after full ack, want 0", ss.bytes)
		}
	})
	if depth != 0 || stalled {
		t.Fatalf("after ack: depth=%d stalled=%v, want drained and resumed (low-water %d)", depth, stalled, low)
	}
	if h := nodes[0].tr.healthOf(1); h != HealthHealthy {
		t.Fatalf("post-drain health = %v, want %v", h, HealthHealthy)
	}
}

// TestSendWindowOverflowFailsLoudly pins the contract-breach path: a
// completely full ring means the Lemma-bounded residual traffic
// assumption was violated, and the sender must crash its local
// process loudly (recorded error, OnProcCrash) rather than grow the
// queue or silently drop a frame.
func TestSendWindowOverflowFailsLoudly(t *testing.T) {
	t.Parallel()
	const window = 20
	var crashed atomic.Int64
	crashed.Store(-1)
	g := graph.Clique(2)
	nodes, clk, nw := virtClusterNet(t, g, [][]int{{0}, {1}}, func(i int, cfg *Config) {
		cfg.SendWindow = window
		if i == 0 {
			cfg.OnProcCrash = func(proc int) { crashed.Store(int64(proc)) }
		}
	})
	waitEatsV(t, clk, nodes, nil, 1, 20*time.Second)

	// Partition so no acks ever drain the ring.
	nw.Partition("n0", "n1")
	pr := nodes[0].peers[1]
	peerDo(t, clk, pr, func() {
		for i := 0; i <= window; i++ {
			pr.node.tr.appSend(0, 1)
			pr.submit(core.Message{Kind: core.Ping, From: 0, To: 1})
		}
	})

	err := nodes[0].Err()
	if err == nil || !strings.Contains(err.Error(), "send window") {
		t.Fatalf("node error = %v, want send-window overflow", err)
	}
	if got := crashed.Load(); got != 0 {
		t.Fatalf("crashed proc = %d, want 0", got)
	}
	if d := nodes[0].MaxPairDepth(); d > window {
		t.Fatalf("peak pair depth %d exceeds window %d", d, window)
	}
}

// blockConn lets the handshake hello through, then blocks every
// subsequent Write until the connection is closed — a TCP peer whose
// socket accepts nothing while never erroring.
type blockConn struct {
	net.Conn
	mu        sync.Mutex
	writes    int
	closed    chan struct{}
	closeOnce sync.Once
}

func (c *blockConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	w := c.writes
	c.mu.Unlock()
	if w <= 1 {
		return c.Conn.Write(b)
	}
	<-c.closed
	return 0, errors.New("blockconn: closed")
}

func (c *blockConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// TestWriterSaturationTearsDownConn pins the half-dead-connection
// path: a socket that stops accepting writes without erroring fills
// the writer queue, the manager notices the queue has refused every
// frame for a full write timeout, tears the connection down, and the
// dialer redials a fresh one.
func TestWriterSaturationTearsDownConn(t *testing.T) {
	t.Parallel()
	var dials atomic.Int64
	g := graph.Clique(2)
	nodes, clk, _ := virtClusterNet(t, g, [][]int{{0}, {1}}, func(i int, cfg *Config) {
		if i != 0 {
			return // node 0 is the dialer (lower index)
		}
		inner := cfg.Dial
		cfg.Dial = func(addr string) (net.Conn, error) {
			c, err := inner(addr)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				return &blockConn{Conn: c, closed: make(chan struct{})}, nil
			}
			return c, nil
		}
	})

	// The first connection wedges after its hello: heartbeats fill the
	// writer queue (writerQueueCap frames), satSince starts ticking,
	// and after a write timeout the manager kills the generation and
	// redials. Recovery is complete when the second connection serves
	// remote eats.
	pumpUntil(t, clk, 60*time.Second, "redial after saturated writer", func() bool {
		return dials.Load() >= 2
	})
	waitEatsV(t, clk, nodes, nil, 2, 30*time.Second)
	pumpUntil(t, clk, 20*time.Second, "healthy link on fresh connection", func() bool {
		return nodes[0].tr.healthOf(1) == HealthHealthy
	})
	if err := nodes[0].Err(); err != nil {
		t.Fatalf("node 0 error after recovery: %v", err)
	}
}

// TestWatchdogCrashesWedgedProc stages the wedge chain the watchdog
// exists for: process 1 blocks inside a dining-transition hook, its
// inbox fills, and the node watchdog must crash it (loud error,
// OnProcCrash) so its neighbors — here process 0, which merely
// suspects the silent process — keep making progress.
func TestWatchdogCrashesWedgedProc(t *testing.T) {
	t.Parallel()
	unblock := make(chan struct{})
	var crashed atomic.Int64
	crashed.Store(-1)
	g := graph.Clique(2)
	nodes, clk, _ := virtClusterNet(t, g, [][]int{{0}, {1}}, func(i int, cfg *Config) {
		cfg.ProcInboxCap = 4
		cfg.WedgeBudget = 300 * time.Millisecond
		if i == 1 {
			cfg.OnProcCrash = func(proc int) { crashed.Store(int64(proc)) }
			cfg.Observer = func(proc int, from, to core.State) {
				<-unblock
			}
		}
	})
	// Runs before the cluster teardown registered by virtClusterNet, so
	// the goroutine parked in the hook always exits before Stop joins.
	t.Cleanup(func() { close(unblock) })
	waitEatsV(t, clk, []*Node{nodes[0]}, nil, 1, 20*time.Second)

	pumpUntil(t, clk, 20*time.Second, "watchdog to crash the wedged process", func() bool {
		return crashed.Load() == 1
	})
	err := nodes[1].Err()
	if err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("node 1 error = %v, want watchdog wedge report", err)
	}
	if st := nodes[1].Status(); len(st.Procs) != 1 || !st.Procs[0].Crashed {
		t.Fatalf("proc 1 status = %+v, want crashed", st.Procs)
	}

	// Failure containment: the crash is process 1's alone. Process 0
	// suspects it and keeps eating.
	base := nodes[0].EatCounts()[0]
	pumpUntil(t, clk, 20*time.Second, "neighbor progress after the crash", func() bool {
		return nodes[0].EatCounts()[0] >= base+2
	})
	if err := nodes[0].Err(); err != nil {
		t.Fatalf("node 0 error: %v", err)
	}
}
