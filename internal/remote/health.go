package remote

import "fmt"

// HealthState is the per-peer link health, the one state machine that
// unifies the transport's previously scattered degradation signals:
// ARQ window backpressure, writer-queue saturation, write-deadline
// kills, ◇P₁-driven disconnects, reconnect backoff exhaustion, and the
// node watchdog's wedge verdicts. Every transition goes through
// tracker.setHealth, which validates it against the graph below and
// counts it, so the link's failure history is auditable from /status.
//
// The states, in increasing order of severity:
//
//   - Healthy: connected, all ARQ windows below high-water, no local
//     process suspects a process on the peer.
//   - Degraded: connected but resource-pressured — some ordered pair's
//     send window crossed the backpressure high-water mark, or the
//     connection writer stayed saturated. The stalled pairs are parked
//     at the dining layer exactly like suspicion (the stall is surfaced
//     to the local diner, which stops waiting on — and sending to — the
//     stalled neighbor), so wait-freedom among non-stalled neighbors is
//     preserved while the backlog drains.
//   - Suspect: the connection is down and the dialer is backing off, or
//     ◇P₁ parked retransmission toward the peer. The link may come back
//     (false suspicion, transient partition).
//   - Down: the reconnect backoff has been at its cap for several
//     consecutive failed attempts, or the watchdog declared this peer's
//     manager wedged. Still recoverable — a successful handshake
//     returns the link to Healthy — but monitoring should treat the
//     peer as gone.
//
// Hysteresis is built into the triggers, not the graph: Degraded exits
// only when every stalled pair drains below the low-water mark (half
// the high-water), and Down entry requires downAfterFails consecutive
// at-cap dial failures, so the link does not flap on the boundary.
type HealthState int

const (
	// HealthHealthy: connected, windows below high-water, not suspected.
	HealthHealthy HealthState = iota + 1
	// HealthDegraded: connected but backpressured; stalled pairs parked.
	HealthDegraded
	// HealthSuspect: disconnected and redialing, or suspicion-parked.
	HealthSuspect
	// HealthDown: backoff exhausted or manager wedged.
	HealthDown
)

func (h HealthState) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	default:
		return fmt.Sprintf("healthstate(%d)", int(h))
	}
}

// healthCanStep reports whether from → to is an edge of the transition
// graph. Self-loops are filtered by the caller (they are no-ops, not
// transitions). The graph is intentionally written as an exhaustive
// switch over HealthState so kindexhaustive forces every future state
// to declare its outgoing edges here.
func healthCanStep(from, to HealthState) bool {
	switch from {
	case HealthHealthy:
		// Pressure degrades, a disconnect or suspicion suspects; a
		// healthy link is never declared Down without passing through
		// one of those (even a watchdog wedge rides Suspect first when
		// the conn is torn down, but the wedge verdict may also land
		// directly).
		return to == HealthDegraded || to == HealthSuspect || to == HealthDown
	case HealthDegraded:
		// Drained below low-water heals; a disconnect while stalled
		// suspects; a wedge or backoff exhaustion downs.
		return to == HealthHealthy || to == HealthSuspect || to == HealthDown
	case HealthSuspect:
		// A successful handshake heals (or re-enters Degraded when
		// stalled pairs survived the disconnect); repeated at-cap dial
		// failures or a wedge verdict downs.
		return to == HealthHealthy || to == HealthDegraded || to == HealthDown
	case HealthDown:
		// Only a successful handshake resurrects a Down link; it lands
		// on Healthy or, when stalled pairs persist, Degraded.
		return to == HealthHealthy || to == HealthDegraded
	default:
		return false
	}
}

// downAfterFails is how many consecutive dial failures at the backoff
// cap demote Suspect to Down. The hysteresis keeps a link that fails
// one redial (listener restarting, accept queue full) from flapping
// into Down during routine reconnects.
const downAfterFails = 3
