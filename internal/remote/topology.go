package remote

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// NodeSpec is one daemon's slot in a shared cluster topology: the
// address its transport listens on and the dining processes it hosts.
type NodeSpec struct {
	// Addr is the TCP listen address ("host:port"). It may be empty
	// while a test harness is still binding ephemeral ports; dialing
	// peers simply keep retrying until it resolves.
	Addr string
	// Procs are the conflict-graph vertices this node runs.
	Procs []int
}

// Topology is the cluster-wide configuration every dinerd shares: the
// conflict graph plus the process placement. All nodes must load the
// same topology (same file) — placement disagreements surface as
// handshake rejections.
type Topology struct {
	// G is the conflict graph over all processes.
	G *graph.Graph
	// Nodes lists every daemon; a process appears on exactly one node.
	Nodes []NodeSpec

	nodeOf []int // process -> index into Nodes
}

// NewTopology validates that nodes partition the vertices of g —
// every process hosted exactly once — and returns the topology.
func NewTopology(g *graph.Graph, nodes []NodeSpec) (*Topology, error) {
	if g == nil {
		return nil, fmt.Errorf("remote: topology needs a conflict graph")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("remote: topology needs at least one node")
	}
	nodeOf := make([]int, g.N())
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	for ni, ns := range nodes {
		for _, p := range ns.Procs {
			if p < 0 || p >= g.N() {
				return nil, fmt.Errorf("remote: node %d hosts process %d outside graph of %d vertices", ni, p, g.N())
			}
			if nodeOf[p] != -1 {
				return nil, fmt.Errorf("remote: process %d hosted by both node %d and node %d", p, nodeOf[p], ni)
			}
			nodeOf[p] = ni
		}
	}
	for p, ni := range nodeOf {
		if ni == -1 {
			return nil, fmt.Errorf("remote: process %d hosted by no node", p)
		}
	}
	return &Topology{G: g, Nodes: nodes, nodeOf: nodeOf}, nil
}

// NodeOf returns the index of the node hosting process p.
func (t *Topology) NodeOf(p int) int { return t.nodeOf[p] }

// PeersOf returns the sorted set of other node indices hosting at
// least one conflict-graph neighbor of a process on node ni — exactly
// the nodes ni must keep a transport connection to.
func (t *Topology) PeersOf(ni int) []int {
	seen := map[int]bool{}
	for _, p := range t.Nodes[ni].Procs {
		for _, q := range t.G.Neighbors(p) {
			if other := t.nodeOf[q]; other != ni {
				seen[other] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// ParseTopology reads the shared cluster file. The format embeds the
// conflict graph in the plain edge-list syntax internal/graph already
// speaks ("u v" pairs, optional "n <count>" header, '#' comments) and
// adds one directive per daemon:
//
//	node <addr> <proc> [<proc>...]
//
// For example, a 3-ring split over three daemons:
//
//	n 3
//	0 1
//	1 2
//	2 0
//	node 127.0.0.1:7000 0
//	node 127.0.0.1:7001 1
//	node 127.0.0.1:7002 2
func ParseTopology(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	var edgeLines strings.Builder
	var nodes []NodeSpec
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) > 0 && fields[0] == "node" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("remote: line %d: want \"node <addr> <proc>...\", got %q", lineNo, line)
			}
			ns := NodeSpec{Addr: fields[1]}
			for _, f := range fields[2:] {
				p, err := strconv.Atoi(f)
				if err != nil || p < 0 {
					return nil, fmt.Errorf("remote: line %d: bad process ID %q", lineNo, f)
				}
				ns.Procs = append(ns.Procs, p)
			}
			nodes = append(nodes, ns)
			continue
		}
		edgeLines.WriteString(line)
		edgeLines.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	g, err := graph.ParseEdgeList(strings.NewReader(edgeLines.String()))
	if err != nil {
		return nil, err
	}
	return NewTopology(g, nodes)
}

// Write renders the topology in the format ParseTopology reads.
func (t *Topology) Write(w io.Writer) error {
	if err := t.G.WriteEdgeList(w); err != nil {
		return err
	}
	for _, ns := range t.Nodes {
		fields := make([]string, 0, len(ns.Procs)+2)
		fields = append(fields, "node", ns.Addr)
		for _, p := range ns.Procs {
			fields = append(fields, strconv.Itoa(p))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, " ")); err != nil {
			return err
		}
	}
	return nil
}
