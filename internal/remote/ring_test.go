package remote

import (
	"testing"

	"repro/internal/core"
)

func entry(seq uint64) sendEntry {
	return sendEntry{seq: seq, msg: core.Message{Kind: core.Ping, From: 1, To: 2}, buf: make([]byte, 32)}
}

func TestSendRingFIFOAcrossWrap(t *testing.T) {
	r := newSendRing(4)
	if r.capacity() != 4 || r.len() != 0 || r.full() {
		t.Fatalf("fresh ring: cap=%d len=%d full=%v", r.capacity(), r.len(), r.full())
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if !r.push(entry(seq)) {
			t.Fatalf("push %d refused below capacity", seq)
		}
	}
	if !r.full() || r.push(entry(5)) {
		t.Fatal("full ring must refuse a fifth push")
	}
	// Drain two, refill two: the ring wraps, and order must survive.
	if got := r.popFront().seq; got != 1 {
		t.Fatalf("popFront = %d, want 1", got)
	}
	if got := r.popFront().seq; got != 2 {
		t.Fatalf("popFront = %d, want 2", got)
	}
	for seq := uint64(5); seq <= 6; seq++ {
		if !r.push(entry(seq)) {
			t.Fatalf("push %d refused after drain", seq)
		}
	}
	want := []uint64{3, 4, 5, 6}
	for i, w := range want {
		if got := r.at(i).seq; got != w {
			t.Fatalf("at(%d) = %d, want %d", i, got, w)
		}
	}
	if got := r.front().seq; got != 3 {
		t.Fatalf("front = %d, want 3", got)
	}
	for _, w := range want {
		if got := r.popFront().seq; got != w {
			t.Fatalf("wrapped pop = %d, want %d", got, w)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len after drain = %d", r.len())
	}
}

// TestSendRingPopReleasesEntries is the regression test for the
// original ARQ leak: the slice-based queue advanced with
// queue = queue[1:], so acked entries stayed reachable from the
// backing array for the life of the pair. The ring must zero every
// vacated slot on popFront (and all slots on clear), so acked
// messages become collectible the moment the ack lands.
func TestSendRingPopReleasesEntries(t *testing.T) {
	r := newSendRing(4)
	for seq := uint64(1); seq <= 4; seq++ {
		r.push(entry(seq))
	}
	r.popFront()
	r.popFront()
	live := map[uint64]bool{3: true, 4: true}
	for i, e := range r.buf {
		if live[e.seq] {
			continue
		}
		if !e.isZero() {
			t.Fatalf("buf[%d] = %+v still populated after pop; acked entries must be zeroed", i, e)
		}
	}
	r.clear()
	for i, e := range r.buf {
		if !e.isZero() {
			t.Fatalf("buf[%d] = %+v survived clear", i, e)
		}
	}
}

// TestSendRingAppendBufs pins the iovec flush path: appendBufs returns
// the stored encodings oldest-first, aliasing (never copying) the
// queued buffers, including across a wrap.
func TestSendRingAppendBufs(t *testing.T) {
	r := newSendRing(4)
	for seq := uint64(1); seq <= 4; seq++ {
		r.push(entry(seq))
	}
	r.popFront()
	r.popFront()
	r.push(entry(5)) // ring wraps
	scratch := make([][]byte, 0, 4)
	bufs := r.appendBufs(scratch)
	if len(bufs) != 3 {
		t.Fatalf("appendBufs returned %d buffers, want 3", len(bufs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if &bufs[i][0] != &r.at(i).buf[0] {
			t.Fatalf("buffer %d copied instead of aliased", i)
		}
		if r.at(i).seq != want {
			t.Fatalf("at(%d).seq = %d, want %d", i, r.at(i).seq, want)
		}
	}
}
