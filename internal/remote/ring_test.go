package remote

import (
	"testing"

	"repro/internal/core"
)

func entry(seq uint64) sendEntry {
	return sendEntry{seq: seq, msg: core.Message{Kind: core.Ping, From: 1, To: 2}, wireLen: 32}
}

func TestSendRingFIFOAcrossWrap(t *testing.T) {
	r := newSendRing(4)
	if r.capacity() != 4 || r.len() != 0 || r.full() {
		t.Fatalf("fresh ring: cap=%d len=%d full=%v", r.capacity(), r.len(), r.full())
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if !r.push(entry(seq)) {
			t.Fatalf("push %d refused below capacity", seq)
		}
	}
	if !r.full() || r.push(entry(5)) {
		t.Fatal("full ring must refuse a fifth push")
	}
	// Drain two, refill two: the ring wraps, and order must survive.
	if got := r.popFront().seq; got != 1 {
		t.Fatalf("popFront = %d, want 1", got)
	}
	if got := r.popFront().seq; got != 2 {
		t.Fatalf("popFront = %d, want 2", got)
	}
	for seq := uint64(5); seq <= 6; seq++ {
		if !r.push(entry(seq)) {
			t.Fatalf("push %d refused after drain", seq)
		}
	}
	want := []uint64{3, 4, 5, 6}
	for i, w := range want {
		if got := r.at(i).seq; got != w {
			t.Fatalf("at(%d) = %d, want %d", i, got, w)
		}
	}
	if got := r.front().seq; got != 3 {
		t.Fatalf("front = %d, want 3", got)
	}
	for _, w := range want {
		if got := r.popFront().seq; got != w {
			t.Fatalf("wrapped pop = %d, want %d", got, w)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len after drain = %d", r.len())
	}
}

// TestSendRingPopReleasesEntries is the regression test for the
// original ARQ leak: the slice-based queue advanced with
// queue = queue[1:], so acked entries stayed reachable from the
// backing array for the life of the pair. The ring must zero every
// vacated slot on popFront (and all slots on clear), so acked
// messages become collectible the moment the ack lands.
func TestSendRingPopReleasesEntries(t *testing.T) {
	r := newSendRing(4)
	for seq := uint64(1); seq <= 4; seq++ {
		r.push(entry(seq))
	}
	r.popFront()
	r.popFront()
	live := map[uint64]bool{3: true, 4: true}
	zero := sendEntry{}
	for i, e := range r.buf {
		if live[e.seq] {
			continue
		}
		if e != zero {
			t.Fatalf("buf[%d] = %+v still populated after pop; acked entries must be zeroed", i, e)
		}
	}
	r.clear()
	for i, e := range r.buf {
		if e != zero {
			t.Fatalf("buf[%d] = %+v survived clear", i, e)
		}
	}
}
