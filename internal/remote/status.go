package remote

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// tracker is the node's mutex-protected observation point: process
// goroutines and peer managers report into it, and the /status
// endpoint reads from it. It never influences the run. Channel
// occupancy reuses the metrics.OccupancyMonitor high-water machinery,
// fed from the transport's application-level send/deliver events (each
// directed stream is measured at its sender; a remote message counts
// as in transit from submission until the cumulative ack covers it).
type tracker struct {
	mu    sync.Mutex
	occ   *metrics.OccupancyMonitor
	procs map[int]*procStats
	peers map[int]*peerStats
	errs  []error
}

type procStats struct {
	state    core.State
	eats     int
	sessions int
	suspects []int
	crashed  bool
}

type peerStats struct {
	addr          string
	connected     bool
	connects      uint64
	writerDrops   uint64
	retransmits   uint64
	dupSuppressed uint64
}

func newTracker(g *graph.Graph) *tracker {
	return &tracker{
		occ:   metrics.NewOccupancyMonitor(g.N()),
		procs: make(map[int]*procStats),
		peers: make(map[int]*peerStats),
	}
}

func (t *tracker) addProc(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs[id] = &procStats{state: core.Thinking}
}

func (t *tracker) addPeer(node int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node] = &peerStats{addr: addr}
}

func (t *tracker) transition(id int, to core.State, eats, sessions int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := t.procs[id]
	ps.state = to
	ps.eats = eats
	ps.sessions = sessions
}

func (t *tracker) setSuspects(id int, suspected map[int]bool) {
	out := make([]int, 0, len(suspected))
	for j, v := range suspected {
		if v {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs[id].suspects = out
}

func (t *tracker) crash(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs[id].crashed = true
}

func (t *tracker) recordErr(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errs = append(t.errs, err)
}

func (t *tracker) firstErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) == 0 {
		return nil
	}
	return t.errs[0]
}

func (t *tracker) appSend(from, to int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.occ.OnSend(sim.Time(0), from, to, nil)
}

func (t *tracker) appDeliver(from, to int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.occ.OnDeliver(sim.Time(0), from, to, nil)
}

func (t *tracker) peerConnected(node int, up bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := t.peers[node]
	ps.connected = up
	if up {
		ps.connects++
	}
}

func (t *tracker) writerDrop(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].writerDrops++
}

func (t *tracker) retransmit(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].retransmits++
}

func (t *tracker) dupSuppressed(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].dupSuppressed++
}

// --- public status surface ---------------------------------------------

// ProcStatus is one hosted process's view in /status.
type ProcStatus struct {
	ID       int    `json:"id"`
	State    string `json:"state"`
	EatCount int    `json:"eat_count"`
	Sessions int    `json:"sessions"`
	Suspects []int  `json:"suspects,omitempty"`
	Crashed  bool   `json:"crashed,omitempty"`
}

// PeerStatus is the transport link to one remote node in /status.
type PeerStatus struct {
	Node          int    `json:"node"`
	Addr          string `json:"addr"`
	Connected     bool   `json:"connected"`
	Connects      uint64 `json:"connects"`
	Retransmits   uint64 `json:"retransmits"`
	DupSuppressed uint64 `json:"dup_suppressed"`
	WriterDrops   uint64 `json:"writer_drops"`
}

// Status is the JSON document served at /status.
type Status struct {
	Node int    `json:"node"`
	Addr string `json:"addr"`
	// MaxEdgeOccupancy is the per-edge application-message high-water
	// mark, as measured by this node (the paper's Section 7 figure —
	// eventually at most 4 per edge).
	MaxEdgeOccupancy int          `json:"max_edge_occupancy"`
	Procs            []ProcStatus `json:"procs"`
	Peers            []PeerStatus `json:"peers"`
	Errors           []string     `json:"errors,omitempty"`
}

// Status snapshots the node for monitoring.
func (n *Node) Status() Status {
	t := n.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{Node: n.self, Addr: n.Addr(), MaxEdgeOccupancy: t.occ.MaxHighWater()}
	ids := make([]int, 0, len(t.procs))
	for id := range t.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ps := t.procs[id]
		st.Procs = append(st.Procs, ProcStatus{
			ID: id, State: ps.state.String(), EatCount: ps.eats,
			Sessions: ps.sessions, Suspects: ps.suspects, Crashed: ps.crashed,
		})
	}
	nodes := make([]int, 0, len(t.peers))
	for node := range t.peers {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		ps := t.peers[node]
		st.Peers = append(st.Peers, PeerStatus{
			Node: node, Addr: ps.addr, Connected: ps.connected, Connects: ps.connects,
			Retransmits: ps.retransmits, DupSuppressed: ps.dupSuppressed, WriterDrops: ps.writerDrops,
		})
	}
	for _, err := range t.errs {
		st.Errors = append(st.Errors, err.Error())
	}
	return st
}

// EatCounts returns the eat count of every hosted process, keyed by
// process ID.
func (n *Node) EatCounts() map[int]int {
	n.tr.mu.Lock()
	defer n.tr.mu.Unlock()
	out := make(map[int]int, len(n.tr.procs))
	for id, ps := range n.tr.procs {
		out[id] = ps.eats
	}
	return out
}

// MaxEdgeOccupancy returns this node's per-edge application-message
// high-water mark.
func (n *Node) MaxEdgeOccupancy() int {
	n.tr.mu.Lock()
	defer n.tr.mu.Unlock()
	return n.tr.occ.MaxHighWater()
}

// Handler serves the debug endpoints: /status (JSON) and
// /debug/pprof/*.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.Status())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
