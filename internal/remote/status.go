package remote

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// tracker is the node's mutex-protected observation point: process
// goroutines and peer managers report into it, and the /status
// endpoint reads from it. It never influences the run. Channel
// occupancy reuses the metrics.OccupancyMonitor high-water machinery,
// fed from the transport's application-level send/deliver events (each
// directed stream is measured at its sender; a remote message counts
// as in transit from submission until the cumulative ack covers it).
type tracker struct {
	mu    sync.Mutex
	occ   *metrics.OccupancyMonitor
	procs map[int]*procStats
	peers map[int]*peerStats
	errs  []error
}

type procStats struct {
	state    core.State
	eats     int
	sessions int
	suspects []int
	crashed  bool
}

type peerStats struct {
	addr          string
	connected     bool
	connects      uint64
	writerDrops   uint64
	retransmits   uint64
	dupSuppressed uint64

	// Health is the authoritative copy of the link's state machine;
	// peer managers (and the watchdog) drive it through setHealth so
	// every transition is validated against healthCanStep and counted.
	health      HealthState
	healthSteps map[string]uint64 // "suspect->healthy" -> count

	coalesced uint64 // idempotent frames merged instead of queued
	stalls    uint64 // backpressure stall episodes begun
	wedges    uint64 // watchdog wedge verdicts against this peer

	// Per ordered-pair ARQ gauges, keyed by the stream's (from, to).
	pairs map[pairKey]*pairStats
}

type pairStats struct {
	depth     int // current unacked entries in the ring
	peakDepth int
	bytes     int // current encoded frame bytes held by the ring
}

func newTracker(g *graph.Graph) *tracker {
	return &tracker{
		occ:   metrics.NewOccupancyMonitor(g.N()),
		procs: make(map[int]*procStats),
		peers: make(map[int]*peerStats),
	}
}

func (t *tracker) addProc(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs[id] = &procStats{state: core.Thinking}
}

func (t *tracker) addPeer(node int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// A link is born Suspect: disconnected, dialer about to try.
	t.peers[node] = &peerStats{
		addr:        addr,
		health:      HealthSuspect,
		healthSteps: make(map[string]uint64),
		pairs:       make(map[pairKey]*pairStats),
	}
}

func (t *tracker) transition(id int, to core.State, eats, sessions int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := t.procs[id]
	ps.state = to
	ps.eats = eats
	ps.sessions = sessions
}

func (t *tracker) setSuspects(id int, suspected map[int]bool) {
	out := make([]int, 0, len(suspected))
	for j, v := range suspected {
		if v {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs[id].suspects = out
}

func (t *tracker) crash(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs[id].crashed = true
}

func (t *tracker) recordErr(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errs = append(t.errs, err)
}

func (t *tracker) firstErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) == 0 {
		return nil
	}
	return t.errs[0]
}

func (t *tracker) appSend(from, to int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.occ.OnSend(sim.Time(0), from, to, nil)
}

func (t *tracker) appDeliver(from, to int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.occ.OnDeliver(sim.Time(0), from, to, nil)
}

func (t *tracker) peerConnected(node int, up bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := t.peers[node]
	ps.connected = up
	if up {
		ps.connects++
	}
}

func (t *tracker) writerDrop(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].writerDrops++
}

func (t *tracker) retransmit(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].retransmits++
}

func (t *tracker) dupSuppressed(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].dupSuppressed++
}

// setHealth drives the peer's health state machine. Self-loops are
// no-ops; an edge absent from healthCanStep is a programming error and
// is recorded loudly instead of applied, so an illegal transition can
// never pass silently. Returns the state actually in effect after the
// call.
func (t *tracker) setHealth(node int, to HealthState, reason string) HealthState {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := t.peers[node]
	from := ps.health
	if from == to {
		return from
	}
	if !healthCanStep(from, to) {
		t.errs = append(t.errs, fmt.Errorf(
			"remote: illegal health transition %v -> %v for peer %d (%s)", from, to, node, reason))
		return from
	}
	ps.health = to
	ps.healthSteps[from.String()+"->"+to.String()]++
	return to
}

// healthOf reads the peer's current health state.
func (t *tracker) healthOf(node int) HealthState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[node].health
}

func (t *tracker) coalescedFrame(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].coalesced++
}

func (t *tracker) stallBegan(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].stalls++
}

func (t *tracker) wedge(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].wedges++
}

// pairQueue updates one ordered pair's ARQ gauges (current ring depth
// and encoded frame bytes held).
func (t *tracker) pairQueue(node int, key pairKey, depth, bytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := t.peers[node]
	g, ok := ps.pairs[key]
	if !ok {
		g = &pairStats{}
		ps.pairs[key] = g
	}
	g.depth, g.bytes = depth, bytes
	if depth > g.peakDepth {
		g.peakDepth = depth
	}
}

// --- public status surface ---------------------------------------------

// ProcStatus is one hosted process's view in /status.
type ProcStatus struct {
	ID       int    `json:"id"`
	State    string `json:"state"`
	EatCount int    `json:"eat_count"`
	Sessions int    `json:"sessions"`
	Suspects []int  `json:"suspects,omitempty"`
	Crashed  bool   `json:"crashed,omitempty"`
}

// PairStatus is one ordered process pair's ARQ gauge in /status.
type PairStatus struct {
	From      int `json:"from"`
	To        int `json:"to"`
	Depth     int `json:"depth"`
	PeakDepth int `json:"peak_depth"`
	Bytes     int `json:"bytes"`
}

// PeerStatus is the transport link to one remote node in /status.
type PeerStatus struct {
	Node          int    `json:"node"`
	Addr          string `json:"addr"`
	Connected     bool   `json:"connected"`
	Health        string `json:"health"`
	Connects      uint64 `json:"connects"`
	Retransmits   uint64 `json:"retransmits"`
	DupSuppressed uint64 `json:"dup_suppressed"`
	WriterDrops   uint64 `json:"writer_drops"`
	Coalesced     uint64 `json:"coalesced"`
	Stalls        uint64 `json:"stalls"`
	Wedges        uint64 `json:"wedges,omitempty"`
	// HealthSteps counts every validated health transition the link has
	// taken, keyed "from->to" — the auditable history the state machine
	// promises.
	HealthSteps map[string]uint64 `json:"health_steps,omitempty"`
	Pairs       []PairStatus      `json:"pairs,omitempty"`
}

// Status is the JSON document served at /status.
type Status struct {
	Node int    `json:"node"`
	Addr string `json:"addr"`
	// MaxEdgeOccupancy is the per-edge application-message high-water
	// mark, as measured by this node (the paper's Section 7 figure —
	// eventually at most 4 per edge).
	MaxEdgeOccupancy int `json:"max_edge_occupancy"`
	// SendWindow is the fixed per-pair ARQ ring capacity; every pair's
	// depth is ≤ this bound at all times, by construction.
	SendWindow int          `json:"send_window"`
	Procs      []ProcStatus `json:"procs"`
	Peers      []PeerStatus `json:"peers"`
	Errors     []string     `json:"errors,omitempty"`
}

// Status snapshots the node for monitoring.
func (n *Node) Status() Status {
	t := n.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{Node: n.self, Addr: n.Addr(), MaxEdgeOccupancy: t.occ.MaxHighWater(), SendWindow: n.cfg.SendWindow}
	ids := make([]int, 0, len(t.procs))
	for id := range t.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ps := t.procs[id]
		st.Procs = append(st.Procs, ProcStatus{
			ID: id, State: ps.state.String(), EatCount: ps.eats,
			Sessions: ps.sessions, Suspects: ps.suspects, Crashed: ps.crashed,
		})
	}
	nodes := make([]int, 0, len(t.peers))
	for node := range t.peers {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		ps := t.peers[node]
		p := PeerStatus{
			Node: node, Addr: ps.addr, Connected: ps.connected, Health: ps.health.String(),
			Connects: ps.connects, Retransmits: ps.retransmits, DupSuppressed: ps.dupSuppressed,
			WriterDrops: ps.writerDrops, Coalesced: ps.coalesced, Stalls: ps.stalls, Wedges: ps.wedges,
		}
		if len(ps.healthSteps) > 0 {
			p.HealthSteps = make(map[string]uint64, len(ps.healthSteps))
			for k, v := range ps.healthSteps {
				p.HealthSteps[k] = v
			}
		}
		keys := make([]pairKey, 0, len(ps.pairs))
		for k := range ps.pairs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].from != keys[j].from {
				return keys[i].from < keys[j].from
			}
			return keys[i].to < keys[j].to
		})
		for _, k := range keys {
			g := ps.pairs[k]
			p.Pairs = append(p.Pairs, PairStatus{From: k.from, To: k.to, Depth: g.depth, PeakDepth: g.peakDepth, Bytes: g.bytes})
		}
		st.Peers = append(st.Peers, p)
	}
	for _, err := range t.errs {
		st.Errors = append(st.Errors, err.Error())
	}
	return st
}

// EatCounts returns the eat count of every hosted process, keyed by
// process ID.
func (n *Node) EatCounts() map[int]int {
	n.tr.mu.Lock()
	defer n.tr.mu.Unlock()
	out := make(map[int]int, len(n.tr.procs))
	for id, ps := range n.tr.procs {
		out[id] = ps.eats
	}
	return out
}

// MaxEdgeOccupancy returns this node's per-edge application-message
// high-water mark.
func (n *Node) MaxEdgeOccupancy() int {
	n.tr.mu.Lock()
	defer n.tr.mu.Unlock()
	return n.tr.occ.MaxHighWater()
}

// MaxPairDepth returns the highest ARQ ring depth any ordered pair on
// any peer link has ever reached — the resource invariant the chaos
// soak samples (must stay ≤ SendWindow).
func (n *Node) MaxPairDepth() int {
	n.tr.mu.Lock()
	defer n.tr.mu.Unlock()
	max := 0
	for _, ps := range n.tr.peers {
		for _, g := range ps.pairs {
			if g.peakDepth > max {
				max = g.peakDepth
			}
		}
	}
	return max
}

// QueuedFrameBytes returns the encoded bytes currently pinned by all
// ARQ rings on this node — the frame-buffer footprint that must stay
// flat across an arbitrarily long partition.
func (n *Node) QueuedFrameBytes() int {
	n.tr.mu.Lock()
	defer n.tr.mu.Unlock()
	total := 0
	for _, ps := range n.tr.peers {
		for _, g := range ps.pairs {
			total += g.bytes
		}
	}
	return total
}

// SendWindow returns the configured per-pair ARQ ring capacity.
func (n *Node) SendWindow() int { return n.cfg.SendWindow }

// Handler serves the debug endpoints: /status (JSON) and
// /debug/pprof/*.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.Status())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
