package harness

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sim"
)

func TestExecuteDefaultsAndResultShape(t *testing.T) {
	res, err := Execute(Spec{
		Graph:     graph.Ring(8),
		Seed:      1,
		Algorithm: Algorithm1,
		Workload:  runner.Saturated(),
		Horizon:   8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantErr != nil {
		t.Fatal(res.InvariantErr)
	}
	if res.Sessions.Completed == 0 || res.TotalMessages == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.OccupancyHW > 4 {
		t.Fatalf("occupancy %d", res.OccupancyHW)
	}
	if res.MaxOvertake > 2 {
		t.Fatalf("overtakes %d", res.MaxOvertake)
	}
	if len(res.Starving) != 0 {
		t.Fatalf("starving %v", res.Starving)
	}
}

func TestExecuteCrashAccounting(t *testing.T) {
	res, err := Execute(Spec{
		Graph:          graph.Ring(8),
		Seed:           2,
		Algorithm:      Algorithm1,
		Detector:       DetectorPerfect,
		PerfectLatency: 10,
		Workload:       runner.Saturated(),
		Crashes:        []Crash{{At: 500, ID: 0}},
		Horizon:        10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantErr != nil {
		t.Fatal(res.InvariantErr)
	}
	if !res.QuiescentLastHalf {
		t.Fatal("should be quiescent toward the crashed process by mid-run")
	}
	if res.LiveCompleted() == 0 {
		t.Fatal("live processes made no progress")
	}
	// LiveCompleted excludes the crashed process's sessions.
	total := 0
	for _, c := range res.PerProcess {
		total += c
	}
	if res.LiveCompleted() > total {
		t.Fatal("LiveCompleted exceeded total")
	}
}

func TestViolationsAfter(t *testing.T) {
	r := Result{ViolationTimes: []sim.Time{5, 10, 20}}
	if r.ViolationsAfter(0) != 3 || r.ViolationsAfter(10) != 2 || r.ViolationsAfter(21) != 0 {
		t.Fatal("ViolationsAfter arithmetic wrong")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range []Algorithm{Algorithm1, Algorithm1NoReplied, ChoySingh, Forks} {
		if a.String() == "" || strings.HasPrefix(a.String(), "algorithm(") {
			t.Fatalf("missing name for %d", int(a))
		}
	}
	if Algorithm(99).String() != "algorithm(99)" {
		t.Fatal("unknown algorithm must stringify")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "T0",
		Title:  "demo",
		Claim:  "claims render",
		Header: []string{"a", "bb"},
	}
	tb.AddRow(1, "xyz")
	tb.AddRow("longer-cell", 2)
	var text, md strings.Builder
	tb.Render(&text)
	tb.Markdown(&md)
	for _, want := range []string{"T0", "demo", "claims render", "longer-cell", "xyz"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown output missing %q:\n%s", want, md.String())
		}
	}
	if !strings.Contains(md.String(), "| a | bb |") {
		t.Fatalf("markdown header malformed:\n%s", md.String())
	}
}

func TestE6SpaceTable(t *testing.T) {
	tb := E6Space()
	if len(tb.Rows) != 4 {
		t.Fatalf("E6 rows = %d, want 4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("space bound violated: %v", row)
		}
	}
}

func TestE3PathScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	tb := E3BoundedWaiting(1)
	if len(tb.Rows) != 12 {
		t.Fatalf("E3 rows = %d, want 12 (4 algorithms × 3 scenarios)", len(tb.Rows))
	}
	byKey := map[string][]string{}
	for _, row := range tb.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	// Algorithm 1 must hold the bound in every scenario.
	for key, row := range byKey {
		if strings.HasPrefix(key, "algorithm-1/") && row[4] != "yes" {
			t.Fatalf("Algorithm 1 broke the bound: %v", row)
		}
	}
	// The doorway-free baseline must break it somewhere.
	broke := false
	for key, row := range byKey {
		if strings.HasPrefix(key, "static-forks/") && row[4] == "no" {
			broke = true
		}
	}
	if !broke {
		t.Fatal("static-forks never exceeded the bound; the ablation shows nothing")
	}
}

func TestE10MessageMixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	tb := E10MessageMix(1)
	if len(tb.Rows) != 3 {
		t.Fatalf("E10 rows = %d, want 3", len(tb.Rows))
	}
	// On a saturated ring every session runs one full ping-ack round
	// per neighbor: exactly δ = 2 pings and acks per session.
	ring := tb.Rows[0]
	if ring[2] != "2.00" || ring[3] != "2.00" {
		t.Fatalf("ring ping/ack per session = %s/%s, want 2.00/2.00", ring[2], ring[3])
	}
}

func TestHygienicAlgorithmsExecute(t *testing.T) {
	for _, alg := range []Algorithm{Hygienic, HygienicFD} {
		if alg.String() == "" {
			t.Fatal("missing name")
		}
		spec := Spec{
			Graph:     graph.Ring(6),
			Seed:      2,
			Algorithm: alg,
			Workload:  runner.Saturated(),
			Horizon:   6000,
		}
		if alg == HygienicFD {
			spec.Detector = DetectorPerfect
			spec.PerfectLatency = 10
			spec.Crashes = []Crash{{At: 500, ID: 0}}
		}
		res, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.InvariantErr != nil {
			t.Fatal(res.InvariantErr)
		}
		if res.Sessions.Completed == 0 {
			t.Fatalf("%v made no progress", alg)
		}
		if alg == HygienicFD && len(res.Starving) != 0 {
			t.Fatalf("hygienic+fd starving: %v", res.Starving)
		}
	}
}

func TestDefaultHeartbeatParams(t *testing.T) {
	hp := DefaultHeartbeatParams()
	if hp.Period <= 0 || hp.InitialTimeout <= 0 || hp.GST <= 0 {
		t.Fatalf("bad defaults: %+v", hp)
	}
}
