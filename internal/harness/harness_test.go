package harness

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sim"
)

func TestExecuteDefaultsAndResultShape(t *testing.T) {
	res, err := Execute(Spec{
		Graph:     graph.Ring(8),
		Seed:      1,
		Algorithm: Algorithm1,
		Workload:  runner.Saturated(),
		Horizon:   8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantErr != nil {
		t.Fatal(res.InvariantErr)
	}
	if res.Sessions.Completed == 0 || res.TotalMessages == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.OccupancyHW > 4 {
		t.Fatalf("occupancy %d", res.OccupancyHW)
	}
	if res.MaxOvertake > 2 {
		t.Fatalf("overtakes %d", res.MaxOvertake)
	}
	if len(res.Starving) != 0 {
		t.Fatalf("starving %v", res.Starving)
	}
}

func TestExecuteCrashAccounting(t *testing.T) {
	res, err := Execute(Spec{
		Graph:          graph.Ring(8),
		Seed:           2,
		Algorithm:      Algorithm1,
		Detector:       DetectorPerfect,
		PerfectLatency: 10,
		Workload:       runner.Saturated(),
		Crashes:        []Crash{{At: 500, ID: 0}},
		Horizon:        10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantErr != nil {
		t.Fatal(res.InvariantErr)
	}
	if !res.QuiescentLastHalf {
		t.Fatal("should be quiescent toward the crashed process by mid-run")
	}
	if res.LiveCompleted() == 0 {
		t.Fatal("live processes made no progress")
	}
	// LiveCompleted excludes the crashed process's sessions.
	total := 0
	for _, c := range res.PerProcess {
		total += c
	}
	if res.LiveCompleted() > total {
		t.Fatal("LiveCompleted exceeded total")
	}
}

func TestViolationsAfter(t *testing.T) {
	r := Result{ViolationTimes: []sim.Time{5, 10, 20}}
	if r.ViolationsAfter(0) != 3 || r.ViolationsAfter(10) != 2 || r.ViolationsAfter(21) != 0 {
		t.Fatal("ViolationsAfter arithmetic wrong")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range []Algorithm{Algorithm1, Algorithm1NoReplied, ChoySingh, Forks} {
		if a.String() == "" || strings.HasPrefix(a.String(), "algorithm(") {
			t.Fatalf("missing name for %d", int(a))
		}
	}
	if Algorithm(99).String() != "algorithm(99)" {
		t.Fatal("unknown algorithm must stringify")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "T0",
		Title:  "demo",
		Claim:  "claims render",
		Header: []string{"a", "bb"},
	}
	tb.AddRow(1, "xyz")
	tb.AddRow("longer-cell", 2)
	var text, md strings.Builder
	tb.Render(&text)
	tb.Markdown(&md)
	for _, want := range []string{"T0", "demo", "claims render", "longer-cell", "xyz"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown output missing %q:\n%s", want, md.String())
		}
	}
	if !strings.Contains(md.String(), "| a | bb |") {
		t.Fatalf("markdown header malformed:\n%s", md.String())
	}
}

func TestHygienicAlgorithmsExecute(t *testing.T) {
	for _, alg := range []Algorithm{Hygienic, HygienicFD} {
		if alg.String() == "" {
			t.Fatal("missing name")
		}
		spec := Spec{
			Graph:     graph.Ring(6),
			Seed:      2,
			Algorithm: alg,
			Workload:  runner.Saturated(),
			Horizon:   6000,
		}
		if alg == HygienicFD {
			spec.Detector = DetectorPerfect
			spec.PerfectLatency = 10
			spec.Crashes = []Crash{{At: 500, ID: 0}}
		}
		res, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.InvariantErr != nil {
			t.Fatal(res.InvariantErr)
		}
		if res.Sessions.Completed == 0 {
			t.Fatalf("%v made no progress", alg)
		}
		if alg == HygienicFD && len(res.Starving) != 0 {
			t.Fatalf("hygienic+fd starving: %v", res.Starving)
		}
	}
}

func TestDefaultHeartbeatParams(t *testing.T) {
	hp := DefaultHeartbeatParams()
	if hp.Period <= 0 || hp.InitialTimeout <= 0 || hp.GST <= 0 {
		t.Fatalf("bad defaults: %+v", hp)
	}
}
