package harness

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sim"
)

// FuzzFaultPlan throws arbitrary channel adversaries — loss and
// duplication probabilities, a burst window, a timed partition, a heal
// time — at Algorithm 1 over the rlink sublayer on a small ring. The
// properties: execution never panics, the protocol invariants hold
// (rlink must mask any healing adversary), and the run is a pure
// function of the spec (two executions summarize identically).
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint16(100), uint16(100), uint16(400), uint16(100), uint8(0x03), uint16(700), uint16(100), uint16(200), uint8(1))
	f.Add(uint16(900), uint16(0), uint16(0), uint16(799), uint8(0x1f), uint16(0), uint16(0), uint16(1499), uint8(7))
	f.Add(uint16(0), uint16(1000), uint16(1999), uint16(500), uint8(0x15), uint16(100), uint16(700), uint16(0), uint8(42))
	f.Fuzz(func(t *testing.T, dropMil, dupMil, burstStart, burstLen uint16, sideMask uint8, partStart, partLen, healRaw uint16, seed uint8) {
		const n = 5
		const horizon = 4000
		// Faults heal no later than horizon/2 so the eventual guarantees
		// (and the invariant check) are in scope by the end of the run.
		heal := sim.Time(500 + int(healRaw)%1500)
		plan := &sim.FaultPlan{
			DropP:  float64(int(dropMil)%1001) / 1000,
			DupP:   float64(int(dupMil)%1001) / 1000,
			HealAt: heal,
		}
		if burstLen > 0 {
			start := sim.Time(int(burstStart) % 2000)
			plan.Bursts = []sim.Burst{{Start: start, End: start + sim.Time(int(burstLen)%800) + 1, DropP: 0.95}}
		}
		if partLen > 0 {
			var side []int
			for v := 0; v < n; v++ {
				if sideMask&(1<<v) != 0 {
					side = append(side, v)
				}
			}
			start := sim.Time(int(partStart) % 2000)
			plan.Partitions = []sim.Partition{{Start: start, End: start + sim.Time(int(partLen)%800) + 1, Side: side}}
		}
		spec := Spec{
			Graph:     graph.Ring(n),
			Seed:      int64(seed) + 1,
			Algorithm: Algorithm1,
			Detector:  DetectorHeartbeat,
			Heartbeat: DefaultHeartbeatParams(),
			Workload:  runner.Saturated(),
			Horizon:   horizon,
			Faults:    plan,
			Reliable:  true,
		}
		res, err := Execute(spec)
		if err != nil {
			t.Fatalf("setup rejected a valid spec: %v [%s]", err, spec.Ident())
		}
		if res.InvariantErr != nil {
			t.Fatalf("invariant violated under healing adversary: %v [%s]", res.InvariantErr, spec.Ident())
		}
		res2, err := Execute(spec)
		if err != nil {
			t.Fatalf("second execution errored: %v", err)
		}
		if res.Summary() != res2.Summary() {
			t.Fatalf("nondeterministic run [%s]:\nfirst:  %s\nsecond: %s",
				spec.Ident(), res.Summary(), res2.Summary())
		}
	})
}
