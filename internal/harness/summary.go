package harness

import (
	"fmt"
	"reflect"
	"strings"
)

// String implements fmt.Stringer.
func (d DetectorKind) String() string {
	switch d {
	case DetectorNone:
		return "none"
	case DetectorPerfect:
		return "perfect"
	case DetectorHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("detector(%d)", int(d))
	}
}

// Ident renders the spec's identity compactly enough to paste into an
// experiment table yet completely enough to reproduce the run: graph
// shape, algorithm, detector, seed, delays, workload, crash schedule,
// and fault configuration. Two specs with equal Ident produce
// bit-identical runs (function-typed delay models are identified by
// type only — they cannot be serialized).
func (s Spec) Ident() string {
	var b strings.Builder
	if s.Graph != nil {
		fmt.Fprintf(&b, "graph{n=%d m=%d δ=%d}", s.Graph.N(), s.Graph.M(), s.Graph.MaxDegree())
	} else {
		b.WriteString("graph{nil}")
	}
	fmt.Fprintf(&b, " alg=%s", s.Algorithm)
	if s.AcksPerSession != 0 {
		fmt.Fprintf(&b, " acks=%d", s.AcksPerSession)
	}
	fmt.Fprintf(&b, " det=%s", s.Detector)
	if s.Detector == DetectorPerfect {
		fmt.Fprintf(&b, " lat=%d", s.PerfectLatency)
	}
	if s.Detector == DetectorHeartbeat {
		fmt.Fprintf(&b, " hb=%v", s.Heartbeat)
	}
	fmt.Fprintf(&b, " seed=%d horizon=%d", s.Seed, s.Horizon)
	fmt.Fprintf(&b, " delays=%s", formatValue(s.Delays))
	fmt.Fprintf(&b, " workload=%v", s.Workload)
	if len(s.Colors) > 0 {
		fmt.Fprintf(&b, " colors=%v", s.Colors)
	}
	if len(s.Crashes) > 0 {
		fmt.Fprintf(&b, " crashes=%v", s.Crashes)
	}
	if s.Faults != nil {
		fmt.Fprintf(&b, " faults=%v", *s.Faults)
	}
	if s.Reliable {
		fmt.Fprintf(&b, " reliable=%v", s.RlinkOptions)
	}
	return b.String()
}

// formatValue renders v as "Type{fields}"; function-typed values print
// as their type name only, since a function body has no stable textual
// form.
func formatValue(v any) string {
	if v == nil {
		return "nil"
	}
	if reflect.ValueOf(v).Kind() == reflect.Func {
		return fmt.Sprintf("%T", v)
	}
	return fmt.Sprintf("%T%v", v, v)
}

// Summary renders every observable of the result as one canonical
// string: the same run always produces the same bytes, and any
// difference between two runs of equal specs shows up as a byte
// difference. The sweep engine stores these per spec, and the
// determinism-equivalence test compares them across worker counts.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec{%s}", r.Spec.Ident())
	fmt.Fprintf(&b, " violations=%d last=%d times=%v", r.Violations, r.LastViolation, r.ViolationTimes)
	fmt.Fprintf(&b, " overtake{max=%d suffix=%d from=%d}", r.MaxOvertake, r.MaxOvertakeSuffix, r.SuffixStart)
	fmt.Fprintf(&b, " sessions=%+v", r.Sessions)
	fmt.Fprintf(&b, " perproc=%v starving=%v", r.PerProcess, r.Starving)
	fmt.Fprintf(&b, " occupancy=%d msgs=%d", r.OccupancyHW, r.TotalMessages)
	fmt.Fprintf(&b, " crashed{sends=%d last=%d quiescent=%v}", r.SendsToCrashed, r.LastSendToCrashed, r.QuiescentLastHalf)
	fmt.Fprintf(&b, " fd{fp=%d last=%d end=%d msgs=%d}", r.FDFalsePositives, r.FDLastMistake, r.FDLastMistakeEnd, r.FDMessages)
	fmt.Fprintf(&b, " wire{lost=%d dup=%d retx=%d retxCrashed=%d dedup=%d appDeliv=%d appOcc=%d}",
		r.MessagesLost, r.Duplicated, r.Retransmits, r.RetxToCrashed, r.DupSuppressed, r.AppDelivered, r.AppEdgeOccupancy)
	if r.InvariantErr != nil {
		fmt.Fprintf(&b, " INVARIANT=%v", r.InvariantErr)
	}
	return b.String()
}
