// Package harness turns one experiment specification (topology,
// algorithm, detector, seed, workload, fault plan) into one executed
// simulation and a flat Result of everything the experiments observe.
// The experiment catalogue itself lives in internal/experiments; the
// parallel multi-spec engine lives in internal/sweep.
package harness

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rlink"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Algorithm selects which dining algorithm a run uses.
type Algorithm int

// Algorithms under test.
const (
	// Algorithm1 is the paper's contribution.
	Algorithm1 Algorithm = iota + 1
	// Algorithm1NoReplied is ablation D1: the modified doorway reverts
	// to granting unlimited acks per hungry session.
	Algorithm1NoReplied
	// ChoySingh is the original asynchronous doorway with no detector.
	ChoySingh
	// Forks is the doorway-free static-priority baseline.
	Forks
	// Hygienic is Chandy–Misra hygienic dining (1984): dynamic
	// priorities via dirty/clean forks; starvation-free crash-free, but
	// not wait-free (no detector) and with no constant waiting bound.
	Hygienic
	// HygienicFD is hygienic dining with ◇P₁ substituted into the eat
	// guard, for crash-tolerance comparisons.
	HygienicFD
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Algorithm1:
		return "algorithm-1"
	case Algorithm1NoReplied:
		return "algorithm-1-no-replied"
	case ChoySingh:
		return "choy-singh"
	case Forks:
		return "static-forks"
	case Hygienic:
		return "chandy-misra"
	case HygienicFD:
		return "chandy-misra+fd"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// DetectorKind selects the oracle for a run.
type DetectorKind int

// Detector kinds.
const (
	// DetectorNone runs without an oracle (an empty suspect set).
	DetectorNone DetectorKind = iota + 1
	// DetectorPerfect suspects exactly the crashed, after a latency.
	DetectorPerfect
	// DetectorHeartbeat is the real ◇P₁ implementation under partial
	// synchrony.
	DetectorHeartbeat
)

// HeartbeatParams tune the ◇P₁ implementation and its network.
type HeartbeatParams struct {
	Period         sim.Time
	InitialTimeout sim.Time
	Increment      sim.Time
	GST            sim.Time
	PreNoise       sim.Time // pre-GST delays are uniform in [0, PreNoise]
	PostDelay      sim.Time
}

// DefaultHeartbeatParams returns the parameters used across the
// experiment suite unless a sweep overrides them.
func DefaultHeartbeatParams() HeartbeatParams {
	return HeartbeatParams{
		Period:         5,
		InitialTimeout: 12,
		Increment:      10,
		GST:            2000,
		PreNoise:       60,
		PostDelay:      1,
	}
}

// Crash schedules one crash fault.
type Crash struct {
	At sim.Time
	ID int
}

// Spec is one complete experiment run.
type Spec struct {
	Graph          *graph.Graph
	Colors         []int
	Seed           int64
	Delays         sim.DelayModel
	Algorithm      Algorithm
	AcksPerSession int // Algorithm1 only: per-session ack budget m (0 = the paper's 1)
	Detector       DetectorKind
	PerfectLatency sim.Time
	Heartbeat      HeartbeatParams
	Workload       runner.Workload
	Crashes        []Crash
	Horizon        sim.Time
	// Faults injects channel unreliability into the dining network; nil
	// keeps reliable FIFO channels.
	Faults *sim.FaultPlan
	// Reliable layers the rlink retransmission sublayer under the
	// algorithm, masking the injected faults.
	Reliable     bool
	RlinkOptions rlink.Options
}

// Result aggregates everything the experiments report about one run.
type Result struct {
	Spec Spec

	Violations        int
	LastViolation     sim.Time
	ViolationTimes    []sim.Time
	MaxOvertake       int
	MaxOvertakeSuffix int // windows starting in the final third of the run
	SuffixStart       sim.Time

	Sessions    metrics.SessionStats
	PerProcess  []int
	Starving    []int
	OccupancyHW int

	SendsToCrashed    int
	LastSendToCrashed sim.Time
	QuiescentLastHalf bool

	TotalMessages    uint64
	FDFalsePositives int
	FDLastMistake    sim.Time
	FDLastMistakeEnd sim.Time
	FDMessages       uint64

	// Reliability figures (meaningful when Faults and/or Reliable are
	// set).
	MessagesLost     uint64 // wire messages destroyed by injected faults
	Duplicated       uint64 // duplicate wire copies injected
	Retransmits      uint64 // frames the rlink sublayer resent
	RetxToCrashed    uint64 // retransmits addressed to crashed processes
	DupSuppressed    uint64 // duplicate frames receivers discarded
	AppDelivered     uint64 // application messages delivered through rlink
	AppEdgeOccupancy int    // rlink app-level joint edge occupancy high water

	InvariantErr error
}

// ViolationsAfter counts exclusion violations at or after t.
func (r *Result) ViolationsAfter(t sim.Time) int {
	n := 0
	for _, at := range r.ViolationTimes {
		if at >= t {
			n++
		}
	}
	return n
}

// LiveCompleted sums completed hungry sessions over processes that
// never crashed.
func (r *Result) LiveCompleted() int {
	crashed := make(map[int]bool, len(r.Spec.Crashes))
	for _, c := range r.Spec.Crashes {
		crashed[c.ID] = true
	}
	total := 0
	for i, c := range r.PerProcess {
		if !crashed[i] {
			total += c
		}
	}
	return total
}

// ProcessFactory maps the Algorithm enum (plus the ack budget) to a
// runner factory. Exported for the experiments package, whose custom
// wirings (E7's stabilization arms) build runner configs directly.
func ProcessFactory(a Algorithm, acksPerSession int) runner.ProcessFactory {
	switch a {
	case Algorithm1NoReplied:
		return runner.CoreFactory(core.Options{DisableRepliedFlag: true})
	case ChoySingh:
		return func(id, color int, nbrColors map[int]int, _ func(int) bool) (core.Process, error) {
			return baseline.NewChoySingh(id, color, nbrColors)
		}
	case Forks:
		return func(id, color int, nbrColors map[int]int, suspects func(int) bool) (core.Process, error) {
			return baseline.NewForks(id, color, nbrColors, suspects)
		}
	case Hygienic, HygienicFD:
		withFD := a == HygienicFD
		return func(id, _ int, nbrColors map[int]int, suspects func(int) bool) (core.Process, error) {
			nbrs := make([]int, 0, len(nbrColors))
			for j := range nbrColors {
				nbrs = append(nbrs, j)
			}
			if !withFD {
				suspects = nil
			}
			return baseline.NewHygienic(id, nbrs, suspects)
		}
	default:
		return runner.CoreFactory(core.Options{AcksPerSession: acksPerSession})
	}
}

func detectorFactory(spec Spec) runner.DetectorFactory {
	switch spec.Detector {
	case DetectorPerfect:
		lat := spec.PerfectLatency
		return func(k *sim.Kernel, g *graph.Graph) detector.Detector {
			return detector.NewPerfect(k, g, lat)
		}
	case DetectorHeartbeat:
		hp := spec.Heartbeat
		if hp.Period == 0 {
			hp = DefaultHeartbeatParams()
		}
		return func(k *sim.Kernel, g *graph.Graph) detector.Detector {
			delays := sim.GSTDelay{
				GST:  hp.GST,
				Pre:  sim.UniformDelay{Min: 0, Max: hp.PreNoise},
				Post: sim.FixedDelay{D: hp.PostDelay},
			}
			hb := detector.NewHeartbeat(k, g, delays, detector.HeartbeatConfig{
				Period:         hp.Period,
				InitialTimeout: hp.InitialTimeout,
				Increment:      hp.Increment,
			})
			hb.Start()
			return hb
		}
	default:
		return nil
	}
}

// Executor runs specs one after another, recycling the metric
// monitors' buffers between runs. A fresh Executor behaves exactly
// like the package-level Execute; the difference is allocation, not
// observable results — each run still gets its own kernel, RNG,
// network, and processes, so results are independent of what the
// Executor ran before (the sweep determinism-equivalence test enforces
// this).
//
// An Executor is not safe for concurrent use; give each worker its
// own.
type Executor struct {
	suite *metrics.Suite
}

// NewExecutor returns an empty Executor.
func NewExecutor() *Executor { return &Executor{} }

// Execute runs one spec to completion and gathers its result.
func Execute(spec Spec) (Result, error) {
	return NewExecutor().Execute(spec)
}

// Execute runs one spec to completion and gathers its result, reusing
// the metric buffers of the Executor's previous run.
func (e *Executor) Execute(spec Spec) (Result, error) {
	if spec.Horizon <= 0 {
		spec.Horizon = 20000
	}
	if spec.Delays == nil {
		spec.Delays = sim.UniformDelay{Min: 1, Max: 4}
	}
	if e.suite == nil {
		e.suite = metrics.NewSuite(spec.Graph)
	} else {
		e.suite.Reset(spec.Graph)
	}
	suite := e.suite
	var transport runner.TransportFactory
	if spec.Reliable {
		transport = runner.ReliableTransport(spec.RlinkOptions)
	}
	r, err := runner.New(runner.Config{
		Graph:        spec.Graph,
		Colors:       spec.Colors,
		Seed:         spec.Seed,
		Delays:       spec.Delays,
		Faults:       spec.Faults,
		Transport:    transport,
		NewDetector:  detectorFactory(spec),
		NewProcess:   ProcessFactory(spec.Algorithm, spec.AcksPerSession),
		Workload:     spec.Workload,
		OnTransition: suite.OnTransition,
		OnCrash:      suite.OnCrash,
	})
	if err != nil {
		return Result{}, err
	}
	r.Network().SetObserver(suite.Observer())
	if link := r.Link(); link != nil {
		link.SetObserver(suite.Reliability.RlinkObserver())
	}
	for _, c := range spec.Crashes {
		r.CrashAt(c.At, c.ID)
	}
	r.Run(spec.Horizon)
	suite.Finish(spec.Horizon)

	res := Result{
		Spec:          spec,
		Violations:    suite.Exclusion.Count(),
		MaxOvertake:   suite.Overtake.MaxCount(),
		SuffixStart:   spec.Horizon * 2 / 3,
		Sessions:      suite.Progress.Stats(),
		PerProcess:    suite.Progress.CompletedSessions(),
		Starving:      suite.Progress.Starving(spec.Horizon, spec.Horizon/5),
		OccupancyHW:   suite.Occupancy.MaxHighWater(),
		TotalMessages: r.Network().TotalSent(),
		InvariantErr:  r.CheckInvariants(),
	}
	res.MaxOvertakeSuffix = suite.Overtake.MaxCountFrom(res.SuffixStart)
	for _, v := range suite.Exclusion.Violations() {
		res.ViolationTimes = append(res.ViolationTimes, v.At)
	}
	if last, ok := suite.Exclusion.LastViolation(); ok {
		res.LastViolation = last
	}
	res.SendsToCrashed = suite.Quiescence.TotalSendsAfterCrash()
	if last, ok := suite.Quiescence.LastSendToCrashed(); ok {
		res.LastSendToCrashed = last
	}
	res.QuiescentLastHalf = suite.Quiescence.QuiescentBy(spec.Horizon / 2)
	if hb, ok := r.Detector().(*detector.Heartbeat); ok {
		res.FDFalsePositives = hb.FalsePositives()
		began, cleared := hb.LastMistake()
		res.FDLastMistake = began
		res.FDLastMistakeEnd = cleared
		res.FDMessages = hb.MessagesSent()
	}
	res.MessagesLost = r.Network().TotalLost()
	res.Duplicated = r.Network().TotalDuplicated()
	res.Retransmits = suite.Reliability.Retransmits()
	res.RetxToCrashed = suite.Reliability.RetransmitsToCrashed()
	res.DupSuppressed = suite.Reliability.DupSuppressed()
	if link := r.Link(); link != nil {
		t := link.Totals()
		res.AppDelivered = t.AppDelivered
		res.AppEdgeOccupancy = link.MaxAppEdgeOccupancy()
	}
	return res, nil
}

// ExecuteRaw is Execute but returning the live suite and runner, for
// experiments needing monitor internals. It always builds a fresh
// suite (the caller keeps it, so there is nothing to recycle).
func ExecuteRaw(spec Spec) (*metrics.Suite, *runner.Runner, error) {
	if spec.Horizon <= 0 {
		spec.Horizon = 20000
	}
	if spec.Delays == nil {
		spec.Delays = sim.UniformDelay{Min: 1, Max: 4}
	}
	suite := metrics.NewSuite(spec.Graph)
	var transport runner.TransportFactory
	if spec.Reliable {
		transport = runner.ReliableTransport(spec.RlinkOptions)
	}
	r, err := runner.New(runner.Config{
		Graph:        spec.Graph,
		Colors:       spec.Colors,
		Seed:         spec.Seed,
		Delays:       spec.Delays,
		Faults:       spec.Faults,
		Transport:    transport,
		NewDetector:  detectorFactory(spec),
		NewProcess:   ProcessFactory(spec.Algorithm, spec.AcksPerSession),
		Workload:     spec.Workload,
		OnTransition: suite.OnTransition,
		OnCrash:      suite.OnCrash,
	})
	if err != nil {
		return nil, nil, err
	}
	r.Network().SetObserver(suite.Observer())
	if link := r.Link(); link != nil {
		link.SetObserver(suite.Reliability.RlinkObserver())
	}
	for _, c := range spec.Crashes {
		r.CrashAt(c.At, c.ID)
	}
	r.Run(spec.Horizon)
	suite.Finish(spec.Horizon)
	return suite, r, nil
}
