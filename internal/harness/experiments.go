package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stabilize"
)

// mustExecute runs a spec, folding setup errors into the table note —
// experiment code treats them as fatal by surfacing "ERROR" rows, so a
// broken configuration cannot masquerade as a result.
func mustExecute(t *Table, spec Spec) (Result, bool) {
	res, err := Execute(spec)
	if err != nil {
		t.AddRow("ERROR", err.Error())
		return Result{}, false
	}
	if res.InvariantErr != nil {
		t.AddRow("INVARIANT-VIOLATION", res.InvariantErr.Error())
		return res, false
	}
	return res, true
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// E1Safety measures Theorem 1: with a real ◇P₁ under hostile pre-GST
// delays, exclusion mistakes happen only finitely often and cease once
// the detector stops making mistakes.
func E1Safety(seed int64) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Eventual weak exclusion under a convergent ◇P₁ (Theorem 1)",
		Claim:  "finitely many exclusion mistakes per run; none after the detector converges",
		Header: []string{"topology", "n", "FD false-pos", "FD last mistake", "violations", "last violation", "viol after conv", "ok"},
	}
	hp := DefaultHeartbeatParams()
	hp.PreNoise = 80 // hostile: force detector mistakes before GST
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", graph.Ring(16)},
		{"grid", graph.Grid(4, 4)},
		{"clique", graph.Clique(8)},
	}
	for _, c := range cases {
		res, ok := mustExecute(t, Spec{
			Graph:     c.g,
			Seed:      seed,
			Algorithm: Algorithm1,
			Detector:  DetectorHeartbeat,
			Heartbeat: hp,
			Workload:  runner.Saturated(),
			Horizon:   40000,
		})
		if !ok {
			continue
		}
		conv := res.FDLastMistakeEnd + 100 // drain slack for in-flight eats
		after := res.ViolationsAfter(conv)
		t.AddRow(c.name, c.g.N(), res.FDFalsePositives, res.FDLastMistake,
			res.Violations, res.LastViolation, after, yesno(after == 0))
	}
	return t
}

// E2WaitFreedom measures Theorem 2: Algorithm 1 completes every correct
// hungry session regardless of crash count, while the detector-free
// Choy–Singh doorway starves neighbors of crashed processes.
func E2WaitFreedom(seed int64) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Wait-free progress under crash storms (Theorem 2)",
		Claim:  "every correct hungry process eventually eats, for any number of crashes; without ◇P₁, crashes starve correct processes",
		Header: []string{"algorithm", "crashes", "live sessions done", "starving live", "min live sessions", "ok"},
	}
	const n = 16
	for _, f := range []int{0, 1, 4, 8, 15} {
		for _, alg := range []Algorithm{Algorithm1, ChoySingh, HygienicFD, Hygienic} {
			g := graph.Ring(n)
			spec := Spec{
				Graph:     g,
				Seed:      seed,
				Algorithm: alg,
				Workload:  runner.Saturated(),
				Horizon:   40000,
			}
			if alg == Algorithm1 || alg == HygienicFD {
				spec.Detector = DetectorHeartbeat
				spec.Heartbeat = DefaultHeartbeatParams()
			}
			for c := 0; c < f; c++ {
				spec.Crashes = append(spec.Crashes, Crash{At: sim.Time(2500 + 200*c), ID: c})
			}
			res, ok := mustExecute(t, spec)
			if !ok {
				continue
			}
			crashed := make(map[int]bool)
			for _, c := range spec.Crashes {
				crashed[c.ID] = true
			}
			minLive := -1
			for i, done := range res.PerProcess {
				if crashed[i] {
					continue
				}
				if minLive < 0 || done < minLive {
					minLive = done
				}
			}
			okRun := len(res.Starving) == 0
			if (alg == ChoySingh || alg == Hygienic) && f > 0 {
				okRun = len(res.Starving) > 0 // the expected failure
			}
			t.AddRow(alg, f, res.LiveCompleted(), len(res.Starving), minLive, yesno(okRun))
		}
	}
	return t
}

// e3StarDelays slows one leaf's link to the hub: the hub's doorway
// passage then waits ~slowLink ticks for that leaf's ack while the
// other leaves cycle fast. Under the original doorway the hub re-acks
// every fast leaf each cycle, so they overtake it without bound; the
// replied flag caps them at two.
func e3StarDelays(hub, slowLeaf int) sim.DelayModel {
	return sim.DelayFunc(func(_ sim.Time, from, to int, _ *rand.Rand) sim.Time {
		if from == slowLeaf && to == hub {
			return 400
		}
		return 2
	})
}

// E3BoundedWaiting measures Theorem 3: in the converged suffix,
// Algorithm 1 never lets a neighbor overtake a hungry process more than
// twice, while the replied-flag ablation and the doorway-free baseline
// exceed any constant bound.
func E3BoundedWaiting(seed int64) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Eventual 2-bounded waiting (Theorem 3) vs ablations",
		Claim:  "Algorithm 1: ≤2 consecutive overtakes per hungry neighbor in the suffix; without the replied flag or the doorway the bound fails",
		Header: []string{"algorithm", "scenario", "max overtakes", "suffix overtakes", "within paper bound (2)"},
	}
	type scenario struct {
		name   string
		g      *graph.Graph
		colors []int
		delays sim.DelayModel
	}
	star := graph.Star(5)
	scenarios := []scenario{
		{"star5-slow-leaf", star, nil, e3StarDelays(0, 1)},
		{"path3-low-middle", graph.Path(3), []int{1, 0, 2}, sim.FixedDelay{D: 2}},
		{"ring8", graph.Ring(8), nil, sim.UniformDelay{Min: 1, Max: 4}},
	}
	for _, sc := range scenarios {
		for _, alg := range []Algorithm{Algorithm1, Algorithm1NoReplied, Forks, Hygienic} {
			res, ok := mustExecute(t, Spec{
				Graph:     sc.g,
				Colors:    sc.colors,
				Seed:      seed,
				Delays:    sc.delays,
				Algorithm: alg,
				Workload:  runner.Saturated(),
				Horizon:   30000,
			})
			if !ok {
				continue
			}
			// No detector noise in these runs, so the 2-bound must hold
			// over the whole run, not just a suffix.
			t.AddRow(alg, sc.name, res.MaxOvertake, res.MaxOvertakeSuffix,
				yesno(res.MaxOvertake <= 2))
		}
	}
	return t
}

// E4ChannelBound measures the Section 7 claim that at most four dining
// messages occupy any edge simultaneously, even under severe delay
// variance.
func E4ChannelBound(seed int64) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Bounded channel capacity (Section 7)",
		Claim:  "at most 4 dining messages in transit per edge at any time",
		Header: []string{"topology", "delay model", "max edge occupancy", "total msgs", "ok"},
	}
	cases := []struct {
		name   string
		g      *graph.Graph
		dname  string
		delays sim.DelayModel
	}{
		{"ring16", graph.Ring(16), "uniform[1,4]", sim.UniformDelay{Min: 1, Max: 4}},
		{"clique6", graph.Clique(6), "uniform[1,50]", sim.UniformDelay{Min: 1, Max: 50}},
		{"grid4x4", graph.Grid(4, 4), "spiky", sim.SpikeDelay{Base: 2, Spike: 80, SpikeP: 0.2}},
		{"star8", graph.Star(8), "uniform[1,30]", sim.UniformDelay{Min: 1, Max: 30}},
	}
	for _, c := range cases {
		res, ok := mustExecute(t, Spec{
			Graph:     c.g,
			Seed:      seed,
			Delays:    c.delays,
			Algorithm: Algorithm1,
			Detector:  DetectorHeartbeat,
			Heartbeat: DefaultHeartbeatParams(),
			Workload:  runner.Saturated(),
			Horizon:   30000,
		})
		if !ok {
			continue
		}
		t.AddRow(c.name, c.dname, res.OccupancyHW, res.TotalMessages, yesno(res.OccupancyHW <= 4))
	}
	return t
}

// E5Quiescence measures the Section 7 claim that correct processes
// eventually stop sending dining messages to crashed neighbors.
func E5Quiescence(seed int64) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Quiescence toward crashed processes (Section 7)",
		Claim:  "eventually no dining messages flow to crashed processes (≤1 residual ping + 1 token per live neighbor)",
		Header: []string{"topology", "crashes", "sends after crash", "last send to crashed", "crash window ends", "quiescent by mid-run"},
	}
	cases := []struct {
		name    string
		g       *graph.Graph
		crashes []Crash
	}{
		{"ring8", graph.Ring(8), []Crash{{At: 1000, ID: 3}}},
		{"clique6", graph.Clique(6), []Crash{{At: 1000, ID: 0}, {At: 1500, ID: 1}}},
		{"grid3x3", graph.Grid(3, 3), []Crash{{At: 800, ID: 4}}},
	}
	for _, c := range cases {
		res, ok := mustExecute(t, Spec{
			Graph:     c.g,
			Seed:      seed,
			Algorithm: Algorithm1,
			Detector:  DetectorPerfect,
			// Perfect detection isolates the dining layer's quiescence
			// from detector noise.
			PerfectLatency: 20,
			Workload:       runner.Saturated(),
			Crashes:        c.crashes,
			Horizon:        20000,
		})
		if !ok {
			continue
		}
		lastCrash := sim.Time(0)
		for _, cr := range c.crashes {
			if cr.At > lastCrash {
				lastCrash = cr.At
			}
		}
		t.AddRow(c.name, len(c.crashes), res.SendsToCrashed, res.LastSendToCrashed,
			lastCrash, yesno(res.QuiescentLastHalf))
	}
	return t
}

// E6Space verifies the Section 7 space bound log₂(δ)+6δ+c bits per
// process by constructing diners over real colorings and counting their
// protocol state.
func E6Space() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "Bounded per-process space (Section 7)",
		Claim:  "each process needs log₂(δ)+6δ+c bits; O(n) even on a clique",
		Header: []string{"topology", "n", "δ", "colors used", "max bits measured", "bound 6δ+log₂(δ)+c", "ok"},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring32", graph.Ring(32)},
		{"grid6x6", graph.Grid(6, 6)},
		{"star33", graph.Star(33)},
		{"clique16", graph.Clique(16)},
	}
	for _, c := range cases {
		colors := c.g.GreedyColoring()
		maxBits := 0
		for i := 0; i < c.g.N(); i++ {
			nbrColors := make(map[int]int)
			for _, j := range c.g.Neighbors(i) {
				nbrColors[j] = colors[j]
			}
			d, err := core.NewDiner(core.Config{ID: i, Color: colors[i], NeighborColors: nbrColors})
			if err != nil {
				t.AddRow("ERROR", err.Error())
				continue
			}
			if b := d.SpaceBits(); b > maxBits {
				maxBits = b
			}
		}
		delta := c.g.MaxDegree()
		bound := 6*delta + bitsFor(delta) + 8 // generous constant c
		t.AddRow(c.name, c.g.N(), delta, graph.NumColors(colors), maxBits, bound, yesno(maxBits <= bound))
	}
	return t
}

func bitsFor(v int) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	if b == 0 {
		return 1
	}
	return b
}

// E7Stabilization measures the paper's motivating application: a
// wait-free daemon lets a self-stabilizing protocol converge despite
// crashes and transient faults; a non-wait-free daemon does not.
func E7Stabilization(seed int64) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Stabilizing protocols under wait-free vs blocking daemons (Section 1)",
		Claim:  "wait-free scheduling ⇒ convergence despite crashes; a crash under the detector-free daemon prevents convergence",
		Header: []string{"protocol", "daemon", "crashes", "converged", "last illegitimate", "protocol steps", "overlaps"},
	}
	type arm struct {
		daemon  string
		alg     Algorithm
		det     DetectorKind
		crashes []Crash
	}
	runArm := func(protoName string, mkProto func(g *graph.Graph) stabilize.Protocol, g *graph.Graph, a arm, inject func(p stabilize.Protocol, ad *stabilize.DaemonAdapter, r *runner.Runner)) {
		proto := mkProto(g)
		var ad *stabilize.DaemonAdapter
		cfg := runner.Config{
			Graph:      g,
			Seed:       seed,
			Delays:     sim.UniformDelay{Min: 1, Max: 3},
			NewProcess: processFactory(a.alg, 0),
			Workload:   runner.Saturated(),
			OnTransition: func(at sim.Time, id int, from, to core.State) {
				ad.OnTransition(at, id, from, to)
			},
			OnCrash: func(at sim.Time, id int) { ad.OnCrash(at, id) },
		}
		if a.det == DetectorPerfect {
			cfg.NewDetector = func(k *sim.Kernel, gg *graph.Graph) detector.Detector {
				return detector.NewPerfect(k, gg, 15)
			}
		}
		r, err := runner.New(cfg)
		if err != nil {
			t.AddRow("ERROR", err.Error())
			return
		}
		ad = stabilize.NewDaemonAdapter(proto, g.Neighbors, r.Kernel().Now, r.Kernel().Rand())
		for _, c := range a.crashes {
			r.CrashAt(c.At, c.ID)
		}
		if inject != nil {
			inject(proto, ad, r)
		}
		r.Run(40000)
		_, converged := ad.Converged()
		t.AddRow(protoName, a.daemon, len(a.crashes), yesno(converged),
			ad.LastIllegitimate(), ad.Steps(), ad.Overlaps())
	}

	// Dijkstra ring: crash-free transient-fault recovery.
	ringG := graph.Ring(9)
	runArm("dijkstra-ring", func(g *graph.Graph) stabilize.Protocol {
		return stabilize.NewDijkstraRing(g.N(), 0)
	}, ringG, arm{daemon: "algorithm-1", alg: Algorithm1, det: DetectorPerfect},
		func(p stabilize.Protocol, ad *stabilize.DaemonAdapter, r *runner.Runner) {
			r.Kernel().At(2000, func() { ad.InjectFaults(9) })
		})

	// Coloring with crashes: the wait-free daemon repairs a conflict
	// injected beside the crashed vertex; the blocking daemon cannot.
	colorArms := []arm{
		{daemon: "algorithm-1", alg: Algorithm1, det: DetectorPerfect, crashes: []Crash{{At: 40, ID: 2}}},
		{daemon: "choy-singh", alg: ChoySingh, det: DetectorNone, crashes: []Crash{{At: 40, ID: 2}}},
	}
	for _, a := range colorArms {
		a := a
		g := graph.Ring(10)
		runArm("coloring", func(gg *graph.Graph) stabilize.Protocol {
			return stabilize.NewColoring(gg)
		}, g, a, func(p stabilize.Protocol, ad *stabilize.DaemonAdapter, r *runner.Runner) {
			col := p.(*stabilize.Coloring)
			r.Kernel().At(5000, func() {
				col.SetColor(3, col.Color(2))
				ad.Recheck()
			})
		})
	}

	// MIS under the daemon (the synchronous schedule livelocks; the
	// daemon converges).
	runArm("mis", func(g *graph.Graph) stabilize.Protocol {
		return stabilize.NewMIS(g)
	}, graph.Ring(8), arm{daemon: "algorithm-1", alg: Algorithm1, det: DetectorPerfect}, nil)

	return t
}

// E8Scalability profiles hungry-session latency and message overhead as
// the system grows — the paper argues ◇P₁'s locality keeps the daemon
// scalable on sparse networks.
func E8Scalability(seed int64) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Scalability profile (locality of ◇P₁, Section 8)",
		Claim:  "per-session cost tracks the conflict degree δ, not n, on sparse topologies",
		Header: []string{"topology", "n", "δ", "sessions done", "mean latency", "p99 latency", "msgs/session"},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring8", graph.Ring(8)},
		{"ring16", graph.Ring(16)},
		{"ring32", graph.Ring(32)},
		{"ring64", graph.Ring(64)},
		{"grid4x4", graph.Grid(4, 4)},
		{"grid6x6", graph.Grid(6, 6)},
		{"clique4", graph.Clique(4)},
		{"clique8", graph.Clique(8)},
		{"clique12", graph.Clique(12)},
	}
	for _, c := range cases {
		res, ok := mustExecute(t, Spec{
			Graph:     c.g,
			Seed:      seed,
			Delays:    sim.UniformDelay{Min: 1, Max: 3},
			Algorithm: Algorithm1,
			Workload:  runner.Saturated(),
			Horizon:   20000,
		})
		if !ok {
			continue
		}
		msgsPer := "n/a"
		if res.Sessions.Completed > 0 {
			msgsPer = fmt.Sprintf("%.1f", float64(res.TotalMessages)/float64(res.Sessions.Completed))
		}
		t.AddRow(c.name, c.g.N(), c.g.MaxDegree(), res.Sessions.Completed,
			fmt.Sprintf("%.2f", float64(res.Sessions.MeanX100)/100), res.Sessions.P99, msgsPer)
	}
	return t
}

// A1RepliedAblation isolates design choice D1: the one-ack-per-session
// rule is exactly what turns eventual fairness into eventual 2-bounded
// waiting.
func A1RepliedAblation(seed int64) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: the replied flag (modified vs original doorway)",
		Claim:  "granting one ack per neighbor per hungry session caps consecutive overtakes at 2; the original doorway does not",
		Header: []string{"doorway", "max overtakes", "suffix overtakes", "hub sessions done", "hub p99 latency"},
	}
	for _, alg := range []Algorithm{Algorithm1, Algorithm1NoReplied} {
		res, ok := mustExecute(t, Spec{
			Graph:     graph.Star(5),
			Seed:      seed,
			Delays:    e3StarDelays(0, 1),
			Algorithm: alg,
			Workload:  runner.Saturated(),
			Horizon:   30000,
		})
		if !ok {
			continue
		}
		t.AddRow(alg, res.MaxOvertake, res.MaxOvertakeSuffix, res.PerProcess[0], res.Sessions.P99)
	}
	return t
}

// A3KBoundSweep validates the generalized doorway: granting at most m
// acks per neighbor per hungry session yields eventual (m+1)-bounded
// waiting. The paper's Algorithm 1 is the m = 1, k = 2 instance of the
// title's "eventually k-bounded" family.
func A3KBoundSweep(seed int64) *Table {
	t := &Table{
		ID:     "A3",
		Title:  "Extension: generalized ack budget m ⇒ eventual (m+1)-bounded waiting",
		Claim:  "the modified doorway with budget m bounds consecutive overtakes by k = m+1 (paper: m=1, k=2)",
		Header: []string{"ack budget m", "bound k=m+1", "max overtakes", "hub sessions", "hub p99 latency", "ok"},
	}
	for _, m := range []int{1, 2, 3, 5} {
		res, ok := mustExecute(t, Spec{
			Graph:          graph.Star(5),
			Seed:           seed,
			Delays:         e3StarDelays(0, 1),
			Algorithm:      Algorithm1,
			AcksPerSession: m,
			Workload:       runner.Saturated(),
			Horizon:        30000,
		})
		if !ok {
			continue
		}
		t.AddRow(m, m+1, res.MaxOvertake, res.PerProcess[0], res.Sessions.P99,
			yesno(res.MaxOvertake <= m+1))
	}
	return t
}

// A2DetectorSweep explores D3/D4: how detector quality (heartbeat
// period and pre-GST delay noise) shapes mistake counts and how quickly
// the dining guarantees engage.
func A2DetectorSweep(seed int64) *Table {
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: detector quality sweep (heartbeat period × pre-GST noise)",
		Claim:  "worse detectors make more (but always finitely many) mistakes; the dining guarantees engage after the last mistake regardless",
		Header: []string{"period", "pre-GST noise", "false positives", "FD last mistake", "violations", "last violation", "viol after conv"},
	}
	g := graph.Ring(8)
	for _, period := range []sim.Time{3, 5, 10} {
		for _, noise := range []sim.Time{0, 40, 120} {
			hp := DefaultHeartbeatParams()
			hp.Period = period
			hp.InitialTimeout = period * 2
			hp.PreNoise = noise
			res, ok := mustExecute(t, Spec{
				Graph:     g,
				Seed:      seed,
				Algorithm: Algorithm1,
				Detector:  DetectorHeartbeat,
				Heartbeat: hp,
				Workload:  runner.Saturated(),
				Horizon:   40000,
			})
			if !ok {
				continue
			}
			conv := res.FDLastMistakeEnd + 100
			t.AddRow(period, noise, res.FDFalsePositives, res.FDLastMistake,
				res.Violations, res.LastViolation, res.ViolationsAfter(conv))
		}
	}
	return t
}

// e11Faults is the adversarial channel used across E11's arms: 10%
// loss and 10% duplication on every edge, a near-total burst window,
// and a bipartition, all healing at 12000.
func e11Faults() *sim.FaultPlan {
	return &sim.FaultPlan{
		DropP:      0.10,
		DupP:       0.10,
		Bursts:     []sim.Burst{{Start: 4000, End: 5000, DropP: 0.9}},
		Partitions: []sim.Partition{{Start: 7000, End: 8000, Side: []int{0, 1, 2, 3}}},
		HealAt:     12000,
	}
}

// E11LossyLinks measures the robustness claim: layered over the rlink
// retransmission sublayer, Algorithm 1 keeps wait-freedom and the
// suffix 2-bounded-waiting guarantee on channels that drop and
// duplicate until a heal time, and its retransmissions to crashed
// neighbors are finite (suspicion parks the timers, preserving the
// Section 7 quiescence). The raw-network arm is the motivating negative
// control: the fork and token are unique messages, so an unmasked loss
// deadlocks an edge forever.
func E11LossyLinks(seed int64) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "Lossy links: Algorithm 1 over the rlink sublayer vs raw channels",
		Claim:  "with 10% drop + 10% duplication (plus a burst and a partition) before heal, rlink preserves wait-freedom and suffix overtakes ≤ 2, with finite retransmits to crashed neighbors; the raw lossy network starves or corrupts the protocol",
		Header: []string{"arm", "lost", "dup injected", "retransmits", "dup suppressed", "live sessions", "starving live", "suffix overtakes", "retx to crashed", "ok"},
	}
	g := graph.Ring(8)
	base := Spec{
		Graph:     g,
		Seed:      seed,
		Algorithm: Algorithm1,
		Detector:  DetectorHeartbeat,
		Heartbeat: DefaultHeartbeatParams(),
		Workload:  runner.Saturated(),
		Horizon:   30000,
		Faults:    e11Faults(),
	}

	// Arm 1: rlink, no crashes — every guarantee must hold outright.
	spec := base
	spec.Reliable = true
	if res, ok := mustExecute(t, spec); ok {
		okRun := len(res.Starving) == 0 && res.MaxOvertakeSuffix <= 2
		t.AddRow("rlink", res.MessagesLost, res.Duplicated, res.Retransmits,
			res.DupSuppressed, res.LiveCompleted(), len(res.Starving),
			res.MaxOvertakeSuffix, res.RetxToCrashed, yesno(okRun))
	}

	// Arm 2: rlink + crashes — live processes stay wait-free and the
	// retransmits addressed to the crashed stay finite (and small):
	// suspicion parks the timers, so the count stops growing long before
	// the horizon.
	spec = base
	spec.Reliable = true
	spec.Crashes = []Crash{{At: 3000, ID: 2}, {At: 9000, ID: 6}}
	if res, ok := mustExecute(t, spec); ok {
		okRun := len(res.Starving) == 0 && res.MaxOvertakeSuffix <= 2 &&
			res.RetxToCrashed < res.Retransmits
		t.AddRow("rlink+crashes", res.MessagesLost, res.Duplicated, res.Retransmits,
			res.DupSuppressed, res.LiveCompleted(), len(res.Starving),
			res.MaxOvertakeSuffix, res.RetxToCrashed, yesno(okRun))
	}

	// Arm 3 (negative control): the same adversary against the raw
	// network. Loss of a unique fork or token deadlocks its edge, so the
	// expected outcome is starvation and/or a protocol-invariant
	// violation — Execute is called directly because a violation here is
	// the point, not a setup error.
	spec = base
	spec.Reliable = false
	res, err := Execute(spec)
	if err != nil {
		t.AddRow("ERROR", err.Error())
	} else {
		broken := res.InvariantErr != nil || len(res.Starving) > 0
		detail := "-"
		if res.InvariantErr != nil {
			detail = "invariant"
		}
		t.AddRow("raw-lossy", res.MessagesLost, res.Duplicated, 0, detail,
			res.LiveCompleted(), len(res.Starving), res.MaxOvertakeSuffix,
			0, yesno(broken))
	}
	return t
}

// All runs the complete experiment suite with one seed.
func All(seed int64) []*Table {
	return []*Table{
		E1Safety(seed),
		E2WaitFreedom(seed),
		E3BoundedWaiting(seed),
		E4ChannelBound(seed),
		E5Quiescence(seed),
		E6Space(),
		E7Stabilization(seed),
		E8Scalability(seed),
		E11LossyLinks(seed),
		A1RepliedAblation(seed),
		A2DetectorSweep(seed),
		A3KBoundSweep(seed),
	}
}
